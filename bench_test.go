// Benchmarks regenerate every table and figure of the paper (one benchmark
// per experiment) plus the ablations DESIGN.md calls out. Each benchmark
// reports the experiment's headline numbers via b.ReportMetric so that
// `go test -bench=. -benchmem` doubles as a results sheet; bench_output.txt
// in the repository root records a full run.
//
// Simulation inputs are cached per configuration: the timed section of each
// benchmark is the experiment computation over the simulated study, and the
// domain metrics are what the paper reports.
package philly_test

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"philly"
	"philly/internal/analysis"
	"philly/internal/cluster"
	"philly/internal/failures"
	"philly/internal/perfmodel"
	"philly/internal/scheduler"
	"philly/internal/simulation"
	"philly/internal/stats"
	"philly/internal/sweep"
)

// metricKey makes a bucket label usable as a benchmark metric unit
// (units must not contain whitespace).
func metricKey(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// studyCache memoizes simulation runs across benchmarks.
var studyCache sync.Map // string -> *philly.StudyResult

func cachedStudy(b *testing.B, key string, mk func() philly.Config) *philly.StudyResult {
	b.Helper()
	if v, ok := studyCache.Load(key); ok {
		return v.(*philly.StudyResult)
	}
	res, err := philly.Run(mk())
	if err != nil {
		b.Fatal(err)
	}
	studyCache.Store(key, res)
	return res
}

// benchStudy is the shared workload for the per-experiment benchmarks.
func benchStudy(b *testing.B) *philly.StudyResult {
	return cachedStudy(b, "small", func() philly.Config {
		cfg := philly.SmallConfig()
		cfg.Seed = 1
		return cfg
	})
}

func BenchmarkFigure2RunTimeCDF(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure2(res)
	}
	b.ReportMetric(f.BySize[failures.Size1].Median(), "p50RunMin_1gpu")
	b.ReportMetric(f.BySize[failures.SizeOver8].Median(), "p50RunMin_over8")
	b.ReportMetric(100*f.WeekLongFraction, "pctWeekLong")
}

func BenchmarkFigure3QueueingDelayCDF(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure3(res)
	}
	if len(f.VCs) > 0 {
		b.ReportMetric(f.VCs[0].BySize[failures.Size1].Percentile(90), "p90DelayMin_vc1_1gpu")
		b.ReportMetric(f.VCs[0].BySize[failures.Size5to8].Percentile(90), "p90DelayMin_vc1_5to8")
	}
}

func BenchmarkFigure4LocalityRelaxation(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure4(res)
	}
	if n := len(f.Dist5to8); n > 0 {
		b.ReportMetric(f.Dist5to8[0].MedianDelayMin, "p50DelayMin_packed")
		b.ReportMetric(f.Dist5to8[n-1].MedianDelayMin, "p50DelayMin_spread")
	}
}

func BenchmarkTable2DelayCauses(b *testing.B) {
	res := benchStudy(b)
	var t analysis.Table2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = analysis.ComputeTable2(res)
	}
	for _, r := range t.Rows {
		b.ReportMetric(r.FairSharePct(), "pctFairShare_"+metricKey(r.Bucket.String()))
	}
	b.ReportMetric(100*t.FragShareOfDelayTime, "pctFragDelayTime")
}

func BenchmarkFigure5UtilizationCDF(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure5(res)
	}
	b.ReportMetric(f.Rec.AllByStatus(failures.Passed).Percentile(50), "p50Util_passed")
	b.ReportMetric(f.Rec.AllByStatus(failures.Killed).Percentile(50), "p50Util_killed")
}

func BenchmarkTable3MeanUtilization(b *testing.B) {
	res := benchStudy(b)
	var t analysis.Table3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = analysis.ComputeTable3(res)
	}
	b.ReportMetric(t.Overall, "meanUtilPct")               // paper: 52.32
	b.ReportMetric(t.AllByStatus[1], "meanUtilPct_killed") // paper: 42.98
}

func BenchmarkTable4ResNet50Placement(b *testing.B) {
	var rows []perfmodel.ResNet50Result
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = perfmodel.ResNet50Table(perfmodel.DefaultResNet50Params())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.GPUUtil, "utilPct_"+r.Config.String())
	}
}

func BenchmarkFigure6DedicatedUtilization(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure6(res)
	}
	b.ReportMetric(f.Mean8, "meanUtil_8gpu")   // paper: 56.9
	b.ReportMetric(f.Mean16, "meanUtil_16gpu") // paper: 34.3-43.7
}

func BenchmarkFigure7HostResources(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure7(res)
	}
	b.ReportMetric(f.CPUMedian, "p50HostCPU")
	b.ReportMetric(f.MemMedian, "p50HostMem")
}

func BenchmarkTable5SpreadUtilization(b *testing.B) {
	res := benchStudy(b)
	var t analysis.Table5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = analysis.ComputeTable5(res)
	}
	for _, r := range t.Rows {
		if r.Servers == 2 || r.Servers == 4 || r.Servers == 8 {
			b.ReportMetric(r.Mean, fmt.Sprintf("meanUtil_%dsrv", r.Servers))
		}
	}
}

func BenchmarkTable6StatusDistribution(b *testing.B) {
	res := benchStudy(b)
	var t analysis.Table6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = analysis.ComputeTable6(res)
	}
	b.ReportMetric(t.CountPct[0], "pctPassed")             // paper: 69.3
	b.ReportMetric(t.GPUTimeShares[1], "pctGPUTimeKilled") // paper: 37.69
}

func BenchmarkFigure8EpochEffectiveness(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure8(res)
	}
	b.ReportMetric(f.WithinPassed.Median(), "p50FracEpochsWithinTenth")
	b.ReportMetric(100*f.GPUTimeToLastTenthPassed, "pctGPUTimeLastTenth") // paper: 62
}

func BenchmarkFigure9RetriesBySize(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure9(res)
	}
	b.ReportMetric(f.MeanRetries[failures.Size1], "retries_1gpu")
	b.ReportMetric(f.MeanRetries[failures.SizeOver8], "retries_over8")
	b.ReportMetric(f.UnsuccessfulRate[failures.SizeOver8], "unsuccRate_over8")
}

func BenchmarkTable7FailureTable(b *testing.B) {
	res := benchStudy(b)
	var t analysis.Table7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = analysis.ComputeTable7(res)
	}
	b.ReportMetric(float64(t.TotalTrials), "trials")
	b.ReportMetric(t.MisclassifiedPct, "pctMisclassified")
	if len(t.Rows) > 0 {
		b.ReportMetric(float64(t.Rows[0].Trials), "topReasonTrials")
	}
}

func BenchmarkFigure10RTFvsDemand(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure10(res)
	}
	for _, s := range f.Series {
		if s.Reason == failures.CodeSemanticError {
			b.ReportMetric(s.MedianSmall, "p50RTF_semantic_small")
			b.ReportMetric(s.MedianLarge, "p50RTF_semantic_large")
		}
	}
}

// BenchmarkTable1SchedulerComparison runs the same contended workload under
// every policy of Table 1 and reports mean job completion time.
func BenchmarkTable1SchedulerComparison(b *testing.B) {
	policies := map[string]philly.Policy{
		"philly":   philly.PolicyPhilly,
		"fifo":     philly.PolicyFIFO,
		"srtf":     philly.PolicySRTF,
		"tiresias": philly.PolicyTiresias,
		"gandiva":  philly.PolicyGandiva,
	}
	for i := 0; i < b.N; i++ {
		for name, p := range policies {
			p := p
			res := cachedStudy(b, "policy-"+name, func() philly.Config {
				cfg := philly.SmallConfig()
				cfg.Seed = 11
				cfg.Workload.TotalJobs = 3600
				cfg.Scheduler.Policy = p
				return cfg
			})
			var jct []float64
			for k := range res.Jobs {
				if res.Jobs[k].Completed {
					jct = append(jct, (res.Jobs[k].EndAt - res.Jobs[k].Spec.SubmitAt).Minutes())
				}
			}
			b.ReportMetric(stats.Mean(jct), "jctMeanMin_"+name)
		}
	}
}

// BenchmarkAblationLocalityWait sweeps how long the scheduler insists on
// locality before relaxing (§5 "prioritizing locality"): impatient (relax
// immediately), the paper's default, and patient.
func BenchmarkAblationLocalityWait(b *testing.B) {
	settings := map[string][2]int{
		"impatient": {0, 0},
		"default":   {4, 8},
		"patient":   {16, 32},
	}
	for i := 0; i < b.N; i++ {
		for name, s := range settings {
			s := s
			res := cachedStudy(b, "locality-"+name, func() philly.Config {
				cfg := philly.SmallConfig()
				cfg.Seed = 5
				cfg.Scheduler.RelaxToRackAfter = s[0]
				cfg.Scheduler.RelaxToAnyAfter = s[1]
				return cfg
			})
			var delays []float64
			spread := 0
			big := 0
			for k := range res.Jobs {
				j := &res.Jobs[k]
				if !j.Completed {
					continue
				}
				delays = append(delays, j.FirstQueueDelay.Minutes())
				if j.Spec.GPUs > 8 {
					big++
					if j.LastServers > 2 {
						spread++
					}
				}
			}
			b.ReportMetric(stats.Percentile(delays, 90), "p90DelayMin_"+name)
			if big > 0 {
				b.ReportMetric(100*float64(spread)/float64(big), "pctSpreadBigJobs_"+name)
			}
		}
	}
}

// BenchmarkAblationInterference toggles colocation interference off to
// measure how much utilization the paper's observed sharing costs.
func BenchmarkAblationInterference(b *testing.B) {
	settings := map[string]float64{
		"interference":   perfmodel.DefaultUtilParams().ColocationFactor,
		"noInterference": 1.0,
	}
	for i := 0; i < b.N; i++ {
		for name, factor := range settings {
			factor := factor
			res := cachedStudy(b, "interf-"+name, func() philly.Config {
				cfg := philly.SmallConfig()
				cfg.Seed = 5
				cfg.Util.ColocationFactor = factor
				return cfg
			})
			b.ReportMetric(res.Telemetry.All().Mean(), "meanUtilPct_"+name)
		}
	}
}

// BenchmarkAblationFailFast quantifies §5's "pre-run on a single GPU"
// guideline: GPU-time that deterministic user errors would have cost on a
// 1-GPU validation pool instead of the full gang.
func BenchmarkAblationFailFast(b *testing.B) {
	res := benchStudy(b)
	var wasted, saved float64
	for i := 0; i < b.N; i++ {
		wasted, saved = 0, 0
		for k := range res.Jobs {
			j := &res.Jobs[k]
			if !j.Completed {
				continue
			}
			for _, a := range j.Attempts {
				if !a.Failed {
					continue
				}
				cost := a.RuntimeMinutes * float64(j.Spec.GPUs)
				wasted += cost
				// Deterministic errors reproduce on 1 GPU within the first
				// iteration(s); the pre-run pool catches anything failing
				// inside 30 minutes.
				if a.RuntimeMinutes <= 30 && j.Spec.GPUs > 1 {
					saved += cost - a.RuntimeMinutes // re-run on 1 GPU instead
				}
			}
		}
	}
	b.ReportMetric(wasted, "gpuMinWastedOnFailures")
	b.ReportMetric(100*saved/wasted, "pctSavedByFailFastPool")
}

// BenchmarkAblationEarlyStop quantifies §4.1's early-termination
// opportunity: GPU-time spent improving the final 0.1% of the loss.
func BenchmarkAblationEarlyStop(b *testing.B) {
	res := benchStudy(b)
	var f analysis.Figure8
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure8(res)
	}
	b.ReportMetric(100*f.GPUTimeToLastTenthPassed, "pctGPUTimeSavablePassed") // paper: 62
	b.ReportMetric(100*f.GPUTimeToLastTenthKilled, "pctGPUTimeSavableKilled") // paper: 56
}

// BenchmarkAblationAdaptiveRetry compares fixed-retry Philly against the
// §5 proposal of classifying failures online and not retrying the
// deterministic ones, measured in GPU-minutes burnt on failed attempts.
func BenchmarkAblationAdaptiveRetry(b *testing.B) {
	variants := map[string]bool{"fixedRetry": false, "adaptiveRetry": true}
	for i := 0; i < b.N; i++ {
		for name, adaptive := range variants {
			adaptive := adaptive
			res := cachedStudy(b, "adaptive-"+name, func() philly.Config {
				cfg := philly.SmallConfig()
				cfg.Seed = 5
				cfg.AdaptiveRetry = adaptive
				return cfg
			})
			var wasted float64
			for k := range res.Jobs {
				j := &res.Jobs[k]
				for _, a := range j.Attempts {
					if a.Failed {
						wasted += a.RuntimeMinutes * float64(j.Spec.GPUs)
					}
				}
			}
			b.ReportMetric(wasted, "gpuMinOnFailures_"+name)
		}
	}
}

// BenchmarkAblationDefrag compares Philly with and without §5's
// migration-based defragmentation, measured by large-job queueing delay
// and migration volume.
func BenchmarkAblationDefrag(b *testing.B) {
	variants := map[string]bool{"noDefrag": false, "defrag": true}
	for i := 0; i < b.N; i++ {
		for name, enabled := range variants {
			enabled := enabled
			res := cachedStudy(b, "defrag-"+name, func() philly.Config {
				cfg := philly.SmallConfig()
				cfg.Seed = 5
				cfg.Defrag.Enabled = enabled
				return cfg
			})
			var bigDelays []float64
			for k := range res.Jobs {
				j := &res.Jobs[k]
				if !j.Completed || j.Spec.GPUs <= 8 {
					continue
				}
				bigDelays = append(bigDelays, j.FirstQueueDelay.Minutes())
			}
			b.ReportMetric(stats.Percentile(bigDelays, 90), "p90DelayMinOver8_"+name)
			b.ReportMetric(float64(res.Sched.Migrations), "migrations_"+name)
		}
	}
}

// BenchmarkSweepWorkerScaling runs a fixed 2-axis × 2-value matrix with 4
// seed replicas (16 studies) at increasing worker counts. On a multi-core
// box ns/op should fall as workers rise; the sweep test suite separately
// guarantees the aggregated results are bit-identical at every worker
// count, so this benchmark is purely a wall-clock trajectory.
func BenchmarkSweepWorkerScaling(b *testing.B) {
	base := philly.SmallConfig()
	base.Workload.TotalJobs = 600
	base.Workload.Duration /= 2
	var axes []sweep.Axis
	for _, spec := range []string{"sched.policy=philly,fifo", "defrag=off,on"} {
		ax, err := sweep.ParseAxis(spec)
		if err != nil {
			b.Fatal(err)
		}
		axes = append(axes, ax)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *sweep.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = sweep.Matrix{Base: base, Axes: axes}.
					Run(sweep.Options{Replicas: 4, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Scenarios)*res.Replicas), "studiesPerSweep")
			if jct, ok := res.Scenarios[0].Summary.ByName("JCT p50 (min)"); ok {
				b.ReportMetric(jct.Mean, "jctP50Min_scenario0")
			}
		})
	}
}

// BenchmarkSimulationThroughput measures the simulator itself: full studies
// per unit time (jobs simulated per second reported as a metric).
func BenchmarkSimulationThroughput(b *testing.B) {
	cfg := philly.SmallConfig()
	cfg.Workload.TotalJobs = 800
	cfg.Workload.Duration /= 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := philly.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jobs) != 800 {
			b.Fatal("short run")
		}
	}
	b.ReportMetric(800, "jobsPerRun")
}

// BenchmarkStudyParallel is the intra-study scaling curve: ONE study —
// paper-scale cluster (~2050 GPUs, 288 servers), minute telemetry — at
// increasing intra-study worker counts. The telemetry walk dominates
// whole-study profiles at this shape (see PERFORMANCE.md), which is what
// the parallel pipeline shards; TestWorkerCountInvariance separately pins
// the StudyResult bit-identical across all of these worker counts, so this
// benchmark is purely a wall-clock trajectory. workers=1 is the inline
// path on the sequential engine and doubles as its regression guard;
// workers >= 2 run the per-VC sharded event engine end to end
// (RunParallel shards events whenever workers != 1), so the curve also
// prices the window merge.
func BenchmarkStudyParallel(b *testing.B) {
	// A quarter-length window at the paper's full arrival rate and cluster
	// scale: the running set peaks in the thousands, like the full study.
	cfg := philly.MediumConfig()
	cfg.Workload.TotalJobs /= 4
	cfg.Workload.Duration /= 4
	cfg.Workload.MaxRuntimeMinutes = 2 * 24 * 60
	cfg.Seed = 1
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *philly.StudyResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = philly.RunParallel(cfg, workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Jobs)), "jobsPerRun")
			b.ReportMetric(res.Telemetry.All().Mean(), "meanUtilPct")
		})
	}
}

// peakRSSMB reads the process's peak resident set (VmHWM) in MB from
// /proc/self/status. Linux-only; ok is false elsewhere. The value is a
// process-wide high-water mark — monotone across the whole test binary —
// so it is only comparable between baselines recorded with the same
// `make bench-json` invocation (same benchmark set, same order), which is
// exactly how BENCH_PR*_*.json files are produced.
func peakRSSMB() (mb float64, ok bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0, false
		}
		kb, err := strconv.ParseFloat(string(fields[0]), 64)
		if err != nil {
			return 0, false
		}
		return kb / 1024, true
	}
	return 0, false
}

// BenchmarkFederatedSweepMemory is the memory-regression gate: one
// federated sweep (two policies × a two-member fleet, 2 replicas — every
// row crosses the streaming fleet reducer) reporting, on top of the usual
// -benchmem numbers, the two metrics `bench-compare -threshold` gates as
// higher-is-worse:
//
//   - allocs_total: heap allocations for one full sweep, from a
//     runtime.MemStats delta around the timed loop — the same accounting
//     as allocs/op, but reported unconditionally, so the gate keeps its
//     metric even if -benchmem ever drops out of the recording command.
//   - peak_rss_mb: the process's VmHWM high-water mark (see peakRSSMB for
//     the comparability caveat). This is what pins the streaming
//     federated reduction: buffering whole member StudyResults for the
//     fleet rows again would move this number, not allocs/op.
func BenchmarkFederatedSweepMemory(b *testing.B) {
	base := philly.SmallConfig()
	base.Workload.TotalJobs = 400
	var axes []sweep.Axis
	for _, spec := range []string{"sched.policy=philly,fifo", "fleet.members=philly-small+helios-like"} {
		ax, err := sweep.ParseAxis(spec)
		if err != nil {
			b.Fatal(err)
		}
		axes = append(axes, ax)
	}
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Matrix{Base: base, Axes: axes}.
			Run(sweep.Options{Replicas: 2, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		// 2 policies × (2 member rows + 1 fleet row) per federated scenario.
		if len(res.Scenarios) != 6 {
			b.Fatalf("sweep produced %d scenario rows, want 6", len(res.Scenarios))
		}
	}
	b.StopTimer()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N), "allocs_total")
	if mb, ok := peakRSSMB(); ok {
		b.ReportMetric(mb, "peak_rss_mb")
	}
}

// BenchmarkSchedulerPumpChurn isolates the scheduler's barrier-side cost on
// a queue-heavy, retry-dominated workload: a near-full cluster whose free
// GPUs are scattered two-per-server, so a deep queue of locality-constrained
// gangs re-runs doomed packed searches on every backoff expiry (the retry
// storm of Jeon et al. §2.3 that dominates Pump time at scale). A light
// allocate/release churn every few pumps dirties the free state so the
// steady state is a mix of unchanged-epoch retries and genuine placements —
// the scenario the rack-epoch feasibility cache and speculative placement
// target.
func BenchmarkSchedulerPumpChurn(b *testing.B) {
	cl, err := cluster.New(cluster.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := scheduler.DefaultConfig()
	// Pin every gang to packed placement so blocked jobs keep retrying at
	// the strictest level instead of relaxing their way onto the scattered
	// free GPUs.
	cfg.RelaxToRackAfter = 1 << 20
	cfg.RelaxToAnyAfter = 1 << 20
	total := cl.TotalGPUs()
	vcs := []scheduler.VC{
		{Name: "tenant-0", Quota: total},
		{Name: "tenant-1", Quota: total},
		{Name: "tenant-2", Quota: total},
		{Name: "tenant-3", Quota: total},
		{Name: "churn", Quota: total},
	}
	s, err := scheduler.New(cfg, cl, vcs)
	if err != nil {
		b.Fatal(err)
	}

	now := simulation.Time(0)
	nextID := cluster.JobID(1)
	submit := func(vc string, gpus int) *scheduler.Job {
		j := scheduler.NewJob(nextID, vc, gpus, now)
		nextID++
		if err := s.Submit(j, now); err != nil {
			b.Fatal(err)
		}
		return j
	}

	// Fill the 2-GPU racks completely with single-GPU fillers (best-fit
	// lands them there while every 8-GPU server is still fully free), then
	// take every 8-GPU server down to 2 free GPUs with 6-GPU runners.
	var fillers []*scheduler.Job
	for i := 0; i < 96; i++ {
		fillers = append(fillers, submit("churn", 1))
	}
	s.Pump(now)
	for i := 0; i < 192; i++ {
		submit(fmt.Sprintf("tenant-%d", i%4), 6)
	}
	s.Pump(now)
	if free := cl.FreeGPUs(); free != 2*192 {
		b.Fatalf("setup: %d free GPUs, want %d", free, 2*192)
	}

	// The blocked queue: 256 gangs whose packed searches all fail against
	// the fragmented free state (no server has more than 2 free GPUs).
	widths := []int{4, 6, 8}
	for i := 0; i < 256; i++ {
		submit(fmt.Sprintf("tenant-%d", i%4), widths[i%len(widths)])
	}
	now += cfg.Backoff
	s.Pump(now)
	if got := len(s.QueuedJobs()); got != 256 {
		b.Fatalf("setup: %d queued jobs, want 256", got)
	}

	fillerAt := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += cfg.Backoff + 1
		if i%16 == 0 {
			// Churn tick: one filler finishes and a replacement arrives,
			// dirtying the free state without disturbing the steady state
			// (the replacement is the only gang that fits the freed slot).
			old := fillers[fillerAt]
			if err := s.ReleaseJob(old, now); err != nil {
				b.Fatal(err)
			}
			fillers[fillerAt] = submit("churn", 1)
			fillerAt = (fillerAt + 1) % len(fillers)
		}
		s.Pump(now)
	}
	b.StopTimer()
	st := s.Stats()
	if st.Starts != int(nextID)-1-256 {
		b.Fatalf("steady state broken: %d starts, want %d", st.Starts, int(nextID)-1-256)
	}
	if st.CacheShortCircuits == 0 {
		b.Fatal("churn never hit the negative-result cache")
	}
	b.ReportMetric(float64(st.BlockedAttempts)/float64(b.N), "blocked/op")
	b.ReportMetric(float64(st.PlacementSearches)/float64(b.N), "searches/op")
	b.ReportMetric(float64(st.CacheShortCircuits)/float64(b.N), "cachehits/op")
	b.ReportMetric(float64(st.SpeculativeCommits)/float64(b.N), "speccommits/op")
}
