// Failure analysis: classify raw training-job logs into the paper's
// failure taxonomy (Table 7) with the signature classifier, then run a
// study and print the full failure table recomputed from generated logs.
package main

import (
	"fmt"
	"log"

	"philly"
)

// sampleLogs are the kinds of stderr fragments the production classifier
// sees — the classifier must attribute each to a root cause, preferring
// explicit signatures over the generic traceback.
var sampleLogs = []string{
	"RuntimeError: CUDA out of memory. Tried to allocate 2.00 GiB (GPU 0; 15.90 GiB total)",
	"Traceback (most recent call last):\n  File \"train.py\", line 40\nValueError: dimensions must be equal, got 128 and 256",
	"terminate called after throwing an instance of 'std::bad_alloc'",
	"FileNotFoundError: [Errno 2] no such file or directory: 'hdfs://data/train.tfrecord'",
	"mpirun noticed that process rank 3 exited on signal 9",
	"container preempted by scheduler at 2017-11-02T10:44",
	"everything looked fine and then the worker exited silently",
}

func main() {
	fmt.Printf("signature classifier: %d rules\n\n", philly.NumClassifierRules())
	for _, l := range sampleLogs {
		fmt.Printf("%-24s <- %.60q\n", philly.ClassifyFailureLog(l), l)
	}

	fmt.Println("\nFailure taxonomy (paper Table 7 calibration):")
	for _, r := range philly.FailureTaxonomy() {
		fmt.Printf("  %-22s %-8s trials=%6.0f  RTF p50=%8.2fm p90=%9.2fm\n",
			r.Code, r.Categories, r.TrialWeight, r.RTFMedianMin, r.RTFP90Min)
	}

	cfg := philly.SmallConfig()
	cfg.Seed = 3
	res, err := philly.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := philly.Analyze(res)
	fmt.Println()
	fmt.Println(report.Table7.Render())
	fmt.Println(report.Figure9.Render())
}
