// Temporal workload: run the same cluster under a stationary arrival
// process and under the diurnal phase program, then replay the diurnal
// study's own exported trace — demonstrating (1) temporal structure alone
// moves the queueing-delay tail (the paper's trace is strongly diurnal),
// and (2) the replay path reproduces a generated job population exactly.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"philly"
	"philly/internal/stats"
	"philly/internal/trace"
	"philly/internal/workload"
)

func main() {
	fmt.Println("Queueing delay under temporal workload patterns (same cluster, same seed)")
	fmt.Printf("%-12s %10s %10s %10s\n", "pattern", "delay p50", "delay p95", "util %")

	var diurnalSpecs []workload.JobSpec
	for _, name := range []string{workload.PatternStationary, workload.PatternDiurnal, workload.PatternWeekly} {
		cfg := philly.SmallConfig()
		cfg.Seed = 7
		p, err := philly.PresetWorkloadPattern(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Workload.Pattern = p
		res, err := philly.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		p50, p95, util := delayStats(res)
		fmt.Printf("%-12s %10.1f %10.1f %10.1f\n", name, p50, p95, util)
		if name == workload.PatternDiurnal {
			// Regenerate the diurnal study's planned job stream for the
			// replay demonstration below (the same derivation core uses).
			g := stats.NewRNG(cfg.Seed).Split("workload")
			gen, err := workload.NewGenerator(cfg.Workload, g)
			if err != nil {
				log.Fatal(err)
			}
			diurnalSpecs = gen.Generate(g)
		}
	}

	// Round-trip the diurnal stream through the spec CSV schema and replay
	// it: the replayed study runs the identical job population.
	var buf bytes.Buffer
	if err := trace.WriteSpecsCSV(&buf, diurnalSpecs); err != nil {
		log.Fatal(err)
	}
	loaded, err := trace.ReadTraceCSV(&buf, philly.DefaultReplayOptions())
	if err != nil {
		log.Fatal(err)
	}
	cfg := philly.SmallConfig()
	cfg.Seed = 7
	if err := philly.ApplyReplay(&cfg, loaded); err != nil {
		log.Fatal(err)
	}
	res, err := philly.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	p50, p95, util := delayStats(res)
	fmt.Printf("%-12s %10.1f %10.1f %10.1f   (diurnal trace, CSV round-trip)\n",
		"replay", p50, p95, util)
}

func delayStats(res *philly.StudyResult) (p50, p95, util float64) {
	var delays []float64
	var utilSum float64
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.Completed {
			continue
		}
		delays = append(delays, j.FirstQueueDelay.Minutes())
		utilSum += j.MeanUtil
	}
	sort.Float64s(delays)
	pct := func(p float64) float64 {
		if len(delays) == 0 {
			return 0
		}
		return delays[int(p*float64(len(delays)-1))]
	}
	if n := len(delays); n > 0 {
		util = utilSum / float64(n)
	}
	return pct(0.50), pct(0.95), util
}
