// Reliability economics: run the same outage-afflicted cluster under a
// range of checkpoint intervals and print the lost-work vs checkpoint-
// overhead tradeoff — the curve Kokolis et al. 2024 characterize for
// large training fleets. Frequent checkpoints shrink the work an outage
// destroys (each kill rolls back to the last checkpoint) but stretch
// every clean attempt by the write cost; the sweet spot minimizes the
// total reliability tax.
package main

import (
	"fmt"
	"log"

	"philly"
)

func main() {
	// Correlated outages on every domain tier, sped up 4x so an 8-day small
	// study sees enough events for a stable curve.
	faultsCfg, err := philly.ParseFaultsSpec("all:4")
	if err != nil {
		log.Fatal(err)
	}

	// A few seed replicas per interval: a checkpointed attempt runs slightly
	// longer than an uncheckpointed one, so each interval sees a different
	// realized timeline, and a single seed's lost-work figure is noisy.
	seeds := []uint64{11, 12, 13, 14}

	fmt.Printf("Checkpoint-interval sweep under correlated outages (small scale, faults all:4, %d seeds)\n", len(seeds))
	fmt.Printf("%-10s %8s %12s %12s %10s %12s %8s %8s\n",
		"interval", "kills", "lost(ckpt)", "lost(other)", "ckpt GPU-h", "tax GPU-h", "ETTF h", "ETTR h")

	for _, spec := range []string{"off", "240", "120", "60", "30", "15", "5", "2"} {
		ck, err := philly.ParseCheckpointSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		var o philly.OutageStats
		var lostCkpt, lostOther, ettf, ettr float64
		for _, seed := range seeds {
			cfg := philly.SmallConfig()
			cfg.Seed = seed
			cfg.Faults = faultsCfg.Clone()
			cfg.Checkpoint = ck
			res, err := philly.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			r := res.Outages
			o.KilledAttempts += r.KilledAttempts
			o.LostGPUHours += r.LostGPUHours
			o.CkptOverheadGPUHours += r.CkptOverheadGPUHours
			ettf += r.ETTFHours
			ettr += r.ETTRHours
			// Split lost work by whether the job checkpoints at all: only
			// the checkpointing population responds to the interval — jobs
			// that never checkpoint always lose the whole episode, whatever
			// the cost model says.
			for i := range res.Jobs {
				j := &res.Jobs[i]
				if j.Spec.Train.CheckpointEveryEpochs > 0 {
					lostCkpt += j.LostGPUMinutes / 60
				} else {
					lostOther += j.LostGPUMinutes / 60
				}
			}
		}
		n := float64(len(seeds))
		label := spec + " min"
		if spec == "off" {
			label = "off"
		}
		// The reliability tax is what outages plus the mitigation cost the
		// cluster: re-run work plus checkpoint write/restore time.
		fmt.Printf("%-10s %8d %12.1f %12.1f %10.1f %12.1f %8.1f %8.2f\n",
			label, o.KilledAttempts, lostCkpt, lostOther, o.CkptOverheadGPUHours,
			o.LostGPUHours+o.CkptOverheadGPUHours, ettf/n, ettr/n)
	}

	fmt.Println("\nLost work in the checkpointing population falls monotonically with")
	fmt.Println("checkpoint frequency; past the sweet spot the write overhead dominates")
	fmt.Println("the total reliability tax.")
}
