// Quickstart: run a small simulated study of the Philly cluster and print
// the headline results — the status mix of Table 6, the overall GPU
// utilization of Table 3, and scheduling behaviour.
package main

import (
	"fmt"
	"log"

	"philly"
)

func main() {
	cfg := philly.SmallConfig()
	cfg.Seed = 42

	res, err := philly.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := philly.Analyze(res)

	fmt.Printf("simulated %d jobs on %d GPUs (%v of cluster time)\n\n",
		len(res.Jobs), res.TotalGPUs, res.SimEnd)

	fmt.Println(report.Table6.Render())
	fmt.Println(report.Table3.Render())
	fmt.Println(report.Sched.Render())

	fmt.Println("Headline: even with most GPUs allocated, the GPUs in use")
	fmt.Printf("run at only %.0f%% utilization on average — the paper's central finding.\n",
		report.Table3.Overall)
}
