// Capacity planning: hold the workload fixed and sweep the cluster size to
// see how queueing delay and fragmentation respond — the operational
// question behind the paper's §3.1 ("how much does locality-aware gang
// scheduling cost in waiting time at a given provisioning level?").
package main

import (
	"fmt"
	"log"

	"philly"
	"philly/internal/cluster"
	"philly/internal/stats"
)

func main() {
	fmt.Println("Sweep: fixed 3,300-job workload vs cluster size")
	fmt.Printf("%-18s %8s %10s %10s %12s\n", "cluster", "GPUs", "delay p50", "delay p90", ">10min delayed")

	for _, racks8 := range []int{21, 27, 33, 41} {
		cfg := philly.SmallConfig()
		cfg.Seed = 7
		var rc []cluster.RackConfig
		for i := 0; i < racks8; i++ {
			rc = append(rc, cluster.RackConfig{Servers: 1, SKU: cluster.SKU8GPU})
		}
		// Keep the 2-GPU SKU pool constant.
		rc = append(rc, cluster.RackConfig{Servers: 12, SKU: cluster.SKU2GPU})
		cfg.Cluster = cluster.Config{Racks: rc}

		res, err := philly.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var delays []float64
		slow := 0
		n := 0
		for i := range res.Jobs {
			j := &res.Jobs[i]
			if !j.Completed {
				continue
			}
			n++
			d := j.FirstQueueDelay.Minutes()
			delays = append(delays, d)
			if d > 10 {
				slow++
			}
		}
		fmt.Printf("%2d racks x 8 GPU    %8d %9.1fm %9.1fm %11.1f%%\n",
			racks8, res.TotalGPUs,
			stats.Percentile(delays, 50), stats.Percentile(delays, 90),
			100*float64(slow)/float64(n))
	}
	fmt.Println("\nMore capacity shifts the delay CDF left; the fragmentation-driven")
	fmt.Println("tail for multi-server jobs shrinks last (paper §3.1.1).")
}
