// Scheduler comparison: run the same workload under Philly's locality-based
// scheduler and the Table 1 baselines (FIFO, Optimus-style SRTF,
// Tiresias-style LAS, Gandiva-style time-slicing) and compare job
// completion times — turning the paper's qualitative Table 1 into numbers.
//
// The five policy runs go through the internal/sweep harness: one policy
// axis, executed in parallel across GOMAXPROCS workers, with two seed
// replicas each so the table carries 95% confidence intervals. The output
// is bit-identical however many workers run it.
package main

import (
	"fmt"
	"log"

	"philly"
	"philly/internal/sweep"
)

func main() {
	base := philly.SmallConfig()
	base.Seed = 11
	base.Workload.TotalJobs = 3600

	policyAxis, err := sweep.ParseAxis("sched.policy=philly,fifo,srtf,tiresias,gandiva")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sweep.Matrix{Base: base, Axes: []sweep.Axis{policyAxis}}.
		Run(sweep.Options{Replicas: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table 1 made quantitative: same workload, five schedulers")
	fmt.Print(res.RenderTable())
	fmt.Println("\nSRTF/Tiresias trade long-job completion for short-job latency;")
	fmt.Println("FIFO head-of-line blocking inflates every percentile under load.")
}
