// Scheduler comparison: run the same workload under Philly's locality-based
// scheduler and the Table 1 baselines (FIFO, Optimus-style SRTF,
// Tiresias-style LAS, Gandiva-style time-slicing) and compare job
// completion times — turning the paper's qualitative Table 1 into numbers.
package main

import (
	"fmt"
	"log"

	"philly"
	"philly/internal/stats"
)

func main() {
	policies := []struct {
		name   string
		policy philly.Policy
	}{
		{"philly", philly.PolicyPhilly},
		{"fifo", philly.PolicyFIFO},
		{"srtf", philly.PolicySRTF},
		{"tiresias", philly.PolicyTiresias},
		{"gandiva", philly.PolicyGandiva},
	}

	fmt.Println("Table 1 made quantitative: same workload, five schedulers")
	fmt.Printf("%-10s %10s %10s %12s %12s %10s\n",
		"policy", "JCT p50", "JCT mean", "delay p50", "delay p90", "preempts")

	for _, p := range policies {
		cfg := philly.SmallConfig()
		cfg.Seed = 11
		cfg.Workload.TotalJobs = 3600
		cfg.Scheduler.Policy = p.policy

		res, err := philly.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var jct, delay []float64
		for i := range res.Jobs {
			j := &res.Jobs[i]
			if !j.Completed {
				continue
			}
			jct = append(jct, (j.EndAt - j.Spec.SubmitAt).Minutes())
			delay = append(delay, j.FirstQueueDelay.Minutes())
		}
		fmt.Printf("%-10s %9.1fm %9.1fm %11.1fm %11.1fm %10d\n",
			p.name,
			stats.Percentile(jct, 50), stats.Mean(jct),
			stats.Percentile(delay, 50), stats.Percentile(delay, 90),
			res.Sched.FairSharePreemptions+res.Sched.PolicyPreemptions)
	}
	fmt.Println("\nSRTF/Tiresias trade long-job completion for short-job latency;")
	fmt.Println("FIFO head-of-line blocking inflates every percentile under load.")
}
