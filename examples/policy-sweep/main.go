// Policy sweep: the §4.1 trade-off study as a three-axis matrix.
//
// The paper argues two sides of one coin: insisting on intra-server
// locality delays queueing (§3.1), while relaxing it fragments GPUs and
// lowers utilization (§4.1.2). How hard the trade bites depends on the
// workload itself, so this example crosses the scheduling policy with the
// job-size mix (the paper's default mix vs. a gang-heavy "large" cluster)
// and with a failure-rate multiplier (the Table 7 calibration vs. a
// cluster failing 1.5x as often), replicating each cell over four seeds —
// the kind of multi-configuration characterization Hu et al. and the
// Synergy study run at scale.
//
// Everything goes through internal/sweep: scenario × replica cells execute
// in parallel, yet the aggregated table is bit-identical for any worker
// count because per-run seeds derive only from (base seed, scenario index,
// replica index).
package main

import (
	"fmt"
	"log"

	"philly"
	"philly/internal/sweep"
)

func main() {
	base := philly.SmallConfig()
	base.Seed = 7
	base.Workload.TotalJobs = 2400

	var axes []sweep.Axis
	for _, spec := range []string{
		"sched.policy=philly,fifo",
		"workload.mix=default,large",
		"failure.scale=1,1.5",
	} {
		ax, err := sweep.ParseAxis(spec)
		if err != nil {
			log.Fatal(err)
		}
		axes = append(axes, ax)
	}

	res, err := sweep.Matrix{Base: base, Axes: axes}.Run(sweep.Options{Replicas: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Locality vs. fragmentation (§4.1), policy × size mix × failure rate, 4 seed replicas")
	fmt.Print(res.RenderTable())
	fmt.Println("\nmean±ci cells are 95% confidence intervals over the seed replicas;")
	fmt.Println("differences inside the interval are noise, not policy effects.")
}
