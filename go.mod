module philly

go 1.24
