package philly_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"philly"
)

var (
	facadeOnce sync.Once
	facadeRes  *philly.StudyResult
	facadeErr  error
)

func facadeResult(t *testing.T) *philly.StudyResult {
	t.Helper()
	facadeOnce.Do(func() {
		cfg := philly.SmallConfig()
		cfg.Workload.TotalJobs = 800
		cfg.Workload.Duration /= 2
		facadeRes, facadeErr = philly.Run(cfg)
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeRes
}

func TestRunAndAnalyze(t *testing.T) {
	res := facadeResult(t)
	if len(res.Jobs) != 800 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	report := philly.Analyze(res)
	out := report.RenderAll()
	for _, want := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Table 2", "Figure 5", "Table 3",
		"Table 4", "Figure 6", "Figure 7", "Table 5", "Table 6", "Figure 8",
		"Figure 9", "Table 7", "Figure 10", "Scheduling behaviour",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	var buf bytes.Buffer
	if err := report.WriteAll(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("WriteAll produced nothing")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := philly.SmallConfig()
	cfg.Workload.TotalJobs = -1
	if _, err := philly.Run(cfg); err == nil {
		t.Error("want error for invalid config")
	}
}

func TestTraceExport(t *testing.T) {
	res := facadeResult(t)
	tr := philly.NewTrace(res)
	if len(tr.Jobs) == 0 {
		t.Fatal("empty trace")
	}
	var buf bytes.Buffer
	if err := tr.WriteJobsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(tr.Jobs)+1 {
		t.Errorf("csv has %d lines, want %d", lines, len(tr.Jobs)+1)
	}
}

func TestClassifierFacade(t *testing.T) {
	if philly.NumClassifierRules() < 230 {
		t.Errorf("rules = %d, want > 230", philly.NumClassifierRules())
	}
	if got := philly.ClassifyFailureLog("CUDA out of memory"); got != "gpu_oom" {
		t.Errorf("Classify = %q", got)
	}
	if got := philly.ClassifyFailureLog("nothing to see"); got != "no_signature" {
		t.Errorf("Classify = %q", got)
	}
	if len(philly.FailureTaxonomy()) != 21 {
		t.Errorf("taxonomy size = %d", len(philly.FailureTaxonomy()))
	}
}

func TestPolicyConstantsDistinct(t *testing.T) {
	seen := map[philly.Policy]bool{}
	for _, p := range []philly.Policy{
		philly.PolicyPhilly, philly.PolicyFIFO, philly.PolicySRTF,
		philly.PolicyTiresias, philly.PolicyGandiva,
	} {
		if seen[p] {
			t.Fatalf("duplicate policy constant %v", p)
		}
		seen[p] = true
	}
}

func TestRenderTable4(t *testing.T) {
	report := philly.Analyze(facadeResult(t))
	s := philly.RenderTable4(report.Table4)
	for _, cfgName := range []string{"SameServer", "DiffServer", "IntraServer", "InterServer"} {
		if !strings.Contains(s, cfgName) {
			t.Errorf("Table 4 render missing %s", cfgName)
		}
	}
}

// TestRunFederatedFacade drives the multi-cluster surface end to end:
// spec parsing, a federated run over the shared pool, and the fleet
// analysis table.
func TestRunFederatedFacade(t *testing.T) {
	cfg, err := philly.ParseFederationSpec(9, "philly-small+helios-like")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Members) != 2 {
		t.Fatalf("got %d members", len(cfg.Members))
	}
	// Shrink the members so the facade test stays fast.
	for i := range cfg.Members {
		cfg.Members[i].Config.Workload.TotalJobs = 150
	}
	res, err := philly.RunFederated(cfg, philly.RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 2 {
		t.Fatalf("got %d member results", len(res.Members))
	}
	table := philly.AnalyzeFleet(res).Render()
	for _, want := range []string{"philly-small", "helios-like", "fleet"} {
		if !strings.Contains(table, want) {
			t.Fatalf("fleet table lacks %q:\n%s", want, table)
		}
	}
	if len(philly.FederationPresets()) < 4 {
		t.Fatalf("presets = %v", philly.FederationPresets())
	}
	if _, err := philly.ParseFederationSpec(1, "bogus-preset"); err == nil {
		t.Fatal("bogus preset accepted")
	}
}
