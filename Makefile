GO ?= go

.PHONY: check vet build test race bench bench-sweep

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the sweep harness is the only concurrent code,
# but -race also guards the examples and cmds against regressions).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark once per reporting interval; pipe to a file to
# record a BENCH_*.json-style trajectory for the PR log.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-sweep is just the harness scaling curve (workers=1,2,4,8).
bench-sweep:
	$(GO) test -bench BenchmarkSweepWorkerScaling -run '^$$' .
