GO ?= go

.PHONY: check vet build test race bench bench-sweep bench-json bench-smoke bench-compare bench-mem shuffle fuzz serve-smoke

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector — which now covers the intra-study parallel
# pipeline end to end, including TestWorkerCountInvariance (full-precision
# StudyResult equality across intra-study worker counts 1/2/4/8 and the
# sequential engine) — a one-iteration benchmark smoke so the bench path
# itself cannot rot, and a philly-load self-test against an in-process
# philly-serve so the service path cannot either.
check: vet build race bench-smoke serve-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race legs carry the million-event scale tests (trimmed to their most-
# concurrent cells under -race, but still minutes per run on one core), so
# the per-package budget is raised above go test's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

# shuffle is the order-dependence guard for the deterministic-engine
# packages (cross-engine conformance suite, federation, trace replay, and
# the reliability models feeding them): vet, then two repetitions with a
# randomized test order. CI runs it as its own job, followed by the fuzz
# smoke below.
shuffle:
	$(GO) vet ./...
	$(GO) test -count=2 -shuffle=on ./internal/simulation ./internal/federation ./internal/trace ./internal/faults ./internal/failures

# fuzz gives each fuzz target a short randomized budget on top of the
# committed corpus (testdata/fuzz/, replayed by plain `go test` too). The
# trace readers' oracle is the replay determinism contract: any accepted
# input's spec export must round-trip byte-identically. The faults/checkpoint
# spec parsers' oracle is the canonical rendering: accepted specs re-parse to
# the same config and canonicalization is a fixed point. Raise FUZZTIME to
# dig deeper.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz FuzzReadTraceCSV -fuzztime $(FUZZTIME) -run '^$$' ./internal/trace
	$(GO) test -fuzz FuzzReadTraceJSON -fuzztime $(FUZZTIME) -run '^$$' ./internal/trace
	$(GO) test -fuzz FuzzParseFaultsSpec -fuzztime $(FUZZTIME) -run '^$$' ./internal/core

# bench runs every benchmark once per reporting interval; pipe to a file to
# record a BENCH_*.json-style trajectory for the PR log.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-sweep is just the harness scaling curve (workers=1,2,4,8).
bench-sweep:
	$(GO) test -bench BenchmarkSweepWorkerScaling -run '^$$' .

# bench-smoke runs the throughput benchmark for a single iteration; it is
# part of `make check` so the benchmark path cannot silently rot.
bench-smoke:
	$(GO) test -bench=SimulationThroughput -benchtime=1x -run '^$$' .

# bench-json records a machine-readable benchmark baseline. Usage:
#   make bench-json OUT=BENCH_PR2_after.json [BENCH=.] [COUNT=3]
# The output is the go test -json event stream (one JSON object per line),
# which embeds every benchmark's ns/op, B/op, allocs/op and the domain
# metrics reported via b.ReportMetric — diffable across PRs with jq.
BENCH ?= .
COUNT ?= 3
OUT ?= bench.json
bench-json:
	$(GO) test -json -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) . > $(OUT)

# bench-mem runs just the memory-regression gate benchmark: a federated
# sweep reporting peak_rss_mb (VmHWM, linux) and allocs_total alongside the
# usual -benchmem numbers. Those two metrics are gated higher-is-worse by
# `make bench-compare THRESHOLD=...` when both baselines carry them.
bench-mem:
	$(GO) test -bench FederatedSweepMemory -benchmem -run '^$$' .

# serve-smoke boots an in-process philly-serve, drives it with philly-load
# (open-loop arrivals, repeated specs), and gates on at least one request
# being answered from the result cache — submit, dispatch, progress
# streaming, result download and the provably-exact cache all exercised in
# one shot.
serve-smoke:
	$(GO) run ./cmd/philly-load -requests 12 -rps 20 -specs 2 -require-cache-hit

# bench-compare diffs two bench-json baselines and prints per-benchmark
# ns/op and allocs/op deltas. THRESHOLD (a percent) turns it into a CI
# gate: any benchmark regressing beyond it exits non-zero. Usage:
#   make bench-compare A=BENCH_PR4_before.json B=BENCH_PR4_after.json [THRESHOLD=10]
A ?= BENCH_PR4_before.json
B ?= BENCH_PR4_after.json
THRESHOLD ?= 0
bench-compare:
	$(GO) run ./cmd/bench-compare -threshold $(THRESHOLD) $(A) $(B)
