// Package profiling wires -cpuprofile/-memprofile flags to runtime/pprof
// for the CLI binaries, so profile-guided iteration on the engine doesn't
// require a throwaway benchmark harness (the analysis recipe lives in
// PERFORMANCE.md).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that finishes the CPU profile and, when memPath is non-empty,
// writes a GC-settled heap profile. Call stop on the success path, after
// the work being profiled; error paths may exit without stopping — a
// profile of an aborted run would profile the failure, not the work.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			// Settle the heap so the profile shows live objects, not
			// garbage awaiting collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
