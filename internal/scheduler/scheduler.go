// Package scheduler implements Philly's cluster scheduler as described in
// §2.3 of the paper, plus the baseline policies of Table 1 behind the same
// interface.
//
// Philly's mechanism, reproduced here:
//
//   - One queue per virtual cluster, managed fair-share: a VC is entitled
//     to its GPU quota, and unused GPUs are lent to queues with additional
//     demand (work-conserving borrowing).
//   - Gang scheduling: a job starts only when all its GPUs can be acquired
//     at once.
//   - Locality-aware placement: the scheduler ranks racks (RDMA domains) by
//     increasing occupancy and packs each job onto the smallest number of
//     servers inside one rack. If the constraint cannot be met, the attempt
//     is retried after a back-off (2 minutes in the paper), and after a
//     fixed number of retries the constraint is progressively relaxed —
//     first to rack-level, then to anywhere — to avoid starvation.
//   - Preemption: when at least 90% of cluster GPUs are in use, jobs from
//     VCs exceeding their quota are preempted (via model checkpoint) to
//     make room for jobs within quota.
//
// The scheduler also attributes every blocked attempt to one of the paper's
// two queueing-delay causes — fair-share (VC out of quota) vs fragmentation
// (quota available but no placement satisfies the constraint) — and tracks
// out-of-order scheduling decisions, both needed for §3.1.
//
// One simplification: the paper's scheduler holds partially acquired GPUs
// for a 2-3 minute timeout before releasing them; here a blocked job holds
// nothing and simply retries after the back-off. The queueing dynamics are
// equivalent at the trace level (both appear as "job waited n back-off
// rounds, then started"), and not holding GPUs strictly understates
// fragmentation, making our fragmentation-delay results conservative.
//
// # Mutation classification for event sharding
//
// The per-VC event engine (internal/simulation.Sharded) partitions events
// into VC-local and global. The scheduler's state splits accordingly, and
// every method below falls on one side of the line:
//
//   - VC-local state: one vcState per virtual cluster — its queue, its
//     ordered-queue cache, its running map and used counter. A mutation
//     confined to one vcState could in principle run on that VC's shard.
//   - Global state: the shared physical cluster (placement search,
//     Allocate/Release), the Stats counters, and anything that walks
//     vcList — Pump, fairSharePreempt (which preempts across VCs to serve
//     an entitled one), policyPreempt, Defrag.
//
// In practice every scheduler entry point the study driver calls — Submit,
// Release, Pump, Defrag — either touches the shared cluster directly or
// must be ordered against methods that do (a Submit changes what the next
// Pump starts), so core routes ALL scheduler calls through global events
// at window barriers. What runs on the shards is the work that never
// touches the scheduler: per-job failure-log rendering, classification and
// convergence-curve analysis (see internal/core's prepare/commit split).
package scheduler

import (
	"fmt"
	"sort"

	"philly/internal/cluster"
	"philly/internal/par"
	"philly/internal/simulation"
)

// Policy selects the queue ordering / preemption discipline (Table 1).
type Policy int

const (
	// PolicyPhilly is the paper's scheduler: arrival order within VC
	// queues, locality-based placement, fair-share preemption.
	PolicyPhilly Policy = iota
	// PolicyFIFO is strict arrival order with no out-of-order starts: a
	// blocked head blocks its whole VC queue.
	PolicyFIFO
	// PolicySRTF approximates Optimus: shortest-remaining-time-first
	// ordering with preemption of longer jobs, using remaining-time
	// estimates from the convergence curve.
	PolicySRTF
	// PolicyTiresias approximates Tiresias's discretized 2D-LAS: least
	// attained service (GPU-seconds) first, with preemption.
	PolicyTiresias
	// PolicyGandiva approximates Gandiva: arrival order plus time-slicing
	// — running jobs are suspended after a quantum when jobs are waiting.
	PolicyGandiva
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyPhilly:
		return "philly"
	case PolicyFIFO:
		return "fifo"
	case PolicySRTF:
		return "srtf"
	case PolicyTiresias:
		return "tiresias"
	case PolicyGandiva:
		return "gandiva"
	default:
		return "unknown"
	}
}

// Config parameterizes the scheduler.
type Config struct {
	// Backoff is the delay before a blocked job retries (paper: 2 min).
	Backoff simulation.Time
	// RelaxToRackAfter is the number of failed attempts before the
	// locality constraint drops from packed to rack-level.
	RelaxToRackAfter int
	// RelaxToAnyAfter is the number of failed attempts before placement is
	// allowed anywhere.
	RelaxToAnyAfter int
	// PreemptionOccupancy is the cluster occupancy at which fair-share
	// preemption activates (paper: 0.90).
	PreemptionOccupancy float64
	// Policy is the scheduling discipline.
	Policy Policy
	// PreemptMinRun protects young jobs from policy preemption (SRTF /
	// Tiresias / Gandiva): a job must have run at least this long in its
	// current episode to be a victim.
	PreemptMinRun simulation.Time
	// GandivaQuantum is the time-slice for PolicyGandiva.
	GandivaQuantum simulation.Time
	// SpeculativeCandidates is the number of queue-head candidates whose
	// placement searches each Pump pass forks onto the shared pool before
	// committing them sequentially in exact queue order (0 disables
	// speculation). Results are bit-identical to the sequential search for
	// any value: a committed speculative result is re-validated against the
	// cluster's free-state epoch and replaced by an inline search on any
	// conflict.
	SpeculativeCandidates int
	// DisableSearchCache turns off the cluster's rack-epoch negative-result
	// search cache (see cluster/epoch.go). Results are identical either
	// way; the switch exists for differential tests and A/B benchmarks.
	DisableSearchCache bool
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		Backoff:             2 * simulation.Minute,
		RelaxToRackAfter:    4,
		RelaxToAnyAfter:     8,
		PreemptionOccupancy: 0.90,
		Policy:              PolicyPhilly,
		PreemptMinRun:       10 * simulation.Minute,
		GandivaQuantum:      30 * simulation.Minute,
		// Deep enough to cover every eligible candidate of a typical Pump
		// pass; harmless (and free) when fewer are eligible.
		SpeculativeCandidates: 8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Backoff <= 0 {
		return fmt.Errorf("scheduler: Backoff must be positive, got %v", c.Backoff)
	}
	if c.RelaxToRackAfter < 0 || c.RelaxToAnyAfter < c.RelaxToRackAfter {
		return fmt.Errorf("scheduler: relax thresholds must satisfy 0 <= rack (%d) <= any (%d)",
			c.RelaxToRackAfter, c.RelaxToAnyAfter)
	}
	if c.PreemptionOccupancy <= 0 || c.PreemptionOccupancy > 1 {
		return fmt.Errorf("scheduler: PreemptionOccupancy %v out of (0, 1]", c.PreemptionOccupancy)
	}
	if c.Policy == PolicyGandiva && c.GandivaQuantum <= 0 {
		return fmt.Errorf("scheduler: Gandiva policy needs a positive quantum")
	}
	if c.SpeculativeCandidates < 0 {
		return fmt.Errorf("scheduler: SpeculativeCandidates must be >= 0, got %d", c.SpeculativeCandidates)
	}
	return nil
}

// VC is a virtual cluster with a GPU quota.
type VC struct {
	Name  string
	Quota int
}

// State is a job's scheduling state.
type State int

const (
	// StateQueued means waiting for GPUs.
	StateQueued State = iota
	// StateRunning means holding GPUs.
	StateRunning
	// StateFinished means released (may be re-submitted for a retry).
	StateFinished
)

// Job is the scheduler's view of one execution episode stream. The same Job
// is re-submitted for retries so queueing statistics accumulate across
// episodes.
type Job struct {
	// ID is the cluster-wide job ID.
	ID cluster.JobID
	// VCName is the job's virtual cluster.
	VCName string
	// GPUs is the gang width.
	GPUs int
	// SubmitAt is the original submission time (fixed across episodes).
	SubmitAt simulation.Time
	// RemainingSeconds estimates remaining work (SRTF input; core updates
	// it between episodes).
	RemainingSeconds float64

	// State machine.
	State State
	// EnqueuedAt is when the current queueing episode began.
	EnqueuedAt simulation.Time
	// StartedAt is when the current running episode began.
	StartedAt simulation.Time
	// NextAttempt gates placement retries (back-off).
	NextAttempt simulation.Time
	// Attempts counts failed placement attempts in the current episode.
	Attempts int
	// Placement is the current allocation while running.
	Placement cluster.Placement

	// Episodes counts scheduling episodes (1 + retries + preemption
	// resumptions).
	Episodes int
	// FirstStartAt is when the job first began running (or 0).
	FirstStartAt simulation.Time
	// FirstQueueDelay is the queueing delay of the first episode — the
	// paper's Figure 3 metric. Negative means not yet started.
	FirstQueueDelay simulation.Time
	// TotalQueueDelay accumulates queueing delay across episodes.
	TotalQueueDelay simulation.Time
	// FairShareBlocks and FragBlocks count blocked attempts by cause.
	FairShareBlocks, FragBlocks int
	// OutOfOrderStart marks that this job ever started ahead of an
	// earlier-submitted job in its VC.
	OutOfOrderStart bool
	// Overtaken marks that some later-submitted job in the VC started
	// while this one waited.
	Overtaken bool
	// PriorAttainedGPUSeconds is the attained service from earlier
	// episodes (Tiresias input).
	PriorAttainedGPUSeconds float64
	// Preemptions counts times this job was preempted.
	Preemptions int
	// Tag is an opaque caller-owned index the scheduler never reads or
	// writes. internal/core stores the job's arena slot here so scheduler
	// events resolve to driver state without a map lookup.
	Tag int

	// queued marks membership in a VC queue — the O(1) duplicate check
	// Submit relies on. Maintained by enqueue/dequeue, never by State
	// alone (State's zero value is StateQueued, so a fresh job's State
	// cannot distinguish "never submitted" from "queued").
	queued bool
}

// NewJob constructs a queued job. The caller owns the struct.
func NewJob(id cluster.JobID, vc string, gpus int, submit simulation.Time) *Job {
	j := &Job{}
	InitJob(j, id, vc, gpus, submit)
	return j
}

// InitJob initializes a caller-allocated Job in place — the arena path:
// internal/core lays its jobs out in one contiguous slice and initializes
// each slot here instead of allocating per job.
func InitJob(j *Job, id cluster.JobID, vc string, gpus int, submit simulation.Time) {
	*j = Job{
		ID:              id,
		VCName:          vc,
		GPUs:            gpus,
		SubmitAt:        submit,
		FirstQueueDelay: -1,
	}
}

// AttainedGPUSeconds returns total attained service as of now.
func (j *Job) AttainedGPUSeconds(now simulation.Time) float64 {
	a := j.PriorAttainedGPUSeconds
	if j.State == StateRunning {
		a += float64(now-j.StartedAt) * float64(j.GPUs)
	}
	return a
}

// DelayCause is the paper's queueing-delay taxonomy (§3.1.1).
type DelayCause int

const (
	// DelayNone means the job never had a blocked attempt.
	DelayNone DelayCause = iota
	// DelayFairShare means the VC was out of quota.
	DelayFairShare
	// DelayFragmentation means quota was available but no placement
	// satisfied the locality constraint.
	DelayFragmentation
)

// String names the cause.
func (d DelayCause) String() string {
	switch d {
	case DelayNone:
		return "none"
	case DelayFairShare:
		return "fair-share"
	case DelayFragmentation:
		return "fragmentation"
	default:
		return "unknown"
	}
}

// Cause classifies the job's dominant queueing-delay cause.
func (j *Job) Cause() DelayCause {
	if j.FairShareBlocks == 0 && j.FragBlocks == 0 {
		return DelayNone
	}
	if j.FairShareBlocks > j.FragBlocks {
		return DelayFairShare
	}
	return DelayFragmentation
}

// vcState is the per-VC runtime state.
type vcState struct {
	VC
	queue   []*Job
	running map[cluster.JobID]*Job
	used    int
	// queuedGPUs is the GPU total over queue, maintained incrementally so
	// QueuedGPUDemand is O(1) — federation's quota rebalancing reads it per
	// VC at every fleet barrier.
	queuedGPUs int

	// ordered is the policy-ordered snapshot of queue that orderQueue hands
	// out, reused across calls. orderedValid marks it current: scheduling
	// keys are frozen while a Pump runs (queued jobs' remaining work and
	// attained service only change between Pumps), so the snapshot stays
	// valid until queue membership changes or the Pump ends.
	ordered      []*Job
	orderedValid bool
	// sorter is the preallocated sort.Interface adapter for the policies
	// that order by a dynamic key (SRTF, Tiresias).
	sorter queueSorter
}

// invalidateOrder discards the cached queue ordering.
func (vc *vcState) invalidateOrder() { vc.orderedValid = false }

// queueSorter sorts a job slice by the configured policy's key. It lives on
// vcState so sort.Stable receives an already-heap-allocated interface value
// — the former sort.SliceStable closures allocated on every Pump.
type queueSorter struct {
	jobs   []*Job
	now    simulation.Time
	policy Policy
}

func (q *queueSorter) Len() int      { return len(q.jobs) }
func (q *queueSorter) Swap(i, k int) { q.jobs[i], q.jobs[k] = q.jobs[k], q.jobs[i] }
func (q *queueSorter) Less(i, k int) bool {
	a, b := q.jobs[i], q.jobs[k]
	switch q.policy {
	case PolicySRTF:
		if a.RemainingSeconds != b.RemainingSeconds {
			return a.RemainingSeconds < b.RemainingSeconds
		}
	case PolicyTiresias:
		ai, ak := a.AttainedGPUSeconds(q.now), b.AttainedGPUSeconds(q.now)
		if ai != ak {
			return ai < ak
		}
	}
	return a.SubmitAt < b.SubmitAt
}

// Stats are cluster-wide scheduling counters.
type Stats struct {
	// Starts is the number of scheduling decisions (episode starts).
	Starts int
	// OutOfOrderStarts counts starts that jumped ahead of an
	// earlier-submitted queued job in the same VC.
	OutOfOrderStarts int
	// HarmlessOutOfOrder counts out-of-order starts where the overtaken
	// job could not have used the GPUs anyway (paper: 85% of
	// out-of-order occurrences for large jobs).
	HarmlessOutOfOrder int
	// BlockedAttempts counts failed placement attempts.
	BlockedAttempts int
	// FairSharePreemptions counts preemptions triggered by quota
	// enforcement; PolicyPreemptions counts SRTF/Tiresias/Gandiva ones.
	FairSharePreemptions int
	PolicyPreemptions    int
	// Migrations counts defragmentation moves (§5's migration guideline).
	Migrations int
	// PlacementSearches counts cluster placement searches (inline calls
	// plus committed speculative ones — exactly the searches a fully
	// sequential scheduler would have run); CacheShortCircuits is how many
	// of those were answered by the rack-epoch negative-result cache
	// without walking any rack. Both are pure functions of the scheduling
	// sequence, so they are bit-identical across worker counts and engines.
	PlacementSearches  int
	CacheShortCircuits int
	// SpeculativeCommits counts speculative placement searches whose
	// results were used at commit (the free state was untouched since the
	// fork); SpeculativeConflicts counts candidates whose speculative
	// result had to be discarded for an inline re-search because an earlier
	// commit moved the free-state epoch.
	SpeculativeCommits   int
	SpeculativeConflicts int
}

// StartEvent reports a job start from Pump.
type StartEvent struct {
	Job        *Job
	Placement  cluster.Placement
	OutOfOrder bool
	// Harmless is meaningful when OutOfOrder: the overtaken job could not
	// have been placed even with this job's GPUs free.
	Harmless bool
	// Locality is the constraint level the placement satisfied.
	Locality cluster.Locality
	// Seq orders this event against preemptions within the same Pump: a
	// job can start and then be preempted in one scheduling round, and the
	// consumer must replay the two in causal order.
	Seq int
}

// PreemptEvent reports a preemption from Pump.
type PreemptEvent struct {
	Job *Job
	// FairShare distinguishes quota preemption from policy preemption.
	FairShare bool
	// Seq orders this event against starts within the same Pump.
	Seq int
}

// PumpResult is everything that happened during one Pump. The event slices
// are backed by scheduler-owned buffers reused across Pumps: a result is
// valid until the next Pump call, which is the contract the single-threaded
// driver relies on (it fully consumes each result before pumping again).
type PumpResult struct {
	Starts      []StartEvent
	Preemptions []PreemptEvent
	// NextWake is the earliest future time at which a queued job becomes
	// eligible to retry, or 0 when no queued job is waiting on back-off.
	NextWake simulation.Time

	seq int // event sequencer
}

// nextSeq hands out per-Pump event sequence numbers.
func (r *PumpResult) nextSeq() int {
	r.seq++
	return r.seq
}

// Scheduler is the cluster scheduler. Not safe for concurrent use; the
// simulator is single-threaded.
type Scheduler struct {
	cfg     Config
	cluster *cluster.Cluster
	vcs     map[string]*vcState
	vcOrder []string
	// vcList holds the VCs in vcOrder, resolved once: the scheduling loops
	// run on every Pump and previously paid a string-map lookup per VC.
	vcList []*vcState
	stats  Stats

	// candScratch and victimScratch are reused preemption-search buffers;
	// candSorter and idSorter are the preallocated sort adapters over
	// candScratch.
	candScratch   []*Job
	victimScratch []victimRef
	candSorter    candidateSorter
	idSorter      jobIDSorter
	// startsBuf and preemptBuf back PumpResult's event slices across Pumps.
	startsBuf  []StartEvent
	preemptBuf []PreemptEvent

	// pool, when set, runs the speculative candidate searches as fork-join
	// tasks; a nil pool runs them inline with identical results. specs and
	// searchers are reused across Pumps (one private search context per
	// candidate slot), and specEpoch is the cluster free-state epoch the
	// current speculation batch ran against.
	pool      *par.Pool
	specs     []specEntry
	searchers []*cluster.Searcher
	specEpoch uint64
	// specFn is the fork-join body, hoisted so each speculation round does
	// not allocate a fresh closure (pump loops run it thousands of times).
	specFn func(int)
}

// specEntry is one speculatively searched queue candidate.
type specEntry struct {
	job   *Job
	level cluster.Locality
	p     cluster.Placement
	ok    bool
	used  bool
}

// SetPool attaches a fork-join pool for speculative candidate searches.
// Scheduling output is bit-identical with or without a pool — the pool only
// decides where the speculative searches run.
func (s *Scheduler) SetPool(p *par.Pool) { s.pool = p }

// victimRef pairs a preemption victim with its VC.
type victimRef struct {
	vc *vcState
	j  *Job
}

// candidateSorter orders preemption candidates youngest-episode-first
// (StartedAt descending, ties by ID ascending) — the same total order the
// former per-call sort.Slice closure produced.
type candidateSorter struct{ jobs []*Job }

func (c *candidateSorter) Len() int      { return len(c.jobs) }
func (c *candidateSorter) Swap(i, k int) { c.jobs[i], c.jobs[k] = c.jobs[k], c.jobs[i] }
func (c *candidateSorter) Less(i, k int) bool {
	if c.jobs[i].StartedAt != c.jobs[k].StartedAt {
		return c.jobs[i].StartedAt > c.jobs[k].StartedAt
	}
	return c.jobs[i].ID < c.jobs[k].ID
}

// New builds a scheduler over the cluster with the given virtual clusters.
func New(cfg Config, cl *cluster.Cluster, vcs []VC) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cl == nil {
		return nil, fmt.Errorf("scheduler: nil cluster")
	}
	if len(vcs) == 0 {
		return nil, fmt.Errorf("scheduler: at least one VC required")
	}
	s := &Scheduler{cfg: cfg, cluster: cl, vcs: map[string]*vcState{}}
	for _, vc := range vcs {
		if vc.Name == "" || vc.Quota <= 0 {
			return nil, fmt.Errorf("scheduler: invalid VC %+v", vc)
		}
		if _, dup := s.vcs[vc.Name]; dup {
			return nil, fmt.Errorf("scheduler: duplicate VC %q", vc.Name)
		}
		s.vcs[vc.Name] = &vcState{VC: vc, running: map[cluster.JobID]*Job{}}
		s.vcOrder = append(s.vcOrder, vc.Name)
	}
	sort.Strings(s.vcOrder)
	for _, name := range s.vcOrder {
		s.vcList = append(s.vcList, s.vcs[name])
	}
	if cfg.DisableSearchCache {
		cl.SetSearchCache(false)
	}
	s.specFn = func(i int) {
		e := &s.specs[i]
		e.p, e.ok = s.searchers[i].FindPlacement(e.job.GPUs, e.level)
	}
	return s, nil
}

// Stats returns a copy of the counters, folding in the cluster's search
// totals (the cluster owns the search/short-circuit counts so that inline
// and committed-speculative searches are tallied at one choke-point).
func (s *Scheduler) Stats() Stats {
	st := s.stats
	st.PlacementSearches, st.CacheShortCircuits = s.cluster.SearchStats()
	return st
}

// NumVCs returns the number of virtual clusters — the natural shard count
// for per-VC event partitioning.
func (s *Scheduler) NumVCs() int { return len(s.vcList) }

// VCIndex returns the dense index of the named VC in the scheduler's
// sorted VC order (the same order every scheduling loop walks), or -1 for
// an unknown name. Core uses it to assign each job's shard-local events to
// its VC's event lane; the mapping depends only on the configured VC names,
// so it is identical across runs, worker counts and engines.
func (s *Scheduler) VCIndex(name string) int {
	for i, vc := range s.vcList {
		if vc.Name == name {
			return i
		}
	}
	return -1
}

// VCUsage returns the GPUs currently used by the VC.
func (s *Scheduler) VCUsage(name string) int {
	if vc := s.vcs[name]; vc != nil {
		return vc.used
	}
	return 0
}

// QueueLen returns the number of queued jobs in the VC.
func (s *Scheduler) QueueLen(name string) int {
	if vc := s.vcs[name]; vc != nil {
		return len(vc.queue)
	}
	return 0
}

// Withdraw removes a queued job from its VC queue without starting it —
// the federation spillover path: the job leaves this cluster's scheduler
// in StateFinished, keeping whatever queueing statistics it accumulated,
// and is re-submitted to another member cluster by the caller. The job
// must currently be queued.
func (s *Scheduler) Withdraw(id cluster.JobID) error {
	for _, vc := range s.vcList {
		for _, q := range vc.queue {
			if q.ID != id {
				continue
			}
			return s.WithdrawJob(q)
		}
	}
	return fmt.Errorf("scheduler: job %d is not queued; cannot withdraw", id)
}

// WithdrawJob is Withdraw for callers that already hold the *Job — it skips
// the all-queues scan (the driver keeps job handles in its arena).
func (s *Scheduler) WithdrawJob(j *Job) error {
	if j == nil || !j.queued || j.State != StateQueued {
		id := cluster.JobID(-1)
		if j != nil {
			id = j.ID
		}
		return fmt.Errorf("scheduler: job %d is not queued; cannot withdraw", id)
	}
	s.dequeue(s.vcs[j.VCName], j.ID)
	j.State = StateFinished
	return nil
}

// VCNames returns the VC names in the scheduler's sorted walk order.
func (s *Scheduler) VCNames() []string {
	return append([]string(nil), s.vcOrder...)
}

// VCQuota returns the VC's current GPU quota (0 for unknown names).
func (s *Scheduler) VCQuota(name string) int {
	if vc := s.vcs[name]; vc != nil {
		return vc.Quota
	}
	return 0
}

// SetQuota updates a VC's GPU quota in place. Quotas are pure policy —
// fair-share attribution and preemption thresholds — so changing one
// mid-run never invalidates allocations; it only steers future decisions.
// The federation's fleet-wide rebalancing ticks call this at window
// barriers.
func (s *Scheduler) SetQuota(name string, quota int) error {
	vc := s.vcs[name]
	if vc == nil {
		return fmt.Errorf("scheduler: unknown VC %q", name)
	}
	if quota <= 0 {
		return fmt.Errorf("scheduler: VC %q quota must be positive, got %d", name, quota)
	}
	vc.Quota = quota
	return nil
}

// QueuedGPUDemand returns the total GPUs requested by the VC's queued jobs.
// O(1): the per-VC counter is maintained by enqueue/dequeue.
func (s *Scheduler) QueuedGPUDemand(name string) int {
	if vc := s.vcs[name]; vc != nil {
		return vc.queuedGPUs
	}
	return 0
}

// Submit enqueues a job (first episode or retry). The job must not be
// queued or running.
func (s *Scheduler) Submit(j *Job, now simulation.Time) error {
	vc := s.vcs[j.VCName]
	if vc == nil {
		return fmt.Errorf("scheduler: job %d references unknown VC %q", j.ID, j.VCName)
	}
	if j.GPUs <= 0 {
		return fmt.Errorf("scheduler: job %d requests %d GPUs", j.ID, j.GPUs)
	}
	if j.GPUs > s.cluster.TotalGPUs() {
		return fmt.Errorf("scheduler: job %d requests %d GPUs but the cluster has %d",
			j.ID, j.GPUs, s.cluster.TotalGPUs())
	}
	if j.State == StateRunning {
		return fmt.Errorf("scheduler: job %d is running; cannot submit", j.ID)
	}
	if j.queued {
		return fmt.Errorf("scheduler: job %d already queued", j.ID)
	}
	j.State = StateQueued
	j.EnqueuedAt = now
	j.NextAttempt = now
	j.Attempts = 0
	j.Episodes++
	s.enqueue(vc, j)
	return nil
}

// enqueue appends the job to the VC queue, maintaining the queue counters.
func (s *Scheduler) enqueue(vc *vcState, j *Job) {
	j.queued = true
	vc.queue = append(vc.queue, j)
	vc.queuedGPUs += j.GPUs
	vc.invalidateOrder()
}

// Release frees a running job's GPUs (episode finished).
func (s *Scheduler) Release(id cluster.JobID, now simulation.Time) error {
	for _, vc := range s.vcList {
		if j, ok := vc.running[id]; ok {
			return s.release(vc, j, now)
		}
	}
	return fmt.Errorf("scheduler: job %d is not running", id)
}

// ReleaseJob is Release for callers that already hold the *Job — it skips
// the per-VC running-map scans on the episode-finish hot path.
func (s *Scheduler) ReleaseJob(j *Job, now simulation.Time) error {
	if j == nil || j.State != StateRunning {
		id := cluster.JobID(-1)
		if j != nil {
			id = j.ID
		}
		return fmt.Errorf("scheduler: job %d is not running", id)
	}
	return s.release(s.vcs[j.VCName], j, now)
}

func (s *Scheduler) release(vc *vcState, j *Job, now simulation.Time) error {
	if err := s.cluster.Release(j.ID); err != nil {
		return err
	}
	j.PriorAttainedGPUSeconds += float64(now-j.StartedAt) * float64(j.GPUs)
	j.State = StateFinished
	j.Placement = cluster.Placement{}
	vc.used -= j.GPUs
	delete(vc.running, j.ID)
	return nil
}

// localityFor returns the constraint level for the job's attempt count,
// clamped to what the topology can ever satisfy: a gang wider than the
// largest rack can never meet a single-RDMA-domain constraint, so making it
// wait through relaxation rounds would be pure starvation.
func (s *Scheduler) localityFor(j *Job) cluster.Locality {
	if j.GPUs > s.cluster.MaxRackGPUs() {
		return cluster.LocalityRelaxed
	}
	switch {
	case j.Attempts < s.cfg.RelaxToRackAfter:
		return cluster.LocalityPacked
	case j.Attempts < s.cfg.RelaxToAnyAfter:
		return cluster.LocalityRack
	default:
		return cluster.LocalityRelaxed
	}
}

// orderQueue returns the VC's queue in the policy's scheduling order. The
// returned slice is a cached snapshot owned by the VC: it is rebuilt only
// when queue membership changed since the last call (or a new Pump began),
// not on every scheduling pass. Queued jobs' ordering keys cannot change
// while a Pump runs — remaining work and attained service are updated by
// the driver between Pumps, and a queued job accrues no service — so a
// membership-stable snapshot is identical to a fresh re-sort. Stable sort
// on an identical comparator yields a unique order, so the cached snapshot
// is bit-for-bit what the former per-call sort.SliceStable produced.
func (s *Scheduler) orderQueue(vc *vcState, now simulation.Time) []*Job {
	if vc.orderedValid {
		return vc.ordered
	}
	vc.ordered = append(vc.ordered[:0], vc.queue...)
	switch s.cfg.Policy {
	case PolicySRTF, PolicyTiresias:
		vc.sorter = queueSorter{jobs: vc.ordered, now: now, policy: s.cfg.Policy}
		sort.Stable(&vc.sorter)
	default:
		// Arrival order (queue is already FIFO).
	}
	vc.orderedValid = true
	return vc.ordered
}

// Pump runs scheduling to a fixpoint at the current time. Core calls it on
// job arrival, job completion, and at NextWake times.
func (s *Scheduler) Pump(now simulation.Time) PumpResult {
	// Queued jobs' ordering keys may have been updated by the driver since
	// the previous Pump (e.g. remaining-work estimates after a preemption),
	// so cached queue orderings are stale at entry.
	for _, vc := range s.vcList {
		vc.invalidateOrder()
	}
	res := PumpResult{Starts: s.startsBuf[:0], Preemptions: s.preemptBuf[:0]}
	for {
		s.speculate(now)
		started := s.pumpOnce(now, &res)
		if !started {
			break
		}
	}
	// Drop any unconsumed speculative entries: job pointers must not
	// outlive the Pump (the driver recycles job state between Pumps).
	s.specs = s.specs[:0]
	if s.cfg.Policy != PolicyFIFO && s.cfg.Policy != PolicyPhilly {
		s.policyPreempt(now, &res)
	}
	if s.cluster.Occupancy() >= s.cfg.PreemptionOccupancy {
		s.fairSharePreempt(now, &res)
	}
	// Compute the next wake-up among blocked queued jobs.
	for _, vc := range s.vcList {
		for _, j := range vc.queue {
			if j.NextAttempt > now && (res.NextWake == 0 || j.NextAttempt < res.NextWake) {
				res.NextWake = j.NextAttempt
			}
		}
	}
	// Keep any growth of the event buffers for the next Pump.
	s.startsBuf = res.Starts[:0]
	s.preemptBuf = res.Preemptions[:0]
	return res
}

// pumpOnce makes one pass over all queues; returns whether any job started.
func (s *Scheduler) pumpOnce(now simulation.Time, res *PumpResult) bool {
	any := false
	for _, vc := range s.vcList {
		for _, j := range s.orderQueue(vc, now) {
			if j.State != StateQueued || j.NextAttempt > now {
				if s.cfg.Policy == PolicyFIFO {
					break // a blocked head blocks the whole queue
				}
				continue
			}
			if s.tryStart(vc, j, now, res) {
				any = true
			} else if s.cfg.Policy == PolicyFIFO {
				break
			}
		}
	}
	return any
}

// speculate forks placement searches for the first SpeculativeCandidates
// eligible queued jobs — collected in the exact order pumpOnce will visit
// them — against the current (quiescent) free state. pumpOnce's commits
// then consume the results sequentially via placeFor, so the schedule is
// bit-identical to running every search inline: the first commit always
// sees an unchanged epoch, and any later candidate whose epoch moved falls
// back to an inline search. Candidates the negative-result cache already
// proves infeasible are skipped here — their inline search short-circuits
// in O(1) anyway, so forking them would only burn pool slots (and in the
// blocked-queue steady state this leaves nothing to fork at all).
func (s *Scheduler) speculate(now simulation.Time) {
	s.specs = s.specs[:0]
	k := s.cfg.SpeculativeCandidates
	if k <= 0 {
		return
	}
collect:
	for _, vc := range s.vcList {
		for _, j := range s.orderQueue(vc, now) {
			if j.State != StateQueued || j.NextAttempt > now {
				if s.cfg.Policy == PolicyFIFO {
					continue collect // a blocked head blocks the whole queue
				}
				continue
			}
			level := s.localityFor(j)
			if s.cluster.KnownInfeasible(j.GPUs, level) {
				if s.cfg.Policy == PolicyFIFO {
					continue collect // its inline retry will break the queue
				}
				continue
			}
			s.specs = append(s.specs, specEntry{job: j, level: level})
			if len(s.specs) >= k {
				break collect
			}
		}
	}
	if len(s.specs) == 0 {
		return
	}
	for len(s.searchers) < len(s.specs) {
		s.searchers = append(s.searchers, s.cluster.NewSearcher())
	}
	s.specEpoch = s.cluster.Epoch()
	// The forked searches are read-only over quiescent free state; each
	// task touches only its own entry and its own Searcher scratch.
	s.pool.ForkJoin(len(s.specs), s.specFn)
}

// placeFor resolves one candidate's placement: a speculative result when
// one exists for this job at this level and the free state is untouched
// since the fork, an inline search otherwise. Exactly one search is tallied
// either way — the counters, like the placements, match a fully sequential
// scheduler's bit for bit.
func (s *Scheduler) placeFor(j *Job, level cluster.Locality) (cluster.Placement, bool) {
	for i := range s.specs {
		e := &s.specs[i]
		if e.used || e.job != j {
			continue
		}
		if e.level != level {
			// A preemption path re-tries the job at a relaxed level; the
			// speculative answer is for a different search. Leave the entry
			// for the regular pass.
			break
		}
		e.used = true
		if s.cluster.Epoch() == s.specEpoch {
			s.cluster.CommitSpeculative(j.GPUs, level, e.ok)
			s.stats.SpeculativeCommits++
			return e.p, e.ok
		}
		s.stats.SpeculativeConflicts++
		break
	}
	return s.cluster.FindPlacement(j.GPUs, level)
}

// tryStart attempts to place and start one job.
func (s *Scheduler) tryStart(vc *vcState, j *Job, now simulation.Time, res *PumpResult) bool {
	level := s.localityFor(j)
	p, ok := s.placeFor(j, level)
	if !ok {
		// Blocked: attribute the delay cause (§3.1.1). Fair-share delay
		// "happens when the virtual cluster uses up its assigned quota";
		// a job arriving while its VC is within quota but unplaceable is
		// fragmentation delay.
		if vc.used >= vc.Quota {
			j.FairShareBlocks++
		} else {
			j.FragBlocks++
		}
		j.Attempts++
		j.NextAttempt = now + s.cfg.Backoff
		s.stats.BlockedAttempts++
		return false
	}

	// Out-of-order bookkeeping: does this start overtake an
	// earlier-submitted job still queued in the same VC?
	ooo := false
	harmless := false
	for _, other := range vc.queue {
		if other.ID == j.ID || other.SubmitAt >= j.SubmitAt {
			continue
		}
		ooo = true
		other.Overtaken = true
		if !harmless {
			// Could the overtaken job have used these GPUs? Test before we
			// take them: if it cannot be placed now at its own level, the
			// idle GPUs are used "without prolonging the waiting job".
			if _, can := s.cluster.FindPlacement(other.GPUs, s.localityFor(other)); !can {
				harmless = true
			}
		}
	}

	if err := s.cluster.Allocate(j.ID, p); err != nil {
		// FindPlacement over live state makes this unreachable; surfacing
		// it as a panic would hide scheduler bugs less than limping on.
		panic(fmt.Sprintf("scheduler: allocation failed after successful search: %v", err))
	}
	s.dequeue(vc, j.ID)
	j.State = StateRunning
	j.StartedAt = now
	j.Placement = p
	delay := now - j.EnqueuedAt
	j.TotalQueueDelay += delay
	if j.FirstStartAt == 0 && j.FirstQueueDelay < 0 {
		j.FirstStartAt = now
		j.FirstQueueDelay = delay
	}
	j.OutOfOrderStart = j.OutOfOrderStart || ooo
	vc.running[j.ID] = j
	vc.used += j.GPUs

	s.stats.Starts++
	if ooo {
		s.stats.OutOfOrderStarts++
		if harmless {
			s.stats.HarmlessOutOfOrder++
		}
	}
	res.Starts = append(res.Starts, StartEvent{
		Job: j, Placement: p, OutOfOrder: ooo, Harmless: harmless, Locality: level,
		Seq: res.nextSeq(),
	})
	return true
}

func (s *Scheduler) dequeue(vc *vcState, id cluster.JobID) {
	for i, q := range vc.queue {
		if q.ID == id {
			vc.queue = append(vc.queue[:i], vc.queue[i+1:]...)
			vc.queuedGPUs -= q.GPUs
			q.queued = false
			vc.invalidateOrder()
			return
		}
	}
}

// preempt releases a victim and requeues it with back-off.
func (s *Scheduler) preempt(vc *vcState, victim *Job, now simulation.Time, fairShare bool, res *PumpResult) {
	if err := s.release(vc, victim, now); err != nil {
		panic(fmt.Sprintf("scheduler: preempting running job failed: %v", err))
	}
	victim.Preemptions++
	victim.State = StateQueued
	victim.EnqueuedAt = now
	victim.NextAttempt = now + s.cfg.Backoff
	victim.Attempts = 0
	victim.Episodes++
	s.enqueue(vc, victim)
	if fairShare {
		s.stats.FairSharePreemptions++
	} else {
		s.stats.PolicyPreemptions++
	}
	res.Preemptions = append(res.Preemptions, PreemptEvent{
		Job: victim, FairShare: fairShare, Seq: res.nextSeq(),
	})
}

// fairSharePreempt implements quota enforcement: when the cluster is nearly
// full, entitled jobs (within quota) reclaim GPUs from VCs running over
// quota.
func (s *Scheduler) fairSharePreempt(now simulation.Time, res *PumpResult) {
	for _, vc := range s.vcList {
		// Find the first entitled queued job that is actually waiting.
		var entitled *Job
		for _, j := range s.orderQueue(vc, now) {
			if j.State == StateQueued && vc.used+j.GPUs <= vc.Quota {
				entitled = j
				break
			}
		}
		if entitled == nil {
			continue
		}
		// Gather victims from over-quota VCs, youngest episodes first
		// (least progress lost to the checkpoint restore).
		victims := s.victimScratch[:0]
		freed := s.cluster.FreeGPUs()
		for _, ovc := range s.vcList {
			if ovc.used <= ovc.Quota {
				continue
			}
			candidates := s.candScratch[:0]
			for _, r := range ovc.running {
				candidates = append(candidates, r)
			}
			s.candScratch = candidates
			s.candSorter.jobs = candidates
			sort.Sort(&s.candSorter)
			overBy := ovc.used - ovc.Quota
			for _, c := range candidates {
				if freed >= entitled.GPUs || overBy <= 0 {
					break
				}
				victims = append(victims, victimRef{ovc, c})
				freed += c.GPUs
				overBy -= c.GPUs
			}
			if freed >= entitled.GPUs {
				break
			}
		}
		s.victimScratch = victims[:0]
		if freed < entitled.GPUs || len(victims) == 0 {
			continue
		}
		for _, v := range victims {
			s.preempt(v.vc, v.j, now, true, res)
		}
		// Start the entitled job on the reclaimed GPUs (relaxed placement:
		// reclaimed capacity is fragmented by construction).
		entitled.Attempts = s.cfg.RelaxToAnyAfter
		s.tryStart(vc, entitled, now, res)
	}
}

// policyPreempt implements the preemptive disciplines of the baseline
// policies (SRTF / Tiresias / Gandiva).
func (s *Scheduler) policyPreempt(now simulation.Time, res *PumpResult) {
	for _, vc := range s.vcList {
		for _, waiting := range s.orderQueue(vc, now) {
			// Preemptive disciplines act regardless of the waiting job's
			// placement back-off: rotation/priority decisions are about the
			// running set, not about retrying a failed placement.
			if waiting.State != StateQueued {
				continue
			}
			victim := s.pickVictim(vc, waiting, now)
			if victim == nil {
				continue
			}
			s.preempt(vc, victim, now, false, res)
			// Give the waiting job an immediate relaxed shot at the GPUs.
			waiting.Attempts = s.cfg.RelaxToAnyAfter
			s.tryStart(vc, waiting, now, res)
		}
	}
}

// pickVictim selects a running job in the VC to preempt in favor of
// waiting, per the policy's discipline. Returns nil when no preemption is
// warranted.
func (s *Scheduler) pickVictim(vc *vcState, waiting *Job, now simulation.Time) *Job {
	candidates := s.candScratch[:0]
	for _, r := range vc.running {
		if now-r.StartedAt < s.cfg.PreemptMinRun {
			continue
		}
		if r.GPUs < waiting.GPUs {
			continue // preempting smaller jobs cannot free enough capacity
		}
		candidates = append(candidates, r)
	}
	s.candScratch = candidates
	if len(candidates) == 0 {
		return nil
	}
	s.idSorter.jobs = candidates
	sort.Sort(&s.idSorter)
	switch s.cfg.Policy {
	case PolicySRTF:
		// Preempt the job with the most remaining work, if the waiting job
		// has strictly less.
		var worst *Job
		for _, c := range candidates {
			if worst == nil || c.RemainingSeconds > worst.RemainingSeconds {
				worst = c
			}
		}
		if worst != nil && waiting.RemainingSeconds < worst.RemainingSeconds {
			return worst
		}
	case PolicyTiresias:
		// Preempt the job with the most attained service, if the waiting
		// job has strictly less (LAS).
		var worst *Job
		for _, c := range candidates {
			if worst == nil || c.AttainedGPUSeconds(now) > worst.AttainedGPUSeconds(now) {
				worst = c
			}
		}
		if worst != nil && waiting.AttainedGPUSeconds(now) < worst.AttainedGPUSeconds(now) {
			return worst
		}
	case PolicyGandiva:
		// Time-slice: rotate out the job that has held GPUs the longest
		// past its quantum.
		var worst *Job
		for _, c := range candidates {
			if now-c.StartedAt < s.cfg.GandivaQuantum {
				continue
			}
			if worst == nil || c.StartedAt < worst.StartedAt {
				worst = c
			}
		}
		return worst
	}
	return nil
}

// jobIDSorter orders jobs by ascending ID. IDs are unique, so the result
// is the same total order any sort produces.
type jobIDSorter struct{ jobs []*Job }

func (s *jobIDSorter) Len() int           { return len(s.jobs) }
func (s *jobIDSorter) Swap(i, k int)      { s.jobs[i], s.jobs[k] = s.jobs[k], s.jobs[i] }
func (s *jobIDSorter) Less(i, k int) bool { return s.jobs[i].ID < s.jobs[k].ID }

// RunningJobs returns all running jobs, ordered by ID (deterministic).
func (s *Scheduler) RunningJobs() []*Job {
	var out []*Job
	for _, vc := range s.vcList {
		for _, j := range vc.running {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// EachQueued calls fn for every queued job, in VC walk order then FIFO
// queue order — deterministic and allocation-free, for callers (the
// federation spillover scan) that impose their own total order anyway.
func (s *Scheduler) EachQueued(fn func(*Job)) {
	for _, vc := range s.vcList {
		for _, j := range vc.queue {
			fn(j)
		}
	}
}

// QueuedJobs returns all queued jobs, ordered by ID.
func (s *Scheduler) QueuedJobs() []*Job {
	var out []*Job
	for _, vc := range s.vcList {
		out = append(out, vc.queue...)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
