package scheduler

import (
	"testing"

	"philly/internal/cluster"
)

// defragCluster: 1 rack x 4 servers x 8 GPUs.
func defragCluster() *cluster.Cluster {
	return cluster.MustNew(cluster.Config{Racks: []cluster.RackConfig{
		{Servers: 4, SKU: cluster.SKU8GPU},
	}})
}

func TestDefragConsolidatesLoneSmallJobs(t *testing.T) {
	cl := defragCluster()
	s := newSched(t, DefaultConfig(), cl, []VC{{Name: "vca", Quota: 32}})
	// One 1-GPU job alone on server 0, another alone on server 1 — two
	// fragmented servers. Plus a partially used server 2 to receive them.
	a := NewJob(1, "vca", 1, 0)
	b := NewJob(2, "vca", 1, 0)
	carrier := NewJob(3, "vca", 4, 0)
	if err := cl.Allocate(1, cluster.Placement{Slots: []cluster.Slot{{Server: 0, GPU: 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Allocate(2, cluster.Placement{Slots: []cluster.Slot{{Server: 1, GPU: 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Allocate(3, cluster.Placement{Slots: []cluster.Slot{{Server: 2, GPU: 0}, {Server: 2, GPU: 1}, {Server: 2, GPU: 2}, {Server: 2, GPU: 3}}}); err != nil {
		t.Fatal(err)
	}
	// Register them as running with the scheduler by hand.
	for _, j := range []*Job{a, b, carrier} {
		j.State = StateRunning
		p, _ := cl.PlacementOf(j.ID)
		j.Placement = p
		s.vcs["vca"].running[j.ID] = j
		s.vcs["vca"].used += j.GPUs
	}

	before := cl.EmptyServers()
	events := s.Defrag(100, 2, 10)
	if len(events) != 2 {
		t.Fatalf("migrations = %d, want 2", len(events))
	}
	after := cl.EmptyServers()
	if after <= before {
		t.Errorf("defrag did not free servers: %d -> %d empty", before, after)
	}
	// Both small jobs should now share server 2 with the carrier.
	for _, id := range []cluster.JobID{1, 2} {
		p, ok := cl.PlacementOf(id)
		if !ok {
			t.Fatalf("job %d lost its allocation", id)
		}
		if got := p.ServerIDs(); len(got) != 1 || got[0] != 2 {
			t.Errorf("job %d on servers %v, want [2]", id, got)
		}
	}
	if s.Stats().Migrations != 2 {
		t.Errorf("stats.Migrations = %d", s.Stats().Migrations)
	}
	// Accounting is intact.
	if cl.FreeGPUs() != 32-6 {
		t.Errorf("free = %d, want 26", cl.FreeGPUs())
	}
}

func TestDefragLeavesWideAndPackedJobsAlone(t *testing.T) {
	cl := defragCluster()
	s := newSched(t, DefaultConfig(), cl, []VC{{Name: "vca", Quota: 32}})
	// A full-server job (not migratable: width > maxWidth) and a 1-GPU job
	// on an otherwise busy server (no consolidation benefit).
	big := NewJob(1, "vca", 8, 0)
	if err := cl.Allocate(1, cluster.Placement{Slots: []cluster.Slot{
		{Server: 0, GPU: 0}, {Server: 0, GPU: 1}, {Server: 0, GPU: 2}, {Server: 0, GPU: 3},
		{Server: 0, GPU: 4}, {Server: 0, GPU: 5}, {Server: 0, GPU: 6}, {Server: 0, GPU: 7},
	}}); err != nil {
		t.Fatal(err)
	}
	small := NewJob(2, "vca", 1, 0)
	other := NewJob(3, "vca", 3, 0)
	if err := cl.Allocate(2, cluster.Placement{Slots: []cluster.Slot{{Server: 1, GPU: 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Allocate(3, cluster.Placement{Slots: []cluster.Slot{{Server: 1, GPU: 1}, {Server: 1, GPU: 2}, {Server: 1, GPU: 3}}}); err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{big, small, other} {
		j.State = StateRunning
		p, _ := cl.PlacementOf(j.ID)
		j.Placement = p
		s.vcs["vca"].running[j.ID] = j
		s.vcs["vca"].used += j.GPUs
	}
	events := s.Defrag(100, 2, 10)
	if len(events) != 0 {
		t.Fatalf("unexpected migrations: %+v", events)
	}
}

func TestDefragRespectsMoveBudget(t *testing.T) {
	cl := defragCluster()
	s := newSched(t, DefaultConfig(), cl, []VC{{Name: "vca", Quota: 32}})
	// Three lone 1-GPU jobs, one receiving server.
	for i := 0; i < 3; i++ {
		id := cluster.JobID(i + 1)
		if err := cl.Allocate(id, cluster.Placement{Slots: []cluster.Slot{{Server: i, GPU: 0}}}); err != nil {
			t.Fatal(err)
		}
		j := NewJob(id, "vca", 1, 0)
		j.State = StateRunning
		p, _ := cl.PlacementOf(id)
		j.Placement = p
		s.vcs["vca"].running[id] = j
		s.vcs["vca"].used++
	}
	if err := cl.Allocate(9, cluster.Placement{Slots: []cluster.Slot{{Server: 3, GPU: 0}, {Server: 3, GPU: 1}}}); err != nil {
		t.Fatal(err)
	}
	carrier := NewJob(9, "vca", 2, 0)
	carrier.State = StateRunning
	p, _ := cl.PlacementOf(9)
	carrier.Placement = p
	s.vcs["vca"].running[9] = carrier
	s.vcs["vca"].used += 2

	if got := len(s.Defrag(100, 2, 1)); got != 1 {
		t.Fatalf("migrations = %d, want budget-capped 1", got)
	}
	if got := len(s.Defrag(100, 2, 0)); got != 0 {
		t.Fatalf("zero budget migrated %d", got)
	}
}
