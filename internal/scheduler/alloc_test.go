package scheduler

import (
	"fmt"
	"testing"

	"philly/internal/cluster"
	"philly/internal/simulation"
)

// allocTestSetup builds a full cluster with one queued job that cannot be
// placed, so every Pump exercises the ordering, placement-search, and
// back-off paths without starting anything.
func allocTestSetup(t *testing.T, policy Policy) *Scheduler {
	t.Helper()
	cl := cluster.MustNew(cluster.Config{Racks: []cluster.RackConfig{
		{Servers: 4, SKU: cluster.SKU8GPU},
		{Servers: 4, SKU: cluster.SKU8GPU},
	}})
	cfg := DefaultConfig()
	cfg.Policy = policy
	// Keep the preemptive policies from rotating jobs (a legitimate start
	// allocates its placement); this guard measures the no-placement path.
	cfg.PreemptMinRun = 1 << 40
	s, err := New(cfg, cl, []VC{{Name: "vc1", Quota: 64}})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the cluster with 8-GPU gangs so later jobs block on placement.
	for i := 0; i < 8; i++ {
		j := NewJob(cluster.JobID(i+1), "vc1", 8, 0)
		if err := s.Submit(j, 0); err != nil {
			t.Fatal(err)
		}
	}
	if res := s.Pump(0); len(res.Starts) != 8 {
		t.Fatalf("expected 8 starts filling the cluster, got %d", len(res.Starts))
	}
	// The blocked job: no free GPUs anywhere.
	blocked := NewJob(100, "vc1", 8, 0)
	if err := s.Submit(blocked, 0); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPumpCycleAllocations guards the scheduler's hot path: a Pump cycle
// that places nothing — the overwhelmingly common case while jobs wait out
// their back-off — must not allocate. This pins the PR 2 optimizations
// (cached queue ordering instead of per-call copy+sort, bucket-indexed
// placement search instead of per-attempt sorting, reused preemption and
// event buffers); reintroducing a per-Pump allocation fails here.
func TestPumpCycleAllocations(t *testing.T) {
	for _, policy := range []Policy{PolicyPhilly, PolicyFIFO, PolicySRTF, PolicyTiresias} {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			s := allocTestSetup(t, policy)
			now := int64(1)
			avg := testing.AllocsPerRun(200, func() {
				// Advance past the back-off each round so the blocked job
				// genuinely attempts (and fails) placement every Pump.
				now += int64(s.cfg.Backoff) + 1
				s.Pump(simulation.Time(now))
			})
			if avg > 0.05 {
				t.Errorf("policy %v: blocked Pump cycle allocates %.2f/op, want 0", policy, avg)
			}
		})
	}
}

// TestIdlePumpAllocations: pumping with nothing queued must be free.
func TestIdlePumpAllocations(t *testing.T) {
	cl := cluster.MustNew(cluster.Config{Racks: []cluster.RackConfig{{Servers: 2, SKU: cluster.SKU8GPU}}})
	s, err := New(DefaultConfig(), cl, []VC{{Name: "vc1", Quota: 16}})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	avg := testing.AllocsPerRun(200, func() {
		now++
		s.Pump(simulation.Time(now))
	})
	if avg > 0.05 {
		t.Errorf("idle Pump allocates %.2f/op, want 0", avg)
	}
}
