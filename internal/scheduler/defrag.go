package scheduler

import (
	"sort"

	"philly/internal/simulation"
)

// Migration support implements the paper's §5 guideline: "Support for job
// migration to defragment the cluster, especially applied to smaller jobs,
// will mitigate interference for small jobs, and will improve intra-job
// locality for large jobs." Small running jobs are checkpoint-migrated off
// lightly used servers so that whole servers free up for waiting gangs.

// MigrationEvent reports one job moved during defragmentation.
type MigrationEvent struct {
	Job  *Job
	From []int // server IDs before
	To   []int // server IDs after
}

// Defrag migrates up to maxMoves small running jobs (width <= maxWidth)
// away from servers where they are the minority occupant, consolidating
// free GPUs into whole servers. A job is only moved when its new placement
// (a) does not touch any of its current servers and (b) leaves at least one
// of its former servers completely empty, so every move strictly reduces
// fragmentation. Returns the migrations performed; the caller applies the
// checkpoint-restore cost to each moved job.
func (s *Scheduler) Defrag(now simulation.Time, maxWidth, maxMoves int) []MigrationEvent {
	if maxMoves <= 0 {
		return nil
	}
	var events []MigrationEvent
	// Candidate jobs: small, running, alone-on-their-server-tail. Sorted
	// for determinism: jobs on the emptiest servers first (cheapest wins).
	type candidate struct {
		job      *Job
		usedHere int
	}
	var cands []candidate
	for _, name := range s.vcOrder {
		for _, j := range s.vcs[name].running {
			if j.GPUs > maxWidth {
				continue
			}
			servers := j.Placement.ServerIDs()
			if len(servers) != 1 {
				continue
			}
			srv := s.cluster.Server(servers[0])
			// Only worth moving when the job's server is mostly free: the
			// move can then liberate the whole machine.
			if srv.UsedGPUs() != j.GPUs {
				continue
			}
			if srv.FreeGPUs() == 0 {
				continue
			}
			cands = append(cands, candidate{job: j, usedHere: srv.UsedGPUs()})
		}
	}
	sort.Slice(cands, func(i, k int) bool {
		if cands[i].usedHere != cands[k].usedHere {
			return cands[i].usedHere < cands[k].usedHere
		}
		return cands[i].job.ID < cands[k].job.ID
	})

	for _, c := range cands {
		if len(events) >= maxMoves {
			break
		}
		j := c.job
		from := j.Placement.ServerIDs()
		fromSet := map[int]bool{}
		for _, id := range from {
			fromSet[id] = true
		}
		// Release, search, and either move or restore.
		old := j.Placement
		if err := s.cluster.Release(j.ID); err != nil {
			panic("scheduler: defrag release failed: " + err.Error())
		}
		p, ok := s.cluster.FindMigrationTarget(j.GPUs, fromSet)
		if !ok {
			// No strictly better spot; put the job back where it was.
			if err := s.cluster.Allocate(j.ID, old); err != nil {
				panic("scheduler: defrag restore failed: " + err.Error())
			}
			continue
		}
		if err := s.cluster.Allocate(j.ID, p); err != nil {
			panic("scheduler: defrag move failed: " + err.Error())
		}
		j.Placement = p
		s.stats.Migrations++
		events = append(events, MigrationEvent{Job: j, From: from, To: p.ServerIDs()})
	}
	return events
}

// The single-server best-fit target search lives on the cluster now
// (cluster.FindMigrationTarget): the free-count bucket bitmaps give the
// former full-inventory scan's "smallest free >= gpus, partly used, ties by
// lowest ID" answer as a first-set-bit walk.
