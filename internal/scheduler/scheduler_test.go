package scheduler

import (
	"testing"

	"philly/internal/cluster"
	"philly/internal/simulation"
)

// testCluster: 2 racks x 2 servers x 8 GPUs = 32 GPUs.
func testCluster() *cluster.Cluster {
	return cluster.MustNew(cluster.Config{Racks: []cluster.RackConfig{
		{Servers: 2, SKU: cluster.SKU8GPU},
		{Servers: 2, SKU: cluster.SKU8GPU},
	}})
}

func newSched(t *testing.T, cfg Config, cl *cluster.Cluster, vcs []VC) *Scheduler {
	t.Helper()
	s, err := New(cfg, cl, vcs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func defaultVCs() []VC {
	return []VC{{Name: "vca", Quota: 16}, {Name: "vcb", Quota: 16}}
}

func TestNewValidation(t *testing.T) {
	cl := testCluster()
	if _, err := New(DefaultConfig(), nil, defaultVCs()); err == nil {
		t.Error("want error for nil cluster")
	}
	if _, err := New(DefaultConfig(), cl, nil); err == nil {
		t.Error("want error for no VCs")
	}
	if _, err := New(DefaultConfig(), cl, []VC{{Name: "", Quota: 8}}); err == nil {
		t.Error("want error for empty VC name")
	}
	if _, err := New(DefaultConfig(), cl, []VC{{Name: "a", Quota: 8}, {Name: "a", Quota: 8}}); err == nil {
		t.Error("want error for duplicate VC")
	}
	bad := DefaultConfig()
	bad.Backoff = 0
	if _, err := New(bad, cl, defaultVCs()); err == nil {
		t.Error("want error for zero backoff")
	}
	bad2 := DefaultConfig()
	bad2.RelaxToAnyAfter = 1
	bad2.RelaxToRackAfter = 5
	if _, err := New(bad2, cl, defaultVCs()); err == nil {
		t.Error("want error for inverted relax thresholds")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSched(t, DefaultConfig(), testCluster(), defaultVCs())
	if err := s.Submit(NewJob(1, "nope", 1, 0), 0); err == nil {
		t.Error("want error for unknown VC")
	}
	if err := s.Submit(NewJob(1, "vca", 0, 0), 0); err == nil {
		t.Error("want error for zero GPUs")
	}
	if err := s.Submit(NewJob(1, "vca", 33, 0), 0); err == nil {
		t.Error("want error for impossible gang width")
	}
	j := NewJob(1, "vca", 1, 0)
	if err := s.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(j, 0); err == nil {
		t.Error("want error for double submit")
	}
}

func TestImmediateStartOnEmptyCluster(t *testing.T) {
	s := newSched(t, DefaultConfig(), testCluster(), defaultVCs())
	j := NewJob(1, "vca", 8, 0)
	if err := s.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(0)
	if len(res.Starts) != 1 {
		t.Fatalf("starts = %d, want 1", len(res.Starts))
	}
	ev := res.Starts[0]
	if ev.Job.ID != 1 || ev.Placement.NumGPUs() != 8 {
		t.Fatalf("bad start event %+v", ev)
	}
	if ev.Placement.NumServers() != 1 {
		t.Errorf("8-GPU job on %d servers, want packed on 1", ev.Placement.NumServers())
	}
	if j.State != StateRunning || j.FirstQueueDelay != 0 {
		t.Errorf("job state %v delay %v", j.State, j.FirstQueueDelay)
	}
	if s.VCUsage("vca") != 8 {
		t.Errorf("VC usage = %d, want 8", s.VCUsage("vca"))
	}
	if ev.OutOfOrder {
		t.Error("lone job cannot be out of order")
	}
}

func TestGangSchedulingAllOrNothing(t *testing.T) {
	cl := testCluster()
	s := newSched(t, DefaultConfig(), cl, defaultVCs())
	// Fill 28 of 32 GPUs.
	filler := NewJob(1, "vca", 16, 0)
	filler2 := NewJob(2, "vcb", 12, 0)
	if err := s.Submit(filler, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(filler2, 0); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	if cl.FreeGPUs() != 4 {
		t.Fatalf("free = %d, want 4", cl.FreeGPUs())
	}
	// An 8-GPU job must not start on 4 free GPUs.
	big := NewJob(3, "vcb", 8, 10)
	if err := s.Submit(big, 10); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(10)
	if len(res.Starts) != 0 {
		t.Fatal("gang violated: partial capacity start")
	}
	if big.State != StateQueued {
		t.Fatal("job should remain queued")
	}
	if cl.FreeGPUs() != 4 {
		t.Error("blocked job must hold nothing")
	}
	if res.NextWake != 10+DefaultConfig().Backoff {
		t.Errorf("NextWake = %v, want %v", res.NextWake, 10+DefaultConfig().Backoff)
	}
}

func TestDelayCauseAttribution(t *testing.T) {
	cl := testCluster()
	s := newSched(t, DefaultConfig(), cl, []VC{{Name: "vca", Quota: 8}, {Name: "vcb", Quota: 32}})
	// vca uses its full quota.
	a1 := NewJob(1, "vca", 8, 0)
	if err := s.Submit(a1, 0); err != nil {
		t.Fatal(err)
	}
	// vcb fills the rest of the cluster (borrowing beyond... no, 24 within quota).
	b1 := NewJob(2, "vcb", 24, 0)
	if err := s.Submit(b1, 0); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	if cl.FreeGPUs() != 0 {
		t.Fatalf("free = %d, want 0", cl.FreeGPUs())
	}
	// vca submits another job: it is over quota -> fair-share delay.
	a2 := NewJob(3, "vca", 8, 5)
	if err := s.Submit(a2, 5); err != nil {
		t.Fatal(err)
	}
	s.Pump(5)
	if a2.FairShareBlocks != 1 || a2.FragBlocks != 0 {
		t.Errorf("fair-share blocks = %d, frag = %d; want 1, 0", a2.FairShareBlocks, a2.FragBlocks)
	}
	if a2.Cause() != DelayFairShare {
		t.Errorf("cause = %v, want fair-share", a2.Cause())
	}
	// vcb submits a job within quota but the cluster is full -> fragmentation.
	b2 := NewJob(4, "vcb", 8, 6)
	if err := s.Submit(b2, 6); err != nil {
		t.Fatal(err)
	}
	s.Pump(6)
	if b2.FragBlocks != 1 || b2.FairShareBlocks != 0 {
		t.Errorf("frag blocks = %d, fair-share = %d; want 1, 0", b2.FragBlocks, b2.FairShareBlocks)
	}
	if b2.Cause() != DelayFragmentation {
		t.Errorf("cause = %v, want fragmentation", b2.Cause())
	}
}

func TestFragmentationThenLocalityRelaxation(t *testing.T) {
	cl := testCluster()
	cfg := DefaultConfig()
	cfg.RelaxToRackAfter = 2
	cfg.RelaxToAnyAfter = 4
	s := newSched(t, cfg, cl, []VC{{Name: "vca", Quota: 32}})
	// Fragment the cluster: occupy 2 GPUs on every server so no server has
	// 8 free and no rack has 16 free... each server has 6 free, each rack
	// 12 free; cluster has 24 free.
	for i, srv := range cl.Servers() {
		if err := cl.Allocate(cluster.JobID(100+i), cluster.Placement{
			Slots: []cluster.Slot{{Server: srv.ID, GPU: 0}, {Server: srv.ID, GPU: 1}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A 16-GPU job cannot be packed (needs 2 full servers in one rack) nor
	// placed rack-local (12 free per rack); relaxed works (24 free).
	j := NewJob(1, "vca", 16, 0)
	if err := s.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	now := simulation.Time(0)
	for attempt := 0; attempt < 4; attempt++ {
		res := s.Pump(now)
		if len(res.Starts) != 0 {
			t.Fatalf("started at attempt %d (level should still be constrained)", attempt)
		}
		now = res.NextWake
	}
	res := s.Pump(now)
	if len(res.Starts) != 1 {
		t.Fatalf("relaxed placement did not start the job (attempts=%d)", j.Attempts)
	}
	if res.Starts[0].Locality != cluster.LocalityRelaxed {
		t.Errorf("locality = %v, want relaxed", res.Starts[0].Locality)
	}
	if got := res.Starts[0].Placement.NumServers(); got < 3 {
		t.Errorf("relaxed 16-GPU placement on %d servers; expect spread >= 3", got)
	}
	if j.Cause() != DelayFragmentation {
		t.Errorf("cause = %v, want fragmentation", j.Cause())
	}
}

func TestQuotaBorrowingWorkConserving(t *testing.T) {
	cl := testCluster()
	s := newSched(t, DefaultConfig(), cl, []VC{{Name: "vca", Quota: 8}, {Name: "vcb", Quota: 24}})
	// vca wants 24 GPUs: 16 over quota, but vcb is idle -> borrow.
	j := NewJob(1, "vca", 24, 0)
	if err := s.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(0)
	if len(res.Starts) != 1 {
		t.Fatal("work-conserving borrow failed")
	}
	if s.VCUsage("vca") != 24 {
		t.Errorf("usage = %d", s.VCUsage("vca"))
	}
}

func TestOutOfOrderTracking(t *testing.T) {
	cl := testCluster()
	s := newSched(t, DefaultConfig(), cl, []VC{{Name: "vca", Quota: 32}})
	// Large job that cannot fit (cluster fragmented), then a small job that
	// can: small one starts out of order.
	for i, srv := range cl.Servers() {
		if err := cl.Allocate(cluster.JobID(100+i), cluster.Placement{
			Slots: []cluster.Slot{{Server: srv.ID, GPU: 0}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	big := NewJob(1, "vca", 32, 0) // impossible now (28 free)
	small := NewJob(2, "vca", 1, 5)
	if err := s.Submit(big, 0); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	if err := s.Submit(small, 5); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(5)
	if len(res.Starts) != 1 || res.Starts[0].Job.ID != 2 {
		t.Fatalf("small job should start, got %+v", res.Starts)
	}
	if !res.Starts[0].OutOfOrder {
		t.Error("start should be out of order")
	}
	if !res.Starts[0].Harmless {
		t.Error("overtake is harmless: the big job cannot place regardless")
	}
	if !big.Overtaken {
		t.Error("big job should be marked overtaken")
	}
	st := s.Stats()
	if st.OutOfOrderStarts != 1 || st.HarmlessOutOfOrder != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFIFOHeadOfLineBlocks(t *testing.T) {
	cl := testCluster()
	cfg := DefaultConfig()
	cfg.Policy = PolicyFIFO
	s := newSched(t, cfg, cl, []VC{{Name: "vca", Quota: 32}})
	// Make a 32-GPU head impossible, then a small job behind it.
	if err := cl.Allocate(999, cluster.Placement{Slots: []cluster.Slot{{Server: 0, GPU: 0}}}); err != nil {
		t.Fatal(err)
	}
	big := NewJob(1, "vca", 32, 0)
	small := NewJob(2, "vca", 1, 1)
	if err := s.Submit(big, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(small, 1); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(1)
	if len(res.Starts) != 0 {
		t.Fatal("FIFO must not start the small job past a blocked head")
	}
}

func TestReleaseAndRetrySubmit(t *testing.T) {
	cl := testCluster()
	s := newSched(t, DefaultConfig(), cl, defaultVCs())
	j := NewJob(1, "vca", 4, 0)
	if err := s.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	if err := s.Release(1, 100); err != nil {
		t.Fatal(err)
	}
	if cl.FreeGPUs() != 32 {
		t.Errorf("free = %d after release", cl.FreeGPUs())
	}
	if j.State != StateFinished {
		t.Errorf("state = %v", j.State)
	}
	if j.PriorAttainedGPUSeconds != 400 {
		t.Errorf("attained = %v, want 400", j.PriorAttainedGPUSeconds)
	}
	if err := s.Release(1, 100); err == nil {
		t.Error("want error for double release")
	}
	// Retry: resubmit same job.
	if err := s.Submit(j, 200); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(200)
	if len(res.Starts) != 1 {
		t.Fatal("retry did not start")
	}
	if j.Episodes != 2 {
		t.Errorf("episodes = %d, want 2", j.Episodes)
	}
	// FirstQueueDelay must reflect only the first episode.
	if j.FirstQueueDelay != 0 {
		t.Errorf("FirstQueueDelay = %v", j.FirstQueueDelay)
	}
}

func TestFairSharePreemption(t *testing.T) {
	cl := testCluster()
	cfg := DefaultConfig()
	s := newSched(t, cfg, cl, []VC{{Name: "vca", Quota: 16}, {Name: "vcb", Quota: 16}})
	// vcb borrows the whole cluster.
	b1 := NewJob(1, "vcb", 16, 0)
	b2 := NewJob(2, "vcb", 16, 1)
	if err := s.Submit(b1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(b2, 1); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	s.Pump(1)
	if cl.FreeGPUs() != 0 {
		t.Fatalf("free = %d, want 0", cl.FreeGPUs())
	}
	// vca (fully under quota) submits: occupancy is 100% >= 90%, so the
	// scheduler must preempt vcb's over-quota job.
	a := NewJob(3, "vca", 16, 10)
	if err := s.Submit(a, 10); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(10)
	if len(res.Preemptions) == 0 {
		t.Fatal("no preemption for entitled job")
	}
	if !res.Preemptions[0].FairShare {
		t.Error("preemption should be fair-share")
	}
	// The youngest over-quota job (b2) is the victim.
	if res.Preemptions[0].Job.ID != 2 {
		t.Errorf("victim = %d, want 2 (youngest)", res.Preemptions[0].Job.ID)
	}
	started := false
	for _, ev := range res.Starts {
		if ev.Job.ID == 3 {
			started = true
		}
	}
	if !started {
		t.Error("entitled job did not start after preemption")
	}
	if b2.State != StateQueued || b2.Preemptions != 1 {
		t.Errorf("victim state = %v preemptions = %d", b2.State, b2.Preemptions)
	}
	if s.Stats().FairSharePreemptions == 0 {
		t.Error("stats missed fair-share preemption")
	}
}

func TestNoPreemptionBelowOccupancyThreshold(t *testing.T) {
	cl := testCluster()
	s := newSched(t, DefaultConfig(), cl, []VC{{Name: "vca", Quota: 4}, {Name: "vcb", Quota: 28}})
	// vca runs over quota but cluster is half empty.
	a := NewJob(1, "vca", 16, 0)
	if err := s.Submit(a, 0); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	b := NewJob(2, "vcb", 8, 1)
	if err := s.Submit(b, 1); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(1)
	if len(res.Preemptions) != 0 {
		t.Error("preempted below the 90% occupancy threshold")
	}
	if len(res.Starts) != 1 {
		t.Error("b should start on free GPUs")
	}
}

func TestSRTFOrdersByRemaining(t *testing.T) {
	cl := testCluster()
	cfg := DefaultConfig()
	cfg.Policy = PolicySRTF
	s := newSched(t, cfg, cl, []VC{{Name: "vca", Quota: 32}})
	// Fill the cluster, then queue two jobs; on release the shorter one
	// must start first despite arriving later.
	filler := NewJob(1, "vca", 32, 0)
	if err := s.Submit(filler, 0); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	long := NewJob(2, "vca", 8, 1)
	long.RemainingSeconds = 10000
	short := NewJob(3, "vca", 8, 2)
	short.RemainingSeconds = 100
	if err := s.Submit(long, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(short, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(1, 1000); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(1000)
	if len(res.Starts) < 2 {
		t.Fatalf("starts = %d", len(res.Starts))
	}
	if res.Starts[0].Job.ID != 3 {
		t.Errorf("SRTF started job %d first, want 3 (shortest)", res.Starts[0].Job.ID)
	}
}

func TestSRTFPreemptsLongerJob(t *testing.T) {
	cl := testCluster()
	cfg := DefaultConfig()
	cfg.Policy = PolicySRTF
	cfg.PreemptMinRun = 0
	s := newSched(t, cfg, cl, []VC{{Name: "vca", Quota: 32}})
	long := NewJob(1, "vca", 32, 0)
	long.RemainingSeconds = 100000
	if err := s.Submit(long, 0); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	short := NewJob(2, "vca", 8, 100)
	short.RemainingSeconds = 60
	if err := s.Submit(short, 100); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(100)
	if len(res.Preemptions) != 1 || res.Preemptions[0].Job.ID != 1 {
		t.Fatalf("SRTF should preempt the long job: %+v", res.Preemptions)
	}
	if res.Preemptions[0].FairShare {
		t.Error("policy preemption mislabeled fair-share")
	}
	started := false
	for _, ev := range res.Starts {
		if ev.Job.ID == 2 {
			started = true
		}
	}
	if !started {
		t.Error("short job did not start after preemption")
	}
}

func TestTiresiasPrefersLeastAttained(t *testing.T) {
	cl := testCluster()
	cfg := DefaultConfig()
	cfg.Policy = PolicyTiresias
	cfg.PreemptMinRun = 0
	s := newSched(t, cfg, cl, []VC{{Name: "vca", Quota: 32}})
	old := NewJob(1, "vca", 32, 0)
	if err := s.Submit(old, 0); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	// After a long run, a fresh job (zero attained service) preempts it.
	fresh := NewJob(2, "vca", 8, 50000)
	if err := s.Submit(fresh, 50000); err != nil {
		t.Fatal(err)
	}
	res := s.Pump(50000)
	if len(res.Preemptions) != 1 || res.Preemptions[0].Job.ID != 1 {
		t.Fatalf("Tiresias should preempt the high-attained job: %+v", res.Preemptions)
	}
}

func TestGandivaTimeSlicing(t *testing.T) {
	cl := testCluster()
	cfg := DefaultConfig()
	cfg.Policy = PolicyGandiva
	cfg.GandivaQuantum = 10 * simulation.Minute
	cfg.PreemptMinRun = 0
	s := newSched(t, cfg, cl, []VC{{Name: "vca", Quota: 32}})
	a := NewJob(1, "vca", 32, 0)
	if err := s.Submit(a, 0); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	b := NewJob(2, "vca", 32, 60)
	if err := s.Submit(b, 60); err != nil {
		t.Fatal(err)
	}
	// Before the quantum elapses, no rotation.
	res := s.Pump(60)
	if len(res.Preemptions) != 0 {
		t.Fatal("rotated before quantum")
	}
	// After the quantum, the running job rotates out.
	res = s.Pump(15 * simulation.Minute)
	if len(res.Preemptions) != 1 || res.Preemptions[0].Job.ID != 1 {
		t.Fatalf("expected rotation of job 1: %+v", res.Preemptions)
	}
	started := false
	for _, ev := range res.Starts {
		if ev.Job.ID == 2 {
			started = true
		}
	}
	if !started {
		t.Error("waiting job did not start after rotation")
	}
}

func TestPumpDeterminism(t *testing.T) {
	run := func() []cluster.JobID {
		cl := testCluster()
		s, err := New(DefaultConfig(), cl, defaultVCs())
		if err != nil {
			t.Fatal(err)
		}
		var order []cluster.JobID
		now := simulation.Time(0)
		for i := 0; i < 20; i++ {
			vc := "vca"
			if i%2 == 1 {
				vc = "vcb"
			}
			j := NewJob(cluster.JobID(i+1), vc, 1+(i%8), now)
			if err := s.Submit(j, now); err != nil {
				t.Fatal(err)
			}
			res := s.Pump(now)
			for _, ev := range res.Starts {
				order = append(order, ev.Job.ID)
			}
			if i%3 == 2 && len(s.RunningJobs()) > 0 {
				victim := s.RunningJobs()[0]
				if err := s.Release(victim.ID, now); err != nil {
					t.Fatal(err)
				}
				res = s.Pump(now)
				for _, ev := range res.Starts {
					order = append(order, ev.Job.ID)
				}
			}
			now += 30
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestQueueAccessors(t *testing.T) {
	s := newSched(t, DefaultConfig(), testCluster(), defaultVCs())
	j := NewJob(1, "vca", 40, 0)
	if err := s.Submit(j, 0); err == nil {
		t.Fatal("over-capacity job accepted")
	}
	j = NewJob(1, "vca", 8, 0)
	if err := s.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	if s.QueueLen("vca") != 1 || s.QueueLen("vcb") != 0 || s.QueueLen("nope") != 0 {
		t.Error("QueueLen wrong")
	}
	if len(s.QueuedJobs()) != 1 {
		t.Error("QueuedJobs wrong")
	}
	s.Pump(0)
	if len(s.RunningJobs()) != 1 || s.RunningJobs()[0].ID != 1 {
		t.Error("RunningJobs wrong")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[Policy]string{
		PolicyPhilly: "philly", PolicyFIFO: "fifo", PolicySRTF: "srtf",
		PolicyTiresias: "tiresias", PolicyGandiva: "gandiva", Policy(99): "unknown",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", p, got, want)
		}
	}
	if DelayFairShare.String() != "fair-share" || DelayFragmentation.String() != "fragmentation" ||
		DelayNone.String() != "none" || DelayCause(9).String() != "unknown" {
		t.Error("DelayCause names wrong")
	}
}
