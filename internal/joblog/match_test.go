package joblog

import (
	"strings"
	"testing"

	"philly/internal/stats"
)

// sequentialMatch is the reference implementation the automaton must
// reproduce exactly.
func sequentialMatch(rules []Rule, log string) int32 {
	lower := strings.ToLower(log)
	for i, r := range rules {
		if strings.Contains(lower, r.Pattern) {
			return int32(i)
		}
	}
	return -1
}

// TestMatcherEquivalentToSequentialScan drives both implementations over
// generated failure and training logs for every reason code, plus adversarial
// corner cases, and requires identical rule attribution.
func TestMatcherEquivalentToSequentialScan(t *testing.T) {
	g := NewGenerator()
	rng := stats.NewRNG(99)
	var logs []string
	for _, r := range Rules() {
		for _, gpus := range []int{1, 8} {
			logs = append(logs, g.FailureLog(r.Reason, gpus, rng))
		}
	}
	logs = append(logs,
		"",
		"clean run, nothing to see",
		"CUDA OUT OF MEMORY", // case folding
		"cuda out of memor",  // near miss
		"prefix cuda error: out of memorycuda out of memory suffix", // overlapping
		strings.Repeat("x", 4096)+"traceback (most recent call last)",
		"typeerror: raised then cuda out of memory", // two matches, priority pick
		"Killed process", "KILLED PROCESS 1234",
	)
	for _, l := range logs {
		want := sequentialMatch(compiledRules, l)
		got := matchRules(compiledRules, compiledMatcher, l)
		if got != want {
			t.Fatalf("match mismatch on %q: automaton %d, sequential %d", truncate(l), got, want)
		}
	}
}

// TestMatcherNonASCIIFallsBack pins the Unicode-compatibility path: the
// Kelvin sign lowercases to 'k' under strings.ToLower, which the byte
// automaton cannot see; matchRules must agree with the sequential scan.
func TestMatcherNonASCIIFallsBack(t *testing.T) {
	log := "Killed process" // ToLower -> "killed process" (cpu_oom)
	want := sequentialMatch(compiledRules, log)
	got := matchRules(compiledRules, compiledMatcher, log)
	if got != want {
		t.Fatalf("non-ASCII log: automaton %d, sequential %d", got, want)
	}
	if want < 0 || compiledRules[want].Reason != "cpu_oom" {
		t.Fatalf("expected kelvin-sign log to classify as cpu_oom, got rule %d", want)
	}
}

func truncate(s string) string {
	if len(s) > 80 {
		return s[:80] + "..."
	}
	return s
}
