package joblog

import (
	"math"
	"strings"
	"testing"

	"philly/internal/failures"
	"philly/internal/stats"
)

func TestRuleCountMatchesPaperScale(t *testing.T) {
	// Paper §4.2.1: "our classifier has in total more than 230 rules".
	if n := NumRules(); n < 230 {
		t.Fatalf("classifier has %d rules, paper requires > 230", n)
	}
}

func TestRulesCoverEveryTaxonomyReason(t *testing.T) {
	byReason := map[string]int{}
	for _, r := range Rules() {
		byReason[r.Reason]++
	}
	for _, reason := range failures.Taxonomy() {
		if byReason[reason.Code] == 0 {
			t.Errorf("no classifier rules for reason %s", reason.Code)
		}
	}
}

func TestRulesAreLowercaseAndOrdered(t *testing.T) {
	rules := Rules()
	for i, r := range rules {
		if r.Pattern != strings.ToLower(r.Pattern) {
			t.Errorf("rule %d pattern not lowercase: %q", i, r.Pattern)
		}
		if i > 0 {
			prev := rules[i-1]
			if prev.Priority > r.Priority {
				t.Fatalf("rules not sorted by priority at %d", i)
			}
			if prev.Priority == r.Priority && len(prev.Pattern) < len(r.Pattern) {
				t.Fatalf("rules not sorted by specificity at %d", i)
			}
		}
	}
}

func TestClassifyExplicitSignatures(t *testing.T) {
	c := NewClassifier()
	cases := []struct {
		log  string
		want string
	}{
		{"RuntimeError: CUDA out of memory. Tried to allocate 2.00 GiB", failures.CodeGPUOOM},
		{"train.py: SyntaxError: invalid syntax", failures.CodeSyntaxError},
		{"ImportError: No module named 'cntk'", failures.CodeImportError},
		{"FileNotFoundError: [Errno 2] no such file", failures.CodeIncorrectInputs},
		{"terminate called after throwing an instance of 'std::bad_alloc'", failures.CodeCPUOOM},
		{"MPI_ABORT was invoked on rank 3", failures.CodeMPIError},
		{"mpirun noticed that process rank 2 exited on signal 9", failures.CodeMPIRuntime},
		{"org.apache.hadoop.security.AccessControlException: denied", failures.CodePermissionError},
		{"Loss is NaN at iteration 4000, stopping", failures.CodeModelDiverged},
		{"Failed to save model checkpoint after epoch 12", failures.CodeModelCkptError},
		{"CUDA error: an illegal memory access was encountered", failures.CodeInvalidMemAccess},
		{"failed call to cuInit: CUDA_ERROR_NO_DEVICE", failures.CodeCUDAInitFailed},
		{"Uncorrectable ECC error encountered on device 3", failures.CodeGPUECCError},
		{"error while loading shared libraries: libcudart.so.8.0", failures.CodeCannotLoadLibs},
		{"container preempted by scheduler at 2017-11-02", failures.CodeJobPreempted},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.log); got != tc.want {
			t.Errorf("Classify(%q) = %s, want %s", tc.log, got, tc.want)
		}
	}
}

func TestClassifyPrefersRootCauseOverTraceback(t *testing.T) {
	c := NewClassifier()
	log := strings.Join([]string{
		"[pytorch] step 100: images/sec=120",
		"Traceback (most recent call last):",
		"  File \"train.py\", line 42, in <module>",
		"ValueError: dimensions must be equal, got 128 and 256",
	}, "\n")
	if got := c.Classify(log); got != failures.CodeSemanticError {
		t.Errorf("Classify = %s, want semantic_error (root cause over traceback)", got)
	}
	// A bare traceback with no explicit signature falls back to the
	// implicit class.
	bare := "Traceback (most recent call last):\n  File \"x.py\", line 1\n    boom()"
	if got := c.Classify(bare); got != failures.CodeTraceback {
		t.Errorf("Classify(bare traceback) = %s, want traceback_from_crash", got)
	}
}

func TestClassifyCaseInsensitive(t *testing.T) {
	c := NewClassifier()
	if got := c.Classify("CUDA OUT OF MEMORY"); got != failures.CodeGPUOOM {
		t.Errorf("uppercase log: got %s", got)
	}
}

func TestClassifyNoSignature(t *testing.T) {
	c := NewClassifier()
	if got := c.Classify(""); got != NoSignature {
		t.Errorf("empty log: got %s", got)
	}
	if got := c.Classify("everything is fine, worker exited"); got != NoSignature {
		t.Errorf("benign log: got %s", got)
	}
}

func TestClassifySpecificityWithinPriority(t *testing.T) {
	c := NewClassifier()
	// "segmentation fault (core dumped)" matches both the core_dump strong
	// rule and the implicit "segmentation fault"; strong must win.
	if got := c.Classify("Segmentation fault (core dumped)"); got != failures.CodeCoreDump {
		t.Errorf("got %s, want core_dump", got)
	}
	// The invalid-mem-access explicit rule beats the core-dump strong rule
	// when both appear.
	log := "CUDA error: an illegal memory access was encountered\nAborted (core dumped)"
	if got := c.Classify(log); got != failures.CodeInvalidMemAccess {
		t.Errorf("got %s, want invalid_mem_access", got)
	}
}

func TestMatchingRule(t *testing.T) {
	c := NewClassifier()
	r, ok := c.MatchingRule("CUDA out of memory")
	if !ok || r.Reason != failures.CodeGPUOOM {
		t.Errorf("MatchingRule = %+v, %v", r, ok)
	}
	if _, ok := c.MatchingRule("nothing here"); ok {
		t.Error("MatchingRule matched a benign log")
	}
}

func TestClassifyAll(t *testing.T) {
	c := NewClassifier()
	counts := c.ClassifyAll([]string{
		"CUDA out of memory",
		"cuda out of memory again",
		"all good",
	})
	if counts[failures.CodeGPUOOM] != 2 || counts[NoSignature] != 1 {
		t.Errorf("ClassifyAll = %v", counts)
	}
}

// End-to-end round trip: for every reason in the taxonomy, generated logs
// classify back to the same reason. This is the pipeline Table 7 depends on.
func TestGenerateClassifyRoundTrip(t *testing.T) {
	gen := NewGenerator()
	c := NewClassifier()
	g := stats.NewRNG(11)
	for _, reason := range failures.Taxonomy() {
		misses := 0
		const trials = 100
		for i := 0; i < trials; i++ {
			log := gen.FailureLog(reason.Code, 4, g)
			if got := c.Classify(log); got != reason.Code {
				misses++
				if misses == 1 {
					t.Logf("first miss for %s -> %s; log:\n%s", reason.Code, got, log)
				}
			}
		}
		if misses > 0 {
			t.Errorf("reason %s: %d/%d generated logs misclassified", reason.Code, misses, trials)
		}
	}
}

func TestNoSignatureLogsClassifyAsNoSignature(t *testing.T) {
	gen := NewGenerator()
	c := NewClassifier()
	g := stats.NewRNG(12)
	for i := 0; i < 100; i++ {
		log := gen.FailureLog(NoSignature, 2, g)
		if got := c.Classify(log); got != NoSignature {
			t.Fatalf("no-signature log classified as %s:\n%s", got, log)
		}
	}
}

func TestFailureLogLooksLikeALog(t *testing.T) {
	gen := NewGenerator()
	g := stats.NewRNG(13)
	log := gen.FailureLog(failures.CodeGPUOOM, 8, g)
	if !strings.Contains(log, "[launcher] starting container") {
		t.Error("missing preamble")
	}
	if !strings.Contains(log, "requested_gpus=8") {
		t.Error("missing gpu count")
	}
	if len(strings.Split(log, "\n")) < 5 {
		t.Error("log too short to be realistic")
	}
}

func TestTrainingLogRoundTrip(t *testing.T) {
	gen := NewGenerator()
	g := stats.NewRNG(14)
	losses := []float64{2.5, 1.75, 1.2, 0.9, 0.85}
	log := gen.TrainingLog(losses, 4, g)
	parsed := ParseLossCurve(log)
	if len(parsed) != len(losses) {
		t.Fatalf("parsed %d losses, want %d", len(parsed), len(losses))
	}
	for i := range losses {
		if math.Abs(parsed[i]-losses[i]) > 1e-5 {
			t.Errorf("loss %d = %v, want %v", i, parsed[i], losses[i])
		}
	}
}

func TestParseLossCurveIgnoresJunk(t *testing.T) {
	log := "noise\nloss=abc\nEpoch 1/2 finished: loss=0.5\nvalidation loss=9 without epoch marker... actually has loss=\n"
	parsed := ParseLossCurve(log)
	if len(parsed) != 1 || parsed[0] != 0.5 {
		t.Errorf("parsed = %v, want [0.5]", parsed)
	}
	if got := ParseLossCurve(""); got != nil {
		t.Errorf("empty log parsed to %v", got)
	}
}

func TestFrameworkDeterministic(t *testing.T) {
	a, b := stats.NewRNG(99), stats.NewRNG(99)
	for i := 0; i < 20; i++ {
		if Framework(a) != Framework(b) {
			t.Fatal("Framework not deterministic under equal seeds")
		}
	}
}
