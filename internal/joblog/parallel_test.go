package joblog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"philly/internal/par"
	"philly/internal/stats"
)

// bigLog builds a log larger than the parallel gates, with the payload
// placed at a controllable offset — including straddling a chunk boundary.
func bigLog(payload string, at int, total int) []byte {
	line := "[worker] step 100: images/sec=123.4 all nominal\n"
	var b bytes.Buffer
	for b.Len() < total {
		if b.Len() <= at && at < b.Len()+len(line) {
			b.WriteString(payload + "\n")
		}
		b.WriteString(line)
	}
	return b.Bytes()
}

// TestClassifyBytesPoolMatchesSequential checks the sharded scan returns
// the sequential answer with the signature at the start, middle, end, and
// exactly straddling every chunk boundary of a multi-chunk log.
func TestClassifyBytesPoolMatchesSequential(t *testing.T) {
	c := NewClassifier()
	pool := par.NewPool(4)
	defer pool.Close()
	const total = 3*scanChunkSize + 1000
	sig := "CUDA error: out of memory"
	offsets := []int{0, total / 2, total - 2000}
	for cut := scanChunkSize; cut < total; cut += scanChunkSize {
		for d := -len(sig); d <= 1; d++ {
			offsets = append(offsets, cut+d)
		}
	}
	for _, at := range offsets {
		if at < 0 {
			continue
		}
		log := bigLog(sig, at, total)
		want := c.ClassifyBytes(log)
		got := c.ClassifyBytesPool(log, pool)
		if got != want {
			t.Fatalf("offset %d: pool=%q sequential=%q", at, got, want)
		}
		if want == NoSignature {
			t.Fatalf("offset %d: signature was not planted", at)
		}
	}
	// No match at all.
	clean := bigLog("nothing to see here", 100, total)
	if got := c.ClassifyBytesPool(clean, pool); got != c.ClassifyBytes(clean) {
		t.Fatalf("clean log diverged: %q", got)
	}
	// Non-ASCII forces the sequential Unicode fallback in both paths.
	uni := append(bigLog(sig, total/2, total), "kaKbel"...)
	if got, want := c.ClassifyBytesPool(uni, pool), c.ClassifyBytes(uni); got != want {
		t.Fatalf("unicode log diverged: pool=%q sequential=%q", got, want)
	}
	// Small logs stay inline but must agree too.
	small := []byte("[fw] E CUDA error: out of memory\n")
	if got := c.ClassifyBytesPool(small, pool); got != c.ClassifyBytes(small) {
		t.Fatalf("small log diverged: %q", got)
	}
}

// TestClassifyPoolPrefersEarliestRule plants two different signatures in
// different chunks; the sharded scan must pick the same (best-priority)
// rule the sequential scan picks, regardless of which chunk matched first.
func TestClassifyPoolPrefersEarliestRule(t *testing.T) {
	c := NewClassifier()
	pool := par.NewPool(4)
	defer pool.Close()
	const total = 4 * scanChunkSize
	// Later chunk holds the better-priority signature.
	log := bigLog("Traceback (most recent call last)", 100, total)
	at := 3 * scanChunkSize
	log = append(log[:at:at], append([]byte("CUDA error: out of memory\n"), log[at:]...)...)
	if got, want := c.ClassifyBytesPool(log, pool), c.ClassifyBytes(log); got != want {
		t.Fatalf("rule priority diverged: pool=%q sequential=%q", got, want)
	}
}

// TestParseLossCurveBytesPoolMatchesSequential checks the sharded parse
// returns element-identical curves for logs spanning several chunks.
func TestParseLossCurveBytesPoolMatchesSequential(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	gen := NewGenerator()
	rng := stats.NewRNG(3)
	losses := make([]float64, 0, 40000)
	for i := 0; i < 40000; i++ {
		losses = append(losses, 5.0/float64(i+1)+0.01*rng.Float64())
	}
	log := append([]byte(nil), gen.TrainingLogBytes(losses, 4, rng)...)
	if len(log) < parallelParseMin {
		t.Fatalf("training log too small to exercise the parallel parse: %d bytes", len(log))
	}
	want := ParseLossCurveBytes(log, nil)
	got := ParseLossCurveBytesPool(log, nil, pool)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed curves diverged: %d vs %d epochs", len(got), len(want))
	}
	// Reused-destination form.
	scratch := make([]float64, 0, len(want))
	got2 := ParseLossCurveBytesPool(log, scratch[:0], pool)
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("parsed curves diverged with reused destination")
	}
	// A log with no newline at a chunk boundary region still terminates.
	blob := []byte(strings.Repeat("x", 3*parseChunkSize))
	if out := ParseLossCurveBytesPool(blob, nil, pool); len(out) != 0 {
		t.Fatalf("junk blob parsed %d losses", len(out))
	}
}
