// Package joblog synthesizes the stdout/stderr logs that DNN training
// frameworks emit and implements the signature classifier the paper built
// to attribute failures to root causes (§4.2.1: "our classifier has in
// total more than 230 rules to find both explicit signatures and implicit
// signatures").
//
// Failure attribution is deliberately end-to-end in this reproduction: the
// failure planner picks a reason, the log generator buries one of that
// reason's signatures inside realistic framework noise (often alongside
// *implicit* signatures like generic tracebacks), and the classifier must
// recover the root cause from text alone. Table 7 is computed from the
// classifier's output, not from the planner's ground truth, and the
// pipeline's confusion matrix is part of the test suite.
package joblog

import (
	"sort"
	"strings"
)

// Rule maps a log signature to a failure-reason code. Rules are checked in
// ascending Priority order; within a priority level, longer (more specific)
// patterns win. Patterns are matched case-insensitively as substrings.
type Rule struct {
	// Pattern is the substring to search for (stored lowercase).
	Pattern string
	// Reason is the failure-reason code attributed on a match.
	Reason string
	// Priority orders rule application: lower values are root-cause
	// signatures checked first; higher values are implicit signatures
	// (e.g. a bare traceback) that only apply when nothing closer to the
	// root cause matched.
	Priority int
}

// Priorities: explicit root-cause signatures, then secondary signals, then
// implicit catch-alls.
const (
	prioExplicit = 0
	prioStrong   = 1
	prioWeak     = 2
	prioImplicit = 3
)

// ruleSpec is the static rule table, grouped by reason for readability.
// Each entry expands to one Rule. The variants mirror the phrasings of
// TensorFlow, PyTorch, Caffe, CNTK, CUDA, MPI, HDFS and glibc, since the
// production cluster ran all of these (paper §2.1).
type ruleSpec struct {
	reason   string
	priority int
	patterns []string
}

var ruleSpecs = []ruleSpec{
	// ---- CPU out of memory -------------------------------------------------
	{reason: "cpu_oom", priority: prioExplicit, patterns: []string{
		"container killed on request. exit code is 137",
		"container is running beyond physical memory limits",
		"killed process", // oom-killer kernel line
		"out of memory: kill process",
		"oom-killer invoked",
		"memoryerror",
		"cannot allocate memory",
		"std::bad_alloc",
		"terminate called after throwing an instance of 'std::bad_alloc'",
		"malloc: memory exhausted",
		"mmap failed: out of memory",
		"virtual memory exhausted",
		"exceeded memory limit of container",
		"current usage: 64.2 gb of 64 gb physical memory used",
		"fork: retry: resource temporarily unavailable",
		"unable to fork new process: out of memory",
		"allocator ran out of host memory",
		"swap space exhausted during tensor staging",
		"rss limit exceeded, terminating worker",
	}},
	// ---- Incorrect inputs --------------------------------------------------
	{reason: "incorrect_inputs", priority: prioExplicit, patterns: []string{
		"no such file or directory: 'hdfs://",
		"input path does not exist",
		"filenotfounderror",
		"could not open training data file",
		"failed to read sample from input dataset",
		"error parsing record: truncated",
		"corrupted record at offset",
		"unexpected number of columns in sample",
		"label out of range for dataset",
		"data format mismatch: expected",
		"hdfs_read failed for block",
		"blockmissingexception",
		"could not obtain block",
		"invalid tfrecord: bad length crc",
		"lmdb: corrupted entry",
		"unable to deserialize minibatch source",
		"error reading model file from hdfs",
		"checksum mismatch while reading input",
		"premature eof reading from input stream",
		"ioerror: could not read bytes from dataset",
		"sample index out of bounds for epoch manifest",
		"vocabulary file missing token column",
		"image decode failed: not a jpeg file",
		"feature dimension 0 in input batch",
		"empty input split assigned to reader",
	}},
	// ---- Semantic error ----------------------------------------------------
	{reason: "semantic_error", priority: prioExplicit, patterns: []string{
		"typeerror:",
		"valueerror:",
		"keyerror:",
		"attributeerror:",
		"indexerror:",
		"shape mismatch between tensors",
		"dimensions must be equal",
		"incompatible shapes:",
		"expected tensor of rank",
		"cannot feed value of shape",
		"tensor shapes do not match in allreduce",
		"inconsistent tensor size across replicas",
		"version mismatch between library",
		"this program requires version",
		"undefined symbol:",
		"incompatible protobuf version",
		"runtimeerror: expected type",
		"mismatched parameter count during model update",
		"zerodivisionerror:",
		"assertionerror:",
		"notimplementederror:",
		"unboundlocalerror:",
		"nameerror: name",
		"graph contains a cycle",
		"duplicate node name in graph",
		"gradient for variable is none",
		"loss tensor must be scalar",
		"batch dimension mismatch between input and label",
	}},
	// ---- Core dump ---------------------------------------------------------
	{reason: "core_dump", priority: prioStrong, patterns: []string{
		"core dumped",
		"aborted (core dumped)",
		"segmentation fault (core dumped)", // still core dump class per paper
		"dumping core",
		"coredump written to",
		"signal 6 (sigabrt)",
		"assertion failed, aborting",
		"*** aborted at",
		"fatal signal received: sigabrt",
	}},
	// ---- Invalid memory access ----------------------------------------------
	{reason: "invalid_mem_access", priority: prioExplicit, patterns: []string{
		"invalid memory access",
		"illegal memory access was encountered",
		"cuda error: an illegal memory access",
		"invalid pointer dereference",
		"sigsegv: invalid memory reference",
		"signal 11 (sigsegv)",
		"access violation reading location",
		"invalid device pointer",
		"double free or corruption",
		"free(): invalid pointer",
		"race condition detected while copying tensor",
		"heap corruption detected",
	}},
	// ---- Model checkpoint error ---------------------------------------------
	{reason: "model_ckpt_error", priority: prioExplicit, patterns: []string{
		"failed to save model checkpoint",
		"error writing checkpoint to hdfs",
		"checkpoint write failed",
		"could not create checkpoint directory",
		"lease expired on checkpoint file",
		"namenode is in safe mode",
		"failed to rename temporary checkpoint",
		"hdfs: all datanodes are bad",
		"unable to close checkpoint file",
		"checkpointing aborted: quota exceeded",
		"error serializing model state to",
		"save op failed: rpc timed out",
	}},
	// ---- CUDA failure --------------------------------------------------------
	{reason: "cuda_failure", priority: prioStrong, patterns: []string{
		"cuda error: unspecified launch failure",
		"cudnn_status_execution_failed",
		"cudnn_status_internal_error",
		"cublas_status_execution_failed",
		"cuda error: launch timed out",
		"cuda runtime error (4)",
		"cuda kernel launch failure",
		"misaligned address", // cuda error
		"cufft_exec_failed",
		"nccl error: unhandled cuda error",
		"curand_status_launch_failure",
		"cuda error: device-side assert triggered",
		"cudastreamsynchronize returned error",
		"cudnn_status_not_supported",
		"cuda error 77",
		"gpu kernel execution failed",
		"cudaeventsynchronize failed",
	}},
	// ---- Syntax error --------------------------------------------------------
	{reason: "syntax_error", priority: prioExplicit, patterns: []string{
		"syntaxerror:",
		"indentationerror:",
		"invalid syntax",
		"unexpected eof while parsing",
		"unexpected indent",
		"taberror: inconsistent use of tabs",
		"missing parentheses in call to",
		"unexpected end of file while looking for matching",
		"bash: syntax error near unexpected token",
		"unterminated string literal",
	}},
	// ---- MPI error -----------------------------------------------------------
	{reason: "mpi_error", priority: prioExplicit, patterns: []string{
		"mpi_abort was invoked",
		"mpi_allreduce failed",
		"mpi communicator error",
		"mpi error code",
		"error in mpi_bcast",
		"invalid communicator in mpi call",
		"mpi_comm_world rank mismatch",
		"mpi datatype error",
	}},
	// ---- GPU out of memory ----------------------------------------------------
	{reason: "gpu_oom", priority: prioExplicit, patterns: []string{
		"cuda out of memory",
		"cuda error: out of memory",
		"cuda_error_out_of_memory",
		"gpu ran out of memory",
		"failed to allocate device memory",
		"cudamalloc failed: out of memory",
		"cudnn_status_alloc_failed",
		"resource exhausted: oom when allocating tensor",
		"tried to allocate more gpu memory than available",
		"cnmem_status_out_of_memory",
		"check failed: error == cudasuccess (2 vs. 0) out of memory",
		"insufficient workspace memory on device",
		"gpu memory pool exhausted",
		"failed to reserve device arena",
		"out of memory trying to allocate activation buffers",
	}},
	// ---- MPI runtime failure ---------------------------------------------------
	{reason: "mpi_runtime_failure", priority: prioExplicit, patterns: []string{
		"connection to peer mpi process lost",
		"orted daemon died unexpectedly",
		"mpirun noticed that process rank",
		"communication timeout with rank",
		"socket closed by remote mpi peer",
		"ib verbs retry exceeded while reaching rank",
		"fatal: readv failed on fd connected to rank",
		"smpd daemon terminated",
		"heartbeat lost to mpi daemon",
		"tcp connection reset by rank",
		"pml add procs failed",
		"btl_tcp_endpoint lost connection",
		"one or more mpi processes are unreachable",
		"hydra_pmi_proxy: unexpected exit of proxy",
		"rank terminated without calling mpi_finalize",
	}},
	// ---- Permission error --------------------------------------------------------
	{reason: "permission_error", priority: prioExplicit, patterns: []string{
		"permission denied",
		"permissionerror:",
		"access denied for user",
		"org.apache.hadoop.security.accesscontrolexception",
		"operation not permitted",
		"cannot open file for writing: eacces",
		"insufficient privileges to access",
	}},
	// ---- Import error --------------------------------------------------------------
	{reason: "import_error", priority: prioExplicit, patterns: []string{
		"importerror:",
		"modulenotfounderror:",
		"no module named",
		"cannot import name",
		"dll load failed while importing",
		"dynamic module does not define module export function",
	}},
	// ---- Job preempted ---------------------------------------------------------------
	{reason: "job_preempted", priority: prioExplicit, patterns: []string{
		"container preempted by scheduler",
		"preemption message received from resourcemanager",
		"yarn container released: preempted",
		"job preempted to honor resource shares",
		"received sigterm from scheduler: preemption",
		"container exited with status -102", // YARN preemption exit code
	}},
	// ---- CUDA init failed ---------------------------------------------------------------
	{reason: "cuda_init_failed", priority: prioExplicit, patterns: []string{
		"cuda_error_not_initialized",
		"failed call to cuinit",
		"cuda driver version is insufficient for cuda runtime version",
		"no cuda-capable device is detected",
		"cuda error: initialization error",
		"unable to initialize nvml",
		"nvml: driver/library version mismatch",
		"cudagetdevicecount returned 3",
	}},
	// ---- Model diverged --------------------------------------------------------------------
	{reason: "model_diverged", priority: prioExplicit, patterns: []string{
		"loss is nan",
		"loss = nan",
		"nan or inf found in gradients",
		"model diverged with loss",
		"training diverged: loss exploded",
		"gradient overflow detected repeatedly",
		"inf loss encountered; stopping",
	}},
	// ---- CUDA version mismatch ----------------------------------------------------------------
	{reason: "cuda_ver_mismatch", priority: prioExplicit, patterns: []string{
		"cuda version mismatch",
		"the installed cuda toolkit version does not match",
		"compiled with cuda 8.0 but runtime is",
		"cudnn library version mismatch",
		"driver does not support the requested cuda version",
	}},
	// ---- GPU ECC error ----------------------------------------------------------------------------
	{reason: "gpu_ecc_error", priority: prioExplicit, patterns: []string{
		"uncorrectable ecc error encountered",
		"double bit ecc error",
		"gpu has fallen off the bus",
		"xid 48", // NVIDIA Xid for DBE
		"ecc page retirement limit reached",
	}},
	// ---- Output node error -----------------------------------------------------------------------
	{reason: "output_node_error", priority: prioExplicit, patterns: []string{
		"output node not found in graph",
		"requested output tensor does not exist",
		"fetch target is not in the graph",
	}},
	// ---- Cannot load libs ----------------------------------------------------------------------------
	{reason: "cannot_load_libs", priority: prioExplicit, patterns: []string{
		"error while loading shared libraries",
		"cannot open shared object file",
		"libcudart.so: cannot open",
		"ld.so: object could not be loaded",
	}},
	// ---- Traceback from crash (implicit signature; only when nothing more
	// specific matched) ---------------------------------------------------------
	{reason: "traceback_from_crash", priority: prioImplicit, patterns: []string{
		"traceback (most recent call last)",
		"segmentation fault",
		"unhandled exception at",
		"fatal python error",
		"stack trace:",
		"backtrace:",
		"what():",
		"terminate called without an active exception",
		"exception in thread",
		"caught signal",
		"fatal error detected by the runtime",
	}},
}

// compiledRules is the flattened, ordered rule list (built once).
var compiledRules = compileRules()

func compileRules() []Rule {
	var rules []Rule
	for _, spec := range ruleSpecs {
		for _, p := range spec.patterns {
			rules = append(rules, Rule{
				Pattern:  strings.ToLower(p),
				Reason:   spec.reason,
				Priority: spec.priority,
			})
		}
	}
	// Order: priority ascending, then longer patterns first (specificity),
	// then lexicographic for determinism.
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].Priority != rules[j].Priority {
			return rules[i].Priority < rules[j].Priority
		}
		if len(rules[i].Pattern) != len(rules[j].Pattern) {
			return len(rules[i].Pattern) > len(rules[j].Pattern)
		}
		return rules[i].Pattern < rules[j].Pattern
	})
	return rules
}

// Rules returns a copy of the compiled rule set, ordered by application
// priority.
func Rules() []Rule { return append([]Rule(nil), compiledRules...) }

// NumRules returns the size of the rule set (the paper's classifier has
// "more than 230 rules").
func NumRules() int { return len(compiledRules) }
