package joblog

import (
	"math"
	"testing"
)

// TestParseLossCurveTokenEdges pins the float-token scanner against the
// Sscanf-style behavior it replaced: a valid float followed by junk parses
// to the leading float instead of being dropped.
func TestParseLossCurveTokenEdges(t *testing.T) {
	cases := []struct {
		line string
		want []float64
	}{
		{"[tf] Epoch 3/10 finished: loss=0.5-resumed", []float64{0.5}},
		{"[tf] Epoch 3/10 finished: loss=0.5.3", []float64{0.5}},
		{"[tf] Epoch 3/10 finished: loss=1e-3", []float64{0.001}},
		{"[tf] Epoch 3/10 finished: loss=2.5e", []float64{2.5}}, // bare 'e', no exponent digits
		{"[tf] Epoch 3/10 finished: loss=-0.25", []float64{-0.25}},
		{"[tf] Epoch 3/10 finished: loss=abc", nil},
		{"[tf] Epoch 3/10 finished: loss=", nil},
		{"[tf] Epoch 3/10 finished: loss=.75", []float64{0.75}},
	}
	for _, c := range cases {
		got := ParseLossCurve(c.line)
		if len(got) != len(c.want) {
			t.Errorf("%q: parsed %v, want %v", c.line, got, c.want)
			continue
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-12 {
				t.Errorf("%q: parsed %v, want %v", c.line, got, c.want)
			}
		}
	}
}
