package joblog

// Single-pass signature matching. The classifier's rule set is a few hundred
// case-insensitive substring patterns, and a failure log is scanned for every
// one of them on each Classify call. Doing that with strings.Contains per
// rule made Classify the hottest function in whole-study CPU profiles
// (~30% of simulation time). This file compiles the rule set into an
// Aho-Corasick automaton once, so Classify scans the log exactly once
// regardless of rule count.
//
// Semantics are identical to the sequential scan: Classify must return the
// first rule in compiled order (priority asc, pattern length desc, lex) that
// occurs anywhere in the lowercased log. The automaton reports every rule
// that matches; taking the minimum compiled-order index reproduces the
// sequential answer exactly.
//
// Case folding: patterns are ASCII, and the generator emits ASCII logs, so
// the automaton folds A-Z to a-z on the fly. strings.ToLower, which the
// sequential path used, additionally folds non-ASCII runes (e.g. the Kelvin
// sign U+212A lowercases to 'k'); to keep behavior bit-identical for
// arbitrary inputs, any log containing a non-ASCII byte falls back to the
// sequential scan.

import (
	"strings"
	"unicode/utf8"
)

// noRule marks "no rule matched" in automaton outputs.
const noRule = int32(1 << 30)

// matcher is an Aho-Corasick automaton over the compiled rule patterns,
// flattened into a dense transition table over the reduced alphabet of bytes
// that actually occur in patterns.
type matcher struct {
	// byteSym maps an input byte (already ASCII-lowercased) to a symbol in
	// [0, numSyms); bytes not present in any pattern map to symbol 0.
	byteSym [256]uint8
	numSyms int
	// next is the full goto function: next[state*numSyms + sym]. Fail links
	// are pre-resolved into it, so matching is one lookup per input byte.
	next []int32
	// minRule[state] is the smallest compiled-rule index whose pattern ends
	// at this state or at any state on its fail chain, or noRule.
	minRule []int32
}

// compiledMatcher is built once alongside compiledRules.
var compiledMatcher = newMatcher(compiledRules)

// newMatcher builds the automaton for the given rules (patterns must be
// lowercase ASCII).
func newMatcher(rules []Rule) *matcher {
	m := &matcher{}
	// Reduced alphabet: symbol 0 is "byte absent from every pattern".
	seen := [256]bool{}
	for _, r := range rules {
		for i := 0; i < len(r.Pattern); i++ {
			seen[r.Pattern[i]] = true
		}
	}
	m.numSyms = 1
	for b := 0; b < 256; b++ {
		if seen[b] {
			m.byteSym[b] = uint8(m.numSyms)
			m.numSyms++
		}
	}

	// Trie construction over symbols.
	type node struct {
		children map[uint8]int32
		fail     int32
		minRule  int32
	}
	nodes := []node{{children: map[uint8]int32{}, minRule: noRule}}
	for ri, r := range rules {
		cur := int32(0)
		for i := 0; i < len(r.Pattern); i++ {
			sym := m.byteSym[r.Pattern[i]]
			nxt, ok := nodes[cur].children[sym]
			if !ok {
				nxt = int32(len(nodes))
				nodes = append(nodes, node{children: map[uint8]int32{}, minRule: noRule})
				nodes[cur].children[sym] = nxt
			}
			cur = nxt
		}
		if int32(ri) < nodes[cur].minRule {
			nodes[cur].minRule = int32(ri)
		}
	}

	// BFS: compute fail links, merge fail-chain outputs, and flatten the
	// goto function into a dense table with fails resolved.
	m.next = make([]int32, len(nodes)*m.numSyms)
	m.minRule = make([]int32, len(nodes))
	queue := make([]int32, 0, len(nodes))
	for sym := uint8(0); int(sym) < m.numSyms; sym++ {
		if c, ok := nodes[0].children[sym]; ok {
			nodes[c].fail = 0
			m.next[int(sym)] = c
			queue = append(queue, c)
		}
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		fail := nodes[cur].fail
		if nodes[fail].minRule < nodes[cur].minRule {
			nodes[cur].minRule = nodes[fail].minRule
		}
		base := int(cur) * m.numSyms
		failBase := int(fail) * m.numSyms
		for sym := 0; sym < m.numSyms; sym++ {
			if c, ok := nodes[cur].children[uint8(sym)]; ok {
				nodes[c].fail = m.next[failBase+sym]
				m.next[base+sym] = c
				queue = append(queue, c)
			} else {
				m.next[base+sym] = m.next[failBase+sym]
			}
		}
	}
	for i := range nodes {
		m.minRule[i] = nodes[i].minRule
	}
	return m
}

// matchBytes scans the log once and returns the smallest compiled-rule
// index that occurs in it, or -1 when no rule matches, or -2 when the log
// contains a non-ASCII byte and the caller must use the sequential
// Unicode-aware path. It works on bytes so the hot path — classifying the
// generator's render buffer — never pays a string conversion; the string
// API converts once (a cold path used by tests and external callers).
func (m *matcher) matchBytes(log []byte) int32 {
	best := noRule
	state := int32(0)
	syms := int32(m.numSyms)
	next, minRule := m.next, m.minRule
	for i := 0; i < len(log); i++ {
		c := log[i]
		if c >= utf8.RuneSelf {
			return -2
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		state = next[state*syms+int32(m.byteSym[c])]
		if r := minRule[state]; r < best {
			best = r
		}
	}
	if best == noRule {
		return -1
	}
	return best
}

// matchSlow is the sequential scan the automaton replaced, kept for
// non-ASCII inputs where Unicode case folding can differ.
func matchSlow(rules []Rule, log string) int32 {
	lower := strings.ToLower(log)
	for i, r := range rules {
		if strings.Contains(lower, r.Pattern) {
			return int32(i)
		}
	}
	return -1
}

// matchRulesBytes resolves a log to a compiled-rule index (-1 for no match)
// with semantics identical to scanning rules in order with strings.Contains
// over strings.ToLower(log).
func matchRulesBytes(rules []Rule, m *matcher, log []byte) int32 {
	if r := m.matchBytes(log); r != -2 {
		return r
	}
	return matchSlow(rules, string(log))
}

// matchRules is matchRulesBytes for a string log.
func matchRules(rules []Rule, m *matcher, log string) int32 {
	return matchRulesBytes(rules, m, []byte(log))
}
