package joblog

// NoSignature is the classification returned when no rule matches a failed
// job's log (Table 7's "No signature" row; 4.2% of failures in the paper).
const NoSignature = "no_signature"

// Classifier attributes a failure log to a root-cause reason code using the
// compiled signature rules. The zero value is not usable; call NewClassifier.
type Classifier struct {
	rules []Rule
	m     *matcher
}

// NewClassifier builds a classifier over the full rule set.
func NewClassifier() *Classifier {
	return &Classifier{rules: compiledRules, m: compiledMatcher}
}

// Classify scans the log and returns the reason code of the best-priority
// matching rule, or NoSignature when nothing matches. Matching is
// case-insensitive. Rules closer to the root cause (explicit signatures)
// shadow implicit ones such as bare tracebacks, mirroring the paper's
// "identifying signatures of failure reasons closer to the root cause".
//
// Rules are pre-sorted by (priority asc, pattern length desc), so the
// winning rule is the best-priority, most-specific attribution. The scan is
// a single Aho-Corasick pass over the log (see match.go); it returns exactly
// what checking each rule in order with strings.Contains would.
func (c *Classifier) Classify(log string) string {
	if log == "" {
		return NoSignature
	}
	if i := matchRules(c.rules, c.m, log); i >= 0 {
		return c.rules[i].Reason
	}
	return NoSignature
}

// ClassifyBytes is Classify for a caller-owned byte buffer (e.g. the log
// generator's render buffer), avoiding the string conversion on the
// simulator's per-failure path. Semantics are identical to Classify.
func (c *Classifier) ClassifyBytes(log []byte) string {
	if len(log) == 0 {
		return NoSignature
	}
	if i := matchRulesBytes(c.rules, c.m, log); i >= 0 {
		return c.rules[i].Reason
	}
	return NoSignature
}

// ClassifyAll classifies a batch of logs and returns per-reason counts.
func (c *Classifier) ClassifyAll(logs []string) map[string]int {
	counts := make(map[string]int)
	for _, l := range logs {
		counts[c.Classify(l)]++
	}
	return counts
}

// MatchingRule returns the rule that Classify would apply to the log, and
// whether any rule matched; useful for classifier debugging and tests.
func (c *Classifier) MatchingRule(log string) (Rule, bool) {
	if i := matchRules(c.rules, c.m, log); i >= 0 {
		return c.rules[i], true
	}
	return Rule{}, false
}
