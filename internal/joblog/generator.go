package joblog

import (
	"fmt"
	"strings"

	"philly/internal/stats"
)

// Generator synthesizes framework stdout/stderr logs. Logs are what the
// production pipeline actually has to work with, so this reproduction
// routes failure attribution (Table 7) and convergence analysis (Figure 8)
// through generated text rather than through the simulator's ground truth.
type Generator struct {
	// perReason maps a reason code to its candidate explicit signatures
	// (each formatted into a full log line when emitted).
	perReason map[string][]string
}

// NewGenerator builds a generator sharing the classifier's signature
// vocabulary: every reason's emitted signatures come from the same pattern
// set the classifier knows, plus surrounding noise that must not confuse it.
func NewGenerator() *Generator {
	per := make(map[string][]string)
	for _, spec := range ruleSpecs {
		per[spec.reason] = append(per[spec.reason], spec.patterns...)
	}
	return &Generator{perReason: per}
}

// frameworks the cluster runs (paper §2.1).
var frameworks = []string{"tensorflow", "cntk", "caffe", "pytorch"}

// Framework returns a deterministic pseudo-random framework name.
func Framework(g *stats.RNG) string { return frameworks[g.IntN(len(frameworks))] }

// preamble lines common to all jobs.
func preamble(fw string, gpus int, g *stats.RNG) []string {
	lines := []string{
		fmt.Sprintf("[launcher] starting container, framework=%s requested_gpus=%d", fw, gpus),
		"[launcher] mounting /hdfs/input and /hdfs/output",
		fmt.Sprintf("[%s] session initialized, visible devices: %d", fw, gpus),
	}
	if gpus > 1 {
		lines = append(lines, fmt.Sprintf("[%s] initializing %d workers for data-parallel training", fw, gpus))
	}
	if g.Bool(0.5) {
		lines = append(lines, "[launcher] docker image pulled in 42s")
	}
	return lines
}

// progressLines emits n benign per-iteration lines.
func progressLines(fw string, n int, g *stats.RNG) []string {
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		step := (i + 1) * 100
		lines = append(lines, fmt.Sprintf("[%s] step %d: images/sec=%.1f", fw, step, 40+g.Float64()*200))
	}
	return lines
}

// FailureLog renders a log for an attempt that failed with the given reason
// code. For the pseudo-reason "no_signature" (or an unknown code) the log
// contains only noise, so the classifier's fallback path is exercised.
// Crash-type failures additionally embed an implicit generic traceback
// *after* the explicit signature would normally appear — the classifier
// must still attribute the root cause, as the paper's does.
func (gen *Generator) FailureLog(reason string, gpus int, g *stats.RNG) string {
	fw := Framework(g)
	var b strings.Builder
	write := func(lines ...string) {
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	write(preamble(fw, gpus, g)...)
	write(progressLines(fw, 1+g.IntN(4), g)...)

	sigs := gen.perReason[reason]
	if len(sigs) == 0 || reason == NoSignature {
		// Unattributable failure: the process just dies.
		write(fmt.Sprintf("[%s] worker 0 exited with code %d", fw, 1+g.IntN(254)))
		return b.String()
	}
	sig := sigs[g.IntN(len(sigs))]
	write(fmt.Sprintf("[%s] E %s", fw, decorateSignature(sig, g)))
	// Many user/engine errors surface a Python traceback as a consequence
	// of the root cause; emit one so the classifier has to prefer the
	// explicit signature over the implicit one.
	if g.Bool(0.6) && reason != "traceback_from_crash" {
		write("Traceback (most recent call last):",
			fmt.Sprintf("  File \"train.py\", line %d, in <module>", 10+g.IntN(400)),
			"    main()",
			fmt.Sprintf("  File \"train.py\", line %d, in main", 10+g.IntN(400)),
			"    run_epoch(sess, model)")
	}
	write(fmt.Sprintf("[launcher] job attempt failed, exit code %d", 1+g.IntN(254)))
	return b.String()
}

// decorateSignature wraps a bare signature pattern in plausible context so
// logs are not literally just the rule strings.
func decorateSignature(sig string, g *stats.RNG) string {
	switch g.IntN(3) {
	case 0:
		return sig
	case 1:
		return fmt.Sprintf("worker %d: %s", g.IntN(16), sig)
	default:
		return fmt.Sprintf("%s (see attempt logs for details)", sig)
	}
}

// TrainingLog renders the log of a (partially) successful run that reports
// per-epoch loss values — the convergence information Figure 8 parses.
// losses[i] is the loss after epoch i+1.
func (gen *Generator) TrainingLog(losses []float64, gpus int, g *stats.RNG) string {
	fw := Framework(g)
	var b strings.Builder
	for _, l := range preamble(fw, gpus, g) {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for i, loss := range losses {
		fmt.Fprintf(&b, "[%s] Epoch %d/%d finished: loss=%.9f\n", fw, i+1, len(losses), loss)
		if g.Bool(0.2) {
			fmt.Fprintf(&b, "[%s] validation accuracy: %.4f\n", fw, 0.5+0.5*float64(i+1)/float64(len(losses)+1))
		}
	}
	b.WriteString("[launcher] job attempt finished\n")
	return b.String()
}

// ParseLossCurve extracts per-epoch losses from a training log produced by
// TrainingLog (or any log with "Epoch k/n ... loss=v" lines). It returns
// losses in epoch order; missing epochs simply do not appear.
func ParseLossCurve(log string) []float64 {
	var losses []float64
	for _, line := range strings.Split(log, "\n") {
		idx := strings.Index(line, "loss=")
		if idx < 0 {
			continue
		}
		if !strings.Contains(line, "Epoch ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[idx:], "loss=%f", &v); err == nil {
			losses = append(losses, v)
		}
	}
	return losses
}
