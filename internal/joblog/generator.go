package joblog

import (
	"bytes"
	"strconv"

	"philly/internal/stats"
)

// Generator synthesizes framework stdout/stderr logs. Logs are what the
// production pipeline actually has to work with, so this reproduction
// routes failure attribution (Table 7) and convergence analysis (Figure 8)
// through generated text rather than through the simulator's ground truth.
//
// Rendering appends into a buffer the generator owns and reuses across
// calls (a study generates one log per failed attempt plus one per
// convergence curve — enough that per-line fmt.Sprintf allocations used to
// show up in whole-study allocation profiles). The emitted bytes and the
// RNG draw order are identical to the previous fmt-based renderer: every
// numeric format below is the strconv call fmt itself would have made.
type Generator struct {
	// perReason maps a reason code to its candidate explicit signatures
	// (each formatted into a full log line when emitted).
	perReason map[string][]string
	// buf is the reused render buffer; the returned log is a copy.
	buf []byte
}

// NewGenerator builds a generator sharing the classifier's signature
// vocabulary: every reason's emitted signatures come from the same pattern
// set the classifier knows, plus surrounding noise that must not confuse it.
func NewGenerator() *Generator {
	per := make(map[string][]string)
	for _, spec := range ruleSpecs {
		per[spec.reason] = append(per[spec.reason], spec.patterns...)
	}
	return &Generator{perReason: per}
}

// frameworks the cluster runs (paper §2.1).
var frameworks = []string{"tensorflow", "cntk", "caffe", "pytorch"}

// Framework returns a deterministic pseudo-random framework name.
func Framework(g *stats.RNG) string { return frameworks[g.IntN(len(frameworks))] }

// appendInt / appendFloat are the strconv equivalents of fmt's %d and %.Nf.
func appendInt(b []byte, v int) []byte { return strconv.AppendInt(b, int64(v), 10) }
func appendFloat(b []byte, v float64, prec int) []byte {
	return strconv.AppendFloat(b, v, 'f', prec, 64)
}

// appendPreamble renders the lines common to all jobs.
func appendPreamble(b []byte, fw string, gpus int, g *stats.RNG) []byte {
	b = append(b, "[launcher] starting container, framework="...)
	b = append(b, fw...)
	b = append(b, " requested_gpus="...)
	b = appendInt(b, gpus)
	b = append(b, "\n[launcher] mounting /hdfs/input and /hdfs/output\n["...)
	b = append(b, fw...)
	b = append(b, "] session initialized, visible devices: "...)
	b = appendInt(b, gpus)
	b = append(b, '\n')
	if gpus > 1 {
		b = append(b, '[')
		b = append(b, fw...)
		b = append(b, "] initializing "...)
		b = appendInt(b, gpus)
		b = append(b, " workers for data-parallel training\n"...)
	}
	if g.Bool(0.5) {
		b = append(b, "[launcher] docker image pulled in 42s\n"...)
	}
	return b
}

// appendProgress renders n benign per-iteration lines.
func appendProgress(b []byte, fw string, n int, g *stats.RNG) []byte {
	for i := 0; i < n; i++ {
		b = append(b, '[')
		b = append(b, fw...)
		b = append(b, "] step "...)
		b = appendInt(b, (i+1)*100)
		b = append(b, ": images/sec="...)
		b = appendFloat(b, 40+g.Float64()*200, 1)
		b = append(b, '\n')
	}
	return b
}

// FailureLog renders a log for an attempt that failed with the given reason
// code. For the pseudo-reason "no_signature" (or an unknown code) the log
// contains only noise, so the classifier's fallback path is exercised.
// Crash-type failures additionally embed an implicit generic traceback
// *after* the explicit signature would normally appear — the classifier
// must still attribute the root cause, as the paper's does.
func (gen *Generator) FailureLog(reason string, gpus int, g *stats.RNG) string {
	return string(gen.FailureLogBytes(reason, gpus, g))
}

// FailureLogBytes is FailureLog without the final string copy. The returned
// slice aliases the generator's reuse buffer and is only valid until the
// next render call; the simulator classifies it and moves on, which makes
// the per-failure log round-trip allocation-free.
func (gen *Generator) FailureLogBytes(reason string, gpus int, g *stats.RNG) []byte {
	fw := Framework(g)
	b := gen.buf[:0]
	b = appendPreamble(b, fw, gpus, g)
	b = appendProgress(b, fw, 1+g.IntN(4), g)

	sigs := gen.perReason[reason]
	if len(sigs) == 0 || reason == NoSignature {
		// Unattributable failure: the process just dies.
		b = append(b, '[')
		b = append(b, fw...)
		b = append(b, "] worker 0 exited with code "...)
		b = appendInt(b, 1+g.IntN(254))
		b = append(b, '\n')
		gen.buf = b
		return b
	}
	sig := sigs[g.IntN(len(sigs))]
	b = append(b, '[')
	b = append(b, fw...)
	b = append(b, "] E "...)
	b = appendSignature(b, sig, g)
	b = append(b, '\n')
	// Many user/engine errors surface a Python traceback as a consequence
	// of the root cause; emit one so the classifier has to prefer the
	// explicit signature over the implicit one.
	if g.Bool(0.6) && reason != "traceback_from_crash" {
		b = append(b, "Traceback (most recent call last):\n  File \"train.py\", line "...)
		b = appendInt(b, 10+g.IntN(400))
		b = append(b, ", in <module>\n    main()\n  File \"train.py\", line "...)
		b = appendInt(b, 10+g.IntN(400))
		b = append(b, ", in main\n    run_epoch(sess, model)\n"...)
	}
	b = append(b, "[launcher] job attempt failed, exit code "...)
	b = appendInt(b, 1+g.IntN(254))
	b = append(b, '\n')
	gen.buf = b
	return b
}

// appendSignature wraps a bare signature pattern in plausible context so
// logs are not literally just the rule strings.
func appendSignature(b []byte, sig string, g *stats.RNG) []byte {
	switch g.IntN(3) {
	case 0:
		return append(b, sig...)
	case 1:
		b = append(b, "worker "...)
		b = appendInt(b, g.IntN(16))
		b = append(b, ": "...)
		return append(b, sig...)
	default:
		b = append(b, sig...)
		return append(b, " (see attempt logs for details)"...)
	}
}

// TrainingLog renders the log of a (partially) successful run that reports
// per-epoch loss values — the convergence information Figure 8 parses.
// losses[i] is the loss after epoch i+1.
func (gen *Generator) TrainingLog(losses []float64, gpus int, g *stats.RNG) string {
	return string(gen.TrainingLogBytes(losses, gpus, g))
}

// TrainingLogBytes is TrainingLog without the final string copy; the result
// aliases the generator's reuse buffer until the next render call.
func (gen *Generator) TrainingLogBytes(losses []float64, gpus int, g *stats.RNG) []byte {
	fw := Framework(g)
	b := appendPreamble(gen.buf[:0], fw, gpus, g)
	for i, loss := range losses {
		b = append(b, '[')
		b = append(b, fw...)
		b = append(b, "] Epoch "...)
		b = appendInt(b, i+1)
		b = append(b, '/')
		b = appendInt(b, len(losses))
		b = append(b, " finished: loss="...)
		b = appendFloat(b, loss, 9)
		b = append(b, '\n')
		if g.Bool(0.2) {
			b = append(b, '[')
			b = append(b, fw...)
			b = append(b, "] validation accuracy: "...)
			b = appendFloat(b, 0.5+0.5*float64(i+1)/float64(len(losses)+1), 4)
			b = append(b, '\n')
		}
	}
	b = append(b, "[launcher] job attempt finished\n"...)
	gen.buf = b
	return b
}

// ParseLossCurve extracts per-epoch losses from a training log produced by
// TrainingLog (or any log with "Epoch k/n ... loss=v" lines). It returns
// losses in epoch order; missing epochs simply do not appear. Parsing walks
// the log in place — no line splitting, no fmt scanner state — taking after
// "loss=" the longest run of float-syntax characters, as Sscanf's token
// scanner did.
func ParseLossCurve(log string) []float64 {
	return ParseLossCurveBytes([]byte(log), nil)
}

// ParseLossCurveBytes is ParseLossCurve over a byte buffer, appending into
// dst (which may be nil or a reused slice re-sliced to zero length).
func ParseLossCurveBytes(log []byte, dst []float64) []float64 {
	losses := dst
	for start := 0; start < len(log); {
		end := bytes.IndexByte(log[start:], '\n')
		var line []byte
		if end < 0 {
			line = log[start:]
			start = len(log)
		} else {
			line = log[start : start+end]
			start += end + 1
		}
		// The line fragments below are pure ASCII views; unsafe-free string
		// conversion is avoided by a dedicated byte-wise parse.
		if v, ok := parseLossLineBytes(line); ok {
			losses = append(losses, v)
		}
	}
	return losses
}

// parseLossLineBytes extracts the loss from one "Epoch k/n ... loss=v"
// line, taking after "loss=" the longest syntactically valid decimal float
// prefix — like the Sscanf %f scanner it replaced, trailing junk after a
// valid float ("loss=0.5-resumed") truncates rather than invalidates.
func parseLossLineBytes(line []byte) (float64, bool) {
	idx := bytes.Index(line, lossPrefix)
	if idx < 0 || !bytes.Contains(line, epochMark) {
		return 0, false
	}
	tok := line[idx+len(lossPrefix):]
	v, err := strconv.ParseFloat(string(tok[:floatTokenLen(tok)]), 64)
	return v, err == nil
}

// floatTokenLen returns the length of the longest prefix of tok that is a
// valid decimal float: [sign] digits [. digits] [e|E [sign] digits].
func floatTokenLen(tok []byte) int {
	i, n := 0, len(tok)
	if i < n && (tok[i] == '+' || tok[i] == '-') {
		i++
	}
	digits := false
	for i < n && tok[i] >= '0' && tok[i] <= '9' {
		i++
		digits = true
	}
	if i < n && tok[i] == '.' {
		i++
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
			digits = true
		}
	}
	if digits && i < n && (tok[i] == 'e' || tok[i] == 'E') {
		j := i + 1
		if j < n && (tok[j] == '+' || tok[j] == '-') {
			j++
		}
		k := j
		for k < n && tok[k] >= '0' && tok[k] <= '9' {
			k++
		}
		if k > j { // exponent counts only when it has digits
			i = k
		}
	}
	return i
}

var (
	lossPrefix = []byte("loss=")
	epochMark  = []byte("Epoch ")
)
