package joblog

// Sharded log scanning. Classification and loss-curve parsing are pure
// functions of the log text, which makes them fork-join friendly: cut the
// buffer into chunks, scan each chunk independently, and merge with an
// operation whose result cannot depend on the chunking (minimum rule index
// for classification; in-order concatenation for parsing). The simulator
// calls these from the single-threaded event loop and blocks until the
// join, so scheduling semantics are untouched.
//
// Chunk boundaries are deterministic functions of the input length alone —
// and for classification the merge (min) is order-free anyway — so results
// are bit-identical to the sequential scan for every worker count.

import (
	"bytes"

	"philly/internal/par"
)

// scanChunkSize is the classification shard size. parallelScanMin gates the
// parallel path: below it, fork-join overhead dwarfs the scan (a typical
// generated failure log is a few hundred bytes and stays inline).
const (
	scanChunkSize   = 64 << 10
	parallelScanMin = 2 * scanChunkSize
)

// maxPatternLen is the longest compiled-rule pattern; chunk overlap must
// cover it so a match straddling a boundary is seen whole by some chunk.
var maxPatternLen = func() int {
	max := 0
	for _, r := range compiledRules {
		if len(r.Pattern) > max {
			max = len(r.Pattern)
		}
	}
	return max
}()

// matchBytesPool is matchBytes sharded across the pool. Each chunk starts
// maxPatternLen-1 bytes early with a fresh automaton state: any occurrence
// of a pattern (length ≤ maxPatternLen) lies entirely within at least one
// extended chunk, so the union of chunk matches equals the full-scan match
// set, and the minimum rule index over chunks equals the sequential answer.
// A non-ASCII byte in any chunk returns -2, exactly like the sequential
// scan's fallback trigger.
func (m *matcher) matchBytesPool(log []byte, p *par.Pool) int32 {
	if p == nil || len(log) < parallelScanMin {
		return m.matchBytes(log)
	}
	chunks := (len(log) + scanChunkSize - 1) / scanChunkSize
	results := make([]int32, chunks)
	p.ForkJoin(chunks, func(c int) {
		lo, hi := c*scanChunkSize, (c+1)*scanChunkSize
		if hi > len(log) {
			hi = len(log)
		}
		if over := maxPatternLen - 1; c > 0 && over > 0 {
			lo -= over // overlap: matches crossing the cut end in this chunk
		}
		results[c] = m.matchBytes(log[lo:hi])
	})
	best := noRule
	for _, r := range results {
		switch {
		case r == -2:
			return -2
		case r >= 0 && r < best:
			best = r
		}
	}
	if best == noRule {
		return -1
	}
	return best
}

// ClassifyBytesPool is Classifier.ClassifyBytes with the scan sharded
// across the pool for large logs. Semantics and result are identical to
// ClassifyBytes for any input and any pool size.
func (c *Classifier) ClassifyBytesPool(log []byte, p *par.Pool) string {
	if len(log) == 0 {
		return NoSignature
	}
	i := c.m.matchBytesPool(log, p)
	if i == -2 {
		return c.ClassifyBytes(log) // non-ASCII: sequential Unicode path
	}
	if i >= 0 {
		return c.rules[i].Reason
	}
	return NoSignature
}

// parseChunkSize is the loss-curve shard size in bytes (cut at line
// boundaries); parallelParseMin gates the parallel path.
const (
	parseChunkSize   = 64 << 10
	parallelParseMin = 2 * parseChunkSize
)

// ParseLossCurveBytesPool is ParseLossCurveBytes with the line walk sharded
// across the pool for large logs. Chunks are cut at the first newline at or
// after each parseChunkSize boundary — a function of the input alone — and
// per-chunk results are concatenated in chunk order, so the returned curve
// is element-for-element identical to the sequential parse.
func ParseLossCurveBytesPool(log []byte, dst []float64, p *par.Pool) []float64 {
	if p == nil || len(log) < parallelParseMin {
		return ParseLossCurveBytes(log, dst)
	}
	// Cut points: each chunk ends at the newline that terminates the line
	// spanning its nominal boundary, so every line belongs to exactly one
	// chunk.
	var cuts []int // cuts[i] is the exclusive end of chunk i
	for pos := 0; pos < len(log); {
		end := pos + parseChunkSize
		if end >= len(log) {
			cuts = append(cuts, len(log))
			break
		}
		if nl := bytes.IndexByte(log[end:], '\n'); nl >= 0 {
			cuts = append(cuts, end+nl+1)
		} else {
			cuts = append(cuts, len(log))
		}
		pos = cuts[len(cuts)-1]
	}
	parts := make([][]float64, len(cuts))
	p.ForkJoin(len(cuts), func(c int) {
		lo := 0
		if c > 0 {
			lo = cuts[c-1]
		}
		parts[c] = ParseLossCurveBytes(log[lo:cuts[c]], nil)
	})
	out := dst
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}
