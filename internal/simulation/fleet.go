// Fleet generalizes the per-VC sharded engine (sharded.go) one level up:
// a shard is no longer a lane of pre-scheduled events inside one cluster,
// it is an entire member cluster with its own event timeline. This is the
// seam ROADMAP's "multi-cluster / federated studies" item names: several
// clusters (Philly-scale, Helios-like, ...) advance concurrently inside
// bounded virtual-time windows and interact only through coarse-grained
// fleet events — job spillover, quota rebalancing — that execute alone at
// window barriers.
//
// # What the generalization changes
//
// Sharded's local callbacks may not schedule: every event key is assigned
// by the one coordinator-owned seq counter, which is what makes the event
// order bit-identical to the sequential Engine. A member cluster cannot
// live under that rule — a cluster driver schedules constantly (arrivals
// pump the scheduler, episode ends arm new episodes, tickers re-arm
// themselves). Fleet therefore gives each member a private, fully ordered
// lane:
//
//   - Lane events are keyed (at, lseq): lseq is the member-local schedule
//     counter, so within one member the execution order is exactly the
//     sequential Engine's FIFO-at-equal-times order. A member callback may
//     schedule onto its own member and may stop its own member.
//   - Cross-member and member-to-global scheduling from member context is
//     a contract violation and panics, exactly like Sharded's local
//     scheduling panic: members share no state except through barriers.
//   - Global (fleet) events are keyed (at, gseq) by the coordinator-owned
//     counter and run alone at window barriers, in exactly the order the
//     sequential Engine would run them.
//
// # Window rule
//
// The earliest pending global event defines the barrier key (bAt, bSeq).
// Each member runs its lane, sequentially in (at, lseq) order, while the
// head event is ordered before the barrier; different members run
// concurrently on the shared pool. A lane event's position against the
// barrier is decided by its own global-order stamp gseq:
//
//   - Scheduled from global context (setup or a barrier callback), the
//     event's gseq is drawn from the same counter as global events, so
//     instant ties against barriers resolve exactly as the sequential
//     Engine's FIFO would.
//   - Scheduled from member context, the event inherits the stamp of the
//     window it was created in (the barrier's gseq): at an instant tie it
//     runs after the fleet events of that instant and before any fleet
//     event scheduled later — the order a sequential interleaving of
//     "member work, then barrier" would produce.
//
// The stamp orders a lane head against barriers only; it never reorders
// events within a lane (lanes are FIFO by (at, lseq)). Determinism follows
// the same argument as Sharded: the only reordering Fleet introduces is
// between events of different members inside one window, and those commute
// because members touch disjoint state; every barrier event runs at its
// exact global position. The race detector over the federation invariance
// matrix enforces the disjointness the engine cannot check.
package simulation

import (
	"fmt"
	"math"
	"sync/atomic"

	"philly/internal/par"
)

// NoHorizon is the default member horizon: the member runs as far as the
// fleet does.
const NoHorizon Time = math.MaxInt64

// laneEvent is one member-lane event. Lane order is (at, lseq) — the
// member's own FIFO. gseq is the global-order stamp consulted only when the
// lane head ties with a window barrier at the same instant.
type laneEvent struct {
	at   Time
	lseq uint64
	gseq uint64
	fn   func()
}

// laneLess orders lane events by (at, lseq); the pair is unique per lane.
func (e *laneEvent) less(o *laneEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.lseq < o.lseq
}

// laneHeap is a value-typed 4-ary min-heap over (at, lseq), the same layout
// as eventHeap (see engine.go) with the lane key.
type laneHeap []laneEvent

func (h *laneHeap) push(e laneEvent) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q[i].less(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *laneHeap) pop() laneEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = laneEvent{} // release the fn reference for GC
	q = q[:n]
	*h = q
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].less(&q[min]) {
				min = c
			}
		}
		if !q[min].less(&q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// memberLane is one member cluster's private timeline.
type memberLane struct {
	queue laneHeap
	// now is the member clock: the time of the member's last executed
	// event. It is what the member's driver observes as Now, so it is never
	// dragged by barrier time — it advances only through the member's own
	// events and the final drain-to-horizon step.
	now Time
	// seq is the member-local schedule counter (lseq source).
	seq uint64
	// horizon bounds the member's own run, independent of the fleet's:
	// events past it stay pending, exactly like the sequential Engine's
	// Run(horizon) for a standalone study.
	horizon Time
	// stopped marks a member that halted itself (Stop); its remaining
	// events stay pending, like a stopped Engine's.
	stopped bool
	// active marks that the lane's window task is currently executing
	// events — the member-context detector. Written and read only by that
	// task's goroutine on the legitimate paths.
	active    bool
	processed uint64
}

// Fleet is the multi-cluster coordinator engine. The zero value is not
// usable; call NewFleet. It is driven from one goroutine (Run); only the
// window fork-join fans out, one task per member.
type Fleet struct {
	lanes   []memberLane
	members []Member
	global  eventHeap
	// seq is the coordinator-owned global-order counter: every event
	// scheduled from global context — fleet events and member events alike
	// — draws its gseq here, which is what makes instant ties against
	// barriers resolve exactly as the sequential Engine's FIFO.
	seq       uint64
	now       Time
	stopped   bool
	processed uint64 // global events executed
	stats     WindowStats

	// windowSeq is the gseq stamp member-context schedules inherit: the
	// current window's barrier seq. Written by the coordinator before the
	// window fork, read by lane tasks during it (fork-join ordered).
	windowSeq uint64

	// pool runs window fork-joins; nil executes members inline.
	pool *par.Pool
	// inWindow marks that a window fork-join is executing, to reject
	// global scheduling and Stop from member callbacks.
	inWindow atomic.Bool

	// runnable is the reused per-window list of member indexes with work.
	runnable []int
}

// NewFleet returns a coordinator with n member lanes and the clock at zero.
func NewFleet(n int) *Fleet {
	if n < 1 {
		panic("simulation: fleet needs at least one member")
	}
	f := &Fleet{
		lanes:  make([]memberLane, n),
		global: make(eventHeap, 0, 64),
	}
	f.members = make([]Member, n)
	for i := range f.members {
		f.lanes[i].horizon = NoHorizon
		f.members[i] = Member{f: f, id: ShardID(i)}
	}
	return f
}

// SetPool attaches the worker pool used for window-level fork-join. A nil
// pool (or one of size 1) runs every window inline in member order —
// results are identical either way; only wall-clock changes.
func (f *Fleet) SetPool(p *par.Pool) { f.pool = p }

// NumShards returns the member count (the Executor-surface name, so the
// conformance harness can treat Fleet and Sharded uniformly).
func (f *Fleet) NumShards() int { return len(f.lanes) }

// Member returns the executor view of member i: the Executor a member
// cluster's driver runs on. Unlike the Fleet surface itself, a member view
// accepts scheduling and Stop from inside its own callbacks.
func (f *Fleet) Member(i ShardID) *Member {
	return &f.members[i]
}

// Now returns the barrier clock: the time of the last executed global
// event, or the horizon after a drained Run.
func (f *Fleet) Now() Time { return f.now }

// Stats returns the window statistics accumulated so far.
func (f *Fleet) Stats() WindowStats { return f.stats }

// Processed returns the number of executed events (member + global).
func (f *Fleet) Processed() uint64 {
	total := f.processed
	for i := range f.lanes {
		total += f.lanes[i].processed
	}
	return total
}

// Pending returns how many events are waiting across all heaps.
func (f *Fleet) Pending() int {
	n := len(f.global)
	for i := range f.lanes {
		n += len(f.lanes[i].queue)
	}
	return n
}

// checkGlobalContext panics when called from inside a window fork-join:
// global scheduling from a member callback would make gseq assignment (and
// with it the barrier order) depend on thread timing.
func (f *Fleet) checkGlobalContext(what string) {
	if f.inWindow.Load() {
		panic(fmt.Sprintf("simulation: %s on the fleet from a member callback; only barrier events may %s (federation barrier contract)", what, what))
	}
}

// At schedules a global fleet event at absolute time at. Global events run
// alone at window barriers, in exactly the sequential engine's (at, seq)
// order. Global-context-only.
func (f *Fleet) At(at Time, fn func()) {
	f.checkGlobalContext("scheduling")
	if fn == nil {
		panic("simulation: scheduling nil event")
	}
	if at < f.now {
		panic(fmt.Sprintf("simulation: scheduling event in the past (%v < now %v)", at, f.now))
	}
	f.seq++
	f.global.push(event{at: at, seq: f.seq, fn: fn})
}

// After schedules a global fleet event d seconds from Now.
func (f *Fleet) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	f.At(f.now+d, fn)
}

// AtShard schedules an event onto member sh's lane from global context
// (Global routes to At). This is the Executor-surface path the conformance
// harness drives; member drivers use their Member view instead, which
// additionally allows member-context scheduling.
func (f *Fleet) AtShard(sh ShardID, at Time, fn func()) {
	if sh == Global {
		f.At(at, fn)
		return
	}
	f.checkGlobalContext("scheduling")
	if int(sh) < 0 || int(sh) >= len(f.lanes) {
		panic(fmt.Sprintf("simulation: member %d out of range [0, %d)", sh, len(f.lanes)))
	}
	f.scheduleMember(&f.lanes[sh], at, fn, false)
}

// scheduleMember pushes one event onto a member lane. fromMember selects
// the gseq stamp: the shared global counter from global context, the
// current window's barrier seq from inside the member's own callbacks.
func (f *Fleet) scheduleMember(lane *memberLane, at Time, fn func(), fromMember bool) {
	if fn == nil {
		panic("simulation: scheduling nil event")
	}
	if at < lane.now {
		panic(fmt.Sprintf("simulation: scheduling event in the member's past (%v < now %v)", at, lane.now))
	}
	var gseq uint64
	if fromMember {
		gseq = f.windowSeq
	} else {
		f.seq++
		gseq = f.seq
	}
	lane.seq++
	lane.queue.push(laneEvent{at: at, lseq: lane.seq, gseq: gseq, fn: fn})
}

// Ticker invokes fn every interval seconds as a global fleet event, like
// Engine.Ticker.
func (f *Fleet) Ticker(start, interval Time, fn func(now Time) bool) {
	if interval <= 0 {
		panic("simulation: ticker interval must be positive")
	}
	var tick func()
	at := start
	tick = func() {
		if !fn(f.now) {
			return
		}
		at += interval
		f.At(at, tick)
	}
	f.At(start, tick)
}

// Stop halts the fleet run loop after the currently executing global event
// returns. Member callbacks must not call it (they may stop their own
// member view instead).
func (f *Fleet) Stop() {
	f.checkGlobalContext("stopping")
	f.stopped = true
}

// barrierKey returns the ordering key of the earliest pending global event,
// or (horizon+1, 0) when none is pending within the horizon — the open
// window in which members drain everything they have left.
func (f *Fleet) barrierKey(horizon Time) (Time, uint64, bool) {
	if len(f.global) == 0 || f.global[0].at > horizon {
		return horizon + 1, 0, false
	}
	return f.global[0].at, f.global[0].seq, true
}

// laneRunnable reports whether the lane's head event is ordered before the
// (bAt, bSeq) barrier and within both horizons.
func laneRunnable(lane *memberLane, bAt Time, bSeq uint64, horizon Time) bool {
	if lane.stopped || len(lane.queue) == 0 {
		return false
	}
	e := &lane.queue[0]
	if e.at > horizon || e.at > lane.horizon {
		return false
	}
	return e.at < bAt || (e.at == bAt && e.gseq < bSeq)
}

// runWindow executes, on every member, the lane events ordered before the
// (at, seq) barrier key and not past the horizons.
func (f *Fleet) runWindow(bAt Time, bSeq uint64, horizon Time) {
	runnable := f.runnable[:0]
	for i := range f.lanes {
		if laneRunnable(&f.lanes[i], bAt, bSeq, horizon) {
			runnable = append(runnable, i)
		}
	}
	f.runnable = runnable
	if len(runnable) == 0 {
		return
	}

	f.stats.Windows++
	if len(runnable) > 1 {
		f.stats.MultiShardWindows++
	}
	if len(runnable) > f.stats.MaxShardsInWindow {
		f.stats.MaxShardsInWindow = len(runnable)
	}

	f.windowSeq = bSeq
	run := func(t int) {
		lane := &f.lanes[runnable[t]]
		lane.active = true
		for laneRunnable(lane, bAt, bSeq, horizon) {
			next := lane.queue.pop()
			lane.now = next.at
			next.fn()
			lane.processed++
		}
		lane.active = false
	}
	f.inWindow.Store(true)
	if f.pool == nil || len(runnable) == 1 {
		for t := range runnable {
			run(t)
		}
	} else {
		f.pool.ForkJoin(len(runnable), run)
	}
	f.inWindow.Store(false)
}

// Run executes events in windows until every heap drains or the clock
// would pass horizon (events at exactly horizon still run). It returns the
// number of events executed during this call. Semantics match Sharded.Run
// at the fleet level; each member lane additionally honors its own horizon
// and Stop with the sequential Engine's exact semantics, so a member's
// observable timeline is byte-identical to a standalone run.
func (f *Fleet) Run(horizon Time) uint64 {
	f.stopped = false
	for i := range f.lanes {
		f.lanes[i].stopped = false
	}
	start := f.Processed()
	for !f.stopped {
		bAt, bSeq, haveGlobal := f.barrierKey(horizon)
		f.runWindow(bAt, bSeq, horizon)
		if !haveGlobal {
			// No global event within the horizon: the members just drained
			// everything runnable, so this Run is done.
			break
		}
		next := f.global.pop()
		f.now = next.at
		next.fn()
		f.processed++
		f.stats.GlobalEvents++
	}
	f.stats.LocalEvents = f.Processed() - f.stats.GlobalEvents
	if !f.stopped {
		if f.now < horizon && f.Pending() == 0 {
			f.now = horizon
		}
		// Drained members advance to their own horizon, exactly like a
		// standalone Engine.Run: only when not stopped and fully drained.
		for i := range f.lanes {
			lane := &f.lanes[i]
			h := lane.horizon
			if horizon < h {
				h = horizon
			}
			if !lane.stopped && len(lane.queue) == 0 && lane.now < h {
				lane.now = h
			}
		}
	}
	return f.Processed() - start
}

// Member is the executor view a member cluster's driver runs on. It
// implements Executor: Now/At/After/AtShard/Ticker observe and feed the
// member's private lane, Stop halts the member (not the fleet), and —
// unlike Sharded locals — scheduling from inside the member's own
// callbacks is allowed, because the lane is totally ordered by its own
// counter. Scheduling or stopping another member's view from a member
// callback panics (federation barrier contract).
type Member struct {
	f  *Fleet
	id ShardID
}

var _ Executor = (*Fleet)(nil)
var _ Executor = (*Member)(nil)

func (m *Member) lane() *memberLane { return &m.f.lanes[m.id] }

// fromMember reports whether the call is executing inside this member's
// own window task, and panics when it comes from a different member's
// callback — the cross-member mutation the barrier contract forbids.
func (m *Member) fromMember(what string) bool {
	if !m.f.inWindow.Load() {
		return false
	}
	if !m.lane().active {
		panic(fmt.Sprintf("simulation: %s on member %d from another member's callback; cross-member interactions must go through fleet barrier events (federation barrier contract)", what, m.id))
	}
	return true
}

// ID returns the member's shard index in the fleet.
func (m *Member) ID() ShardID { return m.id }

// SetHorizon bounds the member's own run: events past it stay pending and
// the member clock drains to it, exactly like the sequential Engine's
// Run(horizon) for a standalone study. Must be set before the fleet runs.
func (m *Member) SetHorizon(h Time) { m.lane().horizon = h }

// Now returns the member clock: the time of the member's last executed
// event (or its horizon after a full drain) — what the member's driver
// would observe on a standalone sequential engine.
func (m *Member) Now() Time { return m.lane().now }

// At schedules an event on the member's lane at absolute time at.
func (m *Member) At(at Time, fn func()) {
	m.f.scheduleMember(m.lane(), at, fn, m.fromMember("scheduling"))
}

// After schedules an event d seconds from the member clock.
func (m *Member) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	m.At(m.lane().now+d, fn)
}

// AtShard schedules on the member's lane regardless of the shard tag, like
// the sequential Engine (the member is one timeline; its driver's internal
// shard labels do not partition it further).
func (m *Member) AtShard(_ ShardID, at Time, fn func()) { m.At(at, fn) }

// Ticker invokes fn every interval seconds on the member's lane, with
// Engine.Ticker's exact semantics against the member clock.
func (m *Member) Ticker(start, interval Time, fn func(now Time) bool) {
	if interval <= 0 {
		panic("simulation: ticker interval must be positive")
	}
	var tick func()
	at := start
	tick = func() {
		if !fn(m.Now()) {
			return
		}
		at += interval
		m.At(at, tick)
	}
	m.At(start, tick)
}

// Stop halts this member: its remaining events stay pending and its clock
// freezes at the current event, exactly like Engine.Stop for a standalone
// study. Callable from the member's own callbacks and from global context;
// never from another member's.
func (m *Member) Stop() {
	m.fromMember("stopping")
	m.lane().stopped = true
}

// Run is not callable on a member view: the fleet coordinator drives all
// members. It exists to satisfy Executor so a study driver can run
// unchanged on a member view (drivers split into arm and collect phases
// never call Run).
func (m *Member) Run(Time) uint64 {
	panic("simulation: a federation member is driven by the fleet coordinator; call Fleet.Run")
}

// Processed returns the number of events executed on this member's lane.
func (m *Member) Processed() uint64 { return m.lane().processed }

// Pending returns how many events wait on this member's lane.
func (m *Member) Pending() int { return len(m.lane().queue) }

// Stopped reports whether the member halted itself.
func (m *Member) Stopped() bool { return m.lane().stopped }
