package simulation

import (
	"fmt"
	"reflect"
	"testing"
)

// TestEngineEdgeCases pins down the event-loop corners the study driver and
// the sweep harness lean on: stopping from inside an event, tickers that
// decline their first tick, negative After clamping, and FIFO ordering of
// simultaneous events.
func TestEngineEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, e *Engine)
	}{
		{
			// Stop() from inside an event must halt after that event
			// returns: later events stay queued, and Now stays put instead
			// of advancing to the horizon.
			name: "stop inside event during run",
			run: func(t *testing.T, e *Engine) {
				var ran []string
				e.At(10, func() {
					ran = append(ran, "stopper")
					e.Stop()
				})
				e.At(10, func() { ran = append(ran, "same-instant-after-stop") })
				e.At(20, func() { ran = append(ran, "later") })
				n := e.Run(100)
				if want := []string{"stopper"}; !reflect.DeepEqual(ran, want) {
					t.Fatalf("ran %v, want %v", ran, want)
				}
				if n != 1 {
					t.Fatalf("executed %d events, want 1", n)
				}
				if e.Now() != 10 {
					t.Fatalf("clock advanced to %v after Stop, want 10", e.Now())
				}
				if e.Pending() != 2 {
					t.Fatalf("%d events pending after Stop, want 2", e.Pending())
				}
			},
		},
		{
			// A ticker whose callback returns false on the very first tick
			// must fire exactly once and leave nothing queued.
			name: "ticker declines first tick",
			run: func(t *testing.T, e *Engine) {
				ticks := 0
				e.Ticker(5, 10, func(now Time) bool {
					ticks++
					if now != 5 {
						t.Fatalf("first tick at %v, want 5", now)
					}
					return false
				})
				e.Run(1000)
				if ticks != 1 {
					t.Fatalf("ticker fired %d times, want 1", ticks)
				}
				if e.Pending() != 0 {
					t.Fatalf("%d events still pending after declined ticker", e.Pending())
				}
			},
		},
		{
			// After with a negative delay clamps to now — and the clamped
			// event still queues FIFO behind events already scheduled for
			// the current instant.
			name: "negative After clamps to now",
			run: func(t *testing.T, e *Engine) {
				var ran []string
				var at Time = -1
				e.At(7, func() {
					e.After(3, func() { ran = append(ran, "future") })
					e.After(-50, func() {
						at = e.Now()
						ran = append(ran, "clamped")
					})
					e.After(-1, func() { ran = append(ran, "clamped-second") })
				})
				e.Run(100)
				want := []string{"clamped", "clamped-second", "future"}
				if !reflect.DeepEqual(ran, want) {
					t.Fatalf("ran %v, want %v", ran, want)
				}
				if at != 7 {
					t.Fatalf("clamped event ran at %v, want 7", at)
				}
			},
		},
		{
			// Many events at the same instant run in scheduling order, even
			// interleaved with events scheduled for other instants.
			name: "FIFO among many simultaneous events",
			run: func(t *testing.T, e *Engine) {
				const n = 200
				var ran []int
				for i := 0; i < n; i++ {
					i := i
					// Interleave another instant so heap reshuffling gets a
					// chance to break a buggy ordering.
					if i%3 == 0 {
						e.At(99, func() {})
					}
					e.At(42, func() { ran = append(ran, i) })
				}
				e.Run(100)
				if len(ran) != n {
					t.Fatalf("%d events ran, want %d", len(ran), n)
				}
				for i, v := range ran {
					if v != i {
						t.Fatalf("event %d ran at position %d: same-instant order not FIFO", v, i)
					}
				}
			},
		},
		{
			// Stop inside a ticker callback: the ticker must not re-arm.
			name: "stop inside ticker",
			run: func(t *testing.T, e *Engine) {
				ticks := 0
				e.Ticker(0, 10, func(now Time) bool {
					ticks++
					if ticks == 3 {
						e.Stop()
					}
					return true
				})
				e.Run(1000)
				if ticks != 3 {
					t.Fatalf("ticker fired %d times, want 3", ticks)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, NewEngine())
		})
	}
}

// TestRunAfterStopResumes verifies Run can be called again after a Stop and
// picks up the still-queued events (the study driver relies on Stop being a
// pause of the loop, not a poison pill).
func TestRunAfterStopResumes(t *testing.T) {
	e := NewEngine()
	var ran []string
	e.At(1, func() {
		ran = append(ran, "first")
		e.Stop()
	})
	e.At(2, func() { ran = append(ran, "second") })
	e.Run(10)
	e.Run(10)
	if want := []string{"first", "second"}; !reflect.DeepEqual(ran, want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
}

// TestSameInstantFIFOAcrossSources checks that At, After(0) and a ticker
// tick landing on the same instant keep their relative scheduling order.
func TestSameInstantFIFOAcrossSources(t *testing.T) {
	e := NewEngine()
	var ran []string
	e.At(10, func() { ran = append(ran, "at") })
	e.At(0, func() {
		e.At(10, func() { ran = append(ran, "nested-at") })
	})
	e.Ticker(10, 10, func(now Time) bool {
		ran = append(ran, fmt.Sprintf("tick@%d", now))
		return false
	})
	e.Run(10)
	want := []string{"at", "tick@10", "nested-at"}
	if !reflect.DeepEqual(ran, want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
}
