// Per-virtual-cluster event sharding. The sequential Engine executes every
// event on one goroutine in (at, seq) order. The cluster it simulates,
// however, is naturally partitioned: each virtual cluster owns its jobs and
// queues, and only a minority of interactions (placement on the shared
// physical cluster, fair-share preemption, cluster-wide telemetry ticks)
// couple VCs to each other. Sharded exploits that structure without giving
// up one bit of determinism.
//
// # Model
//
// Every event is either *local* to a shard (it reads and writes only state
// owned by that shard) or *global* (it may touch anything). The coordinator
// advances the simulation in virtual-time windows:
//
//  1. The earliest pending global event g defines the window barrier — the
//     ordering key (g.at, g.seq).
//  2. Every shard runs its local events with keys below the barrier, each
//     shard sequentially in (at, seq) order, different shards concurrently
//     on the shared worker pool (window-level fork-join).
//  3. At the barrier the shards join and the coordinator executes g alone.
//
// # Determinism contract
//
// The result is bit-identical to the sequential Engine executing the same
// events in full (at, seq) order, because the only reordering Sharded ever
// introduces is between local events of *different* shards inside one
// window — and those commute by definition: they touch disjoint state, and
// every global event (which may observe any state) still runs at exactly
// its sequential position. Three rules make the argument airtight, and the
// engine enforces them at runtime:
//
//   - Local callbacks must not schedule events (At/AtShard from a shard
//     callback panics). All scheduling happens in global context — setup or
//     global callbacks — on the coordinator goroutine, so the seq counter
//     assigns every event the exact number the sequential Engine would.
//     Causal chains that need to schedule therefore pass through a barrier:
//     the conservative lookahead is "a local event never creates work",
//     which core satisfies by pre-scheduling each local prepare step
//     together with its global commit step (see internal/core).
//   - Local callbacks must not touch another shard's state or any shared
//     mutable state. The engine cannot check this directly; the race
//     detector over the invariance matrix does (make check).
//   - Stop, like scheduling, is global-context-only.
//
// Window execution is a fork-join on an internal/par pool: the budget is
// shared with the telemetry walk and every other parallel layer, and a busy
// or absent pool degrades to inline shard-order execution with identical
// results.
package simulation

import (
	"fmt"
	"sync/atomic"

	"philly/internal/par"
)

// ShardID names an event shard. Shards are dense indexes [0, NumShards);
// Global marks events that must run alone at a window barrier.
type ShardID int

// Global is the pseudo-shard of barrier events.
const Global ShardID = -1

// Executor is the scheduling surface the study driver runs on, implemented
// by both the sequential Engine and the per-VC Sharded engine. At schedules
// a global event; AtShard schedules a shard-local one (the sequential
// Engine treats both identically, which is what makes the two engines
// interchangeable: the callback set and the observable execution order of
// non-commuting events are the same).
type Executor interface {
	// Now returns the current simulated time: the barrier clock for
	// Sharded, the event clock for Engine. Local callbacks receive their
	// own time explicitly and must not consult Now.
	Now() Time
	// At schedules a global event at absolute time at.
	At(at Time, fn func())
	// After schedules a global event d seconds from Now.
	After(d Time, fn func())
	// AtShard schedules an event local to the given shard. The callback
	// must touch only that shard's state and must not schedule or Stop.
	AtShard(shard ShardID, at Time, fn func())
	// Ticker invokes fn every interval seconds as a global event.
	Ticker(start, interval Time, fn func(now Time) bool)
	// Stop halts the run loop; global-context-only.
	Stop()
	// Run executes events until the queue drains or the clock passes
	// horizon; returns the number executed during this call.
	Run(horizon Time) uint64
	// Processed returns the number of executed events so far.
	Processed() uint64
	// Pending returns how many events are waiting.
	Pending() int
}

// Engine schedules shard-tagged events like any other: one heap, full
// (at, seq) order. This is the sequential reference the sharded engine is
// measured against.
func (e *Engine) AtShard(_ ShardID, at Time, fn func()) { e.At(at, fn) }

var _ Executor = (*Engine)(nil)
var _ Executor = (*Sharded)(nil)

// shard is one virtual cluster's private event lane.
type shard struct {
	queue eventHeap
	// now is the shard's local clock: the time of its last executed event,
	// never behind the coordinator's barrier clock at window edges.
	now Time
	// processed counts events executed on this shard (owned by the shard's
	// window task while running, read by the coordinator after joins).
	processed uint64
}

// WindowStats describes how much intra-window parallelism a run exposed.
// All counts are deterministic: they depend on the event schedule only,
// never on pool size or thread timing.
type WindowStats struct {
	// Windows is the number of barrier-to-barrier windows executed.
	Windows uint64
	// MultiShardWindows counts windows in which at least two distinct
	// shards executed local events — the windows where shards genuinely
	// advanced concurrently in virtual time.
	MultiShardWindows uint64
	// MaxShardsInWindow is the largest number of distinct shards active in
	// any single window.
	MaxShardsInWindow int
	// LocalEvents and GlobalEvents partition Processed().
	LocalEvents, GlobalEvents uint64
	// Barriers counts barrier drain cycles: consecutive global events with
	// no shard-local event ordered between them — a same-instant arrival
	// storm, a batch of commits — execute inside one cycle, so Barriers is
	// the number of times the run actually synchronized, not the number of
	// global events. Barriers <= GlobalEvents.
	Barriers uint64
}

// Sharded is the per-VC event engine. The zero value is not usable; call
// NewSharded. It is driven from one goroutine (Run); only the window
// fork-join fans out, and only over shard-local callbacks.
type Sharded struct {
	shards []shard
	global eventHeap
	// seq is the engine-wide scheduling counter. One counter, allocated
	// only from global context, so every event carries exactly the (at,
	// seq) key the sequential Engine would have assigned it — the property
	// the whole bit-identity argument rests on.
	seq       uint64
	now       Time
	stopped   bool
	processed uint64 // global events executed
	stats     WindowStats

	// pool runs window fork-joins; nil executes shards inline.
	pool *par.Pool
	// inShard marks that a window fork-join is executing, to reject
	// scheduling and Stop from local callbacks.
	inShard atomic.Bool

	// runnable is the reused per-window list of shard indexes with work.
	runnable []int
}

// NewSharded returns a sharded engine with n local shards and the clock at
// zero. n must be at least 1.
func NewSharded(n int) *Sharded {
	if n < 1 {
		panic("simulation: sharded engine needs at least one shard")
	}
	s := &Sharded{
		shards: make([]shard, n),
		global: make(eventHeap, 0, 256),
	}
	return s
}

// SetPool attaches the worker pool used for window-level fork-join. A nil
// pool (or one of size 1) runs every window inline in shard order — results
// are identical either way; only wall-clock changes.
func (s *Sharded) SetPool(p *par.Pool) { s.pool = p }

// NumShards returns the number of local shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Now returns the barrier clock: the time of the last executed global
// event, or the horizon after a drained Run.
func (s *Sharded) Now() Time { return s.now }

// Stats returns the window statistics accumulated so far.
func (s *Sharded) Stats() WindowStats { return s.stats }

// Processed returns the number of executed events (local + global).
func (s *Sharded) Processed() uint64 {
	total := s.processed
	for i := range s.shards {
		total += s.shards[i].processed
	}
	return total
}

// Pending returns how many events are waiting across all heaps.
func (s *Sharded) Pending() int {
	n := len(s.global)
	for i := range s.shards {
		n += len(s.shards[i].queue)
	}
	return n
}

// checkContext panics when called from inside a window fork-join: local
// callbacks creating or halting work would make seq assignment (and with
// it the cross-shard event order) depend on thread timing.
func (s *Sharded) checkContext(what string) {
	if s.inShard.Load() {
		panic(fmt.Sprintf("simulation: %s from a shard-local callback; only global events may %s (window-merge determinism contract)", what, what))
	}
}

// At schedules a global event at absolute time at. Global events run alone
// at window barriers, in exactly the sequential engine's (at, seq) order.
func (s *Sharded) At(at Time, fn func()) {
	s.checkContext("scheduling")
	if fn == nil {
		panic("simulation: scheduling nil event")
	}
	if at < s.now {
		panic(fmt.Sprintf("simulation: scheduling event in the past (%v < now %v)", at, s.now))
	}
	s.seq++
	s.global.push(event{at: at, seq: s.seq, fn: fn})
}

// After schedules a global event d seconds from Now.
func (s *Sharded) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// AtShard schedules an event local to shard sh. Shard -1 (Global) is
// accepted and equivalent to At, so callers can route by ownership without
// special cases.
func (s *Sharded) AtShard(sh ShardID, at Time, fn func()) {
	if sh == Global {
		s.At(at, fn)
		return
	}
	s.checkContext("scheduling")
	if int(sh) < 0 || int(sh) >= len(s.shards) {
		panic(fmt.Sprintf("simulation: shard %d out of range [0, %d)", sh, len(s.shards)))
	}
	if fn == nil {
		panic("simulation: scheduling nil event")
	}
	if at < s.now {
		panic(fmt.Sprintf("simulation: scheduling event in the past (%v < now %v)", at, s.now))
	}
	s.seq++
	s.shards[sh].queue.push(event{at: at, seq: s.seq, fn: fn})
}

// Ticker invokes fn every interval seconds as a global event, like
// Engine.Ticker.
func (s *Sharded) Ticker(start, interval Time, fn func(now Time) bool) {
	if interval <= 0 {
		panic("simulation: ticker interval must be positive")
	}
	var tick func()
	at := start
	tick = func() {
		if !fn(s.now) {
			return
		}
		at += interval
		s.At(at, tick)
	}
	s.At(start, tick)
}

// Stop halts the run loop after the currently executing global event
// returns. Local callbacks must not call it.
func (s *Sharded) Stop() {
	s.checkContext("stopping")
	s.stopped = true
}

// barrierKey returns the ordering key of the earliest pending global event,
// or (horizon+1, 0) when none is pending within the horizon — the open
// window in which shards drain everything they have left.
func (s *Sharded) barrierKey(horizon Time) (Time, uint64, bool) {
	if len(s.global) == 0 || s.global[0].at > horizon {
		return horizon + 1, 0, false
	}
	return s.global[0].at, s.global[0].seq, true
}

// runWindow executes, on every shard, the local events ordered before the
// (at, seq) barrier key and not past the horizon.
func (s *Sharded) runWindow(bAt Time, bSeq uint64, horizon Time) {
	runnable := s.runnable[:0]
	for i := range s.shards {
		q := s.shards[i].queue
		if len(q) == 0 || q[0].at > horizon {
			continue
		}
		if q[0].at < bAt || (q[0].at == bAt && q[0].seq < bSeq) {
			runnable = append(runnable, i)
		}
	}
	s.runnable = runnable
	if len(runnable) == 0 {
		return
	}

	s.stats.Windows++
	if len(runnable) > 1 {
		s.stats.MultiShardWindows++
	}
	if len(runnable) > s.stats.MaxShardsInWindow {
		s.stats.MaxShardsInWindow = len(runnable)
	}

	run := func(t int) {
		sh := &s.shards[runnable[t]]
		for len(sh.queue) > 0 {
			e := &sh.queue[0]
			if e.at > horizon || e.at > bAt || (e.at == bAt && e.seq >= bSeq) {
				break
			}
			next := sh.queue.pop()
			sh.now = next.at
			next.fn()
			sh.processed++
		}
	}
	s.inShard.Store(true)
	if s.pool == nil || len(runnable) == 1 {
		for t := range runnable {
			run(t)
		}
	} else {
		s.pool.ForkJoin(len(runnable), run)
	}
	s.inShard.Store(false)
}

// shardEventBefore reports whether any shard's next event is ordered
// before the (at, seq) key — the test that decides whether the global
// drain must pause for a window.
func (s *Sharded) shardEventBefore(at Time, seq uint64) bool {
	for i := range s.shards {
		q := s.shards[i].queue
		if len(q) == 0 {
			continue
		}
		if q[0].at < at || (q[0].at == at && q[0].seq < seq) {
			return true
		}
	}
	return false
}

// Run executes events in windows until every heap drains or the clock
// would pass horizon (events at exactly horizon still run). It returns the
// number of events executed during this call. Semantics match Engine.Run:
// Stop (from a global event) halts after that event; the clock advances to
// the horizon when the queues drain first.
//
// Each iteration is one barrier cycle: run the window below the earliest
// global, then drain consecutive globals — executing, in (at, seq) order,
// every pending global not preceded by any shard-local event — before
// scanning for the next window. A same-instant arrival storm (or any batch
// of back-to-back globals) therefore costs one barrier, not one per event;
// the execution order is exactly the sequential engine's either way.
func (s *Sharded) Run(horizon Time) uint64 {
	s.stopped = false
	start := s.Processed()
	for !s.stopped {
		bAt, bSeq, haveGlobal := s.barrierKey(horizon)
		s.runWindow(bAt, bSeq, horizon)
		if !haveGlobal {
			// No global event within the horizon: the shards just drained
			// everything runnable, so the simulation is done.
			break
		}
		s.stats.Barriers++
		for !s.stopped {
			next := s.global.pop()
			s.now = next.at
			// Keep shard clocks from reading behind the barrier.
			for i := range s.shards {
				if s.shards[i].now < s.now {
					s.shards[i].now = s.now
				}
			}
			next.fn()
			s.processed++
			s.stats.GlobalEvents++
			if len(s.global) == 0 || s.global[0].at > horizon ||
				s.shardEventBefore(s.global[0].at, s.global[0].seq) {
				break
			}
		}
	}
	s.stats.LocalEvents = s.Processed() - s.stats.GlobalEvents
	if !s.stopped && s.now < horizon && s.Pending() == 0 {
		s.now = horizon
	}
	return s.Processed() - start
}
