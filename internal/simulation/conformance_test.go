package simulation

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"philly/internal/par"
)

// Cross-engine conformance suite: every executor — the sequential Engine,
// the per-VC Sharded engine at several shard counts, and the federation
// Fleet coordinator — must execute the same schedule with the same
// observable (at, seq) order. The suite replays deterministic edge-case
// schedules and randomized tie-heavy ones through all engines and compares:
//
//   - per-lane execution order (locals of one lane are totally ordered;
//     locals of different lanes commute by contract, so lanes are compared
//     independently),
//   - the global event sequence, with a snapshot of every lane's progress
//     at each global event — which pins each global's barrier position
//     against every lane, i.e. the full (at, seq) order of non-commuting
//     pairs,
//   - Stop/horizon semantics: processed and pending counts, and the final
//     clock where the engines define it identically.
//
// Engines with fewer lanes than the schedule's shard space fold shards
// modulo the lane count — the same fold core uses for ShardEvents(n) — and
// the Engine reference is folded the same way, so one schedule checks
// every layout.

// confChild is an event scheduled from inside a global event's callback
// (global context, so every engine accepts it): shard -1 is Global, dt is
// the offset from the parent's time (0 = a zero-duration chain).
type confChild struct {
	shard ShardID
	dt    Time
}

// confOp is one event of a conformance schedule, installed at setup.
type confOp struct {
	shard    ShardID
	at       Time
	children []confChild
	stop     bool // global events only: call Stop after recording
}

// confTrace is the observable execution record of one replay.
type confTrace struct {
	lanes     [][]string // lane 0 = globals, 1+i = folded shard i
	counts    []int      // per-folded-shard executed-event counts
	processed uint64
	pending   int
	now       Time
	stopped   bool // whether some global called Stop
	nowValid  bool // Now is comparable across engines (see replay)
}

// replay installs the schedule on ex (folding shards modulo lanes) and
// runs it to the horizon, recording per-lane execution order and, at each
// global event, a snapshot of every lane's progress.
func replay(ex Executor, sched []confOp, lanes int, horizon Time) *confTrace {
	tr := &confTrace{
		lanes:  make([][]string, lanes+1),
		counts: make([]int, lanes),
	}
	id := 0
	var install func(op confOp)
	install = func(op confOp) {
		opID := id
		id++
		if op.shard == Global {
			ex.At(op.at, func() {
				snap := fmt.Sprintf("g#%d@%v%v", opID, op.at, tr.counts)
				tr.lanes[0] = append(tr.lanes[0], snap)
				for _, ch := range op.children {
					at := ex.Now() + ch.dt
					child := confOp{shard: ch.shard, at: at}
					install(child)
				}
				if op.stop {
					tr.stopped = true
					ex.Stop()
				}
			})
			return
		}
		lane := int(op.shard) % lanes
		ex.AtShard(ShardID(lane), op.at, func() {
			tr.lanes[lane+1] = append(tr.lanes[lane+1], fmt.Sprintf("%d#%d@%v", lane, opID, op.at))
			tr.counts[lane]++
		})
	}
	for _, op := range sched {
		install(op)
	}
	ex.Run(horizon)
	tr.processed = ex.Processed()
	tr.pending = ex.Pending()
	tr.now = ex.Now()
	// The engines define the final clock identically after a full drain
	// (horizon) and after a global Stop (the stop event's time). With
	// events left pending past the horizon they legitimately differ —
	// Engine reports the last executed event, Sharded/Fleet the barrier
	// clock — so Now is compared only where the contract defines it.
	tr.nowValid = tr.stopped || tr.pending == 0
	return tr
}

// confExecutors builds the executor matrix under test for a given lane
// fold: the Sharded engine and the Fleet coordinator at that lane count,
// with and without a real pool. The Engine reference is built separately
// per fold by the caller.
func confExecutors(t *testing.T, lanes int, pool *par.Pool) map[string]Executor {
	t.Helper()
	sh := NewSharded(lanes)
	shPool := NewSharded(lanes)
	shPool.SetPool(pool)
	fl := NewFleet(lanes)
	flPool := NewFleet(lanes)
	flPool.SetPool(pool)
	return map[string]Executor{
		"sharded":      sh,
		"sharded+pool": shPool,
		"fleet":        fl,
		"fleet+pool":   flPool,
	}
}

// runConformance replays one schedule through the full engine matrix and
// fails on any observable divergence from the folded Engine reference.
func runConformance(t *testing.T, name string, sched []confOp, shardSpace int, horizon Time) {
	t.Helper()
	pool := par.NewPool(4)
	defer pool.Close()
	for _, lanes := range []int{1, 2, shardSpace} {
		if lanes < 1 {
			continue
		}
		want := replay(NewEngine(), sched, lanes, horizon)
		for ename, ex := range confExecutors(t, lanes, pool) {
			got := replay(ex, sched, lanes, horizon)
			if !reflect.DeepEqual(want.lanes, got.lanes) {
				t.Fatalf("%s: %s lanes=%d: execution order diverged\nengine: %v\n%s: %v",
					name, ename, lanes, want.lanes, ename, got.lanes)
			}
			if want.processed != got.processed || want.pending != got.pending {
				t.Fatalf("%s: %s lanes=%d: processed/pending = %d/%d, want %d/%d",
					name, ename, lanes, got.processed, got.pending, want.processed, want.pending)
			}
			if want.nowValid && got.now != want.now {
				t.Fatalf("%s: %s lanes=%d: Now = %v, want %v", name, ename, lanes, got.now, want.now)
			}
		}
	}
}

// confDigest is the compressed observable record of one replay: an FNV-1a
// accumulator per lane instead of replay's per-event strings, so schedules
// with millions of events fit in memory. Lane 0 digests the global
// sequence and, at every global event, every lane's executed-event count —
// the same barrier-position pinning replay gets from its snapshots.
type confDigest struct {
	lanes     []uint64
	processed uint64
	pending   int
	now       Time
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one 64-bit value into an FNV-1a accumulator byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// replayDigest is replay with hashed lanes: same install semantics (shards
// fold modulo lanes, children install from global context), same disjoint-
// state discipline (a local writes only its own lane's accumulator and
// count, globals read all counts at a barrier), O(1) memory per event.
func replayDigest(ex Executor, sched []confOp, lanes int, horizon Time) *confDigest {
	d := &confDigest{lanes: make([]uint64, lanes+1)}
	for i := range d.lanes {
		d.lanes[i] = fnvOffset
	}
	counts := make([]int, lanes)
	id := 0
	var install func(op confOp)
	install = func(op confOp) {
		opID := uint64(id)
		id++
		if op.shard == Global {
			ex.At(op.at, func() {
				h := fnvMix(d.lanes[0], opID)
				for _, c := range counts {
					h = fnvMix(h, uint64(c))
				}
				d.lanes[0] = h
				for _, ch := range op.children {
					install(confOp{shard: ch.shard, at: ex.Now() + ch.dt})
				}
			})
			return
		}
		lane := int(op.shard) % lanes
		ex.AtShard(ShardID(lane), op.at, func() {
			d.lanes[lane+1] = fnvMix(d.lanes[lane+1], opID)
			counts[lane]++
		})
	}
	for _, op := range sched {
		install(op)
	}
	ex.Run(horizon)
	d.processed = ex.Processed()
	d.pending = ex.Pending()
	d.now = ex.Now()
	return d
}

// TestConformanceMillionEventSchedule replays one synthetic million-event
// schedule — tie-heavy (~32 events per instant), ~6% globals, a fraction
// of which fan out zero-and-short-delay children — through the same engine
// matrix as the small suites, comparing lane digests instead of traces.
// This is the scale leg: barrier batching, the drain's same-instant split
// and per-lane heap growth only meet their steady state after hundreds of
// thousands of events. Gated behind -short; run it under -race to check
// the pool discipline at scale.
func TestConformanceMillionEventSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("the million-event conformance leg is not a -short test")
	}
	const (
		nOps       = 1_000_000
		shardSpace = 4
		span       = nOps / 32
	)
	r := rand.New(rand.NewPCG(99, 0x9e3779b97f4a7c15))
	sched := make([]confOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		op := confOp{at: Time(r.IntN(span))}
		if r.IntN(16) == 0 {
			op.shard = Global
			if r.IntN(4) == 0 {
				for c := 1 + r.IntN(3); c > 0; c-- {
					ch := confChild{shard: ShardID(r.IntN(shardSpace)), dt: Time(r.IntN(3))}
					if r.IntN(4) == 0 {
						ch.shard = Global
					}
					op.children = append(op.children, ch)
				}
			}
		} else {
			op.shard = ShardID(r.IntN(shardSpace))
		}
		sched = append(sched, op)
	}
	// Children land at most 2 ticks after a parent at span-1, so this
	// horizon drains everything: pending must come out 0 on every engine.
	const horizon = Time(span + 3)

	pool := par.NewPool(4)
	defer pool.Close()
	for _, lanes := range []int{1, 2, shardSpace} {
		want := replayDigest(NewEngine(), sched, lanes, horizon)
		if want.processed < nOps {
			t.Fatalf("lanes=%d: reference processed %d events, want >= %d", lanes, want.processed, nOps)
		}
		if want.pending != 0 {
			t.Fatalf("lanes=%d: reference left %d events pending before the horizon", lanes, want.pending)
		}
		for ename, ex := range confExecutors(t, lanes, pool) {
			got := replayDigest(ex, sched, lanes, horizon)
			if !reflect.DeepEqual(want.lanes, got.lanes) {
				t.Fatalf("%s lanes=%d: lane digests diverged\nengine: %x\n%s: %x",
					ename, lanes, want.lanes, ename, got.lanes)
			}
			if want.processed != got.processed || want.pending != got.pending {
				t.Fatalf("%s lanes=%d: processed/pending = %d/%d, want %d/%d",
					ename, lanes, got.processed, got.pending, want.processed, want.pending)
			}
			if got.now != want.now {
				t.Fatalf("%s lanes=%d: Now = %v, want %v", ename, lanes, got.now, want.now)
			}
			if sh, ok := ex.(*Sharded); ok {
				st := sh.Stats()
				if st.Barriers == 0 || st.Barriers > st.GlobalEvents {
					t.Fatalf("%s lanes=%d: Barriers = %d with %d globals", ename, lanes, st.Barriers, st.GlobalEvents)
				}
			}
		}
	}
}

// TestConformanceEdgeSchedules replays hand-built schedules covering the
// contract's edges: exact-time ties between locals and globals, Stop in
// the middle of a multi-shard window, zero-duration event chains, and
// events exactly at and beyond the horizon.
func TestConformanceEdgeSchedules(t *testing.T) {
	cases := []struct {
		name       string
		sched      []confOp
		shardSpace int
		horizon    Time
	}{
		{
			name: "tie-heavy",
			sched: []confOp{
				{shard: 0, at: 5}, {shard: 1, at: 5}, {shard: Global, at: 5},
				{shard: 0, at: 5}, {shard: 2, at: 5}, {shard: Global, at: 5},
				{shard: 1, at: 5}, {shard: 3, at: 5},
			},
			shardSpace: 4, horizon: 10,
		},
		{
			name: "stop-mid-window",
			sched: []confOp{
				{shard: 0, at: 1}, {shard: 1, at: 2}, {shard: 2, at: 3},
				{shard: Global, at: 4, stop: true},
				{shard: 0, at: 4}, {shard: 1, at: 5}, {shard: Global, at: 6},
				{shard: 2, at: 7},
			},
			shardSpace: 3, horizon: 20,
		},
		{
			name: "zero-duration-chains",
			sched: []confOp{
				{shard: Global, at: 3, children: []confChild{
					{shard: 0, dt: 0}, {shard: Global, dt: 0}, {shard: 1, dt: 0},
				}},
				{shard: 0, at: 3}, {shard: 1, at: 3},
				{shard: Global, at: 3, children: []confChild{{shard: 2, dt: 2}}},
			},
			shardSpace: 3, horizon: 10,
		},
		{
			name: "horizon-edges",
			sched: []confOp{
				{shard: 0, at: 10}, {shard: Global, at: 10}, {shard: 1, at: 10},
				{shard: 0, at: 11}, {shard: Global, at: 11}, // beyond horizon: stay pending
			},
			shardSpace: 2, horizon: 10,
		},
		{
			name: "empty-schedule",
			sched: []confOp{
				{shard: Global, at: 15}, // beyond horizon
			},
			shardSpace: 2, horizon: 10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runConformance(t, tc.name, tc.sched, tc.shardSpace, tc.horizon)
		})
	}
}

// TestConformanceOutageSchedules replays outage-shaped schedules through
// the engine matrix: core's outage engine runs a begin event (a global
// that mass-kills and requeues, i.e. fans out same-instant work) paired
// with a later repair global, with shard-local activity landing at the
// same instants. The suite pins the (at, seq) order of exactly these
// shapes — same-instant mass kills, overlapping outage windows, and a
// repair tied with local events — so retry-budget accounting downstream
// cannot depend on which engine ran the schedule.
func TestConformanceOutageSchedules(t *testing.T) {
	cases := []struct {
		name       string
		sched      []confOp
		shardSpace int
		horizon    Time
	}{
		{
			// One cluster-wide outage: the begin global fans out a kill
			// chain (zero-dt globals, the Release+Submit pump) while every
			// shard has local work at the outage instant; the repair global
			// lands later and fans out its own pump.
			name: "mass-kill",
			sched: []confOp{
				{shard: 0, at: 4}, {shard: 1, at: 4}, {shard: 2, at: 4}, {shard: 3, at: 4},
				{shard: Global, at: 4, children: []confChild{
					{shard: Global, dt: 0}, {shard: Global, dt: 0},
					{shard: 0, dt: 0}, {shard: 1, dt: 0},
				}},
				{shard: Global, at: 7, children: []confChild{
					{shard: Global, dt: 0}, {shard: 2, dt: 0},
				}},
				{shard: 2, at: 7}, {shard: 3, at: 7},
			},
			shardSpace: 4, horizon: 12,
		},
		{
			// Overlapping windows: a rack outage begins inside a cluster
			// outage, and the two repairs tie at the same instant — the
			// 0→1/1→0 hold transitions must see the same order everywhere.
			name: "overlapping-windows",
			sched: []confOp{
				{shard: Global, at: 2, children: []confChild{{shard: 0, dt: 0}, {shard: 1, dt: 0}}},
				{shard: Global, at: 3, children: []confChild{{shard: Global, dt: 0}}},
				{shard: Global, at: 6, children: []confChild{{shard: 0, dt: 0}}}, // repair A
				{shard: Global, at: 6, children: []confChild{{shard: 1, dt: 0}}}, // repair B, same instant
				{shard: 0, at: 6}, {shard: 1, at: 6}, {shard: 2, at: 6},
			},
			shardSpace: 3, horizon: 10,
		},
		{
			// Same-instant begins on different domains plus locals on every
			// shard: the plan-order scheduling at Arm must tie-break
			// identically across engines.
			name: "simultaneous-begins",
			sched: []confOp{
				{shard: Global, at: 5, children: []confChild{{shard: 0, dt: 0}}},
				{shard: Global, at: 5, children: []confChild{{shard: 1, dt: 0}}},
				{shard: Global, at: 5, children: []confChild{{shard: 2, dt: 0}, {shard: Global, dt: 1}}},
				{shard: 0, at: 5}, {shard: 1, at: 5}, {shard: 2, at: 5}, {shard: 3, at: 5},
				{shard: 0, at: 6}, {shard: 3, at: 6},
			},
			shardSpace: 4, horizon: 10,
		},
		{
			// An outage whose repair would land beyond the horizon: the
			// begin fires, the repair stays pending — core skips scheduling
			// repairs past the horizon, but the engines must agree on the
			// pending count when one is installed anyway.
			name: "repair-past-horizon",
			sched: []confOp{
				{shard: Global, at: 8, children: []confChild{{shard: 0, dt: 0}, {shard: 1, dt: 0}}},
				{shard: Global, at: 15}, // repair beyond horizon: stays pending
				{shard: 0, at: 9}, {shard: 1, at: 9},
			},
			shardSpace: 2, horizon: 10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runConformance(t, tc.name, tc.sched, tc.shardSpace, tc.horizon)
		})
	}
}

// TestConformanceRandomSchedules replays randomized tie-heavy schedules —
// timestamps drawn from a tiny range so simultaneous events dominate,
// global events that fan out zero-and-short-delay children, and an
// occasional mid-run Stop — through the full engine matrix. Seeds are
// fixed: every run replays the same 24 schedules.
func TestConformanceRandomSchedules(t *testing.T) {
	const shardSpace = 4
	for seed := uint64(0); seed < 24; seed++ {
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		nOps := 12 + r.IntN(20)
		sched := make([]confOp, 0, nOps)
		for i := 0; i < nOps; i++ {
			op := confOp{at: Time(r.IntN(9))}
			if r.IntN(10) < 3 {
				op.shard = Global
				for c := r.IntN(4); c > 0; c-- {
					ch := confChild{shard: ShardID(r.IntN(shardSpace)), dt: Time(r.IntN(3))}
					if r.IntN(4) == 0 {
						ch.shard = Global
					}
					op.children = append(op.children, ch)
				}
				// One schedule in three stops somewhere mid-run.
				if seed%3 == 0 && r.IntN(8) == 0 {
					op.stop = true
				}
			} else {
				op.shard = ShardID(r.IntN(shardSpace))
			}
			sched = append(sched, op)
		}
		horizon := Time(6 + r.IntN(6))
		runConformance(t, fmt.Sprintf("seed=%d", seed), sched, shardSpace, horizon)
	}
}
