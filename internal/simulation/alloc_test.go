package simulation

import "testing"

// TestSchedulingAllocations guards the engine's hot path: scheduling and
// draining events must not allocate per event. The event heap is value-typed
// — only amortized slice growth is allowed, which the warm-up below absorbs.
// This pins the PR 2 optimization that removed the per-At *event boxing;
// reintroducing container/heap (or any per-event allocation) fails here.
func TestSchedulingAllocations(t *testing.T) {
	e := NewEngine()
	fn := func() {}

	// Warm the queue capacity past the batch size used below.
	for i := 0; i < 512; i++ {
		e.At(Time(i), fn)
	}
	e.Run(Time(1 << 30))

	const batch = 64
	avg := testing.AllocsPerRun(100, func() {
		base := e.Now()
		for i := 0; i < batch; i++ {
			e.At(base+Time(i), fn)
		}
		e.Run(base + batch)
	})
	// avg counts allocations per run of the whole batch.
	if avg > 0.5 {
		t.Errorf("scheduling+draining %d events allocated %.2f times per batch, want 0", batch, avg)
	}
}

// TestTickerAllocations pins the per-tick cost: each tick schedules its
// successor, which must also stay allocation-free apart from the closure
// created once at Ticker setup.
func TestTickerAllocations(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Ticker(0, 10, func(now Time) bool {
		ticks++
		return ticks < 10_000
	})
	avg := testing.AllocsPerRun(1, func() {
		e.Run(1_000_000)
	})
	if ticks < 10_000 {
		t.Fatalf("ticker stopped early after %d ticks", ticks)
	}
	// ~10k ticks ran inside the measured region; even one allocation per
	// tick would show up as thousands.
	if avg > 100 {
		t.Errorf("ticker run allocated %.0f times for 10k ticks, want ~0", avg)
	}
}
