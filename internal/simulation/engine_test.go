package simulation

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (90 * Second).Minutes(); got != 1.5 {
		t.Errorf("Minutes = %v, want 1.5", got)
	}
	if got := (2 * Hour).Hours(); got != 2 {
		t.Errorf("Hours = %v, want 2", got)
	}
	if got := FromMinutes(1.5); got != 90 {
		t.Errorf("FromMinutes(1.5) = %v, want 90", got)
	}
	if got := (Day + Hour + Minute + Second).String(); got != "1.01:01:01" {
		t.Errorf("String = %q", got)
	}
	if got := Time(-61).String(); got != "-0.00:01:01" {
		t.Errorf("negative String = %q", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want 100 (advanced to horizon)", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestHorizonStopsExecution(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(50, func() { ran = true })
	e.At(150, func() { t.Error("event beyond horizon ran") })
	n := e.Run(100)
	if !ran {
		t.Error("event before horizon did not run")
	}
	if n != 1 {
		t.Errorf("Run returned %d, want 1", n)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// Events at exactly the horizon run.
	e2 := NewEngine()
	atHorizon := false
	e2.At(100, func() { atHorizon = true })
	e2.Run(100)
	if !atHorizon {
		t.Error("event at exact horizon did not run")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic when scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(200)
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for nil event")
		}
	}()
	NewEngine().At(10, nil)
}

func TestAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(10, func() {
		e.After(-5, func() { ran = true })
	})
	e.Run(20)
	if !ran {
		t.Error("After with negative delay did not run at now")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(100)
	if count != 3 {
		t.Errorf("count = %d, want 3 after Stop", count)
	}
	// Run can resume after a stop.
	e.Run(100)
	if count != 10 {
		t.Errorf("count = %d, want 10 after resume", count)
	}
}

func TestSelfScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.At(0, tick)
	e.Run(1000)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Processed() != 5 {
		t.Errorf("Processed = %d, want 5", e.Processed())
	}
}

func TestRunUntilIdleBudget(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.After(1, loop) }
	e.At(0, loop)
	if err := e.RunUntilIdle(100); err == nil {
		t.Error("want budget-exhausted error for infinite loop")
	}

	e2 := NewEngine()
	n := 0
	e2.At(5, func() { n++ })
	if err := e2.RunUntilIdle(100); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if n != 1 {
		t.Errorf("n = %d, want 1", n)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Ticker(0, 60, func(now Time) bool {
		at = append(at, now)
		return len(at) < 4
	})
	e.Run(10000)
	want := []Time{0, 60, 120, 180}
	if len(at) != len(want) {
		t.Fatalf("ticks = %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestTickerBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive interval")
		}
	}()
	NewEngine().Ticker(0, 0, func(Time) bool { return false })
}

func TestEngineDeterminismProperty(t *testing.T) {
	// Two engines fed the same schedule execute identically.
	f := func(delays []uint8) bool {
		run := func() []Time {
			e := NewEngine()
			var log []Time
			for _, d := range delays {
				at := Time(d)
				e.At(at, func() { log = append(log, e.Now()) })
			}
			e.Run(Time(300))
			return log
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
