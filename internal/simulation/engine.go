// Package simulation implements the deterministic discrete-event engines
// the cluster simulator runs on: a virtual clock with second resolution
// and event queues with stable FIFO ordering for simultaneous events.
//
// Two engines share one Executor surface. Engine is the sequential
// reference: one heap, one goroutine, full (at, seq) order. Determinism —
// identical results for identical seeds — is a design requirement (every
// figure in EXPERIMENTS.md must be regenerable bit-for-bit), and the
// single event loop is the simplest way to guarantee it. Intra-study
// parallelism traditionally lives one layer up and respects this
// contract: an event callback may fork work out to a pool (the telemetry
// draw/fold pipeline, rack scoring, log scans in internal/core) but
// always joins before returning, so the engine never observes concurrent
// mutation and the event schedule is identical for every worker count.
//
// Sharded (see sharded.go) partitions the loop itself per virtual
// cluster: shard-local events run concurrently inside bounded
// virtual-time windows while global events execute at window barriers in
// the sequential engine's exact (at, seq) order, keeping results
// bit-identical to Engine for any shard count.
package simulation

import (
	"fmt"
	"time"
)

// Time is simulated time in seconds since the start of the run.
type Time int64

// Common durations in simulated seconds.
const (
	Second Time = 1
	Minute Time = 60
	Hour   Time = 3600
	Day    Time = 24 * Hour
)

// Minutes converts a Time to floating-point minutes, the unit the paper
// reports queueing delays and runtimes in.
func (t Time) Minutes() float64 { return float64(t) / 60 }

// Hours converts a Time to floating-point hours.
func (t Time) Hours() float64 { return float64(t) / 3600 }

// Duration converts a Time to a time.Duration for formatting.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Second }

// String formats the time as d.hh:mm:ss.
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	d := t / Day
	h := (t % Day) / Hour
	m := (t % Hour) / Minute
	s := t % Minute
	return fmt.Sprintf("%s%d.%02d:%02d:%02d", neg, d, h, m, s)
}

// FromMinutes builds a Time from floating-point minutes, rounding to the
// nearest second.
func FromMinutes(m float64) Time { return Time(m*60 + 0.5) }

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events at the same instant
	fn  func()
}

// less orders events by (at, seq). The pair is unique per event, so the
// order is total and the pop sequence is independent of heap shape — the
// 4-ary layout below pops in exactly the order the old binary heap did.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a value-typed 4-ary min-heap. Events are stored by value —
// pushing never allocates beyond amortized slice growth, unlike the previous
// container/heap implementation which boxed one *event per At call and paid
// an interface{} conversion on every Push/Pop. The 4-ary layout halves tree
// depth versus a binary heap, trading slightly more comparisons per level
// for many fewer cache-missing swaps on the sift-down path.
type eventHeap []event

// push inserts an event and sifts it up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q[i].less(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the fn reference for GC
	q = q[:n]
	*h = q
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].less(&q[min]) {
				min = c
			}
		}
		if !q[min].less(&q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// Engine is the discrete-event loop. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// processed counts executed events, useful for progress reporting and
	// as a safety valve in tests.
	processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	// Seed the queue with enough room that early scheduling bursts (e.g. a
	// whole workload's arrival events) do not regrow it repeatedly.
	return &Engine{queue: make(eventHeap, 0, 256)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute simulated time at. Scheduling in
// the past (before Now) panics: it always indicates a logic bug and letting
// it pass would silently reorder causality.
func (e *Engine) At(at Time, fn func()) {
	if fn == nil {
		panic("simulation: scheduling nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("simulation: scheduling event in the past (%v < now %v)", at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue drains or the clock would
// pass horizon (events at exactly horizon still run). It returns the number
// of events executed during this call.
func (e *Engine) Run(horizon Time) uint64 {
	e.stopped = false
	start := e.processed
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > horizon {
			break
		}
		next := e.queue.pop()
		e.now = next.at
		next.fn()
		e.processed++
	}
	// Advance the clock to the horizon even if we ran out of events, so
	// callers measuring elapsed simulated time see a consistent value.
	if !e.stopped && e.now < horizon && len(e.queue) == 0 {
		e.now = horizon
	}
	return e.processed - start
}

// RunUntilIdle executes events until the queue is empty, with no horizon.
// maxEvents guards against runaway self-scheduling loops; it returns an
// error if the budget is exhausted.
func (e *Engine) RunUntilIdle(maxEvents uint64) error {
	e.stopped = false
	for n := uint64(0); len(e.queue) > 0 && !e.stopped; n++ {
		if n >= maxEvents {
			return fmt.Errorf("simulation: exceeded %d events without draining (possible self-scheduling loop)", maxEvents)
		}
		next := e.queue.pop()
		e.now = next.at
		next.fn()
		e.processed++
	}
	return nil
}

// Ticker invokes fn every interval seconds, starting at start, until fn
// returns false or the engine stops. It is used for telemetry sampling and
// scheduler retry sweeps.
func (e *Engine) Ticker(start, interval Time, fn func(now Time) bool) {
	if interval <= 0 {
		panic("simulation: ticker interval must be positive")
	}
	var tick func()
	at := start
	tick = func() {
		if !fn(e.now) {
			return
		}
		at += interval
		e.At(at, tick)
	}
	e.At(start, tick)
}
