package simulation

import (
	"reflect"
	"testing"

	"philly/internal/par"
)

// TestFleetMemberSelfScheduling pins the capability that separates Fleet
// from Sharded: a member callback may schedule onto its own member — the
// causal chains a cluster driver needs — and the lane executes in exactly
// the sequential FIFO order, including zero-delay chains, for any pool.
func TestFleetMemberSelfScheduling(t *testing.T) {
	for _, workers := range []int{0, 4} {
		f := NewFleet(2)
		var pool *par.Pool
		if workers > 0 {
			pool = par.NewPool(workers)
			defer pool.Close()
			f.SetPool(pool)
		}
		m0, m1 := f.Member(0), f.Member(1)
		var got []string
		m0.At(1, func() {
			got = append(got, "a@1")
			m0.At(1, func() { got = append(got, "b@1") }) // zero-duration chain
			m0.After(2, func() { got = append(got, "c@3") })
			m0.Ticker(5, 5, func(now Time) bool {
				got = append(got, "tick")
				return now < 10
			})
		})
		// Keep the other member busy so windows genuinely fork.
		m1.At(1, func() {})
		m1.At(6, func() {})
		f.Run(20)
		want := []string{"a@1", "b@1", "c@3", "tick", "tick"}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: order = %v, want %v", workers, got, want)
		}
		if m0.Processed() != 5 {
			t.Fatalf("member 0 processed %d events, want 5", m0.Processed())
		}
	}
}

// TestFleetMemberStopIsLocal checks that a member stopping itself freezes
// only its own lane — remaining events stay pending, its clock holds —
// while the fleet and other members run on.
func TestFleetMemberStopIsLocal(t *testing.T) {
	f := NewFleet(2)
	m0, m1 := f.Member(0), f.Member(1)
	ran := map[string]bool{}
	m0.At(2, func() {
		ran["m0-pre"] = true
		m0.Stop()
	})
	m0.At(5, func() { ran["m0-post"] = true })
	m1.At(7, func() { ran["m1"] = true })
	f.At(9, func() { ran["global"] = true })
	f.Run(10)
	if !ran["m0-pre"] || ran["m0-post"] {
		t.Fatalf("member stop did not freeze its own lane: %v", ran)
	}
	if !ran["m1"] || !ran["global"] {
		t.Fatalf("member stop leaked into the fleet: %v", ran)
	}
	if !m0.Stopped() || m1.Stopped() {
		t.Fatal("Stopped() flags wrong")
	}
	if m0.Now() != 2 {
		t.Fatalf("stopped member clock = %v, want 2", m0.Now())
	}
	if m0.Pending() != 1 {
		t.Fatalf("stopped member pending = %d, want 1", m0.Pending())
	}
	if m1.Now() != 10 {
		t.Fatalf("drained member clock = %v, want horizon 10", m1.Now())
	}
}

// TestFleetMemberHorizon checks per-member horizons: a member's events
// past its own horizon stay pending even though the fleet runs longer, and
// a drained member's clock settles exactly at its horizon — the standalone
// Engine.Run semantics a member study's SimEnd depends on.
func TestFleetMemberHorizon(t *testing.T) {
	f := NewFleet(2)
	m0, m1 := f.Member(0), f.Member(1)
	m0.SetHorizon(5)
	var m0Ran, m1Ran int
	m0.At(4, func() { m0Ran++ })
	m0.At(6, func() { m0Ran++ }) // past the member horizon: must stay pending
	m1.At(8, func() { m1Ran++ })
	f.Run(10)
	if m0Ran != 1 || m1Ran != 1 {
		t.Fatalf("ran = %d/%d, want 1/1", m0Ran, m1Ran)
	}
	if m0.Pending() != 1 {
		t.Fatalf("member 0 pending = %d, want 1", m0.Pending())
	}
	// With an event still pending the member clock stays at the last
	// executed event, exactly like Engine.Run.
	if m0.Now() != 4 {
		t.Fatalf("member 0 clock = %v, want 4", m0.Now())
	}

	// Fully drained under its horizon: the clock settles at the horizon.
	f2 := NewFleet(1)
	m := f2.Member(0)
	m.SetHorizon(5)
	m.At(2, func() {})
	f2.Run(10)
	if m.Now() != 5 {
		t.Fatalf("drained member clock = %v, want member horizon 5", m.Now())
	}
}

// TestFleetContractPanics enforces the federation barrier contract: fleet
// scheduling and Stop from member callbacks panic, as does touching
// another member's view from inside a member callback.
func TestFleetContractPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(f *Fleet)
	}{
		{"fleet At", func(f *Fleet) { f.At(10, func() {}) }},
		{"fleet AtShard", func(f *Fleet) { f.AtShard(1, 10, func() {}) }},
		{"fleet Stop", func(f *Fleet) { f.Stop() }},
		{"cross-member At", func(f *Fleet) { f.Member(1).At(10, func() {}) }},
		{"cross-member Stop", func(f *Fleet) { f.Member(1).Stop() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFleet(2)
			panicked := false
			f.Member(0).At(1, func() {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				tc.fn(f)
			})
			f.Run(5)
			if !panicked {
				t.Fatalf("%s from a member callback did not panic", tc.name)
			}
		})
	}
}

// TestFleetGlobalMayTouchMembers pins the sanctioned path: barrier events
// scheduling onto member lanes and stopping members, with the injected
// events landing after the barrier at the same instant (they were created
// by it) and in FIFO order.
func TestFleetGlobalMayTouchMembers(t *testing.T) {
	f := NewFleet(2)
	m0, m1 := f.Member(0), f.Member(1)
	var order []string
	m0.At(5, func() { order = append(order, "m0-before") })
	f.At(5, func() {
		order = append(order, "barrier")
		m0.At(5, func() { order = append(order, "m0-injected") })
		m1.At(5, func() { order = append(order, "m1-injected") })
	})
	f.At(7, func() { m1.Stop() })
	m1.At(9, func() { order = append(order, "m1-after-stop") })
	f.Run(10)
	want := []string{"m0-before", "barrier", "m0-injected", "m1-injected"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if !m1.Stopped() {
		t.Fatal("member 1 not stopped by the barrier event")
	}
}

// TestFleetMemberRunPanics: members are driven by the coordinator only.
func TestFleetMemberRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Member.Run did not panic")
		}
	}()
	NewFleet(1).Member(0).Run(10)
}

// TestFleetPastSchedulingPanics mirrors the other engines' guards on both
// the fleet and member surfaces, including the member's own clock.
func TestFleetPastSchedulingPanics(t *testing.T) {
	f := NewFleet(1)
	m := f.Member(0)
	m.At(8, func() {})
	f.At(10, func() {})
	f.Run(20)
	for name, fn := range map[string]func(){
		"fleet At":  func() { f.At(5, func() {}) },
		"member At": func() { m.At(7, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s in the past did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFleetWindowStats checks the deterministic window accounting over a
// schedule that genuinely forks members inside one window.
func TestFleetWindowStats(t *testing.T) {
	f := NewFleet(3)
	f.Member(0).At(1, func() {})
	f.Member(1).At(2, func() {})
	f.At(5, func() {})
	f.Member(2).At(7, func() {})
	f.Run(10)
	st := f.Stats()
	if st.MultiShardWindows != 1 || st.MaxShardsInWindow != 2 {
		t.Fatalf("window stats = %+v", st)
	}
	if st.LocalEvents != 3 || st.GlobalEvents != 1 {
		t.Fatalf("event split = %d/%d, want 3/1", st.LocalEvents, st.GlobalEvents)
	}
	if f.Processed() != 4 {
		t.Fatalf("Processed = %d, want 4", f.Processed())
	}
}
