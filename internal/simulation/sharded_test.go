package simulation

import (
	"fmt"
	"reflect"
	"testing"

	"philly/internal/par"
)

// schedOp is one scheduling instruction for the equivalence harness: at
// setup (or inside global event gi's callback when from >= 0), schedule an
// event on the given shard (Global for a barrier event) at time at.
type schedOp struct {
	shard ShardID
	at    Time
}

// buildTrace runs the given schedule on an Executor and records execution
// as "shard@time:idx" strings, one lane per shard (lane 0 is Global).
// Local events of different shards commute by contract, so comparing the
// per-shard lanes — not one interleaved list — is exactly the equivalence
// the sharded engine promises. Each event appends only to its own shard's
// lane, respecting the disjoint-state rule under a real pool.
func buildTrace(ex Executor, ops []schedOp, lanes int, horizon Time) [][]string {
	trace := make([][]string, lanes)
	for i, op := range ops {
		i, op := i, op
		lane := int(op.shard) + 1 // Global = -1 -> lane 0
		if op.shard == Global {
			ex.At(op.at, func() {
				trace[lane] = append(trace[lane], fmt.Sprintf("g@%v:%d", op.at, i))
			})
		} else {
			ex.AtShard(op.shard, op.at, func() {
				trace[lane] = append(trace[lane], fmt.Sprintf("%d@%v:%d", op.shard, op.at, i))
			})
		}
	}
	ex.Run(horizon)
	return trace
}

// TestShardedMatchesEngineOrder pins the core equivalence: for a schedule
// mixing local and global events (including exact time ties), the sharded
// engine must execute each shard's locals in the same relative order as the
// sequential engine, and the global sequence identically. Local events of
// different shards may interleave differently — that is the whole point —
// so traces are compared per shard.
func TestShardedMatchesEngineOrder(t *testing.T) {
	// A deliberately tie-heavy schedule: globals and locals at the same
	// instants, multiple shards, an event exactly at the horizon.
	ops := []schedOp{
		{0, 5}, {1, 5}, {Global, 5}, {0, 5}, // ties at t=5 across kinds
		{Global, 10}, {1, 7}, {0, 12}, {2, 3},
		{Global, 12}, {2, 12}, {1, 12}, {Global, 20},
		{0, 20}, {2, 20}, // at the horizon
		{1, 21}, // beyond the horizon: must not run
	}
	const horizon = Time(20)
	const lanes = 4 // Global + shards 0..2

	want := buildTrace(NewEngine(), ops, lanes, horizon)
	for _, workers := range []int{0, 4} {
		s := NewSharded(3)
		var pool *par.Pool
		if workers > 0 {
			pool = par.NewPool(workers)
			defer pool.Close()
			s.SetPool(pool)
		}
		got := buildTrace(s, ops, lanes, horizon)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: trace diverged\nwant %v\ngot  %v", workers, want, got)
		}
	}
}

// TestShardedBarrierOrdersLocalsAgainstGlobals checks the (at, seq) barrier
// rule at a shared instant: a local scheduled before a same-time global
// runs before it, one scheduled after runs after it — exactly the
// sequential tie-break.
func TestShardedBarrierOrdersLocalsAgainstGlobals(t *testing.T) {
	s := NewSharded(2)
	var order []string
	s.AtShard(0, 10, func() { order = append(order, "local-before") })
	s.At(10, func() { order = append(order, "global") })
	s.AtShard(0, 10, func() { order = append(order, "local-after") })
	s.Run(20)
	want := []string{"local-before", "global", "local-after"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestShardedWindowStats checks the deterministic concurrency accounting:
// two shards with events inside one window must be reported as a
// multi-shard window.
func TestShardedWindowStats(t *testing.T) {
	s := NewSharded(3)
	s.AtShard(0, 1, func() {})
	s.AtShard(1, 2, func() {})
	s.At(5, func() {})
	s.AtShard(2, 7, func() {})
	s.Run(10)
	st := s.Stats()
	if st.MultiShardWindows != 1 {
		t.Fatalf("MultiShardWindows = %d, want 1", st.MultiShardWindows)
	}
	if st.MaxShardsInWindow != 2 {
		t.Fatalf("MaxShardsInWindow = %d, want 2", st.MaxShardsInWindow)
	}
	if st.LocalEvents != 3 || st.GlobalEvents != 1 {
		t.Fatalf("event split = %d local / %d global, want 3/1", st.LocalEvents, st.GlobalEvents)
	}
	if s.Processed() != 4 {
		t.Fatalf("Processed = %d, want 4", s.Processed())
	}
}

// TestShardedBatchedBarrierDrain pins the batched-drain accounting on a
// tie-heavy replay-style schedule: a storm of same-instant global events
// with no shard event ordered between them executes in ONE barrier drain
// cycle (Barriers counts synchronizations, not global events), and the
// storm adds no windows of its own.
func TestShardedBatchedBarrierDrain(t *testing.T) {
	s := NewSharded(2)
	ran := 0
	s.AtShard(0, 5, func() {})
	for i := 0; i < 50; i++ {
		s.At(10, func() { ran++ })
	}
	s.AtShard(1, 15, func() {})
	for i := 0; i < 30; i++ {
		s.At(20, func() { ran++ })
	}
	s.Run(30)
	st := s.Stats()
	if ran != 80 || st.GlobalEvents != 80 {
		t.Fatalf("executed %d globals, stats %d, want 80", ran, st.GlobalEvents)
	}
	if st.Barriers != 2 {
		t.Fatalf("Barriers = %d, want 2 (one per storm)", st.Barriers)
	}
	if st.Windows != 2 {
		t.Fatalf("Windows = %d, want 2 (storms add no zero-width windows)", st.Windows)
	}
	if st.LocalEvents != 2 {
		t.Fatalf("LocalEvents = %d, want 2", st.LocalEvents)
	}
}

// TestShardedSameInstantTieSplitsDrain checks the drain's ordering guard:
// a shard-local event scheduled BETWEEN two same-instant globals carries a
// seq between theirs, so the drain must stop for it — batching never
// reorders the sequential (at, seq) execution.
func TestShardedSameInstantTieSplitsDrain(t *testing.T) {
	s := NewSharded(2)
	var order []string
	s.At(10, func() { order = append(order, "g1") })
	s.AtShard(0, 10, func() { order = append(order, "local") })
	s.At(10, func() { order = append(order, "g2") })
	s.Run(20)
	want := []string{"g1", "local", "g2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if st := s.Stats(); st.Barriers != 2 {
		t.Fatalf("Barriers = %d, want 2 (the tie splits the drain)", st.Barriers)
	}
}

// TestShardedSchedulingFromLocalPanics enforces the window-merge contract:
// a local callback that schedules (or stops) would make the event order
// depend on thread timing, so the engine must reject it loudly.
func TestShardedSchedulingFromLocalPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func(s *Sharded)
	}{
		{"At", func(s *Sharded) { s.At(10, func() {}) }},
		{"AtShard", func(s *Sharded) { s.AtShard(0, 10, func() {}) }},
		{"Stop", func(s *Sharded) { s.Stop() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSharded(2)
			panicked := false
			s.AtShard(0, 1, func() {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				tc.fn(s)
			})
			s.Run(5)
			if !panicked {
				t.Fatalf("%s from a local callback did not panic", tc.name)
			}
		})
	}
}

// TestShardedGlobalMayScheduleLocals checks the sanctioned path: global
// events scheduling future local and global work, with the clock and
// horizon semantics of the sequential engine.
func TestShardedGlobalMayScheduleLocals(t *testing.T) {
	s := NewSharded(2)
	var ran []string
	s.At(5, func() {
		s.AtShard(1, 8, func() { ran = append(ran, "local") })
		s.After(10, func() { ran = append(ran, "global") })
	})
	n := s.Run(100)
	if n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	if !reflect.DeepEqual(ran, []string{"local", "global"}) {
		t.Fatalf("ran = %v", ran)
	}
	if s.Now() != 100 {
		t.Fatalf("drained clock = %v, want horizon 100", s.Now())
	}
}

// TestShardedStop checks that Stop from a global event halts the loop and
// leaves later work pending, like Engine.Stop.
func TestShardedStop(t *testing.T) {
	s := NewSharded(2)
	ran := 0
	s.AtShard(0, 1, func() { ran++ })
	s.At(5, func() { s.Stop() })
	s.AtShard(1, 7, func() { ran++ })
	s.Run(100)
	if ran != 1 {
		t.Fatalf("ran = %d locals, want 1 (post-Stop local must stay pending)", ran)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %v, want 5 (stopped clock must not advance to horizon)", s.Now())
	}
}

// TestShardedPastSchedulingPanics mirrors the Engine's past-scheduling
// guard on both the global and shard paths.
func TestShardedPastSchedulingPanics(t *testing.T) {
	s := NewSharded(1)
	s.At(10, func() {})
	s.Run(20)
	for _, fn := range []func(){
		func() { s.At(5, func() {}) },
		func() { s.AtShard(0, 5, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("scheduling in the past did not panic")
				}
			}()
			fn()
		}()
	}
}
