package core

import (
	"reflect"
	"testing"
)

// normalizeSearchCounters zeroes the Stats fields that are, by
// construction, different between cache/speculation-on and -off runs: the
// short-circuit count is zero with the cache off, and the commit/conflict
// counts are zero with speculation off. Everything else — including
// PlacementSearches, which tallies committed speculative searches exactly
// like inline ones — must match bit for bit. The config echo is aligned
// for the same reason: it records the ablation switch itself.
func normalizeSearchCounters(res *StudyResult) {
	res.Config.Scheduler.DisableSearchCache = false
	res.Config.Scheduler.SpeculativeCandidates = 0
	res.Sched.CacheShortCircuits = 0
	res.Sched.SpeculativeCommits = 0
	res.Sched.SpeculativeConflicts = 0
}

// TestCacheSpeculationAblation is the tentpole's exactness bar: switching
// the rack-epoch negative-result cache and the speculative candidate
// searches off must not move a single bit of the StudyResult (outside the
// counters that report the mechanisms themselves), across the sequential
// engine at workers {0, 1, 2, 4} and the per-VC sharded engine at shard
// counts {1, 2, NumVCs} × workers {1, 4}. The federation (Fleet) leg lives
// in internal/federation's TestFleetCacheSpeculationAblation.
func TestCacheSpeculationAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("the ablation matrix is not a -short test")
	}
	lowerTickGate(t)
	on := parallelConfig()
	// Compress the arrival window so the cluster actually congests: blocked
	// retries, cache short-circuits, speculative conflicts and fair-share
	// preemptions all need queue pressure to occur at all (at
	// parallelConfig's default load nothing ever blocks).
	on.Workload.Duration = SmallConfig().Workload.Duration / 32
	off := on
	off.Scheduler.DisableSearchCache = true
	off.Scheduler.SpeculativeCandidates = 0

	base, _ := runWithPool(t, on, 0)
	if base.Sched.BlockedAttempts == 0 || base.Sched.CacheShortCircuits == 0 ||
		base.Sched.SpeculativeCommits == 0 || base.Sched.SpeculativeConflicts == 0 {
		t.Fatalf("default config did not exercise the cached/speculative paths: %+v", base.Sched)
	}
	normalizeSearchCounters(base)

	check := func(res *StudyResult, leg string) {
		t.Helper()
		if res.Sched.CacheShortCircuits != 0 || res.Sched.SpeculativeCommits != 0 ||
			res.Sched.SpeculativeConflicts != 0 {
			t.Fatalf("%s: disabled run still reported cache/speculation activity: %+v",
				leg, res.Sched)
		}
		normalizeSearchCounters(res)
		if !reflect.DeepEqual(base, res) {
			diffStudyResults(t, base, res)
			t.Fatalf("%s diverged from the cached+speculative baseline", leg)
		}
	}

	for _, workers := range []int{0, 1, 2, 4} {
		res, _ := runWithPool(t, off, workers)
		check(res, "engine off-leg")
	}
	for _, shards := range []int{1, 2, 0 /* = NumVCs */} {
		for _, workers := range []int{1, 4} {
			res, _ := runShardedWithPool(t, off, shards, workers)
			check(res, "sharded off-leg")
		}
	}
}
