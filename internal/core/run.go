package core

import (
	"fmt"

	"philly/internal/cluster"
	"philly/internal/failures"
	"philly/internal/faults"
	"philly/internal/joblog"
	"philly/internal/par"
	"philly/internal/perfmodel"
	"philly/internal/scheduler"
	"philly/internal/simulation"
	"philly/internal/stats"
	"philly/internal/telemetry"
	"philly/internal/training"
	"philly/internal/workload"
)

// AttemptResult records one execution attempt of a job.
type AttemptResult struct {
	// Index is the 0-based attempt number.
	Index int
	// StartAt and EndAt bound the attempt's running episode(s).
	StartAt, EndAt simulation.Time
	// QueueDelay is the queueing delay preceding this attempt.
	QueueDelay simulation.Time
	// Servers is the placement spread at start; Colocated and CrossRack
	// describe the placement at start.
	Servers   int
	Colocated bool
	CrossRack bool
	// Locality is the constraint level the placement satisfied.
	Locality cluster.Locality
	// Failed marks attempts ending in a failure.
	Failed bool
	// PlannedReason is the failure model's ground-truth reason code ("" for
	// clean attempts).
	PlannedReason string
	// ClassifiedReason is what the log classifier attributed ("" for clean
	// attempts). With GenerateLogs enabled this comes from parsing the
	// synthetic stderr log.
	ClassifiedReason string
	// RuntimeMinutes is the attempt's total running time (across
	// preemption-split episodes). For failed attempts this is the realized
	// runtime-to-failure.
	RuntimeMinutes float64
}

// ConvergenceResult summarizes a job's loss curve (Figure 8 inputs).
type ConvergenceResult struct {
	// EpochsRun is the number of epochs the job executed.
	EpochsRun int
	// FractionForLowest is BestEpoch / EpochsRun.
	FractionForLowest float64
	// FractionWithinTenth is EpochWithin(0.1%) / EpochsRun.
	FractionWithinTenth float64
}

// JobResult is the per-job study output.
type JobResult struct {
	// Spec echoes the generated job.
	Spec workload.JobSpec
	// Completed reports whether the job reached a final status before the
	// simulation horizon; incomplete jobs are excluded from analysis.
	Completed bool
	// Outcome is the final status.
	Outcome failures.Outcome
	// FirstStartAt / EndAt bound the job's life; FirstQueueDelay is the
	// paper's queueing-delay metric (first scheduling episode).
	FirstStartAt, EndAt simulation.Time
	FirstQueueDelay     simulation.Time
	// TotalQueueDelay accumulates across retries and preemptions.
	TotalQueueDelay simulation.Time
	// RunMinutes is total time spent holding GPUs; GPUMinutes multiplies
	// by the gang width.
	RunMinutes, GPUMinutes float64
	// Retries counts re-executions after failures.
	Retries int
	// Preemptions counts scheduler preemptions.
	Preemptions int
	// MaxServers is the widest spread across attempts; LastServers the
	// final attempt's spread.
	MaxServers, LastServers int
	// EverColocated reports whether any attempt shared servers at start.
	EverColocated bool
	// DelayCause classifies the dominant queueing-delay cause.
	DelayCause scheduler.DelayCause
	// FairShareBlocks / FragBlocks count blocked attempts by cause.
	FairShareBlocks, FragBlocks int
	// OutOfOrderStart / Overtaken reproduce §3.1.1's ordering stats.
	OutOfOrderStart, Overtaken bool
	// MeanUtil is the job's mean per-minute GPU utilization.
	MeanUtil float64
	// Offloaded marks a job withdrawn from this cluster's queue by a
	// federation spillover decision (see internal/federation): it never ran
	// here and is excluded from this cluster's analysis like an incomplete
	// job; the receiving member's copy carries the outcome.
	Offloaded bool
	// Spillover marks a job injected into this cluster by federation
	// spillover — it originated on another member cluster.
	Spillover bool
	// OutageKills counts attempts killed by infrastructure outages
	// (internal/faults), as opposed to the job's own planned failures.
	OutageKills int
	// LostGPUMinutes is GPU time destroyed by outage kills: the wall time
	// since the last periodic checkpoint (the whole episode when the
	// checkpoint cost model is off), times the gang width.
	LostGPUMinutes float64
	// CkptGPUMinutes is GPU time spent on checkpoint economics: periodic
	// checkpoint writes plus post-outage restores.
	CkptGPUMinutes float64
	// Evacuated marks a job checkpoint-migrated OUT of this cluster by a
	// federation evacuation: the GPU time it burned here stays charged
	// here, but the job itself — like an Offloaded one — completes on the
	// receiving member, whose copy carries the outcome.
	Evacuated bool
	// Resumed marks a Spillover copy that was injected with checkpointed
	// progress (the receiving side of an evacuation).
	Resumed bool
	// Attempts lists per-attempt records.
	Attempts []AttemptResult
	// Convergence is non-nil for jobs whose logs include loss curves.
	Convergence *ConvergenceResult
}

// StudyResult is everything a study produces.
type StudyResult struct {
	// Config echoes the run configuration.
	Config Config
	// Jobs holds one entry per generated job, in ID order.
	Jobs []JobResult
	// Telemetry is the aggregated per-minute hardware telemetry.
	Telemetry *telemetry.Recorder
	// Sched echoes the scheduler's counters.
	Sched scheduler.Stats
	// TotalGPUs is the cluster capacity.
	TotalGPUs int
	// SimEnd is the simulated time at which the run stopped.
	SimEnd simulation.Time
	// OccupancySamples pairs cluster occupancy with the fraction of
	// completely empty servers, sampled each telemetry tick (fragmentation
	// evidence, §3.1.1).
	OccupancySamples []OccupancySample
	// Outages summarizes the correlated-outage engine's activity (zero
	// value when faults are disabled).
	Outages OutageStats
}

// OccupancySample is one cluster-state observation.
type OccupancySample struct {
	At           simulation.Time
	Occupancy    float64
	EmptyServers float64
	// DownGPUs is the fraction of cluster capacity held down by outages at
	// this tick (0 when faults are disabled).
	DownGPUs float64
}

// jobState is the driver's runtime bookkeeping for one job.
type jobState struct {
	spec  *workload.JobSpec
	sched *scheduler.Job
	res   *JobResult

	// attemptIdx indexes the current attempt (0-based).
	attemptIdx int
	// remainingWorkSec is ideal-placement work remaining for the final
	// (clean) attempt, reduced by checkpointed progress on preemption.
	remainingWorkSec float64
	// baseUtil is the per-job utilization level for the current episode.
	baseUtil float64
	// slowdown is the current episode's placement slowdown.
	slowdown float64
	// episodeStart marks the current running episode.
	episodeStart simulation.Time
	// attemptRunSec accumulates running seconds within the current attempt
	// (across preemption splits).
	attemptRunSec float64
	// attemptOpen marks that the current attempt already has a result
	// record (a resumption after preemption must not open a new one).
	attemptOpen bool
	// attemptStartAt is when the current attempt first started running.
	attemptStartAt simulation.Time
	// idx is the job's index in Study.jobs / StudyResult.Jobs.
	idx int
	// meta is the telemetry grouping key for the current episode.
	meta telemetry.JobMeta
	// usage is the job's telemetry accumulator handle, created on first
	// start. Telemetry shards update it directly: a job belongs to exactly
	// one chunk per tick, so the handle is never written concurrently.
	usage *telemetry.JobUsage
	// stream is the job's pre-split utilization stream — splitmix64-derived
	// from (studySeed, jobID), seeded in place on first start (streamInit).
	// Both the per-episode base draw and the per-minute samples come from
	// it, so the job's utilization trajectory depends only on its own
	// stream and episode history, never on which worker samples it or
	// which other jobs run.
	stream     stats.RNG
	streamInit bool
	// logStream is the job's private failure-log stream (rendering and
	// classification draws), derived from (studySeed, "job-logs", jobID)
	// and seeded lazily on first use. Per-job keying is what makes log
	// classification a shard-local computation: the draws depend only on
	// this job's failure history, never on which other jobs failed first.
	// curveStream is the analogous per-job convergence-curve stream, drawn
	// at most once (at finalize).
	logStream   stats.RNG
	logInit     bool
	curveStream stats.RNG
	// pendingRestoreSec is wall time the next episode must spend restoring
	// from a checkpoint before making progress (set by an outage kill or a
	// federation evacuation, consumed by onStart).
	pendingRestoreSec float64
	// runIdx is the job's slot in the study's running list, -1 when absent.
	runIdx int
	// finishSeq guards stale finish events after a preemption.
	finishSeq int
	running   bool

	// shard is the event lane of the job's VC: every shard-local event of
	// this job (the finish prepare step) runs there.
	shard simulation.ShardID
	// decision, stagedClassified and pendingConv are the staging area
	// prepareFinish fills for commitFinish to publish; preparedSeq records
	// which finish the staging belongs to, stagedAttempt which attempt.
	// An attempt's outcome does not change when a preemption splits it
	// into more episodes, so a resume's prepare re-validates the existing
	// staging instead of re-rendering logs (stagedAttempt == attemptIdx);
	// staging is recomputed only when a new attempt begins.
	decision         finishDecision
	stagedClassified string
	preparedSeq      int
	stagedAttempt    int
	// pendingConv carries the convergence summary prepared on the shard to
	// the finalizing commit.
	pendingConv *ConvergenceResult
}

// finishDecision is what a prepared finish resolved to.
type finishDecision uint8

const (
	decideNone finishDecision = iota
	// decideRetry re-submits the job for another attempt.
	decideRetry
	// decideFinalize records the job's terminal state (clean completion,
	// retries exhausted, or an adaptive-retry stop).
	decideFinalize
)

// plannedAttempts returns the total attempts the job will make.
func (js *jobState) plannedAttempts() int { return js.spec.Plan.TotalAttempts() }

// currentFailure returns the failure plan for the current attempt, or nil
// if the attempt runs clean.
func (js *jobState) currentFailure() *failures.AttemptPlan {
	if js.attemptIdx < len(js.spec.Plan.FailedAttempts) {
		return &js.spec.Plan.FailedAttempts[js.attemptIdx]
	}
	return nil
}

// Study is a configured, runnable reproduction.
type Study struct {
	cfg Config

	// engine is the event executor: the sequential simulation.Engine by
	// default, or the per-VC simulation.Sharded engine after ShardEvents.
	// Results are bit-identical either way (see PERFORMANCE.md § PR 4).
	engine  simulation.Executor
	sharded *simulation.Sharded // non-nil iff engine is sharded
	cluster *cluster.Cluster
	sched   *scheduler.Scheduler
	util    *perfmodel.Model
	host    *perfmodel.HostModel
	rec     *telemetry.Recorder
	gen     *workload.Generator
	clf     *joblog.Classifier

	// shardCtxs holds one render context per event shard (per VC by
	// default). A job's prepare steps always run on its VC's shard, so a
	// context is never used by two shards at once; the sequential engine
	// uses the same contexts (one event at a time), which keeps the two
	// engines trivially identical on this state.
	shardCtxs []shardCtx
	// numShards is the event-shard count jobs are mapped onto (VC index
	// modulo numShards); it equals NumVCs unless ShardEvents chose less.
	numShards int

	// hostStreams holds one pre-split stream per server (index = server
	// ID), splitmix64-derived from (studySeed, serverID): server i's host
	// samples depend only on its own stream and the tick count, which is
	// what lets the host walk shard across workers bit-identically.
	hostStreams []stats.RNG

	// pool is the shared fork-join worker pool (nil = run everything
	// inline). Parallelism never changes results: shards are cut on fixed,
	// worker-count-independent boundaries and folded in shard order.
	pool *par.Pool
	// parallelTicks counts telemetry ticks that took the fork-join path —
	// deterministic (the gate compares list lengths only), used by tests
	// asserting a run actually exercised the parallel pipeline.
	parallelTicks int
	// maxLiveRunning tracks the high-water mark of the running set, for
	// tests asserting the job walk actually sharded.
	maxLiveRunning int

	// detReason marks failure-reason codes that reproduce deterministically
	// (AdaptiveRetry consults it with the *classified* reason, as a real
	// deployment would).
	detReason map[string]bool

	// shardOf maps VC name to event lane; resolved at Arm so Inject can
	// route late-arriving spillover jobs onto the right shard.
	shardOf map[string]simulation.ShardID
	// horizon is the armed run bound (set by Arm).
	horizon simulation.Time
	// armed guards against a second Arm double-scheduling arrivals.
	armed bool

	jobs []workload.JobSpec
	// jobStates and schedJobs are the flattened per-job state arenas: one
	// contiguous allocation each for every generated job (slot = job index),
	// laid out at Arm. Injected (federation-spillover) jobs arrive at run
	// time and stay individually allocated. The arenas cut per-job
	// allocations and GC pointer-chasing at million-job trace scale;
	// scheduler events resolve back to arena slots through Job.Tag.
	jobStates []jobState
	schedJobs []scheduler.Job
	// states indexes EVERY job (arena slots and injected) by cluster job
	// ID, for the cold ID-keyed paths: outage kills, federation offload/
	// evacuation. Hot paths use stateOf, which avoids the map.
	states map[cluster.JobID]*jobState
	// attemptFree recycles released attempt slices between jobs when a job
	// observer is streaming results out (see StreamJobs); without an
	// observer records are retained and nothing is recycled.
	attemptFree [][]AttemptResult
	// extra holds results of jobs injected after construction (federation
	// spillover). They live behind pointers so jobState.res stays valid as
	// more arrive; Collect appends them after the generated jobs.
	extra []*JobResult
	// injectSeq numbers injected jobs; their IDs start at injectIDBase.
	injectSeq int64
	// running is the insertion-ordered running set for telemetry. Removal
	// tombstones the slot (nil) and compaction preserves order, so the
	// telemetry walk draws per-job RNG samples in exactly the order the
	// remove-by-scan implementation produced, while removal itself is O(1)
	// via jobState.runIdx.
	running     []*jobState
	runningLive int
	results     []JobResult
	occ         []OccupancySample

	// jobObserver, when set, streams each job's completed result out of the
	// study (see StreamJobs).
	jobObserver func(i int, r *JobResult)

	// outages is the pre-drawn outage plan (nil when faults are disabled).
	// The whole plan is scheduled as global events at Arm, so outage
	// effects are barrier-only on every engine — that is what keeps
	// outage-enabled studies on the bit-identical invariance contract.
	outages []faults.Outage
	// downCount[serverID] counts overlapping outages currently holding the
	// server; heldGPUs is the total capacity held by outage sentinels.
	downCount []int
	heldGPUs  int
	// outStats accumulates outage/checkpoint telemetry; outageDownSec sums
	// each event's horizon-clamped duration (the ETTR numerator).
	outStats      OutageStats
	outageDownSec float64

	pending   int // jobs not yet finalized
	wakeAt    simulation.Time
	wakeArmed bool
}

// shardCtx is the scratch state a shard's local events may touch: the
// failure/training-log render buffer and the loss-parse buffer. Everything
// in it is pure scratch — the bytes and floats produced depend only on the
// inputs and the per-job streams, never on which shard (or engine) ran the
// computation, so per-shard contexts cannot perturb results.
type shardCtx struct {
	logGen      *joblog.Generator
	lossScratch []float64
}

// NumJobs returns the number of generated jobs in the study.
func (s *Study) NumJobs() int { return len(s.jobs) }

// StreamJobs registers fn to be called once per job, at the moment the job
// reaches its terminal state, with the job's index in StudyResult.Jobs and
// its fully populated result. After fn returns, the record's variable-size
// parts (per-attempt list, convergence curve summary) are released so a
// paper-scale run's peak memory tracks the running set, not the whole
// workload — the scalar fields remain in StudyResult.Jobs. Jobs that never
// complete before the horizon are not streamed and keep full records.
//
// Must be called before Run; fn runs on the simulation goroutine.
func (s *Study) StreamJobs(fn func(i int, r *JobResult)) { s.jobObserver = fn }

// NewStudy builds a study from the configuration.
func NewStudy(cfg Config) (*Study, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := stats.NewRNG(cfg.Seed)
	wlRNG := master.Split("workload")
	// The faults stream is split unconditionally, AFTER the workload split:
	// the workload stream's content is already fixed, and master is never
	// drawn again, so faults-off results are bit-identical to builds that
	// predate the outage engine.
	ftRNG := master.Split("faults")

	gen, err := workload.NewGenerator(cfg.Workload, wlRNG)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	var vcs []scheduler.VC
	for _, vc := range cfg.Workload.VCs {
		vcs = append(vcs, scheduler.VC{Name: vc.Name, Quota: vc.QuotaGPUs})
	}
	sched, err := scheduler.New(cfg.Scheduler, cl, vcs)
	if err != nil {
		return nil, err
	}
	util, err := perfmodel.NewModel(cfg.Util)
	if err != nil {
		return nil, err
	}
	s := &Study{
		cfg:       cfg,
		engine:    simulation.NewEngine(),
		cluster:   cl,
		sched:     sched,
		util:      util,
		host:      perfmodel.NewHostModel(cfg.Host),
		rec:       telemetry.NewRecorder(),
		gen:       gen,
		clf:       joblog.NewClassifier(),
		states:    map[cluster.JobID]*jobState{},
		detReason: map[string]bool{},
	}
	s.setNumShards(sched.NumVCs())
	// Pre-split one host-telemetry stream per server. Utilization streams
	// are per-job and derived lazily on first start (see onStart); both use
	// the same stateless (seed, label, id) derivation, so no stream's
	// content depends on any other stream's draw count.
	s.hostStreams = make([]stats.RNG, cl.NumServers())
	for i := range s.hostStreams {
		s.hostStreams[i].Init(stats.DeriveEntitySeed(cfg.Seed, "host", uint64(i)))
	}
	for code, r := range failures.ByCode() {
		s.detReason[code] = r.Deterministic
	}
	s.jobs = gen.Generate(wlRNG)
	s.results = make([]JobResult, len(s.jobs))
	// Synthetic workloads number jobs densely from 1; replayed traces may
	// carry arbitrary IDs. When the IDs are verifiably dense, the telemetry
	// recorder backs per-job accumulators with one flat table instead of a
	// map entry per job.
	dense := true
	for i := range s.jobs {
		if s.jobs[i].ID != int64(i+1) {
			dense = false
			break
		}
	}
	if dense {
		s.rec.Reserve(len(s.jobs))
	}
	if cfg.Faults.Enabled {
		topo := faults.Topology{RackServers: make([]int, len(cfg.Cluster.Racks))}
		for i, rc := range cfg.Cluster.Racks {
			topo.RackServers[i] = rc.Servers
		}
		s.outages = faults.Plan(cfg.Faults, topo, s.Horizon(), ftRNG)
		s.downCount = make([]int, cl.NumServers())
	}
	return s, nil
}

// setNumShards sizes the shard contexts for the given event-shard count.
func (s *Study) setNumShards(n int) {
	s.numShards = n
	s.shardCtxs = make([]shardCtx, n)
	for i := range s.shardCtxs {
		s.shardCtxs[i].logGen = joblog.NewGenerator()
	}
}

// ShardEvents switches the study onto the per-VC sharded event engine with
// the given shard count; shards <= 0 means one shard per virtual cluster.
// Jobs map onto shards by VC index modulo the shard count, so any count
// from 1 to NumVCs is valid and all of them produce bit-identical results
// — sharding, like SetPool, changes wall-clock only. Must be called before
// Run.
//
// The engine advances shards in bounded virtual-time windows: shard-local
// events (failure-log rendering + classification, convergence-curve
// analysis) run concurrently across VCs inside a window, while every event
// that touches shared state — scheduler pumps, placement, telemetry ticks,
// job state transitions — executes alone at window barriers in the
// sequential engine's exact (at, seq) order. See internal/simulation's
// package documentation for the determinism contract.
func (s *Study) ShardEvents(shards int) {
	if shards <= 0 || shards > s.sched.NumVCs() {
		shards = s.sched.NumVCs()
	}
	sh := simulation.NewSharded(shards)
	s.sharded = sh
	s.engine = sh
	s.setNumShards(shards)
}

// EventSharded reports whether the study runs on the sharded engine, and
// with how many shards.
func (s *Study) EventSharded() (bool, int) {
	if s.sharded == nil {
		return false, 0
	}
	return true, s.numShards
}

// WindowStats returns the sharded engine's deterministic window statistics
// (zero value when the study runs on the sequential engine). Tests use it
// to assert that multiple shards actually advanced within single windows.
func (s *Study) WindowStats() simulation.WindowStats {
	if s.sharded == nil {
		return simulation.WindowStats{}
	}
	return s.sharded.Stats()
}

// SetPool attaches a shared fork-join worker pool for intra-study
// parallelism: the telemetry walk, multi-rack placement scoring, the
// scheduler's speculative candidate searches, and large log scans shard
// across it. Must be called before Run. The pool changes wall-clock only —
// StudyResult is bit-identical for any pool size, including none (see
// PERFORMANCE.md for the determinism argument).
//
// The pool may be shared with other studies and with internal/sweep's
// across-study workers: shards are handed only to workers that are idle at
// that instant, so a fully busy pool degrades gracefully to inline
// execution with zero oversubscription.
func (s *Study) SetPool(p *par.Pool) {
	s.pool = p
	s.cluster.SetPool(p)
	s.sched.SetPool(p)
}

// Run executes the study to completion and returns the result.
func (s *Study) Run() (*StudyResult, error) {
	horizon := s.Arm()
	s.engine.Run(horizon)
	return s.Collect()
}

// Horizon returns the simulated-time bound the study runs to.
func (s *Study) Horizon() simulation.Time {
	return simulation.Time(float64(s.cfg.Workload.Duration) * s.cfg.HorizonFactor)
}

// SetExecutor replaces the study's event engine — the hook internal/
// federation uses to run a study as one member of a fleet, on a
// simulation.Member view. Must be called before Arm/Run; it supersedes a
// prior ShardEvents call (the member's lane is one sequential timeline,
// like the sequential Engine, so results are bit-identical either way).
func (s *Study) SetExecutor(ex simulation.Executor) {
	s.engine = ex
	s.sharded = nil
	s.setNumShards(s.sched.NumVCs())
}

// PendingJobs returns how many jobs have not yet reached a terminal state
// (federation tickers use it to decide whether to keep firing).
func (s *Study) PendingJobs() int { return s.pending }

// Arm schedules the study's initial events — job arrivals, the telemetry
// ticker, defragmentation sweeps — onto the engine and returns the run
// horizon, without running anything. Run is Arm + engine.Run + Collect;
// internal/federation arms each member study on its fleet lane and lets
// the coordinator drive all lanes inside one virtual timeline.
func (s *Study) Arm() simulation.Time {
	if s.armed {
		// A second Arm would schedule every arrival twice; the first
		// duplicate Submit then fails on an already-queued (or by then
		// running) job with a message that looks like a scheduler bug.
		// Fail at the actual mistake instead.
		panic("core: Study.Arm called twice (Run arms the study itself)")
	}
	s.armed = true
	horizon := s.Horizon()
	s.horizon = horizon

	if s.sharded != nil {
		// Window fork-joins draw on the same budget as every other
		// parallel layer; a nil pool runs windows inline.
		s.sharded.SetPool(s.pool)
	}

	// Shard ownership: a job's local events run on its VC's event lane
	// (VC index modulo the shard count). The mapping depends only on the
	// configured VC names, so it is identical across runs and engines.
	s.shardOf = make(map[string]simulation.ShardID, s.sched.NumVCs())
	for _, vc := range s.cfg.Workload.VCs {
		s.shardOf[vc.Name] = simulation.ShardID(s.sched.VCIndex(vc.Name) % s.numShards)
	}
	shardOf := s.shardOf

	// Lay the per-job state out in the arenas (one allocation each, slot =
	// job index) and wire scheduler jobs back to their slots via Tag.
	s.jobStates = make([]jobState, len(s.jobs))
	s.schedJobs = make([]scheduler.Job, len(s.jobs))
	for i := range s.jobs {
		spec := &s.jobs[i]
		res := &s.results[i]
		res.Spec = *spec
		sj := &s.schedJobs[i]
		scheduler.InitJob(sj, cluster.JobID(spec.ID), spec.VC, spec.GPUs, spec.SubmitAt)
		sj.Tag = i
		js := &s.jobStates[i]
		*js = jobState{
			spec:             spec,
			res:              res,
			idx:              i,
			remainingWorkSec: s.cleanWorkSeconds(spec),
			runIdx:           -1,
			stagedAttempt:    -1,
			shard:            shardOf[spec.VC],
			sched:            sj,
		}
		sj.RemainingSeconds = js.remainingWorkSec
		s.states[sj.ID] = js
		s.pending++
	}

	// Arrivals. Consecutive same-instant submissions share ONE global event
	// that submits and pumps each job in original order — on the sharded
	// engine an arrival storm then costs a single window barrier instead of
	// one per job. This is bit-identical to per-job events: same-instant
	// arrival events carried contiguous (at, seq) keys below every event a
	// pump can schedule, so the fused loop replays exactly the order the
	// sequential engine executed.
	for i := 0; i < len(s.jobs); {
		j := i + 1
		at := s.jobs[i].SubmitAt
		for j < len(s.jobs) && s.jobs[j].SubmitAt == at {
			j++
		}
		lo, hi := i, j
		s.engine.At(at, func() {
			now := s.engine.Now()
			for k := lo; k < hi; k++ {
				js := &s.jobStates[k]
				if err := s.sched.Submit(js.sched, now); err != nil {
					panic(fmt.Sprintf("core: submit job %d: %v", js.spec.ID, err))
				}
				s.pump()
			}
		})
		i = j
	}

	// Telemetry ticker. Preallocate the occupancy series for the expected
	// tick count so per-tick appends never regrow it.
	s.occ = make([]OccupancySample, 0, int(horizon/s.cfg.TelemetryInterval)+2)
	s.engine.Ticker(0, s.cfg.TelemetryInterval, func(now simulation.Time) bool {
		s.sampleTelemetry(now)
		return now < horizon && s.pending > 0
	})

	// Outage begin/repair events. Scheduled here, in global context and in
	// plan order, so the sharded engine assigns them exactly the (at, seq)
	// keys the sequential engine would; every outage effect (kills, holds,
	// repairs) then executes alone at window barriers.
	for i := range s.outages {
		o := s.outages[i]
		s.engine.At(o.At, func() { s.beginOutage(o) })
		end := o.At + o.Duration
		if end < horizon {
			s.engine.At(end, func() { s.endOutage(o) })
		}
	}

	// Defragmentation sweeps (§5 migration guideline), when enabled.
	if s.cfg.Defrag.Enabled {
		d := s.cfg.Defrag
		s.engine.Ticker(d.Interval, d.Interval, func(now simulation.Time) bool {
			moved := s.sched.Defrag(now, d.MaxWidth, d.MaxMovesPerSweep)
			for _, ev := range moved {
				s.onMigrate(ev, now)
			}
			if len(moved) > 0 {
				// Consolidated servers may unblock waiting gangs.
				s.pump()
			}
			return now < horizon && s.pending > 0
		})
	}

	return horizon
}

// Collect finalizes an armed-and-run study into its result.
func (s *Study) Collect() (*StudyResult, error) {
	if s.engine.Processed() >= s.cfg.MaxEvents {
		return nil, fmt.Errorf("core: event budget %d exhausted", s.cfg.MaxEvents)
	}
	jobs := s.results
	if len(s.extra) > 0 {
		// Injected spillover jobs follow the generated trace, in injection
		// order (which is deterministic: injections happen only at fleet
		// barriers).
		jobs = make([]JobResult, 0, len(s.results)+len(s.extra))
		jobs = append(jobs, s.results...)
		for _, r := range s.extra {
			jobs = append(jobs, *r)
		}
	}
	out := s.outStats
	if out.Events > 0 {
		out.ETTFHours = s.engine.Now().Hours() / float64(out.Events)
		out.ETTRHours = s.outageDownSec / 3600 / float64(out.Events)
	}
	// Merge the per-shard fold histograms into the global set in fixed
	// shard order before anything reads the recorder.
	s.rec.Seal()
	return &StudyResult{
		Config:           s.cfg,
		Jobs:             jobs,
		Telemetry:        s.rec,
		Sched:            s.sched.Stats(),
		TotalGPUs:        s.cluster.TotalGPUs(),
		SimEnd:           s.engine.Now(),
		OccupancySamples: s.occ,
		Outages:          out,
	}, nil
}

// cleanWorkSeconds is the ideal-placement duration of the job's clean run:
// full training for passed jobs, the kill fraction for killed jobs, zero
// for unsuccessful jobs (they only ever run failing attempts).
func (s *Study) cleanWorkSeconds(spec *workload.JobSpec) float64 {
	switch spec.Plan.Outcome {
	case failures.Passed:
		return spec.Train.IdealRuntimeSeconds()
	case failures.Killed:
		return spec.Train.IdealRuntimeSeconds() * spec.Plan.KillFraction
	default:
		return 0
	}
}

// pump advances the scheduler and processes its decisions in the order the
// scheduler made them (a job can start and be preempted within one Pump).
func (s *Study) pump() {
	now := s.engine.Now()
	res := s.sched.Pump(now)
	si, pi := 0, 0
	for si < len(res.Starts) || pi < len(res.Preemptions) {
		switch {
		case pi >= len(res.Preemptions):
			s.onStart(res.Starts[si], now)
			si++
		case si >= len(res.Starts):
			s.onPreempt(res.Preemptions[pi], now)
			pi++
		case res.Starts[si].Seq < res.Preemptions[pi].Seq:
			s.onStart(res.Starts[si], now)
			si++
		default:
			s.onPreempt(res.Preemptions[pi], now)
			pi++
		}
	}
	if res.NextWake > now {
		// Coalesce wake-ups: keep the earliest armed timer.
		if !s.wakeArmed || res.NextWake < s.wakeAt {
			s.wakeArmed = true
			s.wakeAt = res.NextWake
			at := res.NextWake
			s.engine.At(at, func() {
				if s.wakeArmed && s.wakeAt == at {
					s.wakeArmed = false
				}
				s.pump()
			})
		}
	}
}

// stateOf resolves a scheduler job back to its jobState. Arena jobs carry
// their slot index in Tag, validated by pointer identity so a stale or
// zero Tag (injected spillover jobs) can never alias another slot; those
// fall back to the ID map, which indexes every job.
func (s *Study) stateOf(j *scheduler.Job) *jobState {
	if t := j.Tag; t >= 0 && t < len(s.jobStates) && s.jobStates[t].sched == j {
		return &s.jobStates[t]
	}
	return s.states[j.ID]
}

// onStart begins a running episode for a job.
func (s *Study) onStart(ev scheduler.StartEvent, now simulation.Time) {
	js := s.stateOf(ev.Job)
	if js == nil {
		panic(fmt.Sprintf("core: start event for unknown job %d", ev.Job.ID))
	}
	shape := perfmodel.JobShape{
		GPUs:      js.spec.GPUs,
		Servers:   ev.Placement.NumServers(),
		Colocated: s.cluster.SharesServers(ev.Job.ID),
		CrossRack: ev.Placement.CrossRack(s.cluster),
	}
	js.meta = telemetry.JobMeta{
		ID:        ev.Job.ID,
		GPUs:      js.spec.GPUs,
		Outcome:   js.spec.Plan.Outcome,
		Servers:   shape.Servers,
		Colocated: shape.Colocated,
	}
	if !js.streamInit {
		// First start: seed the job's private utilization stream and make
		// its usage accumulator. Derivation is stateless in (seed, jobID),
		// so stream content is independent of start order.
		js.streamInit = true
		js.stream.Init(stats.DeriveEntitySeed(s.cfg.Seed, "job-util", uint64(js.spec.ID)))
		js.usage = s.rec.EnsureJob(js.sched.ID)
	}
	js.slowdown = s.util.Slowdown(shape) * s.ckptFactor(js)
	js.baseUtil = s.util.JobBaseUtil(shape, js.spec.Plan.Outcome, &js.stream)
	js.episodeStart = now
	js.running = true
	if js.runIdx < 0 {
		js.runIdx = len(s.running)
		s.running = append(s.running, js)
		s.runningLive++
	}

	// New attempt (vs resumption after preemption)?
	if !js.attemptOpen {
		js.attemptOpen = true
		js.attemptStartAt = now
		if js.res.Attempts == nil {
			if n := len(s.attemptFree); n > 0 {
				// Reuse a slice recycled by finalize (streaming runs only);
				// contents were zero-length-truncated there.
				js.res.Attempts = s.attemptFree[n-1]
				s.attemptFree = s.attemptFree[:n-1]
			} else {
				// The failure plan fixes the attempt count up front; size the
				// record once instead of regrowing per retry.
				js.res.Attempts = make([]AttemptResult, 0, js.plannedAttempts())
			}
		}
		js.res.Attempts = append(js.res.Attempts, AttemptResult{
			Index:      js.attemptIdx,
			StartAt:    now,
			QueueDelay: now - js.sched.EnqueuedAt,
			Servers:    shape.Servers,
			Colocated:  shape.Colocated,
			CrossRack:  shape.CrossRack,
			Locality:   ev.Locality,
		})
	}

	// Schedule the episode end.
	var episodeSec float64
	if fa := js.currentFailure(); fa != nil {
		// Failing attempt: runs until its RTF elapses (RTF counts this
		// attempt's cumulative runtime; preemption splits don't reset it).
		episodeSec = fa.RTFMinutes*60 - js.attemptRunSec
	} else {
		episodeSec = js.remainingWorkSec * js.slowdown
	}
	if js.pendingRestoreSec > 0 {
		// Restoring from the last checkpoint (after an outage kill or a
		// cross-member evacuation) stretches the episode; the cost is
		// attributed to checkpoint overhead up front.
		episodeSec += js.pendingRestoreSec
		s.accountCkptOverhead(js, js.pendingRestoreSec)
		js.pendingRestoreSec = 0
	}
	if episodeSec < 1 {
		episodeSec = 1
	}
	s.scheduleFinish(js, episodeSec, now)
}

// ckptFactor is the wall-time stretch periodic checkpoint writes impose on
// a clean episode: every Interval of wall time pays WriteSeconds. Folding
// it into the episode slowdown keeps every downstream computation —
// episode length, preemption retention, outage-kill salvage — consistent
// without special cases. Failing attempts run at factor 1: their duration
// is fixed by the failure plan's runtime-to-failure clock.
func (s *Study) ckptFactor(js *jobState) float64 {
	ck := s.cfg.Checkpoint
	if !ck.Enabled || js.spec.Train.CheckpointEveryEpochs == 0 || js.currentFailure() != nil {
		return 1
	}
	return 1 + ck.WriteSeconds/float64(ck.Interval)
}

// accountCkptOverhead charges wall seconds of checkpoint write/restore
// activity to the job and the study totals.
func (s *Study) accountCkptOverhead(js *jobState, wallSec float64) {
	ovh := wallSec / 60 * float64(js.spec.GPUs)
	js.res.CkptGPUMinutes += ovh
	s.outStats.CkptOverheadGPUHours += ovh / 60
}

// scheduleFinish arms the episode-end event pair: a shard-local prepare
// step at the CURRENT time and a global commit step at the episode's end.
// Both are scheduled here, in global context, so the sharded engine
// assigns them exactly the (at, seq) keys the sequential engine would.
//
// The prepare runs at episode start rather than episode end because its
// entire computation is already determined here: the failure plan fixes
// whether and why this attempt fails, the classification and convergence
// draws come from the job's private streams, and the retry-vs-finalize
// decision depends only on those. This is the conservative lookahead that
// makes per-VC sharding worthwhile — the engine knows the episode's
// outcome one full episode ahead of the commit that publishes it, so every
// prepare scheduled by one scheduling round (across all VCs) lands in the
// same virtual-time window and they all run concurrently. A preemption or
// migration before the commit bumps finishSeq, which invalidates both
// halves; an invalidated prepare's stream draws are identical in both
// engines (both run the same eager schedule), so determinism is unharmed.
func (s *Study) scheduleFinish(js *jobState, episodeSec float64, now simulation.Time) {
	js.finishSeq++
	seq := js.finishSeq
	at := now + simulation.Time(episodeSec+0.5)
	s.engine.AtShard(js.shard, now, func() { s.prepareFinish(js, seq) })
	s.engine.At(at, func() { s.commitFinish(js, seq) })
}

// onPreempt suspends a running episode; the scheduler has already requeued
// the job.
func (s *Study) onPreempt(ev scheduler.PreemptEvent, now simulation.Time) {
	js := s.stateOf(ev.Job)
	if js == nil || !js.running {
		return
	}
	elapsed := float64(now - js.episodeStart)
	js.attemptRunSec += elapsed
	js.res.Preemptions++
	s.accountEpisode(js, elapsed)
	if js.currentFailure() == nil {
		// Clean run: checkpointed progress survives; the rest is lost.
		retention := 0.0
		if js.spec.Train.CheckpointEveryEpochs > 0 {
			retention = s.cfg.CheckpointRetention
		}
		done := elapsed / js.slowdown * retention
		js.remainingWorkSec -= done
		if js.remainingWorkSec < 0 {
			js.remainingWorkSec = 0
		}
		js.sched.RemainingSeconds = js.remainingWorkSec
		// Work lost to the preemption is re-run: the attempt's cumulative
		// clock keeps counting, so GPU time is charged faithfully.
	}
	js.running = false
	js.finishSeq++ // invalidate the scheduled finish
	s.removeRunning(js)
}

// onMigrate re-places a running job after a defragmentation move: the old
// episode is accounted, the placement-derived performance parameters are
// recomputed for the new servers, and the checkpoint-restore pause is added
// to the remaining wall time.
func (s *Study) onMigrate(ev scheduler.MigrationEvent, now simulation.Time) {
	js := s.stateOf(ev.Job)
	if js == nil || !js.running {
		return
	}
	elapsed := float64(now - js.episodeStart)
	js.attemptRunSec += elapsed
	s.accountEpisode(js, elapsed)
	if js.currentFailure() == nil {
		// Live migration goes through a checkpoint; progress since the
		// last checkpoint is re-run, like a preemption.
		retention := 0.0
		if js.spec.Train.CheckpointEveryEpochs > 0 {
			retention = s.cfg.CheckpointRetention
		}
		done := elapsed / js.slowdown * retention
		js.remainingWorkSec -= done
		if js.remainingWorkSec < 0 {
			js.remainingWorkSec = 0
		}
		js.sched.RemainingSeconds = js.remainingWorkSec
	}
	shape := perfmodel.JobShape{
		GPUs:      js.spec.GPUs,
		Servers:   ev.Job.Placement.NumServers(),
		Colocated: s.cluster.SharesServers(ev.Job.ID),
		CrossRack: ev.Job.Placement.CrossRack(s.cluster),
	}
	js.slowdown = s.util.Slowdown(shape) * s.ckptFactor(js)
	js.baseUtil = s.util.JobBaseUtil(shape, js.spec.Plan.Outcome, &js.stream)
	js.meta.Servers = shape.Servers
	js.meta.Colocated = shape.Colocated
	js.episodeStart = now

	var episodeSec float64
	if fa := js.currentFailure(); fa != nil {
		episodeSec = fa.RTFMinutes*60 - js.attemptRunSec
	} else {
		episodeSec = js.remainingWorkSec * js.slowdown
	}
	episodeSec += s.cfg.Defrag.PauseSeconds
	if episodeSec < 1 {
		episodeSec = 1
	}
	s.scheduleFinish(js, episodeSec, now)
}

// removeRunning drops the job from the running set in O(1) by tombstoning
// its slot; the slice is compacted (order-preserving) once mostly dead.
func (s *Study) removeRunning(js *jobState) {
	if js.runIdx < 0 {
		return
	}
	s.running[js.runIdx] = nil
	js.runIdx = -1
	s.runningLive--
	if len(s.running) > 64 && s.runningLive*2 < len(s.running) {
		live := s.running[:0]
		for _, r := range s.running {
			if r != nil {
				r.runIdx = len(live)
				live = append(live, r)
			}
		}
		// Clear the tail so dropped jobs are not retained.
		for i := len(live); i < len(s.running); i++ {
			s.running[i] = nil
		}
		s.running = live
	}
}

// accountEpisode charges an episode's runtime to the job result.
func (s *Study) accountEpisode(js *jobState, elapsedSec float64) {
	js.res.RunMinutes += elapsedSec / 60
	js.res.GPUMinutes += elapsedSec / 60 * float64(js.spec.GPUs)
	if f := s.ckptFactor(js); f > 1 {
		// The write-overhead share of the episode's wall time.
		s.accountCkptOverhead(js, elapsedSec*(1-1/f))
	}
}

// prepareFinish is the shard-local half of an episode end: the expensive
// text-mediated work — failure-log rendering + signature classification,
// the retry-vs-finalize decision it implies, and (when finalizing) the
// convergence-curve render/parse/summary. It runs on the job's VC shard at
// episode START, concurrently with other VCs' prepares inside the same
// virtual-time window, and stages its outputs on the jobState for the
// commit at the episode's end to publish.
//
// Everything read here is settled when the prepare runs: the failure plan
// and spec are immutable, and the private streams plus the staging fields
// are written only by this job's own prepares, which execute in (at, seq)
// order on one shard lane. When a preemption or migration splits an
// attempt into more episodes, the resume's prepare finds the attempt
// already staged (stagedAttempt) and re-validates it without recomputing;
// staging is built once per attempt, and the stream draws are identical
// in both engines because both run the same eager schedule.
func (s *Study) prepareFinish(js *jobState, seq int) {
	if js.finishSeq != seq || !js.running {
		// Superseded within the very scheduling round that armed it (a job
		// can start and be preempted in one Pump); spend no draws, exactly
		// like the sequential engine at this event's position.
		return
	}
	if js.stagedAttempt == js.attemptIdx {
		// A resume after a preemption or migration: the attempt's outcome
		// (classification, decision, convergence) was already staged by an
		// earlier episode's prepare and cannot have changed — re-validate
		// it instead of re-rendering the logs. Both engines execute the
		// same prepares, so both take this branch at the same positions.
		js.preparedSeq = seq
		return
	}
	sc := &s.shardCtxs[js.shard]
	js.pendingConv = nil
	if fa := js.currentFailure(); fa != nil {
		js.stagedClassified = s.classify(sc, js, fa.Reason.Code)
		switch {
		case s.cfg.AdaptiveRetry && s.isDeterministicReason(js.stagedClassified):
			// §5: the classifier says this failure will reproduce — stop
			// retrying instead of burning two more gangs' worth of GPUs.
			js.decision = decideFinalize
		case js.attemptIdx+1 < js.plannedAttempts():
			// Retry: back through the queue (Figure 1's retry loop).
			// attemptIdx+1 is the value the commit will publish.
			js.decision = decideRetry
		default:
			// Out of retries: unsuccessful.
			js.decision = decideFinalize
		}
	} else {
		// Clean completion (passed or killed).
		js.decision = decideFinalize
	}
	if js.decision == decideFinalize &&
		js.spec.LogsConvergence && js.spec.Plan.Outcome != failures.Unsuccessful {
		// finalize will attach this summary; computing the curve (render,
		// parse, summarize) here keeps the expensive text path on the shard.
		js.pendingConv = s.convergence(sc, js)
	}
	js.stagedAttempt = js.attemptIdx
	js.preparedSeq = seq
}

// commitFinish is the global half of an episode end, executed at the
// window barrier at the episode's end time: account the episode, close the
// attempt record with the staged classification, release the gang, then
// apply the prepared decision — re-submit for a retry or finalize — and
// pump the scheduler. Guarded by the same (finishSeq, running) pair as the
// prepare step, so both halves are valid or stale together.
func (s *Study) commitFinish(js *jobState, seq int) {
	if js.finishSeq != seq || !js.running {
		return // a preemption or migration superseded this finish
	}
	if js.preparedSeq != seq {
		panic(fmt.Sprintf("core: commit for job %d ran without its prepare (engine ordering bug)", js.sched.ID))
	}
	now := s.engine.Now()
	elapsed := float64(now - js.episodeStart)
	js.attemptRunSec += elapsed
	s.accountEpisode(js, elapsed)
	js.running = false
	s.removeRunning(js)
	if err := s.sched.ReleaseJob(js.sched, now); err != nil {
		panic(fmt.Sprintf("core: release job %d: %v", js.sched.ID, err))
	}

	att := &js.res.Attempts[len(js.res.Attempts)-1]
	att.EndAt = now
	att.RuntimeMinutes = js.attemptRunSec / 60

	if fa := js.currentFailure(); fa != nil {
		att.Failed = true
		att.PlannedReason = fa.Reason.Code
		att.ClassifiedReason = js.stagedClassified
		js.attemptIdx++
		js.attemptRunSec = 0
		js.attemptOpen = false
	} else {
		js.remainingWorkSec = 0
	}

	decision := js.decision
	js.decision = decideNone
	if decision == decideRetry {
		js.sched.RemainingSeconds = js.remainingWorkSec
		if err := s.sched.Submit(js.sched, now); err != nil {
			panic(fmt.Sprintf("core: resubmit job %d: %v", js.sched.ID, err))
		}
		s.pump()
		return
	}
	s.finalize(js, now)
	s.pump()
}

// logRNG returns the job's private failure/training-log stream, seeding it
// on first use. The derivation is stateless in (studySeed, jobID) and this
// is the single site that performs it, so every consumer — failure
// classification, training-log rendering — continues one coherent stream
// no matter which touches it first.
func (s *Study) logRNG(js *jobState) *stats.RNG {
	if !js.logInit {
		js.logInit = true
		js.logStream.Init(stats.DeriveEntitySeed(s.cfg.Seed, "job-logs", uint64(js.spec.ID)))
	}
	return &js.logStream
}

// isDeterministicReason reports whether a classified failure code belongs
// to a deterministic class (unknown codes, including no_signature, are
// treated as possibly transient and stay retryable).
func (s *Study) isDeterministicReason(code string) bool { return s.detReason[code] }

// classify routes failure attribution through the log pipeline. The log is
// rendered into the shard context's reuse buffer from the job's private
// log stream and classified in place — the same text-mediated path, with
// no per-failure string materialization and no cross-job stream coupling:
// the draws depend only on (studySeed, jobID) and this job's failure
// history, which is what lets classification run as a shard-local event.
func (s *Study) classify(sc *shardCtx, js *jobState, reasonCode string) string {
	if !s.cfg.GenerateLogs {
		return reasonCode
	}
	log := sc.logGen.FailureLogBytes(reasonCode, js.spec.GPUs, s.logRNG(js))
	return s.clf.ClassifyBytesPool(log, s.pool)
}

// finalize records the job's terminal state.
func (s *Study) finalize(js *jobState, now simulation.Time) {
	res := js.res
	res.Completed = true
	res.Outcome = js.spec.Plan.Outcome
	res.EndAt = now
	res.FirstStartAt = js.sched.FirstStartAt
	res.FirstQueueDelay = js.sched.FirstQueueDelay
	res.TotalQueueDelay = js.sched.TotalQueueDelay
	// Retries are counted from what actually ran (AdaptiveRetry can cut a
	// job short of its planned attempts).
	res.Retries = len(res.Attempts) - 1
	res.DelayCause = js.sched.Cause()
	res.FairShareBlocks = js.sched.FairShareBlocks
	res.FragBlocks = js.sched.FragBlocks
	res.OutOfOrderStart = js.sched.OutOfOrderStart
	res.Overtaken = js.sched.Overtaken
	for _, a := range res.Attempts {
		if a.Servers > res.MaxServers {
			res.MaxServers = a.Servers
		}
		res.LastServers = a.Servers
		if a.Colocated {
			res.EverColocated = true
		}
	}
	if js.usage != nil {
		res.MeanUtil = js.usage.MeanUtil()
	} else {
		res.MeanUtil = s.rec.JobUsageOf(js.sched.ID).MeanUtil()
	}
	if js.pendingConv != nil {
		// Prepared on the job's shard (see prepareFinish); the condition
		// there — LogsConvergence and a non-Unsuccessful planned outcome —
		// is exactly the one this branch used to evaluate, because
		// res.Outcome is always the plan's outcome.
		res.Convergence = js.pendingConv
		js.pendingConv = nil
	}
	if s.jobObserver != nil {
		s.jobObserver(js.idx, res)
		// The observer has consumed the full record (StreamJobs observers
		// must not retain the Attempts slice past the call); recycle the
		// backing array for a later job's first attempt and release the
		// variable-size parts so completed jobs stop holding memory.
		if cap(res.Attempts) > 0 {
			s.attemptFree = append(s.attemptFree, res.Attempts[:0])
		}
		res.Attempts = nil
		res.Convergence = nil
	}
	s.pending--
	if s.pending == 0 {
		s.engine.Stop()
	}
}

// convergence realizes the job's loss curve, renders it through the
// training-log generator, parses it back, and summarizes — the same
// text-mediated path the paper's pipeline uses for its ~2.5k jobs. The
// curve and the log draws come from the job's private streams, so the
// whole computation is local to the job's shard.
func (s *Study) convergence(sc *shardCtx, js *jobState) *ConvergenceResult {
	epochs := js.spec.Train.Epochs
	if js.spec.Plan.Outcome == failures.Killed {
		epochs = int(float64(epochs)*js.spec.Plan.KillFraction + 0.5)
		if epochs < 1 {
			epochs = 1
		}
	}
	// Re-seeding here (rather than behind a once-flag) keeps the curve a
	// pure function of (studySeed, jobID): if a future change ever calls
	// convergence more than once for a job — today the stagedAttempt skip
	// makes it at most once — every call draws the identical curve, so the
	// engines cannot diverge on it.
	js.curveStream.Init(stats.DeriveEntitySeed(s.cfg.Seed, "job-curve", uint64(js.spec.ID)))
	curve, err := training.SampleCurve(epochs, &js.curveStream)
	if err != nil {
		panic(fmt.Sprintf("core: convergence curve: %v", err))
	}
	losses := curve.Losses
	if s.cfg.GenerateLogs {
		// A job can reach convergence analysis without ever failing; its
		// log stream is then first drawn here.
		log := sc.logGen.TrainingLogBytes(curve.Losses, js.spec.GPUs, s.logRNG(js))
		losses = joblog.ParseLossCurveBytesPool(log, sc.lossScratch[:0], s.pool)
		sc.lossScratch = losses
	}
	parsed := training.Curve{Losses: losses}
	return &ConvergenceResult{
		EpochsRun:           parsed.Epochs(),
		FractionForLowest:   parsed.FractionForLowest(),
		FractionWithinTenth: parsed.FractionWithin(0.001),
	}
}

// telemetryChunkSize is the shard granularity of the telemetry walk: one
// chunk covers this many running-list slots or servers. The chunk→shard
// mapping (chunk index mod telemetry.NumFoldShards) and the ascending
// chunk order within each shard are FIXED — part of the fold-order
// determinism contract (PERFORMANCE.md § PR 8) — so results are identical
// for every worker count, including the sequential walk.
const telemetryChunkSize = 64

// parallelTickMin gates the fork-join on a tick's draw work, in job-draw
// units (a host draw is two normal deviates to a job draw's one, so each
// server counts double). Below it the whole walk is a handful of
// microseconds and the handoff would cost more than it buys; the gate
// compares list lengths only — worker-count-independent by construction.
// A variable, not a const, so the invariance tests can lower it and force
// every tick through the parallel pipeline at test scale; any fixed value
// preserves bit-identity.
var parallelTickMin = 1024

// sampleTelemetry records one per-minute observation of the whole cluster.
//
// The walk is chunked: job chunks first, then host chunks, and chunk c
// always folds into telemetry fold shard c mod NumFoldShards. The
// sequential shape executes chunks 0..N-1 in order; the parallel shape
// runs exactly NumFoldShards fused draw+fold tasks on one fork-join, task
// g owning shard g and executing its chunks (c ≡ g mod NumFoldShards) in
// the same ascending order. No buffers, no flags, no cross-task contact:
// sampled values are a pure function of the entity's own pre-split stream
// and episode history, and every fold shard receives its chunks in the
// same order either way, so both shapes are bit-identical for every pool
// size. The cross-SHARD accumulation order differs from the pre-PR 8
// single-sink fold; Recorder.Seal merges shards in fixed shard order at
// collection, which is the deliberate determinism-contract change
// documented in PERFORMANCE.md § PR 8.
func (s *Study) sampleTelemetry(now simulation.Time) {
	jobs := s.running
	used, caps := s.cluster.UsedBySrv(), s.cluster.CapBySrv()
	if s.runningLive > s.maxLiveRunning {
		s.maxLiveRunning = s.runningLive
	}

	jobChunks := (len(jobs) + telemetryChunkSize - 1) / telemetryChunkSize
	totalChunks := jobChunks + (len(used)+telemetryChunkSize-1)/telemetryChunkSize
	if s.pool == nil || len(jobs)+2*len(used) < parallelTickMin {
		for c := 0; c < totalChunks; c++ {
			s.sampleChunk(c, jobChunks, jobs, used, caps)
		}
	} else {
		s.parallelTicks++
		s.pool.ForkJoin(telemetry.NumFoldShards, func(g int) {
			for c := g; c < totalChunks; c += telemetry.NumFoldShards {
				s.sampleChunk(c, jobChunks, jobs, used, caps)
			}
		})
	}

	s.occ = append(s.occ, OccupancySample{
		At:           now,
		Occupancy:    s.cluster.Occupancy(),
		EmptyServers: float64(s.cluster.EmptyServers()) / float64(s.cluster.NumServers()),
		DownGPUs:     float64(s.heldGPUs) / float64(s.cluster.TotalGPUs()),
	})
}

// sampleChunk draws and folds one telemetry chunk into its fold shard.
// Chunks [0, jobChunks) cover the running list; the rest cover servers.
func (s *Study) sampleChunk(c, jobChunks int, jobs []*jobState, used, caps []int32) {
	sh := s.rec.FoldShard(c % telemetry.NumFoldShards)
	if c < jobChunks {
		lo, hi := c*telemetryChunkSize, (c+1)*telemetryChunkSize
		if hi > len(jobs) {
			hi = len(jobs)
		}
		for i := lo; i < hi; i++ {
			if js := jobs[i]; js != nil && js.running {
				sh.RecordJobMinuteInto(js.usage, js.meta, s.util.MinuteUtil(js.baseUtil, &js.stream))
			}
		}
		return
	}
	hc := c - jobChunks
	lo, hi := hc*telemetryChunkSize, (hc+1)*telemetryChunkSize
	if hi > len(used) {
		hi = len(used)
	}
	for i := lo; i < hi; i++ {
		cpu, mem := s.host.Sample(int(used[i]), int(caps[i]), &s.hostStreams[i])
		sh.RecordHostMinute(cpu, mem)
	}
}
