package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"philly/internal/faults"
	"philly/internal/simulation"
)

// faultyConfig is a fast study with the outage engine and the checkpoint
// cost model on: random outages on every domain tier (sped up so an
// 18-hour trace sees several), plus a deterministic cluster-wide
// maintenance window guaranteeing at least one same-instant mass kill.
func faultyConfig(seed uint64) Config {
	cfg := SmallConfig()
	cfg.Seed = seed
	cfg.Workload.TotalJobs = 400
	cfg.Workload.Duration = 18 * simulation.Hour
	cfg.Faults = faults.DefaultConfig()
	cfg.Faults.Enabled = true
	cfg.Faults = cfg.Faults.Scale(8)
	cfg.Faults.Maintenance = []faults.Maintenance{
		// Whole-cluster window mid-trace: every running attempt dies at the
		// same instant, and the repair lands well inside the horizon.
		{Rack: -1, Start: 6 * simulation.Hour, Duration: 20 * simulation.Minute},
		{Rack: 0, Start: 10 * simulation.Hour, Duration: simulation.Hour},
	}
	cfg.Checkpoint = DefaultCheckpointConfig()
	cfg.Checkpoint.Enabled = true
	return cfg
}

// TestOutageInvariance is the tentpole's determinism bar: an outage- and
// checkpoint-enabled study — including a same-instant cluster-wide mass
// kill — must produce a bit-identical StudyResult on the sequential
// engine at workers {1, 2, 4} and on the sharded engine at shard counts
// {1, 2, NumVCs} × workers {1, 4}. Outage effects are global events
// scheduled at Arm in plan order, so every engine must realize the same
// (at, seq) kill/hold/repair order.
func TestOutageInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run invariance matrix is not a -short test")
	}
	for _, seed := range []uint64{3, 17} {
		cfg := faultyConfig(seed)
		seq, seqStudy := runWithPool(t, cfg, 0)

		// The claim is only interesting if the outage machinery engaged.
		if seq.Outages.Events == 0 {
			t.Fatal("no outage fired; the test config lost its fault pressure")
		}
		if seq.Outages.KilledAttempts < 2 {
			t.Fatalf("only %d attempts killed; mass-kill coverage needs at least 2",
				seq.Outages.KilledAttempts)
		}
		if seq.Outages.MaintenanceEvents == 0 {
			t.Fatal("maintenance windows never fired")
		}
		if seq.Outages.LostGPUHours <= 0 || seq.Outages.DownGPUHours <= 0 {
			t.Fatalf("outage accounting empty: %+v", seq.Outages)
		}
		if seq.Outages.CkptOverheadGPUHours <= 0 {
			t.Fatal("checkpoint cost model never charged overhead")
		}
		// Every outage in this config repairs inside the horizon, so all
		// sentinel holds must have been released.
		if seqStudy.heldGPUs != 0 {
			t.Fatalf("%d GPUs still held after the run", seqStudy.heldGPUs)
		}

		for _, workers := range []int{1, 2, 4} {
			res, _ := runWithPool(t, cfg, workers)
			if !reflect.DeepEqual(seq, res) {
				diffStudyResults(t, seq, res)
				t.Fatalf("seed=%d workers=%d diverged from sequential engine", seed, workers)
			}
		}
		for _, shards := range []int{1, 2, 0 /* = NumVCs */} {
			for _, workers := range []int{1, 4} {
				res, st := runShardedWithPool(t, cfg, shards, workers)
				if on, _ := st.EventSharded(); !on {
					t.Fatal("sharded run did not use the sharded engine")
				}
				if !reflect.DeepEqual(seq, res) {
					diffStudyResults(t, seq, res)
					t.Fatalf("seed=%d shards=%d workers=%d diverged from sequential engine",
						seed, shards, workers)
				}
			}
		}
	}
}

// TestFaultsOffIsByteIdenticalToDefault pins the RNG-stream isolation:
// the faults split is drawn from the master stream whether or not the
// engine is enabled, so an explicitly-disabled faults config must be
// byte-identical to the untouched default — outage support cannot perturb
// a study that does not use it.
func TestFaultsOffIsByteIdenticalToDefault(t *testing.T) {
	base := SmallConfig()
	base.Seed = 9
	base.Workload.TotalJobs = 300
	base.Workload.Duration = simulation.Day

	want, _ := runWithPool(t, base, 0)

	cfg := base
	cfg.Faults = faults.DefaultConfig() // Enabled=false, but fully populated
	cfg.Faults.Maintenance = []faults.Maintenance{{Rack: -1, Start: simulation.Hour, Duration: simulation.Hour}}
	cfg.Checkpoint = DefaultCheckpointConfig() // Enabled=false
	got, _ := runWithPool(t, cfg, 0)
	// The recorded Config legitimately differs (it carries the disabled
	// faults settings); everything the simulation produced must not.
	got.Config = want.Config
	if !reflect.DeepEqual(want, got) {
		diffStudyResults(t, want, got)
		t.Fatal("disabled faults/checkpoint config diverged from the default study")
	}
}

// TestCheckpointReducesLostWork pins the cost model's direction: with the
// same outage schedule, enabling periodic checkpoints must cut lost
// GPU-hours (kills roll back to the last checkpoint instead of the
// episode start) and must charge a positive write/restore overhead.
func TestCheckpointReducesLostWork(t *testing.T) {
	cfg := faultyConfig(5)
	cfg.Checkpoint.Enabled = false
	off, _ := runWithPool(t, cfg, 0)

	cfg.Checkpoint.Enabled = true
	cfg.Checkpoint.Interval = 10 * simulation.Minute
	on, _ := runWithPool(t, cfg, 0)

	if off.Outages.KilledAttempts == 0 || on.Outages.KilledAttempts == 0 {
		t.Fatal("outages killed nothing; the comparison is vacuous")
	}
	if off.Outages.CkptOverheadGPUHours != 0 {
		t.Fatalf("disabled cost model charged %.2f GPU-h overhead", off.Outages.CkptOverheadGPUHours)
	}
	if on.Outages.CkptOverheadGPUHours <= 0 {
		t.Fatal("enabled cost model charged no overhead")
	}
	if on.Outages.LostGPUHours >= off.Outages.LostGPUHours {
		t.Fatalf("checkpointing did not reduce lost work: %.1f GPU-h on vs %.1f off",
			on.Outages.LostGPUHours, off.Outages.LostGPUHours)
	}
}

// TestOutageStatsConsistency cross-checks the study-level outage
// aggregates against the per-job records they summarize.
func TestOutageStatsConsistency(t *testing.T) {
	cfg := faultyConfig(13)
	res, _ := runWithPool(t, cfg, 0)

	kills := 0
	var lostGPUh, ckptGPUh float64
	for i := range res.Jobs {
		j := &res.Jobs[i]
		kills += j.OutageKills
		lostGPUh += j.LostGPUMinutes / 60
		ckptGPUh += j.CkptGPUMinutes / 60
	}
	if kills != res.Outages.KilledAttempts {
		t.Fatalf("per-job kills %d != study KilledAttempts %d", kills, res.Outages.KilledAttempts)
	}
	if math.Abs(lostGPUh-res.Outages.LostGPUHours) > 1e-6 {
		t.Fatalf("per-job lost %.6f GPU-h != study %.6f", lostGPUh, res.Outages.LostGPUHours)
	}
	if math.Abs(ckptGPUh-res.Outages.CkptOverheadGPUHours) > 1e-6 {
		t.Fatalf("per-job ckpt overhead %.6f GPU-h != study %.6f", ckptGPUh, res.Outages.CkptOverheadGPUHours)
	}
	if res.Outages.ETTFHours <= 0 || res.Outages.ETTRHours <= 0 {
		t.Fatalf("ETTF/ETTR not realized: %+v", res.Outages)
	}
	// DownGPUs telemetry: some occupancy sample must have seen held capacity.
	sawDown := false
	for _, s := range res.OccupancySamples {
		if s.DownGPUs > 0 {
			sawDown = true
			if s.DownGPUs > 1 {
				t.Fatalf("DownGPUs fraction %v > 1", s.DownGPUs)
			}
		}
	}
	if !sawDown {
		t.Fatal("no occupancy sample recorded down capacity")
	}
}

// TestParseCheckpointSpec exercises the CLI spec grammar, valid and not.
func TestParseCheckpointSpec(t *testing.T) {
	if cfg, err := ParseCheckpointSpec("off"); err != nil || cfg.Enabled {
		t.Fatalf("off: cfg=%+v err=%v", cfg, err)
	}
	cfg, err := ParseCheckpointSpec("15")
	if err != nil || !cfg.Enabled || cfg.Interval != 15*simulation.Minute {
		t.Fatalf("15: cfg=%+v err=%v", cfg, err)
	}
	if cfg.WriteSeconds != DefaultCheckpointConfig().WriteSeconds {
		t.Fatalf("15: write cost %v did not default", cfg.WriteSeconds)
	}
	cfg, err = ParseCheckpointSpec("30:45:90")
	if err != nil || cfg.Interval != 30*simulation.Minute || cfg.WriteSeconds != 45 || cfg.RestoreSeconds != 90 {
		t.Fatalf("30:45:90: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"", "0", "-3", "x", "5:-1", "5:1:-2", "5:1:2:3", "5:y"} {
		if _, err := ParseCheckpointSpec(bad); err == nil {
			t.Fatalf("spec %q: want error", bad)
		} else if !strings.Contains(err.Error(), "checkpoint spec") {
			t.Fatalf("spec %q: undescriptive error %v", bad, err)
		}
	}
}
