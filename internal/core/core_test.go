package core

import (
	"sync"
	"testing"

	"philly/internal/failures"
	"philly/internal/scheduler"
)

// sharedResult runs the SmallConfig study once and reuses it across tests.
var (
	sharedOnce sync.Once
	shared     *StudyResult
	sharedErr  error
)

func smallResult(t *testing.T) *StudyResult {
	t.Helper()
	sharedOnce.Do(func() {
		st, err := NewStudy(SmallConfig())
		if err != nil {
			sharedErr = err
			return
		}
		shared, sharedErr = st.Run()
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return shared
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
	bad := SmallConfig()
	bad.TelemetryInterval = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero telemetry interval")
	}
	bad2 := SmallConfig()
	bad2.CheckpointRetention = 2
	if err := bad2.Validate(); err == nil {
		t.Error("want error for retention > 1")
	}
	bad3 := SmallConfig()
	bad3.HorizonFactor = 0.5
	if err := bad3.Validate(); err == nil {
		t.Error("want error for horizon < 1")
	}
	bad4 := SmallConfig()
	bad4.Workload.TotalJobs = 0
	if _, err := NewStudy(bad4); err == nil {
		t.Error("NewStudy must reject invalid config")
	}
}

func TestStudyCompletes(t *testing.T) {
	res := smallResult(t)
	if len(res.Jobs) != SmallConfig().Workload.TotalJobs {
		t.Fatalf("jobs = %d, want %d", len(res.Jobs), SmallConfig().Workload.TotalJobs)
	}
	done := 0
	for i := range res.Jobs {
		if res.Jobs[i].Completed {
			done++
		}
	}
	if frac := float64(done) / float64(len(res.Jobs)); frac < 0.95 {
		t.Errorf("only %.2f of jobs completed before horizon", frac)
	}
}

func TestJobResultConsistency(t *testing.T) {
	res := smallResult(t)
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.Completed {
			continue
		}
		if j.Outcome != j.Spec.Plan.Outcome {
			t.Fatalf("job %d outcome %v != planned %v", j.Spec.ID, j.Outcome, j.Spec.Plan.Outcome)
		}
		if len(j.Attempts) != j.Spec.Plan.TotalAttempts() {
			t.Fatalf("job %d attempts %d != planned %d", j.Spec.ID, len(j.Attempts), j.Spec.Plan.TotalAttempts())
		}
		if j.FirstQueueDelay < 0 {
			t.Fatalf("job %d negative queue delay", j.Spec.ID)
		}
		if j.EndAt < j.FirstStartAt || j.FirstStartAt < j.Spec.SubmitAt {
			t.Fatalf("job %d time ordering broken: submit=%v start=%v end=%v",
				j.Spec.ID, j.Spec.SubmitAt, j.FirstStartAt, j.EndAt)
		}
		if j.RunMinutes <= 0 || j.GPUMinutes < j.RunMinutes*float64(j.Spec.GPUs)*0.999 {
			t.Fatalf("job %d accounting broken: run=%v gpu=%v gpus=%d",
				j.Spec.ID, j.RunMinutes, j.GPUMinutes, j.Spec.GPUs)
		}
		for k, a := range j.Attempts {
			if a.Index != k {
				t.Fatalf("job %d attempt index %d at position %d", j.Spec.ID, a.Index, k)
			}
			if a.EndAt < a.StartAt {
				t.Fatalf("job %d attempt %d ends before start", j.Spec.ID, k)
			}
			if a.Failed && a.ClassifiedReason == "" {
				t.Fatalf("job %d failed attempt %d lacks classification", j.Spec.ID, k)
			}
			if a.Servers < 1 {
				t.Fatalf("job %d attempt %d spread %d", j.Spec.ID, k, a.Servers)
			}
		}
		// Final attempt of an unsuccessful job must be failed; final
		// attempt of passed/killed must be clean.
		last := j.Attempts[len(j.Attempts)-1]
		if (j.Outcome == failures.Unsuccessful) != last.Failed {
			t.Fatalf("job %d final attempt failed=%v but outcome=%v", j.Spec.ID, last.Failed, j.Outcome)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := SmallConfig()
	cfg.Workload.TotalJobs = 300
	cfg.Workload.Duration = SmallConfig().Workload.Duration / 4
	run := func() *StudyResult {
		st, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("job counts differ")
	}
	for i := range a.Jobs {
		ja, jb := &a.Jobs[i], &b.Jobs[i]
		if ja.EndAt != jb.EndAt || ja.FirstQueueDelay != jb.FirstQueueDelay ||
			ja.GPUMinutes != jb.GPUMinutes || ja.Outcome != jb.Outcome ||
			ja.MeanUtil != jb.MeanUtil {
			t.Fatalf("job %d diverged between identical runs", ja.Spec.ID)
		}
	}
	if a.Sched != b.Sched {
		t.Fatalf("scheduler stats diverged: %+v vs %+v", a.Sched, b.Sched)
	}
}

func TestSeedChangesResults(t *testing.T) {
	cfg := SmallConfig()
	cfg.Workload.TotalJobs = 200
	cfg.Workload.Duration = SmallConfig().Workload.Duration / 8
	st1, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := st1.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	st2, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := st2.Run()
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range r1.Jobs {
		if r1.Jobs[i].Spec.GPUs == r2.Jobs[i].Spec.GPUs {
			same++
		}
	}
	if same == len(r1.Jobs) {
		t.Error("different seeds produced identical workloads")
	}
}

// Table 6 calibration: status mix within tolerance of the paper.
func TestStatusMixMatchesTable6(t *testing.T) {
	res := smallResult(t)
	var counts [3]int
	total := 0
	for i := range res.Jobs {
		if res.Jobs[i].Completed {
			counts[int(res.Jobs[i].Outcome)]++
			total++
		}
	}
	passed := float64(counts[0]) / float64(total)
	killed := float64(counts[1]) / float64(total)
	unsucc := float64(counts[2]) / float64(total)
	if passed < 0.63 || passed > 0.75 {
		t.Errorf("passed fraction %.3f, paper 0.693", passed)
	}
	if killed < 0.09 || killed > 0.19 {
		t.Errorf("killed fraction %.3f, paper 0.135", killed)
	}
	if unsucc < 0.12 || unsucc > 0.23 {
		t.Errorf("unsuccessful fraction %.3f, paper 0.172", unsucc)
	}
}

// §4: killed + unsuccessful jobs consume an outsized GPU-time share
// (paper: ~55%).
func TestFailedGPUTimeShare(t *testing.T) {
	res := smallResult(t)
	var byOutcome [3]float64
	total := 0.0
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.Completed {
			continue
		}
		byOutcome[int(j.Outcome)] += j.GPUMinutes
		total += j.GPUMinutes
	}
	share := (byOutcome[1] + byOutcome[2]) / total
	if share < 0.38 || share > 0.68 {
		t.Errorf("killed+unsuccessful GPU-time share %.3f, paper ~0.55", share)
	}
}

// Figure 2: larger jobs run longer (medians increase with bucket).
func TestRunTimesGrowWithSize(t *testing.T) {
	res := smallResult(t)
	var byBucket [failures.NumSizeBuckets][]float64
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if j.Completed {
			byBucket[j.Spec.SizeBucket()] = append(byBucket[j.Spec.SizeBucket()], j.RunMinutes)
		}
	}
	med := func(v []float64) float64 {
		if len(v) == 0 {
			return 0
		}
		s := append([]float64(nil), v...)
		for i := 1; i < len(s); i++ {
			for k := i; k > 0 && s[k] < s[k-1]; k-- {
				s[k], s[k-1] = s[k-1], s[k]
			}
		}
		return s[len(s)/2]
	}
	m1, m4 := med(byBucket[failures.Size1]), med(byBucket[failures.SizeOver8])
	if m4 <= m1 {
		t.Errorf(">8 GPU median runtime (%.1f) should exceed 1 GPU (%.1f)", m4, m1)
	}
}

// §3.1.1: out-of-order scheduling is common (paper: 38.1% of decisions) and
// mostly harmless (paper: 85% for large jobs).
func TestOutOfOrderScheduling(t *testing.T) {
	res := smallResult(t)
	st := res.Sched
	if st.Starts == 0 {
		t.Fatal("no scheduling decisions")
	}
	ooo := float64(st.OutOfOrderStarts) / float64(st.Starts)
	if ooo < 0.10 || ooo > 0.75 {
		t.Errorf("out-of-order fraction %.3f, paper 0.381", ooo)
	}
	if st.OutOfOrderStarts > 0 {
		harmless := float64(st.HarmlessOutOfOrder) / float64(st.OutOfOrderStarts)
		if harmless < 0.5 {
			t.Errorf("harmless fraction %.3f, paper ~0.85", harmless)
		}
	}
}

// Failure attribution flows through logs: classified reasons almost always
// match ground truth, and no-signature shows up at its calibrated rate.
func TestLogClassificationPipeline(t *testing.T) {
	res := smallResult(t)
	match, total, noSig := 0, 0, 0
	for i := range res.Jobs {
		for _, a := range res.Jobs[i].Attempts {
			if !a.Failed {
				continue
			}
			total++
			if a.ClassifiedReason == a.PlannedReason {
				match++
			}
			if a.ClassifiedReason == failures.CodeNoSignature {
				noSig++
			}
		}
	}
	if total == 0 {
		t.Fatal("no failed attempts")
	}
	if acc := float64(match) / float64(total); acc < 0.99 {
		t.Errorf("classification accuracy %.4f, want >= 0.99", acc)
	}
	frac := float64(noSig) / float64(total)
	if frac < 0.01 || frac > 0.10 {
		t.Errorf("no-signature fraction %.3f, paper 0.042", frac)
	}
}

// Telemetry sanity: overall utilization mean near the paper's 52%.
func TestOverallUtilizationCalibration(t *testing.T) {
	res := smallResult(t)
	mean := res.Telemetry.All().Mean()
	if mean < 42 || mean > 62 {
		t.Errorf("overall mean utilization %.1f, paper 52.32", mean)
	}
}

// Queueing delays exist but most jobs start reasonably quickly.
func TestQueueingDelaysShape(t *testing.T) {
	res := smallResult(t)
	delayed := 0
	n := 0
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.Completed {
			continue
		}
		n++
		if j.FirstQueueDelay.Minutes() > 10 {
			delayed++
		}
	}
	frac := float64(delayed) / float64(n)
	// Figure 3: the >=10-minute delay fraction is roughly 10-25% depending
	// on VC and size.
	if frac < 0.02 || frac > 0.5 {
		t.Errorf("fraction of jobs delayed > 10 min = %.3f, expect moderate queueing", frac)
	}
}

// Preemption happens under load and preempted jobs still finish.
func TestPreemptionOccurs(t *testing.T) {
	res := smallResult(t)
	if res.Sched.FairSharePreemptions == 0 {
		t.Skip("no fair-share preemption in this run (load-dependent)")
	}
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if j.Preemptions > 0 && j.Completed && j.Outcome == failures.Passed {
			return // found a preempted job that completed fine
		}
	}
	t.Error("preemptions occurred but no preempted job completed")
}

// Convergence subsample matches the configured fraction and Figure 8 shape.
func TestConvergenceSubset(t *testing.T) {
	res := smallResult(t)
	n := 0
	needAll, early := 0, 0
	for i := range res.Jobs {
		c := res.Jobs[i].Convergence
		if c == nil {
			continue
		}
		n++
		if c.FractionForLowest > 0.9 {
			needAll++
		}
		if c.FractionWithinTenth <= 0.6 {
			early++
		}
	}
	if n == 0 {
		t.Fatal("no convergence data")
	}
	if float64(needAll)/float64(n) < 0.55 {
		t.Errorf("only %d/%d curves need ~all epochs; paper ~80%%", needAll, n)
	}
	if float64(early)/float64(n) < 0.55 {
		t.Errorf("only %d/%d curves reach 0.1%% early; paper ~75%%", early, n)
	}
}

func TestSchedulerPolicySwap(t *testing.T) {
	cfg := SmallConfig()
	cfg.Workload.TotalJobs = 300
	cfg.Workload.Duration = SmallConfig().Workload.Duration / 4
	cfg.Scheduler.Policy = scheduler.PolicyFIFO
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched.OutOfOrderStarts != 0 {
		t.Errorf("FIFO produced %d out-of-order starts", res.Sched.OutOfOrderStarts)
	}
}
