package core

import (
	"reflect"
	"testing"
)

// determinismConfig is SmallConfig scaled down so two full runs stay fast.
func determinismConfig() Config {
	cfg := SmallConfig()
	cfg.Workload.TotalJobs = 250
	cfg.Workload.Duration = SmallConfig().Workload.Duration / 4
	return cfg
}

func runStudy(t *testing.T, cfg Config) *StudyResult {
	t.Helper()
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDeterminismDeepEqual locks down the simulator's core contract at full
// strength: two runs of the same configuration must agree on every field of
// the StudyResult — every job, every attempt, every telemetry histogram
// bucket — not just the spot-checked metrics of TestDeterminism. The sweep
// harness's worker-count invariance rests on this.
func TestDeterminismDeepEqual(t *testing.T) {
	cfg := determinismConfig()
	a, b := runStudy(t, cfg), runStudy(t, cfg)
	if !reflect.DeepEqual(a.Jobs, b.Jobs) {
		for i := range a.Jobs {
			if !reflect.DeepEqual(a.Jobs[i], b.Jobs[i]) {
				t.Fatalf("job %d diverged between identical runs:\n%+v\nvs\n%+v",
					a.Jobs[i].Spec.ID, a.Jobs[i], b.Jobs[i])
			}
		}
		t.Fatal("job slices diverged")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("StudyResults diverged between identical runs (outside Jobs)")
	}
}

// TestDeterminismSeedSensitivity is the converse guard: a different seed
// must actually change the result, or the seed plumbing is dead.
func TestDeterminismSeedSensitivity(t *testing.T) {
	cfg := determinismConfig()
	a := runStudy(t, cfg)
	cfg.Seed = cfg.Seed + 1
	b := runStudy(t, cfg)
	if reflect.DeepEqual(a.Jobs, b.Jobs) {
		t.Fatal("different seeds produced identical job results")
	}
}
