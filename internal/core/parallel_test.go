package core

import (
	"reflect"
	"testing"

	"philly/internal/par"
	"philly/internal/scheduler"
)

// parallelConfig is a configuration big enough to exercise multi-chunk
// telemetry sharding (more than jobChunkSize concurrently running jobs,
// more than hostChunkSize servers) while staying fast enough to run ~30
// times in this test file.
func parallelConfig() Config {
	cfg := SmallConfig()
	// Triple the 8-GPU racks: 81 servers > hostChunkSize guarantees host
	// chunking; the widened cluster lets >jobChunkSize 1-GPU jobs run at
	// once so job chunking engages too.
	for i := range cfg.Cluster.Racks {
		cfg.Cluster.Racks[i].Servers *= 3
	}
	for i := range cfg.Workload.VCs {
		cfg.Workload.VCs[i].QuotaGPUs *= 3
	}
	cfg.Workload.TotalJobs = 1000
	cfg.Workload.Duration = SmallConfig().Workload.Duration / 4
	return cfg
}

// runWithPool executes one study over a pool of the given size (0 = no
// pool: the pure sequential engine). It returns the result and the study
// for white-box inspection.
func runWithPool(t *testing.T, cfg Config, workers int) (*StudyResult, *Study) {
	t.Helper()
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pool *par.Pool
	if workers > 0 {
		pool = par.NewPool(workers)
		defer pool.Close()
		st.SetPool(pool)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

// lowerTickGate forces every pooled tick through the parallel telemetry
// pipeline for the duration of a test: at test scale the production gate
// (tuned for microsecond tick work) would otherwise route all ticks to the
// fused sequential walk and the pipeline under test would never execute.
// Bit-identity must hold for any fixed gate value, so lowering it changes
// only which code path produces the (identical) samples.
func lowerTickGate(t *testing.T) {
	t.Helper()
	old := parallelTickMin
	parallelTickMin = 1
	t.Cleanup(func() { parallelTickMin = old })
}

// runShardedWithPool executes one study on the per-VC sharded event engine
// with the given shard count (0 = one shard per VC) over a pool of the
// given size (0 = no pool).
func runShardedWithPool(t *testing.T, cfg Config, shards, workers int) (*StudyResult, *Study) {
	t.Helper()
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.ShardEvents(shards)
	if workers > 0 {
		pool := par.NewPool(workers)
		defer pool.Close()
		st.SetPool(pool)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

// TestWorkerCountInvariance is the tentpole's hard bar: the full-precision
// StudyResult — every float in every job record, every histogram bucket and
// sum, every occupancy sample — must be bit-identical across
//
//   - intra-study worker counts 1, 2, 4 and 8 on the sequential engine, and
//   - the per-VC sharded event engine at shard counts 1, 2 and NumVCs,
//     each at worker counts 1 and 4,
//
// all against the sequential no-pool engine, for 3 seeds × 2 policies.
// reflect.DeepEqual compares unexported recorder state too, so this is
// strictly stronger than hashing a rendered report.
//
// workers=1 runs the parallel pipeline's code shape inline (draw tasks
// then fold tasks on one goroutine), so the sequential-vs-1-worker leg
// pins the fused-walk ≡ draw+fold-groups equivalence; workers ≥ 2 add real
// concurrency (and, under make check, the race detector). The sharded legs
// additionally pin the window merge: shard-local prepare steps interleave
// differently across shards than the sequential event order, and the
// result must not care.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run invariance matrix is not a -short test")
	}
	lowerTickGate(t)
	cfg := parallelConfig()
	for _, policy := range []scheduler.Policy{scheduler.PolicyPhilly, scheduler.PolicyFIFO} {
		for _, seed := range []uint64{1, 7, 42} {
			cfg.Scheduler.Policy = policy
			cfg.Seed = seed
			seq, seqStudy := runWithPool(t, cfg, 0)
			// The invariance claim is only interesting if sharding actually
			// happened: require multiple host chunks (servers) and multiple
			// job chunks (peak running set) at some tick.
			if n := seqStudy.cluster.NumServers(); n <= telemetryChunkSize {
				t.Fatalf("config too small: %d servers never shard the host walk", n)
			}
			if seqStudy.maxLiveRunning <= telemetryChunkSize {
				t.Fatalf("config too small: peak running set %d never shards the job walk",
					seqStudy.maxLiveRunning)
			}
			if seqStudy.parallelTicks != 0 {
				t.Fatal("no-pool run must use the fused sequential walk")
			}
			// The speculative placement path is on by default and its
			// counters are part of the compared result, so the matrix
			// below also pins their worker/shard invariance — provided the
			// workload actually speculates.
			if seq.Sched.SpeculativeCommits == 0 {
				t.Fatalf("policy=%v seed=%d: no speculative placement commits", policy, seed)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				res, st := runWithPool(t, cfg, workers)
				// Guard against the gate (or a future refactor) silently
				// routing pooled ticks back to the fused walk.
				if st.parallelTicks == 0 {
					t.Fatalf("workers=%d never entered the parallel telemetry pipeline", workers)
				}
				if !reflect.DeepEqual(seq, res) {
					diffStudyResults(t, seq, res)
					t.Fatalf("policy=%v seed=%d workers=%d diverged from sequential engine",
						policy, seed, workers)
				}
			}
			// Sharded-event legs: shard counts 1, 2 and NumVCs, with and
			// without real pool concurrency.
			for _, shards := range []int{1, 2, 0 /* = NumVCs */} {
				for _, workers := range []int{1, 4} {
					res, st := runShardedWithPool(t, cfg, shards, workers)
					on, n := st.EventSharded()
					if !on {
						t.Fatal("sharded run did not use the sharded engine")
					}
					if shards > 0 && n != shards {
						t.Fatalf("shard count = %d, want %d", n, shards)
					}
					if !reflect.DeepEqual(seq, res) {
						diffStudyResults(t, seq, res)
						t.Fatalf("policy=%v seed=%d shards=%d workers=%d diverged from sequential engine",
							policy, seed, shards, workers)
					}
					ws := st.WindowStats()
					if ws.LocalEvents == 0 {
						t.Fatalf("shards=%d: no events ran on the shards", n)
					}
					// White-box guard: with more than one shard, the window
					// merge must actually batch multiple shards into single
					// windows — shards advancing concurrently in virtual
					// time — or the sharded path under test degenerated to
					// a serialized replay. The counter is deterministic (a
					// function of the event schedule, not of thread timing),
					// so an exact zero is a real regression.
					if n > 1 && ws.MultiShardWindows == 0 {
						t.Fatalf("policy=%v seed=%d shards=%d: no window advanced multiple shards",
							policy, seed, n)
					}
				}
			}
		}
	}
}

// TestMillionEventInvariance is TestWorkerCountInvariance at engine scale:
// one saturated study processing over a million events (16000 jobs arriving
// at the small matrix's load factor, so deep queues, preemption churn and
// telemetry ticks all contribute), bit-compared across the full
// workers {1, 2, 4} × shards {1, 2, NumVCs} cross product against the
// sequential no-pool reference. The small matrix catches logic divergence;
// this leg exists for scale-dependent failure modes — arena growth, the
// batched arrival/barrier drains, attempt-slice recycling and fold-shard
// rotation only hit their steady state after thousands of jobs. One seed
// and one policy: the schedule variety comes from volume here, the small
// matrix covers the config space.
func TestMillionEventInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("the million-event invariance matrix is not a -short test")
	}
	lowerTickGate(t)
	cfg := parallelConfig()
	// Hold the arrival rate at 5000 jobs per parallelConfig duration — a
	// saturating load where queue churn, preemption and telemetry ticks
	// together cross a million events at 16000 jobs (calibrated: ~1.11M)
	// without the super-linear queue-scan blowup of packing the same jobs
	// into the small config's window.
	cfg.Workload.Duration = cfg.Workload.Duration / 5000 * 16000
	cfg.Workload.TotalJobs = 16000
	cfg.Seed = 42

	seq, seqStudy := runWithPool(t, cfg, 0)
	if p := seqStudy.engine.Processed(); p < 1_000_000 {
		t.Fatalf("reference run processed %d events, want >= 1e6 (recalibrate the config)", p)
	}
	if seq.Sched.SpeculativeCommits == 0 || seq.Sched.CacheShortCircuits == 0 {
		t.Fatalf("saturated run did not exercise the cached/speculative paths: %+v", seq.Sched)
	}
	cells := [][2]int{
		{1, 1}, {1, 2}, {1, 0 /* = NumVCs */},
		{2, 1}, {2, 2}, {2, 0},
		{4, 1}, {4, 2}, {4, 0},
	}
	if raceDetectorOn {
		// Under the race detector each million-event run costs minutes, not
		// seconds; the full 9-cell matrix blows well past any reasonable
		// package timeout on a single core. Race coverage wants concurrency
		// shapes, not config breadth — keep the two most-concurrent cells at
		// full event volume and leave the exhaustive DeepEqual sweep to the
		// plain run, which executes every cell.
		cells = [][2]int{{2, 2}, {4, 0}}
	}
	for _, cell := range cells {
		workers, shards := cell[0], cell[1]
		res, st := runShardedWithPool(t, cfg, shards, workers)
		if st.parallelTicks == 0 {
			t.Fatalf("workers=%d shards=%d never entered the parallel telemetry pipeline",
				workers, shards)
		}
		if !reflect.DeepEqual(seq, res) {
			diffStudyResults(t, seq, res)
			t.Fatalf("workers=%d shards=%d diverged from sequential engine at scale",
				workers, shards)
		}
		ws := st.WindowStats()
		if ws.Barriers == 0 || ws.Barriers > ws.GlobalEvents {
			t.Fatalf("workers=%d shards=%d: Barriers = %d with %d globals — batched drain accounting broke",
				workers, shards, ws.Barriers, ws.GlobalEvents)
		}
	}
}

// diffStudyResults narrows a DeepEqual failure to the first diverging part.
func diffStudyResults(t *testing.T, a, b *StudyResult) {
	t.Helper()
	for i := range a.Jobs {
		if i < len(b.Jobs) && !reflect.DeepEqual(a.Jobs[i], b.Jobs[i]) {
			t.Errorf("first diverging job %d:\n%+v\nvs\n%+v", a.Jobs[i].Spec.ID, a.Jobs[i], b.Jobs[i])
			return
		}
	}
	if !reflect.DeepEqual(a.Telemetry, b.Telemetry) {
		t.Errorf("telemetry recorders diverged")
	}
	if !reflect.DeepEqual(a.OccupancySamples, b.OccupancySamples) {
		t.Errorf("occupancy series diverged")
	}
	if a.Sched != b.Sched {
		t.Errorf("scheduler stats diverged: %+v vs %+v", a.Sched, b.Sched)
	}
}

// TestPoolStreamingEquivalence checks that StreamJobs (the sweep's path)
// composes with the pool: streamed-and-released results must match the
// non-streaming run's scalar fields under parallel telemetry.
func TestPoolStreamingEquivalence(t *testing.T) {
	lowerTickGate(t)
	cfg := parallelConfig()
	cfg.Workload.TotalJobs = 300
	plain, _ := runWithPool(t, cfg, 0)

	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := par.NewPool(4)
	defer pool.Close()
	st.SetPool(pool)
	streamed := 0
	st.StreamJobs(func(i int, r *JobResult) {
		if !reflect.DeepEqual(plain.Jobs[i].Attempts, r.Attempts) {
			t.Errorf("job %d streamed attempts diverged", r.Spec.ID)
		}
		streamed++
	})
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if streamed == 0 {
		t.Fatal("observer never called")
	}
	if st.parallelTicks == 0 {
		t.Fatal("pooled run never entered the parallel telemetry pipeline")
	}
	for i := range res.Jobs {
		if res.Jobs[i].MeanUtil != plain.Jobs[i].MeanUtil {
			t.Fatalf("job %d MeanUtil diverged under streaming+pool", res.Jobs[i].Spec.ID)
		}
	}
}
