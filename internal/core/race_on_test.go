//go:build race

package core

// raceDetectorOn reports whether the test binary was built with -race.
// The detector multiplies the cost of a million-event run by roughly an
// order of magnitude, so the scale tests keep full event volume but trim
// their config matrix to the most-concurrent cells when it is on.
const raceDetectorOn = true
