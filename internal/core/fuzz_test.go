package core

import (
	"reflect"
	"testing"

	"philly/internal/faults"
)

// FuzzParseFaultsSpec drives both CLI spec parsers — faults.ParseSpec and
// ParseCheckpointSpec — with arbitrary input. The oracle is the canonical
// rendering: whenever a spec is accepted, its canonical form must (a) be
// accepted too, (b) parse to a config DeepEqual to the original's, and
// (c) be a fixed point of canonicalization. Rejection must come back as an
// error, never a panic.
func FuzzParseFaultsSpec(f *testing.F) {
	for _, s := range []string{
		"none", "all", "server", "rack", "cluster",
		"server+rack", "rack+cluster", "server+rack+cluster", "all+server",
		"all:4", "server:0.5", "none:3", "cluster:1e-3", "all:0x1p-2",
		"off", "30", "30:10", "30:10:60", "0.5:0:0", "1e3:1:2",
		"", ":", "bogus", "all:", ":2", "30:10:60:5", "30:nan", "inf",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if cfg, err := faults.ParseSpec(spec); err == nil {
			canon, cerr := faults.CanonicalSpec(spec)
			if cerr != nil {
				t.Fatalf("faults: %q parsed but did not canonicalize: %v", spec, cerr)
			}
			cfg2, err2 := faults.ParseSpec(canon)
			if err2 != nil {
				t.Fatalf("faults: canonical %q of %q did not re-parse: %v", canon, spec, err2)
			}
			if !reflect.DeepEqual(cfg, cfg2) {
				t.Fatalf("faults: canonical %q of %q parsed to a different config:\n%+v\n%+v", canon, spec, cfg, cfg2)
			}
			if canon2, _ := faults.CanonicalSpec(canon); canon2 != canon {
				t.Fatalf("faults: canonical form is not a fixed point: %q -> %q -> %q", spec, canon, canon2)
			}
		} else if _, cerr := faults.CanonicalSpec(spec); cerr == nil {
			t.Fatalf("faults: %q rejected by ParseSpec but canonicalized", spec)
		}
		if cfg, err := ParseCheckpointSpec(spec); err == nil {
			canon, cerr := CanonicalCheckpointSpec(spec)
			if cerr != nil {
				t.Fatalf("checkpoint: %q parsed but did not canonicalize: %v", spec, cerr)
			}
			cfg2, err2 := ParseCheckpointSpec(canon)
			if err2 != nil {
				t.Fatalf("checkpoint: canonical %q of %q did not re-parse: %v", canon, spec, err2)
			}
			if cfg != cfg2 {
				t.Fatalf("checkpoint: canonical %q of %q parsed to a different config:\n%+v\n%+v", canon, spec, cfg, cfg2)
			}
			if canon2, _ := CanonicalCheckpointSpec(canon); canon2 != canon {
				t.Fatalf("checkpoint: canonical form is not a fixed point: %q -> %q -> %q", spec, canon, canon2)
			}
		} else if _, cerr := CanonicalCheckpointSpec(spec); cerr == nil {
			t.Fatalf("checkpoint: %q rejected by ParseCheckpointSpec but canonicalized", spec)
		}
	})
}
