// Package core is the study driver: it wires the workload generator, the
// cluster, the scheduler, the performance model, the telemetry recorder,
// and the log pipeline into one deterministic discrete-event simulation,
// and produces the StudyResult that internal/analysis turns into every
// table and figure of the paper.
//
// The control flow mirrors the lifecycle of Figure 1: jobs arrive into
// per-VC queues; the scheduler gang-schedules them under locality
// constraints; running jobs emit per-minute telemetry; attempts fail per
// the failure plan, producing stderr logs that are classified back to root
// causes; failed jobs are retried a fixed number of times; preempted jobs
// resume from checkpoints.
package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"philly/internal/cluster"
	"philly/internal/faults"
	"philly/internal/perfmodel"
	"philly/internal/scheduler"
	"philly/internal/simulation"
	"philly/internal/workload"
)

// Config parameterizes a study run.
type Config struct {
	// Seed drives every random stream; equal seeds give identical results.
	Seed uint64
	// Cluster is the machine inventory.
	Cluster cluster.Config
	// Workload generates the job trace.
	Workload workload.Config
	// Scheduler configures the scheduling policy.
	Scheduler scheduler.Config
	// Util calibrates the GPU-utilization model.
	Util perfmodel.UtilParams
	// Host calibrates the host-resource model.
	Host perfmodel.HostParams
	// TelemetryInterval is the hardware-counter sampling period (the paper
	// uses per-minute Ganglia reports).
	TelemetryInterval simulation.Time
	// CheckpointRetention is the fraction of in-progress work retained
	// when a checkpointing job is preempted and later resumed.
	CheckpointRetention float64
	// HorizonFactor stops the simulation at Workload.Duration multiplied
	// by this factor, so late-arriving jobs get time to drain.
	HorizonFactor float64
	// MaxEvents bounds the event loop as a runaway guard.
	MaxEvents uint64
	// GenerateLogs routes failure attribution through synthetic stderr
	// logs and the signature classifier (the Table 7 path). Disabling it
	// makes the classified reason equal to the planned one.
	GenerateLogs bool

	// AdaptiveRetry enables the paper's §5 guideline of classifying
	// failures online and not retrying deterministic ones ("the scheduler
	// could stop retrying for failure categories like incorrect inputs and
	// continue retrying for network timeouts"). Off by default — Philly as
	// measured retries a fixed number of times.
	AdaptiveRetry bool

	// Defrag configures §5's migration-based defragmentation proposal.
	Defrag DefragConfig

	// Faults configures the correlated-outage engine (internal/faults):
	// server/rack/cluster failure domains with per-domain MTBF/MTTR plus
	// maintenance windows. Disabled by default; when disabled, results are
	// bit-identical to builds without the engine.
	Faults faults.Config

	// Checkpoint configures the periodic checkpoint/restore cost model
	// applied to outage kills (Kokolis et al. 2024). Orthogonal to
	// CheckpointRetention, which models preemption resume.
	Checkpoint CheckpointConfig
}

// CheckpointConfig is the per-job checkpoint/restore cost model: jobs that
// checkpoint at all (Train.CheckpointEveryEpochs > 0) write a checkpoint
// every Interval of clean wall time, stretching the attempt by
// WriteSeconds per interval, so an attempt killed by an infrastructure
// outage loses only the work since its last checkpoint and pays
// RestoreSeconds before making progress again.
type CheckpointConfig struct {
	// Enabled turns the cost model on. Off by default: outage kills then
	// lose the whole attempt, like the failure plan's own retries.
	Enabled bool
	// Interval is the wall time between periodic checkpoints.
	Interval simulation.Time
	// WriteSeconds is the wall-time cost of writing one checkpoint.
	WriteSeconds float64
	// RestoreSeconds is the wall-time cost of restoring from one.
	RestoreSeconds float64
}

// DefaultCheckpointConfig returns the calibrated but disabled cost model:
// a checkpoint every 30 minutes costing 30s to write and 120s to restore.
func DefaultCheckpointConfig() CheckpointConfig {
	return CheckpointConfig{
		Enabled:        false,
		Interval:       30 * simulation.Minute,
		WriteSeconds:   30,
		RestoreSeconds: 120,
	}
}

// ParseCheckpointSpec parses a CLI checkpoint spec: "off" disables the
// cost model; "MIN[:WRITE_S[:RESTORE_S]]" enables it with a checkpoint
// interval of MIN minutes and optional write/restore costs in seconds
// (defaults from DefaultCheckpointConfig). Errors are descriptive, for
// fail-fast flag validation.
func ParseCheckpointSpec(spec string) (CheckpointConfig, error) {
	min, w, r, off, err := parseCheckpointParts(spec)
	if err != nil {
		return CheckpointConfig{}, err
	}
	cfg := DefaultCheckpointConfig()
	if off {
		return cfg, nil
	}
	cfg.Enabled = true
	cfg.Interval = simulation.FromMinutes(min)
	cfg.WriteSeconds = w
	cfg.RestoreSeconds = r
	return cfg, nil
}

// CanonicalCheckpointSpec parses spec and re-renders it in canonical form:
// "off", or the fully explicit "MIN:WRITE_S:RESTORE_S" with each number as
// the shortest decimal that round-trips (elided costs are filled in from
// DefaultCheckpointConfig). The canonical form is a fixed point and parses
// to a CheckpointConfig identical to the original spec's.
func CanonicalCheckpointSpec(spec string) (string, error) {
	min, w, r, off, err := parseCheckpointParts(spec)
	if err != nil {
		return "", err
	}
	if off {
		return "off", nil
	}
	g := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	return g(min) + ":" + g(w) + ":" + g(r), nil
}

// parseCheckpointParts decodes a checkpoint spec to its raw numbers, with
// defaults applied. ParseCheckpointSpec and CanonicalCheckpointSpec share it
// so the canonical rendering can never drift from what the parser accepted.
// All three numbers must be finite: a NaN cost would silently poison every
// downstream duration sum.
func parseCheckpointParts(spec string) (min, w, r float64, off bool, err error) {
	def := DefaultCheckpointConfig()
	w, r = def.WriteSeconds, def.RestoreSeconds
	if spec == "off" {
		return 0, w, r, true, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return 0, 0, 0, false, fmt.Errorf("core: checkpoint spec %q: want off or MIN[:WRITE_S[:RESTORE_S]]", spec)
	}
	min, perr := strconv.ParseFloat(parts[0], 64)
	if perr != nil || min <= 0 || math.IsInf(min, 0) {
		return 0, 0, 0, false, fmt.Errorf("core: checkpoint spec %q: interval must be a positive number of minutes", spec)
	}
	if simulation.FromMinutes(min) <= 0 {
		return 0, 0, 0, false, fmt.Errorf("core: checkpoint spec %q: interval rounds to zero seconds", spec)
	}
	if len(parts) > 1 {
		w, perr = strconv.ParseFloat(parts[1], 64)
		if perr != nil || w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return 0, 0, 0, false, fmt.Errorf("core: checkpoint spec %q: write cost must be a non-negative number of seconds", spec)
		}
	}
	if len(parts) > 2 {
		r, perr = strconv.ParseFloat(parts[2], 64)
		if perr != nil || r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return 0, 0, 0, false, fmt.Errorf("core: checkpoint spec %q: restore cost must be a non-negative number of seconds", spec)
		}
	}
	return min, w, r, false, nil
}

// DefragConfig controls checkpoint-migration of small jobs to consolidate
// free GPUs into whole servers (§5: "support for job migration to
// defragment the cluster, especially applied to smaller jobs").
type DefragConfig struct {
	// Enabled turns the defragmenter on. Off by default: the measured
	// Philly had no migration support.
	Enabled bool
	// Interval is how often the defragmenter sweeps.
	Interval simulation.Time
	// MaxWidth bounds which jobs may be migrated (the paper suggests
	// applying migration to smaller jobs).
	MaxWidth int
	// MaxMovesPerSweep bounds churn per sweep.
	MaxMovesPerSweep int
	// PauseSeconds is the wall-time a migrated job loses to the
	// checkpoint-restore cycle.
	PauseSeconds float64
}

// DefaultDefragConfig returns sensible parameters for the ablation.
func DefaultDefragConfig() DefragConfig {
	return DefragConfig{
		Enabled:          false,
		Interval:         10 * simulation.Minute,
		MaxWidth:         2,
		MaxMovesPerSweep: 8,
		PauseSeconds:     60,
	}
}

// DefaultConfig returns a paper-scale configuration: ~2050 GPUs, 96,260
// jobs over 75 days, 14 VCs. The GPU count is chosen so the trace's total
// GPU-time demand (implied by Table 7's failure budget and Table 6's
// status shares) runs the cluster at the high occupancy the paper
// describes.
func DefaultConfig() Config {
	racks := make([]cluster.RackConfig, 0, 21)
	for i := 0; i < 15; i++ {
		racks = append(racks, cluster.RackConfig{Servers: 16, SKU: cluster.SKU8GPU})
	}
	for i := 0; i < 2; i++ {
		racks = append(racks, cluster.RackConfig{Servers: 32, SKU: cluster.SKU2GPU})
	}
	wl := workload.DefaultConfig()
	return Config{
		Seed:                1,
		Cluster:             cluster.Config{Racks: racks},
		Workload:            wl,
		Scheduler:           scheduler.DefaultConfig(),
		Util:                perfmodel.DefaultUtilParams(),
		Host:                perfmodel.DefaultHostParams(),
		TelemetryInterval:   simulation.Minute,
		CheckpointRetention: 0.9,
		HorizonFactor:       1.6,
		MaxEvents:           500_000_000,
		GenerateLogs:        true,
		Defrag:              DefaultDefragConfig(),
		Faults:              faults.DefaultConfig(),
		Checkpoint:          DefaultCheckpointConfig(),
	}
}

// MediumConfig returns a quarter-scale paper configuration (~2300 GPUs,
// ~24k jobs over ~19 days) with a one-week runtime cap so the shortened
// window still drains. It is the shared definition behind every CLI's
// "-scale medium": the divisors are calibration, and live in one place.
func MediumConfig() Config {
	cfg := DefaultConfig()
	cfg.Workload.TotalJobs /= 4
	cfg.Workload.Duration /= 4
	cfg.Workload.MaxRuntimeMinutes = 7 * 24 * 60
	return cfg
}

// SmallConfig returns a reduced configuration for tests and examples:
// ~230 GPUs, a few thousand jobs over 8 days, same distributions (so the
// paper's shapes still emerge), minute-level telemetry. The runtime cap is
// tightened so the trace drains within the horizon.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cluster = cluster.Config{Racks: []cluster.RackConfig{
		{Servers: 9, SKU: cluster.SKU8GPU},
		{Servers: 9, SKU: cluster.SKU8GPU},
		{Servers: 9, SKU: cluster.SKU8GPU},
		{Servers: 12, SKU: cluster.SKU2GPU},
	}}
	cfg.Workload.TotalJobs = 3300
	cfg.Workload.Duration = 8 * simulation.Day
	cfg.Workload.MaxRuntimeMinutes = 2 * 24 * 60
	cfg.Workload.VCs = smallVCs()
	cfg.HorizonFactor = 2.0
	return cfg
}

// smallVCs scales the default 14-VC quota set down to a ~230-GPU cluster,
// keeping the heterogeneous load factors (see workload.DefaultVCs).
func smallVCs() []workload.VirtualCluster {
	quotas := []int{90, 72, 55, 44, 24, 20, 18, 17, 24, 21, 5, 5, 4, 3}
	factors := []float64{0.5, 0.5, 0.5, 0.5, 1.43, 0.8, 0.8, 0.8, 0.5, 0.5, 1.33, 1.33, 1.33, 1.33}
	vcs := make([]workload.VirtualCluster, len(quotas))
	for i, q := range quotas {
		vcs[i] = workload.VirtualCluster{Name: fmt.Sprintf("vc%d", i+1), QuotaGPUs: q, LoadFactor: factors[i]}
	}
	return vcs
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if err := c.Scheduler.Validate(); err != nil {
		return err
	}
	if err := c.Util.Validate(); err != nil {
		return err
	}
	if c.TelemetryInterval <= 0 {
		return fmt.Errorf("core: TelemetryInterval must be positive")
	}
	if c.CheckpointRetention < 0 || c.CheckpointRetention > 1 {
		return fmt.Errorf("core: CheckpointRetention %v out of [0, 1]", c.CheckpointRetention)
	}
	if c.HorizonFactor < 1 {
		return fmt.Errorf("core: HorizonFactor must be >= 1, got %v", c.HorizonFactor)
	}
	if c.MaxEvents == 0 {
		return fmt.Errorf("core: MaxEvents must be positive")
	}
	if c.Defrag.Enabled {
		if c.Defrag.Interval <= 0 {
			return fmt.Errorf("core: defrag interval must be positive")
		}
		if c.Defrag.MaxWidth <= 0 || c.Defrag.MaxMovesPerSweep <= 0 {
			return fmt.Errorf("core: defrag width and move bounds must be positive")
		}
		if c.Defrag.PauseSeconds < 0 {
			return fmt.Errorf("core: defrag pause must be >= 0")
		}
	}
	if err := c.Faults.Validate(len(c.Cluster.Racks)); err != nil {
		return err
	}
	if c.Checkpoint.Enabled {
		if c.Checkpoint.Interval <= 0 {
			return fmt.Errorf("core: checkpoint interval must be positive, got %v", c.Checkpoint.Interval)
		}
		if c.Checkpoint.WriteSeconds < 0 {
			return fmt.Errorf("core: checkpoint write cost must be >= 0, got %v", c.Checkpoint.WriteSeconds)
		}
		if c.Checkpoint.RestoreSeconds < 0 {
			return fmt.Errorf("core: checkpoint restore cost must be >= 0, got %v", c.Checkpoint.RestoreSeconds)
		}
	}
	return nil
}
