package core

// This file is the federation support surface: the member-side hooks
// internal/federation drives at fleet window barriers. Everything here
// executes in global (barrier) context — never from the member's own event
// callbacks — and mutates only this study's state, so the fleet's
// determinism argument (members share nothing between barriers) is
// preserved by construction.

import (
	"fmt"
	"sort"

	"philly/internal/cluster"
	"philly/internal/scheduler"
	"philly/internal/simulation"
	"philly/internal/workload"
)

// injectIDBase is where injected (spillover) job IDs start. Generated jobs
// are dense from 1, so the spaces cannot collide and every derived RNG
// stream — keyed (seed, label, jobID) — stays unique.
const injectIDBase int64 = 1 << 30

// OffloadCandidate describes one queued job eligible for spillover: it has
// never started an attempt here, so moving it is equivalent to having
// routed it to the other cluster at admission.
type OffloadCandidate struct {
	// ID is the job's ID in this study.
	ID cluster.JobID
	// GPUs is the gang width (the receiving member must fit it).
	GPUs int
	// Waited is the job's current queueing delay.
	Waited simulation.Time
}

// OffloadCandidates lists jobs queued and never started whose queueing
// delay is at least minWait, longest-waiting first (ties by ID), capped at
// max. Deterministic: it reads only scheduler and study state settled at
// the current barrier.
func (s *Study) OffloadCandidates(now, minWait simulation.Time, max int) []OffloadCandidate {
	var out []OffloadCandidate
	// EachQueued's walk order is irrelevant: the sort below imposes a
	// total order, so the cheap no-alloc iteration is safe.
	s.sched.EachQueued(func(j *scheduler.Job) {
		if j.State != scheduler.StateQueued {
			return
		}
		js := s.states[j.ID]
		if js == nil || js.running || js.attemptOpen || js.res.Attempts != nil ||
			js.res.Offloaded || js.res.Completed || js.attemptIdx != 0 {
			return
		}
		waited := now - j.EnqueuedAt
		if waited < minWait {
			return
		}
		out = append(out, OffloadCandidate{ID: j.ID, GPUs: j.GPUs, Waited: waited})
	})
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Waited != out[b].Waited {
			return out[a].Waited > out[b].Waited
		}
		return out[a].ID < out[b].ID
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Offload withdraws a queued, never-started job from this study: it leaves
// the scheduler queue, its result is marked Offloaded (excluded from this
// cluster's analysis like an incomplete job), and its spec is returned for
// re-injection into another member. The job's telemetry and log streams
// were never drawn, so the withdrawal perturbs no other stream.
func (s *Study) Offload(id cluster.JobID, now simulation.Time) (workload.JobSpec, error) {
	js := s.states[id]
	if js == nil {
		return workload.JobSpec{}, fmt.Errorf("core: offload of unknown job %d", id)
	}
	if js.running || js.attemptOpen || js.res.Attempts != nil || js.res.Offloaded || js.res.Completed {
		return workload.JobSpec{}, fmt.Errorf("core: job %d is not a never-started queued job; cannot offload", id)
	}
	if err := s.sched.WithdrawJob(js.sched); err != nil {
		return workload.JobSpec{}, fmt.Errorf("core: offload job %d: %w", id, err)
	}
	js.res.Offloaded = true
	// The job will never finalize here. The telemetry ticker and pump wake
	// events notice the drained pending count on their own, exactly like a
	// normal drain — no cross-context Stop is needed.
	s.pending--
	return *js.spec, nil
}

// Inject adds a spillover job from another member to this study. The spec
// keeps its training plan and failure plan (the work is the work), but is
// re-identified into this study's injected-ID space, re-timed to submit
// now, and must already carry a VC that exists here (see SpilloverVC). The
// actual submission runs as a member-lane event at the current time, so
// the scheduler observes it with the member clock at the barrier instant —
// injections at one barrier are processed in injection order.
//
// Must be called after Arm, from global (barrier) context.
func (s *Study) Inject(spec workload.JobSpec, now simulation.Time) (cluster.JobID, error) {
	return s.inject(spec, now, nil)
}

// InjectResumed is Inject for a checkpoint-migrated job (see Evacuate): the
// injected copy resumes from the donor's checkpoint — remainingSec of ideal
// work instead of a fresh plan — and pays penaltySec of wall time (restore
// plus data gravity) before its first episode makes progress. The copy is
// marked Spillover and Resumed.
//
// Must be called after Arm, from global (barrier) context.
func (s *Study) InjectResumed(spec workload.JobSpec, remainingSec, penaltySec float64, now simulation.Time) (cluster.JobID, error) {
	if remainingSec <= 0 {
		return 0, fmt.Errorf("core: inject resumed job with %v remaining seconds", remainingSec)
	}
	if penaltySec < 0 {
		return 0, fmt.Errorf("core: inject resumed job with negative penalty %v", penaltySec)
	}
	return s.inject(spec, now, func(js *jobState) {
		js.remainingWorkSec = remainingSec
		js.sched.RemainingSeconds = remainingSec
		js.pendingRestoreSec = penaltySec
		js.res.Resumed = true
	})
}

// inject is the shared body of Inject and InjectResumed; setup, when
// non-nil, adjusts the fresh jobState before it is registered.
func (s *Study) inject(spec workload.JobSpec, now simulation.Time, setup func(*jobState)) (cluster.JobID, error) {
	if s.horizon == 0 {
		return 0, fmt.Errorf("core: inject before Arm")
	}
	if now > s.horizon {
		// The submission event would sit past this study's run bound and
		// never execute — the job would be silently lost.
		return 0, fmt.Errorf("core: inject at %v past the study horizon %v", now, s.horizon)
	}
	shard, ok := s.shardOf[spec.VC]
	if !ok {
		return 0, fmt.Errorf("core: inject into unknown VC %q", spec.VC)
	}
	if spec.GPUs <= 0 || spec.GPUs > s.cluster.TotalGPUs() {
		return 0, fmt.Errorf("core: inject job of %d GPUs into a %d-GPU cluster",
			spec.GPUs, s.cluster.TotalGPUs())
	}
	s.injectSeq++
	id := cluster.JobID(injectIDBase + s.injectSeq)
	spec.ID = int64(id)
	spec.SubmitAt = now
	res := &JobResult{Spec: spec, Spillover: true}
	s.extra = append(s.extra, res)
	js := &jobState{
		spec:             &res.Spec,
		res:              res,
		idx:              len(s.results) + len(s.extra) - 1,
		remainingWorkSec: s.cleanWorkSeconds(&res.Spec),
		runIdx:           -1,
		stagedAttempt:    -1,
		shard:            shard,
		sched:            scheduler.NewJob(id, spec.VC, spec.GPUs, now),
	}
	js.sched.RemainingSeconds = js.remainingWorkSec
	if setup != nil {
		setup(js)
	}
	s.states[id] = js
	s.pending++
	s.engine.AtShard(js.shard, now, func() {
		if err := s.sched.Submit(js.sched, s.engine.Now()); err != nil {
			panic(fmt.Sprintf("core: submit injected job %d: %v", js.spec.ID, err))
		}
		s.pump()
	})
	return id, nil
}

// CheckpointRestoreSeconds exposes this member's restore cost (0 when the
// cost model is off) for federation's evacuation pricing.
func (s *Study) CheckpointRestoreSeconds() float64 {
	if !s.cfg.Checkpoint.Enabled {
		return 0
	}
	return s.cfg.Checkpoint.RestoreSeconds
}

// EvacuationCandidate describes one restorable job a checkpoint migration
// could move to another member.
type EvacuationCandidate struct {
	// ID is the job's ID in this study.
	ID cluster.JobID
	// GPUs is the gang width (the receiving member must fit it).
	GPUs int
	// RemainingSeconds is the checkpointed attempt's remaining ideal work.
	RemainingSeconds float64
}

// EvacuationCandidates lists jobs restorable from a checkpoint: under an
// enabled checkpoint policy, on their final (clean) attempt with work
// remaining, having started at least once here — running now, or queued
// with prior progress (for example outage-killed and waiting for capacity
// that no longer exists). Widest gang first (ties by ID), capped at max:
// evacuating the widest jobs frees the donor's scarce surviving capacity
// fastest. Deterministic: the sort imposes a total order over barrier-
// settled state.
func (s *Study) EvacuationCandidates(max int) []EvacuationCandidate {
	if !s.cfg.Checkpoint.Enabled {
		return nil
	}
	var out []EvacuationCandidate
	for id, js := range s.states {
		if js.res.Offloaded || js.res.Evacuated || js.res.Completed {
			continue
		}
		if !js.attemptOpen && js.res.Attempts == nil {
			continue // never started: plain spillover's business
		}
		if js.currentFailure() != nil {
			continue // mid-failure-plan: no clean checkpoint to restore
		}
		if js.spec.Train.CheckpointEveryEpochs == 0 || js.remainingWorkSec <= 0 {
			continue
		}
		out = append(out, EvacuationCandidate{ID: id, GPUs: js.spec.GPUs, RemainingSeconds: js.remainingWorkSec})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].GPUs != out[b].GPUs {
			return out[a].GPUs > out[b].GPUs
		}
		return out[a].ID < out[b].ID
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Evacuate checkpoint-migrates a restorable job out of this study. A
// running attempt is cut at its last periodic checkpoint with the same
// salvage accounting as an outage kill (the un-checkpointed tail counts as
// lost GPU time here); a queued one is simply withdrawn. The result shell
// stays, marked Evacuated — every GPU-hour the job burned here remains
// charged here — and the open attempt record is closed. The returned spec
// has its consumed failure plan stripped (the current attempt is clean by
// construction), ready for InjectResumed on the receiving member together
// with the returned remaining ideal work.
//
// Must be called from global (barrier) context.
func (s *Study) Evacuate(id cluster.JobID, now simulation.Time) (workload.JobSpec, float64, error) {
	js := s.states[id]
	if js == nil {
		return workload.JobSpec{}, 0, fmt.Errorf("core: evacuate unknown job %d", id)
	}
	if js.res.Offloaded || js.res.Evacuated || js.res.Completed ||
		js.currentFailure() != nil || js.remainingWorkSec <= 0 ||
		(!js.attemptOpen && js.res.Attempts == nil) {
		return workload.JobSpec{}, 0, fmt.Errorf("core: job %d is not evacuation-restorable", id)
	}
	if js.running {
		elapsed := float64(now - js.episodeStart)
		js.attemptRunSec += elapsed
		s.accountEpisode(js, elapsed)
		retainedWall := 0.0
		if ck := s.cfg.Checkpoint; ck.Enabled && js.spec.Train.CheckpointEveryEpochs > 0 {
			retainedWall = float64(ck.Interval) * float64(int(elapsed/float64(ck.Interval)))
		}
		done := retainedWall / js.slowdown
		js.remainingWorkSec -= done
		if js.remainingWorkSec < 0 {
			js.remainingWorkSec = 0
		}
		lost := (elapsed - retainedWall) / 60 * float64(js.spec.GPUs)
		js.res.LostGPUMinutes += lost
		s.outStats.LostGPUHours += lost / 60
		js.running = false
		js.finishSeq++ // invalidate the scheduled finish pair
		s.removeRunning(js)
		if err := s.sched.ReleaseJob(js.sched, now); err != nil {
			panic(fmt.Sprintf("core: evacuate release job %d: %v", id, err))
		}
		// The freed gang may unblock queued jobs; pump on this member's
		// lane like an injection, so the wake happens in member context.
		s.engine.AtShard(js.shard, now, func() { s.pump() })
	} else {
		if err := s.sched.WithdrawJob(js.sched); err != nil {
			return workload.JobSpec{}, 0, fmt.Errorf("core: evacuate job %d: %w", id, err)
		}
	}
	// Close the open attempt record: the rest of the attempt runs remotely.
	if js.attemptOpen && len(js.res.Attempts) > 0 {
		att := &js.res.Attempts[len(js.res.Attempts)-1]
		if att.EndAt == 0 {
			att.EndAt = now
			att.RuntimeMinutes = js.attemptRunSec / 60
		}
	}
	js.res.Evacuated = true
	s.pending--
	spec := *js.spec
	// The current attempt is clean, so every planned failing attempt has
	// already been consumed here; the receiving member must not replay them.
	spec.Plan.FailedAttempts = nil
	remaining := js.remainingWorkSec
	if remaining < 1 {
		remaining = 1
	}
	return spec, remaining, nil
}

// SpilloverVC picks the virtual cluster an injected job should land in:
// the VC with the most free quota (quota minus current usage), ties broken
// by the scheduler's VC walk order. Deterministic at a barrier.
func (s *Study) SpilloverVC() string {
	best, bestRoom := "", 0
	for i, name := range s.sched.VCNames() {
		room := s.sched.VCQuota(name) - s.sched.VCUsage(name)
		if i == 0 || room > bestRoom {
			best, bestRoom = name, room
		}
	}
	return best
}

// FreeGPUs returns the cluster's currently unallocated GPU count.
func (s *Study) FreeGPUs() int { return s.cluster.FreeGPUs() }

// TotalGPUs returns the cluster's GPU capacity.
func (s *Study) TotalGPUs() int { return s.cluster.TotalGPUs() }

// RebalanceVCQuotas redistributes this cluster's total VC quota pool
// proportionally to instantaneous demand (GPUs in use plus GPUs requested
// by queued jobs, per VC), with a floor of one GPU per VC and the pool
// total held constant via largest-remainder rounding (ties by VC order).
// It returns how many VC quotas changed. The federation's fleet-wide
// rebalancing tick calls it for every member at one window barrier, so the
// whole fleet re-shares at one consistent instant.
func (s *Study) RebalanceVCQuotas() int {
	names := s.sched.VCNames()
	pool, total := 0, 0
	demands := make([]int, len(names))
	for i, n := range names {
		pool += s.sched.VCQuota(n)
		d := s.sched.VCUsage(n) + s.sched.QueuedGPUDemand(n)
		demands[i] = d
		total += d
	}
	if total == 0 || pool < len(names) {
		return 0
	}
	avail := pool - len(names) // everyone keeps a floor of 1
	quotas := make([]int, len(names))
	type remainder struct {
		idx  int
		frac float64
	}
	rems := make([]remainder, len(names))
	assigned := 0
	for i, d := range demands {
		exact := float64(avail) * float64(d) / float64(total)
		base := int(exact)
		quotas[i] = 1 + base
		assigned += base
		rems[i] = remainder{i, exact - float64(base)}
	}
	// Stable sort: equal fractional parts keep VC order, so the leftover
	// distribution is a pure function of the demand vector.
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; k < avail-assigned; k++ {
		quotas[rems[k].idx]++
	}
	changed := 0
	for i, n := range names {
		if quotas[i] == s.sched.VCQuota(n) {
			continue
		}
		if err := s.sched.SetQuota(n, quotas[i]); err != nil {
			panic(fmt.Sprintf("core: rebalance quota for %s: %v", n, err))
		}
		changed++
	}
	return changed
}
