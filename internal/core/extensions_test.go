package core

import (
	"testing"

	"philly/internal/failures"
)

// extCfg is a small, contended configuration for the §5-extension tests.
func extCfg() Config {
	cfg := SmallConfig()
	cfg.Workload.TotalJobs = 1200
	cfg.Workload.Duration = SmallConfig().Workload.Duration / 2
	return cfg
}

func TestAdaptiveRetryCutsDeterministicFailures(t *testing.T) {
	base := extCfg()
	stBase, err := NewStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := stBase.Run()
	if err != nil {
		t.Fatal(err)
	}

	adaptive := extCfg()
	adaptive.AdaptiveRetry = true
	stA, err := NewStudy(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := stA.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic unsuccessful jobs make exactly one attempt under
	// adaptive retry.
	cut := 0
	for i := range resA.Jobs {
		j := &resA.Jobs[i]
		if !j.Completed || j.Outcome != failures.Unsuccessful {
			continue
		}
		det := j.Spec.Plan.FailedAttempts[0].Reason.Deterministic
		if det && len(j.Attempts) == 1 {
			cut++
		}
		if det && len(j.Attempts) > 1 {
			// Only a misclassified log (rare) may slip through.
			if j.Attempts[0].ClassifiedReason == j.Attempts[0].PlannedReason {
				t.Fatalf("job %d: deterministic failure retried despite correct classification", j.Spec.ID)
			}
		}
	}
	if cut == 0 {
		t.Fatal("adaptive retry never cut a deterministic failure")
	}

	// GPU time burnt on failed attempts must drop.
	wasted := func(res *StudyResult) float64 {
		var w float64
		for i := range res.Jobs {
			for _, a := range res.Jobs[i].Attempts {
				if a.Failed {
					w += a.RuntimeMinutes * float64(res.Jobs[i].Spec.GPUs)
				}
			}
		}
		return w
	}
	wb, wa := wasted(resBase), wasted(resA)
	if wa >= wb {
		t.Errorf("adaptive retry did not reduce failure GPU-time: %.0f -> %.0f", wb, wa)
	}
	// The planner dooms the same jobs either way; outcomes must agree.
	for i := range resA.Jobs {
		if resA.Jobs[i].Completed && resBase.Jobs[i].Completed &&
			resA.Jobs[i].Outcome != resBase.Jobs[i].Outcome {
			t.Fatalf("job %d outcome changed under adaptive retry", resA.Jobs[i].Spec.ID)
		}
	}
}

func TestDefragMigratesAndPreservesInvariants(t *testing.T) {
	cfg := extCfg()
	cfg.Defrag = DefaultDefragConfig()
	cfg.Defrag.Enabled = true
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched.Migrations == 0 {
		t.Fatal("defragmenter never migrated a job")
	}
	// Every job still completes consistently.
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.Completed {
			continue
		}
		if j.Outcome != j.Spec.Plan.Outcome {
			t.Fatalf("job %d outcome %v != planned %v", j.Spec.ID, j.Outcome, j.Spec.Plan.Outcome)
		}
		if j.RunMinutes <= 0 {
			t.Fatalf("job %d has no runtime", j.Spec.ID)
		}
		for _, a := range j.Attempts {
			if a.EndAt < a.StartAt {
				t.Fatalf("job %d attempt ordering broken", j.Spec.ID)
			}
		}
	}
}

func TestDefragConfigValidation(t *testing.T) {
	cfg := SmallConfig()
	cfg.Defrag.Enabled = true
	cfg.Defrag.Interval = 0
	if err := cfg.Validate(); err == nil {
		t.Error("want error for zero defrag interval")
	}
	cfg = SmallConfig()
	cfg.Defrag.Enabled = true
	cfg.Defrag.Interval = 60
	cfg.Defrag.MaxWidth = 0
	if err := cfg.Validate(); err == nil {
		t.Error("want error for zero defrag width")
	}
	cfg = SmallConfig()
	cfg.Defrag = DefaultDefragConfig()
	cfg.Defrag.Enabled = true
	if err := cfg.Validate(); err != nil {
		t.Errorf("default defrag config rejected: %v", err)
	}
}
