package core

import (
	"reflect"
	"testing"

	"philly/internal/simulation"
	"philly/internal/stats"
	"philly/internal/workload"
)

// temporalConfig is parallelConfig under the diurnal phase program — the
// same sharding-guaranteed scale, with arrivals shaped by the pattern.
func temporalConfig(t *testing.T, preset string) Config {
	t.Helper()
	cfg := parallelConfig()
	p, err := workload.PresetPattern(preset)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload.Pattern = p
	return cfg
}

// TestPatternWorkerInvariance extends the worker-count invariance bar to
// pattern-driven workloads: a diurnal study must be bit-identical across
// worker counts {1, 2, 4}, and across the per-VC sharded event engine at
// shard counts {1, 2, NumVCs}, all against the sequential no-pool engine.
func TestPatternWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("invariance matrix is not a -short test")
	}
	lowerTickGate(t)
	for _, preset := range []string{workload.PatternDiurnal, workload.PatternBurst} {
		cfg := temporalConfig(t, preset)
		for _, seed := range []uint64{1, 42} {
			cfg.Seed = seed
			seq, _ := runWithPool(t, cfg, 0)
			for _, workers := range []int{1, 2, 4} {
				res, _ := runWithPool(t, cfg, workers)
				if !reflect.DeepEqual(seq, res) {
					diffStudyResults(t, seq, res)
					t.Fatalf("pattern=%s seed=%d workers=%d diverged from sequential engine",
						preset, seed, workers)
				}
			}
			for _, shards := range []int{1, 2, 0 /* = NumVCs */} {
				res, st := runShardedWithPool(t, cfg, shards, 4)
				if on, _ := st.EventSharded(); !on {
					t.Fatal("sharded run did not use the sharded engine")
				}
				if !reflect.DeepEqual(seq, res) {
					diffStudyResults(t, seq, res)
					t.Fatalf("pattern=%s seed=%d shards=%d diverged from sequential engine",
						preset, seed, shards)
				}
			}
		}
	}
}

// TestReplayWorkerInvariance extends the invariance bar to replay-driven
// workloads: a study running a fixed spec stream must be bit-identical
// across worker counts and event engines. The stream itself comes from the
// generator, so it carries real retry/failure structure.
func TestReplayWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("invariance matrix is not a -short test")
	}
	lowerTickGate(t)
	cfg := parallelConfig()
	cfg.Seed = 7
	g := stats.NewRNG(cfg.Seed).Split("workload")
	gen, err := workload.NewGenerator(cfg.Workload, g)
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.Generate(g)

	rcfg := parallelConfig()
	rcfg.Seed = 7
	rcfg.Workload.Replay = specs
	seq, _ := runWithPool(t, rcfg, 0)
	for _, workers := range []int{1, 2, 4} {
		res, _ := runWithPool(t, rcfg, workers)
		if !reflect.DeepEqual(seq, res) {
			diffStudyResults(t, seq, res)
			t.Fatalf("replay workers=%d diverged from sequential engine", workers)
		}
	}
	for _, shards := range []int{2, 0} {
		res, _ := runShardedWithPool(t, rcfg, shards, 4)
		if !reflect.DeepEqual(seq, res) {
			diffStudyResults(t, seq, res)
			t.Fatalf("replay shards=%d diverged from sequential engine", shards)
		}
	}
	// And the replay study reproduces the generative study it came from —
	// the engine-level half of the round-trip acceptance bar (the CSV half
	// lives in internal/trace).
	gcfg := parallelConfig()
	gcfg.Seed = 7
	want, _ := runWithPool(t, gcfg, 0)
	if !reflect.DeepEqual(want.Jobs, seq.Jobs) {
		t.Fatal("replaying the generator's own stream changed the job population")
	}
	if want.Sched != seq.Sched || want.SimEnd != seq.SimEnd {
		t.Fatal("replaying the generator's own stream changed the study trajectory")
	}
}

// TestDiurnalShiftsQueueDelay pins the reason the temporal engine exists:
// holding cluster, job count and mean load fixed, concentrating arrivals
// into a daily peak must push the queueing-delay tail well past the
// stationary pattern's — the paper's queues are a product of burstiness,
// not mean load.
func TestDiurnalShiftsQueueDelay(t *testing.T) {
	p95 := func(preset string) float64 {
		cfg := SmallConfig()
		cfg.Seed = 7
		p, err := workload.PresetPattern(preset)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workload.Pattern = p
		res, _ := runWithPool(t, cfg, 0)
		var delays []float64
		for i := range res.Jobs {
			if res.Jobs[i].Completed {
				delays = append(delays, res.Jobs[i].FirstQueueDelay.Minutes())
			}
		}
		if len(delays) == 0 {
			t.Fatalf("%s: no completed jobs", preset)
		}
		return quantile(delays, 0.95)
	}
	stationary := p95(workload.PatternStationary)
	diurnal := p95(workload.PatternDiurnal)
	if diurnal < 1.5*stationary || diurnal < stationary+10 {
		t.Fatalf("diurnal p95 queue delay %.1f min vs stationary %.1f min: temporal burstiness shifted nothing",
			diurnal, stationary)
	}
}

func quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// TestTieHeavyReplayBatchesArrivals pins the Arm-level arrival batching on
// a tie-heavy replay schedule (the shape a quantized-timestamp trace
// produces): same-instant submissions fuse into one engine event, so an
// armed study's pending-event count tracks the number of DISTINCT arrival
// instants, not the job count — and the fused schedule stays bit-identical
// between the sequential and sharded engines.
func TestTieHeavyReplayBatchesArrivals(t *testing.T) {
	cfg := parallelConfig()
	cfg.Seed = 11
	g := stats.NewRNG(cfg.Seed).Split("workload")
	gen, err := workload.NewGenerator(cfg.Workload, g)
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.Generate(g)
	// Quantize arrivals to a coarse grid: monotone, so replay validation
	// holds, and massively tie-heavy.
	const grid = 4 * simulation.Hour
	instants := map[simulation.Time]bool{}
	for i := range specs {
		specs[i].SubmitAt -= specs[i].SubmitAt % grid
		instants[specs[i].SubmitAt] = true
	}
	if len(instants)*4 > len(specs) {
		t.Fatalf("schedule not tie-heavy enough: %d instants for %d jobs", len(instants), len(specs))
	}

	rcfg := parallelConfig()
	rcfg.Seed = 11
	rcfg.Workload.Replay = specs

	st, err := NewStudy(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Arm()
	// Pending events right after Arm: one fused event per arrival instant
	// plus a fixed handful of tickers (telemetry, faults, defrag) — far
	// below one event per job, which is what the unbatched path scheduled.
	if p := st.engine.(*simulation.Engine).Pending(); p >= len(instants)+10 || p >= len(specs) {
		t.Fatalf("Pending after Arm = %d; want about %d arrival groups (%d jobs)",
			p, len(instants), len(specs))
	}

	seq, _ := runWithPool(t, rcfg, 0)
	for _, shards := range []int{2, 0} {
		res, sh := runShardedWithPool(t, rcfg, shards, 4)
		if !reflect.DeepEqual(seq, res) {
			diffStudyResults(t, seq, res)
			t.Fatalf("tie-heavy replay shards=%d diverged from sequential engine", shards)
		}
		ws := sh.WindowStats()
		if ws.Barriers == 0 || ws.Barriers > ws.GlobalEvents {
			t.Fatalf("barrier accounting out of range: %d barriers, %d globals",
				ws.Barriers, ws.GlobalEvents)
		}
	}
}
