//go:build !race

package core

// raceDetectorOn reports whether the test binary was built with -race.
const raceDetectorOn = false
