// Correlated-outage execution: this file applies the pre-drawn
// internal/faults plan to a running study. Every effect here runs as a
// GLOBAL event (scheduled at Arm, in plan order), so on the sharded engine
// and in a fleet it executes alone at window barriers in the sequential
// engine's exact (at, seq) order — outage-enabled studies keep the
// bit-identical worker/shard invariance contract (PERFORMANCE.md § PR 7).
package core

import (
	"fmt"
	"math"
	"sort"

	"philly/internal/cluster"
	"philly/internal/faults"
	"philly/internal/simulation"
)

// outageHoldBase is the job-ID space for the per-server capacity-hold
// sentinels: while server S is down, its free GPUs are allocated to
// JobID(outageHoldBase + S) so the scheduler cannot place gangs there. Far
// above both generated IDs (dense from 1) and injected IDs (injectIDBase).
const outageHoldBase int64 = 1 << 40

// OutageStats summarizes the outage engine's activity over a run.
type OutageStats struct {
	// Events counts outage events that began; MaintenanceEvents is the
	// subset that were planned maintenance windows.
	Events            int
	MaintenanceEvents int
	// KilledAttempts counts running attempts killed by outages.
	KilledAttempts int
	// DownGPUHours is capacity taken offline, in GPU-hours (horizon-
	// clamped).
	DownGPUHours float64
	// LostGPUHours is GPU time destroyed by kills: work since the victims'
	// last checkpoints, which must be re-run.
	LostGPUHours float64
	// CkptOverheadGPUHours is GPU time spent writing periodic checkpoints
	// and restoring from them — the other side of the lost-work tradeoff.
	CkptOverheadGPUHours float64
	// ETTFHours and ETTRHours are the realized mean time between outage
	// events and mean (horizon-clamped) outage duration, in hours; both 0
	// when no event fired.
	ETTFHours float64
	ETTRHours float64
}

// OutageGPUsDown returns how many GPUs outages currently hold offline
// (federation reads it at barriers to decide evacuation).
func (s *Study) OutageGPUsDown() int { return s.heldGPUs }

// beginOutage applies one outage: kill every running attempt touching an
// affected server, then hold the down capacity with sentinel allocations
// until the repair event releases it.
func (s *Study) beginOutage(o faults.Outage) {
	now := s.engine.Now()
	srvs := s.outageServers(o)
	s.outStats.Events++
	if o.Maintenance {
		s.outStats.MaintenanceEvents++
	}

	// Victims: every distinct job holding a GPU on an affected server.
	// Collected fully before the first kill (a kill mutates placements),
	// deduplicated and killed in ID order.
	var victims []cluster.JobID
	for _, sid := range srvs {
		for _, id := range s.cluster.Server(sid).Jobs() {
			if int64(id) >= outageHoldBase {
				continue // an overlapping outage's sentinel
			}
			victims = append(victims, id)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	prev := cluster.JobID(0)
	for _, id := range victims {
		if id == prev {
			continue
		}
		prev = id
		s.killJob(s.states[id], now)
	}

	// Hold the down capacity. Overlapping outages share servers: only the
	// 0→1 transition allocates the sentinel, and only the last repair
	// releases it.
	newlyHeld := 0
	for _, sid := range srvs {
		s.downCount[sid]++
		if s.downCount[sid] > 1 {
			continue
		}
		srv := s.cluster.Server(sid)
		slots := make([]cluster.Slot, 0, len(srv.GPUs))
		for g := range srv.GPUs {
			if srv.GPUs[g].Owner == 0 {
				slots = append(slots, cluster.Slot{Server: sid, GPU: g})
			}
		}
		if len(slots) == 0 {
			continue
		}
		hold := cluster.JobID(outageHoldBase + int64(sid))
		if err := s.cluster.Allocate(hold, cluster.Placement{Slots: slots}); err != nil {
			panic(fmt.Sprintf("core: outage hold on server %d: %v", sid, err))
		}
		newlyHeld += len(slots)
	}
	s.heldGPUs += newlyHeld

	effEnd := o.At + o.Duration
	if effEnd > s.horizon {
		effEnd = s.horizon
	}
	s.outStats.DownGPUHours += float64(newlyHeld) * (effEnd - now).Hours()
	s.outageDownSec += float64(effEnd - now)

	// Victims spanning healthy servers freed capacity there; requeued
	// victims and waiting gangs may start immediately.
	s.pump()
}

// endOutage repairs one outage: when the last overlapping outage on a
// server ends, its sentinel hold is released and the capacity returns.
func (s *Study) endOutage(o faults.Outage) {
	released := 0
	for _, sid := range s.outageServers(o) {
		s.downCount[sid]--
		if s.downCount[sid] > 0 {
			continue
		}
		if s.downCount[sid] < 0 {
			panic(fmt.Sprintf("core: repair of server %d without an outage", sid))
		}
		hold := cluster.JobID(outageHoldBase + int64(sid))
		if p, ok := s.cluster.PlacementOf(hold); ok {
			released += len(p.Slots)
			if err := s.cluster.Release(hold); err != nil {
				panic(fmt.Sprintf("core: outage release on server %d: %v", sid, err))
			}
		}
	}
	s.heldGPUs -= released
	if released > 0 {
		s.pump()
	}
}

// outageServers resolves an outage to the affected server IDs, ascending
// (server IDs are assigned rack-major, so a rack's servers are contiguous).
func (s *Study) outageServers(o faults.Outage) []int {
	switch o.Level {
	case faults.LevelServer:
		if o.Domain < 0 || o.Domain >= s.cluster.NumServers() {
			return nil
		}
		return []int{o.Domain}
	case faults.LevelRack:
		if o.Domain < 0 || o.Domain >= len(s.cluster.Racks) {
			return nil
		}
		rack := s.cluster.Racks[o.Domain]
		ids := make([]int, 0, len(rack.Servers))
		for _, srv := range rack.Servers {
			ids = append(ids, srv.ID)
		}
		return ids
	default: // faults.LevelCluster
		ids := make([]int, 0, s.cluster.NumServers())
		for _, srv := range s.cluster.Servers() {
			ids = append(ids, srv.ID)
		}
		return ids
	}
}

// killJob terminates a running attempt hit by an outage and sends the job
// back through the queue — the same Release+Submit path commitFinish uses
// for retries. A clean attempt salvages work up to its last periodic
// checkpoint (nothing without the cost model) and owes a restore; the rest
// of the episode is lost GPU time. A failing attempt keeps its cumulative
// runtime-to-failure clock, exactly like a preemption, so the job's
// planned failure budget is honored across the kill.
func (s *Study) killJob(js *jobState, now simulation.Time) {
	if js == nil || !js.running {
		return
	}
	elapsed := float64(now - js.episodeStart)
	js.attemptRunSec += elapsed
	s.accountEpisode(js, elapsed)
	s.outStats.KilledAttempts++
	js.res.OutageKills++
	if js.currentFailure() == nil {
		retainedWall := 0.0
		if ck := s.cfg.Checkpoint; ck.Enabled && js.spec.Train.CheckpointEveryEpochs > 0 {
			retainedWall = math.Floor(elapsed/float64(ck.Interval)) * float64(ck.Interval)
			js.pendingRestoreSec = ck.RestoreSeconds
		}
		done := retainedWall / js.slowdown
		js.remainingWorkSec -= done
		if js.remainingWorkSec < 0 {
			js.remainingWorkSec = 0
		}
		js.sched.RemainingSeconds = js.remainingWorkSec
		lost := (elapsed - retainedWall) / 60 * float64(js.spec.GPUs)
		js.res.LostGPUMinutes += lost
		s.outStats.LostGPUHours += lost / 60
	}
	js.running = false
	js.finishSeq++ // invalidate the scheduled finish pair
	s.removeRunning(js)
	if err := s.sched.ReleaseJob(js.sched, now); err != nil {
		panic(fmt.Sprintf("core: outage release job %d: %v", js.sched.ID, err))
	}
	if err := s.sched.Submit(js.sched, now); err != nil {
		panic(fmt.Sprintf("core: outage resubmit job %d: %v", js.sched.ID, err))
	}
}
