package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestNewRNGDifferentSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// Drawing extra values from one child stream must not change another
	// child derived earlier.
	a1 := NewRNG(7).Split("arrivals")
	base := make([]uint64, 10)
	for i := range base {
		base[i] = a1.Uint64()
	}

	g := NewRNG(7)
	a2 := g.Split("arrivals")
	_ = g.Split("failures") // extra derivation after the fact
	for i := range base {
		if got := a2.Uint64(); got != base[i] {
			t.Fatalf("split stream changed by sibling derivation at %d", i)
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	g := NewRNG(7)
	a := g.Split("a")
	g2 := NewRNG(7)
	b := g2.Split("b")
	same := 0
	for i := 0; i < 50; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("labels a and b gave %d/50 identical draws", same)
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(3)
	const rate = 0.5
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(rate)
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/rate) > 0.05 {
		t.Fatalf("Exponential(%v) mean = %v, want ~%v", rate, mean, 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for rate <= 0")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestLogNormalMedian(t *testing.T) {
	g := NewRNG(9)
	mu, sigma := math.Log(10), 1.5
	var vals []float64
	for i := 0; i < 100000; i++ {
		vals = append(vals, g.LogNormal(mu, sigma))
	}
	med := Percentile(vals, 50)
	if math.Abs(med-10) > 0.5 {
		t.Fatalf("LogNormal median = %v, want ~10", med)
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		v := g.Pareto(2, 1.2)
		if v < 2 {
			t.Fatalf("Pareto sample %v below xm=2", v)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := g.TruncNormal(50, 30, 0, 100)
		if v < 0 || v > 100 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestTruncNormalImpossibleWindowClamps(t *testing.T) {
	g := NewRNG(11)
	// Mean far outside the window: rejection will fail, expect clamping.
	v := g.TruncNormal(1000, 0.001, 0, 1)
	if v < 0 || v > 1 {
		t.Fatalf("clamped TruncNormal out of bounds: %v", v)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	c := MustCategorical([]float64{1, 2, 7})
	g := NewRNG(5)
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(g)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, w := range want {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-w) > 0.01 {
			t.Fatalf("category %d frequency %v, want ~%v", i, got, w)
		}
	}
}

func TestCategoricalZeroWeightNeverSampled(t *testing.T) {
	c := MustCategorical([]float64{0, 1, 0})
	g := NewRNG(6)
	for i := 0; i < 1000; i++ {
		if got := c.Sample(g); got != 1 {
			t.Fatalf("sampled zero-weight category %d", got)
		}
	}
}

func TestCategoricalErrors(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Error("want error for empty weights")
	}
	if _, err := NewCategorical([]float64{0, 0}); err == nil {
		t.Error("want error for all-zero weights")
	}
	if _, err := NewCategorical([]float64{1, -1}); err == nil {
		t.Error("want error for negative weight")
	}
	if _, err := NewCategorical([]float64{math.NaN()}); err == nil {
		t.Error("want error for NaN weight")
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(100, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(8)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Sample(g)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf rank 0 (%d) not more frequent than rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] < 5*counts[99] {
		t.Fatalf("zipf insufficiently skewed: rank0=%d rank99=%d", counts[0], counts[99])
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("want error for s=0")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.9, 1.2815515655},
		{0.95, 1.6448536270},
		{0.975, 1.9599639845},
		{0.05, -1.6448536270},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLogNormalFromQuantiles(t *testing.T) {
	spec, err := LogNormalFromQuantiles(10, 0.9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spec.Quantile(0.5)-10) > 1e-9 {
		t.Errorf("median = %v, want 10", spec.Quantile(0.5))
	}
	if math.Abs(spec.Quantile(0.9)-100) > 1e-6 {
		t.Errorf("p90 = %v, want 100", spec.Quantile(0.9))
	}
	// Sampling should roughly recover the quantiles.
	g := NewRNG(10)
	var vals []float64
	for i := 0; i < 100000; i++ {
		vals = append(vals, spec.Sample(g))
	}
	if med := Percentile(vals, 50); math.Abs(med-10) > 1 {
		t.Errorf("sampled median %v, want ~10", med)
	}
}

func TestLogNormalFromQuantilesErrors(t *testing.T) {
	if _, err := LogNormalFromQuantiles(0, 0.9, 10); err == nil {
		t.Error("want error for non-positive median")
	}
	if _, err := LogNormalFromQuantiles(10, 0.9, 5); err == nil {
		t.Error("want error for pq < p50")
	}
	if _, err := LogNormalFromQuantiles(10, 0.4, 20); err == nil {
		t.Error("want error for q <= 0.5")
	}
}

func TestLogNormalFromQuantilesDegenerate(t *testing.T) {
	// pq == p50 should give sigma 0 (a point mass).
	spec, err := LogNormalFromQuantiles(10, 0.9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Sigma != 0 {
		t.Fatalf("sigma = %v, want 0", spec.Sigma)
	}
	g := NewRNG(2)
	if v := spec.Sample(g); math.Abs(v-10) > 1e-9 {
		t.Fatalf("degenerate sample = %v, want 10", v)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty slice should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", vals)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.75 {
		t.Errorf("At(2) = %v, want 0.75", got)
	}
	if got := c.At(3); got != 1 {
		t.Errorf("At(3) = %v, want 1", got)
	}
	if got := c.Median(); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	if got := c.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := c.Max(); got != 3 {
		t.Errorf("Max = %v, want 3", got)
	}
}

func TestCDFEmptyIsSafe(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Error("empty CDF At should be 0")
	}
	if !math.IsNaN(c.Median()) {
		t.Error("empty CDF Median should be NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("points not monotone: %+v", pts)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	vals := []float64{10, 20, 30, 40}
	for _, v := range vals {
		h.Add(v)
	}
	if got := h.Mean(); got != 25 {
		t.Errorf("Mean = %v, want 25", got)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.Add(-5)
	h.Add(150)
	below, above := h.Clamped()
	if below != 1 || above != 1 {
		t.Errorf("Clamped = (%d, %d), want (1, 1)", below, above)
	}
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2", h.Count())
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) - 0.5) // one sample per bucket
	}
	if got := h.Percentile(50); math.Abs(got-49.5) > 1 {
		t.Errorf("Percentile(50) = %v, want ~49.5", got)
	}
	if got := h.Percentile(95); math.Abs(got-94.5) > 1.5 {
		t.Errorf("Percentile(95) = %v, want ~94.5", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 10)
	a.Add(1)
	b.Add(9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 {
		t.Errorf("merged count = %d, want 2", a.Count())
	}
	if got := a.Mean(); got != 5 {
		t.Errorf("merged mean = %v, want 5", got)
	}
}

func TestHistogramMergeShapeMismatch(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 20, 10)
	if err := a.Merge(b); err == nil {
		t.Error("want error for shape mismatch")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil should be a no-op, got %v", err)
	}
}

func TestHistogramCDFPointsMonotone(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	g := NewRNG(12)
	for i := 0; i < 1000; i++ {
		h.Add(g.Uniform(0, 100))
	}
	pts := h.CDFPoints()
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF points not monotone at %d", i)
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("final CDF point = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestHistogramAtProperty(t *testing.T) {
	f := func(seed uint64) bool {
		h := NewHistogram(0, 100, 50)
		g := NewRNG(seed)
		for i := 0; i < 200; i++ {
			h.Add(g.Uniform(0, 100))
		}
		// At must be monotone and bounded.
		prev := 0.0
		for x := -10.0; x <= 110; x += 5 {
			v := h.At(x)
			if v < 0 || v > 1 || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanSum(t *testing.T) {
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
}

// TestHistogramExtremeValues pins the clamping behavior for samples whose
// bucket quotient would overflow the float-to-int conversion: the range
// checks run on the float quotient, so huge positive samples (and +Inf)
// clamp into the top edge bucket with overhi tracked, and negative/NaN
// samples clamp into the bottom edge bucket with underlo tracked — no
// index-out-of-range panic in either direction.
func TestHistogramExtremeValues(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	above := []float64{1e19, 1e300, math.Inf(1)}
	below := []float64{-1e300, math.Inf(-1), math.NaN()}
	for _, v := range append(append([]float64(nil), above...), below...) {
		h.Add(v) // must not panic
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.counts[len(h.counts)-1] != uint64(len(above)) || h.overhi != uint64(len(above)) {
		t.Errorf("top bucket = %d (overhi %d), want %d huge samples clamped high",
			h.counts[len(h.counts)-1], h.overhi, len(above))
	}
	if h.counts[0] != uint64(len(below)) || h.underlo != uint64(len(below)) {
		t.Errorf("bottom bucket = %d (underlo %d), want %d low/NaN samples clamped low",
			h.counts[0], h.underlo, len(below))
	}
}

// TestHistogramBucketForMatchesAdd pins Add's open-coded bucket selection to
// BucketFor+AddAt: the telemetry fan-out relies on the two paths choosing
// identical buckets for every input, including the clamped and degenerate
// edges.
func TestHistogramBucketForMatchesAdd(t *testing.T) {
	values := []float64{
		-1e300, -5, -0.0001, 0, 0.0001, 0.5, 1, 49.999999, 50, 99.999999,
		100, 100.0001, 1e19, 1e300, math.Inf(-1), math.Inf(1), math.NaN(),
	}
	direct := NewHistogram(0, 100, 100)
	viaAt := NewHistogram(0, 100, 100)
	for _, v := range values {
		direct.Add(v)
		idx, under, over := viaAt.BucketFor(v)
		viaAt.AddAt(v, idx, under, over)
	}
	for i := 0; i < 100; i++ {
		if direct.counts[i] != viaAt.counts[i] {
			t.Fatalf("bucket %d: Add path %d, BucketFor+AddAt path %d", i, direct.counts[i], viaAt.counts[i])
		}
	}
	if direct.underlo != viaAt.underlo || direct.overhi != viaAt.overhi || direct.total != viaAt.total {
		t.Fatalf("edge trackers diverged: Add {u:%d o:%d n:%d} vs AddAt {u:%d o:%d n:%d}",
			direct.underlo, direct.overhi, direct.total, viaAt.underlo, viaAt.overhi, viaAt.total)
	}
}
