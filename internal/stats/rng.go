// Package stats provides the deterministic random-number plumbing and the
// probability distributions used throughout the simulator: seeded PCG
// streams, log-normal / exponential / Pareto / Zipf samplers, weighted
// categorical choice, and summary statistics (percentiles, CDFs, means).
//
// Every stochastic decision in the repository draws from a *stats.RNG that
// was derived from the study's master seed, so whole-study results are
// bit-reproducible.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source. It wraps math/rand/v2's PCG
// generator and adds the samplers the workload and failure models need.
//
// The generator state is embedded by value, so an RNG can live inline in a
// per-entity struct (one stream per job, one per server) with no
// allocation and no pointer chase on the draw path — what the parallel
// telemetry pipeline's pre-split streams rely on. Initialize in place with
// Init and do not copy afterwards: the embedded rand.Rand points at the
// embedded PCG state.
type RNG struct {
	pcg rand.PCG
	rnd rand.Rand
}

// NewRNG returns a generator seeded from seed. Two RNGs built from the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	g := &RNG{}
	g.Init(seed)
	return g
}

// Init seeds the generator in place (alloc-free re-initialization);
// NewRNG(seed) and a zero RNG after Init(seed) are interchangeable.
func (g *RNG) Init(seed uint64) {
	// Mix the single user-facing seed into the two PCG words with
	// splitmix64 so that nearby seeds give unrelated streams.
	s1 := SplitMix64(seed)
	s2 := SplitMix64(s1)
	g.pcg = *rand.NewPCG(s1, s2)
	g.rnd = *rand.New(&g.pcg)
}

// Split derives an independent child stream. The label keeps derivations
// for different concerns (arrival times, failure draws, ...) decoupled:
// adding draws to one stream does not perturb the others.
func (g *RNG) Split(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= g.rnd.Uint64()
	return NewRNG(h)
}

// SplitMix64 is the standard splitmix64 finalizer: a bijective mixer that
// sends nearby inputs to unrelated outputs. Seed plumbing throughout the
// repository (RNG construction here, per-run seed derivation in
// internal/sweep, per-entity stream derivation below) shares this one
// definition, because recorded results depend on it bit-for-bit.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveEntitySeed maps (studySeed, concern label, entity id) to the seed
// of that entity's private stream, with a splitmix64 chain in the style of
// internal/sweep's DeriveSeed. The derivation is stateless: it depends only
// on its inputs, never on how many draws any other stream has made, which
// is what lets each telemetry entity (server, job) own a pre-split stream
// that is identical no matter which worker samples it or in what order.
// TestDeriveStreamStability pins golden values.
func DeriveEntitySeed(seed uint64, label string, id uint64) uint64 {
	h := SplitMix64(seed ^ 0x6a09e667f3bcc909)
	for i := 0; i < len(label); i++ { // FNV-1a fold, as RNG.Split does
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return SplitMix64(h ^ (id+1)*0x9e3779b97f4a7c15)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.rnd.Float64() }

// IntN returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.rnd.IntN(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return int64(g.rnd.Uint64() >> 1) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.rnd.Uint64() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.rnd.NormFloat64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.rnd.Float64() < p }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.rnd.Perm(n) }

// Shuffle permutes a slice in place using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.rnd.Shuffle(n, swap) }

// Exponential samples Exp(rate); the mean of the distribution is 1/rate.
// It panics if rate <= 0.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential rate must be positive")
	}
	return g.rnd.ExpFloat64() / rate
}

// LogNormal samples exp(N(mu, sigma^2)). The median of the distribution is
// exp(mu); sigma controls tail heaviness.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.rnd.NormFloat64())
}

// Pareto samples a Pareto distribution with the given minimum value xm and
// shape alpha. Smaller alpha means a heavier tail. It panics if xm <= 0 or
// alpha <= 0.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("stats: Pareto parameters must be positive")
	}
	u := g.rnd.Float64()
	for u == 0 {
		u = g.rnd.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Uniform samples uniformly from [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.rnd.Float64()
}

// TruncNormal samples N(mu, sigma^2) truncated to [lo, hi] by rejection,
// falling back to clamping after a bounded number of attempts so that the
// call always terminates.
func (g *RNG) TruncNormal(mu, sigma, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := mu + sigma*g.rnd.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mu))
}
