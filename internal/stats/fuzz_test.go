package stats

import (
	"fmt"
	"testing"
)

// TestDeriveEntitySeedGolden pins exact derivation outputs. Every recorded
// result in the repository depends on these values bit-for-bit (per-entity
// telemetry streams, per-job log/curve streams, federation member seeds),
// so an accidental re-keying — a changed constant, a reordered mix step —
// must fail loudly here, not as a silent shift in every figure.
func TestDeriveEntitySeedGolden(t *testing.T) {
	cases := []struct {
		seed  uint64
		label string
		id    uint64
		want  uint64
	}{
		{1, "host", 0, 0xf540aa22ae22962a},
		{1, "job-util", 7, 0xd9d7a061540ce1c},
		{1, "job-logs", 7, 0xd46bf25b33edfa59},
		{1, "job-curve", 7, 0xa11ae0d9e0ca85f5},
		{42, "fed-member", 2, 0x885d4e8d0aa64f4b},
		{^uint64(0), "host", ^uint64(0), 0x4125ecbfa0a3ae1},
	}
	for _, c := range cases {
		if got := DeriveEntitySeed(c.seed, c.label, c.id); got != c.want {
			t.Errorf("DeriveEntitySeed(%d, %q, %d) = %#x, want %#x", c.seed, c.label, c.id, got, c.want)
		}
	}
	// SplitMix64 is the shared finalizer under every derivation; pin the
	// reference vector (splitmix64's published outputs for 0, 1, 2^64-1).
	for _, c := range []struct{ in, want uint64 }{
		{0, 0xe220a8397b1dcdaf},
		{1, 0x910a2dec89025cc1},
		{^uint64(0), 0xe4d971771b652c20},
	} {
		if got := SplitMix64(c.in); got != c.want {
			t.Errorf("SplitMix64(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestDeriveEntitySeedCorpusCollisionFree sweeps the triple space the
// simulator actually uses — every derivation label in the repository,
// cross seeds and dense entity ids — and requires all derived seeds to be
// pairwise distinct. A collision would silently alias two entities'
// streams.
func TestDeriveEntitySeedCorpusCollisionFree(t *testing.T) {
	labels := []string{"host", "job-util", "job-logs", "job-curve", "fed-member", "workload"}
	seeds := []uint64{0, 1, 2, 7, 42, 1 << 30, ^uint64(0)}
	seen := make(map[uint64]string, len(labels)*len(seeds)*128)
	for _, seed := range seeds {
		for _, label := range labels {
			for id := uint64(0); id < 128; id++ {
				v := DeriveEntitySeed(seed, label, id)
				key := fmt.Sprintf("(%d,%s,%d)", seed, label, id)
				if prev, dup := seen[v]; dup {
					t.Fatalf("seed collision: %s and %s both derive %#x", key, prev, v)
				}
				seen[v] = key
			}
		}
	}
}

// FuzzDeriveEntitySeed is the property-style check behind the corpus test:
// for arbitrary (seed, label, id) triples the derivation must be
// deterministic, and both the seed and the id dimension must be
// collision-free and yield independent streams. These are mathematical
// guarantees of the construction (the id and seed mixes are compositions
// of bijections for a fixed label), so the fuzzer hunts for implementation
// bugs, not for improbable hash collisions.
//
// Run with: go test -fuzz FuzzDeriveEntitySeed ./internal/stats
func FuzzDeriveEntitySeed(f *testing.F) {
	f.Add(uint64(1), "host", uint64(0))
	f.Add(uint64(1), "job-util", uint64(7))
	f.Add(uint64(42), "fed-member", uint64(2))
	f.Add(uint64(0), "", uint64(0))
	f.Add(^uint64(0), "job-logs", ^uint64(0))
	f.Add(uint64(0x9e3779b97f4a7c15), "workload", uint64(1)<<63)
	f.Fuzz(func(t *testing.T, seed uint64, label string, id uint64) {
		v := DeriveEntitySeed(seed, label, id)
		if v != DeriveEntitySeed(seed, label, id) {
			t.Fatal("derivation is not deterministic")
		}
		// Neighbouring ids and seeds must derive distinct stream seeds:
		// the id mix (xor with an odd-multiplier product, then splitmix64)
		// and the seed mix (splitmix64, then an FNV fold, then splitmix64)
		// are bijective in their varying argument, so equality here is an
		// implementation bug by construction.
		vID := DeriveEntitySeed(seed, label, id+1)
		if v == vID {
			t.Fatalf("id collision: (%d,%q,%d) and id+1 both derive %#x", seed, label, id, v)
		}
		vSeed := DeriveEntitySeed(seed+1, label, id)
		if v == vSeed {
			t.Fatalf("seed collision: (%d,%q,%d) and seed+1 both derive %#x", seed, label, id, v)
		}
		// Stream independence: the derived generators must not shadow each
		// other. Compare a few draws — identical prefixes would mean the
		// distinct seeds collapsed inside RNG.Init.
		var a, b RNG
		a.Init(v)
		b.Init(vID)
		same := true
		for i := 0; i < 4; i++ {
			if a.Uint64() != b.Uint64() {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("streams for (%d,%q,%d) and id+1 are identical over 4 draws", seed, label, id)
		}
		// An in-place re-Init must restart the same stream (the alloc-free
		// representation is the same generator).
		a.Init(v)
		ref := NewRNG(v)
		for i := 0; i < 4; i++ {
			if a.Uint64() != ref.Uint64() {
				t.Fatal("Init stream diverged from NewRNG stream")
			}
		}
	})
}
