package stats

import "testing"

// TestDeriveStreamStability pins the derivation so recorded results cannot
// silently shift: per-entity telemetry streams depend on these values
// bit-for-bit, like sweep.DeriveSeed's golden test.
func TestDeriveStreamStability(t *testing.T) {
	cases := []struct {
		seed  uint64
		label string
		id    uint64
	}{
		{1, "host", 0},
		{1, "host", 1},
		{1, "job-util", 7},
		{2, "host", 0},
	}
	first := make(map[uint64]string)
	for _, c := range cases {
		v := DeriveEntitySeed(c.seed, c.label, c.id)
		if prev, ok := first[v]; ok {
			t.Fatalf("seed collision: (%d,%s,%d) and %s both derive %d",
				c.seed, c.label, c.id, prev, v)
		}
		first[v] = c.label
	}
	// An in-place Init must reproduce NewRNG's draw sequence for the same
	// seed: the value-embedded stream is an allocation-free representation
	// of the same generator, not a different one.
	seed := DeriveEntitySeed(3, "host", 42)
	var st RNG
	st.Init(seed)
	ref := NewRNG(seed)
	for i := 0; i < 64; i++ {
		if x, y := st.NormFloat64(), ref.NormFloat64(); x != y {
			t.Fatalf("norm draw %d diverged: %v vs %v", i, x, y)
		}
	}
	st.Init(seed)
	ref = NewRNG(seed)
	for i := 0; i < 64; i++ {
		if x, y := st.Float64(), ref.Float64(); x != y {
			t.Fatalf("uniform draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

// TestHistogramResetAndMerge checks Reset restores the empty state and that
// chunked accumulate+merge reproduces sequential Add counts exactly.
func TestHistogramResetAndMerge(t *testing.T) {
	seq := NewHistogram(0, 100, 10)
	chunked := NewHistogram(0, 100, 10)
	part := NewHistogram(0, 100, 10)
	vals := []float64{1, 5, 5, 42, 99.9, -3, 150}
	for _, v := range vals {
		seq.Add(v)
	}
	for chunk := 0; chunk < len(vals); chunk += 3 {
		part.Reset()
		for i := chunk; i < chunk+3 && i < len(vals); i++ {
			part.Add(vals[i])
		}
		if err := chunked.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if seq.Count() != chunked.Count() {
		t.Fatalf("chunked fold diverged: count %d vs %d", seq.Count(), chunked.Count())
	}
	// Bucket counts are integers and must match exactly; the float sum is
	// only guaranteed for a *fixed* fold order (which this test's chunking
	// is), so compare it to a small epsilon here.
	if d := seq.Mean() - chunked.Mean(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("chunked fold mean diverged: %v vs %v", seq.Mean(), chunked.Mean())
	}
	for p := 0; p <= 100; p += 10 {
		if seq.Percentile(float64(p)) != chunked.Percentile(float64(p)) {
			t.Fatalf("p%d diverged", p)
		}
	}
	b1, a1 := seq.Clamped()
	b2, a2 := chunked.Clamped()
	if b1 != b2 || a1 != a2 {
		t.Fatalf("clamp counters diverged")
	}
	part.Reset()
	if part.Count() != 0 {
		t.Fatalf("reset left %d samples", part.Count())
	}
}
