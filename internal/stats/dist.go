package stats

import (
	"fmt"
	"math"
	"sort"
)

// Categorical is a weighted discrete distribution over indexes 0..n-1.
// The zero value is unusable; build one with NewCategorical.
type Categorical struct {
	cum []float64 // cumulative weights, last element == total
}

// NewCategorical builds a categorical distribution from non-negative
// weights. At least one weight must be positive.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("stats: categorical needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("stats: categorical weight %d is invalid (%v)", i, w)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: categorical weights sum to zero")
	}
	return &Categorical{cum: cum}, nil
}

// MustCategorical is NewCategorical but panics on error; for statically
// known weight tables.
func MustCategorical(weights []float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Sample draws an index with probability proportional to its weight.
func (c *Categorical) Sample(g *RNG) int {
	total := c.cum[len(c.cum)-1]
	x := g.Float64() * total
	// Binary search for the first cumulative weight > x.
	return sort.SearchFloat64s(c.cum, math.Nextafter(x, math.MaxFloat64))
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.cum) }

// Zipf is a Zipf-distributed sampler over 1..N with exponent s, used to
// model skewed user activity (a few users submit most jobs).
type Zipf struct {
	cat *Categorical
}

// NewZipf builds a Zipf distribution over n ranks with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: zipf needs n > 0, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("stats: zipf needs s > 0, got %v", s)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	cat, err := NewCategorical(w)
	if err != nil {
		return nil, err
	}
	return &Zipf{cat: cat}, nil
}

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(g *RNG) int { return z.cat.Sample(g) }

// LogNormalSpec describes a log-normal distribution by its median and an
// upper quantile, which is how the paper reports runtime-to-failure
// distributions (p50/p90/p95). FromQuantiles solves for (mu, sigma).
type LogNormalSpec struct {
	Mu    float64
	Sigma float64
}

// LogNormalFromQuantiles returns the log-normal whose median is p50 and
// whose q-quantile is pq (e.g. q=0.9, pq = the reported 90th percentile).
// Both values must be positive and pq >= p50.
func LogNormalFromQuantiles(p50 float64, q, pq float64) (LogNormalSpec, error) {
	if p50 <= 0 || pq <= 0 {
		return LogNormalSpec{}, fmt.Errorf("stats: quantiles must be positive (p50=%v, pq=%v)", p50, pq)
	}
	if q <= 0.5 || q >= 1 {
		return LogNormalSpec{}, fmt.Errorf("stats: upper quantile level must be in (0.5, 1), got %v", q)
	}
	if pq < p50 {
		return LogNormalSpec{}, fmt.Errorf("stats: upper quantile %v below median %v", pq, p50)
	}
	mu := math.Log(p50)
	z := NormalQuantile(q)
	sigma := 0.0
	if pq > p50 {
		sigma = (math.Log(pq) - mu) / z
	}
	return LogNormalSpec{Mu: mu, Sigma: sigma}, nil
}

// Sample draws from the distribution.
func (s LogNormalSpec) Sample(g *RNG) float64 { return g.LogNormal(s.Mu, s.Sigma) }

// Quantile returns the value at probability p in (0, 1).
func (s LogNormalSpec) Quantile(p float64) float64 {
	return math.Exp(s.Mu + s.Sigma*NormalQuantile(p))
}

// NormalQuantile returns the standard normal quantile (inverse CDF) at p in
// (0, 1), using the Acklam rational approximation (relative error < 1.15e-9),
// which is plenty for calibrating synthetic distributions.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0.5 {
			return 0
		}
		panic(fmt.Sprintf("stats: NormalQuantile needs p in (0,1), got %v", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	const phigh = 1 - plow
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
