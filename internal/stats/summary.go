package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (p in [0, 100]) of values using
// linear interpolation between closest ranks. It returns NaN for an empty
// input. The input slice is not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Sum returns the sum of values.
func Sum(values []float64) float64 {
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum
}

// CDF is an empirical cumulative distribution over a sample. It is immutable
// once built.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (copied; the input is not
// retained or modified).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x) in [0, 1]. For an empty CDF it returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	n := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.MaxFloat64))
	return float64(n) / float64(len(c.sorted))
}

// Percentile returns the p-th percentile (p in [0, 100]).
func (c *CDF) Percentile(p float64) float64 { return percentileSorted(c.sorted, p) }

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Percentile(50) }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Min returns the smallest sample, or NaN if empty.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample, or NaN if empty.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns up to n (x, P(X<=x)) pairs spanning the sample, suitable
// for plotting. The last point always has y == 1 when the CDF is non-empty.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) / float64(n-1) * float64(len(c.sorted)-1)))
		if n == 1 {
			idx = len(c.sorted) - 1
		}
		pts = append(pts, Point{X: c.sorted[idx], Y: float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

// Point is an (x, y) pair on a curve.
type Point struct {
	X, Y float64
}

// Histogram accumulates values into fixed-width buckets over [lo, hi]. It is
// the memory-bounded representation used for per-minute utilization samples,
// of which a paper-scale run produces hundreds of millions.
type Histogram struct {
	lo, hi  float64
	width   float64 // hi - lo, cached for the Add hot path
	nf      float64 // float64(len(counts)), cached for the Add hot path
	counts  []uint64
	total   uint64
	sum     float64
	underlo uint64
	overhi  uint64
}

// NewHistogram builds a histogram with n buckets over [lo, hi]. It panics if
// n <= 0 or hi <= lo, which indicate programmer error.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v, %v] with %d buckets", lo, hi, n))
	}
	return &Histogram{lo: lo, hi: hi, width: hi - lo, nf: float64(n), counts: make([]uint64, n)}
}

// Add records a sample. Samples outside [lo, hi] are clamped into the edge
// buckets but tracked so callers can detect miscalibration.
//
// Bucket selection computes (v-lo)/(hi-lo)*n with the exact operation order
// the original math.Floor implementation used (the divisor and bucket count
// are cached, not algebraically rearranged), so every in-range sample lands
// in the same bucket bit-for-bit; int truncation equals Floor for the
// non-negative quotients that reach it. One deliberate divergence: a sample
// so large its quotient overflows int64 used to wrap negative and land in
// the low edge bucket — it now clamps into the top edge bucket (overhi),
// per this method's documented contract.
// Add open-codes BucketFor+AddAt: composing the two inlinable halves makes
// Add itself too large to inline into its callers, and Add is the hottest
// call in whole-study profiles. TestHistogramBucketForMatchesAdd pins the
// two paths to identical behavior.
//
// Range checks run on the float quotient, so the int conversion only ever
// sees values in [0, nf) — a quotient beyond int64 range (huge sample, +Inf)
// clamps into the top bucket instead of overflowing the conversion.
func (h *Histogram) Add(v float64) {
	h.total++
	h.sum += v
	q := (v - h.lo) / h.width * h.nf
	if q >= h.nf { // above range (including +Inf and conversion-overflow)
		if v > h.hi {
			h.overhi++
		}
		h.counts[len(h.counts)-1]++
		return
	}
	if !(q >= 0) { // below range, or NaN
		h.underlo++
		h.counts[0]++
		return
	}
	h.counts[int(q)]++
}

// BucketFor computes the bucket index (and the out-of-range flags) that Add
// uses for v, exposed so callers recording one sample into several
// same-shaped histograms can pay for the bucket division once and fan out
// with AddAt.
func (h *Histogram) BucketFor(v float64) (idx int, underlo, overhi bool) {
	q := (v - h.lo) / h.width * h.nf
	if q >= h.nf { // above range (including +Inf and conversion-overflow)
		return len(h.counts) - 1, false, v > h.hi
	}
	if !(q >= 0) { // below range, or NaN
		return 0, true, false
	}
	return int(q), false, false
}

// AddAt records a sample whose bucket was precomputed with BucketFor on a
// histogram of identical shape. Equivalent to Add(v), minus the division.
func (h *Histogram) AddAt(v float64, idx int, underlo, overhi bool) {
	h.total++
	h.sum += v
	if underlo {
		h.underlo++
	}
	if overhi {
		h.overhi++
	}
	h.counts[idx]++
}

// AddN records the same sample n times.
func (h *Histogram) AddN(v float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		h.Add(v)
	}
}

// Merge adds all of other's counts into h. The histograms must have the same
// shape.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.lo != other.lo || h.hi != other.hi || len(h.counts) != len(other.counts) {
		return fmt.Errorf("stats: merging histograms with different shapes")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	h.underlo += other.underlo
	h.overhi += other.overhi
	return nil
}

// Reset zeroes the histogram for reuse, keeping its shape. Together with
// Merge it is what makes per-shard partial histograms cheap: a telemetry
// shard resets a pooled histogram, accumulates its chunk, and the owner
// folds it back with Merge in fixed chunk order.
func (h *Histogram) Reset() {
	if h.total == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.underlo, h.overhi = 0, 0, 0, 0
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact mean of recorded samples (tracked outside the
// buckets, so it has no quantization error), or NaN if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Percentile estimates the p-th percentile (p in [0, 100]) from bucket
// midpoints, or NaN if empty.
func (h *Histogram) Percentile(p float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := p / 100 * float64(h.total)
	cum := uint64(0)
	width := (h.hi - h.lo) / float64(len(h.counts))
	for i, c := range h.counts {
		cum += c
		if float64(cum) >= target {
			return h.lo + (float64(i)+0.5)*width
		}
	}
	return h.hi
}

// CDFPoints returns the empirical CDF at each bucket upper edge.
func (h *Histogram) CDFPoints() []Point {
	if h.total == 0 {
		return nil
	}
	pts := make([]Point, 0, len(h.counts))
	width := (h.hi - h.lo) / float64(len(h.counts))
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		pts = append(pts, Point{X: h.lo + float64(i+1)*width, Y: float64(cum) / float64(h.total)})
	}
	return pts
}

// At returns P(X <= x) estimated from the buckets.
func (h *Histogram) At(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	if x < h.lo {
		return 0
	}
	if x >= h.hi {
		return 1
	}
	width := (h.hi - h.lo) / float64(len(h.counts))
	idx := int((x - h.lo) / width)
	cum := uint64(0)
	for i := 0; i < idx && i < len(h.counts); i++ {
		cum += h.counts[i]
	}
	// Interpolate within the bucket.
	if idx < len(h.counts) {
		frac := (x - (h.lo + float64(idx)*width)) / width
		cum += uint64(frac * float64(h.counts[idx]))
	}
	return float64(cum) / float64(h.total)
}

// Clamped reports how many samples fell outside [lo, hi].
func (h *Histogram) Clamped() (below, above uint64) { return h.underlo, h.overhi }
