package serve

import (
	"testing"
	"time"
)

// TestSetRunningRespectsTerminal pins the dequeue-to-start race fix: a
// job canceled after the dispatcher popped it but before setRunning must
// refuse to start, and a late finish must not close the finished channel
// a second time (which panicked the whole server before the fix).
func TestSetRunningRespectsTerminal(t *testing.T) {
	j := newJob("j-x", "t", Resolved{}, "h", 1)
	j.requestCancel()
	if !j.finishIfUnstarted() {
		t.Fatalf("queued job did not finish as canceled")
	}
	if j.setRunning(1) {
		t.Fatalf("setRunning resurrected a canceled job")
	}
	if st := j.Status(); st.State != StateCanceled || st.Workers != 0 {
		t.Fatalf("job after refused start = %+v, want canceled with no workers", st)
	}
	// The sweep returning late must be a no-op on the terminal state.
	j.finish(StateDone, nil, nil, "")
	if st := j.Status(); st.State != StateCanceled {
		t.Fatalf("late finish overwrote the terminal state: %+v", st)
	}
	if j.finishIfUnstarted() {
		t.Fatalf("finishIfUnstarted re-finished a terminal job")
	}
}

// TestCancelRacingDispatch hammers the submit-then-cancel window the
// dispatcher races through: every job must end in exactly one terminal
// state (no double close of finished), and every granted lease must come
// back whichever side wins each race. Run under -race this covers the
// pop-to-setRunning interleaving a holdable dispatcher cannot stage.
func TestCancelRacingDispatch(t *testing.T) {
	s := New(Config{Budget: 1, QueueDepth: 64})
	defer s.Close()
	for i := 0; i < 30; i++ {
		j, err := s.Submit("racer", tinySpec(5000+uint64(i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		s.Cancel(j.ID)
		st := waitFinished(t, j)
		if st.State != StateCanceled && st.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", j.ID, st.State, st.Error)
		}
	}
	// The refused-start path releases its lease after the job is already
	// terminal, so poll briefly rather than reading Leased once.
	for end := time.Now().Add(10 * time.Second); s.Ledger().Leased() != 0; time.Sleep(time.Millisecond) {
		if time.Now().After(end) {
			t.Fatalf("%d workers still leased after every job finished", s.Ledger().Leased())
		}
	}
	if hw := s.Ledger().HighWater(); hw > s.Budget() {
		t.Errorf("lease high-water %d exceeded the budget %d", hw, s.Budget())
	}
}

// TestTerminalJobRetention pins the bounded job table: past RetainJobs,
// the oldest terminal job ages out of the map (its ID 404s) while newer
// ones stay fetchable, and the accepted counter stays monotone.
func TestTerminalJobRetention(t *testing.T) {
	s := New(Config{Budget: 1, RetainJobs: 2})
	defer s.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := s.Submit("tenant", tinySpec(6000+uint64(i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if st := waitFinished(t, j); st.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", j.ID, st.State, st.Error)
		}
		ids = append(ids, j.ID)
	}
	// Retirement happens just after the finish waitFinished observes.
	evicted := func(id string) bool { _, ok := s.Job(id); return !ok }
	for end := time.Now().Add(10 * time.Second); !evicted(ids[0]); time.Sleep(time.Millisecond) {
		if time.Now().After(end) {
			t.Fatalf("oldest terminal job %s never aged out past RetainJobs", ids[0])
		}
	}
	for _, id := range ids[1:] {
		if evicted(id) {
			t.Errorf("job %s evicted while within the retention bound", id)
		}
	}
	if got := s.Snapshot().AcceptedStudies; got != 3 {
		t.Errorf("accepted studies = %d, want the monotone count 3 despite eviction", got)
	}
}
