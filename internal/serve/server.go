package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"philly/internal/par"
	"philly/internal/sweep"
)

// Config parameterizes a Server.
type Config struct {
	// Budget is the total worker budget shared by every running study;
	// <= 0 means GOMAXPROCS. The admission ledger guarantees the summed
	// worker leases of in-flight studies never exceed it.
	Budget int
	// QueueDepth bounds each tenant's queued (not yet running) studies;
	// a submit past the bound is rejected with 429 + Retry-After. <= 0
	// means 16.
	QueueDepth int
	// CacheEntries bounds the result cache; 0 means 256, negative
	// disables caching (philly-load's before/after ablation).
	CacheEntries int
	// RetainJobs bounds how many terminal (done/failed/canceled) jobs
	// stay addressable for status and result fetches; past the bound the
	// oldest terminal jobs are dropped and their IDs return 404. Live
	// jobs are never dropped. 0 means 1024; negative retains everything
	// (unbounded — tests and debugging only).
	RetainJobs int
	// TraceDir is the directory replay paths in submitted specs are
	// confined to; "" means the server's working directory. Specs may
	// only name relative paths inside it — see resolveReplay.
	TraceDir string
	// Weights are per-tenant fair-share weights; tenants not listed get
	// DefaultWeight. Larger weight, larger share of the worker budget.
	Weights map[string]int
	// DefaultWeight is the weight of unlisted tenants; <= 0 means 1.
	DefaultWeight int
}

// ErrOverloaded is returned by Submit when the tenant's queue is full;
// the HTTP layer maps it to 429 with the embedded Retry-After hint.
type ErrOverloaded struct {
	Tenant     string
	QueueDepth int
	RetryAfter int // seconds
}

func (e ErrOverloaded) Error() string {
	return fmt.Sprintf("serve: tenant %q queue full (%d queued); retry in %ds",
		e.Tenant, e.QueueDepth, e.RetryAfter)
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server is shut down")

// tenantState is one tenant's queue and accounting, guarded by Server.mu.
type tenantState struct {
	name   string
	weight int
	queue  []*Job
	// runningWorkers is the tenant's currently leased worker count;
	// runningJobs its in-flight study count.
	runningWorkers int
	runningJobs    int
	// granted accumulates worker-grants forever; the dispatcher picks the
	// eligible tenant minimizing granted/weight, which is deterministic
	// weighted round-robin (ties broken by name).
	granted int64
	// counters for /v1/stats
	admitted, rejected, completed int64
}

// Server schedules submitted studies onto one shared worker budget with
// per-tenant weighted fairness, and memoizes completed results.
type Server struct {
	cfg    Config
	ledger *par.Ledger
	cache  *resultCache

	mu       sync.Mutex
	closed   bool
	tenants  map[string]*tenantState
	jobs     map[string]*Job
	nextID   int
	accepted int      // all accepted submits ever (monotone; jobs may age out of the map)
	doneLog  []string // terminal job IDs in retirement order, oldest first
	grantLog []string // job IDs in grant order — the fairness tests' witness

	kick chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup // dispatcher + running study goroutines
}

// New builds and starts a server. Close must be called to stop it.
func New(cfg Config) *Server { return newServer(cfg, nil) }

// newServer optionally holds the dispatcher until the hold channel
// closes: submits queue but nothing starts. The fairness tests use it to
// stage every tenant's queue before the first grant, making the drain
// order a deterministic function of the schedule alone.
func newServer(cfg Config, hold <-chan struct{}) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.DefaultWeight <= 0 {
		cfg.DefaultWeight = 1
	}
	if cfg.RetainJobs == 0 {
		cfg.RetainJobs = 1024
	}
	entries := cfg.CacheEntries
	if entries == 0 {
		entries = 256
	}
	s := &Server{
		cfg:     cfg,
		ledger:  par.NewLedger(cfg.Budget),
		cache:   newResultCache(entries),
		tenants: map[string]*tenantState{},
		jobs:    map[string]*Job{},
		kick:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.dispatch(hold)
	return s
}

// Budget returns the shared worker budget.
func (s *Server) Budget() int { return s.ledger.Size() }

// Ledger exposes the admission ledger (white-box accounting for tests
// and /v1/stats).
func (s *Server) Ledger() *par.Ledger { return s.ledger }

// tenant returns (creating if needed) the tenant's state; callers hold mu.
func (s *Server) tenantLocked(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		w := s.cfg.DefaultWeight
		if cw, ok := s.cfg.Weights[name]; ok && cw > 0 {
			w = cw
		}
		t = &tenantState{name: name, weight: w}
		s.tenants[name] = t
	}
	return t
}

// Submit resolves, admits and enqueues one spec for a tenant. A cache
// hit returns an already-done job without consuming any budget or queue
// slot. An empty tenant name means "default".
func (s *Server) Submit(tenant string, spec Spec) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	r, err := spec.resolveWithin(s.cfg.TraceDir)
	if err != nil {
		return nil, err
	}
	hash := CanonicalHash(r)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	t := s.tenantLocked(tenant)
	s.nextID++
	id := fmt.Sprintf("j-%d", s.nextID)
	j := newJob(id, tenant, r, hash, spec.Workers)

	if e, ok := s.cache.get(hash); ok {
		t.admitted++
		t.completed++
		s.jobs[id] = j
		s.accepted++
		s.mu.Unlock()
		j.mu.Lock()
		j.cacheHit = true
		j.mu.Unlock()
		j.finish(StateDone, e.result, e.export, "")
		s.retire(j)
		return j, nil
	}

	if len(t.queue) >= s.cfg.QueueDepth {
		t.rejected++
		retry := s.retryAfterLocked(t)
		s.mu.Unlock()
		return nil, ErrOverloaded{Tenant: tenant, QueueDepth: s.cfg.QueueDepth, RetryAfter: retry}
	}
	t.admitted++
	t.queue = append(t.queue, j)
	s.jobs[id] = j
	s.accepted++
	s.mu.Unlock()

	s.kickDispatch()
	return j, nil
}

// retryAfterLocked estimates seconds until the tenant's queue has room: a
// crude queue-length heuristic (one second per queued study, floor 1) —
// a hint for polite clients, not a promise.
func (s *Server) retryAfterLocked(t *tenantState) int {
	n := len(t.queue) + t.runningJobs
	if n < 1 {
		n = 1
	}
	return n
}

// Job looks up a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel aborts a job: queued jobs finish immediately as canceled,
// running jobs stop at the next scenario × replica boundary. Unknown IDs
// report false.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	// Remove from its tenant's queue if still queued.
	t := s.tenants[j.Tenant]
	if t != nil {
		for i, q := range t.queue {
			if q == j {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	j.requestCancel()
	// If the job never started, it reaches the terminal state here;
	// running jobs transition when the sweep observes the cancel (and
	// the run goroutine retires them).
	if j.finishIfUnstarted() {
		s.retire(j)
	}
	return true
}

// retire records a terminal job in the bounded retention log, evicting
// the oldest terminal jobs past Config.RetainJobs. Live (queued or
// running) jobs are never evicted, so a submit's ID stays addressable
// until after its result could have been fetched.
func (s *Server) retire(j *Job) {
	if s.cfg.RetainJobs < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.retired {
		return
	}
	j.retired = true
	s.doneLog = append(s.doneLog, j.ID)
	for len(s.doneLog) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneLog[0])
		s.doneLog = s.doneLog[1:]
	}
}

// GrantOrder returns the job IDs in the order the dispatcher granted
// them workers — the deterministic-drain witness for the fairness tests.
func (s *Server) GrantOrder() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.grantLog...)
}

// kickDispatch nudges the dispatcher without blocking.
func (s *Server) kickDispatch() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// dispatch is the scheduling loop: on every kick (submit or completion)
// it starts as many queued studies as fairness and the ledger allow.
func (s *Server) dispatch(hold <-chan struct{}) {
	defer s.wg.Done()
	if hold != nil {
		select {
		case <-hold:
		case <-s.quit:
			return
		}
		s.kickDispatch()
	}
	for {
		select {
		case <-s.quit:
			return
		case <-s.kick:
		}
		for s.startNext() {
		}
	}
}

// largestRemainder apportions budget B across weights by the
// largest-remainder method (the paper's VC-quota arithmetic): everyone
// gets floor(B·w/W), the leftover seats go to the largest fractional
// remainders, ties in input order. The input order is sorted tenant
// names, so the apportionment is deterministic.
func largestRemainder(budget int, weights []int) []int {
	total := 0
	for _, w := range weights {
		total += w
	}
	quotas := make([]int, len(weights))
	if total <= 0 || budget <= 0 {
		return quotas
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(budget) * float64(w) / float64(total)
		quotas[i] = int(exact)
		assigned += quotas[i]
		rems[i] = rem{idx: i, frac: exact - float64(quotas[i])}
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; i < budget-assigned; i++ {
		quotas[rems[i%len(rems)].idx]++
	}
	return quotas
}

// startNext starts at most one queued study and reports whether it did.
// Selection is two deterministic passes over the active tenants (sorted
// by name): first tenants that would stay within their largest-remainder
// quota, then — work-conserving — any tenant whose head fits the free
// budget. Every active tenant's quota has a one-study floor: when the
// budget is smaller than the tenant count, largest-remainder hands some
// tenants a zero quota, and without the floor the zero-quota tenants
// would starve behind any tenant holding a seat. Within a pass the
// tenant minimizing granted/weight wins (ties by name), which is
// weighted round-robin: a flooding tenant cannot starve a light one, and
// an idle tenant's share flows to the busy ones.
func (s *Server) startNext() bool {
	s.mu.Lock()

	active := make([]*tenantState, 0, len(s.tenants))
	for _, t := range s.tenants {
		if len(t.queue) > 0 || t.runningWorkers > 0 {
			active = append(active, t)
		}
	}
	sort.Slice(active, func(a, b int) bool { return active[a].name < active[b].name })
	weights := make([]int, len(active))
	for i, t := range active {
		weights[i] = t.weight
	}
	quotas := largestRemainder(s.ledger.Size(), weights)

	// better reports whether a should be granted before b under weighted
	// round-robin.
	better := func(a, b *tenantState) bool {
		// Compare granted/weight as cross-products to stay in integers.
		av := a.granted * int64(b.weight)
		bv := b.granted * int64(a.weight)
		if av != bv {
			return av < bv
		}
		return a.name < b.name
	}
	pick := func(underQuota bool) (*tenantState, *Job) {
		var bestT *tenantState
		for i, t := range active {
			if len(t.queue) == 0 {
				continue
			}
			head := t.queue[0]
			w := s.jobWorkersLocked(head)
			// The one-study floor: a tenant running nothing may always
			// start one study, whatever its apportioned quota.
			limit := quotas[i]
			if limit < w {
				limit = w
			}
			if underQuota && t.runningWorkers+w > limit {
				continue
			}
			if s.ledger.Leased()+w > s.ledger.Size() {
				continue
			}
			if bestT == nil || better(t, bestT) {
				bestT = t
			}
		}
		if bestT == nil {
			return nil, nil
		}
		return bestT, bestT.queue[0]
	}

	t, j := pick(true)
	if t == nil {
		t, j = pick(false)
	}
	if t == nil {
		s.mu.Unlock()
		return false
	}
	w := s.jobWorkersLocked(j)
	if !s.ledger.TryAcquire(w) {
		// Raced with nothing (mu serializes grants), but keep the ledger
		// as the single source of truth anyway.
		s.mu.Unlock()
		return false
	}
	t.queue = t.queue[1:]
	t.runningWorkers += w
	t.runningJobs++
	t.granted += int64(w)
	s.grantLog = append(s.grantLog, j.ID)
	s.wg.Add(1)
	s.mu.Unlock()

	if !j.setRunning(w) {
		// Canceled (or shut down) between dequeue and start: the job is
		// already terminal, so give the lease back instead of running —
		// setRunning must never resurrect a terminal job, or its
		// finished channel would close twice when the sweep returned.
		s.mu.Lock()
		t.runningWorkers -= w
		t.runningJobs--
		s.mu.Unlock()
		s.ledger.Release(w)
		s.wg.Done()
		s.retire(j)
		return true
	}
	go s.run(j, t, w)
	return true
}

// jobWorkersLocked clamps a job's requested worker lease to [1, budget].
func (s *Server) jobWorkersLocked(j *Job) int {
	w := j.reqWorkers
	if w <= 0 {
		w = 1
	}
	if w > s.ledger.Size() {
		w = s.ledger.Size()
	}
	return w
}

// run executes one admitted study on its leased workers and finishes it.
func (s *Server) run(j *Job, t *tenantState, workers int) {
	defer s.wg.Done()
	res, export, err := runResolved(j.Spec, workers, j.cancel, j.setProgress)

	s.mu.Lock()
	t.runningWorkers -= workers
	t.runningJobs--
	t.completed++
	s.mu.Unlock()
	s.ledger.Release(workers)

	switch {
	case err == nil:
		s.cache.put(&cacheEntry{hash: j.Hash, result: res, export: export})
		j.finish(StateDone, res, export, "")
	case errors.Is(err, sweep.ErrCanceled):
		j.finish(StateCanceled, nil, nil, "canceled")
	default:
		j.finish(StateFailed, nil, nil, err.Error())
	}
	s.retire(j)
	s.kickDispatch()
}

// runResolved builds and runs the matrix for a resolved spec, returning
// the result and its canonical export bytes. It is the one execution
// path shared by the server and the cache-correctness tests' fresh runs.
func runResolved(r Resolved, workers int, cancel <-chan struct{}, progress func(done, total int)) (*sweep.Result, []byte, error) {
	m, err := r.BuildMatrix()
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Run(sweep.Options{
		Replicas: r.Replicas,
		Workers:  workers,
		Cancel:   cancel,
		Progress: progress,
	})
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		return nil, nil, err
	}
	return res, buf.Bytes(), nil
}

// TenantStats is one tenant's accounting snapshot for /v1/stats.
type TenantStats struct {
	Weight         int   `json:"weight"`
	Queued         int   `json:"queued"`
	RunningJobs    int   `json:"running_jobs"`
	RunningWorkers int   `json:"running_workers"`
	Admitted       int64 `json:"admitted"`
	Rejected       int64 `json:"rejected"`
	Completed      int64 `json:"completed"`
}

// Stats is the server-wide accounting snapshot for /v1/stats.
type Stats struct {
	Budget          int                    `json:"budget"`
	LeasedWorkers   int                    `json:"leased_workers"`
	LeaseHighWater  int                    `json:"lease_high_water"`
	QueueDepth      int                    `json:"queue_depth"`
	CacheEntries    int                    `json:"cache_entries"`
	CacheHits       uint64                 `json:"cache_hits"`
	CacheMisses     uint64                 `json:"cache_misses"`
	Tenants map[string]TenantStats `json:"tenants"`
	// JobsByState counts the retained jobs only; terminal jobs past
	// Config.RetainJobs have aged out.
	JobsByState map[JobState]int `json:"jobs_by_state"`
	// AcceptedStudies counts every accepted submit ever (monotone).
	AcceptedStudies int `json:"accepted_studies"`
}

// Snapshot collects current server statistics.
func (s *Server) Snapshot() Stats {
	entries, hits, misses := s.cache.stats()
	st := Stats{
		Budget:         s.ledger.Size(),
		LeasedWorkers:  s.ledger.Leased(),
		LeaseHighWater: s.ledger.HighWater(),
		QueueDepth:     s.cfg.QueueDepth,
		CacheEntries:   entries,
		CacheHits:      hits,
		CacheMisses:    misses,
		Tenants:        map[string]TenantStats{},
		JobsByState:    map[JobState]int{},
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, t := range s.tenants {
		st.Tenants[name] = TenantStats{
			Weight:         t.weight,
			Queued:         len(t.queue),
			RunningJobs:    t.runningJobs,
			RunningWorkers: t.runningWorkers,
			Admitted:       t.admitted,
			Rejected:       t.rejected,
			Completed:      t.completed,
		}
	}
	for _, j := range s.jobs {
		st.JobsByState[j.Status().State]++
	}
	st.AcceptedStudies = s.accepted
	return st
}

// Close stops the server: new submits fail with ErrClosed, queued jobs
// finish as canceled, running studies are canceled at their next
// scenario boundary, and Close blocks until every goroutine has exited —
// no leaks, which TestShutdownMidStudyCancelsCleanly pins.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, t := range s.tenants {
		t.queue = nil
	}
	// Cancel every non-terminal job, not just queued-or-running ones:
	// a job the dispatcher popped but has not yet started is in neither
	// set, and missing it would make Close block until that study ran to
	// full completion.
	var open []*Job
	for _, j := range s.jobs {
		if !j.Status().State.terminal() {
			open = append(open, j)
		}
	}
	close(s.quit)
	s.mu.Unlock()

	for _, j := range open {
		j.requestCancel()
		j.finishIfUnstarted()
	}
	s.wg.Wait()
}
