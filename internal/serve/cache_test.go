package serve

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// tinySpec is the cheap study the serve tests submit: a small-scale
// config with a trimmed job count runs in tens of milliseconds.
func tinySpec(seed uint64) Spec {
	return Spec{Scale: "small", Jobs: 80, Seed: seed}
}

// waitFinished blocks until the job reaches a terminal state.
func waitFinished(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Finished():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s never reached a terminal state (stuck at %s)", j.ID, j.Status().State)
	}
	return j.Status()
}

// TestCacheSecondSubmitHitsAndMatchesFreshRun is the exactness proof in
// test form: the second submit of an equal spec must be a cache hit whose
// result is deeply equal to — and whose export is byte-identical to — a
// fresh sweep.Matrix.Run of the same resolved spec.
func TestCacheSecondSubmitHitsAndMatchesFreshRun(t *testing.T) {
	s := New(Config{Budget: 2})
	defer s.Close()
	spec := tinySpec(7)

	j1, err := s.Submit("alice", spec)
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if st := waitFinished(t, j1); st.State != StateDone {
		t.Fatalf("first submit ended %s (%s), want done", st.State, st.Error)
	}
	if j1.CacheHit() {
		t.Fatalf("first submit reported a cache hit on an empty cache")
	}

	j2, err := s.Submit("bob", spec)
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	select {
	case <-j2.Finished():
	case <-time.After(time.Second):
		t.Fatalf("cache hit did not finish immediately")
	}
	if !j2.CacheHit() {
		t.Fatalf("second submit of an equal spec missed the cache")
	}
	res1, exp1 := j1.Result()
	res2, exp2 := j2.Result()
	if !bytes.Equal(exp1, exp2) {
		t.Fatalf("cached export differs from the original response bytes")
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("cached result differs from the original result")
	}

	// The independent referee: a fresh run outside the server entirely.
	r, err := spec.Resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	fresh, freshExport, err := runResolved(r, 1, nil, nil)
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	if !reflect.DeepEqual(fresh, res2) {
		t.Fatalf("cached result differs from a fresh sweep.Matrix.Run of the same resolved spec")
	}
	if !bytes.Equal(freshExport, exp2) {
		t.Fatalf("cached export differs from a fresh run's export bytes")
	}

	_, hits, misses := s.cache.stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

// TestCanonicalHashNormalization pins the hash's equivalence class: JSON
// field order and whitespace are invisible, one changed axis value is not.
func TestCanonicalHashNormalization(t *testing.T) {
	ordered := `{"seed":7,"jobs":80,"scale":"small","axes":["sched.policy=philly,fifo"],"replicas":2}`
	shuffled := `{
		"replicas": 2,
		"axes":     [ "sched.policy=philly,fifo" ],
		"scale":    "small",

		"jobs": 80,   "seed": 7
	}`
	oneAxisValueOff := `{"seed":7,"jobs":80,"scale":"small","axes":["sched.policy=philly"],"replicas":2}`

	hash := func(raw string) string {
		t.Helper()
		var sp Spec
		if err := json.Unmarshal([]byte(raw), &sp); err != nil {
			t.Fatalf("unmarshal %q: %v", raw, err)
		}
		r, err := sp.Resolve()
		if err != nil {
			t.Fatalf("resolve %q: %v", raw, err)
		}
		return CanonicalHash(r)
	}

	if a, b := hash(ordered), hash(shuffled); a != b {
		t.Errorf("field order / whitespace changed the hash: %s vs %s", a, b)
	}
	if a, b := hash(ordered), hash(oneAxisValueOff); a == b {
		t.Errorf("dropping an axis value kept the hash %s", a)
	}
	// Defaults resolve canonically: the explicit spelling of the defaults
	// hashes like the empty spec.
	if a, b := hash(`{}`), hash(`{"scale":"small","seed":1,"replicas":1}`); a != b {
		t.Errorf("explicit defaults hash %s, empty spec %s", b, a)
	}
}

// TestResultCacheLRU pins the eviction and disable semantics white-box.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	for _, h := range []string{"a", "b", "c"} { // c evicts a
		c.put(&cacheEntry{hash: h})
	}
	if _, ok := c.get("a"); ok {
		t.Errorf("oldest entry survived past capacity")
	}
	if _, ok := c.get("b"); !ok {
		t.Errorf("entry b evicted early")
	}
	c.put(&cacheEntry{hash: "d"}) // lru is now c (b was just touched)
	if _, ok := c.get("c"); ok {
		t.Errorf("least recently used entry c survived eviction")
	}
	if _, ok := c.get("b"); !ok {
		t.Errorf("recently used entry b evicted")
	}

	off := newResultCache(-1)
	off.put(&cacheEntry{hash: "x"})
	if _, ok := off.get("x"); ok {
		t.Errorf("disabled cache stored an entry")
	}
	if n, _, _ := off.stats(); n != 0 {
		t.Errorf("disabled cache reports %d entries", n)
	}
}
