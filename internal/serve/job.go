package serve

import (
	"sync"

	"philly/internal/sweep"
)

// JobState is a study's lifecycle state.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether no further transitions can happen.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted study. All mutable fields are guarded by mu;
// readers take snapshots via Status. The changed channel is closed and
// replaced on every update, so progress streamers wait without polling.
type Job struct {
	ID     string
	Tenant string
	Hash   string
	Spec   Resolved
	// reqWorkers is the worker lease the spec asked for (immutable;
	// excluded from Resolved and the hash because worker count never
	// affects results). The dispatcher clamps it to [1, budget].
	reqWorkers int

	mu       sync.Mutex
	state    JobState
	cacheHit bool
	workers  int // granted lease; 0 until running (and for cache hits)
	done     int // completed scenario × replica units
	total    int
	result   *sweep.Result
	export   []byte
	errMsg   string
	changed  chan struct{}
	// cancel aborts the running sweep between units; closed at most once
	// (guarded by canceled).
	cancel   chan struct{}
	canceled bool
	// finished closes exactly once on reaching a terminal state.
	finished chan struct{}
	// retired marks the job as recorded in the server's terminal-job
	// retention log; guarded by Server.mu, not j.mu.
	retired bool
}

func newJob(id, tenant string, r Resolved, hash string, reqWorkers int) *Job {
	return &Job{
		ID:         id,
		Tenant:     tenant,
		Hash:       hash,
		Spec:       r,
		reqWorkers: reqWorkers,
		state:      StateQueued,
		changed:    make(chan struct{}),
		cancel:     make(chan struct{}),
		finished:   make(chan struct{}),
	}
}

// JobStatus is the wire form of a job snapshot.
type JobStatus struct {
	ID       string   `json:"id"`
	Tenant   string   `json:"tenant"`
	Hash     string   `json:"hash"`
	State    JobState `json:"state"`
	CacheHit bool     `json:"cache_hit"`
	Done     int      `json:"done"`
	Total    int      `json:"total"`
	Workers  int      `json:"workers,omitempty"`
	Error    string   `json:"error,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.ID,
		Tenant:   j.Tenant,
		Hash:     j.Hash,
		State:    j.state,
		CacheHit: j.cacheHit,
		Done:     j.done,
		Total:    j.total,
		Workers:  j.workers,
		Error:    j.errMsg,
	}
}

// Finished returns a channel that closes when the job reaches a terminal
// state.
func (j *Job) Finished() <-chan struct{} { return j.finished }

// Result returns the completed result and its export bytes, or (nil, nil)
// until the job is done.
func (j *Job) Result() (*sweep.Result, []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.export
}

// CacheHit reports whether the job was answered from the result cache.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// notifyLocked wakes every waiter; callers hold mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// changeCh returns the current update channel; wait on it after reading a
// snapshot to learn of the next update.
func (j *Job) changeCh() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.changed
}

// setRunning moves a dequeued job to running. It reports false if the
// job already reached a terminal state — a cancel (or shutdown) that
// landed between dequeue and start — in which case the dispatcher must
// release the lease instead of running the study.
func (j *Job) setRunning(workers int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state = StateRunning
	j.workers = workers
	j.notifyLocked()
	return true
}

func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done, j.total = done, total
	j.notifyLocked()
}

// finish moves the job to a terminal state exactly once; later calls are
// ignored (a cancel racing a natural completion keeps whichever landed
// first).
func (j *Job) finish(state JobState, res *sweep.Result, export []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, res, export, errMsg)
}

// finishIfUnstarted atomically moves a job that never started to
// canceled and reports whether it did; running or terminal jobs are
// left alone. The check and the transition share one critical section,
// so a concurrent setRunning cannot interleave between them.
func (j *Job) finishIfUnstarted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.finishLocked(StateCanceled, nil, nil, "canceled before start")
	return true
}

func (j *Job) finishLocked(state JobState, res *sweep.Result, export []byte, errMsg string) {
	if j.state.terminal() {
		return
	}
	j.state = state
	j.result = res
	j.export = export
	j.errMsg = errMsg
	if state == StateDone && j.total == 0 {
		// Cache hits never ran; report a complete progress bar anyway.
		j.done, j.total = 1, 1
	}
	j.notifyLocked()
	close(j.finished)
}

// requestCancel closes the sweep's cancel channel (idempotently). The
// state transition happens when the runner observes it, or immediately
// for jobs that never started.
func (j *Job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.canceled {
		j.canceled = true
		close(j.cancel)
	}
}
