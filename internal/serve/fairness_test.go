package serve

import (
	"errors"
	"reflect"
	"testing"
)

// submitN queues n distinct specs for a tenant (distinct seeds, so none
// can hit the cache) and returns the jobs.
func submitN(t *testing.T, s *Server, tenant string, n int, seedBase uint64) []*Job {
	t.Helper()
	jobs := make([]*Job, n)
	for i := range jobs {
		j, err := s.Submit(tenant, tinySpec(seedBase+uint64(i)))
		if err != nil {
			t.Fatalf("submit %s #%d: %v", tenant, i, err)
		}
		jobs[i] = j
	}
	return jobs
}

// TestDeterministicDrainOrder stages every queue before the first grant
// (dispatcher held), then checks the grant log is exactly the weighted
// round-robin interleave — a flooding tenant cannot starve a light one,
// and the order is a pure function of the staged schedule.
func TestDeterministicDrainOrder(t *testing.T) {
	cases := []struct {
		name    string
		weights map[string]int
		// interleave maps grant position to (tenant, index-within-tenant).
		want func(flood, light []*Job) []string
	}{
		{
			name: "equal weights alternate",
			want: func(f, l []*Job) []string {
				return []string{f[0].ID, l[0].ID, f[1].ID, l[1].ID, f[2].ID, f[3].ID, f[4].ID}
			},
		},
		{
			name:    "light at weight 2 drains two per flood grant",
			weights: map[string]int{"light": 2},
			want: func(f, l []*Job) []string {
				return []string{f[0].ID, l[0].ID, l[1].ID, f[1].ID, f[2].ID, f[3].ID, f[4].ID}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hold := make(chan struct{})
			s := newServer(Config{Budget: 1, QueueDepth: 10, Weights: tc.weights}, hold)
			defer s.Close()

			flood := submitN(t, s, "flood", 5, 100)
			light := submitN(t, s, "light", 2, 200)
			close(hold)

			for _, j := range append(append([]*Job{}, flood...), light...) {
				if st := waitFinished(t, j); st.State != StateDone {
					t.Fatalf("job %s ended %s (%s)", j.ID, st.State, st.Error)
				}
			}
			want := tc.want(flood, light)
			if got := s.GrantOrder(); !reflect.DeepEqual(got, want) {
				t.Errorf("grant order %v, want %v", got, want)
			}
		})
	}
}

// TestFloodRejectedLightAdmitted pins per-tenant admission: a tenant
// flooding past its queue depth gets 429-style rejects with a Retry-After
// hint while another tenant's submissions still complete.
func TestFloodRejectedLightAdmitted(t *testing.T) {
	hold := make(chan struct{})
	s := newServer(Config{Budget: 1, QueueDepth: 2}, hold)
	defer s.Close()

	flood := submitN(t, s, "flood", 2, 300)
	_, err := s.Submit("flood", tinySpec(310))
	var over ErrOverloaded
	if !errors.As(err, &over) {
		t.Fatalf("flooding past queue depth returned %v, want ErrOverloaded", err)
	}
	if over.Tenant != "flood" || over.QueueDepth != 2 || over.RetryAfter < 1 {
		t.Errorf("reject detail %+v, want tenant flood, depth 2, retry >= 1s", over)
	}

	light, err := s.Submit("light", tinySpec(320))
	if err != nil {
		t.Fatalf("light tenant rejected while only flood's queue is full: %v", err)
	}
	close(hold)

	if st := waitFinished(t, light); st.State != StateDone {
		t.Fatalf("light job ended %s (%s)", st.State, st.Error)
	}
	for _, j := range flood {
		if st := waitFinished(t, j); st.State != StateDone {
			t.Fatalf("flood job %s ended %s (%s)", j.ID, st.State, st.Error)
		}
	}

	snap := s.Snapshot()
	if got := snap.Tenants["flood"].Rejected; got != 1 {
		t.Errorf("flood rejected counter = %d, want 1", got)
	}
	if got := snap.Tenants["light"].Rejected; got != 0 {
		t.Errorf("light rejected counter = %d, want 0", got)
	}
}

// TestLeasesNeverExceedBudget drives concurrent studies with mixed worker
// requests through a 2-worker budget and reads the white-box lease
// counter: the high-water mark can never exceed the budget, and every
// lease is returned.
func TestLeasesNeverExceedBudget(t *testing.T) {
	s := New(Config{Budget: 2, QueueDepth: 64})
	defer s.Close()

	var jobs []*Job
	for i := 0; i < 8; i++ {
		spec := tinySpec(400 + uint64(i))
		spec.Workers = i%3 + 1 // 1, 2, and over-budget 3 (clamped to 2)
		tenant := "even"
		if i%2 == 1 {
			tenant = "odd"
		}
		j, err := s.Submit(tenant, spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if st := waitFinished(t, j); st.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", j.ID, st.State, st.Error)
		}
		if st := j.Status(); st.Workers < 1 || st.Workers > s.Budget() {
			t.Errorf("job %s granted %d workers outside [1, %d]", j.ID, st.Workers, s.Budget())
		}
	}
	if hw := s.Ledger().HighWater(); hw > s.Budget() {
		t.Errorf("lease high-water %d exceeded the budget %d", hw, s.Budget())
	}
	if leased := s.Ledger().Leased(); leased != 0 {
		t.Errorf("%d workers still leased after all jobs finished", leased)
	}
}

// TestLargestRemainder pins the apportionment arithmetic.
func TestLargestRemainder(t *testing.T) {
	cases := []struct {
		budget  int
		weights []int
		want    []int
	}{
		{8, []int{1, 1}, []int{4, 4}},
		{8, []int{3, 1}, []int{6, 2}},
		{7, []int{1, 1}, []int{4, 3}},          // remainder seat to the first tie
		{1, []int{1, 1}, []int{1, 0}},          // budget below tenant count
		{5, []int{2, 2, 1}, []int{2, 2, 1}},
		{0, []int{1, 2}, []int{0, 0}},
		{4, nil, []int{}},
	}
	for _, tc := range cases {
		got := largestRemainder(tc.budget, tc.weights)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("largestRemainder(%d, %v) = %v, want %v", tc.budget, tc.weights, got, tc.want)
		}
	}
}
