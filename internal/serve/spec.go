// Package serve turns the simulation engine into a long-lived
// multi-tenant service: an HTTP/JSON API that accepts study, sweep and
// federation specs, schedules them onto one shared worker budget with
// admission control and per-tenant weighted fairness (the paper's VC-quota
// ideas applied to the simulator itself), streams progress, and memoizes
// completed results in an LRU keyed by a canonical config hash.
//
// The cache is provably exact, not heuristically "probably fine": every
// study is bit-deterministic in its fully-resolved configuration (the
// invariance and conformance suites enforce this for every engine), and
// the hash covers exactly the inputs that resolution depends on — so two
// requests with equal hashes would have produced byte-identical results,
// and returning the memoized one is indistinguishable from re-running.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"philly/internal/core"
	"philly/internal/faults"
	"philly/internal/federation"
	"philly/internal/sweep"
	"philly/internal/trace"
	"philly/internal/workload"
)

// Spec is the request body of POST /v1/studies: one study, sweep, or
// federation run, expressed through the same surfaces the CLIs expose
// (philly-sim's -pattern/-replay/-faults/-checkpoint/-federation,
// philly-sweep's -axis/-replicas). Zero values mean the CLI defaults.
type Spec struct {
	// Scale selects the base configuration: small, medium or full
	// (default small). Incompatible with Federation, whose member presets
	// fix each cluster's scale.
	Scale string `json:"scale,omitempty"`
	// Seed is the base seed for per-run derivation (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Jobs overrides the base workload job count (0 = scale default).
	Jobs int `json:"jobs,omitempty"`
	// Replicas is the number of seed replicas per scenario (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Workers is the worker lease the study asks for; the server clamps
	// it to [1, budget]. It never affects results — only wall-clock — so
	// it is excluded from the canonical hash.
	Workers int `json:"workers,omitempty"`
	// Pattern is a temporal workload pattern preset name (philly-sim
	// -pattern). Mutually exclusive with Replay.
	Pattern string `json:"pattern,omitempty"`
	// Replay replays a server-local trace file instead of the generative
	// workload (philly-sim -replay). The path must be relative and stay
	// inside the server's trace directory (Config.TraceDir); absolute
	// paths and ".." escapes are rejected, so a client can never make
	// the server open an arbitrary file. The file's content digest — not
	// the path — enters the canonical hash, so an edited trace can never
	// alias a stale cached result.
	Replay string `json:"replay,omitempty"`
	// Faults enables correlated outages (philly-sim -faults grammar).
	Faults string `json:"faults,omitempty"`
	// Checkpoint enables the checkpoint/restore cost model (philly-sim
	// -checkpoint grammar).
	Checkpoint string `json:"checkpoint,omitempty"`
	// Federation runs a federated multi-cluster study of these
	// "+"-separated member presets (philly-sim -federation grammar).
	Federation string `json:"federation,omitempty"`
	// Axes are philly-sweep -axis specs ("name=v1,v2", repeatable); the
	// scenarios are the cross-product, in axis order.
	Axes []string `json:"axes,omitempty"`
}

// Resolved is a Spec with every default applied and every sub-spec
// re-rendered canonically by the same parsers the CLIs validate with.
// Its canonical JSON rendering (fixed struct field order) is what
// CanonicalHash digests: two Specs resolve equal iff they would produce
// identical studies, regardless of JSON field order, whitespace, or
// cosmetic spec spelling ("server+rack:1" vs "rack+server").
type Resolved struct {
	Scale        string   `json:"scale"`
	Seed         uint64   `json:"seed"`
	Jobs         int      `json:"jobs,omitempty"`
	Replicas     int      `json:"replicas"`
	Pattern      string   `json:"pattern,omitempty"`
	Replay       string   `json:"replay,omitempty"`
	ReplayDigest string   `json:"replay_digest,omitempty"`
	Faults       string   `json:"faults,omitempty"`
	Checkpoint   string   `json:"checkpoint,omitempty"`
	Federation   string   `json:"federation,omitempty"`
	Axes         []string `json:"axes,omitempty"`
}

// scaleConfig maps a scale name to its base configuration, with the same
// names and error text as the philly-sweep CLI.
func scaleConfig(scale string) (core.Config, error) {
	switch scale {
	case "small":
		return core.SmallConfig(), nil
	case "medium":
		return core.MediumConfig(), nil
	case "full":
		return core.DefaultConfig(), nil
	default:
		return core.Config{}, fmt.Errorf("unknown scale %q", scale)
	}
}

// maxReplayBytes caps client-supplied replay traces. Digesting reads
// the whole file, so without a cap one submit could pin a handler
// goroutine on an arbitrarily large server-local file. A var, not a
// const, so tests can lower it without writing 64 MiB fixtures.
var maxReplayBytes int64 = 64 << 20

// resolveReplay validates a client-supplied replay path — relative
// only, no escape from root ("" means the working directory), a regular
// file (never a device node or directory), and under the size cap —
// and returns the server-local path plus its content digest. Unreadable
// and irregular paths all map to one generic error: distinguishing
// "absent" from "present but unreadable" would let clients probe the
// server's filesystem.
func resolveReplay(root, p string) (full, digest string, err error) {
	if filepath.IsAbs(p) {
		return "", "", fmt.Errorf("replay %q: absolute paths are not allowed (replay paths are relative to the server's trace directory)", p)
	}
	clean := filepath.Clean(p)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", "", fmt.Errorf("replay %q: path escapes the trace directory", p)
	}
	full = clean
	if root != "" {
		full = filepath.Join(root, clean)
	}
	info, statErr := os.Stat(full)
	if statErr != nil || !info.Mode().IsRegular() {
		return "", "", fmt.Errorf("replay %q: not a readable trace file", p)
	}
	if info.Size() > maxReplayBytes {
		return "", "", fmt.Errorf("replay %q: trace is %d bytes, over the %d-byte limit", p, info.Size(), maxReplayBytes)
	}
	digest, err = digestFile(full)
	if err != nil {
		return "", "", fmt.Errorf("replay %q: not a readable trace file", p)
	}
	return full, digest, nil
}

// Resolve validates the spec through the shared CLI parsers and renders
// it canonically. Every error it returns is the same fail-fast message
// the equivalent CLI flag would print, so a 400 from the service reads
// exactly like a philly-sim/-sweep usage error. Replay paths resolve
// inside the current working directory; the server confines them to its
// Config.TraceDir via resolveWithin.
func (s Spec) Resolve() (Resolved, error) { return s.resolveWithin("") }

// resolveWithin is Resolve with replay paths confined to traceDir (""
// means the working directory).
func (s Spec) resolveWithin(traceDir string) (Resolved, error) {
	r := Resolved{Seed: s.Seed, Jobs: s.Jobs, Replicas: s.Replicas}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Replicas <= 0 {
		r.Replicas = 1
	}
	if r.Jobs < 0 {
		return Resolved{}, fmt.Errorf("jobs %d: want a positive int", s.Jobs)
	}

	r.Scale = s.Scale
	if r.Scale == "" {
		r.Scale = "small"
	}
	if _, err := scaleConfig(r.Scale); err != nil {
		return Resolved{}, err
	}

	if s.Pattern != "" && s.Replay != "" {
		return Resolved{}, fmt.Errorf("pattern and replay are mutually exclusive (a replayed trace already fixes the arrival timeline)")
	}
	if s.Pattern != "" {
		p, err := workload.PresetPattern(s.Pattern)
		if err != nil {
			return Resolved{}, err
		}
		r.Pattern = p.Name
	}
	if s.Replay != "" {
		full, digest, err := resolveReplay(traceDir, s.Replay)
		if err != nil {
			return Resolved{}, err
		}
		// Load once for fail-fast validation; BuildMatrix loads again at
		// run time (the file content is pinned by the digest).
		if _, err := trace.LoadTraceFile(full, trace.DefaultReplayOptions()); err != nil {
			return Resolved{}, err
		}
		r.Replay = full
		r.ReplayDigest = digest
	}
	if s.Faults != "" {
		canon, err := faults.CanonicalSpec(s.Faults)
		if err != nil {
			return Resolved{}, err
		}
		r.Faults = canon
	}
	if s.Checkpoint != "" {
		canon, err := core.CanonicalCheckpointSpec(s.Checkpoint)
		if err != nil {
			return Resolved{}, err
		}
		r.Checkpoint = canon
	}
	if s.Federation != "" {
		if _, err := federation.ParseSpec(0, s.Federation); err != nil {
			return Resolved{}, err
		}
		var members []string
		for _, p := range strings.Split(s.Federation, "+") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
		r.Federation = strings.Join(members, "+")
		// Member presets fix each cluster's scale and workload size; the
		// same combinations philly-sim rejects are rejected here.
		if s.Scale != "" {
			return Resolved{}, fmt.Errorf("scale is incompatible with federation (member presets fix each cluster's scale)")
		}
		if s.Jobs != 0 {
			return Resolved{}, fmt.Errorf("jobs is incompatible with federation (member presets fix each cluster's workload)")
		}
	}
	for _, spec := range s.Axes {
		ax, err := sweep.ParseAxis(spec)
		if err != nil {
			return Resolved{}, err
		}
		labels := make([]string, len(ax.Values))
		for i, v := range ax.Values {
			labels[i] = v.Label
		}
		r.Axes = append(r.Axes, ax.Name+"="+strings.Join(labels, ","))
	}

	// Expansion-time errors (duplicate axis names, an axis colliding with
	// a field-derived one under federation) should 400 at submit, not
	// fail the job after it was queued.
	m, err := r.BuildMatrix()
	if err != nil {
		return Resolved{}, err
	}
	if _, err := m.Scenarios(); err != nil {
		return Resolved{}, err
	}
	return r, nil
}

// BuildMatrix turns a resolved spec into the sweep matrix that runs it.
// Non-federated specs apply pattern/replay/faults/checkpoint to the base
// configuration exactly like philly-sim's flags; federated specs route
// them through single-value axes instead, because axis mutations are the
// one mechanism the sweep re-applies to every member's preset
// configuration (see sweep.federatedConfig).
func (r Resolved) BuildMatrix() (sweep.Matrix, error) {
	base, err := scaleConfig(r.Scale)
	if err != nil {
		return sweep.Matrix{}, err
	}
	base.Seed = r.Seed
	if r.Jobs > 0 {
		base.Workload.TotalJobs = r.Jobs
	}

	var axes []sweep.Axis
	for _, spec := range r.Axes {
		ax, err := sweep.ParseAxis(spec)
		if err != nil {
			return sweep.Matrix{}, err
		}
		axes = append(axes, ax)
	}

	if r.Federation == "" {
		if r.Pattern != "" {
			p, err := workload.PresetPattern(r.Pattern)
			if err != nil {
				return sweep.Matrix{}, err
			}
			base.Workload.Pattern = p
		}
		if r.Replay != "" {
			specs, err := trace.LoadTraceFile(r.Replay, trace.DefaultReplayOptions())
			if err != nil {
				return sweep.Matrix{}, err
			}
			if err := trace.ApplyReplay(&base, specs); err != nil {
				return sweep.Matrix{}, err
			}
		}
		if r.Faults != "" {
			fc, err := faults.ParseSpec(r.Faults)
			if err != nil {
				return sweep.Matrix{}, err
			}
			base.Faults = fc
		}
		if r.Checkpoint != "" {
			cc, err := core.ParseCheckpointSpec(r.Checkpoint)
			if err != nil {
				return sweep.Matrix{}, err
			}
			base.Checkpoint = cc
		}
		return sweep.Matrix{Base: base, Axes: axes}, nil
	}

	// Federated: field-derived single-value axes reach every member. The
	// failure.domains and workload.* axes share the exact parsers the
	// non-federated path uses; checkpoint needs a custom value because
	// the checkpoint.interval axis cannot carry explicit write/restore
	// costs.
	appendAxis := func(spec string) error {
		ax, err := sweep.ParseAxis(spec)
		if err != nil {
			return err
		}
		axes = append(axes, ax)
		return nil
	}
	if r.Pattern != "" {
		if err := appendAxis("workload.pattern=" + r.Pattern); err != nil {
			return sweep.Matrix{}, err
		}
	}
	if r.Replay != "" {
		if err := appendAxis("workload.trace=" + r.Replay); err != nil {
			return sweep.Matrix{}, err
		}
	}
	if r.Faults != "" {
		if err := appendAxis("failure.domains=" + r.Faults); err != nil {
			return sweep.Matrix{}, err
		}
	}
	if r.Checkpoint != "" {
		cc, err := core.ParseCheckpointSpec(r.Checkpoint)
		if err != nil {
			return sweep.Matrix{}, err
		}
		axes = append(axes, sweep.Axis{Name: "checkpoint.spec", Values: []sweep.Value{{
			Label: r.Checkpoint,
			// CheckpointConfig is a value type, so sharing cc across
			// scenarios cannot alias.
			Apply: func(c *core.Config) { c.Checkpoint = cc },
		}}})
	}
	if err := appendAxis(sweep.FleetAxisName + "=" + r.Federation); err != nil {
		return sweep.Matrix{}, err
	}
	return sweep.Matrix{Base: base, Axes: axes}, nil
}
