package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// TenantHeader names the request header selecting the tenant; requests
// without it (or a ?tenant= query override) belong to "default".
const TenantHeader = "X-Philly-Tenant"

// Handler returns the server's HTTP API:
//
//	POST   /v1/studies             submit a Spec (202 queued, 200 cache hit,
//	                               400 malformed, 429 overloaded + Retry-After)
//	GET    /v1/studies/{id}        job status
//	GET    /v1/studies/{id}/result completed export JSON (409 until done)
//	GET    /v1/studies/{id}/events progress stream (SSE; ?stream=ndjson for
//	                               chunked JSON lines)
//	DELETE /v1/studies/{id}        cancel
//	GET    /v1/stats               admission/cache/tenant counters
//	GET    /v1/healthz             liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/studies", s.handleSubmit)
	mux.HandleFunc("GET /v1/studies/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/studies/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/studies/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/studies/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// requestTenant resolves the request's tenant.
func requestTenant(r *http.Request) string {
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return "default"
}

// submitResponse is the POST /v1/studies body.
type submitResponse struct {
	JobStatus
	ResultURL string `json:"result_url,omitempty"`
	EventsURL string `json:"events_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	j, err := s.Submit(requestTenant(r), spec)
	if err != nil {
		var over ErrOverloaded
		switch {
		case errors.As(err, &over):
			w.Header().Set("Retry-After", strconv.Itoa(over.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	resp := submitResponse{
		JobStatus: j.Status(),
		EventsURL: "/v1/studies/" + j.ID + "/events",
	}
	code := http.StatusAccepted
	if resp.State == StateDone {
		// Served from the result cache: the answer already exists.
		code = http.StatusOK
		resp.ResultURL = "/v1/studies/" + j.ID + "/result"
	}
	writeJSON(w, code, resp)
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown study %q", r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	st := j.Status()
	if st.State != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("study %s is %s; result exists only for done studies", j.ID, st.State))
		return
	}
	_, export := j.Result()
	w.Header().Set("Content-Type", "application/json")
	w.Write(export)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	s.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleEvents streams job progress until the job reaches a terminal
// state, the client goes away, or the server shuts down. Server-Sent
// Events by default ("progress" events, then one "done"); ?stream=ndjson
// sends the same snapshots as chunked JSON lines.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	mode := r.URL.Query().Get("stream")
	if mode == "" {
		mode = "sse"
	}
	if mode != "sse" && mode != "ndjson" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown stream mode %q (want sse or ndjson)", mode))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if mode == "sse" {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)

	write := func(event string, st JobStatus) {
		b, _ := json.Marshal(st)
		if mode == "sse" {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		} else {
			w.Write(append(b, '\n'))
		}
		if canFlush {
			flusher.Flush()
		}
	}

	for {
		// Grab the change channel before the snapshot: an update landing
		// between snapshot and wait closes this channel, so it cannot be
		// missed.
		changed := j.changeCh()
		st := j.Status()
		if st.State.terminal() {
			write(streamEventName(st.State), st)
			return
		}
		write("progress", st)
		select {
		case <-changed:
		case <-j.Finished():
		case <-r.Context().Done():
			return
		case <-s.quit:
			// Shutdown: emit the final snapshot (likely canceled) and end
			// the stream rather than holding the connection open.
			write(streamEventName(j.Status().State), j.Status())
			return
		}
	}
}

// streamEventName maps a terminal state to its SSE event name.
func streamEventName(st JobState) string {
	if st.terminal() {
		return strings.ToLower(string(st))
	}
	return "progress"
}
