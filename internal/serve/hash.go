package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// CanonicalHash digests a resolved spec into the result-cache key.
//
// Why a hit is provably the same answer: (1) Resolve maps every
// acceptable spelling of a spec — JSON field order, whitespace, elided
// defaults, non-canonical sub-spec forms — to one canonical Resolved
// value through the same parsers the CLIs validate with; (2) encoding a
// struct fixes the JSON field order, so equal Resolved values render to
// equal bytes; (3) the engine is bit-deterministic in the fully-resolved
// configuration (enforced by the invariance and cross-engine conformance
// suites under -race), and everything the configuration depends on is in
// Resolved — including the content digest of a replayed trace file, not
// its path. Equal hashes therefore imply byte-identical study results.
// Worker counts and tenancy are deliberately absent: they change
// wall-clock, never results.
func CanonicalHash(r Resolved) string {
	b, err := json.Marshal(r)
	if err != nil {
		// Resolved is plain strings and integers; Marshal cannot fail.
		panic(fmt.Sprintf("serve: marshaling resolved spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// digestFile hashes a replay trace's content for the canonical hash.
func digestFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("serve: digesting %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
