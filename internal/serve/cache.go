package serve

import (
	"container/list"
	"sync"

	"philly/internal/sweep"
)

// cacheEntry is one memoized study: the decoded result (for white-box
// equality tests and future reuse) plus the rendered export bytes every
// result fetch serves verbatim — so a cache hit and the original response
// are byte-identical, not merely equivalent.
type cacheEntry struct {
	hash   string
	result *sweep.Result
	export []byte
}

// resultCache is an LRU over completed studies keyed by canonical config
// hash. Eviction is by entry count: entries are full study exports whose
// size varies by orders of magnitude with the spec, so a byte budget
// would punish big sweeps for being big; the operator sizes the count to
// the working set instead.
type resultCache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used; values are *cacheEntry
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

// newResultCache builds a cache holding up to max entries; max <= 0
// disables caching entirely (every lookup misses, nothing is stored) —
// the ablation mode philly-load's before/after baselines use.
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the entry for hash, promoting it to most recently used.
func (c *resultCache) get(hash string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[hash]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores an entry, evicting from the LRU tail past capacity. A
// duplicate hash overwrites in place: both copies are provably identical,
// so last-writer-wins is safe.
func (c *resultCache) put(e *cacheEntry) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.hash]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.hash] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).hash)
	}
}

// stats returns (entries, hits, misses).
func (c *resultCache) stats() (int, uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.hits, c.misses
}
