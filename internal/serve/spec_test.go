package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"philly/internal/core"
	"philly/internal/stats"
	"philly/internal/trace"
	"philly/internal/workload"
)

// writeTinyTrace writes a small valid spec-CSV trace into dir and
// returns its file name.
func writeTinyTrace(t *testing.T, dir, name string) string {
	t.Helper()
	cfg := core.SmallConfig()
	cfg.Workload.TotalJobs = 30
	g := stats.NewRNG(cfg.Seed).Split("workload")
	gen, err := workload.NewGenerator(cfg.Workload, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteSpecsCSV(&buf, gen.Generate(g)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

// TestReplayPathConfinement pins the replay path policy: relative paths
// inside the trace directory resolve (with a content digest), while
// absolute paths, ".." escapes, and oversized files are rejected, and
// every unreadable or irregular path maps to one generic error that
// leaks no existence information.
func TestReplayPathConfinement(t *testing.T) {
	dir := t.TempDir()
	name := writeTinyTrace(t, dir, "ok.csv")

	r, err := Spec{Replay: name}.resolveWithin(dir)
	if err != nil {
		t.Fatalf("valid relative replay rejected: %v", err)
	}
	if want := filepath.Join(dir, name); r.Replay != want || r.ReplayDigest == "" {
		t.Errorf("resolved replay %q digest %q, want path %q and a digest", r.Replay, r.ReplayDigest, want)
	}

	cases := []struct{ name, replay, want string }{
		{"absolute path", filepath.Join(dir, name), "absolute paths are not allowed"},
		{"dotdot escape", "../" + name, "escapes the trace directory"},
		{"sneaky escape", "sub/../../" + name, "escapes the trace directory"},
		{"missing file", "missing.csv", `replay "missing.csv": not a readable trace file`},
		{"directory not file", ".", "not a readable trace file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Spec{Replay: tc.replay}.resolveWithin(dir)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("resolve replay %q = %v, want error containing %q", tc.replay, err, tc.want)
			}
		})
	}

	// The size cap runs before the digest pass ever opens the file;
	// maxReplayBytes is a var precisely so this fixture stays tiny.
	defer func(old int64) { maxReplayBytes = old }(maxReplayBytes)
	maxReplayBytes = 16
	_, err = Spec{Replay: name}.resolveWithin(dir)
	if err == nil || !strings.Contains(err.Error(), "over the 16-byte limit") {
		t.Errorf("oversized trace resolved anyway: %v", err)
	}
}
