package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"philly/internal/simulation"
	"philly/internal/stats"
	"philly/internal/workload"
)

// The self-measuring load harness: an open-loop generator that drives a
// philly-serve instance with arrivals drawn from the same workload.Pattern
// presets the simulator models its tenants with — the service is profiled
// the way the paper profiles its cluster — and reports the measured
// capacity curve (latency percentiles, cache-hit ratio, admission
// rejects) in the `go test -bench` line format, so `bench-compare
// -threshold` gates service-level regressions exactly like engine-level
// ones.

// LoadOptions parameterizes one load stage.
type LoadOptions struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client to use; nil means http.DefaultClient.
	Client *http.Client
	// Tenant is sent as the tenant header ("default" when empty).
	Tenant string
	// Requests is the number of arrivals to generate (at least 1).
	Requests int
	// RPS is the mean offered arrival rate, requests per second (> 0).
	RPS float64
	// Pattern modulates arrivals with a workload pattern preset (one
	// pattern period is mapped onto the stage's expected duration); ""
	// or "stationary" keeps a homogeneous Poisson process.
	Pattern string
	// Specs are the request bodies, cycled per arrival; at least one.
	// Repeats of the same spec are what exercise the result cache.
	Specs []Spec
	// Seed fixes the arrival schedule and spec cycling (default 1). The
	// schedule is deterministic; measured latencies of course are not.
	Seed uint64
	// Timeout bounds one request's submit → result wait (default 120s).
	Timeout time.Duration
}

// LoadRecord is one request's outcome.
type LoadRecord struct {
	// Offset is the scheduled arrival offset from stage start. Durations
	// marshal as integer nanoseconds, hence the _ns tags.
	Offset time.Duration `json:"offset_ns"`
	// Latency is submit → result fetched (completed requests only).
	Latency time.Duration `json:"latency_ns"`
	Status  int           `json:"status"`
	CacheHit bool         `json:"cache_hit"`
	Rejected bool         `json:"rejected"`
	Err      string       `json:"err,omitempty"`
}

// LoadReport is one stage's aggregate: the saturation-report row.
type LoadReport struct {
	Pattern   string  `json:"pattern"`
	RPS       float64 `json:"rps"`
	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	CacheHits int     `json:"cache_hits"`
	Rejected  int     `json:"rejected"`
	Errors    int     `json:"errors"`
	// Latency aggregates over completed requests, in nanoseconds.
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P95Ns  float64 `json:"p95_ns"`
	P99Ns  float64 `json:"p99_ns"`
	// WallSeconds is first submit → last completion; AchievedRPS is
	// completed requests over that wall.
	WallSeconds float64 `json:"wall_seconds"`
	AchievedRPS float64 `json:"achieved_rps"`
	// CacheHitPct is hits over completed requests, in percent.
	CacheHitPct float64 `json:"cache_hit_pct"`
	Records     []LoadRecord `json:"records,omitempty"`
}

// arrivalSchedule draws the open-loop arrival offsets: a Poisson process
// at RPS thinned by the pattern's rate profile, with one pattern period
// mapped onto the stage's expected duration. Deterministic in Seed.
func arrivalSchedule(opts LoadOptions) ([]time.Duration, error) {
	var pat *workload.Pattern
	if opts.Pattern != "" {
		p, err := workload.PresetPattern(opts.Pattern)
		if err != nil {
			return nil, err
		}
		pat = p
	}
	rng := stats.NewRNG(opts.Seed).Split("serve-load")
	expected := float64(opts.Requests) / opts.RPS // seconds
	maxScale := 1.0
	rateAt := func(tSec float64) float64 { return 1 }
	if pat != nil {
		maxScale = patternMaxRate(pat)
		period := pat.Period
		if period <= 0 {
			period = simulation.Day
		}
		rateAt = func(tSec float64) float64 {
			frac := tSec / expected
			return pat.RateAt(simulation.Time(frac * float64(period)))
		}
	}
	offsets := make([]time.Duration, 0, opts.Requests)
	t := 0.0
	for len(offsets) < opts.Requests {
		t += rng.Exponential(opts.RPS * maxScale)
		if rng.Float64()*maxScale <= rateAt(t) {
			offsets = append(offsets, time.Duration(t * float64(time.Second)))
		}
	}
	return offsets, nil
}

// patternMaxRate bounds RateAt for thinning: the max phase rate, or 1 if
// the phases leave gaps (gaps run at the base rate).
func patternMaxRate(p *workload.Pattern) float64 {
	m := 1.0
	for _, ph := range p.Phases {
		if ph.Rate > m {
			m = ph.Rate
		}
	}
	return m
}

// RunLoad drives one load stage and aggregates the outcome. Open loop:
// every arrival fires at its scheduled offset whether or not earlier
// requests finished — the discipline that reveals saturation instead of
// hiding it behind client back-pressure.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	if opts.Requests < 1 {
		return nil, fmt.Errorf("serve: load requests must be >= 1")
	}
	if opts.RPS <= 0 {
		return nil, fmt.Errorf("serve: load rps must be > 0")
	}
	if len(opts.Specs) == 0 {
		return nil, fmt.Errorf("serve: load needs at least one spec")
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	// Fail fast on malformed specs before any traffic: the generator
	// shares the server's validators.
	bodies := make([][]byte, len(opts.Specs))
	for i, sp := range opts.Specs {
		if _, err := sp.Resolve(); err != nil {
			return nil, fmt.Errorf("serve: load spec %d: %w", i, err)
		}
		b, err := json.Marshal(sp)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	offsets, err := arrivalSchedule(opts)
	if err != nil {
		return nil, err
	}

	records := make([]LoadRecord, len(offsets))
	start := time.Now()
	var wg sync.WaitGroup
	for i, off := range offsets {
		wg.Add(1)
		go func(i int, off time.Duration) {
			defer wg.Done()
			time.Sleep(off - time.Since(start))
			records[i] = driveOne(client, opts, bodies[i%len(bodies)], off)
		}(i, off)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &LoadReport{
		Pattern:  opts.Pattern,
		RPS:      opts.RPS,
		Requests: len(records),
		Records:  records,
	}
	if rep.Pattern == "" {
		rep.Pattern = "stationary"
	}
	var lats []float64
	for _, r := range records {
		switch {
		case r.Rejected:
			rep.Rejected++
		case r.Err != "":
			rep.Errors++
		default:
			rep.Completed++
			if r.CacheHit {
				rep.CacheHits++
			}
			lats = append(lats, float64(r.Latency))
		}
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		sum := 0.0
		for _, l := range lats {
			sum += l
		}
		rep.MeanNs = sum / float64(len(lats))
		rep.P50Ns = percentile(lats, 0.50)
		rep.P95Ns = percentile(lats, 0.95)
		rep.P99Ns = percentile(lats, 0.99)
		rep.CacheHitPct = 100 * float64(rep.CacheHits) / float64(rep.Completed)
	}
	rep.WallSeconds = wall.Seconds()
	if rep.WallSeconds > 0 {
		rep.AchievedRPS = float64(rep.Completed) / rep.WallSeconds
	}
	return rep, nil
}

// driveOne submits one spec and waits for its result via the ndjson
// progress stream, then downloads the result body. Latency covers the
// whole span — what a dashboard or CI client actually waits.
func driveOne(client *http.Client, opts LoadOptions, body []byte, off time.Duration) LoadRecord {
	rec := LoadRecord{Offset: off}
	t0 := time.Now()
	fail := func(err error) LoadRecord {
		rec.Err = err.Error()
		return rec
	}
	req, err := http.NewRequest("POST", opts.BaseURL+"/v1/studies", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if opts.Tenant != "" {
		req.Header.Set(TenantHeader, opts.Tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return fail(err)
	}
	var sub submitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	rec.Status = resp.StatusCode
	if resp.StatusCode == http.StatusTooManyRequests {
		rec.Rejected = true
		return rec
	}
	if err != nil {
		return fail(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fail(fmt.Errorf("submit: HTTP %d", resp.StatusCode))
	}
	rec.CacheHit = sub.CacheHit

	if sub.State != StateDone {
		final, err := waitDone(client, opts, sub.ID)
		if err != nil {
			return fail(err)
		}
		if final.State != StateDone {
			return fail(fmt.Errorf("study %s ended %s: %s", sub.ID, final.State, final.Error))
		}
	}
	res, err := client.Get(opts.BaseURL + "/v1/studies/" + sub.ID + "/result")
	if err != nil {
		return fail(err)
	}
	_, err = io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if err != nil {
		return fail(err)
	}
	if res.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("result: HTTP %d", res.StatusCode))
	}
	rec.Latency = time.Since(t0)
	return rec
}

// waitDone follows the chunked-JSON progress stream to the terminal
// snapshot.
func waitDone(client *http.Client, opts LoadOptions, id string) (JobStatus, error) {
	req, err := http.NewRequest("GET", opts.BaseURL+"/v1/studies/"+id+"/events?stream=ndjson", nil)
	if err != nil {
		return JobStatus{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()
	resp, err := client.Do(req.WithContext(ctx))
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last JobStatus
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			return JobStatus{}, err
		}
		if last.State.terminal() {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil {
		return JobStatus{}, err
	}
	return last, fmt.Errorf("progress stream for %s ended before a terminal state", id)
}

// percentile reads the q-quantile from sorted values (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// BenchLine renders the stage as one `go test -bench` result line:
//
//	BenchmarkServeLoad/pattern=burst/rps=8  12  34567 ns/op  5 cache_hits ...
//
// ns/op is the mean end-to-end latency and the iteration count the
// completed requests, so bench-compare -threshold gates the service's
// latency exactly like an engine benchmark's, and the extra metrics ride
// along as b.ReportMetric-style pairs.
func (r *LoadReport) BenchLine() string {
	g := func(f float64) string {
		if math.IsNaN(f) {
			return "0"
		}
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
	name := fmt.Sprintf("BenchmarkServeLoad/pattern=%s/rps=%s",
		r.Pattern, strconv.FormatFloat(r.RPS, 'g', -1, 64))
	return fmt.Sprintf("%s \t %d \t %s ns/op \t %s p50_ns \t %s p95_ns \t %s p99_ns \t %.1f cache_hit_pct \t %d rejected_reqs \t %d err_reqs \t %.2f achieved_rps",
		name, r.Completed, g(r.MeanNs), g(r.P50Ns), g(r.P95Ns), g(r.P99Ns),
		r.CacheHitPct, r.Rejected, r.Errors, r.AchievedRPS)
}

// WriteBenchJSON wraps bench lines as a `go test -json` output-event
// stream — the exact BENCH_*.json schema the repo's baselines use and
// bench-compare consumes.
func WriteBenchJSON(w io.Writer, lines []string) error {
	enc := json.NewEncoder(w)
	for _, line := range lines {
		ev := struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}{Action: "output", Output: line + "\n"}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
