package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// These are bench-compare's parsing regexes verbatim; the load harness's
// whole point is that its report lines gate CI through that tool, so the
// formats are pinned against each other here.
var (
	benchCompareLine  = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	benchCompareExtra = regexp.MustCompile(`([0-9.eE+-]+) ([A-Za-z_][A-Za-z0-9_]*)(\s|$)`)
)

// TestRunLoadSelfTest drives the harness against an in-process server.
// The cache is warmed synchronously first, so every generated request is
// a deterministic cache hit — the assertions cannot flake on timing.
func TestRunLoadSelfTest(t *testing.T) {
	s := New(Config{Budget: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	spec := tinySpec(21)
	warm, err := s.Submit("", spec)
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	if st := waitFinished(t, warm); st.State != StateDone {
		t.Fatalf("warm run ended %s (%s)", st.State, st.Error)
	}

	rep, err := RunLoad(LoadOptions{
		BaseURL:  ts.URL,
		Requests: 8,
		RPS:      100,
		Pattern:  "diurnal",
		Specs:    []Spec{spec},
		Seed:     3,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Requests != 8 || rep.Completed != 8 || rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("report %+v, want 8 clean completions", rep)
	}
	if rep.CacheHits != 8 || rep.CacheHitPct != 100 {
		t.Errorf("cache hits %d (%.1f%%), want all 8 against a warmed cache", rep.CacheHits, rep.CacheHitPct)
	}
	if !(rep.MeanNs > 0 && rep.P50Ns <= rep.P95Ns && rep.P95Ns <= rep.P99Ns) {
		t.Errorf("latency aggregates out of order: mean %.0f p50 %.0f p95 %.0f p99 %.0f",
			rep.MeanNs, rep.P50Ns, rep.P95Ns, rep.P99Ns)
	}
	if len(rep.Records) != 8 {
		t.Errorf("%d records, want 8", len(rep.Records))
	}

	// The report round-trips its own JSON schema.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var back LoadReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if back.Pattern != rep.Pattern || back.CacheHits != rep.CacheHits || back.P99Ns != rep.P99Ns {
		t.Errorf("report did not round-trip: %+v vs %+v", back, rep)
	}
}

// TestRunLoadValidation fails fast with the shared validators before any
// traffic is generated.
func TestRunLoadValidation(t *testing.T) {
	base := LoadOptions{BaseURL: "http://127.0.0.1:0", Requests: 4, RPS: 10, Specs: []Spec{tinySpec(1)}}
	cases := []struct {
		name    string
		mutate  func(*LoadOptions)
		wantSub string
	}{
		{"zero requests", func(o *LoadOptions) { o.Requests = 0 }, "requests must be >= 1"},
		{"zero rps", func(o *LoadOptions) { o.RPS = 0 }, "rps must be > 0"},
		{"no specs", func(o *LoadOptions) { o.Specs = nil }, "at least one spec"},
		{"bad spec", func(o *LoadOptions) { o.Specs = []Spec{{Scale: "galactic"}} }, `load spec 0: unknown scale "galactic"`},
		{"bad pattern", func(o *LoadOptions) { o.Pattern = "nope" }, "nope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			tc.mutate(&opts)
			_, err := RunLoad(opts)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("RunLoad error %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestArrivalScheduleDeterministic pins the open-loop schedule: same
// options, same offsets; the pattern reshapes them; offsets ascend.
func TestArrivalScheduleDeterministic(t *testing.T) {
	opts := LoadOptions{Requests: 64, RPS: 50, Seed: 9}
	a, err := arrivalSchedule(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := arrivalSchedule(opts)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different schedules")
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("offsets not ascending at %d: %v < %v", i, a[i], a[i-1])
		}
	}
	opts.Pattern = "burst"
	c, err := arrivalSchedule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Errorf("burst pattern left the stationary schedule unchanged")
	}
	opts.Pattern = "nope"
	if _, err := arrivalSchedule(opts); err == nil {
		t.Errorf("unknown pattern accepted")
	}
}

// TestBenchLineFormat checks a report line parses under bench-compare's
// own regexes, with the service metrics riding as ReportMetric extras.
func TestBenchLineFormat(t *testing.T) {
	rep := &LoadReport{
		Pattern: "burst", RPS: 8, Requests: 16, Completed: 12, CacheHits: 6,
		Rejected: 3, Errors: 1, MeanNs: 5.5e6, P50Ns: 4e6, P95Ns: 9e6, P99Ns: 9.5e6,
		CacheHitPct: 50, AchievedRPS: 7.25,
	}
	line := rep.BenchLine()
	m := benchCompareLine.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("bench line does not match bench-compare's regex: %q", line)
	}
	if m[1] != "BenchmarkServeLoad/pattern=burst/rps=8" {
		t.Errorf("benchmark name %q", m[1])
	}
	if m[2] != "5500000" {
		t.Errorf("ns/op field %q, want the mean latency 5500000", m[2])
	}
	extras := map[string]string{}
	for _, em := range benchCompareExtra.FindAllStringSubmatch(m[3], -1) {
		extras[em[2]] = em[1]
	}
	for unit, want := range map[string]string{
		"p50_ns": "4000000", "p95_ns": "9000000", "p99_ns": "9500000",
		"cache_hit_pct": "50.0", "rejected_reqs": "3", "err_reqs": "1",
		"achieved_rps": "7.25",
	} {
		if got := extras[unit]; got != want {
			t.Errorf("extra %s = %q, want %q (line %q)", unit, got, want, line)
		}
	}
}

// TestWriteBenchJSON emits one valid go-test-json output event per line.
func TestWriteBenchJSON(t *testing.T) {
	var buf bytes.Buffer
	lines := []string{"BenchmarkA \t 1 \t 2 ns/op", "BenchmarkB \t 3 \t 4 ns/op"}
	if err := WriteBenchJSON(&buf, lines); err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(got) != len(lines) {
		t.Fatalf("%d events, want %d", len(got), len(lines))
	}
	for i, raw := range got {
		var ev struct{ Action, Output string }
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			t.Fatalf("event %d is not JSON: %v", i, err)
		}
		if ev.Action != "output" || ev.Output != lines[i]+"\n" {
			t.Errorf("event %d = %+v, want output %q", i, ev, lines[i])
		}
	}
}
