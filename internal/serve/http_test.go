package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"philly/internal/core"
	"philly/internal/faults"
	"philly/internal/federation"
	"philly/internal/sweep"
	"philly/internal/workload"
)

// newHTTPServer starts a serve.Server behind httptest; a non-nil hold
// keeps the dispatcher parked so submitted jobs stay queued.
func newHTTPServer(t *testing.T, cfg Config, hold <-chan struct{}) (*Server, *httptest.Server) {
	t.Helper()
	s := newServer(cfg, hold)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, tenant string, spec Spec) (*http.Response, submitResponse) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	return postRaw(t, ts, tenant, body)
}

func postRaw(t *testing.T, ts *httptest.Server, tenant string, body []byte) (*http.Response, submitResponse) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/studies", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil && resp.StatusCode < 400 {
		t.Fatalf("decode submit response: %v", err)
	}
	return resp, sub
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, b
}

// TestEndToEnd walks the whole surface: submit, SSE progress to the
// terminal event, result download, cache-hit re-submit with a
// byte-identical result, stats, health.
func TestEndToEnd(t *testing.T) {
	// The dispatcher starts held so the SSE client deterministically
	// attaches while the job is still queued — guaranteeing the stream
	// carries progress events before the terminal one.
	hold := make(chan struct{})
	_, ts := newHTTPServer(t, Config{Budget: 2}, hold)
	spec := tinySpec(9)

	resp, sub := postSpec(t, ts, "alice", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	if sub.Tenant != "alice" || sub.EventsURL == "" {
		t.Fatalf("submit response %+v missing tenant/events URL", sub)
	}

	// SSE: read the first event while the job is queued, then release the
	// dispatcher and drain to the terminal event that ends the stream.
	evResp, err := http.Get(ts.URL + sub.EventsURL)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content type %q, want text/event-stream", ct)
	}
	br := bufio.NewReader(evResp.Body)
	var first strings.Builder
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading first SSE event: %v", err)
		}
		first.WriteString(line)
		if line == "\n" {
			break
		}
	}
	if !strings.HasPrefix(first.String(), "event: progress\n") {
		t.Fatalf("first SSE event of a queued job:\n%s\nwant a progress event", first.String())
	}
	close(hold)
	rest, err := io.ReadAll(br)
	evResp.Body.Close()
	if err != nil {
		t.Fatalf("draining SSE stream: %v", err)
	}
	events := first.String() + string(rest)
	if !strings.Contains(events, "event: done\n") {
		t.Fatalf("SSE stream ended without a done event:\n%s", events)
	}
	var last JobStatus
	for _, line := range strings.Split(strings.TrimSpace(events), "\n") {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(data), &last); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		}
	}
	if last.State != StateDone || last.Done != last.Total || last.Total == 0 {
		t.Fatalf("final SSE snapshot %+v, want done with full progress", last)
	}

	resResp, result1 := getBody(t, ts.URL+"/v1/studies/"+sub.ID+"/result")
	if resResp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", resResp.StatusCode, result1)
	}
	if _, err := sweep.DecodeJSON(bytes.NewReader(result1)); err != nil {
		t.Fatalf("result is not a sweep export: %v", err)
	}

	// Second submit: cache hit, 200, byte-identical result.
	resp2, sub2 := postSpec(t, ts, "bob", spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit submit: HTTP %d, want 200", resp2.StatusCode)
	}
	if !sub2.CacheHit || sub2.State != StateDone || sub2.ResultURL == "" {
		t.Fatalf("cache-hit submit response %+v", sub2)
	}
	if _, result2 := getBody(t, ts.URL+sub2.ResultURL); !bytes.Equal(result1, result2) {
		t.Fatalf("cached result is not byte-identical to the original")
	}

	// ndjson flavor of a finished job's stream: one terminal line.
	ndResp, nd := getBody(t, ts.URL+sub2.EventsURL+"?stream=ndjson")
	if ct := ndResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("ndjson content type %q", ct)
	}
	var ndLast JobStatus
	if err := json.Unmarshal(bytes.TrimSpace(nd), &ndLast); err != nil || ndLast.State != StateDone {
		t.Errorf("ndjson stream for a done job = %q (err %v), want one done snapshot", nd, err)
	}

	statsResp, statsBody := getBody(t, ts.URL+"/v1/stats")
	var snap Stats
	if err := json.Unmarshal(statsBody, &snap); err != nil || statsResp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d, %v", statsResp.StatusCode, err)
	}
	if snap.CacheHits != 1 || snap.AcceptedStudies != 2 {
		t.Errorf("stats %+v, want 1 cache hit over 2 accepted studies", snap)
	}

	if hResp, _ := getBody(t, ts.URL+"/v1/healthz"); hResp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", hResp.StatusCode)
	}
}

// TestSubmitErrorParity pins the 400 bodies to the exact fail-fast
// messages the CLI flags print: the service and the CLIs share one set of
// validators, and this table breaks if they drift apart.
func TestSubmitErrorParity(t *testing.T) {
	parserErr := func(err error) string {
		t.Helper()
		if err == nil {
			t.Fatalf("shared parser unexpectedly accepted the probe input")
		}
		return err.Error()
	}
	patternErr := func() string { _, err := workload.PresetPattern("nope"); return parserErr(err) }
	faultsErr := func() string { _, err := faults.CanonicalSpec("bogus"); return parserErr(err) }
	checkpointErr := func() string { _, err := core.CanonicalCheckpointSpec("bogus"); return parserErr(err) }
	federationErr := func() string { _, err := federation.ParseSpec(0, "nope"); return parserErr(err) }
	axisErr := func() string { _, err := sweep.ParseAxis("bogus"); return parserErr(err) }

	cases := []struct {
		name, body, want string
	}{
		{"unknown scale", `{"scale":"galactic"}`, `unknown scale "galactic"`},
		{"negative jobs", `{"jobs":-3}`, "jobs -3: want a positive int"},
		{"unknown pattern", `{"pattern":"nope"}`, patternErr()},
		{"bad faults spec", `{"faults":"bogus"}`, faultsErr()},
		{"bad checkpoint spec", `{"checkpoint":"bogus"}`, checkpointErr()},
		{"bad federation member", `{"federation":"nope"}`, federationErr()},
		{"bad axis", `{"axes":["bogus"]}`, axisErr()},
		{"pattern and replay", `{"pattern":"diurnal","replay":"x.trace"}`,
			"pattern and replay are mutually exclusive (a replayed trace already fixes the arrival timeline)"},
		{"scale under federation", `{"scale":"small","federation":"philly-small+philly-small"}`,
			"scale is incompatible with federation (member presets fix each cluster's scale)"},
	}

	_, ts := newHTTPServer(t, Config{Budget: 1}, nil)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postRaw(t, ts, "", []byte(tc.body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400", resp.StatusCode)
			}
			// Re-issue to read the error body (postRaw drained it).
			req, _ := http.NewRequest("POST", ts.URL+"/v1/studies", strings.NewReader(tc.body))
			r2, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Body.Close()
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(r2.Body).Decode(&e); err != nil {
				t.Fatalf("400 body is not the error JSON: %v", err)
			}
			if e.Error != tc.want {
				t.Errorf("error body %q,\nwant the shared parser's %q", e.Error, tc.want)
			}
		})
	}
}

// TestQueuedLifecycleOverHTTP holds the dispatcher to pin the
// pre-running surface: 409 before done, 429 past the queue depth with a
// Retry-After header, DELETE cancel, terminal SSE for canceled jobs, and
// 404/400 odds and ends.
func TestQueuedLifecycleOverHTTP(t *testing.T) {
	hold := make(chan struct{})
	_, ts := newHTTPServer(t, Config{Budget: 1, QueueDepth: 1}, hold)

	resp, sub := postSpec(t, ts, "solo", tinySpec(11))
	if resp.StatusCode != http.StatusAccepted || sub.State != StateQueued {
		t.Fatalf("submit: HTTP %d state %s, want 202 queued", resp.StatusCode, sub.State)
	}

	if r, body := getBody(t, ts.URL+"/v1/studies/"+sub.ID+"/result"); r.StatusCode != http.StatusConflict {
		t.Errorf("result of a queued study: HTTP %d (%s), want 409", r.StatusCode, body)
	}

	over, _ := postSpec(t, ts, "solo", tinySpec(12))
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit past queue depth: HTTP %d, want 429", over.StatusCode)
	}
	if ra := over.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 without a useful Retry-After header (got %q)", ra)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/studies/"+sub.ID, nil)
	dResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(dResp.Body).Decode(&st)
	dResp.Body.Close()
	if dResp.StatusCode != http.StatusOK || st.State != StateCanceled {
		t.Fatalf("cancel: HTTP %d state %s, want 200 canceled", dResp.StatusCode, st.State)
	}

	if _, events := getBody(t, ts.URL+"/v1/studies/"+sub.ID+"/events"); !strings.Contains(string(events), "event: canceled\n") {
		t.Errorf("SSE for a canceled job = %q, want a canceled event", events)
	}

	if r, _ := getBody(t, ts.URL+"/v1/studies/nope"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown study status: HTTP %d, want 404", r.StatusCode)
	}
	if r, _ := getBody(t, ts.URL+"/v1/studies/"+sub.ID+"/events?stream=morse"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown stream mode: HTTP %d, want 400", r.StatusCode)
	}
}

// TestShutdownMidStudyCancelsCleanly closes the server while a study is
// running and an SSE client is attached: the study must end canceled at
// its next scenario boundary, the stream must terminate, submits must
// 503, and — the goleak-style check — every goroutine the server and its
// study spawned must exit.
func TestShutdownMidStudyCancelsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Budget: 1})
	ts := httptest.NewServer(s.Handler())

	// Replicas stretch the study across many cancel points without making
	// any single unit slow.
	spec := tinySpec(13)
	spec.Replicas = 12
	resp, sub := postSpec(t, ts, "", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	j, ok := s.Job(sub.ID)
	if !ok {
		t.Fatalf("job %s not found", sub.ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Attach a streaming client mid-run; it must be released by shutdown.
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		r, err := http.Get(ts.URL + "/v1/studies/" + sub.ID + "/events")
		if err == nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
	}()

	s.Close()
	st := j.Status()
	if !st.State.terminal() {
		t.Errorf("job state %s after Close, want terminal", st.State)
	}
	if st.State == StateFailed {
		t.Errorf("job failed on shutdown: %s", st.Error)
	}
	if _, err := s.Submit("", tinySpec(14)); err != ErrClosed {
		t.Errorf("submit after Close returned %v, want ErrClosed", err)
	}
	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		t.Errorf("SSE client still blocked after shutdown")
	}
	ts.Close()

	// Goroutine settle loop: everything above (server goroutines, study
	// pool workers, httptest conns) must unwind.
	var after int
	for end := time.Now().Add(10 * time.Second); time.Now().Before(end); time.Sleep(10 * time.Millisecond) {
		if after = runtime.NumGoroutine(); after <= before {
			break
		}
	}
	if after > before {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked: %d before, %d after shutdown\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestSubmitAfterCloseOverHTTP maps ErrClosed to 503.
func TestSubmitAfterCloseOverHTTP(t *testing.T) {
	s := New(Config{Budget: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	resp, _ := postSpec(t, ts, "", tinySpec(15))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after close: HTTP %d, want 503", resp.StatusCode)
	}
}
