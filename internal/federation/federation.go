// Package federation runs multi-cluster studies: N member clusters — each
// a full core.Study with its own workload, failure profile and telemetry —
// advance inside one virtual timeline on the simulation.Fleet coordinator
// (the generalization of the per-VC sharded engine where a shard is an
// entire cluster), and interact only through coarse-grained fleet events
// executing at window barriers:
//
//   - Job spillover: when a member's queued jobs wait past a threshold,
//     never-started jobs are withdrawn and re-submitted to the member with
//     the most free GPUs — the cross-fleet offloading question raised by
//     the Helios and Meta multi-cluster studies (PAPERS.md).
//   - Fleet-wide quota rebalancing: at a fleet tick, every member
//     re-shares its VC quota pool proportionally to instantaneous demand,
//     all at one consistent barrier.
//
// Determinism contract (see PERFORMANCE.md § PR 5): between barriers the
// members share no state, so any worker count and any member execution
// interleaving produces a bit-identical federation.Result; barrier events
// run alone, in one global order, on the coordinator goroutine. A
// federated study with one member and interactions disabled is
// byte-identical to the plain sequential Study — the regression anchor
// TestSingleMemberMatchesPlainStudy pins.
package federation

import (
	"fmt"
	"strings"

	"philly/internal/core"
	"philly/internal/par"
	"philly/internal/simulation"
	"philly/internal/stats"
)

// Member is one cluster of the federation.
type Member struct {
	// Name labels the member in results and tables; unique in the fleet.
	Name string
	// Config is the member's full study configuration, seed included.
	Config core.Config
}

// Spillover configures cross-cluster job offloading.
type Spillover struct {
	// Enabled turns spillover checks on (needs at least two members).
	Enabled bool
	// MinWait is the queueing delay past which a never-started job becomes
	// a spillover candidate.
	MinWait simulation.Time
	// Interval is the fleet-tick cadence of spillover checks.
	Interval simulation.Time
	// MaxMovesPerCheck bounds churn per donor member per check.
	MaxMovesPerCheck int
}

// DefaultSpillover returns the default offloading policy: check every 10
// minutes, move jobs stuck for 30+ minutes, at most 8 per member per check.
func DefaultSpillover() Spillover {
	return Spillover{
		Enabled:          true,
		MinWait:          30 * simulation.Minute,
		Interval:         10 * simulation.Minute,
		MaxMovesPerCheck: 8,
	}
}

// Evacuation configures checkpoint-migration of restorable jobs away from
// outage-degraded members — the extension of spillover from never-started
// jobs to running ones (Meta-style workload evacuation; Kokolis et al.
// 2024). Checks ride the spillover ticker, so they need Spillover.Enabled
// and at least two members; they only ever fire on members whose
// correlated-outage engine (core.Config.Faults) is holding capacity down,
// so the default-enabled policy is inert in fault-free fleets.
type Evacuation struct {
	// Enabled turns evacuation checks on.
	Enabled bool
	// MinDownFraction is the outage-held share of a member's GPU capacity
	// at which the member starts evacuating at barriers.
	MinDownFraction float64
	// MaxMovesPerCheck bounds churn per donor member per check.
	MaxMovesPerCheck int
	// DataGravitySeconds is the one-time cross-member transfer penalty
	// (dataset + checkpoint movement) the receiving side pays on top of
	// the donor's checkpoint restore cost.
	DataGravitySeconds float64
}

// DefaultEvacuation returns the default evacuation policy: members with a
// tenth of their capacity down evacuate up to 4 restorable jobs per check,
// each paying 5 minutes of data gravity on arrival.
func DefaultEvacuation() Evacuation {
	return Evacuation{
		Enabled:            true,
		MinDownFraction:    0.10,
		MaxMovesPerCheck:   4,
		DataGravitySeconds: 300,
	}
}

// Rebalance configures the fleet-wide quota rebalancing tick.
type Rebalance struct {
	// Enabled turns rebalancing on.
	Enabled bool
	// Interval is the fleet-tick cadence.
	Interval simulation.Time
}

// DefaultRebalance returns the default rebalancing policy: every member
// re-shares its VC quotas by demand once an hour.
func DefaultRebalance() Rebalance {
	return Rebalance{Enabled: true, Interval: simulation.Hour}
}

// Config is a federated study specification.
type Config struct {
	// Members are the clusters, in fleet order (the order barrier logic
	// walks them — part of the deterministic contract).
	Members []Member
	// Spillover configures job offloading between members.
	Spillover Spillover
	// Evacuation configures checkpoint-migration of restorable jobs off
	// outage-degraded members (piggybacks on the spillover ticker).
	Evacuation Evacuation
	// Rebalance configures the fleet-wide quota rebalancing tick.
	Rebalance Rebalance
}

// Validate checks the federation configuration, including every member's.
func (c Config) Validate() error {
	if len(c.Members) == 0 {
		return fmt.Errorf("federation: at least one member required")
	}
	seen := map[string]bool{}
	for i, m := range c.Members {
		if m.Name == "" {
			return fmt.Errorf("federation: member %d has no name", i)
		}
		if seen[m.Name] {
			return fmt.Errorf("federation: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		if err := m.Config.Validate(); err != nil {
			return fmt.Errorf("federation: member %q: %w", m.Name, err)
		}
	}
	if c.Spillover.Enabled {
		if c.Spillover.Interval <= 0 {
			return fmt.Errorf("federation: spillover interval must be positive")
		}
		if c.Spillover.MinWait < 0 {
			return fmt.Errorf("federation: spillover min wait must be >= 0")
		}
		if c.Spillover.MaxMovesPerCheck <= 0 {
			return fmt.Errorf("federation: spillover move bound must be positive")
		}
	}
	if c.Evacuation.Enabled {
		if c.Evacuation.MinDownFraction < 0 || c.Evacuation.MinDownFraction > 1 {
			return fmt.Errorf("federation: evacuation min down fraction %v out of [0, 1]", c.Evacuation.MinDownFraction)
		}
		if c.Evacuation.MaxMovesPerCheck <= 0 {
			return fmt.Errorf("federation: evacuation move bound must be positive")
		}
		if c.Evacuation.DataGravitySeconds < 0 {
			return fmt.Errorf("federation: evacuation data gravity must be >= 0")
		}
	}
	if c.Rebalance.Enabled && c.Rebalance.Interval <= 0 {
		return fmt.Errorf("federation: rebalance interval must be positive")
	}
	return nil
}

// NewConfig builds a federation from member preset names, with per-member
// seeds derived from the fleet seed via stats.DeriveEntitySeed (so nearby
// fleet seeds give unrelated member workloads) and default interactions.
// Repeated presets get #n name suffixes.
func NewConfig(seed uint64, presetNames ...string) (Config, error) {
	if len(presetNames) == 0 {
		return Config{}, fmt.Errorf("federation: at least one member preset required")
	}
	counts := map[string]int{}
	for _, p := range presetNames {
		counts[p]++
	}
	ordinal := map[string]int{}
	cfg := Config{
		Spillover:  DefaultSpillover(),
		Evacuation: DefaultEvacuation(),
		Rebalance:  DefaultRebalance(),
	}
	for i, p := range presetNames {
		mc, err := PresetConfig(p)
		if err != nil {
			return Config{}, err
		}
		mc.Seed = stats.DeriveEntitySeed(seed, "fed-member", uint64(i))
		name := p
		if counts[p] > 1 {
			ordinal[p]++
			name = fmt.Sprintf("%s#%d", p, ordinal[p])
		}
		cfg.Members = append(cfg.Members, Member{Name: name, Config: mc})
	}
	return cfg, nil
}

// ParseSpec parses a CLI/sweep federation spec: "+"-separated member
// preset names, e.g. "philly-small+helios-like".
func ParseSpec(seed uint64, spec string) (Config, error) {
	var names []string
	for _, p := range strings.Split(spec, "+") {
		p = strings.TrimSpace(p)
		if p != "" {
			names = append(names, p)
		}
	}
	if len(names) == 0 {
		return Config{}, fmt.Errorf("federation: empty federation spec %q", spec)
	}
	return NewConfig(seed, names...)
}

// MemberFleetStats counts one member's cross-cluster traffic.
type MemberFleetStats struct {
	Name string
	// JobsOffloaded / JobsReceived count spillover moves out of / into the
	// member; the GPU variants weigh them by gang width.
	JobsOffloaded, JobsReceived int
	GPUsOffloaded, GPUsReceived int
	// JobsEvacuated / JobsResumed count checkpoint migrations out of / into
	// the member; the GPU variants weigh them by gang width.
	JobsEvacuated, JobsResumed int
	GPUsEvacuated, GPUsResumed int
}

// FleetStats summarizes the federation's cross-cluster activity. All
// counters are deterministic: they depend on the member timelines and the
// barrier schedule only, never on worker count.
type FleetStats struct {
	// SpilloverChecks / SpilloverMoves count ticks and executed moves.
	SpilloverChecks, SpilloverMoves int
	// EvacuationMoves counts checkpoint migrations of restorable jobs off
	// outage-degraded members.
	EvacuationMoves int
	// RebalanceTicks / QuotaChanges count ticks and per-VC quota updates.
	RebalanceTicks, QuotaChanges int
	// Members holds per-member traffic, in fleet order.
	Members []MemberFleetStats
	// Windows is the coordinator's window accounting.
	Windows simulation.WindowStats
}

// MemberResult pairs a member with its completed study result.
type MemberResult struct {
	Name   string
	Result *core.StudyResult
}

// Result is a completed federated study.
type Result struct {
	// Members holds per-member results, in fleet order.
	Members []MemberResult
	// Fleet summarizes the cross-cluster interactions.
	Fleet FleetStats
}

// memberRT is the runtime pairing of a member study with its fleet lane.
type memberRT struct {
	name  string
	study *core.Study
	view  *simulation.Member
	// horizon is the member's own run bound (set at Arm): spillover never
	// targets a member past it — the injected submission would sit beyond
	// the lane horizon forever.
	horizon simulation.Time

	offloaded, received      int
	offloadedGPUs, recvdGPUs int
	evacuated, resumed       int
	evacuatedGPUs, resumeGPU int
}

// Study is a configured, runnable federation.
type Study struct {
	cfg     Config
	fleet   *simulation.Fleet
	members []*memberRT
	pool    *par.Pool
	stats   FleetStats
	ran     bool
}

// NewStudy builds a federated study: one core.Study per member, each
// executing on its private fleet lane.
func NewStudy(cfg Config) (*Study, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Study{cfg: cfg, fleet: simulation.NewFleet(len(cfg.Members))}
	for i, m := range cfg.Members {
		st, err := core.NewStudy(m.Config)
		if err != nil {
			return nil, fmt.Errorf("federation: member %q: %w", m.Name, err)
		}
		view := s.fleet.Member(simulation.ShardID(i))
		st.SetExecutor(view)
		s.members = append(s.members, &memberRT{name: m.Name, study: st, view: view})
	}
	return s, nil
}

// NumMembers returns the member count.
func (s *Study) NumMembers() int { return len(s.members) }

// MemberNumJobs returns member mi's generated job count — the sizing hint
// for streaming reducers (spillover injections can push job indices past
// it).
func (s *Study) MemberNumJobs(mi int) int { return s.members[mi].study.NumJobs() }

// StreamMemberJobs registers fn as every member's job observer (see
// core.Study.StreamJobs): fn(member, i, r) runs as member's job i
// finalizes, barrier-serialized with all other global events, and the
// member study then releases the record's variable-size parts — so a
// paper-scale federated study holds scalars per completed job instead of
// full attempt histories. fn must not retain r or r.Attempts past the
// call. Must be called before Run.
func (s *Study) StreamMemberJobs(fn func(member, i int, r *core.JobResult)) {
	for mi, m := range s.members {
		mi := mi
		m.study.StreamJobs(func(i int, r *core.JobResult) { fn(mi, i, r) })
	}
}

// SetPool attaches a shared fork-join pool: member lanes run concurrently
// inside fleet windows, and each member's own parallel layers (telemetry
// walk, placement scoring, log scans) draw on the same budget. Must be
// called before Run. Pool size changes wall-clock only — the Result is
// bit-identical for any size, including none.
func (s *Study) SetPool(p *par.Pool) {
	s.pool = p
	s.fleet.SetPool(p)
	for _, m := range s.members {
		m.study.SetPool(p)
	}
}

// anyPending reports whether any member still has unfinished jobs.
func (s *Study) anyPending() bool {
	for _, m := range s.members {
		if m.study.PendingJobs() > 0 {
			return true
		}
	}
	return false
}

// Run executes the federation to completion.
func (s *Study) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("federation: study already ran")
	}
	s.ran = true

	// Arm every member on its lane; the fleet horizon covers the longest
	// member (each lane additionally honors its own, so a short member's
	// timeline is identical to its standalone run).
	var maxH simulation.Time
	for _, m := range s.members {
		h := m.study.Arm()
		m.horizon = h
		m.view.SetHorizon(h)
		if h > maxH {
			maxH = h
		}
	}

	// Cross-cluster interaction ticks are fleet-global events: they run
	// alone at window barriers and are the only code that touches more
	// than one member.
	if s.cfg.Spillover.Enabled && len(s.members) > 1 {
		iv := s.cfg.Spillover.Interval
		s.fleet.Ticker(iv, iv, func(now simulation.Time) bool {
			s.spill(now)
			return now < maxH && s.anyPending()
		})
	}
	if s.cfg.Rebalance.Enabled {
		iv := s.cfg.Rebalance.Interval
		s.fleet.Ticker(iv, iv, func(now simulation.Time) bool {
			s.rebalance()
			return now < maxH && s.anyPending()
		})
	}

	s.fleet.Run(maxH)

	res := &Result{Fleet: s.stats}
	res.Fleet.Windows = s.fleet.Stats()
	for _, m := range s.members {
		sr, err := m.study.Collect()
		if err != nil {
			return nil, fmt.Errorf("federation: member %q: %w", m.name, err)
		}
		res.Members = append(res.Members, MemberResult{Name: m.name, Result: sr})
		res.Fleet.Members = append(res.Fleet.Members, MemberFleetStats{
			Name:          m.name,
			JobsOffloaded: m.offloaded, JobsReceived: m.received,
			GPUsOffloaded: m.offloadedGPUs, GPUsReceived: m.recvdGPUs,
			JobsEvacuated: m.evacuated, JobsResumed: m.resumed,
			GPUsEvacuated: m.evacuatedGPUs, GPUsResumed: m.resumeGPU,
		})
	}
	return res, nil
}

// spill runs one spillover check at a window barrier: for every donor in
// fleet order, withdraw overdue never-started jobs and re-submit each to
// the other member with the most free GPUs. A per-barrier ledger charges
// each move against the target's free capacity (the injected submissions
// only land on the lanes after the barrier, so FreeGPUs alone would let
// one barrier over-commit a target arbitrarily), and members that already
// finished their own run — drained-and-stopped, or past their horizon —
// are never targets: their lanes would hold the injected submission
// forever and silently lose the job.
func (s *Study) spill(now simulation.Time) {
	s.stats.SpilloverChecks++
	sp := s.cfg.Spillover
	free := make([]int, len(s.members))
	alive := make([]bool, len(s.members))
	for i, m := range s.members {
		free[i] = m.study.FreeGPUs()
		alive[i] = m.study.PendingJobs() > 0 && now < m.horizon
	}
	// Evacuation pass first: a member losing capacity to an outage moves
	// restorable (checkpointed) jobs before ordinary queue spillover runs,
	// so the evacuated gangs claim target capacity ahead of never-started
	// jobs — they are the ones actively burning lost GPU time.
	if s.cfg.Evacuation.Enabled {
		ev := s.cfg.Evacuation
		for di, donor := range s.members {
			total := donor.study.TotalGPUs()
			down := donor.study.OutageGPUsDown()
			if donor.study.PendingJobs() == 0 || total == 0 || down == 0 ||
				float64(down)/float64(total) < ev.MinDownFraction {
				continue
			}
			for _, cand := range donor.study.EvacuationCandidates(ev.MaxMovesPerCheck) {
				ti := s.pickTarget(di, cand.GPUs, free, alive)
				if ti < 0 {
					continue
				}
				target := s.members[ti]
				spec, remaining, err := donor.study.Evacuate(cand.ID, now)
				if err != nil {
					// Candidates were validated against the same barrier
					// state; a failure here is a bookkeeping bug.
					panic(fmt.Sprintf("federation: evacuate job %d from %s: %v", cand.ID, donor.name, err))
				}
				penalty := donor.study.CheckpointRestoreSeconds() + ev.DataGravitySeconds
				spec.VC = target.study.SpilloverVC()
				if _, err := target.study.InjectResumed(spec, remaining, penalty, now); err != nil {
					panic(fmt.Sprintf("federation: inject evacuated job into %s: %v", target.name, err))
				}
				free[ti] -= cand.GPUs
				s.stats.EvacuationMoves++
				donor.evacuated++
				donor.evacuatedGPUs += cand.GPUs
				target.resumed++
				target.resumeGPU += cand.GPUs
			}
		}
	}

	for di, donor := range s.members {
		if donor.study.PendingJobs() == 0 {
			continue
		}
		for _, cand := range donor.study.OffloadCandidates(now, sp.MinWait, sp.MaxMovesPerCheck) {
			ti := s.pickTarget(di, cand.GPUs, free, alive)
			if ti < 0 {
				continue
			}
			target := s.members[ti]
			spec, err := donor.study.Offload(cand.ID, now)
			if err != nil {
				// Candidates were validated against the same barrier state;
				// a failure here is a bookkeeping bug, not a recoverable
				// condition.
				panic(fmt.Sprintf("federation: offload job %d from %s: %v", cand.ID, donor.name, err))
			}
			spec.VC = target.study.SpilloverVC()
			if _, err := target.study.Inject(spec, now); err != nil {
				panic(fmt.Sprintf("federation: inject job into %s: %v", target.name, err))
			}
			free[ti] -= cand.GPUs
			s.stats.SpilloverMoves++
			donor.offloaded++
			donor.offloadedGPUs += cand.GPUs
			target.received++
			target.recvdGPUs += cand.GPUs
		}
	}
}

// pickTarget returns the index of the member best placed to absorb a gang
// of the given width — the most remaining free GPUs in this barrier's
// ledger among live members other than the donor, requiring the gang to
// fit (ties break toward fleet order) — or -1 when nobody can take it
// now.
func (s *Study) pickTarget(donor, gpus int, free []int, alive []bool) int {
	best, bestFree := -1, 0
	for i := range s.members {
		if i == donor || !alive[i] || free[i] < gpus {
			continue
		}
		if best < 0 || free[i] > bestFree {
			best, bestFree = i, free[i]
		}
	}
	return best
}

// rebalance runs one fleet-wide quota rebalancing barrier: every member
// re-shares its VC quota pool by instantaneous demand at one instant.
func (s *Study) rebalance() {
	s.stats.RebalanceTicks++
	for _, m := range s.members {
		s.stats.QuotaChanges += m.study.RebalanceVCQuotas()
	}
}

// Run is the one-call form: build and run a federated study sequentially.
func Run(cfg Config) (*Result, error) {
	st, err := NewStudy(cfg)
	if err != nil {
		return nil, err
	}
	return st.Run()
}
