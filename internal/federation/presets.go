package federation

import (
	"fmt"
	"sort"

	"philly/internal/core"
)

// Presets are named member-cluster configurations. The Philly presets are
// the core study scales; "helios-like" models the contrast cluster of Hu
// et al.'s Helios characterization (PAPERS.md): a fleet dominated by
// short, small experimentation jobs with a higher failure intensity — the
// composition under which the paper's policy conclusions are most likely
// to shift, which is exactly what federated sweeps exist to test.
var presets = map[string]func() core.Config{
	"philly-small":  core.SmallConfig,
	"philly-medium": core.MediumConfig,
	"philly-full":   core.DefaultConfig,
	"helios-like":   heliosLikeConfig,
}

// heliosLikeConfig derives the Helios-flavoured member from the small
// Philly cluster: the same topology, but a job mix skewed hard toward
// 1-GPU experimentation, shorter runtimes, and ~1.5× the failure
// intensity (clamped per size bucket so the outcome distributions stay
// valid), echoing Helios's published contrasts with Philly.
func heliosLikeConfig() core.Config {
	cfg := core.SmallConfig()
	cfg.Workload.SizeWeights = map[int]float64{
		1: 0.85, 2: 0.08, 4: 0.04, 8: 0.025, 16: 0.005,
	}
	cfg.Workload.MaxRuntimeMinutes = 24 * 60
	fp := &cfg.Workload.Failures
	for b := range fp.UnsuccessfulProb {
		u := fp.UnsuccessfulProb[b] * 1.5
		if max := 1 - fp.KilledProb[b]; u > max {
			u = max
		}
		fp.UnsuccessfulProb[b] = u
		t := fp.TransientFailureProb[b] * 1.5
		if t > 1 {
			t = 1
		}
		fp.TransientFailureProb[b] = t
	}
	return cfg
}

// Presets lists the known member preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PresetConfig resolves a preset name to a fresh member configuration.
func PresetConfig(name string) (core.Config, error) {
	fn, ok := presets[name]
	if !ok {
		return core.Config{}, fmt.Errorf("federation: unknown member preset %q (known: %v)",
			name, Presets())
	}
	return fn(), nil
}
