package federation

import (
	"reflect"
	"testing"

	"philly/internal/cluster"
	"philly/internal/core"
	"philly/internal/faults"
	"philly/internal/simulation"
)

// chaosMember is a tinyMember with the outage engine and the checkpoint
// cost model on: random multi-tier outages plus, optionally, a
// deterministic cluster-wide maintenance window that guarantees a large
// evacuation-triggering outage.
func chaosMember(seed uint64, racks []cluster.RackConfig, jobs int, maintenance []faults.Maintenance) core.Config {
	cfg := tinyMember(seed, racks, jobs)
	cfg.Faults = faults.DefaultConfig()
	cfg.Faults.Enabled = true
	cfg.Faults = cfg.Faults.Scale(6)
	cfg.Faults.Maintenance = maintenance
	cfg.Checkpoint = core.DefaultCheckpointConfig()
	cfg.Checkpoint.Enabled = true
	cfg.Checkpoint.Interval = 15 * simulation.Minute
	return cfg
}

// chaosFleet is pressuredFleet with outages on every member, a whole-
// cluster maintenance window on the first (so it must evacuate), and
// checkpoint migration enabled.
func chaosFleet() Config {
	window := []faults.Maintenance{
		{Rack: -1, Start: 8 * simulation.Hour, Duration: simulation.Hour},
	}
	return Config{
		Members: []Member{
			{Name: "philly-tight", Config: chaosMember(11, []cluster.RackConfig{
				{Servers: 4, SKU: cluster.SKU8GPU},
			}, 260, window)},
			{Name: "philly-roomy", Config: chaosMember(12, []cluster.RackConfig{
				{Servers: 9, SKU: cluster.SKU8GPU},
				{Servers: 6, SKU: cluster.SKU2GPU},
			}, 140, nil)},
			{Name: "helios-ish", Config: chaosMember(13, []cluster.RackConfig{
				{Servers: 8, SKU: cluster.SKU8GPU},
			}, 160, nil)},
		},
		Spillover: Spillover{
			Enabled:          true,
			MinWait:          10 * simulation.Minute,
			Interval:         10 * simulation.Minute,
			MaxMovesPerCheck: 8,
		},
		Rebalance:  Rebalance{Enabled: true, Interval: simulation.Hour},
		Evacuation: DefaultEvacuation(),
	}
}

// TestChaosFleetInvariance is the federated determinism bar for the
// outage engine: a 3-member fleet with correlated outages, checkpointing,
// spillover, rebalancing AND checkpoint-migrating evacuation must produce
// a bit-identical Result across worker counts {1, 4} and the no-pool
// layout. CI runs it under -race in the GOMAXPROCS matrix.
func TestChaosFleetInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("federated chaos matrix is not a -short test")
	}
	cfg := chaosFleet()
	ref := runFleet(t, cfg, 0)

	// The claim is only interesting if the reliability machinery engaged.
	outages, kills := 0, 0
	for _, m := range ref.Members {
		outages += m.Result.Outages.Events
		kills += m.Result.Outages.KilledAttempts
	}
	if outages == 0 || kills < 2 {
		t.Fatalf("fleet saw %d outage(s), %d kill(s); the chaos config lost its pressure", outages, kills)
	}
	if ref.Fleet.EvacuationMoves == 0 {
		t.Fatal("no job was checkpoint-migrated; the maintenance window lost its bite")
	}

	for _, workers := range []int{1, 4} {
		res := runFleet(t, cfg, workers)
		if !reflect.DeepEqual(ref, res) {
			diffResults(t, ref, res)
			t.Fatalf("workers=%d diverged from the no-pool chaos run", workers)
		}
	}
}

// TestSingleMemberFaultsMatchesPlainStudy pins the outage engine against
// the fleet coordinator: a single-member federation (no cross-cluster
// interactions possible) with faults and checkpointing on must be
// byte-identical to the plain sequential Study under the same config —
// outage effects are global events, so the fleet barrier order must
// reproduce the sequential (at, seq) order exactly.
func TestSingleMemberFaultsMatchesPlainStudy(t *testing.T) {
	mc := chaosMember(7, []cluster.RackConfig{
		{Servers: 6, SKU: cluster.SKU8GPU},
		{Servers: 4, SKU: cluster.SKU2GPU},
	}, 220, []faults.Maintenance{
		{Rack: -1, Start: 5 * simulation.Hour, Duration: 30 * simulation.Minute},
	})

	st, err := core.NewStudy(mc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Outages.KilledAttempts == 0 {
		t.Fatal("no outage kill; the comparison is vacuous")
	}

	fres := runFleet(t, Config{
		Members:    []Member{{Name: "solo", Config: mc}},
		Evacuation: DefaultEvacuation(), // inert with one member
	}, 0)
	if !reflect.DeepEqual(plain, fres.Members[0].Result) {
		got := fres.Members[0].Result
		for j := range plain.Jobs {
			if !reflect.DeepEqual(plain.Jobs[j], got.Jobs[j]) {
				t.Fatalf("first diverging job %d:\n%+v\nvs\n%+v",
					plain.Jobs[j].Spec.ID, plain.Jobs[j], got.Jobs[j])
			}
		}
		t.Fatal("single-member faulted federated run diverged from the plain study")
	}
}

// TestEvacuationAccounting checks checkpoint migration end to end: the
// outage-struck donor's evacuated shells and the receivers' resumed
// copies balance exactly, both sides keep their GPU-hour shares, and the
// fleet counters agree with the per-job marks.
func TestEvacuationAccounting(t *testing.T) {
	cfg := chaosFleet()
	res := runFleet(t, cfg, 0)
	if res.Fleet.EvacuationMoves == 0 {
		t.Fatal("no evacuation happened")
	}

	evacuated, resumed := 0, 0
	for _, m := range res.Members {
		stats := res.Fleet.Members[memberIndex(t, res, m.Name)]
		mEvac, mRes := 0, 0
		for i := range m.Result.Jobs {
			j := &m.Result.Jobs[i]
			if j.Evacuated {
				mEvac++
				if j.Completed {
					t.Fatalf("member %s job %d both evacuated and completed", m.Name, j.Spec.ID)
				}
				if j.GPUMinutes <= 0 {
					t.Fatalf("evacuated job %d kept no GPU time at the donor", j.Spec.ID)
				}
			}
			if j.Resumed {
				mRes++
				if !j.Spillover {
					t.Fatalf("resumed job %d not marked as spillover at the receiver", j.Spec.ID)
				}
				if j.Spec.ID < 1<<30 {
					t.Fatalf("resumed job kept donor ID %d", j.Spec.ID)
				}
			}
		}
		if mEvac != stats.JobsEvacuated {
			t.Fatalf("member %s: %d evacuated marks != %d fleet stat", m.Name, mEvac, stats.JobsEvacuated)
		}
		if mRes != stats.JobsResumed {
			t.Fatalf("member %s: %d resumed marks != %d fleet stat", m.Name, mRes, stats.JobsResumed)
		}
		evacuated += mEvac
		resumed += mRes
	}
	if evacuated != resumed {
		t.Fatalf("evacuated %d != resumed %d", evacuated, resumed)
	}
	if evacuated != res.Fleet.EvacuationMoves {
		t.Fatalf("job marks %d != fleet moves %d", evacuated, res.Fleet.EvacuationMoves)
	}

	// At least one resumed copy must have made progress at the receiver —
	// the restore penalty is paid and the job keeps running.
	progressed := false
	for _, m := range res.Members {
		for i := range m.Result.Jobs {
			j := &m.Result.Jobs[i]
			if j.Resumed && j.GPUMinutes > 0 {
				progressed = true
			}
		}
	}
	if !progressed {
		t.Fatal("no resumed job accrued GPU time at its receiver")
	}
}

// memberIndex resolves a member name to its index in Fleet.Members.
func memberIndex(t *testing.T, res *Result, name string) int {
	t.Helper()
	for i, m := range res.Fleet.Members {
		if m.Name == name {
			return i
		}
	}
	t.Fatalf("member %q not in fleet stats", name)
	return -1
}
