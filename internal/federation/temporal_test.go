package federation

import (
	"reflect"
	"testing"

	"philly/internal/cluster"
	"philly/internal/core"
	"philly/internal/stats"
	"philly/internal/workload"
)

// patternedMember is tinyMember with a temporal phase program applied.
func patternedMember(t *testing.T, seed uint64, racks []cluster.RackConfig, jobs int, preset string) core.Config {
	t.Helper()
	cfg := tinyMember(seed, racks, jobs)
	p, err := workload.PresetPattern(preset)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload.Pattern = p
	return cfg
}

// TestSingleMemberPatternMatchesPlainStudy extends the cross-engine
// conformance bar to temporal workloads: a one-member fleet whose member
// runs under the diurnal phase program must be byte-identical to the plain
// sequential Study with the same pattern — the federated lane must not
// perturb the pattern's RNG stream.
func TestSingleMemberPatternMatchesPlainStudy(t *testing.T) {
	mc := patternedMember(t, 7, []cluster.RackConfig{
		{Servers: 6, SKU: cluster.SKU8GPU},
		{Servers: 4, SKU: cluster.SKU2GPU},
	}, 220, workload.PatternDiurnal)

	st, err := core.NewStudy(mc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}

	fres := runFleet(t, Config{Members: []Member{{Name: "solo", Config: mc}}}, 0)
	if !reflect.DeepEqual(plain, fres.Members[0].Result) {
		t.Fatal("single-member federated run with a diurnal pattern diverged from the plain study")
	}
}

// TestSingleMemberReplayMatchesPlainStudy does the same for the replay
// path: a one-member fleet replaying a fixed spec stream must match the
// plain study replaying that stream.
func TestSingleMemberReplayMatchesPlainStudy(t *testing.T) {
	mc := tinyMember(9, []cluster.RackConfig{
		{Servers: 6, SKU: cluster.SKU8GPU},
	}, 180)
	g := stats.NewRNG(mc.Seed).Split("workload")
	gen, err := workload.NewGenerator(mc.Workload, g)
	if err != nil {
		t.Fatal(err)
	}
	mc.Workload.Replay = gen.Generate(g)

	st, err := core.NewStudy(mc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}

	fres := runFleet(t, Config{Members: []Member{{Name: "solo", Config: mc}}}, 0)
	if !reflect.DeepEqual(plain, fres.Members[0].Result) {
		t.Fatal("single-member federated replay diverged from the plain study")
	}
}

// TestPatternedFleetWorkerInvariance runs the pressured 3-member fleet with
// every member on a temporal pattern (the tight donor on diurnal so its
// queue pressure comes in daily waves) and requires bit-identical results
// across worker counts — spillover decisions must not depend on lane
// scheduling even when arrival intensity is time-varying.
func TestPatternedFleetWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("federated invariance matrix is not a -short test")
	}
	cfg := pressuredFleet()
	for i, preset := range []string{workload.PatternDiurnal, workload.PatternWeekly, workload.PatternBurst} {
		p, err := workload.PresetPattern(preset)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Members[i].Config.Workload.Pattern = p
	}
	ref := runFleet(t, cfg, 0)
	if ref.Fleet.SpilloverMoves == 0 {
		t.Fatal("patterned fleet exercised no spillover; the config lost its queue pressure")
	}
	for _, workers := range []int{1, 4} {
		res := runFleet(t, cfg, workers)
		if !reflect.DeepEqual(ref, res) {
			diffResults(t, ref, res)
			t.Fatalf("workers=%d diverged from the no-pool patterned federated run", workers)
		}
	}
}
