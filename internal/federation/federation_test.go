package federation

import (
	"reflect"
	"testing"

	"philly/internal/cluster"
	"philly/internal/core"
	"philly/internal/par"
	"philly/internal/simulation"
)

// tinyMember returns a fast member config: SmallConfig distributions on a
// reduced cluster and trace so a federated run takes well under a second.
func tinyMember(seed uint64, racks []cluster.RackConfig, jobs int) core.Config {
	cfg := core.SmallConfig()
	cfg.Seed = seed
	cfg.Cluster = cluster.Config{Racks: racks}
	cfg.Workload.TotalJobs = jobs
	cfg.Workload.Duration = 2 * simulation.Day
	return cfg
}

// pressuredFleet returns a 3-member federation with real queue pressure on
// the first member (a deliberately undersized cluster), so spillover has
// work to do, plus rebalancing on.
func pressuredFleet() Config {
	return Config{
		Members: []Member{
			{Name: "philly-tight", Config: tinyMember(11, []cluster.RackConfig{
				{Servers: 4, SKU: cluster.SKU8GPU},
			}, 260)},
			{Name: "philly-roomy", Config: tinyMember(12, []cluster.RackConfig{
				{Servers: 9, SKU: cluster.SKU8GPU},
				{Servers: 6, SKU: cluster.SKU2GPU},
			}, 140)},
			{Name: "helios-ish", Config: tinyMember(13, []cluster.RackConfig{
				{Servers: 8, SKU: cluster.SKU8GPU},
			}, 160)},
		},
		Spillover: Spillover{
			Enabled:          true,
			MinWait:          10 * simulation.Minute,
			Interval:         10 * simulation.Minute,
			MaxMovesPerCheck: 8,
		},
		Rebalance: Rebalance{Enabled: true, Interval: simulation.Hour},
	}
}

// runFleet executes one federated study over a pool of the given size
// (0 = no pool).
func runFleet(t *testing.T, cfg Config, workers int) *Result {
	t.Helper()
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		pool := par.NewPool(workers)
		defer pool.Close()
		st.SetPool(pool)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFederationWorkerInvariance is the acceptance bar: a 3-member
// federated study with spillover and rebalancing enabled produces a
// bit-identical federation.Result across worker counts {1, 4} and the
// no-pool layout, all against the no-pool reference — member lanes run
// concurrently inside fleet windows at workers 4, inline at 1/none, and
// the result must not care. reflect.DeepEqual compares unexported
// telemetry recorder state too, so this is strictly stronger than hashing
// a rendered report.
func TestFederationWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("federated invariance matrix is not a -short test")
	}
	cfg := pressuredFleet()
	ref := runFleet(t, cfg, 0)

	// The invariance claim is only interesting if the cross-cluster
	// machinery actually engaged.
	if ref.Fleet.SpilloverMoves == 0 {
		t.Fatal("fleet exercised no spillover; the test config lost its queue pressure")
	}
	if ref.Fleet.QuotaChanges == 0 {
		t.Fatal("fleet exercised no quota rebalancing")
	}
	if ref.Fleet.Windows.MultiShardWindows == 0 {
		t.Fatal("no fleet window advanced multiple members; members serialized")
	}
	received := 0
	for _, m := range ref.Fleet.Members {
		received += m.JobsReceived
	}
	if received != ref.Fleet.SpilloverMoves {
		t.Fatalf("per-member received %d != fleet moves %d", received, ref.Fleet.SpilloverMoves)
	}

	for _, workers := range []int{1, 4} {
		res := runFleet(t, cfg, workers)
		if !reflect.DeepEqual(ref, res) {
			diffResults(t, ref, res)
			t.Fatalf("workers=%d diverged from the no-pool federated run", workers)
		}
	}
}

// diffResults narrows a DeepEqual failure to the first diverging member.
func diffResults(t *testing.T, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Fleet, b.Fleet) {
		t.Errorf("fleet stats diverged: %+v vs %+v", a.Fleet, b.Fleet)
	}
	for i := range a.Members {
		if i >= len(b.Members) {
			break
		}
		ar, br := a.Members[i].Result, b.Members[i].Result
		if reflect.DeepEqual(ar, br) {
			continue
		}
		for j := range ar.Jobs {
			if j < len(br.Jobs) && !reflect.DeepEqual(ar.Jobs[j], br.Jobs[j]) {
				t.Errorf("member %s: first diverging job %d:\n%+v\nvs\n%+v",
					a.Members[i].Name, ar.Jobs[j].Spec.ID, ar.Jobs[j], br.Jobs[j])
				break
			}
		}
		t.Errorf("member %s diverged", a.Members[i].Name)
	}
}

// TestSingleMemberMatchesPlainStudy pins the member-view plumbing: with one
// member and all cross-cluster interactions disabled, a federated run must
// be byte-identical to the plain sequential Study — same event order, same
// clock, same SimEnd, every float in every record.
func TestSingleMemberMatchesPlainStudy(t *testing.T) {
	mc := tinyMember(7, []cluster.RackConfig{
		{Servers: 6, SKU: cluster.SKU8GPU},
		{Servers: 4, SKU: cluster.SKU2GPU},
	}, 220)

	st, err := core.NewStudy(mc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}

	fres := runFleet(t, Config{Members: []Member{{Name: "solo", Config: mc}}}, 0)
	if len(fres.Members) != 1 {
		t.Fatalf("got %d member results", len(fres.Members))
	}
	if !reflect.DeepEqual(plain, fres.Members[0].Result) {
		got := fres.Members[0].Result
		for j := range plain.Jobs {
			if !reflect.DeepEqual(plain.Jobs[j], got.Jobs[j]) {
				t.Fatalf("first diverging job %d:\n%+v\nvs\n%+v",
					plain.Jobs[j].Spec.ID, plain.Jobs[j], got.Jobs[j])
			}
		}
		if plain.SimEnd != got.SimEnd {
			t.Fatalf("SimEnd diverged: %v vs %v", plain.SimEnd, got.SimEnd)
		}
		t.Fatal("single-member federated run diverged from the plain study")
	}
}

// TestSpilloverAccounting checks the donor/receiver bookkeeping end to
// end: offloaded jobs are marked and excluded from completion, injected
// copies carry the Spillover mark and fresh IDs, and the job count
// balances across the fleet.
func TestSpilloverAccounting(t *testing.T) {
	cfg := pressuredFleet()
	res := runFleet(t, cfg, 0)

	offloaded, injected := 0, 0
	for mi, m := range res.Members {
		for i := range m.Result.Jobs {
			j := &m.Result.Jobs[i]
			if j.Offloaded {
				offloaded++
				if j.Completed {
					t.Fatalf("member %s job %d both offloaded and completed", m.Name, j.Spec.ID)
				}
				if len(j.Attempts) != 0 {
					t.Fatalf("offloaded job %d has %d attempts here", j.Spec.ID, len(j.Attempts))
				}
			}
			if j.Spillover {
				injected++
				if j.Spec.ID < 1<<30 {
					t.Fatalf("injected job kept donor ID %d", j.Spec.ID)
				}
				if mi == 0 {
					// The pressured member is the donor in this config; it
					// has no free capacity to absorb anything.
					t.Fatalf("pressured member received spillover job %d", j.Spec.ID)
				}
			}
		}
	}
	if offloaded == 0 {
		t.Fatal("no jobs were offloaded")
	}
	if offloaded != injected {
		t.Fatalf("offloaded %d != injected %d", offloaded, injected)
	}
	if offloaded != res.Fleet.SpilloverMoves {
		t.Fatalf("job marks %d != fleet moves %d", offloaded, res.Fleet.SpilloverMoves)
	}
}

// TestSpilloverNeverTargetsFinishedMembers pins the drained-member trap:
// a member that finishes its own tiny workload early holds the most free
// GPUs in the fleet, but its event lane is stopped — an injected
// submission would pend forever and the job would silently vanish.
// Spillover must route around it, and with members sized to drain within
// the horizon, every logical job must reach a terminal state somewhere.
func TestSpilloverNeverTargetsFinishedMembers(t *testing.T) {
	early := tinyMember(22, []cluster.RackConfig{{Servers: 10, SKU: cluster.SKU8GPU}}, 5)
	early.Workload.Duration = 6 * simulation.Hour
	cfg := Config{
		Members: []Member{
			{Name: "tight", Config: tinyMember(21, []cluster.RackConfig{
				{Servers: 4, SKU: cluster.SKU8GPU},
			}, 200)},
			{Name: "early", Config: early},
			{Name: "roomy", Config: tinyMember(23, []cluster.RackConfig{
				{Servers: 9, SKU: cluster.SKU8GPU},
			}, 120)},
		},
		Spillover: Spillover{
			Enabled:          true,
			MinWait:          10 * simulation.Minute,
			Interval:         10 * simulation.Minute,
			MaxMovesPerCheck: 8,
		},
	}
	res := runFleet(t, cfg, 0)
	if res.Fleet.SpilloverMoves == 0 {
		t.Fatal("no spillover happened; the test exerts no pressure")
	}
	// The lost-job signature: a record submitted after its member's clock
	// stopped — the lane was already dead, so the submission event can
	// never run. (Jobs merely cut by the horizon are normal and keep
	// SubmitAt <= SimEnd.)
	for _, m := range res.Members {
		for i := range m.Result.Jobs {
			j := &m.Result.Jobs[i]
			if j.Offloaded {
				continue
			}
			if j.Spec.SubmitAt > m.Result.SimEnd {
				t.Errorf("member %s: job %d (spillover=%v) submitted at %v after the member's end %v — injected into a dead lane",
					m.Name, j.Spec.ID, j.Spillover, j.Spec.SubmitAt, m.Result.SimEnd)
			}
		}
	}
	// The early member's own run must actually have ended long before the
	// fleet's, or the scenario never created the drained-target temptation.
	earlyRes := res.Members[1].Result
	if earlyRes.SimEnd >= res.Members[0].Result.SimEnd {
		t.Fatalf("early member did not finish early (SimEnd %v)", earlyRes.SimEnd)
	}
}

// TestParseSpecAndPresets covers the spec syntax and preset resolution,
// including duplicate-preset naming and unknown presets.
func TestParseSpecAndPresets(t *testing.T) {
	cfg, err := ParseSpec(42, "philly-small + helios-like+philly-small")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{cfg.Members[0].Name, cfg.Members[1].Name, cfg.Members[2].Name}
	want := []string{"philly-small#1", "helios-like", "philly-small#2"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("member names = %v, want %v", names, want)
	}
	if cfg.Members[0].Config.Seed == cfg.Members[2].Config.Seed {
		t.Fatal("duplicate presets must get distinct derived seeds")
	}
	if !cfg.Spillover.Enabled || !cfg.Rebalance.Enabled {
		t.Fatal("ParseSpec must default interactions on")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec(1, "philly-small+no-such-preset"); err == nil {
		t.Fatal("unknown preset must error")
	}
	if _, err := ParseSpec(1, " + "); err == nil {
		t.Fatal("empty spec must error")
	}
	for _, p := range Presets() {
		c, err := PresetConfig(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("preset %s: %v", p, err)
		}
	}
}

// TestValidate covers the federation-level validation errors.
func TestValidate(t *testing.T) {
	good := pressuredFleet()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no members", func(c *Config) { c.Members = nil }},
		{"empty member name", func(c *Config) { c.Members[0].Name = "" }},
		{"duplicate member name", func(c *Config) { c.Members[1].Name = c.Members[0].Name }},
		{"bad member config", func(c *Config) { c.Members[0].Config.TelemetryInterval = 0 }},
		{"bad spillover interval", func(c *Config) { c.Spillover.Interval = 0 }},
		{"bad spillover moves", func(c *Config) { c.Spillover.MaxMovesPerCheck = 0 }},
		{"negative spillover wait", func(c *Config) { c.Spillover.MinWait = -1 }},
		{"bad rebalance interval", func(c *Config) { c.Rebalance.Interval = 0 }},
	}
	for _, tc := range cases {
		cfg := pressuredFleet()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
}

// TestFleetCacheSpeculationAblation is the federation (Fleet) leg of
// core.TestCacheSpeculationAblation: turning the rack-epoch search cache
// and speculative candidate searches off in every member must leave the
// federated Result bit-identical — outside the counters that report the
// mechanisms themselves — across worker counts {0, 1, 4}.
func TestFleetCacheSpeculationAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("the ablation matrix is not a -short test")
	}
	onCfg := pressuredFleet()
	offCfg := pressuredFleet()
	for i := range offCfg.Members {
		offCfg.Members[i].Config.Scheduler.DisableSearchCache = true
		offCfg.Members[i].Config.Scheduler.SpeculativeCandidates = 0
	}
	normalize := func(res *Result) {
		for _, m := range res.Members {
			m.Result.Config.Scheduler.DisableSearchCache = false
			m.Result.Config.Scheduler.SpeculativeCandidates = 0
			m.Result.Sched.CacheShortCircuits = 0
			m.Result.Sched.SpeculativeCommits = 0
			m.Result.Sched.SpeculativeConflicts = 0
		}
	}
	base := runFleet(t, onCfg, 0)
	spec, hits := 0, 0
	for _, m := range base.Members {
		spec += m.Result.Sched.SpeculativeCommits
		hits += m.Result.Sched.CacheShortCircuits
	}
	if spec == 0 || hits == 0 {
		t.Fatalf("pressured fleet did not exercise the cached/speculative paths (commits=%d, hits=%d)", spec, hits)
	}
	normalize(base)
	for _, workers := range []int{0, 1, 4} {
		res := runFleet(t, offCfg, workers)
		normalize(res)
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d: disabled-cache fleet diverged from the default fleet", workers)
		}
	}
}
