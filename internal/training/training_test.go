package training

import (
	"math"
	"testing"
	"testing/quick"

	"philly/internal/stats"
)

func TestGenerateCurveValidation(t *testing.T) {
	g := stats.NewRNG(1)
	if _, err := GenerateCurve(CurveParams{InitialLoss: 2, FloorLoss: 1, DecayRate: 0.1}, 0, g); err == nil {
		t.Error("want error for zero epochs")
	}
	if _, err := GenerateCurve(CurveParams{InitialLoss: 1, FloorLoss: 2, DecayRate: 0.1}, 10, g); err == nil {
		t.Error("want error for floor above initial")
	}
	if _, err := GenerateCurve(CurveParams{InitialLoss: 2, FloorLoss: 1, DecayRate: 0}, 10, g); err == nil {
		t.Error("want error for zero decay")
	}
}

func TestCurveDecreasesOverall(t *testing.T) {
	g := stats.NewRNG(2)
	params := CurveParams{InitialLoss: 4, FloorLoss: 0.5, DecayRate: 0.2, NoiseSigma: 0.001}
	c, err := GenerateCurve(params, 50, g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epochs() != 50 {
		t.Fatalf("Epochs = %d, want 50", c.Epochs())
	}
	if c.Losses[49] >= c.Losses[0] {
		t.Errorf("loss did not decrease: first=%v last=%v", c.Losses[0], c.Losses[49])
	}
	// The tail should approach the floor.
	if c.Losses[49] > params.FloorLoss*1.1 {
		t.Errorf("final loss %v far from floor %v", c.Losses[49], params.FloorLoss)
	}
}

func TestBestEpoch(t *testing.T) {
	c := Curve{Losses: []float64{3, 2, 1.5, 1.6, 1.55}}
	e, l := c.BestEpoch()
	if e != 3 || l != 1.5 {
		t.Errorf("BestEpoch = (%d, %v), want (3, 1.5)", e, l)
	}
	empty := Curve{}
	e, l = empty.BestEpoch()
	if e != 0 || !math.IsNaN(l) {
		t.Errorf("empty BestEpoch = (%d, %v)", e, l)
	}
}

func TestEpochWithin(t *testing.T) {
	c := Curve{Losses: []float64{3, 1.0005, 1.2, 1.0}}
	// Best is 1.0 at epoch 4; epoch 2's 1.0005 is within 0.1%.
	if got := c.EpochWithin(0.001); got != 2 {
		t.Errorf("EpochWithin(0.001) = %d, want 2", got)
	}
	// Zero tolerance finds the exact minimum.
	if got := c.EpochWithin(0); got != 4 {
		t.Errorf("EpochWithin(0) = %d, want 4", got)
	}
	if got := (Curve{}).EpochWithin(0.001); got != 0 {
		t.Errorf("empty EpochWithin = %d, want 0", got)
	}
}

func TestFractions(t *testing.T) {
	c := Curve{Losses: []float64{3, 2, 1, 1.1}}
	if got := c.FractionForLowest(); got != 0.75 {
		t.Errorf("FractionForLowest = %v, want 0.75", got)
	}
	if got := c.FractionWithin(0.2); got != 0.75 {
		t.Errorf("FractionWithin(0.2) = %v, want 0.75", got)
	}
	if got := (Curve{}).FractionForLowest(); got != 0 {
		t.Errorf("empty FractionForLowest = %v", got)
	}
}

func TestDiverged(t *testing.T) {
	diverging := Curve{Losses: []float64{1, 0.5, 5}}
	if !diverging.Diverged(2) {
		t.Error("want diverged for 10x-above-min ending")
	}
	fine := Curve{Losses: []float64{1, 0.5, 0.52}}
	if fine.Diverged(2) {
		t.Error("flat curve should not report divergence")
	}
	if (Curve{}).Diverged(2) {
		t.Error("empty curve should not report divergence")
	}
}

// Figure 8 shape: most jobs need nearly all epochs for the strict minimum
// but reach within 0.1% of it much earlier.
func TestFigure8ShapeEmerges(t *testing.T) {
	g := stats.NewRNG(7)
	n := 2000
	lateMin := 0
	earlyWithin := 0
	for i := 0; i < n; i++ {
		epochs := 20 + g.IntN(80)
		c, err := SampleCurve(epochs, g)
		if err != nil {
			t.Fatal(err)
		}
		if c.FractionForLowest() > 0.9 {
			lateMin++
		}
		if c.FractionWithin(0.001) <= 0.6 {
			earlyWithin++
		}
	}
	lateFrac := float64(lateMin) / float64(n)
	earlyFrac := float64(earlyWithin) / float64(n)
	// Paper: ~80% of jobs need all epochs for the lowest loss; ~75% reach
	// within 0.1% using only ~40% of epochs. Accept generous bands.
	if lateFrac < 0.7 {
		t.Errorf("only %.2f of curves have late minimum; paper reports ~0.8", lateFrac)
	}
	if earlyFrac < 0.6 {
		t.Errorf("only %.2f of curves reach within 0.1%% early; paper reports ~0.75", earlyFrac)
	}
}

func TestSampleCurveValidation(t *testing.T) {
	if _, err := SampleCurve(0, stats.NewRNG(1)); err == nil {
		t.Error("want error for zero epochs")
	}
	c, err := SampleCurve(1, stats.NewRNG(1))
	if err != nil || c.Epochs() != 1 {
		t.Errorf("single-epoch curve: %v, %v", c, err)
	}
}

func TestJobValidate(t *testing.T) {
	good := Job{Epochs: 10, MinibatchesPerEpoch: 100, BatchTime: 0.2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	bad := []Job{
		{Epochs: 0, MinibatchesPerEpoch: 100, BatchTime: 0.2},
		{Epochs: 10, MinibatchesPerEpoch: 0, BatchTime: 0.2},
		{Epochs: 10, MinibatchesPerEpoch: 100, BatchTime: 0},
		{Epochs: 10, MinibatchesPerEpoch: 100, BatchTime: 0.2, CheckpointEveryEpochs: -1},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
}

func TestRuntimeModel(t *testing.T) {
	j := Job{Epochs: 10, MinibatchesPerEpoch: 100, BatchTime: 0.5}
	if got := j.IdealRuntimeSeconds(); got != 500 {
		t.Errorf("IdealRuntimeSeconds = %v, want 500", got)
	}
	if got := j.RuntimeSeconds(1.2); got != 600 {
		t.Errorf("RuntimeSeconds(1.2) = %v, want 600", got)
	}
	// Slowdown below 1 is clamped: placement can't speed a job past ideal.
	if got := j.RuntimeSeconds(0.5); got != 500 {
		t.Errorf("RuntimeSeconds(0.5) = %v, want 500 (clamped)", got)
	}
	if got := j.EpochSeconds(2); got != 100 {
		t.Errorf("EpochSeconds(2) = %v, want 100", got)
	}
}

// Property: EpochWithin never exceeds BestEpoch and both are within range.
func TestEpochOrderingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := stats.NewRNG(seed)
		params := DefaultCurveParams(g)
		n := 1 + g.IntN(120)
		c, err := GenerateCurve(params, n, g)
		if err != nil {
			return false
		}
		best, _ := c.BestEpoch()
		within := c.EpochWithin(0.001)
		if best < 1 || best > n || within < 1 || within > n {
			return false
		}
		return within <= best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: all generated losses are positive and finite.
func TestLossesFiniteProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := stats.NewRNG(seed)
		c, err := GenerateCurve(DefaultCurveParams(g), 60, g)
		if err != nil {
			return false
		}
		for _, l := range c.Losses {
			if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
