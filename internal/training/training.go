// Package training models the iterative-optimization behaviour of DNN
// training jobs: epochs of minibatches, stochastic loss curves, convergence
// detection, and checkpoint cadence. The paper uses these properties in two
// places: Figure 8 (fraction of epochs needed to reach the lowest loss, and
// to get within 0.1% of it) and the early-termination guideline in §5.
package training

import (
	"fmt"
	"math"

	"philly/internal/stats"
)

// CurveParams shape a synthetic loss curve. Losses follow a decaying
// exponential toward a floor with multiplicative noise, which matches the
// qualitative behaviour of SGD on non-convex objectives: mostly decreasing,
// no guarantee that more training keeps improving (paper §4.1).
type CurveParams struct {
	// InitialLoss is the loss at epoch 0 (before training).
	InitialLoss float64
	// FloorLoss is the asymptotic best loss.
	FloorLoss float64
	// DecayRate controls how fast loss approaches the floor; the
	// characteristic number of epochs is 1/DecayRate.
	DecayRate float64
	// NoiseSigma is the relative (multiplicative, log-normal) per-epoch
	// noise. Noise is what makes the "lowest loss" epoch often be one of
	// the last epochs even after the curve has plateaued.
	NoiseSigma float64
}

// DefaultCurveParams returns parameters that reproduce Figure 8's shape:
// ~80% of jobs need all epochs for the strict minimum, while ~75% reach
// within 0.1% of the minimum using only ~40% of epochs.
func DefaultCurveParams(g *stats.RNG) CurveParams {
	initial := g.Uniform(1.5, 8)
	floor := initial * g.Uniform(0.02, 0.25)
	return CurveParams{
		InitialLoss: initial,
		FloorLoss:   floor,
		// Characteristic decay within the first ~10-30% of a typical
		// 20-100 epoch budget.
		DecayRate:  g.Uniform(0.12, 0.5),
		NoiseSigma: g.Uniform(0.0005, 0.004),
	}
}

// Curve is a realized training-loss trajectory, one value per epoch (the
// loss measured at the end of that epoch). Epochs are 1-based in reporting:
// Losses[0] is the loss after the first epoch.
type Curve struct {
	Losses []float64
}

// SampleCurve draws a loss curve from the population mixture that
// reproduces Figure 8. Two behaviours exist in the paper's data:
//
//   - Most jobs (~80%) keep improving, slightly, all the way to their last
//     configured epoch: the strict minimum lands on the final epoch, yet the
//     curve is within 0.1% of that minimum after only a small fraction of
//     the epochs. These are modeled as smooth two-phase exponentials whose
//     fast phase completes at a random fraction f of the budget.
//   - The rest plateau and bounce around the floor with epoch-to-epoch
//     noise, so the minimum lands at a random late epoch.
func SampleCurve(epochs int, g *stats.RNG) (Curve, error) {
	if epochs <= 0 {
		return Curve{}, fmt.Errorf("training: curve needs at least one epoch, got %d", epochs)
	}
	initial := g.Uniform(1.5, 8)
	floor := initial * g.Uniform(0.05, 0.3)
	span := initial - floor
	f := g.Uniform(0.15, 0.55) // fraction of the budget the fast phase takes
	fastEpochs := f * float64(epochs)
	if fastEpochs < 1 {
		fastEpochs = 1
	}
	if g.Bool(0.8) {
		// Smooth improver: calibrate the decay so the remaining headroom at
		// the end of the fast phase is ~0.1% of the floor; past that point
		// a slow linear component keeps every epoch strictly better (by a
		// sub-0.1% margin), which is why the strict minimum lands on the
		// final epoch while the 0.1% band is entered at f*epochs.
		k := math.Log(span/(0.001*floor)) / fastEpochs
		losses := make([]float64, epochs)
		for e := 0; e < epochs; e++ {
			slow := 0.0009 * floor * float64(epochs-e-1) / float64(epochs)
			losses[e] = floor + span*math.Exp(-k*float64(e+1)) + slow
		}
		return Curve{Losses: losses}, nil
	}
	// Plateau-and-bounce: decay to ~2% above the floor, then noise larger
	// than the band keeps relocating the minimum.
	k := math.Log(span/(0.02*floor)) / fastEpochs
	losses := make([]float64, epochs)
	for e := 0; e < epochs; e++ {
		mean := floor + span*math.Exp(-k*float64(e+1))
		losses[e] = mean * math.Exp(0.004*g.NormFloat64())
	}
	return Curve{Losses: losses}, nil
}

// GenerateCurve realizes a loss curve of n epochs from params using g.
func GenerateCurve(params CurveParams, n int, g *stats.RNG) (Curve, error) {
	if n <= 0 {
		return Curve{}, fmt.Errorf("training: curve needs at least one epoch, got %d", n)
	}
	if params.InitialLoss <= params.FloorLoss {
		return Curve{}, fmt.Errorf("training: initial loss %v must exceed floor %v", params.InitialLoss, params.FloorLoss)
	}
	if params.DecayRate <= 0 {
		return Curve{}, fmt.Errorf("training: decay rate must be positive, got %v", params.DecayRate)
	}
	losses := make([]float64, n)
	span := params.InitialLoss - params.FloorLoss
	for e := 0; e < n; e++ {
		mean := params.FloorLoss + span*math.Exp(-params.DecayRate*float64(e+1))
		noise := math.Exp(params.NoiseSigma * g.NormFloat64())
		losses[e] = mean * noise
	}
	return Curve{Losses: losses}, nil
}

// Epochs returns the number of epochs in the curve.
func (c Curve) Epochs() int { return len(c.Losses) }

// BestEpoch returns the 1-based epoch with the lowest loss and that loss.
// For an empty curve it returns (0, NaN).
func (c Curve) BestEpoch() (epoch int, loss float64) {
	if len(c.Losses) == 0 {
		return 0, math.NaN()
	}
	best := 0
	for i, l := range c.Losses {
		if l < c.Losses[best] {
			best = i
		}
	}
	return best + 1, c.Losses[best]
}

// EpochWithin returns the first 1-based epoch whose loss is within the given
// relative tolerance of the curve's lowest loss (loss <= best*(1+tol)).
// tol = 0.001 is the paper's "within 0.1% of the lowest loss".
func (c Curve) EpochWithin(tol float64) int {
	if len(c.Losses) == 0 {
		return 0
	}
	_, best := c.BestEpoch()
	threshold := best * (1 + tol)
	for i, l := range c.Losses {
		if l <= threshold {
			return i + 1
		}
	}
	return len(c.Losses)
}

// FractionForLowest returns BestEpoch / Epochs — Figure 8's x-axis for the
// "lowest loss" series.
func (c Curve) FractionForLowest() float64 {
	if len(c.Losses) == 0 {
		return 0
	}
	e, _ := c.BestEpoch()
	return float64(e) / float64(len(c.Losses))
}

// FractionWithin returns EpochWithin(tol) / Epochs — Figure 8's x-axis for
// the "within 0.1% of lowest loss" series.
func (c Curve) FractionWithin(tol float64) float64 {
	if len(c.Losses) == 0 {
		return 0
	}
	return float64(c.EpochWithin(tol)) / float64(len(c.Losses))
}

// Diverged reports whether the curve ends at a loss at least ratio times its
// minimum — a stand-in for "model diverged" failures.
func (c Curve) Diverged(ratio float64) bool {
	if len(c.Losses) == 0 {
		return false
	}
	_, best := c.BestEpoch()
	return c.Losses[len(c.Losses)-1] > best*ratio
}

// Job describes the static training plan of one job: how much work it does
// per epoch and how many epochs the user configured. Users typically
// configure more epochs than necessary (paper §4.1).
type Job struct {
	// Epochs is the user-configured epoch count.
	Epochs int
	// MinibatchesPerEpoch is the number of iterations per epoch.
	MinibatchesPerEpoch int
	// BatchTime is the ideal per-minibatch time in seconds on perfectly
	// local, interference-free GPUs.
	BatchTime float64
	// CheckpointEveryEpochs is the model-checkpoint cadence; 0 disables
	// checkpointing.
	CheckpointEveryEpochs int
}

// Validate checks the plan for usability.
func (j Job) Validate() error {
	if j.Epochs <= 0 {
		return fmt.Errorf("training: job needs epochs > 0, got %d", j.Epochs)
	}
	if j.MinibatchesPerEpoch <= 0 {
		return fmt.Errorf("training: job needs minibatches > 0, got %d", j.MinibatchesPerEpoch)
	}
	if j.BatchTime <= 0 {
		return fmt.Errorf("training: job needs positive batch time, got %v", j.BatchTime)
	}
	if j.CheckpointEveryEpochs < 0 {
		return fmt.Errorf("training: checkpoint cadence must be >= 0, got %d", j.CheckpointEveryEpochs)
	}
	return nil
}

// IdealRuntimeSeconds returns the total compute time with no slowdown.
func (j Job) IdealRuntimeSeconds() float64 {
	return float64(j.Epochs) * float64(j.MinibatchesPerEpoch) * j.BatchTime
}

// RuntimeSeconds returns the runtime given a throughput slowdown factor
// (>= 1). A factor of 1.25 means iterations take 25% longer than ideal,
// e.g. due to poor locality or interference.
func (j Job) RuntimeSeconds(slowdown float64) float64 {
	if slowdown < 1 {
		slowdown = 1
	}
	return j.IdealRuntimeSeconds() * slowdown
}

// EpochSeconds returns the duration of one epoch under the slowdown factor.
func (j Job) EpochSeconds(slowdown float64) float64 {
	if slowdown < 1 {
		slowdown = 1
	}
	return float64(j.MinibatchesPerEpoch) * j.BatchTime * slowdown
}
