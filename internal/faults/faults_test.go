package faults

import (
	"reflect"
	"strings"
	"testing"

	"philly/internal/simulation"
	"philly/internal/stats"
)

func testTopo() Topology { return Topology{RackServers: []int{3, 3, 2}} }

func enabledAll(scale float64) Config {
	c := DefaultConfig()
	c.Enabled = true
	return c.Scale(scale)
}

func TestPlanDeterministic(t *testing.T) {
	horizon := 30 * 24 * simulation.Hour
	a := Plan(enabledAll(4), testTopo(), horizon, stats.NewRNG(7).Split("faults"))
	b := Plan(enabledAll(4), testTopo(), horizon, stats.NewRNG(7).Split("faults"))
	if len(a) == 0 {
		t.Fatal("expected a non-empty plan over 30 days at 4x frequency")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := Plan(enabledAll(4), testTopo(), horizon, stats.NewRNG(8).Split("faults"))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanSortedAndInRange(t *testing.T) {
	topo := testTopo()
	horizon := 60 * 24 * simulation.Hour
	cfg := enabledAll(8)
	cfg.Maintenance = []Maintenance{
		{Rack: 1, Start: simulation.Hour, Every: 24 * simulation.Hour, Duration: 2 * simulation.Hour},
		{Rack: -1, Start: 12 * simulation.Hour, Duration: simulation.Hour},
	}
	plan := Plan(cfg, topo, horizon, stats.NewRNG(3).Split("faults"))
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	nSrv := 0
	for _, n := range topo.RackServers {
		nSrv += n
	}
	maint := 0
	for i, o := range plan {
		if o.At < 0 || o.At >= horizon {
			t.Fatalf("outage %d at %v outside [0, horizon)", i, o.At)
		}
		if o.Duration <= 0 {
			t.Fatalf("outage %d has non-positive duration %v", i, o.Duration)
		}
		if i > 0 {
			p := plan[i-1]
			if o.At < p.At || (o.At == p.At && (o.Level < p.Level || (o.Level == p.Level && o.Domain < p.Domain))) {
				t.Fatalf("plan not sorted by (At, Level, Domain) at %d", i)
			}
		}
		switch o.Level {
		case LevelServer:
			if o.Domain < 0 || o.Domain >= nSrv {
				t.Fatalf("server outage %d has bad domain %d", i, o.Domain)
			}
		case LevelRack:
			if o.Domain < 0 || o.Domain >= len(topo.RackServers) {
				t.Fatalf("rack outage %d has bad domain %d", i, o.Domain)
			}
		case LevelCluster:
			if o.Domain != -1 {
				t.Fatalf("cluster outage %d has domain %d, want -1", i, o.Domain)
			}
		}
		if o.Maintenance {
			maint++
		}
	}
	// 60 daily rack windows plus one one-shot cluster window.
	if maint != 61 {
		t.Fatalf("got %d maintenance windows, want 61", maint)
	}
}

func TestPlanDisabled(t *testing.T) {
	cfg := DefaultConfig() // Enabled stays false
	if got := Plan(cfg, testTopo(), 30*24*simulation.Hour, stats.NewRNG(1)); got != nil {
		t.Fatalf("disabled config produced %d outages", len(got))
	}
}

func TestScaleIncreasesFrequency(t *testing.T) {
	horizon := 90 * 24 * simulation.Hour
	base := Plan(enabledAll(1), testTopo(), horizon, stats.NewRNG(5).Split("faults"))
	hot := Plan(enabledAll(10), testTopo(), horizon, stats.NewRNG(5).Split("faults"))
	if len(hot) <= len(base) {
		t.Fatalf("10x scale produced %d outages, base %d — expected more", len(hot), len(base))
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Enabled: true, Server: DomainConfig{MTBFHours: 0, MTTRHours: 1}},
		{Enabled: true, Server: DomainConfig{MTBFHours: -5, MTTRHours: 1}},
		{Enabled: true, Rack: DomainConfig{MTBFHours: 10, MTTRHours: 0}},
		{Enabled: true, Cluster: DomainConfig{MTBFHours: 10, MTTRHours: -1}},
		{Enabled: true, Maintenance: []Maintenance{{Rack: 9, Start: 0, Duration: simulation.Hour}}},
		{Enabled: true, Maintenance: []Maintenance{{Rack: -2, Start: 0, Duration: simulation.Hour}}},
		{Enabled: true, Maintenance: []Maintenance{{Rack: 0, Start: -1, Duration: simulation.Hour}}},
		{Enabled: true, Maintenance: []Maintenance{{Rack: 0, Start: 0, Duration: 0}}},
		{Enabled: true, Maintenance: []Maintenance{{Rack: 0, Start: 0, Duration: simulation.Hour, Every: -simulation.Hour}}},
	}
	for i, c := range bad {
		if err := c.Validate(3); err == nil {
			t.Errorf("config %d: expected a validation error", i)
		}
	}
	ok := enabledAll(2)
	ok.Maintenance = []Maintenance{{Rack: -1, Start: 0, Duration: simulation.Hour}}
	if err := ok.Validate(3); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Disabled configs validate regardless of contents.
	var dis Config
	dis.Server.MTBFHours = -1
	if err := dis.Validate(3); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	for _, spec := range []string{"bogus", "all:0", "all:-2", "all:x", "server+power", ""} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q: expected an error", spec)
		}
	}
	none, err := ParseSpec("none")
	if err != nil || none.Enabled {
		t.Fatalf("ParseSpec(none) = %+v, %v", none, err)
	}
	got, err := ParseSpec("server+cluster:2")
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if !got.Enabled || got.Rack.enabled() {
		t.Fatalf("server+cluster:2 enabled the wrong tiers: %+v", got)
	}
	if got.Server.MTBFHours != def.Server.MTBFHours/2 || got.Cluster.MTBFHours != def.Cluster.MTBFHours/2 {
		t.Fatalf("scale 2 not applied: %+v", got)
	}
	if got.Server.MTTRHours != def.Server.MTTRHours {
		t.Fatal("scale must not change MTTR")
	}
	all, err := ParseSpec("all")
	if err != nil {
		t.Fatal(err)
	}
	want := def
	want.Enabled = true
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("ParseSpec(all) = %+v, want %+v", all, want)
	}
	if _, err := ParseSpec("rack:huge"); err == nil || !strings.Contains(err.Error(), "scale") {
		t.Fatalf("expected a descriptive scale error, got %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := enabledAll(1)
	c.Maintenance = []Maintenance{{Rack: 0, Start: 0, Duration: simulation.Hour}}
	d := c.Clone()
	d.Maintenance[0].Rack = 2
	if c.Maintenance[0].Rack != 0 {
		t.Fatal("Clone shares the Maintenance slice")
	}
}
