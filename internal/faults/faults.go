// Package faults is the deterministic correlated-outage engine: it draws
// infrastructure failure events over the cluster's physical domain
// hierarchy — individual servers, whole racks (an RDMA/ToR domain), and the
// whole cluster (power or spine-switch events) — plus a fixed
// maintenance-window schedule.
//
// The per-job failure planner (internal/failures) models *independent*
// job-attributable failures; Kokolis et al. 2024 show the expensive
// reality is correlated infrastructure loss. This package supplies that
// missing axis: each domain instance runs an MTBF/MTTR renewal process on
// its own sub-stream of a dedicated RNG, so the whole outage plan is a
// pure function of (config, topology, horizon, stream) and can be drawn up
// front — which is what keeps outage-enabled studies on the bit-identical
// worker/shard invariance contract (see PERFORMANCE.md § PR 7).
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"philly/internal/simulation"
	"philly/internal/stats"
)

// Level identifies the failure-domain tier of an outage.
type Level int

const (
	// LevelServer takes down one server (its GPUs and the jobs on them).
	LevelServer Level = iota
	// LevelRack takes down every server in one rack — a ToR/RDMA-domain
	// or PDU event.
	LevelRack
	// LevelCluster takes down every server — a power or spine event.
	LevelCluster
)

func (l Level) String() string {
	switch l {
	case LevelServer:
		return "server"
	case LevelRack:
		return "rack"
	case LevelCluster:
		return "cluster"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// DomainConfig is one tier's renewal-process parameters. A tier with both
// fields zero is disabled; an enabled tier needs both positive.
type DomainConfig struct {
	// MTBFHours is the mean time between failures of ONE domain instance
	// (one server, one rack, the one cluster), in hours of uptime.
	MTBFHours float64
	// MTTRHours is the mean repair time per outage, in hours. Individual
	// repairs are exponential around it with a 60-second floor.
	MTTRHours float64
}

func (d DomainConfig) enabled() bool { return d.MTBFHours != 0 || d.MTTRHours != 0 }

// Maintenance is one preventive-maintenance window: a planned outage of a
// rack (or the whole cluster) with a fixed start, duration and optional
// recurrence. Unlike random outages, windows are part of the config, so
// tests and scenario packs can force outages at exact instants.
type Maintenance struct {
	// Rack is the rack index to take down; -1 means the whole cluster.
	Rack int
	// Start is the first window's start time.
	Start simulation.Time
	// Every is the recurrence period; 0 means a one-shot window.
	Every simulation.Time
	// Duration is each window's length.
	Duration simulation.Time
}

// Config enables and parameterizes the outage engine.
type Config struct {
	Enabled bool
	// Server, Rack and Cluster parameterize each tier's renewal process;
	// a tier with a zero DomainConfig is disabled.
	Server  DomainConfig
	Rack    DomainConfig
	Cluster DomainConfig
	// Maintenance is the planned-window schedule.
	Maintenance []Maintenance
}

// DefaultConfig returns the calibrated but still *disabled* config: per-
// server MTBF on the order of weeks, rarer rack events, and a cluster-wide
// event every few months, with repair times from half an hour to a few
// hours. Callers flip Enabled (or use ParseSpec).
func DefaultConfig() Config {
	return Config{
		Server:  DomainConfig{MTBFHours: 1250, MTTRHours: 0.5},
		Rack:    DomainConfig{MTBFHours: 720, MTTRHours: 2},
		Cluster: DomainConfig{MTBFHours: 2160, MTTRHours: 1},
	}
}

// Clone returns a deep copy (the Maintenance slice is the only reference).
func (c Config) Clone() Config {
	c.Maintenance = append([]Maintenance(nil), c.Maintenance...)
	return c
}

// Scale divides every enabled tier's MTBF by f — f > 1 makes outages f
// times more frequent — keeping repair times fixed. It panics on f <= 0;
// callers validate first (ParseSpec does).
func (c Config) Scale(f float64) Config {
	if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("faults: scale factor must be a positive finite number, got %v", f))
	}
	for _, d := range []*DomainConfig{&c.Server, &c.Rack, &c.Cluster} {
		if d.enabled() {
			d.MTBFHours /= f
		}
	}
	return c
}

// Validate rejects configs that would yield NaN rates or panics downstream:
// zero or negative MTBF/MTTR on an enabled tier, and maintenance windows
// with bad racks, negative starts, or non-positive durations. numRacks may
// be 0 when the topology is not yet known (rack bounds are then unchecked).
func (c Config) Validate(numRacks int) error {
	if !c.Enabled {
		return nil
	}
	tiers := []struct {
		name string
		d    DomainConfig
	}{{"server", c.Server}, {"rack", c.Rack}, {"cluster", c.Cluster}}
	for _, t := range tiers {
		if !t.d.enabled() {
			continue
		}
		if !(t.d.MTBFHours > 0) || math.IsInf(t.d.MTBFHours, 0) {
			return fmt.Errorf("faults: %s MTBF must be a positive number of hours, got %v", t.name, t.d.MTBFHours)
		}
		if !(t.d.MTTRHours > 0) || math.IsInf(t.d.MTTRHours, 0) {
			return fmt.Errorf("faults: %s MTTR must be a positive number of hours, got %v", t.name, t.d.MTTRHours)
		}
	}
	for i, mw := range c.Maintenance {
		if mw.Rack < -1 {
			return fmt.Errorf("faults: maintenance[%d]: rack must be a rack index or -1 for the whole cluster, got %d", i, mw.Rack)
		}
		if numRacks > 0 && mw.Rack >= numRacks {
			return fmt.Errorf("faults: maintenance[%d]: rack %d out of range (cluster has %d racks)", i, mw.Rack, numRacks)
		}
		if mw.Start < 0 {
			return fmt.Errorf("faults: maintenance[%d]: start must be non-negative, got %v", i, mw.Start)
		}
		if mw.Duration <= 0 {
			return fmt.Errorf("faults: maintenance[%d]: duration must be positive, got %v", i, mw.Duration)
		}
		if mw.Every < 0 {
			return fmt.Errorf("faults: maintenance[%d]: recurrence must be non-negative (0 = one-shot), got %v", i, mw.Every)
		}
	}
	return nil
}

// ParseSpec parses the CLI/sweep faults spec "LEVELS[:SCALE]": LEVELS is
// "none", "all", or a "+"-joined subset of {server, rack, cluster}; SCALE
// is a positive frequency multiplier dividing the kept tiers' MTBFs (e.g.
// "all:4" fails four times as often as DefaultConfig). "none" returns a
// disabled config.
func ParseSpec(spec string) (Config, error) {
	p, err := parseSpecParts(spec)
	if err != nil {
		return Config{}, err
	}
	return p.config(), nil
}

// CanonicalSpec parses spec and re-renders it in canonical form: "none" for
// a disabled config (any scale is dropped — it has nothing to multiply),
// levels in server, rack, cluster order with all three collapsing to "all",
// and ":SCALE" appended only when the scale differs from 1, rendered as the
// shortest decimal that round-trips. The canonical form is a fixed point
// (canonicalizing it again returns it unchanged) and parses to a Config
// identical to the original spec's.
func CanonicalSpec(spec string) (string, error) {
	p, err := parseSpecParts(spec)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// specParts is the decoded form of a faults spec: which tiers are enabled
// plus the frequency multiplier. ParseSpec and CanonicalSpec share it so the
// canonical rendering can never drift from what the parser accepted.
type specParts struct {
	server, rack, cluster bool
	scale                 float64
}

func parseSpecParts(spec string) (specParts, error) {
	p := specParts{scale: 1}
	levels := spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		levels = spec[:i]
		f, err := strconv.ParseFloat(spec[i+1:], 64)
		if err != nil {
			return specParts{}, fmt.Errorf("faults: bad scale %q in spec %q: want a positive number", spec[i+1:], spec)
		}
		if !(f > 0) || math.IsInf(f, 0) {
			return specParts{}, fmt.Errorf("faults: scale must be a positive finite number, got %v in spec %q", f, spec)
		}
		p.scale = f
	}
	if levels == "none" {
		return p, nil
	}
	for _, lv := range strings.Split(levels, "+") {
		switch lv {
		case "all":
			p.server, p.rack, p.cluster = true, true, true
		case "server":
			p.server = true
		case "rack":
			p.rack = true
		case "cluster":
			p.cluster = true
		default:
			return specParts{}, fmt.Errorf("faults: unknown level %q in spec %q (want none, all, or a '+'-joined subset of server, rack, cluster)", lv, spec)
		}
	}
	return p, nil
}

func (p specParts) enabled() bool { return p.server || p.rack || p.cluster }

func (p specParts) config() Config {
	if !p.enabled() {
		return Config{}
	}
	base := DefaultConfig()
	cfg := Config{Enabled: true}
	if p.server {
		cfg.Server = base.Server
	}
	if p.rack {
		cfg.Rack = base.Rack
	}
	if p.cluster {
		cfg.Cluster = base.Cluster
	}
	return cfg.Scale(p.scale)
}

func (p specParts) String() string {
	if !p.enabled() {
		return "none"
	}
	var s string
	if p.server && p.rack && p.cluster {
		s = "all"
	} else {
		var lv []string
		if p.server {
			lv = append(lv, "server")
		}
		if p.rack {
			lv = append(lv, "rack")
		}
		if p.cluster {
			lv = append(lv, "cluster")
		}
		s = strings.Join(lv, "+")
	}
	if p.scale != 1 {
		s += ":" + strconv.FormatFloat(p.scale, 'g', -1, 64)
	}
	return s
}

// Topology is the physical layout the plan is drawn over: server IDs are
// assigned rack-major starting at 0, matching cluster.New.
type Topology struct {
	// RackServers[r] is the number of servers in rack r.
	RackServers []int
}

// Outage is one planned infrastructure event.
type Outage struct {
	At       simulation.Time
	Duration simulation.Time
	Level    Level
	// Domain is the failing instance: a server ID for LevelServer, a rack
	// index for LevelRack, -1 for LevelCluster.
	Domain int
	// Maintenance marks planned windows (they count separately in stats).
	Maintenance bool
}

// Plan draws the full outage schedule for one study: every domain instance,
// in ID order within its tier, runs an independent renewal process
// (exponential uptime around MTBF, then exponential downtime around MTTR
// with a 60s floor) on a per-tier sub-stream of rng, so adding servers to
// one rack never perturbs another tier's draws. Maintenance windows are
// expanded over the horizon and merged in. The result is sorted by
// (At, Level, Domain) — a total order, so event scheduling is deterministic
// regardless of engine or worker count.
func Plan(cfg Config, topo Topology, horizon simulation.Time, rng *stats.RNG) []Outage {
	if !cfg.Enabled {
		return nil
	}
	var out []Outage
	srvRNG := rng.Split("server")
	rackRNG := rng.Split("rack")
	clRNG := rng.Split("cluster")
	id := 0
	for _, n := range topo.RackServers {
		for i := 0; i < n; i++ {
			out = drawRenewal(out, cfg.Server, LevelServer, id, horizon, srvRNG)
			id++
		}
	}
	for r := range topo.RackServers {
		out = drawRenewal(out, cfg.Rack, LevelRack, r, horizon, rackRNG)
	}
	out = drawRenewal(out, cfg.Cluster, LevelCluster, -1, horizon, clRNG)

	for _, mw := range cfg.Maintenance {
		lvl, dom := LevelRack, mw.Rack
		if mw.Rack < 0 {
			lvl, dom = LevelCluster, -1
		}
		for t := mw.Start; t < horizon; t += mw.Every {
			out = append(out, Outage{At: t, Duration: mw.Duration, Level: lvl, Domain: dom, Maintenance: true})
			if mw.Every <= 0 {
				break
			}
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// drawRenewal appends one domain instance's outages over [0, horizon).
func drawRenewal(out []Outage, d DomainConfig, lvl Level, dom int, horizon simulation.Time, rng *stats.RNG) []Outage {
	if !d.enabled() {
		return out
	}
	mtbfSec := d.MTBFHours * 3600
	mttrSec := d.MTTRHours * 3600
	t := simulation.Time(0)
	for {
		t += simulation.Time(rng.Exponential(1/mtbfSec) + 0.5)
		if t >= horizon {
			return out
		}
		dur := rng.Exponential(1 / mttrSec)
		if dur < 60 {
			dur = 60
		}
		o := Outage{At: t, Duration: simulation.Time(dur + 0.5), Level: lvl, Domain: dom}
		out = append(out, o)
		t += o.Duration
	}
}
