package workload

import (
	"reflect"
	"testing"

	"philly/internal/failures"
	"philly/internal/simulation"
	"philly/internal/stats"
)

func patternConfig(t *testing.T, name string) Config {
	t.Helper()
	cfg := smallConfig()
	p, err := PresetPattern(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = p
	return cfg
}

func TestPresetPatternsValid(t *testing.T) {
	cfg := smallConfig()
	for _, name := range PatternNames() {
		p, err := PresetPattern(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if err := p.Validate(cfg.VCs); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("preset %s reports name %q", name, p.Name)
		}
	}
	if _, err := PresetPattern("no-such-pattern"); err == nil {
		t.Error("want error for unknown preset")
	}
}

func TestPatternRateAt(t *testing.T) {
	diurnal, err := PresetPattern(PatternDiurnal)
	if err != nil {
		t.Fatal(err)
	}
	// Night phase, first and second day (period folding).
	for _, at := range []simulation.Time{simulation.Hour, simulation.Day + simulation.Hour} {
		if r := diurnal.RateAt(at); r != 0.35 {
			t.Errorf("diurnal rate at %v = %v, want 0.35", at, r)
		}
	}
	if r := diurnal.RateAt(12 * simulation.Hour); r != 1.8 {
		t.Errorf("diurnal peak rate = %v, want 1.8", r)
	}
	// night-batch leaves [0, 8h) uncovered: the gap runs at base rate 1.
	nb, err := PresetPattern(PatternNightBatch)
	if err != nil {
		t.Fatal(err)
	}
	if r := nb.RateAt(2 * simulation.Hour); r != 1 {
		t.Errorf("night-batch gap rate = %v, want 1", r)
	}
	if got := nb.maxRate(); got != 1.4 {
		t.Errorf("night-batch maxRate = %v, want 1.4", got)
	}
	// A fully covering pattern never exposes the gap rate: stationary's
	// maxRate is its flat phase rate, not max(1, ...) of an absent gap.
	st, err := PresetPattern(PatternStationary)
	if err != nil {
		t.Fatal(err)
	}
	if !st.coversPeriod() {
		t.Error("stationary should cover its period")
	}
	if got := st.maxRate(); got != 1 {
		t.Errorf("stationary maxRate = %v, want 1", got)
	}
}

func TestPatternValidateErrors(t *testing.T) {
	vcs := smallConfig().VCs
	cases := []struct {
		name string
		p    *Pattern
	}{
		{"no phases", &Pattern{Name: "x", Period: simulation.Day}},
		{"empty window", &Pattern{Name: "x", Period: simulation.Day, Phases: []Phase{
			{Name: "a", Start: simulation.Hour, End: simulation.Hour, Rate: 1, FailureScale: 1}}}},
		{"beyond period", &Pattern{Name: "x", Period: simulation.Day, Phases: []Phase{
			{Name: "a", Start: 0, End: 2 * simulation.Day, Rate: 1, FailureScale: 1}}}},
		{"overlap", &Pattern{Name: "x", Period: simulation.Day, Phases: []Phase{
			{Name: "a", Start: 0, End: 2 * simulation.Hour, Rate: 1, FailureScale: 1},
			{Name: "b", Start: simulation.Hour, End: 3 * simulation.Hour, Rate: 1, FailureScale: 1}}}},
		{"negative rate", &Pattern{Name: "x", Period: simulation.Day, Phases: []Phase{
			{Name: "a", Start: 0, End: simulation.Day, Rate: -1, FailureScale: 1}}}},
		{"zero failure scale", &Pattern{Name: "x", Period: simulation.Day, Phases: []Phase{
			{Name: "a", Start: 0, End: simulation.Day, Rate: 1}}}},
		{"unknown vc", &Pattern{Name: "x", Period: simulation.Day, Phases: []Phase{
			{Name: "a", Start: 0, End: simulation.Day, Rate: 1, FailureScale: 1,
				VCWeights: map[string]float64{"nope": 1}}}}},
		{"zero size weights", &Pattern{Name: "x", Period: simulation.Day, Phases: []Phase{
			{Name: "a", Start: 0, End: simulation.Day, Rate: 1, FailureScale: 1,
				SizeWeights: map[int]float64{1: 0}}}}},
		{"silent everywhere", &Pattern{Name: "x", Period: simulation.Day, Phases: []Phase{
			{Name: "a", Start: 0, End: simulation.Day, Rate: 0, FailureScale: 1}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(vcs); err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
	// A zero-rate phase in a pattern with gaps is fine: the gaps carry
	// intensity 1.
	maint := &Pattern{Name: "maint", Period: simulation.Day, Phases: []Phase{
		{Name: "window", Start: 0, End: simulation.Hour, Rate: 0, FailureScale: 1}}}
	if err := maint.Validate(vcs); err != nil {
		t.Errorf("maintenance window should validate: %v", err)
	}
}

func TestPatternClone(t *testing.T) {
	p, err := PresetPattern(PatternBurst)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	if !reflect.DeepEqual(p, q) {
		t.Fatal("clone differs from original")
	}
	for i := range q.Phases {
		if q.Phases[i].SizeWeights != nil {
			q.Phases[i].SizeWeights[1] = 99
		}
	}
	if reflect.DeepEqual(p, q) {
		t.Fatal("mutating the clone's weight maps reached the original")
	}
	var nilP *Pattern
	if nilP.Clone() != nil {
		t.Fatal("nil pattern must clone to nil")
	}
}

func TestPatternGenerateDeterministic(t *testing.T) {
	cfg := patternConfig(t, PatternDiurnal)
	gen1, err := NewGenerator(cfg, stats.NewRNG(9).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	a := gen1.Generate(stats.NewRNG(9).Split("workload"))
	gen2, err := NewGenerator(cfg, stats.NewRNG(9).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	b := gen2.Generate(stats.NewRNG(9).Split("workload"))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("pattern generation is not deterministic for a fixed seed")
	}
}

// TestDiurnalConcentratesArrivals checks the pattern actually shapes the
// arrival process: under the diurnal preset the peak phase (9h at rate 1.8)
// must receive far more arrivals per hour than the night phase (7h at 0.35).
func TestDiurnalConcentratesArrivals(t *testing.T) {
	cfg := patternConfig(t, PatternDiurnal)
	cfg.TotalJobs = 4000
	gen, err := NewGenerator(cfg, stats.NewRNG(3).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.Generate(stats.NewRNG(3).Split("workload"))
	var night, peak float64
	for _, j := range specs {
		switch h := (j.SubmitAt % simulation.Day) / simulation.Hour; {
		case h < 7:
			night++
		case h >= 10 && h < 19:
			peak++
		}
	}
	nightRate := night / 7
	peakRate := peak / 9
	// The intensity ratio is 1.8/0.35 ≈ 5.1; allow generous sampling slack.
	if peakRate < 3*nightRate {
		t.Fatalf("peak %.1f jobs/h vs night %.1f jobs/h: diurnal pattern not shaping arrivals",
			peakRate, nightRate)
	}
}

// TestPhaseSizeMixShift checks per-phase size weights take effect: the
// night-batch preset's night phase skews to 8/16/32-GPU gangs while its day
// phase skews to 1-GPU jobs.
func TestPhaseSizeMixShift(t *testing.T) {
	cfg := patternConfig(t, PatternNightBatch)
	cfg.TotalJobs = 4000
	gen, err := NewGenerator(cfg, stats.NewRNG(5).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.Generate(stats.NewRNG(5).Split("workload"))
	mean := func(lo, hi simulation.Time) float64 {
		var sum, n float64
		for _, j := range specs {
			h := j.SubmitAt % simulation.Day
			if h >= lo && h < hi {
				sum += float64(j.GPUs)
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no arrivals in [%v, %v)", lo, hi)
		}
		return sum / n
	}
	day := mean(8*simulation.Hour, 20*simulation.Hour)
	nightMean := mean(20*simulation.Hour, 24*simulation.Hour)
	if nightMean < 2*day {
		t.Fatalf("night mean size %.2f vs day %.2f: phase size mix not applied", nightMean, day)
	}
}

// TestPhaseVCWeights checks per-phase VC weights route arrivals: a phase
// giving all weight to one VC must submit only to it.
func TestPhaseVCWeights(t *testing.T) {
	cfg := smallConfig()
	only := cfg.VCs[0].Name
	cfg.Pattern = &Pattern{
		Name:   "one-vc",
		Period: simulation.Day,
		Phases: []Phase{{
			Name: "all", Start: 0, End: simulation.Day, Rate: 1, FailureScale: 1,
			VCWeights: map[string]float64{only: 1},
		}},
	}
	gen, err := NewGenerator(cfg, stats.NewRNG(11).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range gen.Generate(stats.NewRNG(11).Split("workload")) {
		if j.VC != only {
			t.Fatalf("job %d landed in %s, want everything in %s", j.ID, j.VC, only)
		}
	}
}

// TestNilPatternUnchanged pins bit-compatibility: a nil Pattern must
// reproduce the exact pre-pattern stream (same draws, same jobs), so
// every existing calibration test and recorded experiment stays valid.
func TestNilPatternUnchanged(t *testing.T) {
	cfg := smallConfig()
	gen1, err := NewGenerator(cfg, stats.NewRNG(1).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	a := gen1.Generate(stats.NewRNG(1).Split("workload"))
	cfg2 := smallConfig()
	cfg2.Pattern = nil
	gen2, err := NewGenerator(cfg2, stats.NewRNG(1).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	b := gen2.Generate(stats.NewRNG(1).Split("workload"))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("nil-pattern stream changed")
	}
}

func TestReplayValidation(t *testing.T) {
	cfg := smallConfig()
	gen, err := NewGenerator(cfg, stats.NewRNG(2).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.Generate(stats.NewRNG(2).Split("workload"))

	good := smallConfig()
	good.Replay = specs
	good.TotalJobs = len(specs)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid replay config rejected: %v", err)
	}

	// Pattern and Replay are mutually exclusive.
	both := good
	both.Pattern, err = PresetPattern(PatternDiurnal)
	if err != nil {
		t.Fatal(err)
	}
	if err := both.Validate(); err == nil {
		t.Error("want error for Pattern+Replay")
	}

	// Duplicate IDs.
	dup := good
	dup.Replay = append(append([]JobSpec(nil), specs...), specs[0])
	if err := dup.Validate(); err == nil {
		t.Error("want error for duplicate job ID")
	}

	// Unknown VC.
	bad := good
	bad.Replay = append([]JobSpec(nil), specs...)
	bad.Replay[0].VC = "no-such-vc"
	if err := bad.Validate(); err == nil {
		t.Error("want error for unknown VC")
	}

	// Unsuccessful plan without failed attempts.
	inc := good
	inc.Replay = append([]JobSpec(nil), specs...)
	inc.Replay[0].Plan = failures.JobPlan{Outcome: failures.Unsuccessful}
	if err := inc.Validate(); err == nil {
		t.Error("want error for unsuccessful job without failed attempts")
	}
}

// TestReplayEmitsSpecsVerbatim checks the generator's replay path returns
// the input population exactly, sorted by submission, without consuming
// any of the workload stream's draws.
func TestReplayEmitsSpecsVerbatim(t *testing.T) {
	cfg := smallConfig()
	gen, err := NewGenerator(cfg, stats.NewRNG(4).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.Generate(stats.NewRNG(4).Split("workload"))

	// Present them shuffled (reverse order) to prove the replay path sorts.
	rev := make([]JobSpec, len(specs))
	for i := range specs {
		rev[len(specs)-1-i] = specs[i]
	}
	rcfg := smallConfig()
	rcfg.Replay = rev
	rcfg.TotalJobs = len(rev)
	rgen, err := NewGenerator(rcfg, stats.NewRNG(999).Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	got := rgen.Generate(stats.NewRNG(999).Split("workload"))
	if !reflect.DeepEqual(got, specs) {
		t.Fatal("replayed stream differs from the source population")
	}
	// The input slice must not have been reordered in place.
	if reflect.DeepEqual(rev, got) && len(specs) > 1 {
		t.Fatal("replay sorted the caller's slice in place")
	}
}

// TestScaleFailuresComposition pins the composition contract: ScaleFailures
// is the single definition of failure scaling, the failure.scale sweep axis
// applies it to the base and a phase's FailureScale applies it again, so
// the two compose multiplicatively — with clamping at each application, and
// without mutating the input.
func TestScaleFailuresComposition(t *testing.T) {
	base := DefaultConfig().Failures

	// Multiplicative: x2 then x0.5 round-trips exactly (no clamp engages
	// at the default calibration for these factors).
	round := ScaleFailures(ScaleFailures(base, 2), 0.5)
	if !reflect.DeepEqual(round, base) {
		t.Fatalf("x2 then x0.5 did not round-trip: %+v vs %+v", round, base)
	}

	// Order-independent while unclamped: axis-then-phase equals
	// phase-then-axis equals the single combined factor.
	ab := ScaleFailures(ScaleFailures(base, 1.5), 1.2)
	ba := ScaleFailures(ScaleFailures(base, 1.2), 1.5)
	combined := ScaleFailures(base, 1.8)
	for b := range ab.UnsuccessfulProb {
		if diff := ab.UnsuccessfulProb[b] - ba.UnsuccessfulProb[b]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d: axis/phase order changed the unclamped product", b)
		}
		if diff := ab.TransientFailureProb[b] - combined.TransientFailureProb[b]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d: composed transient prob differs from single application", b)
		}
	}

	// Zero annihilates: axis scale 0 composed with any phase scale stays 0.
	zero := ScaleFailures(ScaleFailures(base, 0), 5)
	for b := range zero.UnsuccessfulProb {
		if zero.UnsuccessfulProb[b] != 0 || zero.TransientFailureProb[b] != 0 {
			t.Fatalf("bucket %d: scale 0 then 5 left nonzero probability", b)
		}
	}

	// Clamping applies at each application and keeps the distribution
	// valid: unsuccessful is capped at 1-killed, transient at 1.
	big := ScaleFailures(ScaleFailures(base, 10), 10)
	for b := range big.UnsuccessfulProb {
		if got, max := big.UnsuccessfulProb[b], 1-big.KilledProb[b]; got > max {
			t.Fatalf("bucket %d: unsuccessful %v above cap %v", b, got, max)
		}
		if big.TransientFailureProb[b] > 1 {
			t.Fatalf("bucket %d: transient prob %v above 1", b, big.TransientFailureProb[b])
		}
	}

	// The input is never mutated.
	if !reflect.DeepEqual(base, DefaultConfig().Failures) {
		t.Fatal("ScaleFailures mutated its input")
	}
}
