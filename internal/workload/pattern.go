package workload

import (
	"fmt"
	"sort"
	"strings"

	"philly/internal/failures"
	"philly/internal/simulation"
	"philly/internal/stats"
)

// Phase is one named segment of a Pattern: while the phase is active the
// arrival rate is multiplied by Rate, and the job mix may be shifted away
// from the base configuration — a different size distribution, different
// per-VC arrival weights, or scaled failure probabilities. Everything a
// phase does not override falls back to the base Config, so a phase that
// only sets Rate is a pure load wave.
type Phase struct {
	// Name identifies the phase in specs and reports ("night", "peak").
	Name string
	// Start and End bound the phase as offsets into the pattern period
	// (see Pattern.Period): the phase is active for Start <= t' < End,
	// where t' is the submission instant folded into [0, Period).
	Start, End simulation.Time
	// Rate multiplies the arrival intensity while the phase is active.
	// Zero is valid and silences arrivals entirely (a maintenance window).
	Rate float64
	// SizeWeights, when non-nil, replaces the base job-size distribution
	// for jobs arriving in this phase (night-time clusters run large batch
	// gangs; daytime ones run small exploratory jobs).
	SizeWeights map[int]float64
	// VCWeights, when non-nil, replaces the quota-proportional VC arrival
	// weights with explicit per-VC-name weights for this phase; VCs absent
	// from the map receive no arrivals during the phase. Every key must
	// name a configured VC.
	VCWeights map[string]float64
	// FailureScale multiplies the per-size-bucket unsuccessful and
	// transient-failure probabilities for jobs arriving in this phase
	// (clamped to keep the outcome distribution valid). 1 keeps the base
	// calibration; it must be positive, matching the failure.scale sweep
	// axis semantics.
	FailureScale float64
}

// Pattern is a phase program: a repeating (or one-shot) schedule of named
// phases that modulates the generator's arrival process and job mix over
// time. A nil *Pattern on Config keeps the legacy behaviour (the built-in
// cosine diurnal/weekend modulation); a non-nil Pattern replaces that
// modulation entirely, so a pattern is the single temporal authority for
// the trace it generates.
type Pattern struct {
	// Name labels the pattern in reports and sweep rows.
	Name string
	// Period is the repetition interval: submission instants are folded
	// modulo Period before phase lookup (Day for diurnal programs, 7*Day
	// for weekly ones). Zero means the phases are absolute offsets from
	// trace start and do not repeat.
	Period simulation.Time
	// Phases are the program, in ascending Start order; they must not
	// overlap. Instants not covered by any phase run at the base rate and
	// mix (rate multiplier 1).
	Phases []Phase
}

// Validate checks the pattern for internal consistency. vcs is the
// configured virtual-cluster set; phase VCWeights may only reference
// members of it.
func (p *Pattern) Validate(vcs []VirtualCluster) error {
	if p == nil {
		return nil
	}
	if p.Period < 0 {
		return fmt.Errorf("workload: pattern %q: negative period %v", p.Name, p.Period)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: pattern %q has no phases", p.Name)
	}
	known := map[string]bool{}
	for _, vc := range vcs {
		known[vc.Name] = true
	}
	var prevEnd simulation.Time
	for i, ph := range p.Phases {
		if ph.Name == "" {
			return fmt.Errorf("workload: pattern %q: phase %d has no name", p.Name, i)
		}
		if ph.Start < 0 || ph.End <= ph.Start {
			return fmt.Errorf("workload: pattern %q: phase %q has empty window [%v, %v)",
				p.Name, ph.Name, ph.Start, ph.End)
		}
		if p.Period > 0 && ph.End > p.Period {
			return fmt.Errorf("workload: pattern %q: phase %q ends at %v, beyond period %v",
				p.Name, ph.Name, ph.End, p.Period)
		}
		if ph.Start < prevEnd {
			return fmt.Errorf("workload: pattern %q: phase %q overlaps its predecessor",
				p.Name, ph.Name)
		}
		prevEnd = ph.End
		if ph.Rate < 0 {
			return fmt.Errorf("workload: pattern %q: phase %q has negative rate %v",
				p.Name, ph.Name, ph.Rate)
		}
		if ph.FailureScale <= 0 {
			return fmt.Errorf("workload: pattern %q: phase %q FailureScale must be positive, got %v",
				p.Name, ph.Name, ph.FailureScale)
		}
		if ph.SizeWeights != nil {
			total := 0.0
			for size, w := range ph.SizeWeights {
				if size <= 0 || w < 0 {
					return fmt.Errorf("workload: pattern %q: phase %q size weight %d:%v invalid",
						p.Name, ph.Name, size, w)
				}
				total += w
			}
			if total <= 0 {
				return fmt.Errorf("workload: pattern %q: phase %q size weights sum to zero",
					p.Name, ph.Name)
			}
		}
		if ph.VCWeights != nil {
			total := 0.0
			for name, w := range ph.VCWeights {
				if !known[name] {
					return fmt.Errorf("workload: pattern %q: phase %q references unknown VC %q",
						p.Name, ph.Name, name)
				}
				if w < 0 {
					return fmt.Errorf("workload: pattern %q: phase %q VC weight %s:%v invalid",
						p.Name, ph.Name, name, w)
				}
				total += w
			}
			if total <= 0 {
				return fmt.Errorf("workload: pattern %q: phase %q VC weights sum to zero",
					p.Name, ph.Name)
			}
		}
	}
	// A pattern whose every phase has rate 0 generates nothing — and the
	// uncovered gaps may be empty too, so check there is some intensity.
	if p.maxRate() <= 0 {
		return fmt.Errorf("workload: pattern %q has zero arrival intensity everywhere", p.Name)
	}
	return nil
}

// phaseIndexAt returns the index into Phases active at t, or -1 when t
// falls in a gap (base rate and mix apply).
func (p *Pattern) phaseIndexAt(t simulation.Time) int {
	x := t
	if p.Period > 0 {
		x = t % p.Period
	}
	for i := range p.Phases {
		if x >= p.Phases[i].Start && x < p.Phases[i].End {
			return i
		}
	}
	return -1
}

// RateAt returns the arrival-rate multiplier at t: the active phase's Rate,
// or 1 in gaps between phases.
func (p *Pattern) RateAt(t simulation.Time) float64 {
	if i := p.phaseIndexAt(t); i >= 0 {
		return p.Phases[i].Rate
	}
	return 1
}

// maxRate bounds RateAt for thinning (rejection sampling). Gaps run at 1,
// but a pattern with full period coverage never exposes the gap rate.
func (p *Pattern) maxRate() float64 {
	m := 0.0
	if !p.coversPeriod() {
		m = 1
	}
	for _, ph := range p.Phases {
		if ph.Rate > m {
			m = ph.Rate
		}
	}
	return m
}

// coversPeriod reports whether the phases tile the whole period with no
// gap (only meaningful for repeating patterns).
func (p *Pattern) coversPeriod() bool {
	if p.Period <= 0 || len(p.Phases) == 0 {
		return false
	}
	var at simulation.Time
	for _, ph := range p.Phases {
		if ph.Start > at {
			return false
		}
		if ph.End > at {
			at = ph.End
		}
	}
	return at >= p.Period
}

// Clone deep-copies the pattern, so sweep scenarios mutating phase maps
// cannot alias each other.
func (p *Pattern) Clone() *Pattern {
	if p == nil {
		return nil
	}
	q := &Pattern{Name: p.Name, Period: p.Period, Phases: make([]Phase, len(p.Phases))}
	for i, ph := range p.Phases {
		c := ph
		if ph.SizeWeights != nil {
			c.SizeWeights = make(map[int]float64, len(ph.SizeWeights))
			for k, v := range ph.SizeWeights {
				c.SizeWeights[k] = v
			}
		}
		if ph.VCWeights != nil {
			c.VCWeights = make(map[string]float64, len(ph.VCWeights))
			for k, v := range ph.VCWeights {
				c.VCWeights[k] = v
			}
		}
		q.Phases[i] = c
	}
	return q
}

// String renders the program compactly, for CLI listings.
func (p *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (period %v):", p.Name, p.Period)
	for _, ph := range p.Phases {
		fmt.Fprintf(&b, " %s[%v-%v)x%.2g", ph.Name, ph.Start, ph.End, ph.Rate)
		if ph.SizeWeights != nil {
			b.WriteString("+mix")
		}
		if ph.VCWeights != nil {
			b.WriteString("+vc")
		}
		if ph.FailureScale != 1 {
			fmt.Fprintf(&b, "+fail%.2g", ph.FailureScale)
		}
	}
	return b.String()
}

// Preset pattern names. "stationary" is the control: a flat arrival process
// with the base mix, replacing the legacy cosine modulation — the null
// hypothesis temporal studies compare against.
const (
	PatternStationary = "stationary"
	PatternDiurnal    = "diurnal"
	PatternWeekly     = "weekly"
	PatternBurst      = "burst"
	PatternNightBatch = "night-batch"
)

// PatternNames lists the preset pattern names, sorted.
func PatternNames() []string {
	names := []string{PatternStationary, PatternDiurnal, PatternWeekly, PatternBurst, PatternNightBatch}
	sort.Strings(names)
	return names
}

// PresetPattern resolves a preset name to a freshly built pattern. The
// presets are calibrated qualitatively to Hu et al. 2021's datacenter
// characterization: strong diurnal swings (3-5x trough-to-peak), weekday/
// weekend cycles, and short deadline bursts.
func PresetPattern(name string) (*Pattern, error) {
	switch name {
	case PatternStationary:
		// One full-period phase at rate 1: a homogeneous Poisson process.
		return &Pattern{
			Name:   PatternStationary,
			Period: simulation.Day,
			Phases: []Phase{
				{Name: "flat", Start: 0, End: simulation.Day, Rate: 1, FailureScale: 1},
			},
		}, nil
	case PatternDiurnal:
		// Pronounced day/night wave: quiet nights, a morning ramp, a long
		// afternoon peak, an evening shoulder. Peak-to-trough is ~5x.
		return &Pattern{
			Name:   PatternDiurnal,
			Period: simulation.Day,
			Phases: []Phase{
				{Name: "night", Start: 0, End: 7 * simulation.Hour, Rate: 0.35, FailureScale: 1},
				{Name: "ramp", Start: 7 * simulation.Hour, End: 10 * simulation.Hour, Rate: 1.0, FailureScale: 1},
				{Name: "peak", Start: 10 * simulation.Hour, End: 19 * simulation.Hour, Rate: 1.8, FailureScale: 1},
				{Name: "evening", Start: 19 * simulation.Hour, End: 24 * simulation.Hour, Rate: 0.7, FailureScale: 1},
			},
		}, nil
	case PatternWeekly:
		// Five busy weekdays, two quiet weekend days; weekday submissions
		// also fail slightly more (more humans iterating on fresh code).
		return &Pattern{
			Name:   PatternWeekly,
			Period: 7 * simulation.Day,
			Phases: []Phase{
				{Name: "weekdays", Start: 0, End: 5 * simulation.Day, Rate: 1.25, FailureScale: 1.1},
				{Name: "weekend", Start: 5 * simulation.Day, End: 7 * simulation.Day, Rate: 0.4, FailureScale: 0.9},
			},
		}, nil
	case PatternBurst:
		// A deadline crunch: steady background load with a 2-hour burst of
		// 4x arrivals skewed toward multi-GPU gangs, daily.
		return &Pattern{
			Name:   PatternBurst,
			Period: simulation.Day,
			Phases: []Phase{
				{Name: "steady", Start: 0, End: 20 * simulation.Hour, Rate: 0.85, FailureScale: 1},
				{
					Name: "crunch", Start: 20 * simulation.Hour, End: 22 * simulation.Hour, Rate: 4,
					SizeWeights:  map[int]float64{1: 0.25, 2: 0.15, 4: 0.20, 8: 0.30, 16: 0.07, 32: 0.03},
					FailureScale: 1.25,
				},
				{Name: "cooldown", Start: 22 * simulation.Hour, End: 24 * simulation.Hour, Rate: 0.6, FailureScale: 1},
			},
		}, nil
	case PatternNightBatch:
		// Interactive days of small exploratory jobs, nights of large batch
		// gangs queued for off-peak capacity.
		return &Pattern{
			Name:   PatternNightBatch,
			Period: simulation.Day,
			Phases: []Phase{
				{
					Name: "day", Start: 8 * simulation.Hour, End: 20 * simulation.Hour, Rate: 1.4,
					SizeWeights:  map[int]float64{1: 0.75, 2: 0.14, 4: 0.07, 8: 0.04},
					FailureScale: 1,
				},
				{
					Name: "night", Start: 20 * simulation.Hour, End: 24 * simulation.Hour, Rate: 0.6,
					SizeWeights:  map[int]float64{1: 0.20, 2: 0.15, 4: 0.20, 8: 0.30, 16: 0.10, 24: 0.02, 32: 0.03},
					FailureScale: 1,
				},
			},
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown pattern preset %q (known: %s)",
			name, strings.Join(PatternNames(), ", "))
	}
	// Note: the night-batch pattern deliberately leaves [0, 8h) uncovered:
	// gap instants run at the base rate and mix, exercising the fallback.
}

// compiledPhase is one phase with its samplers resolved against the base
// configuration: nil samplers mean "use the generator's base sampler".
type compiledPhase struct {
	sizes    *stats.Categorical
	sizeVals []int
	vcs      *stats.Categorical
	planner  *failures.Planner
}

// compilePattern resolves per-phase samplers. The result slice parallels
// pattern.Phases.
func compilePattern(cfg Config) ([]compiledPhase, error) {
	p := cfg.Pattern
	out := make([]compiledPhase, len(p.Phases))
	for i := range p.Phases {
		ph := &p.Phases[i]
		if ph.SizeWeights != nil {
			var vals []int
			for size := range ph.SizeWeights {
				vals = append(vals, size)
			}
			sort.Ints(vals)
			weights := make([]float64, len(vals))
			for j, s := range vals {
				weights[j] = ph.SizeWeights[s]
			}
			cat, err := stats.NewCategorical(weights)
			if err != nil {
				return nil, fmt.Errorf("workload: pattern %q phase %q sizes: %w", p.Name, ph.Name, err)
			}
			out[i].sizes, out[i].sizeVals = cat, vals
		}
		if ph.VCWeights != nil {
			weights := make([]float64, len(cfg.VCs))
			for j, vc := range cfg.VCs {
				weights[j] = ph.VCWeights[vc.Name]
			}
			cat, err := stats.NewCategorical(weights)
			if err != nil {
				return nil, fmt.Errorf("workload: pattern %q phase %q VCs: %w", p.Name, ph.Name, err)
			}
			out[i].vcs = cat
		}
		if ph.FailureScale != 1 {
			fp := ScaleFailures(cfg.Failures, ph.FailureScale)
			planner, err := failures.NewPlanner(fp)
			if err != nil {
				return nil, fmt.Errorf("workload: pattern %q phase %q failures: %w", p.Name, ph.Name, err)
			}
			out[i].planner = planner
		}
	}
	return out, nil
}

// ScaleFailures multiplies the unsuccessful and transient-failure
// probabilities by f, clamped so each bucket's outcome distribution stays
// valid. It is the single definition of failure scaling: the failure.scale
// sweep axis applies it to the base configuration, and a phase's
// FailureScale applies it again to that (possibly already scaled) base —
// so axis and phase scales compose multiplicatively, with clamping at each
// application. PlannerConfig's probability fields are value types, so the
// input is never mutated.
func ScaleFailures(fp failures.PlannerConfig, f float64) failures.PlannerConfig {
	for b := range fp.UnsuccessfulProb {
		u := fp.UnsuccessfulProb[b] * f
		if max := 1 - fp.KilledProb[b]; u > max {
			u = max
		}
		fp.UnsuccessfulProb[b] = u
		t := fp.TransientFailureProb[b] * f
		if t > 1 {
			t = 1
		}
		fp.TransientFailureProb[b] = t
	}
	return fp
}
