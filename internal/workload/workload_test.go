package workload

import (
	"math"
	"testing"
	"testing/quick"

	"philly/internal/failures"
	"philly/internal/simulation"
	"philly/internal/stats"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TotalJobs = 3000
	cfg.Duration = 4 * simulation.Day
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.TotalJobs = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.VCs = nil },
		func(c *Config) { c.VCs = append(c.VCs, c.VCs[0]) },
		func(c *Config) { c.VCs[0].QuotaGPUs = 0 },
		func(c *Config) { c.NumUsers = 0 },
		func(c *Config) { c.SizeWeights = nil },
		func(c *Config) { c.SizeWeights[-1] = 1 },
		func(c *Config) { c.ErrorProneUserFraction = 2 },
		func(c *Config) { c.ConvergenceLogFraction = -1 },
		func(c *Config) { c.KilledRuntimeMultiplier = 0.5 },
		func(c *Config) { c.MaxRuntimeMinutes = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	g := stats.NewRNG(1)
	gen, err := NewGenerator(smallConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen.Generate(g)
	if len(jobs) != 3000 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	vcNames := map[string]bool{}
	for _, vc := range smallConfig().VCs {
		vcNames[vc.Name] = true
	}
	seen := map[int64]bool{}
	var prev simulation.Time
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if j.SubmitAt < prev {
			t.Fatal("jobs not sorted by submit time")
		}
		prev = j.SubmitAt
		if !vcNames[j.VC] {
			t.Fatalf("job %d in unknown VC %q", j.ID, j.VC)
		}
		if j.GPUs < 1 || j.GPUs > 32 {
			t.Fatalf("job %d has %d GPUs", j.ID, j.GPUs)
		}
		if j.User == "" {
			t.Fatalf("job %d has no user", j.ID)
		}
		if err := j.Train.Validate(); err != nil {
			t.Fatalf("job %d train plan: %v", j.ID, err)
		}
		if j.SubmitAt < 0 || j.SubmitAt >= smallConfig().Duration {
			t.Fatalf("job %d submit %v outside window", j.ID, j.SubmitAt)
		}
		for _, a := range j.Plan.FailedAttempts {
			if a.RTFMinutes > smallConfig().MaxRuntimeMinutes {
				t.Fatalf("job %d RTF %v exceeds cap", j.ID, a.RTFMinutes)
			}
		}
	}
}

func TestSizeDistribution(t *testing.T) {
	g := stats.NewRNG(2)
	cfg := smallConfig()
	cfg.TotalJobs = 20000
	gen, err := NewGenerator(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen.Generate(g)
	counts := map[int]int{}
	for _, j := range jobs {
		counts[j.GPUs]++
	}
	frac1 := float64(counts[1]) / float64(len(jobs))
	if math.Abs(frac1-0.60) > 0.03 {
		t.Errorf("1-GPU fraction %.3f, want ~0.60", frac1)
	}
	if counts[16] == 0 || counts[32] == 0 {
		t.Error("large sizes never generated")
	}
}

func TestRuntimesGrowWithSize(t *testing.T) {
	g := stats.NewRNG(3)
	cfg := smallConfig()
	cfg.TotalJobs = 20000
	gen, err := NewGenerator(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen.Generate(g)
	var small, big []float64
	for _, j := range jobs {
		if j.Plan.Outcome != failures.Passed {
			continue // killed jobs carry the multiplier; compare clean ones
		}
		switch j.SizeBucket() {
		case failures.Size1:
			small = append(small, j.PlannedRuntimeMinutes())
		case failures.SizeOver8:
			big = append(big, j.PlannedRuntimeMinutes())
		}
	}
	ms, mb := stats.Percentile(small, 50), stats.Percentile(big, 50)
	if mb <= ms*2 {
		t.Errorf("big-job median %.1f should be well above small-job median %.1f", mb, ms)
	}
}

func TestKilledJobsRunLonger(t *testing.T) {
	g := stats.NewRNG(4)
	cfg := smallConfig()
	cfg.TotalJobs = 20000
	gen, err := NewGenerator(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen.Generate(g)
	var passed, killed []float64
	for _, j := range jobs {
		if j.SizeBucket() != failures.Size1 {
			continue
		}
		switch j.Plan.Outcome {
		case failures.Passed:
			passed = append(passed, j.PlannedRuntimeMinutes())
		case failures.Killed:
			killed = append(killed, j.PlannedRuntimeMinutes())
		}
	}
	mp, mk := stats.Percentile(passed, 50), stats.Percentile(killed, 50)
	if mk < mp*3 {
		t.Errorf("killed median %.1f should be several times passed median %.1f", mk, mp)
	}
}

func TestRuntimeCap(t *testing.T) {
	g := stats.NewRNG(5)
	cfg := smallConfig()
	cfg.TotalJobs = 20000
	cfg.MaxRuntimeMinutes = 100
	gen, err := NewGenerator(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range gen.Generate(g) {
		if j.PlannedRuntimeMinutes() > 101 {
			t.Fatalf("job %d runtime %.1f exceeds cap", j.ID, j.PlannedRuntimeMinutes())
		}
	}
}

func TestUsersStayInVC(t *testing.T) {
	g := stats.NewRNG(6)
	gen, err := NewGenerator(smallConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen.Generate(g)
	userVC := map[string]string{}
	for _, j := range jobs {
		if vc, ok := userVC[j.User]; ok && vc != j.VC {
			t.Fatalf("user %s appears in VCs %s and %s", j.User, vc, j.VC)
		}
		userVC[j.User] = j.VC
	}
	if len(userVC) < 50 {
		t.Errorf("only %d distinct users", len(userVC))
	}
}

func TestErrorProneUsersConcentrateFailures(t *testing.T) {
	g := stats.NewRNG(7)
	cfg := smallConfig()
	cfg.TotalJobs = 30000
	cfg.ErrorProneUserFraction = 1.0 // every user has a favorite reason
	cfg.Failures.UserFavoriteBias = 1.0
	gen, err := NewGenerator(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen.Generate(g)
	// Every unsuccessful job of a user hits that user's single reason.
	byUser := map[string]map[string]bool{}
	for _, j := range jobs {
		if j.Plan.Outcome != failures.Unsuccessful {
			continue
		}
		if byUser[j.User] == nil {
			byUser[j.User] = map[string]bool{}
		}
		byUser[j.User][j.Plan.FailedAttempts[0].Reason.Code] = true
	}
	multi := 0
	for _, reasons := range byUser {
		if len(reasons) > 1 {
			multi++
		}
	}
	if multi > 0 {
		t.Errorf("%d users have multiple failure reasons despite full bias", multi)
	}
}

func TestVCLoadProportionalToQuota(t *testing.T) {
	g := stats.NewRNG(8)
	cfg := smallConfig()
	cfg.TotalJobs = 30000
	gen, err := NewGenerator(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	jobs := gen.Generate(g)
	counts := map[string]int{}
	for _, j := range jobs {
		counts[j.VC]++
	}
	// Arrival shares are proportional to quota x load factor.
	vcs := cfg.VCs
	byName := map[string]VirtualCluster{}
	for _, vc := range vcs {
		byName[vc.Name] = vc
	}
	weight := func(n string) float64 {
		return float64(byName[n].QuotaGPUs) * byName[n].LoadFactor
	}
	r := float64(counts["vc1"]) / float64(counts["vc2"])
	expect := weight("vc1") / weight("vc2")
	if math.Abs(r-expect) > 0.25 {
		t.Errorf("vc1/vc2 job ratio %.2f, want ~%.2f", r, expect)
	}
	// vc5 oversubscribes via its load factor.
	r5 := float64(counts["vc5"]) / float64(counts["vc2"])
	expect5 := weight("vc5") / weight("vc2")
	if math.Abs(r5-expect5) > 0.25 {
		t.Errorf("vc5/vc2 ratio %.2f, want ~%.2f (oversubscription)", r5, expect5)
	}
}

func TestScaledConfig(t *testing.T) {
	c := ScaledConfig(10)
	if c.TotalJobs >= DefaultConfig().TotalJobs {
		t.Error("scaling did not reduce jobs")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
	if got := ScaledConfig(0).TotalJobs; got != DefaultConfig().TotalJobs {
		t.Errorf("k<=1 should return default, got %d jobs", got)
	}
}

func TestTotalQuota(t *testing.T) {
	if got := TotalQuota([]VirtualCluster{{QuotaGPUs: 3}, {QuotaGPUs: 4}}); got != 7 {
		t.Errorf("TotalQuota = %d", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	run := func() []JobSpec {
		g := stats.NewRNG(42)
		gen, err := NewGenerator(smallConfig(), g)
		if err != nil {
			t.Fatal(err)
		}
		return gen.Generate(g)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].GPUs != b[i].GPUs || a[i].SubmitAt != b[i].SubmitAt ||
			a[i].User != b[i].User || a[i].Plan.Outcome != b[i].Plan.Outcome {
			t.Fatalf("generation diverged at job %d", i)
		}
	}
}

// Property: every generated job spec is internally consistent for any seed.
func TestGenerateProperty(t *testing.T) {
	cfg := smallConfig()
	cfg.TotalJobs = 200
	f := func(seed uint64) bool {
		g := stats.NewRNG(seed)
		gen, err := NewGenerator(cfg, g)
		if err != nil {
			return false
		}
		for _, j := range gen.Generate(g) {
			if j.Train.Validate() != nil || j.GPUs < 1 {
				return false
			}
			if j.Plan.Outcome == failures.Unsuccessful && len(j.Plan.FailedAttempts) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
