// Package workload generates the synthetic job trace the study runs on.
// The real input — Microsoft's 75-day, 96,260-job Philly trace — is
// replaced by a generative model calibrated to every aggregate the paper
// publishes: job-size mix, size-conditional heavy-tailed runtimes
// (Figure 2), 14 virtual clusters, a Zipf user population with error-prone
// users, per-size outcome probabilities (Table 6, Figure 9), and failure
// plans drawn from the Table 7 taxonomy.
package workload

import (
	"fmt"
	"math"
	"sort"

	"philly/internal/failures"
	"philly/internal/simulation"
	"philly/internal/stats"
	"philly/internal/training"
)

// VirtualCluster is one production group's share of the cluster (§2.3).
type VirtualCluster struct {
	// Name identifies the VC ("vc1" ... "vc14").
	Name string
	// QuotaGPUs is the VC's guaranteed GPU share.
	QuotaGPUs int
	// LoadFactor scales the VC's arrival rate relative to its quota share;
	// >1 models groups that routinely oversubscribe their quota (the paper
	// notes VC5 "often over-subscribes its quota").
	LoadFactor float64
}

// Config parameterizes the generator.
type Config struct {
	// TotalJobs is the number of jobs to generate across all VCs.
	TotalJobs int
	// Duration is the trace length (the paper's trace covers 75 days).
	Duration simulation.Time
	// VCs is the virtual-cluster set. Arrival rates are proportional to
	// quota × load factor.
	VCs []VirtualCluster
	// NumUsers is the size of the user population ("hundreds of users").
	NumUsers int
	// UserZipfS is the Zipf skew of per-user activity.
	UserZipfS float64
	// ErrorProneUserFraction is the share of users with a characteristic
	// failure mode (Table 7's per-user repetition factors).
	ErrorProneUserFraction float64
	// SizeWeights is the distribution over requested GPU counts.
	SizeWeights map[int]float64
	// RuntimeBySize maps each size bucket to the log-normal of planned
	// runtimes in minutes.
	RuntimeBySize [failures.NumSizeBuckets]stats.LogNormalSpec
	// KilledRuntimeMultiplier scales planned runtime for killed jobs:
	// users kill jobs they have watched plateau for a long time, which is
	// why killed jobs account for an outsized share of GPU time (Table 6:
	// 13.5% of jobs but 37.7% of GPU time).
	KilledRuntimeMultiplier float64
	// MaxRuntimeMinutes caps planned runtimes (the trace has jobs up to
	// weeks long; the cap keeps the tail inside the simulated window).
	MaxRuntimeMinutes float64
	// ConvergenceLogFraction is the share of jobs whose frameworks print
	// per-epoch loss lines (the paper could extract convergence data for
	// only ~2502 of 96k jobs).
	ConvergenceLogFraction float64
	// DiurnalAmplitude modulates the arrival rate over the day: intensity
	// swings between (1-A) at night and (1+A) at the afternoon peak. Bursty
	// arrivals are what make queues form at production scale — a uniform
	// Poisson process at the same mean load is absorbed by statistical
	// multiplexing across thousands of GPUs and produces no waiting at all.
	DiurnalAmplitude float64
	// WeekendFactor scales weekend arrival intensity (weekdays are
	// renormalized so the weekly mean stays 1).
	WeekendFactor float64
	// Failures configures the failure planner.
	Failures failures.PlannerConfig
	// Pattern, when non-nil, is a phase program that replaces the cosine
	// DiurnalAmplitude/WeekendFactor modulation entirely: arrival intensity,
	// job-size mix, per-VC weights and failure intensity follow the active
	// phase (see Pattern). The program is compiled into the same
	// deterministic single-stream generator, so results remain bit-identical
	// for a fixed (Config, seed) at any worker count.
	Pattern *Pattern
	// Replay, when non-empty, bypasses the generative model: the generator
	// emits exactly these specs (sorted by submission time). Built by
	// internal/trace from Philly-traces files or our own CSV/JSON exports.
	// The slice is treated as read-only and may be shared across scenarios.
	Replay []JobSpec
}

// DefaultVCs returns 14 virtual clusters with heterogeneous quotas summing
// to ~2440 GPUs, mirroring the paper's deployment ("14 virtual clusters",
// "thousands of GPUs"). VC5 oversubscribes.
func DefaultVCs() []VirtualCluster {
	// Quotas deliberately sum to ~1.9x the default cluster capacity, as in
	// production multi-tenant clusters: guarantees are provisioned against
	// peak group demand, not concurrent demand. This is the structural
	// precondition for the paper's fragmentation-delay dominance (Table 2):
	// a VC can be comfortably within its quota while the cluster is
	// physically full, so its waiting jobs are blocked by placement, not by
	// fair share. Demand per VC is quota x load factor; most groups run at
	// ~half their guarantee, while VC5 "often over-subscribes its quota"
	// (paper §3.1.1) and a few small groups chronically exceed theirs.
	quotas := []int{840, 675, 510, 414, 227, 188, 165, 158, 225, 195, 47, 43, 34, 28}
	factors := []float64{0.5, 0.5, 0.5, 0.5, 1.43, 0.8, 0.8, 0.8, 0.5, 0.5, 1.33, 1.33, 1.33, 1.33}
	vcs := make([]VirtualCluster, len(quotas))
	for i, q := range quotas {
		vcs[i] = VirtualCluster{Name: fmt.Sprintf("vc%d", i+1), QuotaGPUs: q, LoadFactor: factors[i]}
	}
	return vcs
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	cfg := Config{
		TotalJobs:              96260,
		Duration:               75 * simulation.Day,
		VCs:                    DefaultVCs(),
		NumUsers:               300,
		UserZipfS:              1.2,
		ErrorProneUserFraction: 0.3,
		SizeWeights: map[int]float64{
			1:  0.60,
			2:  0.14,
			4:  0.095,
			8:  0.135,
			16: 0.02,
			24: 0.004,
			32: 0.006,
		},
		KilledRuntimeMultiplier: 8,
		MaxRuntimeMinutes:       3 * 7 * 24 * 60, // three weeks
		ConvergenceLogFraction:  0.026,
		DiurnalAmplitude:        0.75,
		WeekendFactor:           0.5,
		Failures:                failures.DefaultPlannerConfig(),
	}
	cfg.RuntimeBySize = DefaultRuntimeSpecs()
	return cfg
}

// DefaultRuntimeSpecs returns the size-conditional runtime distributions
// (minutes) behind Figure 2: heavy-tailed, with larger jobs running longer.
func DefaultRuntimeSpecs() [failures.NumSizeBuckets]stats.LogNormalSpec {
	mk := func(p50, p90 float64) stats.LogNormalSpec {
		spec, err := stats.LogNormalFromQuantiles(p50, 0.9, p90)
		if err != nil {
			panic(err) // static values; failure is a programming bug
		}
		return spec
	}
	return [failures.NumSizeBuckets]stats.LogNormalSpec{
		failures.Size1:     mk(14, 240),
		failures.Size2to4:  mk(28, 420),
		failures.Size5to8:  mk(55, 700),
		failures.SizeOver8: mk(140, 1600),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Replay) > 0 {
		return c.validateReplay()
	}
	if c.TotalJobs <= 0 {
		return fmt.Errorf("workload: TotalJobs must be positive, got %d", c.TotalJobs)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: Duration must be positive, got %v", c.Duration)
	}
	if len(c.VCs) == 0 {
		return fmt.Errorf("workload: at least one virtual cluster required")
	}
	seen := map[string]bool{}
	for _, vc := range c.VCs {
		if vc.Name == "" || vc.QuotaGPUs <= 0 || vc.LoadFactor <= 0 {
			return fmt.Errorf("workload: invalid VC %+v", vc)
		}
		if seen[vc.Name] {
			return fmt.Errorf("workload: duplicate VC name %q", vc.Name)
		}
		seen[vc.Name] = true
	}
	if c.NumUsers <= 0 {
		return fmt.Errorf("workload: NumUsers must be positive, got %d", c.NumUsers)
	}
	if len(c.SizeWeights) == 0 {
		return fmt.Errorf("workload: SizeWeights empty")
	}
	for size, w := range c.SizeWeights {
		if size <= 0 || w < 0 {
			return fmt.Errorf("workload: invalid size weight %d:%v", size, w)
		}
	}
	if c.ErrorProneUserFraction < 0 || c.ErrorProneUserFraction > 1 {
		return fmt.Errorf("workload: ErrorProneUserFraction out of [0, 1]")
	}
	if c.ConvergenceLogFraction < 0 || c.ConvergenceLogFraction > 1 {
		return fmt.Errorf("workload: ConvergenceLogFraction out of [0, 1]")
	}
	if c.KilledRuntimeMultiplier < 1 {
		return fmt.Errorf("workload: KilledRuntimeMultiplier must be >= 1")
	}
	if c.MaxRuntimeMinutes <= 0 {
		return fmt.Errorf("workload: MaxRuntimeMinutes must be positive")
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("workload: DiurnalAmplitude %v out of [0, 1)", c.DiurnalAmplitude)
	}
	if c.WeekendFactor <= 0 {
		return fmt.Errorf("workload: WeekendFactor must be positive, got %v", c.WeekendFactor)
	}
	if err := c.Pattern.Validate(c.VCs); err != nil {
		return err
	}
	return nil
}

// validateReplay checks a replay configuration: the generative knobs are
// ignored, but the cluster context (VCs, duration) and every replayed spec
// must be consistent.
func (c Config) validateReplay() error {
	if c.Pattern != nil {
		return fmt.Errorf("workload: Pattern and Replay are mutually exclusive (transform the trace instead)")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: Duration must be positive, got %v", c.Duration)
	}
	if len(c.VCs) == 0 {
		return fmt.Errorf("workload: at least one virtual cluster required")
	}
	known := map[string]bool{}
	for _, vc := range c.VCs {
		if vc.Name == "" || vc.QuotaGPUs <= 0 || vc.LoadFactor <= 0 {
			return fmt.Errorf("workload: invalid VC %+v", vc)
		}
		if known[vc.Name] {
			return fmt.Errorf("workload: duplicate VC name %q", vc.Name)
		}
		known[vc.Name] = true
	}
	seen := make(map[int64]bool, len(c.Replay))
	for i := range c.Replay {
		j := &c.Replay[i]
		if j.ID <= 0 {
			return fmt.Errorf("workload: replay job %d has non-positive ID %d", i, j.ID)
		}
		if seen[j.ID] {
			return fmt.Errorf("workload: replay job ID %d duplicated", j.ID)
		}
		seen[j.ID] = true
		if !known[j.VC] {
			return fmt.Errorf("workload: replay job %d in unknown VC %q", j.ID, j.VC)
		}
		if j.GPUs < 1 {
			return fmt.Errorf("workload: replay job %d requests %d GPUs", j.ID, j.GPUs)
		}
		if j.SubmitAt < 0 || j.SubmitAt >= c.Duration {
			return fmt.Errorf("workload: replay job %d submits at %v, outside [0, %v)",
				j.ID, j.SubmitAt, c.Duration)
		}
		if err := j.Train.Validate(); err != nil {
			return fmt.Errorf("workload: replay job %d: %w", j.ID, err)
		}
		if j.Plan.Outcome == failures.Unsuccessful && len(j.Plan.FailedAttempts) == 0 {
			return fmt.Errorf("workload: replay job %d unsuccessful with no failed attempts", j.ID)
		}
		for a := range j.Plan.FailedAttempts {
			ap := &j.Plan.FailedAttempts[a]
			if ap.Reason == nil || ap.RTFMinutes <= 0 {
				return fmt.Errorf("workload: replay job %d attempt %d has invalid failure plan", j.ID, a)
			}
		}
	}
	return nil
}

// arrivalIntensity is the relative arrival rate at simulated time t: a
// cosine diurnal cycle peaking mid-afternoon, scaled down on weekends.
func (c Config) arrivalIntensity(t simulation.Time) float64 {
	hour := float64(t%simulation.Day) / float64(simulation.Hour)
	day := int(t/simulation.Day) % 7
	m := 1 + c.DiurnalAmplitude*math.Cos(2*math.Pi*(hour-14)/24)
	if day >= 5 {
		m *= c.WeekendFactor
	}
	return m
}

// maxArrivalIntensity bounds arrivalIntensity for rejection sampling.
func (c Config) maxArrivalIntensity() float64 {
	m := 1 + c.DiurnalAmplitude
	if c.WeekendFactor > 1 {
		m *= c.WeekendFactor
	}
	return m
}

// JobSpec is one generated job: everything known at submission time plus
// the failure model's (hidden) plan for it.
type JobSpec struct {
	// ID is unique and dense, starting at 1.
	ID int64
	// VC is the virtual cluster the job belongs to.
	VC string
	// User is the submitting user ("user042").
	User string
	// GPUs is the requested GPU count (gang width).
	GPUs int
	// SubmitAt is the submission time.
	SubmitAt simulation.Time
	// Train is the configured training plan; its ideal runtime is the
	// job's planned duration on a perfect placement.
	Train training.Job
	// Plan is the failure model's decision for the job.
	Plan failures.JobPlan
	// LogsConvergence marks jobs whose logs include per-epoch losses.
	LogsConvergence bool
}

// PlannedRuntimeMinutes is the job's configured training time (ideal
// placement), in minutes.
func (j JobSpec) PlannedRuntimeMinutes() float64 {
	return j.Train.IdealRuntimeSeconds() / 60
}

// SizeBucket returns the paper's size class for the job.
func (j JobSpec) SizeBucket() failures.SizeBucket { return failures.SizeBucketFor(j.GPUs) }

// Generator produces job specs.
type Generator struct {
	cfg     Config
	planner *failures.Planner

	sizes     *stats.Categorical
	sizeVals  []int
	vcArrival *stats.Categorical
	userZipf  *stats.Zipf
	// usersByVC maps VC index to its user names; users are partitioned
	// across VCs proportional to quota.
	usersByVC [][]string
	// favorite maps user name to its characteristic failure reason (nil
	// for non-error-prone users).
	favorite map[string]*failures.Reason
	// phases holds the compiled phase samplers, parallel to
	// cfg.Pattern.Phases (nil when no pattern is configured).
	phases []compiledPhase
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config, g *stats.RNG) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	planner, err := failures.NewPlanner(cfg.Failures)
	if err != nil {
		return nil, err
	}
	gen := &Generator{cfg: cfg, planner: planner, favorite: map[string]*failures.Reason{}}
	if len(cfg.Replay) > 0 {
		// Replay bypasses the generative model entirely: no samplers, no
		// user population, and — deliberately — no RNG draws, so a replay
		// study's per-job streams (derived statelessly from the study seed)
		// are untouched by how this generator was built.
		return gen, nil
	}
	if cfg.Pattern != nil {
		gen.phases, err = compilePattern(cfg)
		if err != nil {
			return nil, err
		}
	}

	// Size distribution with deterministic ordering.
	for size := range cfg.SizeWeights {
		gen.sizeVals = append(gen.sizeVals, size)
	}
	sort.Ints(gen.sizeVals)
	weights := make([]float64, len(gen.sizeVals))
	for i, s := range gen.sizeVals {
		weights[i] = cfg.SizeWeights[s]
	}
	gen.sizes, err = stats.NewCategorical(weights)
	if err != nil {
		return nil, fmt.Errorf("workload: size weights: %w", err)
	}

	// VC arrival shares ∝ quota × load factor.
	vcWeights := make([]float64, len(cfg.VCs))
	for i, vc := range cfg.VCs {
		vcWeights[i] = float64(vc.QuotaGPUs) * vc.LoadFactor
	}
	gen.vcArrival, err = stats.NewCategorical(vcWeights)
	if err != nil {
		return nil, fmt.Errorf("workload: vc weights: %w", err)
	}

	// Partition users across VCs proportional to quota (at least one per
	// VC) and assign error-prone profiles.
	gen.userZipf, err = stats.NewZipf(maxInt(1, cfg.NumUsers/len(cfg.VCs)), cfg.UserZipfS)
	if err != nil {
		return nil, err
	}
	totalQuota := 0
	for _, vc := range cfg.VCs {
		totalQuota += vc.QuotaGPUs
	}
	userID := 0
	gen.usersByVC = make([][]string, len(cfg.VCs))
	for i, vc := range cfg.VCs {
		n := maxInt(1, cfg.NumUsers*vc.QuotaGPUs/totalQuota)
		for u := 0; u < n; u++ {
			name := fmt.Sprintf("user%03d", userID)
			userID++
			gen.usersByVC[i] = append(gen.usersByVC[i], name)
			if g.Bool(cfg.ErrorProneUserFraction) {
				gen.favorite[name] = planner.SampleUserProfile(g)
			}
		}
	}
	return gen, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Planner exposes the failure planner (the driver needs it for log
// generation decisions).
func (gen *Generator) Planner() *failures.Planner { return gen.planner }

// Generate produces the full job list, sorted by submission time. For a
// replay configuration it returns the replayed specs unchanged (sorted);
// for a pattern configuration the arrival process and per-job mix follow
// the active phase. All paths draw from the single stream g in submission
// order, so generation is a pure function of (Config, seed).
func (gen *Generator) Generate(g *stats.RNG) []JobSpec {
	cfg := gen.cfg
	if len(cfg.Replay) > 0 {
		return gen.generateReplay()
	}
	pattern := cfg.Pattern
	jobs := make([]JobSpec, 0, cfg.TotalJobs)
	maxIntensity := cfg.maxArrivalIntensity()
	if pattern != nil {
		maxIntensity = pattern.maxRate()
	}
	for i := 0; i < cfg.TotalJobs; i++ {
		// Thinning: draw uniform instants, accept proportionally to the
		// diurnal/weekly (or phase-program) intensity.
		var submit simulation.Time
		for {
			submit = simulation.Time(g.Int63() % int64(cfg.Duration))
			intensity := 0.0
			if pattern != nil {
				intensity = pattern.RateAt(submit)
			} else {
				intensity = cfg.arrivalIntensity(submit)
			}
			if g.Float64()*maxIntensity <= intensity {
				break
			}
		}
		// Resolve the active phase's samplers; nil means base behaviour.
		var cp *compiledPhase
		if pattern != nil {
			if pi := pattern.phaseIndexAt(submit); pi >= 0 {
				cp = &gen.phases[pi]
			}
		}
		vcSampler := gen.vcArrival
		if cp != nil && cp.vcs != nil {
			vcSampler = cp.vcs
		}
		vcIdx := vcSampler.Sample(g)
		vc := cfg.VCs[vcIdx]
		users := gen.usersByVC[vcIdx]
		user := users[gen.userZipf.Sample(g)%len(users)]
		size := gen.sizeForVC(vc, cp, g)

		planner := gen.planner
		if cp != nil && cp.planner != nil {
			planner = cp.planner
		}
		plan := planner.PlanJob(size, gen.favorite[user], g)
		// Cap runtime-to-failure draws at the trace's runtime ceiling: a
		// failure cannot be observed beyond the job's stay in the cluster.
		// The taxonomy's own p95 values (max ~18k minutes) sit below the
		// default cap, so reported percentiles are unaffected.
		for a := range plan.FailedAttempts {
			if plan.FailedAttempts[a].RTFMinutes > cfg.MaxRuntimeMinutes {
				plan.FailedAttempts[a].RTFMinutes = cfg.MaxRuntimeMinutes
			}
		}

		bucket := failures.SizeBucketFor(size)
		runtimeMin := cfg.RuntimeBySize[bucket].Sample(g)
		if plan.Outcome == failures.Killed {
			runtimeMin *= cfg.KilledRuntimeMultiplier
		}
		if runtimeMin < 0.5 {
			runtimeMin = 0.5
		}
		if runtimeMin > cfg.MaxRuntimeMinutes {
			runtimeMin = cfg.MaxRuntimeMinutes
		}

		jobs = append(jobs, JobSpec{
			ID:              int64(i + 1),
			VC:              vc.Name,
			User:            user,
			GPUs:            size,
			SubmitAt:        submit,
			Train:           planTraining(runtimeMin, g),
			Plan:            plan,
			LogsConvergence: g.Bool(cfg.ConvergenceLogFraction),
		})
	}
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].SubmitAt != jobs[j].SubmitAt {
			return jobs[i].SubmitAt < jobs[j].SubmitAt
		}
		return jobs[i].ID < jobs[j].ID
	})
	return jobs
}

// generateReplay copies the replayed specs into submission order. The copy
// keeps the shared Replay slice read-only, so one loaded trace can feed
// many concurrent scenarios.
func (gen *Generator) generateReplay() []JobSpec {
	jobs := append([]JobSpec(nil), gen.cfg.Replay...)
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].SubmitAt != jobs[j].SubmitAt {
			return jobs[i].SubmitAt < jobs[j].SubmitAt
		}
		return jobs[i].ID < jobs[j].ID
	})
	return jobs
}

// sizeForVC samples a job size appropriate to the VC: teams size their
// training jobs to their share, so a gang is at most half the quota; and
// groups that chronically over-subscribe their quota (load factor > 1) run
// small exploratory jobs, not big distributed gangs. Both constraints are
// what give Table 2 its size gradient — large jobs live in under-loaded
// VCs, so their delays are fragmentation, while fair-share delay
// concentrates on the small jobs of over-subscribed groups.
func (gen *Generator) sizeForVC(vc VirtualCluster, cp *compiledPhase, g *stats.RNG) int {
	sizes, sizeVals := gen.sizes, gen.sizeVals
	if cp != nil && cp.sizes != nil {
		sizes, sizeVals = cp.sizes, cp.sizeVals
	}
	quota := vc.QuotaGPUs
	limit := quota / 2
	if vc.LoadFactor > 1 {
		limit = quota / 16
	}
	if limit < 1 {
		limit = 1
	}
	size := sizeVals[sizes.Sample(g)]
	for i := 0; i < 20 && size > limit; i++ {
		size = sizeVals[sizes.Sample(g)]
	}
	if size > limit {
		// Fall back to the largest configured size that fits.
		size = 1
		for _, s := range sizeVals {
			if s <= limit && s > size {
				size = s
			}
		}
	}
	return size
}

// planTraining converts a target ideal runtime into an epoch/minibatch/batch
// structure. Users configure epochs in the tens-to-hundred range (§4.1).
func planTraining(runtimeMin float64, g *stats.RNG) training.Job {
	epochs := 10 + g.IntN(91)
	mb := 50 + g.IntN(451)
	total := runtimeMin * 60
	bt := total / float64(epochs) / float64(mb)
	if bt <= 0 {
		bt = 0.001
	}
	ckpt := 0
	if g.Bool(0.7) {
		ckpt = 1 + g.IntN(5)
	}
	return training.Job{
		Epochs:                epochs,
		MinibatchesPerEpoch:   mb,
		BatchTime:             bt,
		CheckpointEveryEpochs: ckpt,
	}
}

// TrainingPlanFor converts a target ideal runtime into an epoch/minibatch/
// batch structure drawn from g — the exported form of planTraining, used by
// the trace replay path (internal/trace) to synthesize plausible training
// plans for observed jobs whose traces record only total runtime.
func TrainingPlanFor(runtimeMin float64, g *stats.RNG) training.Job {
	return planTraining(runtimeMin, g)
}

// TotalQuota sums the VC quotas.
func TotalQuota(vcs []VirtualCluster) int {
	t := 0
	for _, vc := range vcs {
		t += vc.QuotaGPUs
	}
	return t
}

// ScaledConfig returns a copy of DefaultConfig shrunk by factor k (jobs and
// duration divided by k) for tests and examples. The VC set and
// distributions are unchanged, so load intensity is preserved.
func ScaledConfig(k int) Config {
	cfg := DefaultConfig()
	if k <= 1 {
		return cfg
	}
	cfg.TotalJobs = maxInt(100, cfg.TotalJobs/k)
	cfg.Duration = simulation.Time(maxInt64(int64(simulation.Day), int64(cfg.Duration)/int64(k)))
	return cfg
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
