// Package telemetry reproduces the Ganglia leg of the paper's measurement
// pipeline (§2.4): per-minute hardware counters from every server — GPU
// utilization, host CPU and memory — joined against the scheduler's GPU
// allocation state so that samples attribute to jobs.
//
// At paper scale the raw stream is hundreds of millions of samples, so the
// recorder aggregates on the fly into the exact groupings the analysis
// needs: per-minute GPU-utilization histograms keyed by job size × final
// status (Figure 5, Table 3), by server spread for 16-GPU jobs (Table 5),
// by dedicated-server classes (Figure 6), and host CPU/memory histograms
// (Figure 7). Per-job means are kept for trace export.
package telemetry

import (
	"sort"

	"philly/internal/cluster"
	"philly/internal/failures"
	"philly/internal/perfmodel"
	"philly/internal/stats"
)

// SizeClass buckets GPU counts the way Figure 5 and Table 3 do: exact
// representative sizes 1, 4, 8, 16, with everything else tracked but
// reported only in the "All" aggregate.
type SizeClass int

const (
	// Size1GPU .. Size16GPU are the representative sizes.
	Size1GPU SizeClass = iota
	Size4GPU
	Size8GPU
	Size16GPU
	// SizeOther covers the remaining sizes (2, 24, 32, ...).
	SizeOther
	// NumSizeClasses is the class count.
	NumSizeClasses
)

// ClassFor maps a GPU count to its representative class.
func ClassFor(gpus int) SizeClass {
	switch gpus {
	case 1:
		return Size1GPU
	case 4:
		return Size4GPU
	case 8:
		return Size8GPU
	case 16:
		return Size16GPU
	default:
		return SizeOther
	}
}

// String names the class as the paper prints it.
func (s SizeClass) String() string {
	switch s {
	case Size1GPU:
		return "1 GPU"
	case Size4GPU:
		return "4 GPU"
	case Size8GPU:
		return "8 GPU"
	case Size16GPU:
		return "16 GPU"
	case SizeOther:
		return "other"
	default:
		return "?"
	}
}

// JobMeta is what the recorder needs to know about a job to aggregate its
// samples. Outcome is known to the simulator up front; a production
// pipeline would join it post hoc, with identical results.
type JobMeta struct {
	ID        cluster.JobID
	GPUs      int
	Outcome   failures.Outcome
	Servers   int
	Colocated bool
}

// JobUsage accumulates one job's utilization samples.
type JobUsage struct {
	SumUtil float64
	Minutes int
}

// MeanUtil returns the job's mean per-minute utilization, or 0 with no
// samples.
func (u JobUsage) MeanUtil() float64 {
	if u.Minutes == 0 {
		return 0
	}
	return u.SumUtil / float64(u.Minutes)
}

const histBuckets = 100

func newPctHist() *stats.Histogram { return stats.NewHistogram(0, 100, histBuckets) }

// Recorder aggregates telemetry. Not safe for concurrent use: the parallel
// telemetry pipeline in internal/core shards only the RNG draws (into
// per-entity buffer slots) and folds values into the recorder from the
// single event-loop goroutine, in the sequential walk's exact order.
type Recorder struct {
	bySizeStatus [NumSizeClasses][3]*stats.Histogram
	all          *stats.Histogram
	allByStatus  [3]*stats.Histogram

	// spread16 histograms per server count for 16-GPU jobs (Table 5).
	spread16 map[int]*stats.Histogram
	// dedicated8 is 8-GPU jobs on one dedicated server; dedicated16 is
	// 16-GPU jobs on two dedicated servers (Figure 6).
	dedicated8, dedicated16 *stats.Histogram

	hostCPU, hostMem *stats.Histogram

	perJob map[cluster.JobID]*JobUsage
}

// NewRecorder builds an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{
		all:         newPctHist(),
		spread16:    map[int]*stats.Histogram{},
		dedicated8:  newPctHist(),
		dedicated16: newPctHist(),
		hostCPU:     newPctHist(),
		hostMem:     newPctHist(),
		perJob:      map[cluster.JobID]*JobUsage{},
	}
	for s := SizeClass(0); s < NumSizeClasses; s++ {
		for o := 0; o < 3; o++ {
			r.bySizeStatus[s][o] = newPctHist()
		}
	}
	for o := 0; o < 3; o++ {
		r.allByStatus[o] = newPctHist()
	}
	return r
}

// RecordJobMinute records one per-minute GPU-utilization sample (percent,
// averaged over the job's GPUs) for a running job.
func (r *Recorder) RecordJobMinute(meta JobMeta, util float64) {
	r.RecordJobMinuteInto(r.EnsureJob(meta.ID), meta, util)
}

// EnsureJob returns the job's usage accumulator, creating it on first use.
// Callers on the per-tick hot path hold the returned handle and pass it to
// RecordJobMinuteInto, skipping the map lookup every sample would otherwise
// pay.
func (r *Recorder) EnsureJob(id cluster.JobID) *JobUsage {
	u := r.perJob[id]
	if u == nil {
		u = &JobUsage{}
		r.perJob[id] = u
	}
	return u
}

// RecordJobMinuteInto is RecordJobMinute with the per-job accumulator
// supplied by the caller (see EnsureJob). Every histogram here shares the
// [0, 100] percent shape, so the bucket index is computed once and fanned
// out — one division per sample instead of one per histogram.
func (r *Recorder) RecordJobMinuteInto(u *JobUsage, meta JobMeta, util float64) {
	class := ClassFor(meta.GPUs)
	o := int(meta.Outcome)
	idx, under, over := r.all.BucketFor(util)
	r.bySizeStatus[class][o].AddAt(util, idx, under, over)
	r.allByStatus[o].AddAt(util, idx, under, over)
	r.all.AddAt(util, idx, under, over)

	if meta.GPUs == 16 {
		h, ok := r.spread16[meta.Servers]
		if !ok {
			h = newPctHist()
			r.spread16[meta.Servers] = h
		}
		h.AddAt(util, idx, under, over)
		if meta.Servers == 2 && !meta.Colocated {
			r.dedicated16.AddAt(util, idx, under, over)
		}
	}
	if meta.GPUs == 8 && meta.Servers == 1 && !meta.Colocated {
		r.dedicated8.AddAt(util, idx, under, over)
	}

	u.SumUtil += util
	u.Minutes++
}

// RecordHostMinute records one per-minute host sample for a server.
func (r *Recorder) RecordHostMinute(cpuUtil, memUtil float64) {
	r.hostCPU.Add(cpuUtil)
	r.hostMem.Add(memUtil)
}

// RecordHostMinutesStreams records one tick's host samples for the whole
// fleet — servers visited in ID order (the order of the used/caps arrays),
// two model draws per server — with one pre-split RNG stream per server:
// server i draws from streams[i], so its samples depend only on (stream,
// tick count), the property that lets the host walk shard across workers
// bit-identically. This is the sequential shape of the parallel pipeline's
// host walk.
func (r *Recorder) RecordHostMinutesStreams(host *perfmodel.HostModel, used, caps []int32, streams []stats.RNG) {
	cpuHist, memHist := r.hostCPU, r.hostMem
	for i, u := range used {
		cpu, mem := host.Sample(int(u), int(caps[i]), &streams[i])
		cpuHist.Add(cpu)
		memHist.Add(mem)
	}
}

// JobSample is one drawn per-minute job sample, ready to fold. The parallel
// telemetry pipeline splits RecordJobMinuteInto's destinations across
// FoldJobsAll / FoldJobsBySize / FoldJobsSpreadUsage so three workers can
// fold the same sample buffer concurrently without sharing a histogram;
// each method applies samples in buffer order, so per-histogram
// accumulation order — and with it every floating-point sum — is exactly
// the sequential walk's. The three folds together are sample-for-sample
// identical to RecordJobMinuteInto (TestFoldGroupsMatchRecord pins this).
type JobSample struct {
	// Usage is the job's accumulator (exclusive to this sample's job).
	Usage *JobUsage
	// Meta points at the job's grouping key (stable during a tick).
	Meta *JobMeta
	// Util is the drawn utilization percent, already clamped to [0, 100].
	Util float64
	// Idx is Util's precomputed bucket index, or -1 for an empty slot.
	// Clamped values never set a histogram's under/over flags, so the
	// index alone reconstructs the full AddAt.
	Idx int32
}

// HostSample is one drawn per-minute host sample, ready to fold.
type HostSample struct {
	// CPU and Mem are drawn percentages, already clamped to [0, 100].
	CPU, Mem float64
	// CPUIdx and MemIdx are the precomputed bucket indexes.
	CPUIdx, MemIdx int32
}

// BucketFor exposes the shared percent-histogram bucket computation for
// sample producers; all of the recorder's histograms have this shape.
func (r *Recorder) BucketFor(v float64) int32 {
	idx, _, _ := r.all.BucketFor(v)
	return int32(idx)
}

// FoldJobsAll folds a sample buffer into the all-sizes histograms ("all"
// and by-status).
func (r *Recorder) FoldJobsAll(samples []JobSample) {
	for i := range samples {
		s := &samples[i]
		if s.Idx < 0 {
			continue
		}
		r.allByStatus[int(s.Meta.Outcome)].AddAt(s.Util, int(s.Idx), false, false)
		r.all.AddAt(s.Util, int(s.Idx), false, false)
	}
}

// FoldJobsBySize folds a sample buffer into the size-class × status
// histograms.
func (r *Recorder) FoldJobsBySize(samples []JobSample) {
	for i := range samples {
		s := &samples[i]
		if s.Idx < 0 {
			continue
		}
		r.bySizeStatus[ClassFor(s.Meta.GPUs)][int(s.Meta.Outcome)].AddAt(s.Util, int(s.Idx), false, false)
	}
}

// FoldJobsSpreadUsage folds a sample buffer into the spread/dedicated
// histograms and the per-job usage accumulators.
func (r *Recorder) FoldJobsSpreadUsage(samples []JobSample) {
	for i := range samples {
		s := &samples[i]
		if s.Idx < 0 {
			continue
		}
		m := s.Meta
		if m.GPUs == 16 {
			h, ok := r.spread16[m.Servers]
			if !ok {
				h = newPctHist()
				r.spread16[m.Servers] = h
			}
			h.AddAt(s.Util, int(s.Idx), false, false)
			if m.Servers == 2 && !m.Colocated {
				r.dedicated16.AddAt(s.Util, int(s.Idx), false, false)
			}
		}
		if m.GPUs == 8 && m.Servers == 1 && !m.Colocated {
			r.dedicated8.AddAt(s.Util, int(s.Idx), false, false)
		}
		s.Usage.SumUtil += s.Util
		s.Usage.Minutes++
	}
}

// FoldHostCPU folds a host-sample buffer into the CPU histogram.
func (r *Recorder) FoldHostCPU(samples []HostSample) {
	for i := range samples {
		r.hostCPU.AddAt(samples[i].CPU, int(samples[i].CPUIdx), false, false)
	}
}

// FoldHostMem folds a host-sample buffer into the memory histogram.
func (r *Recorder) FoldHostMem(samples []HostSample) {
	for i := range samples {
		r.hostMem.AddAt(samples[i].Mem, int(samples[i].MemIdx), false, false)
	}
}

// SizeStatus returns the utilization histogram for a size class × outcome.
func (r *Recorder) SizeStatus(class SizeClass, o failures.Outcome) *stats.Histogram {
	return r.bySizeStatus[class][int(o)]
}

// AllByStatus returns the all-sizes histogram for an outcome.
func (r *Recorder) AllByStatus(o failures.Outcome) *stats.Histogram {
	return r.allByStatus[int(o)]
}

// All returns the histogram over every job sample.
func (r *Recorder) All() *stats.Histogram { return r.all }

// Spread16 returns the Table 5 histogram for 16-GPU jobs over the given
// server count (nil if never observed).
func (r *Recorder) Spread16(servers int) *stats.Histogram { return r.spread16[servers] }

// Spread16Servers lists observed spreads ascending.
func (r *Recorder) Spread16Servers() []int {
	var out []int
	for s := range r.spread16 {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Dedicated8 returns the Figure 6 histogram for dedicated 8-GPU jobs.
func (r *Recorder) Dedicated8() *stats.Histogram { return r.dedicated8 }

// Dedicated16 returns the Figure 6 histogram for dedicated 16-GPU jobs.
func (r *Recorder) Dedicated16() *stats.Histogram { return r.dedicated16 }

// HostCPU returns the Figure 7 CPU histogram.
func (r *Recorder) HostCPU() *stats.Histogram { return r.hostCPU }

// HostMem returns the Figure 7 memory histogram.
func (r *Recorder) HostMem() *stats.Histogram { return r.hostMem }

// JobUsageOf returns accumulated usage for a job (zero value if none).
func (r *Recorder) JobUsageOf(id cluster.JobID) JobUsage {
	if u := r.perJob[id]; u != nil {
		return *u
	}
	return JobUsage{}
}

// NumJobsSampled returns how many distinct jobs produced samples.
func (r *Recorder) NumJobsSampled() int { return len(r.perJob) }
