// Package telemetry reproduces the Ganglia leg of the paper's measurement
// pipeline (§2.4): per-minute hardware counters from every server — GPU
// utilization, host CPU and memory — joined against the scheduler's GPU
// allocation state so that samples attribute to jobs.
//
// At paper scale the raw stream is hundreds of millions of samples, so the
// recorder aggregates on the fly into the exact groupings the analysis
// needs: per-minute GPU-utilization histograms keyed by job size × final
// status (Figure 5, Table 3), by server spread for 16-GPU jobs (Table 5),
// by dedicated-server classes (Figure 6), and host CPU/memory histograms
// (Figure 7). Per-job means are kept for trace export.
//
// # Sharded fold
//
// The recorder keeps NumFoldShards complete histogram sets alongside the
// final ("global") one. The telemetry walk in internal/core assigns every
// draw chunk to the fixed shard (chunk index mod NumFoldShards) and folds
// the chunk's samples straight into that shard's set — concurrently across
// shards under a worker pool, or one shard at a time on the sequential
// path, with the identical chunk→shard mapping either way. Seal merges the
// shards into the global set in fixed shard order (0..NumFoldShards-1) at
// study end. Because the mapping and the merge order are worker-count
// independent, results are bit-identical across pool sizes and engines;
// the fold order within each histogram is the deliberate determinism-
// contract change PR 8 made (PERFORMANCE.md § PR 8) — integer bucket
// counts are order-invariant, only the float sums backing histogram means
// shift (deterministically) relative to the pre-PR 8 sequential order.
package telemetry

import (
	"sort"

	"philly/internal/cluster"
	"philly/internal/failures"
	"philly/internal/stats"
)

// SizeClass buckets GPU counts the way Figure 5 and Table 3 do: exact
// representative sizes 1, 4, 8, 16, with everything else tracked but
// reported only in the "All" aggregate.
type SizeClass int

const (
	// Size1GPU .. Size16GPU are the representative sizes.
	Size1GPU SizeClass = iota
	Size4GPU
	Size8GPU
	Size16GPU
	// SizeOther covers the remaining sizes (2, 24, 32, ...).
	SizeOther
	// NumSizeClasses is the class count.
	NumSizeClasses
)

// NumFoldShards is the number of histogram fold shards the recorder keeps.
// It is a fixed constant — never derived from worker count or pool size —
// because the chunk→shard assignment must be identical for every execution
// configuration for results to stay bit-identical.
const NumFoldShards = 8

// ClassFor maps a GPU count to its representative class.
func ClassFor(gpus int) SizeClass {
	switch gpus {
	case 1:
		return Size1GPU
	case 4:
		return Size4GPU
	case 8:
		return Size8GPU
	case 16:
		return Size16GPU
	default:
		return SizeOther
	}
}

// String names the class as the paper prints it.
func (s SizeClass) String() string {
	switch s {
	case Size1GPU:
		return "1 GPU"
	case Size4GPU:
		return "4 GPU"
	case Size8GPU:
		return "8 GPU"
	case Size16GPU:
		return "16 GPU"
	case SizeOther:
		return "other"
	default:
		return "?"
	}
}

// JobMeta is what the recorder needs to know about a job to aggregate its
// samples. Outcome is known to the simulator up front; a production
// pipeline would join it post hoc, with identical results.
type JobMeta struct {
	ID        cluster.JobID
	GPUs      int
	Outcome   failures.Outcome
	Servers   int
	Colocated bool
}

// JobUsage accumulates one job's utilization samples.
type JobUsage struct {
	SumUtil float64
	Minutes int
}

// MeanUtil returns the job's mean per-minute utilization, or 0 with no
// samples.
func (u JobUsage) MeanUtil() float64 {
	if u.Minutes == 0 {
		return 0
	}
	return u.SumUtil / float64(u.Minutes)
}

const histBuckets = 100

func newPctHist() *stats.Histogram { return stats.NewHistogram(0, 100, histBuckets) }

// histSet is one complete set of the analysis histograms. The recorder owns
// NumFoldShards of them plus the global set the accessors read; every
// histogram shares the [0, 100] percent shape, so one bucket computation
// fans out across a set.
type histSet struct {
	bySizeStatus [NumSizeClasses][3]*stats.Histogram
	all          *stats.Histogram
	allByStatus  [3]*stats.Histogram

	// spread16 histograms per server count for 16-GPU jobs (Table 5).
	spread16 map[int]*stats.Histogram
	// dedicated8 is 8-GPU jobs on one dedicated server; dedicated16 is
	// 16-GPU jobs on two dedicated servers (Figure 6).
	dedicated8, dedicated16 *stats.Histogram

	hostCPU, hostMem *stats.Histogram
}

func newHistSet() *histSet {
	h := &histSet{
		all:         newPctHist(),
		spread16:    map[int]*stats.Histogram{},
		dedicated8:  newPctHist(),
		dedicated16: newPctHist(),
		hostCPU:     newPctHist(),
		hostMem:     newPctHist(),
	}
	for s := SizeClass(0); s < NumSizeClasses; s++ {
		for o := 0; o < 3; o++ {
			h.bySizeStatus[s][o] = newPctHist()
		}
	}
	for o := 0; o < 3; o++ {
		h.allByStatus[o] = newPctHist()
	}
	return h
}

// recordJobMinute records one per-minute GPU-utilization sample into this
// set, updating the job's accumulator. The bucket index is computed once
// and fanned out — one division per sample instead of one per histogram.
func (h *histSet) recordJobMinute(u *JobUsage, meta JobMeta, util float64) {
	class := ClassFor(meta.GPUs)
	o := int(meta.Outcome)
	idx, under, over := h.all.BucketFor(util)
	h.bySizeStatus[class][o].AddAt(util, idx, under, over)
	h.allByStatus[o].AddAt(util, idx, under, over)
	h.all.AddAt(util, idx, under, over)

	if meta.GPUs == 16 {
		sp, ok := h.spread16[meta.Servers]
		if !ok {
			sp = newPctHist()
			h.spread16[meta.Servers] = sp
		}
		sp.AddAt(util, idx, under, over)
		if meta.Servers == 2 && !meta.Colocated {
			h.dedicated16.AddAt(util, idx, under, over)
		}
	}
	if meta.GPUs == 8 && meta.Servers == 1 && !meta.Colocated {
		h.dedicated8.AddAt(util, idx, under, over)
	}

	u.SumUtil += util
	u.Minutes++
}

// recordHostMinute records one per-minute host sample into this set.
func (h *histSet) recordHostMinute(cpuUtil, memUtil float64) {
	h.hostCPU.Add(cpuUtil)
	h.hostMem.Add(memUtil)
}

// mergeFrom folds another set into this one. Every histogram pair shares
// the percent shape, so Merge cannot fail on live recorders.
func (h *histSet) mergeFrom(o *histSet) {
	must := func(err error) {
		if err != nil {
			panic("telemetry: fold-shard merge shape mismatch: " + err.Error())
		}
	}
	for s := SizeClass(0); s < NumSizeClasses; s++ {
		for st := 0; st < 3; st++ {
			must(h.bySizeStatus[s][st].Merge(o.bySizeStatus[s][st]))
		}
	}
	for st := 0; st < 3; st++ {
		must(h.allByStatus[st].Merge(o.allByStatus[st]))
	}
	must(h.all.Merge(o.all))
	for servers, sp := range o.spread16 {
		dst, ok := h.spread16[servers]
		if !ok {
			dst = newPctHist()
			h.spread16[servers] = dst
		}
		must(dst.Merge(sp))
	}
	must(h.dedicated8.Merge(o.dedicated8))
	must(h.dedicated16.Merge(o.dedicated16))
	must(h.hostCPU.Merge(o.hostCPU))
	must(h.hostMem.Merge(o.hostMem))
}

// Recorder aggregates telemetry. Not safe for fully concurrent use: the
// parallel pipeline in internal/core touches disjoint state per worker —
// each fold shard is owned by exactly one fork-join task, and a job's
// usage accumulator by the task owning the job's chunk — and everything
// else runs on the single event-loop goroutine.
type Recorder struct {
	global *histSet
	// shards are the fold-shard sets, merged into global by Seal (nil
	// afterwards, so sealed recorders compare by their merged state alone).
	shards []*histSet

	// dense backs the per-job accumulators for ID-dense workloads (IDs
	// 1..n, see Reserve): slot i serves job ID i+1. The backing array is
	// allocated once and never regrown, so *JobUsage handles stay valid.
	dense     []JobUsage
	denseUsed []bool
	denseHits int
	// perJob covers jobs outside the dense range (federation-injected IDs,
	// replayed traces with arbitrary IDs).
	perJob map[cluster.JobID]*JobUsage
}

// NewRecorder builds an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{
		global: newHistSet(),
		shards: make([]*histSet, NumFoldShards),
		perJob: map[cluster.JobID]*JobUsage{},
	}
	for i := range r.shards {
		r.shards[i] = newHistSet()
	}
	return r
}

// Reserve pre-sizes the per-job accumulator table for job IDs 1..n. Only
// valid for workloads whose generated IDs are exactly that dense range (the
// caller must verify); other IDs keep working through the fallback map.
// Must be called before any sample is recorded.
func (r *Recorder) Reserve(n int) {
	r.dense = make([]JobUsage, n)
	r.denseUsed = make([]bool, n)
}

// FoldShard is a handle on one fold shard's histogram set. Handles to
// different shards may record concurrently; a single shard's handle must
// only be used by one goroutine at a time.
type FoldShard struct{ set *histSet }

// FoldShard returns the handle for fold shard g in [0, NumFoldShards).
// Only valid before Seal.
func (r *Recorder) FoldShard(g int) FoldShard { return FoldShard{r.shards[g]} }

// RecordJobMinuteInto records one job sample into the shard.
func (f FoldShard) RecordJobMinuteInto(u *JobUsage, meta JobMeta, util float64) {
	f.set.recordJobMinute(u, meta, util)
}

// RecordHostMinute records one host sample into the shard.
func (f FoldShard) RecordHostMinute(cpuUtil, memUtil float64) {
	f.set.recordHostMinute(cpuUtil, memUtil)
}

// Seal merges the fold shards into the final histogram set, in fixed shard
// order, and releases them. Accessors reflect shard-recorded samples only
// after Seal; recording through FoldShard handles afterwards is invalid.
// Idempotent.
func (r *Recorder) Seal() {
	if r.shards == nil {
		return
	}
	for _, sh := range r.shards {
		r.global.mergeFrom(sh)
	}
	r.shards = nil
}

// Sealed reports whether Seal has run.
func (r *Recorder) Sealed() bool { return r.shards == nil }

// RecordJobMinute records one per-minute GPU-utilization sample (percent,
// averaged over the job's GPUs) for a running job, directly into the final
// set — the single-writer path for callers outside the sharded walk.
func (r *Recorder) RecordJobMinute(meta JobMeta, util float64) {
	r.global.recordJobMinute(r.EnsureJob(meta.ID), meta, util)
}

// EnsureJob returns the job's usage accumulator, creating it on first use.
// Callers on the per-tick hot path hold the returned handle, skipping the
// lookup every sample would otherwise pay.
func (r *Recorder) EnsureJob(id cluster.JobID) *JobUsage {
	if i := int64(id); i >= 1 && i <= int64(len(r.dense)) {
		if !r.denseUsed[i-1] {
			r.denseUsed[i-1] = true
			r.denseHits++
		}
		return &r.dense[i-1]
	}
	u := r.perJob[id]
	if u == nil {
		u = &JobUsage{}
		r.perJob[id] = u
	}
	return u
}

// RecordJobMinuteInto is RecordJobMinute with the per-job accumulator
// supplied by the caller (see EnsureJob).
func (r *Recorder) RecordJobMinuteInto(u *JobUsage, meta JobMeta, util float64) {
	r.global.recordJobMinute(u, meta, util)
}

// RecordHostMinute records one per-minute host sample for a server into the
// final set.
func (r *Recorder) RecordHostMinute(cpuUtil, memUtil float64) {
	r.global.recordHostMinute(cpuUtil, memUtil)
}

// SizeStatus returns the utilization histogram for a size class × outcome.
func (r *Recorder) SizeStatus(class SizeClass, o failures.Outcome) *stats.Histogram {
	return r.global.bySizeStatus[class][int(o)]
}

// AllByStatus returns the all-sizes histogram for an outcome.
func (r *Recorder) AllByStatus(o failures.Outcome) *stats.Histogram {
	return r.global.allByStatus[int(o)]
}

// All returns the histogram over every job sample.
func (r *Recorder) All() *stats.Histogram { return r.global.all }

// Spread16 returns the Table 5 histogram for 16-GPU jobs over the given
// server count (nil if never observed).
func (r *Recorder) Spread16(servers int) *stats.Histogram { return r.global.spread16[servers] }

// Spread16Servers lists observed spreads ascending.
func (r *Recorder) Spread16Servers() []int {
	var out []int
	for s := range r.global.spread16 {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Dedicated8 returns the Figure 6 histogram for dedicated 8-GPU jobs.
func (r *Recorder) Dedicated8() *stats.Histogram { return r.global.dedicated8 }

// Dedicated16 returns the Figure 6 histogram for dedicated 16-GPU jobs.
func (r *Recorder) Dedicated16() *stats.Histogram { return r.global.dedicated16 }

// HostCPU returns the Figure 7 CPU histogram.
func (r *Recorder) HostCPU() *stats.Histogram { return r.global.hostCPU }

// HostMem returns the Figure 7 memory histogram.
func (r *Recorder) HostMem() *stats.Histogram { return r.global.hostMem }

// JobUsageOf returns accumulated usage for a job (zero value if none).
func (r *Recorder) JobUsageOf(id cluster.JobID) JobUsage {
	if i := int64(id); i >= 1 && i <= int64(len(r.dense)) {
		return r.dense[i-1]
	}
	if u := r.perJob[id]; u != nil {
		return *u
	}
	return JobUsage{}
}

// NumJobsSampled returns how many distinct jobs produced samples.
func (r *Recorder) NumJobsSampled() int { return r.denseHits + len(r.perJob) }
