package telemetry

import (
	"reflect"
	"testing"

	"philly/internal/failures"
	"philly/internal/stats"
)

func TestClassFor(t *testing.T) {
	cases := map[int]SizeClass{
		1: Size1GPU, 4: Size4GPU, 8: Size8GPU, 16: Size16GPU,
		2: SizeOther, 3: SizeOther, 24: SizeOther, 32: SizeOther,
	}
	for gpus, want := range cases {
		if got := ClassFor(gpus); got != want {
			t.Errorf("ClassFor(%d) = %v, want %v", gpus, got, want)
		}
	}
	if Size1GPU.String() != "1 GPU" || Size16GPU.String() != "16 GPU" || SizeOther.String() != "other" {
		t.Error("SizeClass names wrong")
	}
}

func TestRecordJobMinuteGrouping(t *testing.T) {
	r := NewRecorder()
	meta := JobMeta{ID: 1, GPUs: 8, Outcome: failures.Passed, Servers: 1, Colocated: false}
	r.RecordJobMinute(meta, 70)
	r.RecordJobMinute(meta, 80)

	if got := r.SizeStatus(Size8GPU, failures.Passed).Count(); got != 2 {
		t.Errorf("size-status count = %d, want 2", got)
	}
	if got := r.SizeStatus(Size8GPU, failures.Killed).Count(); got != 0 {
		t.Errorf("wrong outcome bucket has %d samples", got)
	}
	if got := r.All().Mean(); got != 75 {
		t.Errorf("all mean = %v, want 75", got)
	}
	if got := r.AllByStatus(failures.Passed).Count(); got != 2 {
		t.Errorf("status margin count = %d", got)
	}
	// Dedicated 8-GPU single-server job feeds Figure 6.
	if got := r.Dedicated8().Count(); got != 2 {
		t.Errorf("dedicated8 count = %d, want 2", got)
	}
	if got := r.Dedicated16().Count(); got != 0 {
		t.Errorf("dedicated16 count = %d, want 0", got)
	}
	u := r.JobUsageOf(1)
	if u.Minutes != 2 || u.MeanUtil() != 75 {
		t.Errorf("job usage = %+v", u)
	}
	if r.NumJobsSampled() != 1 {
		t.Errorf("jobs sampled = %d", r.NumJobsSampled())
	}
}

func TestColocated8GPUNotDedicated(t *testing.T) {
	r := NewRecorder()
	r.RecordJobMinute(JobMeta{ID: 1, GPUs: 8, Outcome: failures.Passed, Servers: 1, Colocated: true}, 50)
	if got := r.Dedicated8().Count(); got != 0 {
		t.Errorf("colocated job leaked into dedicated8: %d", got)
	}
	r.RecordJobMinute(JobMeta{ID: 2, GPUs: 8, Outcome: failures.Passed, Servers: 2, Colocated: false}, 50)
	if got := r.Dedicated8().Count(); got != 0 {
		t.Errorf("2-server 8-GPU job leaked into dedicated8: %d", got)
	}
}

func TestSpread16Grouping(t *testing.T) {
	r := NewRecorder()
	for _, servers := range []int{2, 2, 4, 8} {
		r.RecordJobMinute(JobMeta{
			ID: 1, GPUs: 16, Outcome: failures.Passed, Servers: servers, Colocated: servers > 2,
		}, 40)
	}
	if got := r.Spread16(2).Count(); got != 2 {
		t.Errorf("spread 2 count = %d, want 2", got)
	}
	if got := r.Spread16(4).Count(); got != 1 {
		t.Errorf("spread 4 count = %d, want 1", got)
	}
	if r.Spread16(3) != nil {
		t.Error("unobserved spread should be nil")
	}
	want := []int{2, 4, 8}
	got := r.Spread16Servers()
	if len(got) != len(want) {
		t.Fatalf("spreads = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spreads = %v, want %v", got, want)
		}
	}
	// Dedicated 16 = 2 servers, not colocated.
	if got := r.Dedicated16().Count(); got != 2 {
		t.Errorf("dedicated16 count = %d, want 2", got)
	}
}

func TestHostRecording(t *testing.T) {
	r := NewRecorder()
	r.RecordHostMinute(20, 80)
	r.RecordHostMinute(30, 90)
	if got := r.HostCPU().Mean(); got != 25 {
		t.Errorf("host cpu mean = %v, want 25", got)
	}
	if got := r.HostMem().Mean(); got != 85 {
		t.Errorf("host mem mean = %v, want 85", got)
	}
}

func TestJobUsageZeroValue(t *testing.T) {
	r := NewRecorder()
	u := r.JobUsageOf(42)
	if u.Minutes != 0 || u.MeanUtil() != 0 {
		t.Errorf("usage of unknown job = %+v", u)
	}
}

// TestFoldGroupsMatchRecord pins the parallel pipeline's fold-group methods
// to the fused walk: for a stream of samples spanning every grouping branch
// (size classes, outcomes, 16-GPU spreads, dedicated 8/16, clamped edges),
// FoldJobsAll + FoldJobsBySize + FoldJobsSpreadUsage applied to a sample
// buffer must leave a recorder deep-equal — every bucket count and float
// sum — to one fed through RecordJobMinuteInto, and FoldHostCPU+FoldHostMem
// deep-equal to RecordHostMinute.
func TestFoldGroupsMatchRecord(t *testing.T) {
	fused, folded := NewRecorder(), NewRecorder()
	metas := []JobMeta{
		{ID: 1, GPUs: 1, Outcome: failures.Passed, Servers: 1},
		{ID: 2, GPUs: 4, Outcome: failures.Killed, Servers: 1, Colocated: true},
		{ID: 3, GPUs: 8, Outcome: failures.Unsuccessful, Servers: 1},
		{ID: 4, GPUs: 8, Outcome: failures.Passed, Servers: 2},
		{ID: 5, GPUs: 16, Outcome: failures.Passed, Servers: 2},
		{ID: 6, GPUs: 16, Outcome: failures.Killed, Servers: 2, Colocated: true},
		{ID: 7, GPUs: 16, Outcome: failures.Passed, Servers: 4},
		{ID: 8, GPUs: 32, Outcome: failures.Passed, Servers: 4},
	}
	rng := stats.NewRNG(11)
	var buf []JobSample
	for tick := 0; tick < 50; tick++ {
		buf = buf[:0]
		for mi := range metas {
			m := &metas[mi]
			util := float64(int(rng.Float64()*1200)-100) / 10 // spans <0, 0..100, >100... clamped below
			if util < 0 {
				util = 0
			}
			if util > 100 {
				util = 100
			}
			fused.RecordJobMinuteInto(fused.EnsureJob(m.ID), *m, util)
			buf = append(buf, JobSample{
				Usage: folded.EnsureJob(m.ID), Meta: m,
				Util: util, Idx: folded.BucketFor(util),
			})
			// Interleave dead slots like the running list's tombstones.
			buf = append(buf, JobSample{Idx: -1})
		}
		folded.FoldJobsAll(buf)
		folded.FoldJobsBySize(buf)
		folded.FoldJobsSpreadUsage(buf)

		var hosts []HostSample
		for srv := 0; srv < 8; srv++ {
			cpu := rng.Float64() * 100
			mem := rng.Float64() * 100
			fused.RecordHostMinute(cpu, mem)
			hosts = append(hosts, HostSample{
				CPU: cpu, Mem: mem,
				CPUIdx: folded.BucketFor(cpu), MemIdx: folded.BucketFor(mem),
			})
		}
		folded.FoldHostCPU(hosts)
		folded.FoldHostMem(hosts)
	}
	if !reflect.DeepEqual(fused, folded) {
		t.Fatal("fold-group recorder diverged from RecordJobMinuteInto/RecordHostMinute")
	}
	// The boundary values 0 and 100 must also agree (clamped samples never
	// set under/over flags, which the fold relies on).
	for _, v := range []float64{0, 100} {
		m := metas[0]
		fused.RecordJobMinuteInto(fused.EnsureJob(m.ID), m, v)
		s := []JobSample{{Usage: folded.EnsureJob(m.ID), Meta: &metas[0], Util: v, Idx: folded.BucketFor(v)}}
		folded.FoldJobsAll(s)
		folded.FoldJobsBySize(s)
		folded.FoldJobsSpreadUsage(s)
	}
	if !reflect.DeepEqual(fused, folded) {
		t.Fatal("fold-group recorder diverged on clamp-boundary samples")
	}
}
