package telemetry

import (
	"reflect"
	"testing"

	"philly/internal/failures"
	"philly/internal/stats"
)

func TestClassFor(t *testing.T) {
	cases := map[int]SizeClass{
		1: Size1GPU, 4: Size4GPU, 8: Size8GPU, 16: Size16GPU,
		2: SizeOther, 3: SizeOther, 24: SizeOther, 32: SizeOther,
	}
	for gpus, want := range cases {
		if got := ClassFor(gpus); got != want {
			t.Errorf("ClassFor(%d) = %v, want %v", gpus, got, want)
		}
	}
	if Size1GPU.String() != "1 GPU" || Size16GPU.String() != "16 GPU" || SizeOther.String() != "other" {
		t.Error("SizeClass names wrong")
	}
}

func TestRecordJobMinuteGrouping(t *testing.T) {
	r := NewRecorder()
	meta := JobMeta{ID: 1, GPUs: 8, Outcome: failures.Passed, Servers: 1, Colocated: false}
	r.RecordJobMinute(meta, 70)
	r.RecordJobMinute(meta, 80)

	if got := r.SizeStatus(Size8GPU, failures.Passed).Count(); got != 2 {
		t.Errorf("size-status count = %d, want 2", got)
	}
	if got := r.SizeStatus(Size8GPU, failures.Killed).Count(); got != 0 {
		t.Errorf("wrong outcome bucket has %d samples", got)
	}
	if got := r.All().Mean(); got != 75 {
		t.Errorf("all mean = %v, want 75", got)
	}
	if got := r.AllByStatus(failures.Passed).Count(); got != 2 {
		t.Errorf("status margin count = %d", got)
	}
	// Dedicated 8-GPU single-server job feeds Figure 6.
	if got := r.Dedicated8().Count(); got != 2 {
		t.Errorf("dedicated8 count = %d, want 2", got)
	}
	if got := r.Dedicated16().Count(); got != 0 {
		t.Errorf("dedicated16 count = %d, want 0", got)
	}
	u := r.JobUsageOf(1)
	if u.Minutes != 2 || u.MeanUtil() != 75 {
		t.Errorf("job usage = %+v", u)
	}
	if r.NumJobsSampled() != 1 {
		t.Errorf("jobs sampled = %d", r.NumJobsSampled())
	}
}

func TestColocated8GPUNotDedicated(t *testing.T) {
	r := NewRecorder()
	r.RecordJobMinute(JobMeta{ID: 1, GPUs: 8, Outcome: failures.Passed, Servers: 1, Colocated: true}, 50)
	if got := r.Dedicated8().Count(); got != 0 {
		t.Errorf("colocated job leaked into dedicated8: %d", got)
	}
	r.RecordJobMinute(JobMeta{ID: 2, GPUs: 8, Outcome: failures.Passed, Servers: 2, Colocated: false}, 50)
	if got := r.Dedicated8().Count(); got != 0 {
		t.Errorf("2-server 8-GPU job leaked into dedicated8: %d", got)
	}
}

func TestSpread16Grouping(t *testing.T) {
	r := NewRecorder()
	for _, servers := range []int{2, 2, 4, 8} {
		r.RecordJobMinute(JobMeta{
			ID: 1, GPUs: 16, Outcome: failures.Passed, Servers: servers, Colocated: servers > 2,
		}, 40)
	}
	if got := r.Spread16(2).Count(); got != 2 {
		t.Errorf("spread 2 count = %d, want 2", got)
	}
	if got := r.Spread16(4).Count(); got != 1 {
		t.Errorf("spread 4 count = %d, want 1", got)
	}
	if r.Spread16(3) != nil {
		t.Error("unobserved spread should be nil")
	}
	want := []int{2, 4, 8}
	got := r.Spread16Servers()
	if len(got) != len(want) {
		t.Fatalf("spreads = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spreads = %v, want %v", got, want)
		}
	}
	// Dedicated 16 = 2 servers, not colocated.
	if got := r.Dedicated16().Count(); got != 2 {
		t.Errorf("dedicated16 count = %d, want 2", got)
	}
}

func TestHostRecording(t *testing.T) {
	r := NewRecorder()
	r.RecordHostMinute(20, 80)
	r.RecordHostMinute(30, 90)
	if got := r.HostCPU().Mean(); got != 25 {
		t.Errorf("host cpu mean = %v, want 25", got)
	}
	if got := r.HostMem().Mean(); got != 85 {
		t.Errorf("host mem mean = %v, want 85", got)
	}
}

func TestJobUsageZeroValue(t *testing.T) {
	r := NewRecorder()
	u := r.JobUsageOf(42)
	if u.Minutes != 0 || u.MeanUtil() != 0 {
		t.Errorf("usage of unknown job = %+v", u)
	}
}

// foldMetas spans every grouping branch: all size classes, all outcomes,
// 16-GPU spreads, dedicated 8/16, colocation.
var foldMetas = []JobMeta{
	{ID: 1, GPUs: 1, Outcome: failures.Passed, Servers: 1},
	{ID: 2, GPUs: 4, Outcome: failures.Killed, Servers: 1, Colocated: true},
	{ID: 3, GPUs: 8, Outcome: failures.Unsuccessful, Servers: 1},
	{ID: 4, GPUs: 8, Outcome: failures.Passed, Servers: 2},
	{ID: 5, GPUs: 16, Outcome: failures.Passed, Servers: 2},
	{ID: 6, GPUs: 16, Outcome: failures.Killed, Servers: 2, Colocated: true},
	{ID: 7, GPUs: 16, Outcome: failures.Passed, Servers: 4},
	{ID: 8, GPUs: 32, Outcome: failures.Passed, Servers: 4},
	{ID: 9, GPUs: 2, Outcome: failures.Passed, Servers: 1},
	{ID: 10, GPUs: 16, Outcome: failures.Unsuccessful, Servers: 8},
	{ID: 11, GPUs: 8, Outcome: failures.Killed, Servers: 1},
	{ID: 12, GPUs: 1, Outcome: failures.Unsuccessful, Servers: 1, Colocated: true},
}

// tickSamples is one telemetry tick's worth of draws: one util per job
// (clamped to [0, 100] so the boundary branches are exercised) and one
// cpu/mem pair per host.
type tickSamples struct {
	utils    []float64
	cpu, mem []float64
}

func drawTicks(nTicks, nHosts int, seed uint64) []tickSamples {
	rng := stats.NewRNG(seed)
	out := make([]tickSamples, nTicks)
	for t := range out {
		tk := &out[t]
		for range foldMetas {
			util := float64(int(rng.Float64()*1200)-100) / 10
			if util < 0 {
				util = 0
			}
			if util > 100 {
				util = 100
			}
			tk.utils = append(tk.utils, util)
		}
		for s := 0; s < nHosts; s++ {
			tk.cpu = append(tk.cpu, rng.Float64()*100)
			tk.mem = append(tk.mem, rng.Float64()*100)
		}
	}
	return out
}

// foldTick replays one tick through the per-chunk fold shards the way the
// core walk does: job chunks first, then host chunks, chunk c into shard
// c mod NumFoldShards. order lists the chunk indices to execute; the
// caller may permute chunks ACROSS shards freely but must keep each
// shard's own chunks ascending — exactly the freedom the fork-join has.
func foldTick(r *Recorder, tk *tickSamples, chunkSize int, order []int) {
	jobChunks := (len(foldMetas) + chunkSize - 1) / chunkSize
	for _, c := range order {
		sh := r.FoldShard(c % NumFoldShards)
		if c < jobChunks {
			lo, hi := c*chunkSize, (c+1)*chunkSize
			if hi > len(foldMetas) {
				hi = len(foldMetas)
			}
			for i := lo; i < hi; i++ {
				sh.RecordJobMinuteInto(r.EnsureJob(foldMetas[i].ID), foldMetas[i], tk.utils[i])
			}
			continue
		}
		hc := c - jobChunks
		lo, hi := hc*chunkSize, (hc+1)*chunkSize
		if hi > len(tk.cpu) {
			hi = len(tk.cpu)
		}
		for i := lo; i < hi; i++ {
			sh.RecordHostMinute(tk.cpu[i], tk.mem[i])
		}
	}
}

// TestShardedFoldInvariance pins the PR 8 fold-order determinism contract:
// the sealed recorder is a pure function of the per-shard chunk sequences,
// independent of how chunks from DIFFERENT shards interleave in time. One
// recorder folds chunks in natural ascending order (the sequential walk);
// the other executes whole shards in reverse shard order (an adversarial
// parallel schedule). After Seal the two must be deep-equal — every bucket
// count AND every float sum.
func TestShardedFoldInvariance(t *testing.T) {
	const chunkSize, nHosts = 2, 16
	ticks := drawTicks(40, nHosts, 11)
	jobChunks := (len(foldMetas) + chunkSize - 1) / chunkSize
	total := jobChunks + (nHosts+chunkSize-1)/chunkSize

	natural := make([]int, 0, total)
	for c := 0; c < total; c++ {
		natural = append(natural, c)
	}
	scrambled := make([]int, 0, total)
	for g := NumFoldShards - 1; g >= 0; g-- {
		for c := g; c < total; c += NumFoldShards {
			scrambled = append(scrambled, c)
		}
	}

	a, b := NewRecorder(), NewRecorder()
	for i := range ticks {
		foldTick(a, &ticks[i], chunkSize, natural)
		foldTick(b, &ticks[i], chunkSize, scrambled)
	}
	a.Seal()
	b.Seal()
	if !a.Sealed() || !b.Sealed() {
		t.Fatal("Seal did not mark recorders sealed")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sealed recorder depends on cross-shard execution order")
	}
	// Sealing again must be a no-op.
	b.Seal()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Seal is not idempotent")
	}
}

// TestShardedFoldCountsMatchFused pins what the fold-order change may and
// may not shift relative to a single-sink sequential recording of the same
// samples: integer state (bucket counts, totals, minutes) is order-
// invariant and must match exactly; float sums accumulate in a different
// association and may only drift at rounding level (means within 1e-9).
func TestShardedFoldCountsMatchFused(t *testing.T) {
	const chunkSize, nHosts = 2, 16
	ticks := drawTicks(40, nHosts, 11)
	jobChunks := (len(foldMetas) + chunkSize - 1) / chunkSize
	total := jobChunks + (nHosts+chunkSize-1)/chunkSize
	order := make([]int, 0, total)
	for c := 0; c < total; c++ {
		order = append(order, c)
	}

	fused, sharded := NewRecorder(), NewRecorder()
	for i := range ticks {
		tk := &ticks[i]
		for j, m := range foldMetas {
			fused.RecordJobMinuteInto(fused.EnsureJob(m.ID), m, tk.utils[j])
		}
		for s := range tk.cpu {
			fused.RecordHostMinute(tk.cpu[s], tk.mem[s])
		}
		foldTick(sharded, tk, chunkSize, order)
	}
	fused.Seal()
	sharded.Seal()

	type histPair struct {
		name string
		f, s *stats.Histogram
	}
	pairs := []histPair{
		{"all", fused.All(), sharded.All()},
		{"dedicated8", fused.Dedicated8(), sharded.Dedicated8()},
		{"dedicated16", fused.Dedicated16(), sharded.Dedicated16()},
		{"hostCPU", fused.HostCPU(), sharded.HostCPU()},
		{"hostMem", fused.HostMem(), sharded.HostMem()},
	}
	for _, o := range []failures.Outcome{failures.Passed, failures.Killed, failures.Unsuccessful} {
		pairs = append(pairs, histPair{"byStatus", fused.AllByStatus(o), sharded.AllByStatus(o)})
		for _, cl := range []SizeClass{Size1GPU, Size4GPU, Size8GPU, Size16GPU, SizeOther} {
			pairs = append(pairs, histPair{"sizeStatus", fused.SizeStatus(cl, o), sharded.SizeStatus(cl, o)})
		}
	}
	for _, srv := range fused.Spread16Servers() {
		pairs = append(pairs, histPair{"spread16", fused.Spread16(srv), sharded.Spread16(srv)})
	}
	for _, p := range pairs {
		if p.f.Count() != p.s.Count() {
			t.Errorf("%s: count %d != fused %d", p.name, p.s.Count(), p.f.Count())
		}
		if d := p.s.Mean() - p.f.Mean(); d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: mean drift %g beyond rounding", p.name, d)
		}
	}
	for _, m := range foldMetas {
		uf, us := fused.JobUsageOf(m.ID), sharded.JobUsageOf(m.ID)
		if uf.Minutes != us.Minutes {
			t.Errorf("job %d minutes %d != %d", m.ID, us.Minutes, uf.Minutes)
		}
		if d := us.MeanUtil() - uf.MeanUtil(); d > 1e-9 || d < -1e-9 {
			t.Errorf("job %d mean util drift %g", m.ID, d)
		}
	}
	if fused.NumJobsSampled() != sharded.NumJobsSampled() {
		t.Errorf("jobs sampled %d != %d", sharded.NumJobsSampled(), fused.NumJobsSampled())
	}
}

// TestReserveDensePath pins the dense per-job table: IDs 1..n resolve to
// arena slots (no map entries), out-of-range IDs fall back to the map, and
// NumJobsSampled counts both.
func TestReserveDensePath(t *testing.T) {
	r := NewRecorder()
	r.Reserve(4)
	meta := JobMeta{ID: 2, GPUs: 1, Outcome: failures.Passed, Servers: 1}
	u := r.EnsureJob(2)
	r.RecordJobMinuteInto(u, meta, 50)
	if u2 := r.EnsureJob(2); u2 != u {
		t.Error("dense EnsureJob not stable across calls")
	}
	if got := r.JobUsageOf(2); got.Minutes != 1 || got.MeanUtil() != 50 {
		t.Errorf("dense usage = %+v", got)
	}
	// Beyond the reserved range: map path.
	big := r.EnsureJob(1 << 40)
	r.RecordJobMinuteInto(big, meta, 70)
	if got := r.JobUsageOf(1 << 40); got.Minutes != 1 || got.MeanUtil() != 70 {
		t.Errorf("map-path usage = %+v", got)
	}
	if got := r.NumJobsSampled(); got != 2 {
		t.Errorf("jobs sampled = %d, want 2", got)
	}
	if got := r.JobUsageOf(3); got.Minutes != 0 {
		t.Errorf("untouched dense slot reported %+v", got)
	}
}
