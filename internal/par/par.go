// Package par provides the shared, budgeted worker pool behind every layer
// of parallelism in the simulator: across-study workers in internal/sweep,
// the intra-study telemetry shards in internal/core, rack scoring in
// internal/cluster, and chunked log scanning in internal/joblog.
//
// One pool, one budget. A Pool of size N never runs more than N tasks at
// once, no matter how the layers nest: callers always execute their own
// fork-join work (the caller is one of the N), and extra shards are handed
// only to workers that are idle at that instant (TrySubmit never blocks and
// never queues). When internal/sweep saturates the pool with studies, each
// study's intra-study fork-joins simply run inline on that study's worker —
// zero oversubscription, zero idle cores. As studies drain and workers go
// idle, the remaining studies' shards start landing on them automatically.
//
// Determinism contract: the pool only decides *where* a shard runs, never
// what it computes or how results merge. Every caller in this repository
// shards work over fixed, worker-count-independent boundaries and folds
// shard results in fixed shard order, so results are bit-identical for any
// pool size, including none (a nil *Pool runs everything inline).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool. The zero value is not usable; nil is: a
// nil *Pool runs all work inline on the caller.
type Pool struct {
	// size is the total parallelism budget, counting the caller.
	size int
	// tasks hands work to idle helpers. The channel is unbuffered on
	// purpose: a send succeeds only when a helper is blocked receiving —
	// i.e. provably idle — which is what makes the budget hard.
	tasks chan func()
	// done closes the helpers on Close.
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewPool builds a pool with a total budget of n concurrent tasks,
// including the calling goroutine of every ForkJoin; n-1 helper goroutines
// are spawned. n <= 0 means runtime.GOMAXPROCS(0). A budget of 1 spawns no
// helpers at all — every ForkJoin runs inline, which is the sequential
// engine.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{size: n, tasks: make(chan func())}
	for i := 0; i < n-1; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Size returns the pool's total budget (helpers + the caller), or 1 for a
// nil pool.
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.size
}

// Close stops the helper goroutines and waits for in-flight tasks to
// finish. ForkJoin on a closed pool panics (send on closed channel) — close
// only after all users are done. Close on a nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closeOnce.Do(func() {
		close(p.tasks)
		p.wg.Wait()
	})
}

// ForkJoin runs fn(0..n-1) and returns when every call has finished. The
// caller executes shards itself and idle helpers (if any) are enlisted via
// non-blocking handoff, so the call makes progress even when the whole pool
// is busy — nested ForkJoins cannot deadlock. Shard execution order and
// placement are unspecified; callers must make shards independent and fold
// their outputs in shard order if float accumulation order matters.
func (p *Pool) ForkJoin(n int, fn func(shard int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.size == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for enlisted := 0; enlisted < p.size-1 && enlisted < n-1; enlisted++ {
		wg.Add(1)
		task := func() {
			defer wg.Done()
			run()
		}
		ok := false
		select {
		case p.tasks <- task:
			ok = true
		default:
			// No helper is idle right now; stop recruiting and do the
			// rest ourselves.
		}
		if !ok {
			wg.Done()
			break
		}
	}
	run()
	wg.Wait()
}
