package par

import (
	"fmt"
	"runtime"
	"sync"
)

// Ledger carves one worker budget into leases for external schedulers —
// the accounting side of the pool contract. A Pool bounds how many tasks
// one fork-join caller can have in flight; a Ledger bounds how many
// workers several *independent* callers (the serve admission controller's
// concurrently running studies) may hold in total. Each admitted study
// leases its worker count up front, runs on a pool of exactly that size,
// and releases the lease when it finishes, so the sum of every in-flight
// study's parallelism never exceeds the machine budget — the same "one
// budget, zero oversubscription" guarantee Pool gives within a study,
// lifted across studies.
//
// All methods are safe for concurrent use. TryAcquire never blocks:
// admission control decides what to do with a refusal (queue, reject),
// the ledger only keeps the arithmetic honest.
type Ledger struct {
	mu        sync.Mutex
	size      int
	leased    int
	highWater int
}

// NewLedger builds a ledger with a total budget of n workers; n <= 0
// means runtime.GOMAXPROCS(0).
func NewLedger(n int) *Ledger {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Ledger{size: n}
}

// Size returns the total budget.
func (l *Ledger) Size() int { return l.size }

// TryAcquire leases n workers if the remaining budget allows it and
// reports whether the lease was granted. n must be positive.
func (l *Ledger) TryAcquire(n int) bool {
	if n <= 0 {
		panic(fmt.Sprintf("par: TryAcquire(%d): lease must be positive", n))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.leased+n > l.size {
		return false
	}
	l.leased += n
	if l.leased > l.highWater {
		l.highWater = l.leased
	}
	return true
}

// Release returns n leased workers to the budget. Releasing more than is
// currently leased is a caller bug and panics: silently clamping would
// let a double-release inflate the budget and break the admission bound.
func (l *Ledger) Release(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("par: Release(%d): lease must be positive", n))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > l.leased {
		panic(fmt.Sprintf("par: Release(%d) with only %d leased", n, l.leased))
	}
	l.leased -= n
}

// Leased returns the currently leased worker count.
func (l *Ledger) Leased() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.leased
}

// HighWater returns the maximum leased count ever observed — the white-box
// witness that admission never oversubscribed the budget.
func (l *Ledger) HighWater() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.highWater
}
