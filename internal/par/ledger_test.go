package par

import (
	"sync"
	"testing"
)

func TestLedgerBudget(t *testing.T) {
	l := NewLedger(4)
	if l.Size() != 4 {
		t.Fatalf("Size = %d, want 4", l.Size())
	}
	if !l.TryAcquire(3) {
		t.Fatal("TryAcquire(3) on an empty ledger refused")
	}
	if l.TryAcquire(2) {
		t.Fatal("TryAcquire(2) with 3/4 leased granted — budget exceeded")
	}
	if !l.TryAcquire(1) {
		t.Fatal("TryAcquire(1) with 3/4 leased refused")
	}
	if got := l.Leased(); got != 4 {
		t.Fatalf("Leased = %d, want 4", got)
	}
	l.Release(4)
	if got := l.Leased(); got != 0 {
		t.Fatalf("Leased after release = %d, want 0", got)
	}
	if got := l.HighWater(); got != 4 {
		t.Fatalf("HighWater = %d, want 4", got)
	}
}

func TestLedgerDefaultsToGOMAXPROCS(t *testing.T) {
	if NewLedger(0).Size() < 1 {
		t.Fatal("NewLedger(0) budget < 1")
	}
}

func TestLedgerOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release beyond leased did not panic")
		}
	}()
	NewLedger(2).Release(1)
}

// TestLedgerConcurrentHighWater hammers the ledger from many goroutines
// and asserts the high-water mark never exceeds the budget — the
// admission-control invariant the serve scheduler relies on.
func TestLedgerConcurrentHighWater(t *testing.T) {
	l := NewLedger(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if l.TryAcquire(2) {
					l.Release(2)
				}
				if l.TryAcquire(1) {
					l.Release(1)
				}
			}
		}()
	}
	wg.Wait()
	if hw := l.HighWater(); hw > l.Size() {
		t.Fatalf("HighWater %d exceeds budget %d", hw, l.Size())
	}
	if got := l.Leased(); got != 0 {
		t.Fatalf("Leased after drain = %d, want 0", got)
	}
}
