package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForkJoinCoversAllShards checks every shard runs exactly once, across
// pool sizes and shard counts (including n < size and n > size).
func TestForkJoinCoversAllShards(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8} {
		p := NewPool(size)
		for _, n := range []int{0, 1, 3, 17, 256} {
			counts := make([]atomic.Int32, n)
			p.ForkJoin(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("size=%d n=%d shard %d ran %d times", size, n, i, got)
				}
			}
		}
		p.Close()
	}
}

// TestNilPoolRunsInline checks the nil pool executes shards in order on the
// calling goroutine.
func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Fatalf("nil pool size = %d", p.Size())
	}
	var order []int
	p.ForkJoin(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order %v", order)
		}
	}
	p.Close() // must not panic
}

// TestNestedForkJoinNoDeadlock saturates the pool with outer tasks that
// each fork inner work; TrySubmit semantics must keep everything moving.
func TestNestedForkJoinNoDeadlock(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	p.ForkJoin(16, func(outer int) {
		p.ForkJoin(16, func(inner int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 256 {
		t.Fatalf("nested shards ran %d times, want 256", got)
	}
}

// TestBudgetNeverExceeded counts concurrently running shards and asserts
// the pool's hard budget holds even under nesting.
func TestBudgetNeverExceeded(t *testing.T) {
	const size = 4
	p := NewPool(size)
	defer p.Close()
	var cur, max atomic.Int64
	var mu sync.Mutex
	enter := func() {
		c := cur.Add(1)
		mu.Lock()
		if c > max.Load() {
			max.Store(c)
		}
		mu.Unlock()
	}
	p.ForkJoin(32, func(outer int) {
		enter()
		defer cur.Add(-1)
		p.ForkJoin(8, func(inner int) {
			enter()
			defer cur.Add(-1)
			for i := 0; i < 1000; i++ {
				_ = i * i
			}
		})
	})
	// Outer shard + its nested inner shard run on the same goroutine (the
	// caller executes its own fork-join), so one worker can hold two
	// "entered" frames at once; the budget bound on goroutines is size.
	if got := max.Load(); got > 2*size {
		t.Fatalf("observed %d concurrent frames, budget %d (max allowed %d)", got, size, 2*size)
	}
}
