package analysis

import (
	"strings"
	"testing"

	"philly/internal/cluster"
	"philly/internal/core"
	"philly/internal/simulation"
)

// fleetStudy runs one reduced study for aggregation tests.
func fleetStudy(t *testing.T, seed uint64, jobs int) *core.StudyResult {
	t.Helper()
	cfg := core.SmallConfig()
	cfg.Seed = seed
	cfg.Workload.TotalJobs = jobs
	cfg.Workload.Duration = 2 * simulation.Day
	cfg.Cluster = cluster.Config{Racks: []cluster.RackConfig{
		{Servers: 6, SKU: cluster.SKU8GPU},
	}}
	st, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestComputeFleet checks the per-member rows and the combined fold:
// counts sum, offloaded shells are excluded everywhere, spillover marks
// count as received, and the rendered table carries every member.
func TestComputeFleet(t *testing.T) {
	a := fleetStudy(t, 3, 160)
	b := fleetStudy(t, 4, 120)

	// Simulate federation bookkeeping: one offloaded shell on a, one
	// received copy on b.
	var offJobs int
	for i := range a.Jobs {
		if !a.Jobs[i].Completed {
			a.Jobs[i].Offloaded = true
			offJobs = 1
			break
		}
	}
	if offJobs == 0 {
		// Every job completed: offload a completed one is invalid, so fake
		// an incomplete shell instead.
		a.Jobs = append(a.Jobs, core.JobResult{Offloaded: true})
		offJobs = 1
	}
	b.Jobs[0].Spillover = true

	rep := ComputeFleet([]FleetMember{{Name: "philly-a", Res: a}, {Name: "helios-b", Res: b}})
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d rows, want 2 members + fleet", len(rep.Rows))
	}
	ra, rb, fleet := rep.Rows[0], rep.Rows[1], rep.Rows[2]
	if fleet.Name != "fleet" {
		t.Fatalf("last row = %q, want fleet", fleet.Name)
	}
	if ra.Offloaded != offJobs {
		t.Fatalf("member a offloaded = %d, want %d", ra.Offloaded, offJobs)
	}
	if rb.Received != 1 {
		t.Fatalf("member b received = %d, want 1", rb.Received)
	}
	if ra.Jobs != len(a.Jobs)-offJobs {
		t.Fatalf("member a jobs = %d, want %d (offloaded shells excluded)", ra.Jobs, len(a.Jobs)-offJobs)
	}
	if fleet.Jobs != ra.Jobs+rb.Jobs || fleet.Completed != ra.Completed+rb.Completed {
		t.Fatalf("fleet sums wrong: %+v vs %+v + %+v", fleet, ra, rb)
	}
	if fleet.GPUs != ra.GPUs+rb.GPUs {
		t.Fatalf("fleet GPUs = %d, want %d", fleet.GPUs, ra.GPUs+rb.GPUs)
	}
	if fleet.GPUHours <= 0 || fleet.UtilMean <= 0 {
		t.Fatalf("fleet carries no load: %+v", fleet)
	}
	// Percentiles over the union sit within the member range.
	lo, hi := ra.DelayP95, rb.DelayP95
	if lo > hi {
		lo, hi = hi, lo
	}
	if fleet.DelayP95 < lo-1e-9 || fleet.DelayP95 > hi+1e-9 {
		t.Fatalf("fleet delay p95 %.2f outside member range [%.2f, %.2f]", fleet.DelayP95, lo, hi)
	}

	out := rep.Render()
	for _, want := range []string{"philly-a", "helios-b", "fleet", "delay p95", "failed GPU-h"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered fleet table lacks %q:\n%s", want, out)
		}
	}
}
