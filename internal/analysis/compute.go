// Package analysis turns a core.StudyResult into the paper's tables and
// figures. Each experiment has a Compute function returning a structured
// result (asserted by tests and benches) and a Render method producing the
// human-readable table or ASCII plot that cmd/philly-repro prints.
package analysis

import (
	"math"
	"sort"

	"philly/internal/core"
	"philly/internal/failures"
	"philly/internal/scheduler"
	"philly/internal/stats"
	"philly/internal/telemetry"
)

// completed filters to jobs that reached a final status.
func completed(res *core.StudyResult) []*core.JobResult {
	out := make([]*core.JobResult, 0, len(res.Jobs))
	for i := range res.Jobs {
		if res.Jobs[i].Completed {
			out = append(out, &res.Jobs[i])
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 2: CDF of job run times by size bucket.

// Figure2 holds run-time CDFs (minutes) per size bucket.
type Figure2 struct {
	BySize [failures.NumSizeBuckets]*stats.CDF
	// WeekLongFraction is the share of jobs running longer than one week
	// (the paper reports ~0.5%).
	WeekLongFraction float64
}

// ComputeFigure2 builds the run-time distributions.
func ComputeFigure2(res *core.StudyResult) Figure2 {
	var samples [failures.NumSizeBuckets][]float64
	long, total := 0, 0
	for _, j := range completed(res) {
		b := j.Spec.SizeBucket()
		samples[b] = append(samples[b], j.RunMinutes)
		total++
		if j.RunMinutes > 7*24*60 {
			long++
		}
	}
	var f Figure2
	for b := range samples {
		f.BySize[b] = stats.NewCDF(samples[b])
	}
	if total > 0 {
		f.WeekLongFraction = float64(long) / float64(total)
	}
	return f
}

// ---------------------------------------------------------------------------
// Figure 3: CDF of queueing delay per VC and size bucket.

// VCDelays is one VC's queueing-delay distributions.
type VCDelays struct {
	VC     string
	Jobs   int
	BySize [failures.NumSizeBuckets]*stats.CDF
}

// Figure3 holds the five largest VCs' delay CDFs.
type Figure3 struct {
	VCs []VCDelays
}

// ComputeFigure3 builds per-VC queueing-delay CDFs for the five VCs with
// the most jobs.
func ComputeFigure3(res *core.StudyResult) Figure3 {
	type acc struct {
		jobs   int
		bySize [failures.NumSizeBuckets][]float64
	}
	byVC := map[string]*acc{}
	for _, j := range completed(res) {
		a := byVC[j.Spec.VC]
		if a == nil {
			a = &acc{}
			byVC[j.Spec.VC] = a
		}
		a.jobs++
		b := j.Spec.SizeBucket()
		a.bySize[b] = append(a.bySize[b], j.FirstQueueDelay.Minutes())
	}
	names := make([]string, 0, len(byVC))
	for name := range byVC {
		names = append(names, name)
	}
	sort.Slice(names, func(i, k int) bool {
		if byVC[names[i]].jobs != byVC[names[k]].jobs {
			return byVC[names[i]].jobs > byVC[names[k]].jobs
		}
		return names[i] < names[k]
	})
	if len(names) > 5 {
		names = names[:5]
	}
	var f Figure3
	for _, name := range names {
		a := byVC[name]
		vd := VCDelays{VC: name, Jobs: a.jobs}
		for b := range a.bySize {
			vd.BySize[b] = stats.NewCDF(a.bySize[b])
		}
		f.VCs = append(f.VCs, vd)
	}
	return f
}

// ---------------------------------------------------------------------------
// Figure 4: locality relaxation vs queueing delay.

// ServerDelay is one (server count -> delay) aggregation point.
type ServerDelay struct {
	Servers        int
	Jobs           int
	MedianDelayMin float64
}

// Figure4 correlates the number of servers a job landed on with its
// queueing delay, for 5-8 GPU and >8 GPU jobs.
type Figure4 struct {
	Dist5to8  []ServerDelay
	DistOver8 []ServerDelay
}

// ComputeFigure4 builds the correlation. Jobs are grouped by the server
// spread of their first attempt.
func ComputeFigure4(res *core.StudyResult) Figure4 {
	type key struct {
		big     bool
		servers int
	}
	samples := map[key][]float64{}
	for _, j := range completed(res) {
		b := j.Spec.SizeBucket()
		if b != failures.Size5to8 && b != failures.SizeOver8 {
			continue
		}
		if len(j.Attempts) == 0 {
			continue
		}
		k := key{big: b == failures.SizeOver8, servers: j.Attempts[0].Servers}
		samples[k] = append(samples[k], j.FirstQueueDelay.Minutes())
	}
	build := func(big bool) []ServerDelay {
		var out []ServerDelay
		for k, v := range samples {
			if k.big != big {
				continue
			}
			out = append(out, ServerDelay{
				Servers:        k.servers,
				Jobs:           len(v),
				MedianDelayMin: stats.Percentile(v, 50),
			})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Servers < out[j].Servers })
		return out
	}
	return Figure4{Dist5to8: build(false), DistOver8: build(true)}
}

// ---------------------------------------------------------------------------
// Table 2: frequencies of fair-share vs fragmentation delay.

// Table2Row is one size bucket's delay-cause split.
type Table2Row struct {
	Bucket        failures.SizeBucket
	FairShare     int
	Fragmentation int
}

// FairSharePct returns the fair-share percentage of classified delays.
func (r Table2Row) FairSharePct() float64 {
	t := r.FairShare + r.Fragmentation
	if t == 0 {
		return 0
	}
	return 100 * float64(r.FairShare) / float64(t)
}

// Table2 is the delay-cause frequency table plus the fragmentation share of
// total waiting time (the paper reports ~80%).
type Table2 struct {
	Rows                 []Table2Row
	FragShareOfDelayTime float64
	PaperFairSharePct    map[failures.SizeBucket]float64
}

// ComputeTable2 classifies delayed jobs by dominant cause. Following the
// paper, only jobs with >= 2 GPUs that ran for at least one minute are
// considered, and only jobs that experienced a blocked attempt count.
func ComputeTable2(res *core.StudyResult) Table2 {
	rows := map[failures.SizeBucket]*Table2Row{}
	var fairTime, fragTime float64
	for _, j := range completed(res) {
		if j.Spec.GPUs < 2 || j.RunMinutes < 1 {
			continue
		}
		cause := j.DelayCause
		if cause == scheduler.DelayNone {
			continue
		}
		b := j.Spec.SizeBucket()
		r := rows[b]
		if r == nil {
			r = &Table2Row{Bucket: b}
			rows[b] = r
		}
		if cause == scheduler.DelayFairShare {
			r.FairShare++
			fairTime += j.TotalQueueDelay.Minutes()
		} else {
			r.Fragmentation++
			fragTime += j.TotalQueueDelay.Minutes()
		}
	}
	var t Table2
	for _, b := range []failures.SizeBucket{failures.Size2to4, failures.Size5to8, failures.SizeOver8} {
		if r := rows[b]; r != nil {
			t.Rows = append(t.Rows, *r)
		} else {
			t.Rows = append(t.Rows, Table2Row{Bucket: b})
		}
	}
	if fairTime+fragTime > 0 {
		t.FragShareOfDelayTime = fragTime / (fairTime + fragTime)
	}
	t.PaperFairSharePct = map[failures.SizeBucket]float64{
		failures.Size2to4:  40.6,
		failures.Size5to8:  25.8,
		failures.SizeOver8: 2.1,
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 5 / Table 3: GPU utilization by size and status.

// Figure5 exposes the per-minute utilization histograms by size class and
// outcome, straight from telemetry.
type Figure5 struct {
	Rec *telemetry.Recorder
}

// ComputeFigure5 wraps the telemetry recorder.
func ComputeFigure5(res *core.StudyResult) Figure5 { return Figure5{Rec: res.Telemetry} }

// Table3 is mean GPU utilization for representative sizes x statuses.
type Table3 struct {
	// Mean[class][outcome]; NaN when no samples.
	Mean [telemetry.NumSizeClasses][3]float64
	// AllByStatus and AllBySize are the margins; Overall is the global mean.
	AllByStatus [3]float64
	AllBySize   [telemetry.NumSizeClasses]float64
	Overall     float64
	// Paper values for EXPERIMENTS.md comparison, by class then status.
	Paper map[string]float64
}

// ComputeTable3 aggregates telemetry means.
func ComputeTable3(res *core.StudyResult) Table3 {
	var t Table3
	rec := res.Telemetry
	for c := telemetry.SizeClass(0); c < telemetry.NumSizeClasses; c++ {
		merged := stats.NewHistogram(0, 100, 100)
		for o := 0; o < 3; o++ {
			h := rec.SizeStatus(c, failures.Outcome(o))
			t.Mean[c][o] = h.Mean()
			if err := merged.Merge(h); err != nil {
				panic(err) // identical shapes by construction
			}
		}
		t.AllBySize[c] = merged.Mean()
	}
	for o := 0; o < 3; o++ {
		t.AllByStatus[o] = rec.AllByStatus(failures.Outcome(o)).Mean()
	}
	t.Overall = rec.All().Mean()
	t.Paper = map[string]float64{
		"1 GPU/All": 52.38, "4 GPU/All": 45.18, "8 GPU/All": 58.99, "16 GPU/All": 40.39,
		"All/Passed": 52.43, "All/Killed": 42.98, "All/Unsuccessful": 60.43, "All/All": 52.32,
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 6: dedicated-server 8 vs 16 GPU utilization.

// Figure6 compares dedicated 8-GPU and 16-GPU jobs.
type Figure6 struct {
	Mean8, Mean16     float64
	Median8, Median16 float64
	Hist8, Hist16     *stats.Histogram
}

// ComputeFigure6 reads the dedicated-server histograms.
func ComputeFigure6(res *core.StudyResult) Figure6 {
	h8, h16 := res.Telemetry.Dedicated8(), res.Telemetry.Dedicated16()
	return Figure6{
		Mean8: h8.Mean(), Mean16: h16.Mean(),
		Median8: h8.Percentile(50), Median16: h16.Percentile(50),
		Hist8: h8, Hist16: h16,
	}
}

// ---------------------------------------------------------------------------
// Figure 7: host resources.

// Figure7 is the host CPU/memory utilization distributions.
type Figure7 struct {
	CPU, Mem             *stats.Histogram
	CPUMedian, MemMedian float64
}

// ComputeFigure7 reads host telemetry.
func ComputeFigure7(res *core.StudyResult) Figure7 {
	return Figure7{
		CPU: res.Telemetry.HostCPU(), Mem: res.Telemetry.HostMem(),
		CPUMedian: res.Telemetry.HostCPU().Percentile(50),
		MemMedian: res.Telemetry.HostMem().Percentile(50),
	}
}

// ---------------------------------------------------------------------------
// Table 5: 16-GPU jobs by server spread.

// Table5Row is one spread class.
type Table5Row struct {
	Servers             int
	Samples             uint64
	Mean, P50, P90, P95 float64
}

// Table5 is utilization of 16-GPU jobs by number of servers.
type Table5 struct {
	Rows  []Table5Row
	Paper map[int][4]float64 // servers -> mean, p50, p90, p95
}

// ComputeTable5 aggregates the spread histograms for 2/4/8-server spreads
// (other spreads are reported too when observed).
func ComputeTable5(res *core.StudyResult) Table5 {
	var t Table5
	for _, s := range res.Telemetry.Spread16Servers() {
		h := res.Telemetry.Spread16(s)
		t.Rows = append(t.Rows, Table5Row{
			Servers: s, Samples: h.Count(),
			Mean: h.Mean(), P50: h.Percentile(50), P90: h.Percentile(90), P95: h.Percentile(95),
		})
	}
	t.Paper = map[int][4]float64{
		2: {43.66, 43.69, 91.77, 97.06},
		4: {40.94, 39.85, 83.28, 91.97},
		8: {28.56, 25.71, 65.68, 78.85},
	}
	return t
}

// ---------------------------------------------------------------------------
// Table 6: job outcomes and GPU-time shares.

// Table6 is the final-status distribution.
type Table6 struct {
	Counts        [3]int
	CountPct      [3]float64
	GPUTimeShares [3]float64
	Total         int
	Paper         [3][2]float64 // outcome -> {count pct, gpu time pct}
}

// ComputeTable6 aggregates outcomes.
func ComputeTable6(res *core.StudyResult) Table6 {
	var t Table6
	var gpuMin [3]float64
	total := 0.0
	for _, j := range completed(res) {
		t.Counts[int(j.Outcome)]++
		t.Total++
		gpuMin[int(j.Outcome)] += j.GPUMinutes
		total += j.GPUMinutes
	}
	for o := 0; o < 3; o++ {
		if t.Total > 0 {
			t.CountPct[o] = 100 * float64(t.Counts[o]) / float64(t.Total)
		}
		if total > 0 {
			t.GPUTimeShares[o] = 100 * gpuMin[o] / total
		}
	}
	t.Paper = [3][2]float64{
		{69.3, 44.53},
		{13.5, 37.69},
		{17.2, 17.76},
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 8: effectiveness of training iterations.

// Figure8 summarizes convergence curves for passed and killed jobs.
type Figure8 struct {
	// LowestPassed/WithinPassed are CDFs over the fraction of epochs needed
	// to reach the lowest loss / within 0.1% of it, for passed jobs;
	// likewise for killed jobs.
	LowestPassed, WithinPassed *stats.CDF
	LowestKilled, WithinKilled *stats.CDF
	// JobsWithCurves counts jobs contributing (paper: ~2502).
	JobsWithCurves int
	// GPUTimeToLastTenthPassed is the mean fraction of GPU time spent
	// improving the final 0.1% for passed jobs (paper: 62%); likewise for
	// killed (paper: 56%).
	GPUTimeToLastTenthPassed float64
	GPUTimeToLastTenthKilled float64
}

// ComputeFigure8 aggregates convergence results.
func ComputeFigure8(res *core.StudyResult) Figure8 {
	var lp, wp, lk, wk []float64
	n := 0
	for _, j := range completed(res) {
		c := j.Convergence
		if c == nil {
			continue
		}
		n++
		switch j.Outcome {
		case failures.Passed:
			lp = append(lp, c.FractionForLowest)
			wp = append(wp, c.FractionWithinTenth)
		case failures.Killed:
			lk = append(lk, c.FractionForLowest)
			wk = append(wk, c.FractionWithinTenth)
		}
	}
	mean1minus := func(v []float64) float64 {
		if len(v) == 0 {
			return math.NaN()
		}
		return 1 - stats.Mean(v)
	}
	return Figure8{
		LowestPassed: stats.NewCDF(lp), WithinPassed: stats.NewCDF(wp),
		LowestKilled: stats.NewCDF(lk), WithinKilled: stats.NewCDF(wk),
		JobsWithCurves:           n,
		GPUTimeToLastTenthPassed: mean1minus(wp),
		GPUTimeToLastTenthKilled: mean1minus(wk),
	}
}

// ---------------------------------------------------------------------------
// Figure 9: retries and unsuccessful rate by size.

// Figure9 is retry/unsuccessful statistics by size bucket plus overall.
type Figure9 struct {
	MeanRetries      [failures.NumSizeBuckets]float64
	UnsuccessfulRate [failures.NumSizeBuckets]float64
	AllMeanRetries   float64
	AllUnsuccessful  float64
}

// ComputeFigure9 aggregates retry behaviour.
func ComputeFigure9(res *core.StudyResult) Figure9 {
	var retries [failures.NumSizeBuckets]float64
	var unsucc, count [failures.NumSizeBuckets]float64
	var allR, allU, allN float64
	for _, j := range completed(res) {
		b := j.Spec.SizeBucket()
		retries[b] += float64(j.Retries)
		count[b]++
		allR += float64(j.Retries)
		allN++
		if j.Outcome == failures.Unsuccessful {
			unsucc[b]++
			allU++
		}
	}
	var f Figure9
	for b := range count {
		if count[b] > 0 {
			f.MeanRetries[b] = retries[b] / count[b]
			f.UnsuccessfulRate[b] = unsucc[b] / count[b]
		}
	}
	if allN > 0 {
		f.AllMeanRetries = allR / allN
		f.AllUnsuccessful = allU / allN
	}
	return f
}

// ---------------------------------------------------------------------------
// Table 7: the failure table, recomputed from classified logs.

// Table7Row aggregates one classified failure reason.
type Table7Row struct {
	Reason     string // reason code
	Name       string
	Categories failures.Category
	Trials     int
	Jobs       int
	Users      int
	// RTF percentiles in minutes over observed failed attempts.
	RTFP50, RTFP90, RTFP95 float64
	// TotalRTFPct is this reason's share of summed RTF minutes.
	TotalRTFPct float64
	// Demand buckets the failed attempts' GPU counts.
	Demand [failures.NumDemandBuckets]int
	// GPUTimePct is the share of RTF x demand (GPU-minutes of failure).
	GPUTimePct float64
}

// Table7 is the full failure-classification table.
type Table7 struct {
	Rows []Table7Row
	// TotalTrials counts failed attempts; MisclassifiedPct measures the log
	// classifier against the planner's ground truth (not available to the
	// paper's pipeline, available here).
	TotalTrials      int
	MisclassifiedPct float64
}

// ComputeTable7 groups failed attempts by their log-classified reason.
func ComputeTable7(res *core.StudyResult) Table7 {
	type acc struct {
		rtfs   []float64
		jobs   map[int64]bool
		users  map[string]bool
		demand [failures.NumDemandBuckets]int
		gpuMin float64
	}
	accs := map[string]*acc{}
	totalRTF := 0.0
	totalGPUMin := 0.0
	trials, mis := 0, 0
	for _, j := range completed(res) {
		for _, a := range j.Attempts {
			if !a.Failed {
				continue
			}
			trials++
			if a.ClassifiedReason != a.PlannedReason {
				mis++
			}
			r := accs[a.ClassifiedReason]
			if r == nil {
				r = &acc{jobs: map[int64]bool{}, users: map[string]bool{}}
				accs[a.ClassifiedReason] = r
			}
			r.rtfs = append(r.rtfs, a.RuntimeMinutes)
			r.jobs[j.Spec.ID] = true
			r.users[j.Spec.User] = true
			r.demand[failures.BucketFor(j.Spec.GPUs)]++
			gm := a.RuntimeMinutes * float64(j.Spec.GPUs)
			r.gpuMin += gm
			totalRTF += a.RuntimeMinutes
			totalGPUMin += gm
		}
	}
	byCode := failures.ByCode()
	var t Table7
	t.TotalTrials = trials
	if trials > 0 {
		t.MisclassifiedPct = 100 * float64(mis) / float64(trials)
	}
	for code, a := range accs {
		row := Table7Row{
			Reason: code,
			Trials: len(a.rtfs),
			Jobs:   len(a.jobs),
			Users:  len(a.users),
			RTFP50: stats.Percentile(a.rtfs, 50),
			RTFP90: stats.Percentile(a.rtfs, 90),
			RTFP95: stats.Percentile(a.rtfs, 95),
			Demand: a.demand,
		}
		if r, ok := byCode[code]; ok {
			row.Name = r.Name
			row.Categories = r.Categories
		} else {
			row.Name = code
		}
		if totalRTF > 0 {
			row.TotalRTFPct = 100 * stats.Sum(a.rtfs) / totalRTF
		}
		if totalGPUMin > 0 {
			row.GPUTimePct = 100 * a.gpuMin / totalGPUMin
		}
		t.Rows = append(t.Rows, row)
	}
	sort.Slice(t.Rows, func(i, k int) bool {
		if t.Rows[i].Trials != t.Rows[k].Trials {
			return t.Rows[i].Trials > t.Rows[k].Trials
		}
		return t.Rows[i].Reason < t.Rows[k].Reason
	})
	return t
}

// ---------------------------------------------------------------------------
// Figure 10: RTF vs GPU demand for RTF-dominant failure reasons.

// Figure10Series is the scatter for one reason.
type Figure10Series struct {
	Reason string
	// Points are (GPU demand, RTF minutes) pairs.
	Points []stats.Point
	// MedianSmall / MedianLarge are median RTFs for demand <= 4 and > 4.
	MedianSmall, MedianLarge float64
}

// Figure10 holds the four scatters of the paper.
type Figure10 struct {
	Series []Figure10Series
}

// Figure10Reasons are the four most RTF-dominant failure classes (§4.2.4).
func Figure10Reasons() []string {
	return []string{
		failures.CodeIncorrectInputs,
		failures.CodeSemanticError,
		failures.CodeModelCkptError,
		failures.CodeMPIRuntime,
	}
}

// ComputeFigure10 extracts the scatters from classified attempts.
func ComputeFigure10(res *core.StudyResult) Figure10 {
	want := map[string]int{}
	for i, r := range Figure10Reasons() {
		want[r] = i
	}
	series := make([]Figure10Series, len(want))
	for r, i := range want {
		series[i].Reason = r
	}
	var small, large [4][]float64
	for _, j := range completed(res) {
		for _, a := range j.Attempts {
			if !a.Failed {
				continue
			}
			i, ok := want[a.ClassifiedReason]
			if !ok {
				continue
			}
			series[i].Points = append(series[i].Points, stats.Point{
				X: float64(j.Spec.GPUs), Y: a.RuntimeMinutes,
			})
			if j.Spec.GPUs <= 4 {
				small[i] = append(small[i], a.RuntimeMinutes)
			} else {
				large[i] = append(large[i], a.RuntimeMinutes)
			}
		}
	}
	for i := range series {
		series[i].MedianSmall = stats.Percentile(small[i], 50)
		series[i].MedianLarge = stats.Percentile(large[i], 50)
	}
	return Figure10{Series: series}
}

// ---------------------------------------------------------------------------
// Scheduling behaviour (§3.1.1 prose numbers).

// SchedulingStats summarizes ordering behaviour.
type SchedulingStats struct {
	Starts            int
	OutOfOrderPct     float64
	HarmlessOOOPct    float64
	FairSharePreempts int
	PolicyPreempts    int
	BlockedAttempts   int
	// FragEvidence: mean fraction of empty servers while occupancy was in
	// [0.6, 0.7] (paper: < 4.5% empty at two-thirds occupancy).
	EmptyServersAtTwoThirds float64
}

// ComputeSchedulingStats summarizes scheduler counters and fragmentation
// evidence.
func ComputeSchedulingStats(res *core.StudyResult) SchedulingStats {
	s := SchedulingStats{
		Starts:            res.Sched.Starts,
		FairSharePreempts: res.Sched.FairSharePreemptions,
		PolicyPreempts:    res.Sched.PolicyPreemptions,
		BlockedAttempts:   res.Sched.BlockedAttempts,
	}
	if res.Sched.Starts > 0 {
		s.OutOfOrderPct = 100 * float64(res.Sched.OutOfOrderStarts) / float64(res.Sched.Starts)
	}
	if res.Sched.OutOfOrderStarts > 0 {
		s.HarmlessOOOPct = 100 * float64(res.Sched.HarmlessOutOfOrder) / float64(res.Sched.OutOfOrderStarts)
	}
	var sum float64
	n := 0
	for _, o := range res.OccupancySamples {
		if o.Occupancy >= 0.6 && o.Occupancy <= 0.7 {
			sum += o.EmptyServers
			n++
		}
	}
	if n > 0 {
		s.EmptyServersAtTwoThirds = sum / float64(n)
	} else {
		s.EmptyServersAtTwoThirds = math.NaN()
	}
	return s
}
