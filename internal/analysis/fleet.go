package analysis

// Fleet-level aggregation for federated studies (internal/federation):
// the cross-cluster comparison the Helios and Meta characterizations make
// — do queueing, utilization and failure profiles transfer across members?
// — as one per-member table with a combined fleet row.
//
// The counting rules (offloaded shells excluded, delay percentiles over
// the union, count-weighted utilization) are shared with internal/sweep's
// fleet-wide replica fold; sweep.TestFleetReduceAgreesWithAnalysis pins
// the two against each other.

import (
	"fmt"
	"strings"

	"philly/internal/core"
	"philly/internal/failures"
	"philly/internal/stats"
)

// FleetMember names one member's study result for aggregation.
type FleetMember struct {
	Name string
	Res  *core.StudyResult
}

// FleetRow is one member's (or the combined fleet's) aggregate line:
// queueing, utilization, failure and spillover columns.
type FleetRow struct {
	Name string
	// GPUs is cluster capacity; Jobs counts countable jobs (offloaded
	// bookkeeping shells excluded), Completed those with a terminal state.
	GPUs, Jobs, Completed int
	// Offloaded and Received count spillover traffic at this member.
	Offloaded, Received int
	// Evacuated counts running jobs checkpoint-migrated away from this
	// member after an outage; Resumed counts those restored here.
	Evacuated, Resumed int
	// DelayP50 / DelayP95 summarize first-episode queueing delay (minutes).
	DelayP50, DelayP95 float64
	// UtilMean is the mean per-minute GPU utilization (%).
	UtilMean float64
	// GPUHours is total GPU time charged; FailedGPUHours the share burnt on
	// failed attempts; FailedAttempts counts them.
	GPUHours, FailedGPUHours float64
	FailedAttempts           int
	// UnsuccessfulPct is the share of completed jobs that exhausted retries.
	UnsuccessfulPct float64
	// LostGPUHours is GPU time destroyed by outage kills (work since the
	// victims' last checkpoints); CkptGPUHours the time spent writing and
	// restoring checkpoints. Both 0 when faults / the cost model are off.
	LostGPUHours, CkptGPUHours float64
	// ImbalancePct is the cross-member utilization spread (max member mean
	// util minus min, percentage points); set on the combined row only.
	ImbalancePct float64
}

// FleetReport is the per-member + combined aggregation of a federated
// study.
type FleetReport struct {
	// Rows holds one row per member, in fleet order, then the combined
	// "fleet" row.
	Rows []FleetRow
}

// ComputeFleet aggregates per-member and fleet-wide rows from a federated
// study's member results.
func ComputeFleet(members []FleetMember) FleetReport {
	var rep FleetReport
	fleet := FleetRow{Name: "fleet"}
	var fleetDelay []float64
	var fleetUtilSum float64
	var fleetUtilN uint64
	var utilMin, utilMax float64
	utilMembers := 0
	for _, m := range members {
		row, delays := fleetRow(m.Name, m.Res)
		rep.Rows = append(rep.Rows, row)

		fleet.GPUs += row.GPUs
		fleet.Jobs += row.Jobs
		fleet.Completed += row.Completed
		fleet.Offloaded += row.Offloaded
		fleet.Received += row.Received
		fleet.Evacuated += row.Evacuated
		fleet.Resumed += row.Resumed
		fleet.GPUHours += row.GPUHours
		fleet.FailedGPUHours += row.FailedGPUHours
		fleet.FailedAttempts += row.FailedAttempts
		fleet.LostGPUHours += row.LostGPUHours
		fleet.CkptGPUHours += row.CkptGPUHours
		fleetDelay = append(fleetDelay, delays...)
		if h := m.Res.Telemetry.All(); h.Count() > 0 {
			mean := h.Mean()
			fleetUtilSum += mean * float64(h.Count())
			fleetUtilN += h.Count()
			if utilMembers == 0 || mean < utilMin {
				utilMin = mean
			}
			if utilMembers == 0 || mean > utilMax {
				utilMax = mean
			}
			utilMembers++
		}
	}
	fleet.DelayP50 = stats.Percentile(fleetDelay, 50)
	fleet.DelayP95 = stats.Percentile(fleetDelay, 95)
	if fleetUtilN > 0 {
		fleet.UtilMean = fleetUtilSum / float64(fleetUtilN)
	}
	if utilMembers > 1 {
		fleet.ImbalancePct = utilMax - utilMin
	}
	unsucc := 0
	for _, m := range members {
		for i := range m.Res.Jobs {
			j := &m.Res.Jobs[i]
			if j.Completed && j.Outcome == failures.Unsuccessful {
				unsucc++
			}
		}
	}
	if fleet.Completed > 0 {
		fleet.UnsuccessfulPct = 100 * float64(unsucc) / float64(fleet.Completed)
	}
	rep.Rows = append(rep.Rows, fleet)
	return rep
}

// fleetRow folds one member's result, returning the row and the raw
// first-episode delays (so the combined row takes percentiles over the
// union, not an average of percentiles).
func fleetRow(name string, res *core.StudyResult) (FleetRow, []float64) {
	row := FleetRow{Name: name, GPUs: res.TotalGPUs}
	var delays []float64
	unsucc := 0
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if j.Offloaded {
			row.Offloaded++
			continue
		}
		if j.Spillover {
			row.Received++
		}
		if j.Resumed {
			row.Resumed++
		}
		row.GPUHours += j.GPUMinutes / 60
		row.LostGPUHours += j.LostGPUMinutes / 60
		row.CkptGPUHours += j.CkptGPUMinutes / 60
		for _, att := range j.Attempts {
			if att.Failed {
				row.FailedAttempts++
				row.FailedGPUHours += att.RuntimeMinutes * float64(j.Spec.GPUs) / 60
			}
		}
		if j.Evacuated {
			// Checkpoint-migration donor shell: its GPU time stays in this
			// member's totals, but the job is counted (and completes) at the
			// receiving member's resumed copy.
			row.Evacuated++
			continue
		}
		row.Jobs++
		if !j.Completed {
			continue
		}
		row.Completed++
		delays = append(delays, j.FirstQueueDelay.Minutes())
		if j.Outcome == failures.Unsuccessful {
			unsucc++
		}
	}
	row.DelayP50 = stats.Percentile(delays, 50)
	row.DelayP95 = stats.Percentile(delays, 95)
	row.UtilMean = res.Telemetry.All().Mean()
	if row.Completed > 0 {
		row.UnsuccessfulPct = 100 * float64(unsucc) / float64(row.Completed)
	}
	return row, delays
}

// Render prints the fleet comparison table.
func (r FleetReport) Render() string {
	t := &Table{Header: []string{
		"member", "GPUs", "jobs", "completed", "offloaded", "received",
		"evac", "resumed",
		"delay p50", "delay p95", "util %", "GPU-h", "failed GPU-h", "failed att", "unsucc %",
		"lost GPU-h", "ckpt GPU-h", "imbal pp",
	}}
	for _, row := range r.Rows {
		t.Add(row.Name,
			fmt.Sprintf("%d", row.GPUs),
			fmt.Sprintf("%d", row.Jobs),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Offloaded),
			fmt.Sprintf("%d", row.Received),
			fmt.Sprintf("%d", row.Evacuated),
			fmt.Sprintf("%d", row.Resumed),
			f1(row.DelayP50), f1(row.DelayP95), f1(row.UtilMean),
			f1(row.GPUHours), f1(row.FailedGPUHours),
			fmt.Sprintf("%d", row.FailedAttempts), f1(row.UnsuccessfulPct),
			f1(row.LostGPUHours), f1(row.CkptGPUHours), f1(row.ImbalancePct))
	}
	var b strings.Builder
	b.WriteString("Fleet: per-member and combined queueing / utilization / failure aggregates\n")
	b.WriteString(t.String())
	return b.String()
}
