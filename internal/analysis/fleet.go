package analysis

// Fleet-level aggregation for federated studies (internal/federation):
// the cross-cluster comparison the Helios and Meta characterizations make
// — do queueing, utilization and failure profiles transfer across members?
// — as one per-member table with a combined fleet row.
//
// The counting rules (offloaded shells excluded, delay percentiles over
// the union, count-weighted utilization) are shared with internal/sweep's
// fleet-wide replica fold; sweep.TestFleetReduceAgreesWithAnalysis pins
// the two against each other.

import (
	"fmt"
	"strings"

	"philly/internal/core"
	"philly/internal/failures"
	"philly/internal/stats"
)

// FleetMember names one member's study result for aggregation.
type FleetMember struct {
	Name string
	Res  *core.StudyResult
}

// FleetRow is one member's (or the combined fleet's) aggregate line:
// queueing, utilization, failure and spillover columns.
type FleetRow struct {
	Name string
	// GPUs is cluster capacity; Jobs counts countable jobs (offloaded
	// bookkeeping shells excluded), Completed those with a terminal state.
	GPUs, Jobs, Completed int
	// Offloaded and Received count spillover traffic at this member.
	Offloaded, Received int
	// DelayP50 / DelayP95 summarize first-episode queueing delay (minutes).
	DelayP50, DelayP95 float64
	// UtilMean is the mean per-minute GPU utilization (%).
	UtilMean float64
	// GPUHours is total GPU time charged; FailedGPUHours the share burnt on
	// failed attempts; FailedAttempts counts them.
	GPUHours, FailedGPUHours float64
	FailedAttempts           int
	// UnsuccessfulPct is the share of completed jobs that exhausted retries.
	UnsuccessfulPct float64
}

// FleetReport is the per-member + combined aggregation of a federated
// study.
type FleetReport struct {
	// Rows holds one row per member, in fleet order, then the combined
	// "fleet" row.
	Rows []FleetRow
}

// ComputeFleet aggregates per-member and fleet-wide rows from a federated
// study's member results.
func ComputeFleet(members []FleetMember) FleetReport {
	var rep FleetReport
	fleet := FleetRow{Name: "fleet"}
	var fleetDelay []float64
	var fleetUtilSum float64
	var fleetUtilN uint64
	for _, m := range members {
		row, delays := fleetRow(m.Name, m.Res)
		rep.Rows = append(rep.Rows, row)

		fleet.GPUs += row.GPUs
		fleet.Jobs += row.Jobs
		fleet.Completed += row.Completed
		fleet.Offloaded += row.Offloaded
		fleet.Received += row.Received
		fleet.GPUHours += row.GPUHours
		fleet.FailedGPUHours += row.FailedGPUHours
		fleet.FailedAttempts += row.FailedAttempts
		fleetDelay = append(fleetDelay, delays...)
		if h := m.Res.Telemetry.All(); h.Count() > 0 {
			fleetUtilSum += h.Mean() * float64(h.Count())
			fleetUtilN += h.Count()
		}
	}
	fleet.DelayP50 = stats.Percentile(fleetDelay, 50)
	fleet.DelayP95 = stats.Percentile(fleetDelay, 95)
	if fleetUtilN > 0 {
		fleet.UtilMean = fleetUtilSum / float64(fleetUtilN)
	}
	unsucc := 0
	for _, m := range members {
		for i := range m.Res.Jobs {
			j := &m.Res.Jobs[i]
			if j.Completed && j.Outcome == failures.Unsuccessful {
				unsucc++
			}
		}
	}
	if fleet.Completed > 0 {
		fleet.UnsuccessfulPct = 100 * float64(unsucc) / float64(fleet.Completed)
	}
	rep.Rows = append(rep.Rows, fleet)
	return rep
}

// fleetRow folds one member's result, returning the row and the raw
// first-episode delays (so the combined row takes percentiles over the
// union, not an average of percentiles).
func fleetRow(name string, res *core.StudyResult) (FleetRow, []float64) {
	row := FleetRow{Name: name, GPUs: res.TotalGPUs}
	var delays []float64
	unsucc := 0
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if j.Offloaded {
			row.Offloaded++
			continue
		}
		if j.Spillover {
			row.Received++
		}
		row.Jobs++
		row.GPUHours += j.GPUMinutes / 60
		for _, att := range j.Attempts {
			if att.Failed {
				row.FailedAttempts++
				row.FailedGPUHours += att.RuntimeMinutes * float64(j.Spec.GPUs) / 60
			}
		}
		if !j.Completed {
			continue
		}
		row.Completed++
		delays = append(delays, j.FirstQueueDelay.Minutes())
		if j.Outcome == failures.Unsuccessful {
			unsucc++
		}
	}
	row.DelayP50 = stats.Percentile(delays, 50)
	row.DelayP95 = stats.Percentile(delays, 95)
	row.UtilMean = res.Telemetry.All().Mean()
	if row.Completed > 0 {
		row.UnsuccessfulPct = 100 * float64(unsucc) / float64(row.Completed)
	}
	return row, delays
}

// Render prints the fleet comparison table.
func (r FleetReport) Render() string {
	t := &Table{Header: []string{
		"member", "GPUs", "jobs", "completed", "offloaded", "received",
		"delay p50", "delay p95", "util %", "GPU-h", "failed GPU-h", "failed att", "unsucc %",
	}}
	for _, row := range r.Rows {
		t.Add(row.Name,
			fmt.Sprintf("%d", row.GPUs),
			fmt.Sprintf("%d", row.Jobs),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Offloaded),
			fmt.Sprintf("%d", row.Received),
			f1(row.DelayP50), f1(row.DelayP95), f1(row.UtilMean),
			f1(row.GPUHours), f1(row.FailedGPUHours),
			fmt.Sprintf("%d", row.FailedAttempts), f1(row.UnsuccessfulPct))
	}
	var b strings.Builder
	b.WriteString("Fleet: per-member and combined queueing / utilization / failure aggregates\n")
	b.WriteString(t.String())
	return b.String()
}
