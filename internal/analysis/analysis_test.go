package analysis

import (
	"math"
	"strings"
	"sync"
	"testing"

	"philly/internal/core"
	"philly/internal/failures"
	"philly/internal/telemetry"
)

var (
	once   sync.Once
	result *core.StudyResult
	resErr error
)

// studyResult runs the shared SmallConfig study once.
func studyResult(t *testing.T) *core.StudyResult {
	t.Helper()
	once.Do(func() {
		st, err := core.NewStudy(core.SmallConfig())
		if err != nil {
			resErr = err
			return
		}
		result, resErr = st.Run()
	})
	if resErr != nil {
		t.Fatal(resErr)
	}
	return result
}

func TestFigure2Shapes(t *testing.T) {
	f := ComputeFigure2(studyResult(t))
	for b := failures.SizeBucket(0); b < failures.NumSizeBuckets; b++ {
		if f.BySize[b].Len() == 0 {
			t.Fatalf("no runtime samples for bucket %v", b)
		}
	}
	// Figure 2: larger jobs run longer.
	if f.BySize[failures.SizeOver8].Median() <= f.BySize[failures.Size1].Median() {
		t.Errorf(">8 GPU median (%.1f) should exceed 1 GPU median (%.1f)",
			f.BySize[failures.SizeOver8].Median(), f.BySize[failures.Size1].Median())
	}
	if s := f.Render(); !strings.Contains(s, "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFigure3TopVCs(t *testing.T) {
	f := ComputeFigure3(studyResult(t))
	if len(f.VCs) != 5 {
		t.Fatalf("got %d VCs, want 5", len(f.VCs))
	}
	for i := 1; i < len(f.VCs); i++ {
		if f.VCs[i].Jobs > f.VCs[i-1].Jobs {
			t.Error("VCs not sorted by job count")
		}
	}
	// The biggest VC must have delay data for small jobs at least.
	if f.VCs[0].BySize[failures.Size1].Len() == 0 {
		t.Error("largest VC has no 1-GPU delay samples")
	}
	if s := f.Render(); !strings.Contains(s, "vc1") {
		t.Error("render missing VC names")
	}
}

func TestFigure4LocalityRelaxation(t *testing.T) {
	f := ComputeFigure4(studyResult(t))
	if len(f.DistOver8) == 0 {
		t.Fatal("no >8 GPU spread data")
	}
	// Paper: >8 GPU jobs spread over more servers started sooner. Compare
	// the most-packed against the most-spread observed class with enough
	// jobs.
	var packed, spread *ServerDelay
	for i := range f.DistOver8 {
		r := &f.DistOver8[i]
		if r.Jobs < 5 {
			continue
		}
		if packed == nil {
			packed = r
		}
		spread = r
	}
	if packed != nil && spread != nil && packed != spread {
		if spread.MedianDelayMin > packed.MedianDelayMin*3 && packed.MedianDelayMin > 1 {
			t.Errorf("spread jobs (%d servers, %.1fm) should not wait much longer than packed (%d servers, %.1fm)",
				spread.Servers, spread.MedianDelayMin, packed.Servers, packed.MedianDelayMin)
		}
	}
	_ = f.Render()
}

func TestTable2FragmentationDominatesForBigJobs(t *testing.T) {
	tb := ComputeTable2(studyResult(t))
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Paper: fragmentation causes 97.9% of >8 GPU delays and ~80% of total
	// waiting time. That split depends on job width being a small fraction
	// of VC quota (~5% in the paper's production VCs); at test scale a
	// 16-GPU gang is ~30% of its VC's quota, which structurally inflates
	// fair-share classification. The quantitative comparison therefore
	// lives in the paper-scale run (EXPERIMENTS.md); here we assert the
	// machinery: both causes occur and every delayed bucket is populated.
	totalFair, totalFrag := 0, 0
	for _, r := range tb.Rows {
		totalFair += r.FairShare
		totalFrag += r.Fragmentation
	}
	if totalFair == 0 {
		t.Error("no fair-share delays observed")
	}
	if totalFrag == 0 {
		t.Error("no fragmentation delays observed")
	}
	if tb.FragShareOfDelayTime <= 0 || tb.FragShareOfDelayTime >= 1 {
		t.Errorf("fragmentation share of delay time %.2f out of (0, 1)", tb.FragShareOfDelayTime)
	}
	_ = tb.Render()
}

func TestTable3Calibration(t *testing.T) {
	tb := ComputeTable3(studyResult(t))
	if math.Abs(tb.Overall-52.32) > 8 {
		t.Errorf("overall mean %.1f, paper 52.32", tb.Overall)
	}
	// Status ordering: killed < passed < unsuccessful (Table 3 'All' row).
	if !(tb.AllByStatus[1] < tb.AllByStatus[0] && tb.AllByStatus[0] < tb.AllByStatus[2]) {
		t.Errorf("status ordering wrong: passed %.1f killed %.1f unsucc %.1f",
			tb.AllByStatus[0], tb.AllByStatus[1], tb.AllByStatus[2])
	}
	// 16-GPU jobs have the lowest utilization among representative sizes.
	if tb.AllBySize[telemetry.Size16GPU] >= tb.AllBySize[telemetry.Size8GPU] {
		t.Errorf("16 GPU mean %.1f should be below 8 GPU %.1f",
			tb.AllBySize[telemetry.Size16GPU], tb.AllBySize[telemetry.Size8GPU])
	}
	if s := tb.Render(); !strings.Contains(s, "Table 3") {
		t.Error("render missing title")
	}
}

func TestFigure5HasData(t *testing.T) {
	f := ComputeFigure5(studyResult(t))
	for _, c := range []telemetry.SizeClass{telemetry.Size1GPU, telemetry.Size8GPU} {
		total := uint64(0)
		for o := 0; o < 3; o++ {
			total += f.Rec.SizeStatus(c, failures.Outcome(o)).Count()
		}
		if total == 0 {
			t.Errorf("no samples for class %v", c)
		}
	}
	_ = f.Render()
}

// countJobs16 counts distinct completed 16-GPU jobs by (servers, dedicated).
func countJobs16(res *core.StudyResult, servers int, dedicated bool) int {
	n := 0
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.Completed || j.Spec.GPUs != 16 {
			continue
		}
		if j.LastServers == servers && (!dedicated || !j.EverColocated) {
			n++
		}
	}
	return n
}

func TestFigure6DedicatedGap(t *testing.T) {
	res := studyResult(t)
	f := ComputeFigure6(res)
	if f.Hist8.Count() == 0 {
		t.Fatal("no dedicated 8-GPU samples")
	}
	// Per-job base utilization has sigma 13, so a handful of long jobs can
	// dominate the minute-sample histograms; only assert with a population.
	if n := countJobs16(res, 2, true); n < 15 {
		t.Skipf("only %d dedicated 16-GPU jobs; the paper-scale run covers this", n)
	}
	// Figure 6: the 8-GPU series clearly dominates.
	if f.Mean8-f.Mean16 < 5 {
		t.Errorf("dedicated 8 GPU mean %.1f vs 16 GPU %.1f; paper gap ~22 points", f.Mean8, f.Mean16)
	}
	if f.Median8 <= f.Median16 {
		t.Errorf("median ordering wrong: %.1f vs %.1f", f.Median8, f.Median16)
	}
	_ = f.Render()
}

// TestUtilizationGroupsMediumScale drives many 8/16-GPU jobs through the
// full simulator so the telemetry group orderings (Figure 6, Table 5) are
// testable with a real population rather than a lucky handful of jobs.
func TestUtilizationGroupsMediumScale(t *testing.T) {
	cfg := core.SmallConfig()
	cfg.Seed = 7
	cfg.Workload.TotalJobs = 1100
	cfg.Workload.SizeWeights = map[int]float64{8: 0.4, 16: 0.6}
	st, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := ComputeFigure6(res)
	if f.Hist8.Count() < 1000 || f.Hist16.Count() < 1000 {
		t.Fatalf("insufficient samples: %d / %d", f.Hist8.Count(), f.Hist16.Count())
	}
	if f.Mean8-f.Mean16 < 5 {
		t.Errorf("dedicated 8 GPU mean %.1f vs 16 GPU %.1f; paper gap ~22 points", f.Mean8, f.Mean16)
	}
	if f.Median8 <= f.Median16 {
		t.Errorf("median ordering wrong: %.1f vs %.1f", f.Median8, f.Median16)
	}
	// Compare job-weighted mean utilization (each passed job counts once)
	// between packed (2 servers) and well-spread (>= 4 servers) 16-GPU
	// jobs. Only passed jobs are compared so the status factors do not
	// confound the placement effect, and 3-server spreads are excluded:
	// the paper's own 2-vs-4-server gap is under 3 points, far below
	// per-job dispersion, so only the wide spreads are resolvable.
	var packed, spread []float64
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.Completed || j.Spec.GPUs != 16 || j.MeanUtil == 0 {
			continue
		}
		if j.Outcome != failures.Passed {
			continue
		}
		switch {
		case j.LastServers == 2:
			packed = append(packed, j.MeanUtil)
		case j.LastServers >= 4:
			spread = append(spread, j.MeanUtil)
		}
	}
	if len(packed) < 20 || len(spread) < 20 {
		t.Skipf("insufficient 16-GPU population: %d packed, %d spread", len(packed), len(spread))
	}
	mp, ms := mean(packed), mean(spread)
	if ms >= mp {
		t.Errorf("spread 16-GPU jobs mean util %.1f should be below packed %.1f (Table 5)", ms, mp)
	}
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func TestFigure7HostShape(t *testing.T) {
	f := ComputeFigure7(studyResult(t))
	if f.CPU.Count() == 0 || f.Mem.Count() == 0 {
		t.Fatal("no host samples")
	}
	if f.MemMedian-f.CPUMedian < 15 {
		t.Errorf("memory median %.1f should clearly exceed CPU median %.1f (Figure 7)",
			f.MemMedian, f.CPUMedian)
	}
	_ = f.Render()
}

func TestTable5SpreadOrdering(t *testing.T) {
	res := studyResult(t)
	tb := ComputeTable5(res)
	if len(tb.Rows) == 0 {
		t.Skip("no 16-GPU spread data in this run")
	}
	// Ordering is asserted in TestUtilizationGroupsMediumScale where the
	// population is large; here just validate structure and rendering.
	for _, r := range tb.Rows {
		if r.Samples == 0 {
			t.Errorf("spread %d row with zero samples", r.Servers)
		}
		if r.P50 > r.P90 || r.P90 > r.P95 {
			t.Errorf("spread %d percentiles not monotone: %+v", r.Servers, r)
		}
	}
	_ = tb.Render()
}

func TestTable6Calibration(t *testing.T) {
	tb := ComputeTable6(studyResult(t))
	if tb.Total == 0 {
		t.Fatal("no completed jobs")
	}
	if math.Abs(tb.CountPct[0]-69.3) > 6 {
		t.Errorf("passed pct %.1f, paper 69.3", tb.CountPct[0])
	}
	if math.Abs(tb.CountPct[1]-13.5) > 5 {
		t.Errorf("killed pct %.1f, paper 13.5", tb.CountPct[1])
	}
	if math.Abs(tb.CountPct[2]-17.2) > 6 {
		t.Errorf("unsuccessful pct %.1f, paper 17.2", tb.CountPct[2])
	}
	// GPU-time: failed/killed jobs consume disproportionate time.
	if tb.GPUTimeShares[1]+tb.GPUTimeShares[2] < 38 {
		t.Errorf("killed+unsuccessful GPU share %.1f, paper ~55", tb.GPUTimeShares[1]+tb.GPUTimeShares[2])
	}
	_ = tb.Render()
}

func TestFigure8Shape(t *testing.T) {
	f := ComputeFigure8(studyResult(t))
	if f.JobsWithCurves == 0 {
		t.Fatal("no convergence data")
	}
	if f.LowestPassed.Len() == 0 {
		t.Fatal("no passed curves")
	}
	// Most passed jobs need ~all epochs for the strict minimum.
	needAll := 1 - f.LowestPassed.At(0.95)
	if needAll < 0.5 {
		t.Errorf("fraction needing ~all epochs = %.2f, paper ~0.8", needAll)
	}
	// Within-0.1% comes much earlier.
	if f.WithinPassed.Median() > 0.7 {
		t.Errorf("median within-0.1%% fraction = %.2f, paper ~0.4", f.WithinPassed.Median())
	}
	if f.GPUTimeToLastTenthPassed < 0.3 {
		t.Errorf("GPU time to final 0.1%% = %.2f, paper 0.62", f.GPUTimeToLastTenthPassed)
	}
	_ = f.Render()
}

func TestFigure9Monotonicity(t *testing.T) {
	f := ComputeFigure9(studyResult(t))
	if f.UnsuccessfulRate[failures.SizeOver8] <= f.UnsuccessfulRate[failures.Size1] {
		t.Errorf("unsuccessful rate should grow with size: %.3f vs %.3f",
			f.UnsuccessfulRate[failures.Size1], f.UnsuccessfulRate[failures.SizeOver8])
	}
	if f.MeanRetries[failures.SizeOver8] <= f.MeanRetries[failures.Size1] {
		t.Errorf("retries should grow with size: %.3f vs %.3f",
			f.MeanRetries[failures.Size1], f.MeanRetries[failures.SizeOver8])
	}
	_ = f.Render()
}

func TestTable7Reproduction(t *testing.T) {
	tb := ComputeTable7(studyResult(t))
	if tb.TotalTrials == 0 {
		t.Fatal("no failure trials")
	}
	if tb.MisclassifiedPct > 1 {
		t.Errorf("classifier disagreement %.2f%%, want < 1%%", tb.MisclassifiedPct)
	}
	rows := map[string]Table7Row{}
	for _, r := range tb.Rows {
		rows[r.Reason] = r
	}
	// The dominant reasons must appear and be ordered plausibly.
	oom, ok := rows[failures.CodeCPUOOM]
	if !ok {
		t.Fatal("CPU OOM missing from Table 7")
	}
	inputs := rows[failures.CodeIncorrectInputs]
	if oom.Trials == 0 || inputs.Trials == 0 {
		t.Fatal("dominant reasons have no trials")
	}
	if tb.Rows[0].Reason != failures.CodeCPUOOM && tb.Rows[0].Reason != failures.CodeIncorrectInputs {
		t.Errorf("top reason is %s; paper has CPU OOM / incorrect inputs on top", tb.Rows[0].Reason)
	}
	// RTF medians reproduce the taxonomy's calibration (ratio check).
	if oom.RTFP50 < 5 || oom.RTFP50 > 40 {
		t.Errorf("CPU OOM RTF p50 = %.1f, paper 13.45", oom.RTFP50)
	}
	ckpt := rows[failures.CodeModelCkptError]
	if ckpt.Trials > 0 && ckpt.RTFP50 < oom.RTFP50 {
		t.Errorf("ckpt error median RTF %.1f should exceed CPU OOM %.1f", ckpt.RTFP50, oom.RTFP50)
	}
	// No-signature fallback appears.
	if _, ok := rows[failures.CodeNoSignature]; !ok {
		t.Error("no-signature row missing")
	}
	// Demand columns populated.
	if oom.Demand[failures.Demand1] == 0 {
		t.Error("CPU OOM should concentrate on 1-GPU jobs")
	}
	if s := tb.Render(); !strings.Contains(s, "CPU out of memory") {
		t.Error("render missing reason names")
	}
}

func TestFigure10SemanticErrorTrend(t *testing.T) {
	f := ComputeFigure10(studyResult(t))
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	var sem Figure10Series
	for _, s := range f.Series {
		if s.Reason == failures.CodeSemanticError {
			sem = s
		}
	}
	// The semantic-error RTF distribution has sigma ~3.9, so medians need a
	// real sample size before the demand trend is testable; the full-scale
	// run in EXPERIMENTS.md shows it clearly.
	small, large := 0, 0
	for _, p := range sem.Points {
		if p.X <= 4 {
			small++
		} else {
			large++
		}
	}
	if small < 200 || large < 200 {
		t.Skipf("too few semantic-error trials (%d small, %d large) for a stable median", small, large)
	}
	if sem.MedianLarge <= sem.MedianSmall {
		t.Errorf("semantic error: large-demand median %.1f should exceed small %.1f (Figure 10b)",
			sem.MedianLarge, sem.MedianSmall)
	}
	_ = f.Render()
}

func TestSchedulingStats(t *testing.T) {
	s := ComputeSchedulingStats(studyResult(t))
	if s.Starts == 0 {
		t.Fatal("no starts")
	}
	if s.OutOfOrderPct <= 0 || s.OutOfOrderPct >= 100 {
		t.Errorf("out-of-order pct %.1f implausible", s.OutOfOrderPct)
	}
	if !math.IsNaN(s.EmptyServersAtTwoThirds) && s.EmptyServersAtTwoThirds > 0.3 {
		t.Errorf("empty servers at 2/3 occupancy = %.2f, paper < 0.045", s.EmptyServersAtTwoThirds)
	}
	if out := s.Render(); !strings.Contains(out, "out-of-order") {
		t.Error("render missing fields")
	}
}
