package analysis

import (
	"fmt"
	"math"
	"strings"

	"philly/internal/failures"
	"philly/internal/stats"
	"philly/internal/telemetry"
)

// Table is a minimal aligned-column text renderer. Every table the package
// prints goes through it, and other packages (internal/sweep's comparison
// tables) reuse it so all reports share one look.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends one row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns and a dashed separator.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Cells beyond the header get no padding rather than a panic,
			// matching the width loop's tolerance of ragged rows.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func f2(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// asciiCDF renders a CDF-ish curve as a fixed-width plot with a log-scaled
// x axis (the paper's queueing/runtime figures are log-x).
func asciiCDF(name string, at func(x float64) float64, minX, maxX float64, logX bool) string {
	const width, height = 60, 12
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", name)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for col := 0; col < width; col++ {
		frac := float64(col) / float64(width-1)
		var x float64
		if logX {
			x = minX * math.Pow(maxX/minX, frac)
		} else {
			x = minX + (maxX-minX)*frac
		}
		y := at(x)
		row := int((1 - y) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = '*'
	}
	for i, row := range grid {
		pct := 100 * (1 - float64(i)/float64(height-1))
		fmt.Fprintf(&b, "%5.0f%% |%s|\n", pct, string(row))
	}
	if logX {
		fmt.Fprintf(&b, "        %-28.3g%30.3g (log x)\n", minX, maxX)
	} else {
		fmt.Fprintf(&b, "        %-28.3g%30.3g\n", minX, maxX)
	}
	return b.String()
}

// Render prints the Figure 2 summary with per-bucket percentiles and a plot.
func (f Figure2) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: CDF of job run times by size bucket (minutes)\n")
	t := &Table{Header: []string{"bucket", "jobs", "p50", "p90", "p99", "max"}}
	for bkt := failures.SizeBucket(0); bkt < failures.NumSizeBuckets; bkt++ {
		c := f.BySize[bkt]
		t.Add(bkt.String(), fmt.Sprintf("%d", c.Len()),
			f1(c.Percentile(50)), f1(c.Percentile(90)), f1(c.Percentile(99)), f1(c.Max()))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "jobs running > 1 week: %.2f%% (paper: ~0.5%%)\n", 100*f.WeekLongFraction)
	if f.BySize[0].Len() > 0 {
		b.WriteString(asciiCDF("  1-GPU run time CDF", f.BySize[0].At, 0.1, 1e4, true))
	}
	return b.String()
}

// Render prints per-VC delay percentiles.
func (f Figure3) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: queueing delay by VC and size bucket (minutes)\n")
	t := &Table{Header: []string{"vc", "jobs", "bucket", "p50", "p90", "p99"}}
	for _, vc := range f.VCs {
		for bkt := failures.SizeBucket(0); bkt < failures.NumSizeBuckets; bkt++ {
			c := vc.BySize[bkt]
			if c.Len() == 0 {
				continue
			}
			t.Add(vc.VC, fmt.Sprintf("%d", vc.Jobs), bkt.String(),
				f1(c.Percentile(50)), f1(c.Percentile(90)), f1(c.Percentile(99)))
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// Render prints the servers-vs-delay correlation.
func (f Figure4) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: locality relaxation vs queueing delay\n")
	t := &Table{Header: []string{"series", "servers", "jobs", "median delay (min)"}}
	for _, r := range f.Dist5to8 {
		t.Add("5-8 GPU", fmt.Sprintf("%d", r.Servers), fmt.Sprintf("%d", r.Jobs), f1(r.MedianDelayMin))
	}
	for _, r := range f.DistOver8 {
		t.Add(">8 GPU", fmt.Sprintf("%d", r.Servers), fmt.Sprintf("%d", r.Jobs), f1(r.MedianDelayMin))
	}
	b.WriteString(t.String())
	return b.String()
}

// Render prints delay-cause frequencies.
func (t Table2) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: frequencies of fair-share vs fragmentation delay\n")
	tb := &Table{Header: []string{"bucket", "fair-share", "fragmentation", "fair-share %", "paper %"}}
	for _, r := range t.Rows {
		tb.Add(r.Bucket.String(), fmt.Sprintf("%d", r.FairShare), fmt.Sprintf("%d", r.Fragmentation),
			f1(r.FairSharePct()), f1(t.PaperFairSharePct[r.Bucket]))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "fragmentation share of total waiting time: %.1f%% (paper: ~80%%)\n",
		100*t.FragShareOfDelayTime)
	return b.String()
}

// Render prints utilization CDP summaries per status.
func (f Figure5) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: per-minute GPU utilization by status and size\n")
	tb := &Table{Header: []string{"status", "size", "samples", "p10", "p50", "p90", "mean"}}
	for o := 0; o < 3; o++ {
		for _, c := range []telemetry.SizeClass{telemetry.Size1GPU, telemetry.Size4GPU, telemetry.Size8GPU, telemetry.Size16GPU} {
			h := f.Rec.SizeStatus(c, failures.Outcome(o))
			if h.Count() == 0 {
				continue
			}
			tb.Add(failures.Outcome(o).String(), c.String(), fmt.Sprintf("%d", h.Count()),
				f1(h.Percentile(10)), f1(h.Percentile(50)), f1(h.Percentile(90)), f1(h.Mean()))
		}
	}
	b.WriteString(tb.String())
	return b.String()
}

// Render prints the mean-utilization matrix.
func (t Table3) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: mean GPU utilization by size and status (percent)\n")
	tb := &Table{Header: []string{"size", "Passed", "Killed", "Unsuccessful", "All"}}
	for _, c := range []telemetry.SizeClass{telemetry.Size1GPU, telemetry.Size4GPU, telemetry.Size8GPU, telemetry.Size16GPU} {
		tb.Add(c.String(), f2(t.Mean[c][0]), f2(t.Mean[c][1]), f2(t.Mean[c][2]), f2(t.AllBySize[c]))
	}
	tb.Add("All", f2(t.AllByStatus[0]), f2(t.AllByStatus[1]), f2(t.AllByStatus[2]), f2(t.Overall))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paper: 1 GPU 52.38, 4 GPU 45.18, 8 GPU 58.99, 16 GPU 40.39, All 52.32\n")
	return b.String()
}

// Render prints the dedicated-server comparison.
func (f Figure6) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: GPU utilization on dedicated servers\n")
	tb := &Table{Header: []string{"series", "samples", "mean", "median"}}
	tb.Add("8 GPU (1 server)", fmt.Sprintf("%d", f.Hist8.Count()), f2(f.Mean8), f2(f.Median8))
	tb.Add("16 GPU (2 servers)", fmt.Sprintf("%d", f.Hist16.Count()), f2(f.Mean16), f2(f.Median16))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "paper: 8 GPU mean 56.9 median 73.12; 16 GPU mean 34.3 (Table 5: 43.66) median ~43.7\n")
	return b.String()
}

// Render prints host-resource distributions.
func (f Figure7) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: host resource utilization (per-server, per-minute)\n")
	tb := &Table{Header: []string{"resource", "p10", "p50", "p90", "mean"}}
	tb.Add("CPU", f1(f.CPU.Percentile(10)), f1(f.CPU.Percentile(50)), f1(f.CPU.Percentile(90)), f1(f.CPU.Mean()))
	tb.Add("Memory", f1(f.Mem.Percentile(10)), f1(f.Mem.Percentile(50)), f1(f.Mem.Percentile(90)), f1(f.Mem.Mean()))
	b.WriteString(tb.String())
	b.WriteString("paper: CPUs underutilized, memory highly utilized\n")
	return b.String()
}

// Render prints the spread table.
func (t Table5) Render() string {
	var b strings.Builder
	b.WriteString("Table 5: 16-GPU job utilization by server spread\n")
	tb := &Table{Header: []string{"servers", "samples", "mean", "p50", "p90", "p95", "paper mean"}}
	for _, r := range t.Rows {
		paper := "-"
		if p, ok := t.Paper[r.Servers]; ok {
			paper = f2(p[0])
		}
		tb.Add(fmt.Sprintf("%d", r.Servers), fmt.Sprintf("%d", r.Samples),
			f2(r.Mean), f2(r.P50), f2(r.P90), f2(r.P95), paper)
	}
	b.WriteString(tb.String())
	return b.String()
}

// Render prints the outcome distribution.
func (t Table6) Render() string {
	var b strings.Builder
	b.WriteString("Table 6: distribution of jobs by final status\n")
	tb := &Table{Header: []string{"status", "count", "count %", "paper %", "GPU-time %", "paper %"}}
	for o := 0; o < 3; o++ {
		tb.Add(failures.Outcome(o).String(), fmt.Sprintf("%d", t.Counts[o]),
			f1(t.CountPct[o]), f1(t.Paper[o][0]), f1(t.GPUTimeShares[o]), f1(t.Paper[o][1]))
	}
	tb.Add("Total", fmt.Sprintf("%d", t.Total), "100.0", "100.0", "100.0", "100.0")
	b.WriteString(tb.String())
	return b.String()
}

// Render prints the epoch-effectiveness summary.
func (f Figure8) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: fraction of epochs to reach loss thresholds\n")
	tb := &Table{Header: []string{"series", "jobs", "p25", "p50", "p75", "frac jobs needing all epochs"}}
	row := func(name string, c *stats.CDF) {
		if c.Len() == 0 {
			tb.Add(name, "0", "-", "-", "-", "-")
			return
		}
		needAll := 1 - c.At(0.99)
		tb.Add(name, fmt.Sprintf("%d", c.Len()),
			f2(c.Percentile(25)), f2(c.Percentile(50)), f2(c.Percentile(75)), f2(needAll))
	}
	row("passed / lowest loss", f.LowestPassed)
	row("passed / within 0.1%", f.WithinPassed)
	row("killed / lowest loss", f.LowestKilled)
	row("killed / within 0.1%", f.WithinKilled)
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "GPU time spent improving final 0.1%%: passed %.0f%% (paper 62%%), killed %.0f%% (paper 56%%)\n",
		100*f.GPUTimeToLastTenthPassed, 100*f.GPUTimeToLastTenthKilled)
	fmt.Fprintf(&b, "jobs with parsed convergence logs: %d (paper: 2502)\n", f.JobsWithCurves)
	return b.String()
}

// Render prints retry statistics.
func (f Figure9) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: retries and unsuccessful rate by size bucket\n")
	tb := &Table{Header: []string{"bucket", "mean retries", "unsuccessful rate"}}
	for bkt := failures.SizeBucket(0); bkt < failures.NumSizeBuckets; bkt++ {
		tb.Add(bkt.String(), f2(f.MeanRetries[bkt]), f2(f.UnsuccessfulRate[bkt]))
	}
	tb.Add("All", f2(f.AllMeanRetries), f2(f.AllUnsuccessful))
	b.WriteString(tb.String())
	return b.String()
}

// Render prints the failure table.
func (t Table7) Render() string {
	var b strings.Builder
	b.WriteString("Table 7: failures classified from job logs\n")
	tb := &Table{Header: []string{
		"reason", "cat", "trials", "jobs", "users", "p50", "p90", "p95", "RTF%", "d:1", "d:2-4", "d:>4", "GPUtime%",
	}}
	for _, r := range t.Rows {
		tb.Add(r.Name, r.Categories.String(),
			fmt.Sprintf("%d", r.Trials), fmt.Sprintf("%d", r.Jobs), fmt.Sprintf("%d", r.Users),
			f2(r.RTFP50), f2(r.RTFP90), f2(r.RTFP95), f2(r.TotalRTFPct),
			fmt.Sprintf("%d", r.Demand[0]), fmt.Sprintf("%d", r.Demand[1]), fmt.Sprintf("%d", r.Demand[2]),
			f2(r.GPUTimePct))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "total trials: %d; classifier/ground-truth disagreement: %.2f%%\n",
		t.TotalTrials, t.MisclassifiedPct)
	return b.String()
}

// Render prints the demand-vs-RTF medians per reason.
func (f Figure10) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: RTF vs GPU demand for RTF-dominant failure reasons\n")
	tb := &Table{Header: []string{"reason", "trials", "median RTF <=4 GPU", "median RTF >4 GPU"}}
	for _, s := range f.Series {
		tb.Add(s.Reason, fmt.Sprintf("%d", len(s.Points)), f1(s.MedianSmall), f1(s.MedianLarge))
	}
	b.WriteString(tb.String())
	b.WriteString("paper: only semantic error grows with demand; others dominated by small-demand long tails\n")
	return b.String()
}

// Render prints scheduling behaviour.
func (s SchedulingStats) Render() string {
	var b strings.Builder
	b.WriteString("Scheduling behaviour (paper §3.1.1)\n")
	fmt.Fprintf(&b, "  scheduling decisions:    %d\n", s.Starts)
	fmt.Fprintf(&b, "  out-of-order starts:     %.1f%% (paper: 38.1%%)\n", s.OutOfOrderPct)
	fmt.Fprintf(&b, "  harmless out-of-order:   %.1f%% (paper: ~85%% for large jobs)\n", s.HarmlessOOOPct)
	fmt.Fprintf(&b, "  fair-share preemptions:  %d\n", s.FairSharePreempts)
	fmt.Fprintf(&b, "  blocked attempts:        %d\n", s.BlockedAttempts)
	if !math.IsNaN(s.EmptyServersAtTwoThirds) {
		fmt.Fprintf(&b, "  empty servers at 2/3 occupancy: %.1f%% (paper: < 4.5%%)\n",
			100*s.EmptyServersAtTwoThirds)
	}
	return b.String()
}
