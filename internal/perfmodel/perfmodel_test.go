package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"philly/internal/failures"
	"philly/internal/stats"
)

func TestResNet50MatchesTable4(t *testing.T) {
	results, err := ResNet50Table(DefaultResNet50Params())
	if err != nil {
		t.Fatal(err)
	}
	paper := PaperTable4()
	for _, r := range results {
		want := paper[r.Config]
		if math.Abs(r.GPUUtil-want[0]) > 2.0 {
			t.Errorf("%s: model util %.1f, paper %.1f (tolerance 2.0)", r.Config, r.GPUUtil, want[0])
		}
		if math.Abs(r.ImagesPerSec-want[1]) > 4.0 {
			t.Errorf("%s: model %.1f img/s, paper %.1f (tolerance 4.0)", r.Config, r.ImagesPerSec, want[1])
		}
	}
}

func TestResNet50Ordering(t *testing.T) {
	results, err := ResNet50Table(DefaultResNet50Params())
	if err != nil {
		t.Fatal(err)
	}
	// Table 4's qualitative finding: SameServer > DiffServer > IntraServer
	// > InterServer for both metrics.
	for i := 1; i < len(results); i++ {
		if results[i].GPUUtil >= results[i-1].GPUUtil {
			t.Errorf("utilization ordering violated: %s (%.1f) >= %s (%.1f)",
				results[i].Config, results[i].GPUUtil, results[i-1].Config, results[i-1].GPUUtil)
		}
		if results[i].ImagesPerSec >= results[i-1].ImagesPerSec {
			t.Errorf("throughput ordering violated at %s", results[i].Config)
		}
	}
}

func TestResNet50BatchScaling(t *testing.T) {
	// Paper §3.2.1: batch 64 lifts SameServer utilization to ~71.1%, and
	// larger batches improve only marginally.
	p := DefaultResNet50Params()
	p.BatchPerGPU = 64
	r, err := ResNet50(SameServer, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.GPUUtil-71.1) > 3 {
		t.Errorf("batch-64 SameServer util %.1f, paper reports ~71.1", r.GPUUtil)
	}
	p.BatchPerGPU = 256
	r256, err := ResNet50(SameServer, p)
	if err != nil {
		t.Fatal(err)
	}
	if r256.GPUUtil-r.GPUUtil > 20 {
		t.Errorf("batch 256 should improve only marginally: %.1f -> %.1f", r.GPUUtil, r256.GPUUtil)
	}
}

func TestResNet50UtilThroughputConsistency(t *testing.T) {
	// In the paper, images/s tracks utilization almost exactly (both are
	// compute-fraction proxies): img/s ~= 2 * peak * util/100.
	p := DefaultResNet50Params()
	results, err := ResNet50Table(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		predicted := 2 * p.PeakImagesPerSecPerGPU * r.GPUUtil / 100
		if math.Abs(predicted-r.ImagesPerSec) > 1 {
			t.Errorf("%s: throughput %.1f inconsistent with util-derived %.1f", r.Config, r.ImagesPerSec, predicted)
		}
	}
}

func TestResNet50Validation(t *testing.T) {
	bad := DefaultResNet50Params()
	bad.BatchPerGPU = 0
	if _, err := ResNet50(SameServer, bad); err == nil {
		t.Error("want error for zero batch")
	}
	bad2 := DefaultResNet50Params()
	bad2.PCIeContention = 0.5
	if _, err := ResNet50(IntraServer, bad2); err == nil {
		t.Error("want error for contention < 1")
	}
	if _, err := ResNet50(PlacementConfig(99), DefaultResNet50Params()); err == nil {
		t.Error("want error for unknown config")
	}
	if PlacementConfig(99).String() != "unknown" {
		t.Error("unknown config String")
	}
}

func TestUtilParamsValidation(t *testing.T) {
	if err := DefaultUtilParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []func(*UtilParams){
		func(p *UtilParams) { p.HealthyBase = 0 },
		func(p *UtilParams) { p.HealthyBase = 150 },
		func(p *UtilParams) { p.StalledBase = p.HealthyBase + 1 },
		func(p *UtilParams) { p.StalledProb = 1.5 },
		func(p *UtilParams) { p.ColocationFactor = 0 },
		func(p *UtilParams) { p.MultiGPUFactor = 1.5 },
		func(p *UtilParams) { p.KilledFactor = -1 },
	}
	for i, mutate := range cases {
		p := DefaultUtilParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func meanBase(t *testing.T, m *Model, shape JobShape, outcome failures.Outcome, seed uint64) float64 {
	t.Helper()
	g := stats.NewRNG(seed)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += m.JobBaseUtil(shape, outcome, g)
	}
	return sum / float64(n)
}

func TestUtilizationSizeOrdering(t *testing.T) {
	m := MustNewModel(DefaultUtilParams())
	u8 := meanBase(t, m, JobShape{GPUs: 8, Servers: 1}, failures.Passed, 1)
	u16d := meanBase(t, m, JobShape{GPUs: 16, Servers: 2}, failures.Passed, 2)
	u16s := meanBase(t, m, JobShape{GPUs: 16, Servers: 8, Colocated: true}, failures.Passed, 3)
	// Figure 6: dedicated 8-GPU well above dedicated 16-GPU.
	if u8-u16d < 8 {
		t.Errorf("8-GPU dedicated (%.1f) should exceed 16-GPU 2-server (%.1f) clearly", u8, u16d)
	}
	// Table 5: spreading a 16-GPU job over 8 shared servers costs a lot.
	if u16d-u16s < 8 {
		t.Errorf("16-GPU on 2 servers (%.1f) should exceed 16-GPU on 8 shared servers (%.1f)", u16d, u16s)
	}
}

func TestUtilizationTable5Calibration(t *testing.T) {
	m := MustNewModel(DefaultUtilParams())
	// Paper Table 5 means for 16-GPU jobs: 2 servers 43.66, 4 servers
	// 40.94, 8 servers 28.56. The 4- and 8-server spreads are shared.
	cases := []struct {
		servers  int
		coloc    bool
		wantMean float64
		tol      float64
	}{
		{2, false, 43.66, 6},
		{4, true, 40.94, 6},
		{8, true, 28.56, 6},
	}
	for i, c := range cases {
		got := meanBase(t, m, JobShape{GPUs: 16, Servers: c.servers, Colocated: c.coloc}, failures.Passed, uint64(10+i))
		if math.Abs(got-c.wantMean) > c.tol {
			t.Errorf("16 GPU on %d servers: mean %.1f, paper %.1f (tol %.0f)", c.servers, got, c.wantMean, c.tol)
		}
	}
}

func TestStatusFactors(t *testing.T) {
	m := MustNewModel(DefaultUtilParams())
	shape := JobShape{GPUs: 1, Servers: 1}
	passed := meanBase(t, m, shape, failures.Passed, 4)
	killed := meanBase(t, m, shape, failures.Killed, 5)
	unsucc := meanBase(t, m, shape, failures.Unsuccessful, 6)
	// Table 3: killed < passed < unsuccessful for 1-GPU jobs.
	if !(killed < passed && passed < unsucc) {
		t.Errorf("status ordering wrong: killed %.1f, passed %.1f, unsuccessful %.1f", killed, passed, unsucc)
	}
}

func TestMinuteUtilBounded(t *testing.T) {
	m := MustNewModel(DefaultUtilParams())
	g := stats.NewRNG(7)
	for i := 0; i < 2000; i++ {
		v := m.MinuteUtil(50, g)
		if v < 0 || v > 100 {
			t.Fatalf("minute util out of range: %v", v)
		}
	}
}

func TestSlowdownSemantics(t *testing.T) {
	m := MustNewModel(DefaultUtilParams())
	// A well-placed dedicated job has unit slowdown.
	if s := m.Slowdown(JobShape{GPUs: 8, Servers: 1}); s != 1 {
		t.Errorf("ideal placement slowdown = %v, want 1", s)
	}
	// Worse placements slow the job down, monotonically.
	s2 := m.Slowdown(JobShape{GPUs: 16, Servers: 2})
	s8 := m.Slowdown(JobShape{GPUs: 16, Servers: 8})
	s8c := m.Slowdown(JobShape{GPUs: 16, Servers: 8, Colocated: true, CrossRack: true})
	if s2 != 1 {
		t.Errorf("16 GPU on its minimum 2 servers should have slowdown 1, got %v", s2)
	}
	if !(s8 > s2) || !(s8c > s8) {
		t.Errorf("slowdown not monotone: s2=%v s8=%v s8c=%v", s2, s8, s8c)
	}
	if s8c > 4 {
		t.Errorf("slowdown %v exceeds the saturation bound", s8c)
	}
	// A 1-GPU job colocated with others still runs slower than dedicated.
	if s := m.Slowdown(JobShape{GPUs: 1, Servers: 1, Colocated: true}); s <= 1 {
		t.Errorf("colocated 1-GPU slowdown = %v, want > 1", s)
	}
}

func TestHostModelShape(t *testing.T) {
	h := NewHostModel(DefaultHostParams())
	g := stats.NewRNG(9)
	var cpus, mems []float64
	for i := 0; i < 5000; i++ {
		c, m := h.Sample(6, 8, g)
		cpus = append(cpus, c)
		mems = append(mems, m)
	}
	cpuMed := stats.Percentile(cpus, 50)
	memMed := stats.Percentile(mems, 50)
	// Figure 7: CPU underutilized, memory highly utilized.
	if cpuMed > 40 {
		t.Errorf("CPU median %.1f too high; Figure 7 shows underutilized CPUs", cpuMed)
	}
	if memMed < 55 {
		t.Errorf("memory median %.1f too low; Figure 7 shows high memory use", memMed)
	}
	if memMed-cpuMed < 20 {
		t.Errorf("memory (%.1f) should clearly exceed CPU (%.1f)", memMed, cpuMed)
	}
}

func TestHostModelBounds(t *testing.T) {
	h := NewHostModel(DefaultHostParams())
	g := stats.NewRNG(10)
	for i := 0; i < 2000; i++ {
		c, m := h.Sample(8, 8, g)
		if c < 0 || c > 100 || m < 0 || m > 100 {
			t.Fatalf("host sample out of range: cpu=%v mem=%v", c, m)
		}
	}
}

func TestLog2Int(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 8: 3, 16: 4, 31: 4, 32: 5}
	for n, want := range cases {
		if got := log2int(n); got != want {
			t.Errorf("log2int(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: base utilization is always a valid percentage, for any shape.
func TestJobBaseUtilBoundsProperty(t *testing.T) {
	m := MustNewModel(DefaultUtilParams())
	f := func(seed uint64, gpusRaw, serversRaw uint8, coloc, cross bool, outcomeRaw uint8) bool {
		g := stats.NewRNG(seed)
		gpus := 1 + int(gpusRaw)%64
		servers := 1 + int(serversRaw)%16
		outcome := failures.Outcome(int(outcomeRaw) % 3)
		shape := JobShape{GPUs: gpus, Servers: servers, Colocated: coloc, CrossRack: cross}
		v := m.JobBaseUtil(shape, outcome, g)
		return v >= 0 && v <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
