// Package perfmodel models how placement quality turns into GPU utilization
// and training throughput. It has two parts:
//
//   - An analytical iteration-time model for the paper's controlled
//     ResNet-50 experiment (Table 4): per-iteration time decomposes into a
//     compute phase and synchronization phases over PCIe and the RDMA
//     network, with contention multipliers when colocated jobs share those
//     resources.
//
//   - A statistical utilization model for the aggregate workload (Figures
//     5-6, Tables 3 and 5): per-job base utilization as a function of job
//     size, server spread, colocation and final status, plus per-minute
//     sampling noise. Parameters are calibrated to the paper's published
//     means and percentiles; internal/core's integration tests assert the
//     calibration holds end-to-end.
package perfmodel

import (
	"fmt"
)

// PlacementConfig names the four configurations of the paper's controlled
// ResNet-50 experiment (§3.2.1, Table 4). The experiment trains ResNet-50
// with 2 GPUs (batch 32 per GPU) on servers with four P100s per socket.
type PlacementConfig int

const (
	// SameServer places both GPUs on one server (PCIe peer-to-peer sync,
	// no network).
	SameServer PlacementConfig = iota
	// DiffServer places one GPU on each of two servers connected by 100
	// Gbps InfiniBand.
	DiffServer
	// IntraServer is DiffServer plus a colocated single-server job on each
	// machine's same CPU socket, contending for PCIe.
	IntraServer
	// InterServer is DiffServer plus colocated distributed jobs sharing
	// the RDMA network (and PCIe staging paths).
	InterServer
)

// String names the configuration as printed in Table 4.
func (p PlacementConfig) String() string {
	switch p {
	case SameServer:
		return "SameServer"
	case DiffServer:
		return "DiffServer"
	case IntraServer:
		return "IntraServer"
	case InterServer:
		return "InterServer"
	default:
		return "unknown"
	}
}

// AllPlacementConfigs lists the Table 4 columns in order.
func AllPlacementConfigs() []PlacementConfig {
	return []PlacementConfig{SameServer, DiffServer, IntraServer, InterServer}
}

// ResNet50Params parameterize the analytical model. Defaults are calibrated
// so the model lands on Table 4's measurements; each constant is physically
// interpretable.
type ResNet50Params struct {
	// BatchPerGPU is the minibatch size per GPU (the paper uses 32 and
	// notes utilization at 64).
	BatchPerGPU int
	// PeakImagesPerSecPerGPU is the compute-bound throughput of one P100
	// running ResNet-50 with this framework generation.
	PeakImagesPerSecPerGPU float64
	// ModelBytes is the gradient volume exchanged per iteration per GPU
	// (ResNet-50 has ~25.6M float32 parameters ~= 102 MB).
	ModelBytes float64
	// PCIeEffectiveGBps is the achieved PCIe gradient-exchange bandwidth
	// (staging + peer copies, well below line rate).
	PCIeEffectiveGBps float64
	// RDMAEffectiveGBps is the achieved cross-server allreduce bandwidth on
	// the 100 Gbps InfiniBand fabric, including framework overhead.
	RDMAEffectiveGBps float64
	// PCIeContention multiplies PCIe transfer time when a colocated job
	// shares the PCIe root complex (IntraServer).
	PCIeContention float64
	// RDMAContention multiplies network transfer time when colocated
	// distributed jobs share the NIC (InterServer); those jobs also stage
	// over PCIe, captured by PCIeCrossContention.
	RDMAContention float64
	// PCIeCrossContention multiplies PCIe staging time in the InterServer
	// configuration.
	PCIeCrossContention float64
}

// DefaultResNet50Params returns the calibrated defaults.
func DefaultResNet50Params() ResNet50Params {
	return ResNet50Params{
		BatchPerGPU:            32,
		PeakImagesPerSecPerGPU: 99.5,
		ModelBytes:             102.2e6,
		PCIeEffectiveGBps:      0.43,
		RDMAEffectiveGBps:      1.15,
		PCIeContention:         1.88,
		RDMAContention:         2.95,
		PCIeCrossContention:    1.25,
	}
}

// Validate checks parameter sanity.
func (p ResNet50Params) Validate() error {
	if p.BatchPerGPU <= 0 {
		return fmt.Errorf("perfmodel: batch must be positive, got %d", p.BatchPerGPU)
	}
	if p.PeakImagesPerSecPerGPU <= 0 || p.ModelBytes <= 0 {
		return fmt.Errorf("perfmodel: peak rate and model size must be positive")
	}
	if p.PCIeEffectiveGBps <= 0 || p.RDMAEffectiveGBps <= 0 {
		return fmt.Errorf("perfmodel: bandwidths must be positive")
	}
	if p.PCIeContention < 1 || p.RDMAContention < 1 || p.PCIeCrossContention < 1 {
		return fmt.Errorf("perfmodel: contention multipliers must be >= 1")
	}
	return nil
}

// ResNet50Result is one Table 4 column: mean utilization of the GPUs in use
// (percent) and aggregate training throughput (images/second over both
// GPUs).
type ResNet50Result struct {
	Config       PlacementConfig
	GPUUtil      float64
	ImagesPerSec float64
	// Breakdown of one iteration, seconds.
	ComputeSec float64
	PCIeSec    float64
	NetworkSec float64
}

// ResNet50 evaluates the analytical model for one placement configuration.
func ResNet50(cfg PlacementConfig, p ResNet50Params) (ResNet50Result, error) {
	if err := p.Validate(); err != nil {
		return ResNet50Result{}, err
	}
	compute := float64(p.BatchPerGPU) / p.PeakImagesPerSecPerGPU

	// Gradient exchange for 2 GPUs: each iteration moves the full model
	// once over the relevant links (2-GPU ring/all-reduce volume factor
	// 2*(N-1)/N == 1 for N=2).
	pcieSec := p.ModelBytes / (p.PCIeEffectiveGBps * 1e9)
	netSec := 0.0
	switch cfg {
	case SameServer:
		// Pure intra-server exchange.
	case DiffServer:
		netSec = p.ModelBytes / (p.RDMAEffectiveGBps * 1e9)
	case IntraServer:
		// Colocated single-server jobs hammer the PCIe root complex.
		pcieSec *= p.PCIeContention
		netSec = p.ModelBytes / (p.RDMAEffectiveGBps * 1e9)
	case InterServer:
		// Colocated distributed jobs share the NIC and the staging path.
		pcieSec *= p.PCIeCrossContention
		netSec = p.ModelBytes / (p.RDMAEffectiveGBps * 1e9) * p.RDMAContention
	default:
		return ResNet50Result{}, fmt.Errorf("perfmodel: unknown placement config %d", cfg)
	}

	iter := compute + pcieSec + netSec
	util := compute / iter * 100
	imgs := 2 * float64(p.BatchPerGPU) / iter
	return ResNet50Result{
		Config:       cfg,
		GPUUtil:      util,
		ImagesPerSec: imgs,
		ComputeSec:   compute,
		PCIeSec:      pcieSec,
		NetworkSec:   netSec,
	}, nil
}

// ResNet50Table computes all four Table 4 configurations.
func ResNet50Table(p ResNet50Params) ([]ResNet50Result, error) {
	var out []ResNet50Result
	for _, cfg := range AllPlacementConfigs() {
		r, err := ResNet50(cfg, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// PaperTable4 returns the paper's measured values for comparison in
// EXPERIMENTS.md: utilization percent and images/s per configuration.
func PaperTable4() map[PlacementConfig][2]float64 {
	return map[PlacementConfig][2]float64{
		SameServer:  {57.7, 114.8},
		DiffServer:  {49.6, 98.0},
		IntraServer: {37.5, 75.6},
		InterServer: {36.5, 74.1},
	}
}
