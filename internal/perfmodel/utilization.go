package perfmodel

import (
	"fmt"
	"math"

	"philly/internal/failures"
	"philly/internal/stats"
)

// JobShape is the placement-derived context the utilization model needs
// about a running job.
type JobShape struct {
	// GPUs is the job's GPU count.
	GPUs int
	// Servers is how many machines the placement spans.
	Servers int
	// Colocated reports whether the job shares at least one server with
	// another job.
	Colocated bool
	// CrossRack reports whether the placement spans RDMA domains (sync
	// falls back to Ethernet).
	CrossRack bool
}

// UtilParams calibrate the statistical utilization model. Jobs are a
// mixture of "healthy" (compute-bound) and "stalled" (input- or code-bound)
// populations — this is what produces the paper's left-skewed distributions
// (8-GPU jobs: mean 56.9 but median 73.1, Figure 6). Placement quality
// scales both populations multiplicatively and shifts the mixture.
type UtilParams struct {
	// HealthyBase is the mean utilization (percent) of a compute-bound
	// job on an ideal placement.
	HealthyBase float64
	// StalledBase is the mean utilization of a stalled job.
	StalledBase float64
	// StalledProb is the probability a single-server job is stalled.
	StalledProb float64
	// StallBumpPerDoubling raises the stall probability for each doubling
	// of server spread (distributed sync amplifies every other bottleneck).
	StallBumpPerDoubling float64
	// MultiGPUFactor scales utilization per doubling of GPU count
	// (intra-server PCIe/NVLink sync).
	MultiGPUFactor float64
	// DistributedFactor scales utilization when the job crosses servers at
	// all (the model-aggregation step of distributed training).
	DistributedFactor float64
	// SpreadFactor scales utilization per doubling of server count beyond
	// the first crossing.
	SpreadFactor float64
	// CrossRackFactor scales utilization when sync leaves the RDMA domain.
	CrossRackFactor float64
	// ColocationFactor scales utilization when the job shares servers with
	// other jobs (PCIe/NIC interference, §3.2.1).
	ColocationFactor float64
	// KilledFactor and UnsuccessfulFactor shift per-job base utilization by
	// final status, encoding Table 3's status columns.
	KilledFactor       float64
	UnsuccessfulFactor float64
	// MinuteSigma is the per-minute sampling noise around the job's base.
	MinuteSigma float64
	// JobSigma is the per-job dispersion around the population base.
	JobSigma float64
}

// DefaultUtilParams returns parameters calibrated against Table 3 (mean
// utilization by size and status), Table 5 (16-GPU jobs by spread), and
// Figures 5-6.
func DefaultUtilParams() UtilParams {
	return UtilParams{
		HealthyBase:          78,
		StalledBase:          22,
		StalledProb:          0.33,
		StallBumpPerDoubling: 0.06,
		MultiGPUFactor:       0.97,
		DistributedFactor:    0.88,
		SpreadFactor:         0.95,
		CrossRackFactor:      0.96,
		ColocationFactor:     0.93,
		KilledFactor:         0.82,
		UnsuccessfulFactor:   1.16,
		MinuteSigma:          9,
		JobSigma:             13,
	}
}

// Validate checks the parameters.
func (u UtilParams) Validate() error {
	if u.HealthyBase <= 0 || u.HealthyBase > 100 {
		return fmt.Errorf("perfmodel: HealthyBase %v out of (0, 100]", u.HealthyBase)
	}
	if u.StalledBase < 0 || u.StalledBase >= u.HealthyBase {
		return fmt.Errorf("perfmodel: StalledBase %v must be in [0, HealthyBase)", u.StalledBase)
	}
	if u.StalledProb < 0 || u.StalledProb > 1 {
		return fmt.Errorf("perfmodel: StalledProb %v out of [0, 1]", u.StalledProb)
	}
	for name, f := range map[string]float64{
		"MultiGPUFactor":    u.MultiGPUFactor,
		"DistributedFactor": u.DistributedFactor,
		"SpreadFactor":      u.SpreadFactor,
		"CrossRackFactor":   u.CrossRackFactor,
		"ColocationFactor":  u.ColocationFactor,
	} {
		if f <= 0 || f > 1 {
			return fmt.Errorf("perfmodel: %s %v out of (0, 1]", name, f)
		}
	}
	if u.KilledFactor <= 0 || u.UnsuccessfulFactor <= 0 {
		return fmt.Errorf("perfmodel: status factors must be positive")
	}
	return nil
}

// Model samples per-job and per-minute GPU utilization.
type Model struct {
	p UtilParams
}

// NewModel builds a utilization model.
func NewModel(p UtilParams) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// MustNewModel is NewModel but panics on error.
func MustNewModel(p UtilParams) *Model {
	m, err := NewModel(p)
	if err != nil {
		panic(err)
	}
	return m
}

// placementFactor is the multiplicative efficiency of a shape relative to a
// 1-GPU ideal placement.
func (m *Model) placementFactor(shape JobShape) float64 {
	p := m.p
	f := 1.0
	if shape.GPUs > 1 {
		f *= math.Pow(p.MultiGPUFactor, float64(log2int(shape.GPUs)))
	}
	if shape.Servers > 1 {
		f *= p.DistributedFactor
		f *= math.Pow(p.SpreadFactor, float64(log2int(shape.Servers)-1))
	}
	if shape.CrossRack {
		f *= p.CrossRackFactor
	}
	if shape.Colocated {
		f *= p.ColocationFactor
	}
	return f
}

// stallProb is the stall probability for a shape.
func (m *Model) stallProb(shape JobShape) float64 {
	p := m.p.StalledProb
	if shape.Servers > 1 {
		p += m.p.StallBumpPerDoubling * float64(log2int(shape.Servers))
	}
	return math.Min(0.95, p)
}

// JobBaseUtil draws the job-level mean utilization (percent) for a job with
// the given shape and final outcome. Per-minute samples jitter around this
// base via MinuteUtil.
func (m *Model) JobBaseUtil(shape JobShape, outcome failures.Outcome, g *stats.RNG) float64 {
	p := m.p
	base := p.HealthyBase
	if g.Bool(m.stallProb(shape)) {
		base = p.StalledBase
	}
	base *= m.placementFactor(shape)
	switch outcome {
	case failures.Killed:
		base *= p.KilledFactor
	case failures.Unsuccessful:
		base *= p.UnsuccessfulFactor
	}
	base += p.JobSigma * g.NormFloat64()
	return clampPct(base)
}

// MinuteUtil draws one per-minute utilization sample (percent) around the
// job's base utilization.
func (m *Model) MinuteUtil(base float64, g *stats.RNG) float64 {
	return clampPct(base + m.p.MinuteSigma*g.NormFloat64())
}

// Slowdown converts a job's base utilization into a throughput slowdown
// factor >= 1 relative to a fully local, interference-free run of the same
// job. Utilization is (to first order) inversely proportional to iteration
// time under a fixed compute demand, so slowdown = idealFactor/actualFactor
// for the placement alone; the job's intrinsic health does not slow it down
// relative to its own ideal-placement run.
func (m *Model) Slowdown(shape JobShape) float64 {
	ideal := shape
	ideal.Colocated = false
	ideal.CrossRack = false
	ideal.Servers = minServersFor(shape.GPUs)
	s := m.placementFactor(ideal) / m.placementFactor(shape)
	if s < 1 {
		s = 1
	}
	if s > 4 {
		s = 4
	}
	return s
}

// minServersFor assumes the common 8-GPU SKU for the ideal spread.
func minServersFor(gpus int) int {
	if gpus <= 8 {
		return 1
	}
	return (gpus + 7) / 8
}

// HostParams calibrate the host-resource model (Figure 7): CPUs are mostly
// underutilized while memory runs high (input caching, aggregation buffers).
type HostParams struct {
	// CPUIdleBase is the CPU utilization of a server with no training job.
	CPUIdleBase float64
	// CPUPerGPU is the CPU utilization contributed per allocated GPU.
	CPUPerGPU float64
	// CPUSigma is sampling noise.
	CPUSigma float64
	// MemIdleBase is memory utilization of an idle server.
	MemIdleBase float64
	// MemPerGPU is memory utilization contributed per allocated GPU.
	MemPerGPU float64
	// MemSigma is sampling noise.
	MemSigma float64
}

// DefaultHostParams returns Figure 7-calibrated defaults for 8-GPU servers.
func DefaultHostParams() HostParams {
	return HostParams{
		CPUIdleBase: 3,
		CPUPerGPU:   3.4,
		CPUSigma:    7,
		MemIdleBase: 28,
		MemPerGPU:   7.5,
		MemSigma:    10,
	}
}

// HostModel samples per-server host-resource utilization.
type HostModel struct {
	p HostParams
}

// NewHostModel builds a host model.
func NewHostModel(p HostParams) *HostModel { return &HostModel{p: p} }

// Sample returns (cpuUtil, memUtil) percentages for a server with the given
// number of allocated GPUs out of total.
func (h *HostModel) Sample(allocatedGPUs, totalGPUs int, g *stats.RNG) (cpu, mem float64) {
	p := h.p
	cpu = p.CPUIdleBase + p.CPUPerGPU*float64(allocatedGPUs) + p.CPUSigma*g.NormFloat64()
	mem = p.MemIdleBase + p.MemPerGPU*float64(allocatedGPUs) + p.MemSigma*g.NormFloat64()
	return clampPct(cpu), clampPct(mem)
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// log2int returns floor(log2(n)) for n >= 1.
func log2int(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
