package cluster

import (
	"reflect"
	"testing"

	"philly/internal/par"
	"philly/internal/stats"
)

// TestParallelPlacementMatchesSequential drives a 16-rack cluster through a
// deterministic churn of allocations and releases, asking for a placement
// both with and without a pool before every allocation. The parallel rack
// scoring must return the identical placement (same servers, same GPUs,
// same order) at every step, across all locality levels — it is the same
// search, only scored concurrently.
func TestParallelPlacementMatchesSequential(t *testing.T) {
	mk := func() *Cluster {
		var racks []RackConfig
		for i := 0; i < 16; i++ {
			racks = append(racks, RackConfig{Servers: 4, SKU: SKU8GPU})
		}
		c, err := New(Config{Racks: racks})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	seq, par1 := mk(), mk()
	pool := par.NewPool(4)
	defer pool.Close()
	par1.SetPool(pool)
	if !par1.parallelScoring(par1.inline.racksByFreeDesc()) {
		t.Fatal("pooled 16-rack cluster did not take the parallel scoring path")
	}

	rng := stats.NewRNG(7)
	live := []JobID{}
	sizes := []int{1, 2, 4, 8, 12, 16, 24, 32, 48}
	for step := 0; step < 400; step++ {
		if len(live) > 0 && rng.Bool(0.4) {
			// Release a random held job from both clusters.
			i := rng.IntN(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := seq.Release(id); err != nil {
				t.Fatal(err)
			}
			if err := par1.Release(id); err != nil {
				t.Fatal(err)
			}
			continue
		}
		n := sizes[rng.IntN(len(sizes))]
		level := Locality(rng.IntN(3))
		ps, oks := seq.FindPlacement(n, level)
		pp, okp := par1.FindPlacement(n, level)
		if oks != okp || !reflect.DeepEqual(ps, pp) {
			t.Fatalf("step %d: n=%d level=%v diverged:\nseq: ok=%v %+v\npar: ok=%v %+v",
				step, n, level, oks, ps, okp, pp)
		}
		if !oks {
			continue
		}
		id := JobID(step + 1)
		if err := seq.Allocate(id, ps); err != nil {
			t.Fatal(err)
		}
		if err := par1.Allocate(id, pp); err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
}
