// Package cluster models the physical GPU cluster that Philly runs on:
// racks (which are RDMA domains), servers belonging to a hardware SKU, and
// individual GPUs with exclusive job assignment. The model captures exactly
// the state the paper's scheduler consults — per-GPU allocation, per-server
// and per-rack occupancy, and the network hierarchy (intra-server PCIe /
// NVLink, intra-rack 100 Gbps InfiniBand, cross-rack Ethernet).
//
// Event-sharding classification: the physical cluster is shared by every
// virtual cluster — placements from different VCs land on the same racks
// and compete for the same free GPUs — so ALL mutations here (Allocate,
// Release) and all occupancy-dependent queries (FindPlacement, Occupancy,
// the free-count bucket indexes) are global state in the sense of
// internal/simulation.Sharded: they may only run in global events at
// window barriers, never on a VC's event shard. This is the "minimum
// cross-VC interaction" that bounds the conservative lookahead — two VCs
// interact exactly when the scheduler consults or mutates this package.
package cluster

import (
	"fmt"
	"sort"

	"philly/internal/par"
)

// SKU describes a server hardware class. The paper's cluster has two SKUs:
// 2-GPU servers and 8-GPU servers; RDMA domains are homogeneous in SKU.
type SKU struct {
	// Name identifies the SKU in traces and logs.
	Name string
	// GPUsPerServer is the GPU count per machine (2 or 8 in the paper).
	GPUsPerServer int
	// CPUCoresPerServer and MemoryGBPerServer size the host resources that
	// are allocated proportionally to requested GPUs (paper §2.3).
	CPUCoresPerServer int
	MemoryGBPerServer int
}

// Standard SKUs matching the paper's description (§2.4).
var (
	SKU8GPU = SKU{Name: "sku-8gpu", GPUsPerServer: 8, CPUCoresPerServer: 48, MemoryGBPerServer: 512}
	SKU2GPU = SKU{Name: "sku-2gpu", GPUsPerServer: 2, CPUCoresPerServer: 24, MemoryGBPerServer: 224}
)

// JobID identifies a job. Zero means "no job".
type JobID int64

// GPU is a single device. GPUs are monolithic: at most one job owns a GPU
// at a time (the paper's clusters never share a GPU between jobs).
type GPU struct {
	// Index is the device ordinal within its server.
	Index int
	// Owner is the job currently allocated this GPU, or 0 if free.
	Owner JobID
}

// Server is one machine.
type Server struct {
	// ID is unique across the cluster.
	ID int
	// Rack is the index of the rack (RDMA domain) containing the server.
	Rack int
	// SKU is the hardware class.
	SKU SKU
	// GPUs are the devices on this server.
	GPUs []GPU

	free int // cached count of free GPUs
	// local is the server's index within its rack (ascending ID order),
	// which is also its bit position in the rack's free-count buckets.
	local int
	// bucketFree is the free count the cluster's bucket indexes currently
	// reflect for this server; it trails free within Allocate/Release and is
	// re-synced before they return.
	bucketFree int
	// jobs tracks how many GPUs each job holds on this server, to detect
	// colocation and compute per-job spread. At most a handful of jobs share
	// a server, so a small slice beats a map: no hashing on the allocation
	// path and deterministic iteration for free.
	jobs []jobShare
}

// jobShare is one job's GPU count on a server.
type jobShare struct {
	id   JobID
	gpus int
}

// FreeGPUs returns the number of unallocated GPUs on the server.
func (s *Server) FreeGPUs() int { return s.free }

// UsedGPUs returns the number of allocated GPUs on the server.
func (s *Server) UsedGPUs() int { return len(s.GPUs) - s.free }

// Jobs returns the IDs of jobs holding at least one GPU on this server, in
// ascending order (deterministic iteration for the simulator).
func (s *Server) Jobs() []JobID {
	ids := make([]JobID, 0, len(s.jobs))
	for _, js := range s.jobs {
		ids = append(ids, js.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// JobGPUs returns how many GPUs the given job holds on this server.
func (s *Server) JobGPUs(id JobID) int {
	for _, js := range s.jobs {
		if js.id == id {
			return js.gpus
		}
	}
	return 0
}

// addJobGPU charges one GPU on this server to the job.
func (s *Server) addJobGPU(id JobID) {
	for i := range s.jobs {
		if s.jobs[i].id == id {
			s.jobs[i].gpus++
			return
		}
	}
	s.jobs = append(s.jobs, jobShare{id: id, gpus: 1})
}

// removeJobGPU releases one GPU held by the job.
func (s *Server) removeJobGPU(id JobID) {
	for i := range s.jobs {
		if s.jobs[i].id == id {
			s.jobs[i].gpus--
			if s.jobs[i].gpus == 0 {
				s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			}
			return
		}
	}
}

// Colocated reports whether more than one distinct job holds GPUs here.
func (s *Server) Colocated() bool { return len(s.jobs) > 1 }

// Rack is an RDMA domain: a set of servers connected by 100 Gbps InfiniBand.
// Cross-rack traffic goes over Ethernet (paper §2.2).
type Rack struct {
	// ID is the rack index.
	ID int
	// Servers in this rack. Homogeneous SKU.
	Servers []*Server
	// SKU is the hardware class of every server in the rack.
	SKU SKU

	// free is the rack's total free GPUs, maintained incrementally.
	free int
	// buckets[f] is a bitmap (over local server index) of servers with
	// exactly f free GPUs, f in [0, SKU.GPUsPerServer]. It yields "servers
	// by free descending, ties by ID" as a bucket walk with no sorting.
	buckets [][]uint64
	// epoch is a monotonic counter bumped whenever any server in the rack
	// changes its free-GPU count. Equal epochs imply byte-identical rack
	// free state (the counter only ever increments), which is what makes
	// the negative-result search cache exact (see epoch.go).
	epoch uint64
}

// Epoch returns the rack's free-state epoch.
func (r *Rack) Epoch() uint64 { return r.epoch }

// FreeGPUs returns the total free GPUs in the rack.
func (r *Rack) FreeGPUs() int { return r.free }

// TotalGPUs returns the rack's GPU capacity.
func (r *Rack) TotalGPUs() int { return len(r.Servers) * r.SKU.GPUsPerServer }

// Config describes a cluster to build.
type Config struct {
	// Racks lists rack specs in order. Rack IDs are assigned sequentially.
	Racks []RackConfig
}

// RackConfig describes one rack.
type RackConfig struct {
	// Servers is the number of machines in the rack.
	Servers int
	// SKU is the hardware class for every server in the rack.
	SKU SKU
}

// DefaultConfig returns a topology resembling the paper's deployment scale:
// mostly 8-GPU servers with some 2-GPU racks, "hundreds of machines
// accounting for thousands of GPUs".
func DefaultConfig() Config {
	racks := make([]RackConfig, 0, 14)
	// 12 racks of 16 x 8-GPU servers = 1536 GPUs.
	for i := 0; i < 12; i++ {
		racks = append(racks, RackConfig{Servers: 16, SKU: SKU8GPU})
	}
	// 2 racks of 24 x 2-GPU servers = 96 GPUs.
	for i := 0; i < 2; i++ {
		racks = append(racks, RackConfig{Servers: 24, SKU: SKU2GPU})
	}
	return Config{Racks: racks}
}

// Cluster is the full machine inventory plus allocation state.
type Cluster struct {
	Racks   []*Rack
	servers []*Server // flat index by server ID

	totalGPUs int
	freeGPUs  int

	// maxPerServer is the largest per-server GPU count, bounding the
	// free-count bucket range.
	maxPerServer int
	// freeBuckets[f] is a bitmap over global server IDs of servers with
	// exactly f free GPUs; best-fit queries are first-set-bit scans.
	freeBuckets [][]uint64
	// emptyServers counts servers with zero allocated GPUs, maintained on
	// alloc/free so fragmentation sampling is O(1) instead of a full walk.
	emptyServers int
	// srvUsed[id] is the allocated-GPU count per server and srvCap[id] the
	// capacity — flat arrays for the per-tick telemetry walk.
	srvUsed []int32
	srvCap  []int32

	// inline is the cluster's own search scratch (pick buffer + rack-order
	// buffer). Read-only speculative searches use private Searcher contexts
	// instead so they can run concurrently (see placement.go).
	inline searchCtx

	// pool, when set, fans multi-rack placement scoring out as fork-join
	// tasks (see placement.go); feasScratch is the per-rack verdict buffer.
	pool        *par.Pool
	feasScratch []rackFeasibility

	// epoch is the cluster-wide free-state epoch; cacheOn, failCache and
	// the search counters implement the rack-epoch negative-result cache
	// (see epoch.go).
	epoch         uint64
	cacheOn       bool
	failCache     map[failKey]*failMemo
	searches      int
	shortCircuits int

	// placements tracks the live placement of each job for release and for
	// locality/interference queries.
	placements map[JobID]Placement
}

// New builds a cluster from cfg. It returns an error for empty or invalid
// configurations.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Racks) == 0 {
		return nil, fmt.Errorf("cluster: no racks configured")
	}
	c := &Cluster{placements: make(map[JobID]Placement), cacheOn: true}
	c.inline.c = c
	c.inline.inline = true
	serverID := 0
	for rackID, rc := range cfg.Racks {
		if rc.Servers <= 0 {
			return nil, fmt.Errorf("cluster: rack %d has %d servers", rackID, rc.Servers)
		}
		if rc.SKU.GPUsPerServer <= 0 {
			return nil, fmt.Errorf("cluster: rack %d SKU %q has %d GPUs per server", rackID, rc.SKU.Name, rc.SKU.GPUsPerServer)
		}
		rack := &Rack{ID: rackID, SKU: rc.SKU}
		for i := 0; i < rc.Servers; i++ {
			srv := &Server{
				ID:         serverID,
				Rack:       rackID,
				SKU:        rc.SKU,
				GPUs:       make([]GPU, rc.SKU.GPUsPerServer),
				free:       rc.SKU.GPUsPerServer,
				bucketFree: rc.SKU.GPUsPerServer,
				local:      i,
			}
			for g := range srv.GPUs {
				srv.GPUs[g].Index = g
			}
			rack.Servers = append(rack.Servers, srv)
			c.servers = append(c.servers, srv)
			c.totalGPUs += rc.SKU.GPUsPerServer
			serverID++
		}
		c.Racks = append(c.Racks, rack)
	}
	c.freeGPUs = c.totalGPUs
	c.buildIndexes()
	return c, nil
}

// buildIndexes initializes the incremental free-count bucket bitmaps and
// telemetry arrays from a freshly built (fully free) inventory.
func (c *Cluster) buildIndexes() {
	for _, r := range c.Racks {
		if r.SKU.GPUsPerServer > c.maxPerServer {
			c.maxPerServer = r.SKU.GPUsPerServer
		}
	}
	words := (len(c.servers) + 63) / 64
	c.freeBuckets = make([][]uint64, c.maxPerServer+1)
	for f := range c.freeBuckets {
		c.freeBuckets[f] = make([]uint64, words)
	}
	c.srvUsed = make([]int32, len(c.servers))
	c.srvCap = make([]int32, len(c.servers))
	for _, r := range c.Racks {
		rackWords := (len(r.Servers) + 63) / 64
		r.buckets = make([][]uint64, r.SKU.GPUsPerServer+1)
		for f := range r.buckets {
			r.buckets[f] = make([]uint64, rackWords)
		}
		r.free = len(r.Servers) * r.SKU.GPUsPerServer
		for _, s := range r.Servers {
			setBit(r.buckets[s.free], s.local)
			setBit(c.freeBuckets[s.free], s.ID)
			c.srvCap[s.ID] = int32(len(s.GPUs))
		}
	}
	c.emptyServers = len(c.servers)
}

// syncServerIndexes moves a server whose free count changed into its new
// bucket and updates the rack/cluster aggregates. Callers batch it once per
// touched server after applying all of a placement's slots.
func (c *Cluster) syncServerIndexes(s *Server) {
	old, nw := s.bucketFree, s.free
	if old == nw {
		return
	}
	r := c.Racks[s.Rack]
	clearBit(r.buckets[old], s.local)
	setBit(r.buckets[nw], s.local)
	clearBit(c.freeBuckets[old], s.ID)
	setBit(c.freeBuckets[nw], s.ID)
	r.free += nw - old
	c.srvUsed[s.ID] = int32(len(s.GPUs) - nw)
	if cap := len(s.GPUs); old == cap {
		c.emptyServers--
	} else if nw == cap {
		c.emptyServers++
	}
	s.bucketFree = nw
	// Every observable free-state change funnels through here, so bumping
	// the epochs at this single choke-point is what lets equal epochs stand
	// in for "byte-identical free state" (see epoch.go).
	r.epoch++
	c.epoch++
}

func setBit(words []uint64, i int)   { words[i/64] |= 1 << (uint(i) % 64) }
func clearBit(words []uint64, i int) { words[i/64] &^= 1 << (uint(i) % 64) }

// MustNew is New but panics on error, for statically known configs.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// TotalGPUs returns the cluster's GPU capacity.
func (c *Cluster) TotalGPUs() int { return c.totalGPUs }

// FreeGPUs returns the number of unallocated GPUs cluster-wide.
func (c *Cluster) FreeGPUs() int { return c.freeGPUs }

// UsedGPUs returns the number of allocated GPUs cluster-wide.
func (c *Cluster) UsedGPUs() int { return c.totalGPUs - c.freeGPUs }

// Occupancy returns the fraction of GPUs allocated, in [0, 1].
func (c *Cluster) Occupancy() float64 {
	if c.totalGPUs == 0 {
		return 0
	}
	return float64(c.UsedGPUs()) / float64(c.totalGPUs)
}

// Servers returns the flat server list indexed by server ID.
func (c *Cluster) Servers() []*Server { return c.servers }

// Server returns the server with the given ID, or nil.
func (c *Cluster) Server(id int) *Server {
	if id < 0 || id >= len(c.servers) {
		return nil
	}
	return c.servers[id]
}

// NumServers returns the machine count.
func (c *Cluster) NumServers() int { return len(c.servers) }

// EmptyServers returns the count of servers with zero allocated GPUs. The
// paper uses this to quantify fragmentation ("when two thirds of GPUs are
// in use, under 4.5% of servers are completely empty"). The count is
// maintained incrementally on alloc/free, so sampling it per telemetry tick
// costs O(1) instead of a full server walk.
func (c *Cluster) EmptyServers() int { return c.emptyServers }

// UsedBySrv returns per-server allocated-GPU counts indexed by server ID.
// The slice is a live, incrementally maintained view — callers must treat it
// as read-only and not retain it across allocations.
func (c *Cluster) UsedBySrv() []int32 { return c.srvUsed }

// CapBySrv returns per-server GPU capacities indexed by server ID, read-only.
func (c *Cluster) CapBySrv() []int32 { return c.srvCap }

// Placement records which GPU slots a job occupies.
type Placement struct {
	// Slots lists the allocated (server, GPU index) pairs.
	Slots []Slot
}

// Slot is one allocated GPU.
type Slot struct {
	Server int
	GPU    int
}

// NumGPUs returns the number of allocated GPUs.
func (p Placement) NumGPUs() int { return len(p.Slots) }

// ServerIDs returns the distinct servers used, ascending. Placements span a
// handful of servers, so dedup is a linear scan rather than a map.
func (p Placement) ServerIDs() []int {
	ids := make([]int, 0, 8)
	for _, s := range p.Slots {
		ids = appendDistinct(ids, s.Server)
	}
	sort.Ints(ids)
	return ids
}

// NumServers returns the number of distinct servers used. Unlike ServerIDs
// it does not allocate: it counts distinct IDs through a small stack buffer
// (placement construction groups slots by server, so the distinct count is
// small even for wide gangs).
func (p Placement) NumServers() int {
	var buf [16]int
	seen := buf[:0]
	for _, s := range p.Slots {
		seen = appendDistinct(seen, s.Server)
	}
	return len(seen)
}

// appendDistinct appends v unless already present.
func appendDistinct(ids []int, v int) []int {
	for _, id := range ids {
		if id == v {
			return ids
		}
	}
	return append(ids, v)
}

// RackIDs returns the distinct racks used, ascending, resolved against c.
func (p Placement) RackIDs(c *Cluster) []int {
	ids := make([]int, 0, 4)
	for _, s := range p.Slots {
		ids = appendDistinct(ids, c.Server(s.Server).Rack)
	}
	sort.Ints(ids)
	return ids
}

// CrossRack reports whether the placement spans more than one RDMA domain.
func (p Placement) CrossRack(c *Cluster) bool {
	if len(p.Slots) == 0 {
		return false
	}
	first := c.Server(p.Slots[0].Server).Rack
	for _, s := range p.Slots[1:] {
		if c.Server(s.Server).Rack != first {
			return true
		}
	}
	return false
}

// Allocate assigns the placement's GPU slots to job. Every slot must be
// free; on error nothing is allocated. Allocating for a job that already
// holds GPUs is an error (jobs are gang-scheduled in one shot).
func (c *Cluster) Allocate(job JobID, p Placement) error {
	if job == 0 {
		return fmt.Errorf("cluster: job ID 0 is reserved for 'no job'")
	}
	if len(p.Slots) == 0 {
		return fmt.Errorf("cluster: empty placement for job %d", job)
	}
	if _, exists := c.placements[job]; exists {
		return fmt.Errorf("cluster: job %d already has an allocation", job)
	}
	// Validate first so failure leaves no partial state. Duplicate detection
	// is a quadratic scan for the gang widths the simulator produces (it
	// beats a map allocation well past any realistic width) with a map
	// fallback for pathological placements.
	for i, sl := range p.Slots {
		srv := c.Server(sl.Server)
		if srv == nil {
			return fmt.Errorf("cluster: placement references unknown server %d", sl.Server)
		}
		if sl.GPU < 0 || sl.GPU >= len(srv.GPUs) {
			return fmt.Errorf("cluster: placement references GPU %d on server %d (has %d)", sl.GPU, sl.Server, len(srv.GPUs))
		}
		if srv.GPUs[sl.GPU].Owner != 0 {
			return fmt.Errorf("cluster: GPU %d on server %d already owned by job %d", sl.GPU, sl.Server, srv.GPUs[sl.GPU].Owner)
		}
		if len(p.Slots) <= 128 {
			for _, prev := range p.Slots[:i] {
				if prev == sl {
					return fmt.Errorf("cluster: duplicate slot %+v in placement", sl)
				}
			}
		}
	}
	if len(p.Slots) > 128 {
		seen := make(map[Slot]bool, len(p.Slots))
		for _, sl := range p.Slots {
			if seen[sl] {
				return fmt.Errorf("cluster: duplicate slot %+v in placement", sl)
			}
			seen[sl] = true
		}
	}
	for _, sl := range p.Slots {
		srv := c.servers[sl.Server]
		srv.GPUs[sl.GPU].Owner = job
		srv.free--
		srv.addJobGPU(job)
	}
	for _, sl := range p.Slots {
		c.syncServerIndexes(c.servers[sl.Server])
	}
	c.freeGPUs -= len(p.Slots)
	// Store a defensive copy.
	cp := Placement{Slots: append([]Slot(nil), p.Slots...)}
	c.placements[job] = cp
	return nil
}

// Release frees all GPUs held by job. Releasing a job with no allocation is
// an error (double release indicates a scheduler bug).
func (c *Cluster) Release(job JobID) error {
	p, ok := c.placements[job]
	if !ok {
		return fmt.Errorf("cluster: job %d has no allocation to release", job)
	}
	for _, sl := range p.Slots {
		srv := c.servers[sl.Server]
		srv.GPUs[sl.GPU].Owner = 0
		srv.free++
		srv.removeJobGPU(job)
	}
	for _, sl := range p.Slots {
		c.syncServerIndexes(c.servers[sl.Server])
	}
	c.freeGPUs += len(p.Slots)
	delete(c.placements, job)
	return nil
}

// PlacementOf returns the live placement for job and whether one exists.
func (c *Cluster) PlacementOf(job JobID) (Placement, bool) {
	p, ok := c.placements[job]
	return p, ok
}

// RunningJobs returns IDs of all jobs holding GPUs, ascending.
func (c *Cluster) RunningJobs() []JobID {
	ids := make([]JobID, 0, len(c.placements))
	for id := range c.placements {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SharesServers reports whether job shares at least one server with another
// job — the paper's colocation condition for interference.
func (c *Cluster) SharesServers(job JobID) bool {
	p, ok := c.placements[job]
	if !ok {
		return false
	}
	for _, sl := range p.Slots {
		if len(c.servers[sl.Server].jobs) > 1 {
			return true
		}
	}
	return false
}

// CoresPerGPU returns the CPU cores allocated per requested GPU on the
// given server's SKU (host resources are proportional, paper §2.3).
func CoresPerGPU(s SKU) float64 {
	return float64(s.CPUCoresPerServer) / float64(s.GPUsPerServer)
}

// MemoryPerGPU returns host memory GB per requested GPU for the SKU.
func MemoryPerGPU(s SKU) float64 {
	return float64(s.MemoryGBPerServer) / float64(s.GPUsPerServer)
}
