package cluster

import (
	"reflect"
	"sort"
	"testing"

	"philly/internal/stats"
)

// referenceFindPlacement is a naive sort-and-scan oracle for the placement
// search: it re-sorts the full inventory on every call and follows the
// paper's search order literally — best-fit single server first, then racks
// by free GPUs descending (ties by ID) with servers inside each rack in the
// same order. It shares no code with the bucket-walk implementation.
func referenceFindPlacement(c *Cluster, n int, level Locality) (Placement, bool) {
	if n <= 0 || n > c.FreeGPUs() {
		return Placement{}, false
	}
	// Best fit: the server with the fewest free GPUs still >= n.
	var best *Server
	for _, srv := range c.Servers() {
		if srv.FreeGPUs() < n {
			continue
		}
		if best == nil || srv.FreeGPUs() < best.FreeGPUs() ||
			(srv.FreeGPUs() == best.FreeGPUs() && srv.ID < best.ID) {
			best = srv
		}
	}
	if best != nil {
		return refMaterialize([]refPick{{best, n}}), true
	}
	racks := append([]*Rack(nil), c.Racks...)
	sort.SliceStable(racks, func(i, k int) bool {
		if racks[i].FreeGPUs() != racks[k].FreeGPUs() {
			return racks[i].FreeGPUs() > racks[k].FreeGPUs()
		}
		return racks[i].ID < racks[k].ID
	})
	gather := func(r *Rack, need int, picks []refPick) (int, int, []refPick) {
		servers := append([]*Server(nil), r.Servers...)
		sort.SliceStable(servers, func(i, k int) bool {
			if servers[i].FreeGPUs() != servers[k].FreeGPUs() {
				return servers[i].FreeGPUs() > servers[k].FreeGPUs()
			}
			return servers[i].ID < servers[k].ID
		})
		used := 0
		for _, srv := range servers {
			if need == 0 {
				break
			}
			take := srv.FreeGPUs()
			if take == 0 {
				continue
			}
			if take > need {
				take = need
			}
			picks = append(picks, refPick{srv, take})
			used++
			need -= take
		}
		return need, used, picks
	}
	switch level {
	case LocalityPacked:
		for _, r := range racks {
			if r.FreeGPUs() < n {
				continue
			}
			per := r.SKU.GPUsPerServer
			rem, used, picks := gather(r, n, nil)
			if rem == 0 && used <= (n+per-1)/per {
				return refMaterialize(picks), true
			}
		}
	case LocalityRack:
		for _, r := range racks {
			if r.FreeGPUs() < n {
				continue
			}
			if rem, _, picks := gather(r, n, nil); rem == 0 {
				return refMaterialize(picks), true
			}
		}
	case LocalityRelaxed:
		var picks []refPick
		need := n
		for _, r := range racks {
			need, _, picks = gather(r, need, picks)
			if need == 0 {
				return refMaterialize(picks), true
			}
		}
	}
	return Placement{}, false
}

type refPick struct {
	srv  *Server
	take int
}

func refMaterialize(picks []refPick) Placement {
	var p Placement
	for _, pk := range picks {
		taken := 0
		for g := range pk.srv.GPUs {
			if taken == pk.take {
				break
			}
			if pk.srv.GPUs[g].Owner == 0 {
				p.Slots = append(p.Slots, Slot{Server: pk.srv.ID, GPU: g})
				taken++
			}
		}
	}
	return p
}

// TestPlacementOracleChurn property-tests the bucket-walk search, the
// epoch-cached search, and the speculative Searcher path against the naive
// oracle under 1k steps of randomized allocate/release churn, across all
// three locality levels. Three clusters advance in lockstep: one with the
// negative-result cache enabled (also probed through a Searcher context),
// one with it disabled, and the oracle reading the cached cluster's state.
func TestPlacementOracleChurn(t *testing.T) {
	mk := func() *Cluster {
		return MustNew(Config{Racks: []RackConfig{
			{Servers: 6, SKU: SKU8GPU},
			{Servers: 4, SKU: SKU8GPU},
			{Servers: 8, SKU: SKU2GPU},
			{Servers: 3, SKU: SKU8GPU},
			{Servers: 5, SKU: SKU2GPU},
		}})
	}
	cached, plain := mk(), mk()
	plain.SetSearchCache(false)
	searcher := cached.NewSearcher()

	rng := stats.NewRNG(99)
	var live []JobID
	nextID := JobID(1)
	sizes := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 40, 64}
	for step := 0; step < 1000; step++ {
		if len(live) > 0 && rng.Bool(0.35) {
			i := rng.IntN(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := cached.Release(id); err != nil {
				t.Fatal(err)
			}
			if err := plain.Release(id); err != nil {
				t.Fatal(err)
			}
			continue
		}
		n := sizes[rng.IntN(len(sizes))]
		level := Locality(rng.IntN(3))
		want, wantOK := referenceFindPlacement(cached, n, level)
		for name, got := range map[string]func() (Placement, bool){
			"cached":   func() (Placement, bool) { return cached.FindPlacement(n, level) },
			"searcher": func() (Placement, bool) { return searcher.FindPlacement(n, level) },
			"plain":    func() (Placement, bool) { return plain.FindPlacement(n, level) },
		} {
			p, ok := got()
			if ok != wantOK || !reflect.DeepEqual(p, want) {
				t.Fatalf("step %d: n=%d level=%v: %s diverged from oracle:\nwant ok=%v %+v\ngot  ok=%v %+v",
					step, n, level, name, wantOK, want, ok, p)
			}
		}
		if wantOK {
			if err := cached.Allocate(nextID, want); err != nil {
				t.Fatal(err)
			}
			if err := plain.Allocate(nextID, want); err != nil {
				t.Fatal(err)
			}
			live = append(live, nextID)
			nextID++
		}
	}
	if _, hits := cached.SearchStats(); hits == 0 {
		t.Fatal("churn never exercised the negative-result cache")
	}
	if _, hits := plain.SearchStats(); hits != 0 {
		t.Fatal("disabled cache still short-circuited searches")
	}
}
