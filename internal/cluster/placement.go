package cluster

import (
	"math/bits"

	"philly/internal/par"
)

// Locality is the constraint level a placement search must satisfy. The
// Philly scheduler starts at the strictest level and relaxes after repeated
// scheduling failures (paper §2.3: "to avoid starvation, the locality
// constraints are relaxed after a scheduling request has been retried a
// fixed number of times").
type Locality int

const (
	// LocalityPacked requires the minimum possible number of servers, all
	// within a single RDMA domain: one server when the job fits, otherwise
	// ceil(n / GPUsPerServer) whole servers in one rack.
	LocalityPacked Locality = iota
	// LocalityRack requires all GPUs within a single RDMA domain but allows
	// any number of servers.
	LocalityRack
	// LocalityRelaxed allows any free GPUs anywhere in the cluster.
	LocalityRelaxed
)

// String names the constraint level.
func (l Locality) String() string {
	switch l {
	case LocalityPacked:
		return "packed"
	case LocalityRack:
		return "rack"
	case LocalityRelaxed:
		return "relaxed"
	default:
		return "unknown"
	}
}

// The placement search used to re-sort every rack's server list (and the
// rack list itself) on each attempt, allocating the sorted copies each time.
// At one search per blocked-job retry that was the scheduler's hottest
// allocation site. The cluster now maintains free-count buckets — one bitmap
// of servers per free-GPU count, per rack and cluster-wide (see cluster.go)
// — so "servers by free GPUs descending, ties by ID" is a bucket walk and
// "best fit" is a first-set-bit query. The visit order is identical to what
// the sorts produced, so placements are bit-for-bit the same; the search
// itself no longer allocates (candidate picks go to a reused scratch, and
// slots materialize only for the returned placement).
//
// The walks live on searchCtx — a scratch bundle (pick buffer + rack-order
// buffer) — so the same code serves two callers: the cluster's own inline
// context, and private Searcher contexts that fan speculative searches out
// across goroutines while the free state is quiescent (scheduler.Pump's
// fork-join). The search never mutates cluster state, so any number of
// contexts may read concurrently.

// searchCtx is one placement-search scratch context.
type searchCtx struct {
	c *Cluster
	// inline marks the cluster's own context, the only one allowed to use
	// the shared fork-join pool for per-rack feasibility scoring (Searcher
	// contexts already run inside a fork-join; nesting would just shuffle
	// the same work). Results are identical either way by construction.
	inline      bool
	rackScratch []*Rack
	picks       []pick
}

// Searcher is a read-only placement-search context with private scratch.
// Multiple Searchers may run FindPlacement concurrently against the same
// cluster as long as nothing mutates allocations in the meantime; results
// are bit-identical to Cluster.FindPlacement on the same state. Searcher
// searches bypass the negative-result cache and the search counters — the
// caller decides what to fold back via CommitSpeculative.
type Searcher struct {
	ctx searchCtx
}

// NewSearcher returns a search context for speculative (read-only) use.
func (c *Cluster) NewSearcher() *Searcher {
	return &Searcher{ctx: searchCtx{c: c}}
}

// FindPlacement runs the same pure search as Cluster.FindPlacement without
// touching shared scratch, the cache, or the counters.
func (s *Searcher) FindPlacement(n int, level Locality) (Placement, bool) {
	c := s.ctx.c
	if n <= 0 || n > c.freeGPUs {
		return Placement{}, false
	}
	return s.ctx.findPlacement(n, level)
}

// FindPlacement searches for n free GPUs satisfying the locality level.
// It returns the placement and true on success, or a zero placement and
// false when the constraint cannot be met with current free resources.
//
// Search order follows the paper: racks are ranked by increasing occupancy
// (most free GPUs first) and servers within a rack the same way, so the
// scheduler "first considers racks and then servers within those racks that
// have most GPUs available". Small jobs that fit on a single server use
// best-fit instead (fewest leftover free GPUs) so that they pack into
// partially used machines and do not fragment empty servers — the paper's
// anti-fragmentation packing for small jobs.
//
// Failed packed/rack searches are memoized against the free-state epochs
// (see epoch.go): a retry against unchanged state — the blocked-queue storm
// — short-circuits without walking any rack.
func (c *Cluster) FindPlacement(n int, level Locality) (Placement, bool) {
	c.searches++
	if n <= 0 {
		return Placement{}, false
	}
	if n > c.freeGPUs {
		return Placement{}, false
	}
	if c.cacheOn && level != LocalityRelaxed && c.knownInfeasible(n, level) {
		c.shortCircuits++
		return Placement{}, false
	}
	p, ok := c.inline.findPlacement(n, level)
	if !ok {
		c.memoizeFailure(n, level)
	}
	return p, ok
}

// findPlacement dispatches an already-validated search (0 < n <= freeGPUs).
func (x *searchCtx) findPlacement(n int, level Locality) (Placement, bool) {
	switch level {
	case LocalityPacked:
		return x.findPacked(n)
	case LocalityRack:
		return x.findWithinRack(n)
	case LocalityRelaxed:
		return x.findAnywhere(n)
	default:
		return Placement{}, false
	}
}

// findPacked places on the minimum number of servers within one rack.
func (x *searchCtx) findPacked(n int) (Placement, bool) {
	// Single-server case: best fit across all servers that can hold n.
	if p, ok := x.bestFitSingleServer(n); ok {
		return p, true
	}
	// Multi-server case: the job must span servers. Require the minimal
	// server count for the rack's SKU and a single rack.
	racks := x.racksByFreeDesc()
	if x.inline && x.c.parallelScoring(racks) {
		return x.findFirstFeasible(racks, n, true)
	}
	for _, rack := range racks {
		if rack.free < n {
			continue
		}
		per := rack.SKU.GPUsPerServer
		minServers := (n + per - 1) / per
		x.picks = x.picks[:0]
		if rem, used := x.gatherFromRack(rack, n); rem == 0 && used <= minServers {
			return x.materializePicks(n), true
		}
	}
	return Placement{}, false
}

// findWithinRack places anywhere within a single rack.
func (x *searchCtx) findWithinRack(n int) (Placement, bool) {
	if p, ok := x.bestFitSingleServer(n); ok {
		return p, true
	}
	racks := x.racksByFreeDesc()
	if x.inline && x.c.parallelScoring(racks) {
		return x.findFirstFeasible(racks, n, false)
	}
	for _, rack := range racks {
		if rack.free < n {
			continue
		}
		x.picks = x.picks[:0]
		if rem, _ := x.gatherFromRack(rack, n); rem == 0 {
			return x.materializePicks(n), true
		}
	}
	return Placement{}, false
}

// SetPool attaches a fork-join pool for multi-rack placement scoring. A nil
// pool (the default) keeps the sequential scan; placements are identical
// either way — the parallel path scores every rack and then selects the
// first feasible one in the same (free desc, ID) order the scan visits.
func (c *Cluster) SetPool(p *par.Pool) { c.pool = p }

// minRacksParallel gates parallel scoring: the per-rack feasibility count
// is microseconds of work, so fan-out only pays when a search must touch
// many racks (the fully-congested "scan everything, place nothing" case
// that dominates blocked-queue retries on big clusters).
const minRacksParallel = 8

func (c *Cluster) parallelScoring(racks []*Rack) bool {
	return c.pool != nil && len(racks) >= minRacksParallel
}

// rackFeasibility is one rack's scored verdict for a pending gang.
type rackFeasibility struct {
	rem  int // free GPUs still missing after gathering from this rack
	used int // servers the gather would touch
}

// findFirstFeasible scores every rack concurrently (a read-only count of
// the gather walk, no pick recording) and takes the first feasible rack in
// racks order — exactly the rack the sequential scan would have committed
// to — then re-gathers picks from that rack alone. Inline-context only.
func (x *searchCtx) findFirstFeasible(racks []*Rack, n int, packed bool) (Placement, bool) {
	c := x.c
	if cap(c.feasScratch) < len(racks) {
		c.feasScratch = make([]rackFeasibility, len(racks))
	}
	feas := c.feasScratch[:len(racks)]
	c.pool.ForkJoin(len(racks), func(i int) {
		rack := racks[i]
		if rack.free < n {
			feas[i] = rackFeasibility{rem: n}
			return
		}
		rem, used := rack.countGather(n)
		feas[i] = rackFeasibility{rem: rem, used: used}
	})
	for i, rack := range racks {
		if feas[i].rem != 0 {
			continue
		}
		if packed {
			per := rack.SKU.GPUsPerServer
			if feas[i].used > (n+per-1)/per {
				continue
			}
		}
		x.picks = x.picks[:0]
		if rem, _ := x.gatherFromRack(rack, n); rem != 0 {
			// The scored walk and the pick walk read the same immutable
			// snapshot; disagreement means the event loop mutated state
			// mid-search, which the single-threaded engine forbids.
			panic("cluster: rack feasibility diverged from gather")
		}
		return x.materializePicks(n), true
	}
	return Placement{}, false
}

// countGather is gatherFromRack without pick recording: it walks the same
// buckets in the same order and returns the same (remaining, used) pair,
// but touches no shared scratch, so any number of racks can be scored
// concurrently.
func (r *Rack) countGather(need int) (int, int) {
	used := 0
	for f := r.SKU.GPUsPerServer; f >= 1 && need > 0; f-- {
		for w, word := range r.buckets[f] {
			for word != 0 {
				local := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				take := r.Servers[local].free
				if take > need {
					take = need
				}
				used++
				need -= take
				if need == 0 {
					return 0, used
				}
			}
		}
	}
	return need, used
}

// findAnywhere places on any free GPUs, preferring emptier racks first to
// keep the job as compact as the free space allows, then spilling across
// racks. With n <= freeGPUs it cannot fail — the gather visits every free
// GPU in the cluster — which is why relaxed searches are never memoized.
func (x *searchCtx) findAnywhere(n int) (Placement, bool) {
	if p, ok := x.bestFitSingleServer(n); ok {
		return p, true
	}
	x.picks = x.picks[:0]
	need := n
	for _, rack := range x.racksByFreeDesc() {
		need, _ = x.gatherFromRack(rack, need)
		if need == 0 {
			return x.materializePicks(n), true
		}
	}
	return Placement{}, false
}

type pick struct {
	srv  *Server
	take int
}

// gatherFromRack appends (server, take) picks for up to need GPUs from the
// rack, visiting servers by free GPUs descending with ties by server ID —
// exactly the order the former per-attempt sort produced. It returns the
// remaining need and the number of servers picked from this rack.
func (x *searchCtx) gatherFromRack(rack *Rack, need int) (int, int) {
	used := 0
	for f := rack.SKU.GPUsPerServer; f >= 1 && need > 0; f-- {
		for w, word := range rack.buckets[f] {
			for word != 0 {
				local := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				srv := rack.Servers[local]
				take := srv.free
				if take > need {
					take = need
				}
				x.picks = append(x.picks, pick{srv: srv, take: take})
				used++
				need -= take
				if need == 0 {
					return 0, used
				}
			}
		}
	}
	return need, used
}

// materializePicks builds the placement for the current pick scratch,
// taking each picked server's free GPUs in ascending device order.
func (x *searchCtx) materializePicks(n int) Placement {
	slots := make([]Slot, 0, n)
	for _, pk := range x.picks {
		taken := 0
		for g := range pk.srv.GPUs {
			if taken == pk.take {
				break
			}
			if pk.srv.GPUs[g].Owner == 0 {
				slots = append(slots, Slot{Server: pk.srv.ID, GPU: g})
				taken++
			}
		}
	}
	return Placement{Slots: slots}
}

// bestFitSingleServer finds the server whose free-GPU count is the smallest
// value >= n (ties broken by lowest server ID for determinism).
func (x *searchCtx) bestFitSingleServer(n int) (Placement, bool) {
	c := x.c
	for f := n; f <= c.maxPerServer; f++ {
		if id := firstBit(c.freeBuckets[f]); id >= 0 {
			srv := c.servers[id]
			x.picks = append(x.picks[:0], pick{srv: srv, take: n})
			return x.materializePicks(n), true
		}
	}
	return Placement{}, false
}

// racksByFreeDesc returns racks sorted by free GPUs descending (i.e.
// increasing occupancy), ties by rack ID. The result is a reused scratch
// ordered by insertion sort — rack counts are small and the (free desc, ID)
// key is a total order, so the output matches the former stable sort.
func (x *searchCtx) racksByFreeDesc() []*Rack {
	racks := x.rackScratch[:0]
	for _, r := range x.c.Racks {
		i := len(racks)
		racks = append(racks, r)
		for i > 0 {
			p := racks[i-1]
			if p.free > r.free || (p.free == r.free && p.ID < r.ID) {
				break
			}
			racks[i] = p
			i--
		}
		racks[i] = r
	}
	x.rackScratch = racks
	return racks
}

// FindMigrationTarget looks for a single-server best-fit for a gpus-wide
// job that avoids the excluded servers and lands on a server that is
// already partly used (moving onto an empty server would just shift the
// fragmentation). The bucket walk — ascending free count from gpus, first
// set bit — visits exactly the "smallest free >= gpus, ties by lowest ID"
// order the defragmenter's former full-inventory scan selected, skipping
// fully free servers by comparing the bucket index against the server's
// capacity.
func (c *Cluster) FindMigrationTarget(gpus int, exclude map[int]bool) (Placement, bool) {
	if gpus <= 0 {
		return Placement{}, false
	}
	for f := gpus; f <= c.maxPerServer; f++ {
		for w, word := range c.freeBuckets[f] {
			for word != 0 {
				id := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if int(c.srvCap[id]) == f || exclude[id] {
					continue // fully free, or one of the job's own servers
				}
				srv := c.servers[id]
				c.inline.picks = append(c.inline.picks[:0], pick{srv: srv, take: gpus})
				return c.inline.materializePicks(gpus), true
			}
		}
	}
	return Placement{}, false
}

// firstBit returns the index of the lowest set bit, or -1 when none is set.
func firstBit(words []uint64) int {
	for w, word := range words {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// MaxRackGPUs returns the largest rack capacity — the widest gang that can
// ever satisfy a single-RDMA-domain locality constraint.
func (c *Cluster) MaxRackGPUs() int {
	max := 0
	for _, r := range c.Racks {
		if t := r.TotalGPUs(); t > max {
			max = t
		}
	}
	return max
}

// MaxGPUsPerServer returns the largest per-server GPU count in the cluster.
func (c *Cluster) MaxGPUsPerServer() int {
	max := 0
	for _, r := range c.Racks {
		if r.SKU.GPUsPerServer > max {
			max = r.SKU.GPUsPerServer
		}
	}
	return max
}

// MinServersFor returns the minimum number of servers a job of n GPUs could
// ever occupy in this cluster (its ideal locality).
func (c *Cluster) MinServersFor(n int) int {
	per := c.MaxGPUsPerServer()
	if per == 0 {
		return 0
	}
	return (n + per - 1) / per
}
