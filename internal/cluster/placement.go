package cluster

import (
	"math/bits"

	"philly/internal/par"
)

// Locality is the constraint level a placement search must satisfy. The
// Philly scheduler starts at the strictest level and relaxes after repeated
// scheduling failures (paper §2.3: "to avoid starvation, the locality
// constraints are relaxed after a scheduling request has been retried a
// fixed number of times").
type Locality int

const (
	// LocalityPacked requires the minimum possible number of servers, all
	// within a single RDMA domain: one server when the job fits, otherwise
	// ceil(n / GPUsPerServer) whole servers in one rack.
	LocalityPacked Locality = iota
	// LocalityRack requires all GPUs within a single RDMA domain but allows
	// any number of servers.
	LocalityRack
	// LocalityRelaxed allows any free GPUs anywhere in the cluster.
	LocalityRelaxed
)

// String names the constraint level.
func (l Locality) String() string {
	switch l {
	case LocalityPacked:
		return "packed"
	case LocalityRack:
		return "rack"
	case LocalityRelaxed:
		return "relaxed"
	default:
		return "unknown"
	}
}

// The placement search used to re-sort every rack's server list (and the
// rack list itself) on each attempt, allocating the sorted copies each time.
// At one search per blocked-job retry that was the scheduler's hottest
// allocation site. The cluster now maintains free-count buckets — one bitmap
// of servers per free-GPU count, per rack and cluster-wide (see cluster.go)
// — so "servers by free GPUs descending, ties by ID" is a bucket walk and
// "best fit" is a first-set-bit query. The visit order is identical to what
// the sorts produced, so placements are bit-for-bit the same; the search
// itself no longer allocates (candidate picks go to a reused scratch, and
// slots materialize only for the returned placement).

// FindPlacement searches for n free GPUs satisfying the locality level.
// It returns the placement and true on success, or a zero placement and
// false when the constraint cannot be met with current free resources.
//
// Search order follows the paper: racks are ranked by increasing occupancy
// (most free GPUs first) and servers within a rack the same way, so the
// scheduler "first considers racks and then servers within those racks that
// have most GPUs available". Small jobs that fit on a single server use
// best-fit instead (fewest leftover free GPUs) so that they pack into
// partially used machines and do not fragment empty servers — the paper's
// anti-fragmentation packing for small jobs.
func (c *Cluster) FindPlacement(n int, level Locality) (Placement, bool) {
	if n <= 0 {
		return Placement{}, false
	}
	if n > c.freeGPUs {
		return Placement{}, false
	}
	switch level {
	case LocalityPacked:
		return c.findPacked(n)
	case LocalityRack:
		return c.findWithinRack(n)
	case LocalityRelaxed:
		return c.findAnywhere(n)
	default:
		return Placement{}, false
	}
}

// findPacked places on the minimum number of servers within one rack.
func (c *Cluster) findPacked(n int) (Placement, bool) {
	// Single-server case: best fit across all servers that can hold n.
	if p, ok := c.bestFitSingleServer(n); ok {
		return p, true
	}
	// Multi-server case: the job must span servers. Require the minimal
	// server count for the rack's SKU and a single rack.
	racks := c.racksByFreeDesc()
	if c.parallelScoring(racks) {
		return c.findFirstFeasible(racks, n, true)
	}
	for _, rack := range racks {
		if rack.free < n {
			continue
		}
		per := rack.SKU.GPUsPerServer
		minServers := (n + per - 1) / per
		c.picks = c.picks[:0]
		if rem, used := c.gatherFromRack(rack, n); rem == 0 && used <= minServers {
			return c.materializePicks(n), true
		}
	}
	return Placement{}, false
}

// findWithinRack places anywhere within a single rack.
func (c *Cluster) findWithinRack(n int) (Placement, bool) {
	if p, ok := c.bestFitSingleServer(n); ok {
		return p, true
	}
	racks := c.racksByFreeDesc()
	if c.parallelScoring(racks) {
		return c.findFirstFeasible(racks, n, false)
	}
	for _, rack := range racks {
		if rack.free < n {
			continue
		}
		c.picks = c.picks[:0]
		if rem, _ := c.gatherFromRack(rack, n); rem == 0 {
			return c.materializePicks(n), true
		}
	}
	return Placement{}, false
}

// SetPool attaches a fork-join pool for multi-rack placement scoring. A nil
// pool (the default) keeps the sequential scan; placements are identical
// either way — the parallel path scores every rack and then selects the
// first feasible one in the same (free desc, ID) order the scan visits.
func (c *Cluster) SetPool(p *par.Pool) { c.pool = p }

// minRacksParallel gates parallel scoring: the per-rack feasibility count
// is microseconds of work, so fan-out only pays when a search must touch
// many racks (the fully-congested "scan everything, place nothing" case
// that dominates blocked-queue retries on big clusters).
const minRacksParallel = 8

func (c *Cluster) parallelScoring(racks []*Rack) bool {
	return c.pool != nil && len(racks) >= minRacksParallel
}

// rackFeasibility is one rack's scored verdict for a pending gang.
type rackFeasibility struct {
	rem  int // free GPUs still missing after gathering from this rack
	used int // servers the gather would touch
}

// findFirstFeasible scores every rack concurrently (a read-only count of
// the gather walk, no pick recording) and takes the first feasible rack in
// racks order — exactly the rack the sequential scan would have committed
// to — then re-gathers picks from that rack alone.
func (c *Cluster) findFirstFeasible(racks []*Rack, n int, packed bool) (Placement, bool) {
	if cap(c.feasScratch) < len(racks) {
		c.feasScratch = make([]rackFeasibility, len(racks))
	}
	feas := c.feasScratch[:len(racks)]
	c.pool.ForkJoin(len(racks), func(i int) {
		rack := racks[i]
		if rack.free < n {
			feas[i] = rackFeasibility{rem: n}
			return
		}
		rem, used := rack.countGather(n)
		feas[i] = rackFeasibility{rem: rem, used: used}
	})
	for i, rack := range racks {
		if feas[i].rem != 0 {
			continue
		}
		if packed {
			per := rack.SKU.GPUsPerServer
			if feas[i].used > (n+per-1)/per {
				continue
			}
		}
		c.picks = c.picks[:0]
		if rem, _ := c.gatherFromRack(rack, n); rem != 0 {
			// The scored walk and the pick walk read the same immutable
			// snapshot; disagreement means the event loop mutated state
			// mid-search, which the single-threaded engine forbids.
			panic("cluster: rack feasibility diverged from gather")
		}
		return c.materializePicks(n), true
	}
	return Placement{}, false
}

// countGather is gatherFromRack without pick recording: it walks the same
// buckets in the same order and returns the same (remaining, used) pair,
// but touches no shared scratch, so any number of racks can be scored
// concurrently.
func (r *Rack) countGather(need int) (int, int) {
	used := 0
	for f := r.SKU.GPUsPerServer; f >= 1 && need > 0; f-- {
		for w, word := range r.buckets[f] {
			for word != 0 {
				local := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				take := r.Servers[local].free
				if take > need {
					take = need
				}
				used++
				need -= take
				if need == 0 {
					return 0, used
				}
			}
		}
	}
	return need, used
}

// findAnywhere places on any free GPUs, preferring emptier racks first to
// keep the job as compact as the free space allows, then spilling across
// racks.
func (c *Cluster) findAnywhere(n int) (Placement, bool) {
	if p, ok := c.bestFitSingleServer(n); ok {
		return p, true
	}
	c.picks = c.picks[:0]
	need := n
	for _, rack := range c.racksByFreeDesc() {
		need, _ = c.gatherFromRack(rack, need)
		if need == 0 {
			return c.materializePicks(n), true
		}
	}
	return Placement{}, false
}

type pick struct {
	srv  *Server
	take int
}

// gatherFromRack appends (server, take) picks for up to need GPUs from the
// rack, visiting servers by free GPUs descending with ties by server ID —
// exactly the order the former per-attempt sort produced. It returns the
// remaining need and the number of servers picked from this rack.
func (c *Cluster) gatherFromRack(rack *Rack, need int) (int, int) {
	used := 0
	for f := rack.SKU.GPUsPerServer; f >= 1 && need > 0; f-- {
		for w, word := range rack.buckets[f] {
			for word != 0 {
				local := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				srv := rack.Servers[local]
				take := srv.free
				if take > need {
					take = need
				}
				c.picks = append(c.picks, pick{srv: srv, take: take})
				used++
				need -= take
				if need == 0 {
					return 0, used
				}
			}
		}
	}
	return need, used
}

// materializePicks builds the placement for the current pick scratch,
// taking each picked server's free GPUs in ascending device order.
func (c *Cluster) materializePicks(n int) Placement {
	slots := make([]Slot, 0, n)
	for _, pk := range c.picks {
		taken := 0
		for g := range pk.srv.GPUs {
			if taken == pk.take {
				break
			}
			if pk.srv.GPUs[g].Owner == 0 {
				slots = append(slots, Slot{Server: pk.srv.ID, GPU: g})
				taken++
			}
		}
	}
	return Placement{Slots: slots}
}

// bestFitSingleServer finds the server whose free-GPU count is the smallest
// value >= n (ties broken by lowest server ID for determinism).
func (c *Cluster) bestFitSingleServer(n int) (Placement, bool) {
	for f := n; f <= c.maxPerServer; f++ {
		if id := firstBit(c.freeBuckets[f]); id >= 0 {
			srv := c.servers[id]
			c.picks = append(c.picks[:0], pick{srv: srv, take: n})
			return c.materializePicks(n), true
		}
	}
	return Placement{}, false
}

// racksByFreeDesc returns racks sorted by free GPUs descending (i.e.
// increasing occupancy), ties by rack ID. The result is a reused scratch
// ordered by insertion sort — rack counts are small and the (free desc, ID)
// key is a total order, so the output matches the former stable sort.
func (c *Cluster) racksByFreeDesc() []*Rack {
	racks := c.rackScratch[:0]
	for _, r := range c.Racks {
		i := len(racks)
		racks = append(racks, r)
		for i > 0 {
			p := racks[i-1]
			if p.free > r.free || (p.free == r.free && p.ID < r.ID) {
				break
			}
			racks[i] = p
			i--
		}
		racks[i] = r
	}
	c.rackScratch = racks
	return racks
}

// firstBit returns the index of the lowest set bit, or -1 when none is set.
func firstBit(words []uint64) int {
	for w, word := range words {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// MaxRackGPUs returns the largest rack capacity — the widest gang that can
// ever satisfy a single-RDMA-domain locality constraint.
func (c *Cluster) MaxRackGPUs() int {
	max := 0
	for _, r := range c.Racks {
		if t := r.TotalGPUs(); t > max {
			max = t
		}
	}
	return max
}

// MaxGPUsPerServer returns the largest per-server GPU count in the cluster.
func (c *Cluster) MaxGPUsPerServer() int {
	max := 0
	for _, r := range c.Racks {
		if r.SKU.GPUsPerServer > max {
			max = r.SKU.GPUsPerServer
		}
	}
	return max
}

// MinServersFor returns the minimum number of servers a job of n GPUs could
// ever occupy in this cluster (its ideal locality).
func (c *Cluster) MinServersFor(n int) int {
	per := c.MaxGPUsPerServer()
	if per == 0 {
		return 0
	}
	return (n + per - 1) / per
}
