package cluster

import (
	"sort"
)

// Locality is the constraint level a placement search must satisfy. The
// Philly scheduler starts at the strictest level and relaxes after repeated
// scheduling failures (paper §2.3: "to avoid starvation, the locality
// constraints are relaxed after a scheduling request has been retried a
// fixed number of times").
type Locality int

const (
	// LocalityPacked requires the minimum possible number of servers, all
	// within a single RDMA domain: one server when the job fits, otherwise
	// ceil(n / GPUsPerServer) whole servers in one rack.
	LocalityPacked Locality = iota
	// LocalityRack requires all GPUs within a single RDMA domain but allows
	// any number of servers.
	LocalityRack
	// LocalityRelaxed allows any free GPUs anywhere in the cluster.
	LocalityRelaxed
)

// String names the constraint level.
func (l Locality) String() string {
	switch l {
	case LocalityPacked:
		return "packed"
	case LocalityRack:
		return "rack"
	case LocalityRelaxed:
		return "relaxed"
	default:
		return "unknown"
	}
}

// FindPlacement searches for n free GPUs satisfying the locality level.
// It returns the placement and true on success, or a zero placement and
// false when the constraint cannot be met with current free resources.
//
// Search order follows the paper: racks are ranked by increasing occupancy
// (most free GPUs first) and servers within a rack the same way, so the
// scheduler "first considers racks and then servers within those racks that
// have most GPUs available". Small jobs that fit on a single server use
// best-fit instead (fewest leftover free GPUs) so that they pack into
// partially used machines and do not fragment empty servers — the paper's
// anti-fragmentation packing for small jobs.
func (c *Cluster) FindPlacement(n int, level Locality) (Placement, bool) {
	if n <= 0 {
		return Placement{}, false
	}
	if n > c.freeGPUs {
		return Placement{}, false
	}
	switch level {
	case LocalityPacked:
		return c.findPacked(n)
	case LocalityRack:
		return c.findWithinRack(n)
	case LocalityRelaxed:
		return c.findAnywhere(n)
	default:
		return Placement{}, false
	}
}

// findPacked places on the minimum number of servers within one rack.
func (c *Cluster) findPacked(n int) (Placement, bool) {
	// Single-server case: best fit across all servers that can hold n.
	if p, ok := c.bestFitSingleServer(n); ok {
		return p, true
	}
	// Multi-server case: the job must span servers. Require the minimal
	// server count for the rack's SKU and a single rack.
	for _, rack := range c.racksByFreeDesc() {
		per := rack.SKU.GPUsPerServer
		minServers := (n + per - 1) / per
		servers := serversByFreeDesc(rack.Servers)
		p, used := takeFromServers(servers, n)
		if used > 0 && used <= minServers && len(p.Slots) == n {
			return p, true
		}
	}
	return Placement{}, false
}

// findWithinRack places anywhere within a single rack.
func (c *Cluster) findWithinRack(n int) (Placement, bool) {
	if p, ok := c.bestFitSingleServer(n); ok {
		return p, true
	}
	for _, rack := range c.racksByFreeDesc() {
		if rack.FreeGPUs() < n {
			continue
		}
		servers := serversByFreeDesc(rack.Servers)
		p, _ := takeFromServers(servers, n)
		if len(p.Slots) == n {
			return p, true
		}
	}
	return Placement{}, false
}

// findAnywhere places on any free GPUs, preferring fuller racks... no:
// preferring emptier racks first to keep the job as compact as the free
// space allows, then spilling across racks.
func (c *Cluster) findAnywhere(n int) (Placement, bool) {
	if p, ok := c.bestFitSingleServer(n); ok {
		return p, true
	}
	var servers []*Server
	for _, rack := range c.racksByFreeDesc() {
		servers = append(servers, serversByFreeDesc(rack.Servers)...)
	}
	p, _ := takeFromServers(servers, n)
	if len(p.Slots) == n {
		return p, true
	}
	return Placement{}, false
}

// bestFitSingleServer finds the server whose free-GPU count is the smallest
// value >= n (ties broken by lowest server ID for determinism).
func (c *Cluster) bestFitSingleServer(n int) (Placement, bool) {
	var best *Server
	for _, s := range c.servers {
		if s.free < n || n > len(s.GPUs) {
			continue
		}
		if best == nil || s.free < best.free || (s.free == best.free && s.ID < best.ID) {
			best = s
		}
	}
	if best == nil {
		return Placement{}, false
	}
	return takeFromServer(best, n), true
}

// racksByFreeDesc returns racks sorted by free GPUs descending (i.e.
// increasing occupancy), ties by rack ID.
func (c *Cluster) racksByFreeDesc() []*Rack {
	racks := append([]*Rack(nil), c.Racks...)
	sort.SliceStable(racks, func(i, j int) bool {
		fi, fj := racks[i].FreeGPUs(), racks[j].FreeGPUs()
		if fi != fj {
			return fi > fj
		}
		return racks[i].ID < racks[j].ID
	})
	return racks
}

// serversByFreeDesc returns servers sorted by free GPUs descending, ties by
// server ID.
func serversByFreeDesc(servers []*Server) []*Server {
	out := append([]*Server(nil), servers...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].free != out[j].free {
			return out[i].free > out[j].free
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// takeFromServer builds a placement of n free GPUs from a single server.
// The caller must ensure s.free >= n.
func takeFromServer(s *Server, n int) Placement {
	var p Placement
	for g := range s.GPUs {
		if len(p.Slots) == n {
			break
		}
		if s.GPUs[g].Owner == 0 {
			p.Slots = append(p.Slots, Slot{Server: s.ID, GPU: g})
		}
	}
	return p
}

// takeFromServers greedily takes free GPUs from servers in order until n
// slots are gathered. It returns the placement (possibly short) and the
// number of servers actually used.
func takeFromServers(servers []*Server, n int) (Placement, int) {
	var p Placement
	used := 0
	for _, s := range servers {
		if len(p.Slots) == n {
			break
		}
		if s.free == 0 {
			continue
		}
		before := len(p.Slots)
		for g := range s.GPUs {
			if len(p.Slots) == n {
				break
			}
			if s.GPUs[g].Owner == 0 {
				p.Slots = append(p.Slots, Slot{Server: s.ID, GPU: g})
			}
		}
		if len(p.Slots) > before {
			used++
		}
	}
	return p, used
}

// MaxRackGPUs returns the largest rack capacity — the widest gang that can
// ever satisfy a single-RDMA-domain locality constraint.
func (c *Cluster) MaxRackGPUs() int {
	max := 0
	for _, r := range c.Racks {
		if t := r.TotalGPUs(); t > max {
			max = t
		}
	}
	return max
}

// MaxGPUsPerServer returns the largest per-server GPU count in the cluster.
func (c *Cluster) MaxGPUsPerServer() int {
	max := 0
	for _, r := range c.Racks {
		if r.SKU.GPUsPerServer > max {
			max = r.SKU.GPUsPerServer
		}
	}
	return max
}

// MinServersFor returns the minimum number of servers a job of n GPUs could
// ever occupy in this cluster (its ideal locality).
func (c *Cluster) MinServersFor(n int) int {
	per := c.MaxGPUsPerServer()
	if per == 0 {
		return 0
	}
	return (n + per - 1) / per
}
