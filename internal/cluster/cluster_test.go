package cluster

import (
	"testing"
	"testing/quick"

	"philly/internal/stats"
)

func small() *Cluster {
	// 2 racks of 2x8-GPU servers + 1 rack of 2x2-GPU servers = 36 GPUs.
	return MustNew(Config{Racks: []RackConfig{
		{Servers: 2, SKU: SKU8GPU},
		{Servers: 2, SKU: SKU8GPU},
		{Servers: 2, SKU: SKU2GPU},
	}})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("want error for empty config")
	}
	if _, err := New(Config{Racks: []RackConfig{{Servers: 0, SKU: SKU8GPU}}}); err == nil {
		t.Error("want error for zero servers")
	}
	if _, err := New(Config{Racks: []RackConfig{{Servers: 1, SKU: SKU{Name: "bad"}}}}); err == nil {
		t.Error("want error for zero GPUs per server")
	}
}

func TestTopologyCounts(t *testing.T) {
	c := small()
	if got := c.TotalGPUs(); got != 36 {
		t.Errorf("TotalGPUs = %d, want 36", got)
	}
	if got := c.NumServers(); got != 6 {
		t.Errorf("NumServers = %d, want 6", got)
	}
	if got := c.FreeGPUs(); got != 36 {
		t.Errorf("FreeGPUs = %d, want 36", got)
	}
	if got := c.EmptyServers(); got != 6 {
		t.Errorf("EmptyServers = %d, want 6", got)
	}
	if got := c.MaxGPUsPerServer(); got != 8 {
		t.Errorf("MaxGPUsPerServer = %d, want 8", got)
	}
	if got := c.MinServersFor(12); got != 2 {
		t.Errorf("MinServersFor(12) = %d, want 2", got)
	}
	if got := c.Occupancy(); got != 0 {
		t.Errorf("Occupancy = %v, want 0", got)
	}
}

func TestDefaultConfigScale(t *testing.T) {
	c := MustNew(DefaultConfig())
	if c.TotalGPUs() < 1000 {
		t.Errorf("default cluster has %d GPUs, want thousands", c.TotalGPUs())
	}
	if c.NumServers() < 100 {
		t.Errorf("default cluster has %d servers, want hundreds", c.NumServers())
	}
}

func TestAllocateRelease(t *testing.T) {
	c := small()
	p, ok := c.FindPlacement(4, LocalityPacked)
	if !ok {
		t.Fatal("no placement found")
	}
	if err := c.Allocate(1, p); err != nil {
		t.Fatal(err)
	}
	if got := c.FreeGPUs(); got != 32 {
		t.Errorf("FreeGPUs = %d, want 32", got)
	}
	got, ok := c.PlacementOf(1)
	if !ok || got.NumGPUs() != 4 {
		t.Fatalf("PlacementOf = %+v, %v", got, ok)
	}
	if jobs := c.RunningJobs(); len(jobs) != 1 || jobs[0] != 1 {
		t.Errorf("RunningJobs = %v", jobs)
	}
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if got := c.FreeGPUs(); got != 36 {
		t.Errorf("FreeGPUs after release = %d, want 36", got)
	}
	if err := c.Release(1); err == nil {
		t.Error("want error for double release")
	}
}

func TestAllocateErrors(t *testing.T) {
	c := small()
	if err := c.Allocate(0, Placement{Slots: []Slot{{0, 0}}}); err == nil {
		t.Error("want error for job ID 0")
	}
	if err := c.Allocate(1, Placement{}); err == nil {
		t.Error("want error for empty placement")
	}
	if err := c.Allocate(1, Placement{Slots: []Slot{{99, 0}}}); err == nil {
		t.Error("want error for unknown server")
	}
	if err := c.Allocate(1, Placement{Slots: []Slot{{0, 99}}}); err == nil {
		t.Error("want error for unknown GPU")
	}
	if err := c.Allocate(1, Placement{Slots: []Slot{{0, 0}, {0, 0}}}); err == nil {
		t.Error("want error for duplicate slot")
	}
	if err := c.Allocate(1, Placement{Slots: []Slot{{0, 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate(2, Placement{Slots: []Slot{{0, 0}}}); err == nil {
		t.Error("want error for already-owned GPU")
	}
	if err := c.Allocate(1, Placement{Slots: []Slot{{0, 1}}}); err == nil {
		t.Error("want error for second allocation of same job")
	}
}

func TestAllocateFailureLeavesNoPartialState(t *testing.T) {
	c := small()
	if err := c.Allocate(1, Placement{Slots: []Slot{{0, 0}}}); err != nil {
		t.Fatal(err)
	}
	before := c.FreeGPUs()
	// Second slot conflicts; first is free — allocation must not happen at all.
	err := c.Allocate(2, Placement{Slots: []Slot{{0, 1}, {0, 0}}})
	if err == nil {
		t.Fatal("want conflict error")
	}
	if c.FreeGPUs() != before {
		t.Errorf("FreeGPUs changed on failed allocate: %d -> %d", before, c.FreeGPUs())
	}
	if c.Server(0).GPUs[1].Owner != 0 {
		t.Error("failed allocation left slot owned")
	}
}

func TestPackedPlacementSingleServer(t *testing.T) {
	c := small()
	p, ok := c.FindPlacement(8, LocalityPacked)
	if !ok {
		t.Fatal("no placement for 8 GPUs")
	}
	if p.NumServers() != 1 {
		t.Errorf("8-GPU packed placement uses %d servers, want 1", p.NumServers())
	}
}

func TestPackedPlacementBestFit(t *testing.T) {
	c := small()
	// Occupy 6 GPUs on server 0, leaving 2 free there.
	if err := c.Allocate(1, Placement{Slots: []Slot{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}}); err != nil {
		t.Fatal(err)
	}
	// A 2-GPU job should best-fit onto server 0 (2 free) or the 2-GPU SKU
	// servers (2 free) rather than fragmenting an empty 8-GPU server.
	p, ok := c.FindPlacement(2, LocalityPacked)
	if !ok {
		t.Fatal("no placement")
	}
	srv := p.ServerIDs()[0]
	free := c.Server(srv).FreeGPUs()
	if free != 2 {
		t.Errorf("best-fit chose server %d with %d free, want a 2-free server", srv, free)
	}
}

func TestPackedPlacementMultiServerSameRack(t *testing.T) {
	c := small()
	p, ok := c.FindPlacement(16, LocalityPacked)
	if !ok {
		t.Fatal("no placement for 16 GPUs")
	}
	if p.NumServers() != 2 {
		t.Errorf("16-GPU packed uses %d servers, want 2", p.NumServers())
	}
	if got := len(p.RackIDs(c)); got != 1 {
		t.Errorf("16-GPU packed spans %d racks, want 1", got)
	}
	if p.CrossRack(c) {
		t.Error("packed placement should not cross racks")
	}
}

func TestPackedRefusesFragmented(t *testing.T) {
	c := small()
	// Occupy 1 GPU on every 8-GPU server: no server has 8 free, and no rack
	// can satisfy 16 on 2 servers.
	id := JobID(1)
	for _, sid := range []int{0, 1, 2, 3} {
		if err := c.Allocate(id, Placement{Slots: []Slot{{sid, 0}}}); err != nil {
			t.Fatal(err)
		}
		id++
	}
	if _, ok := c.FindPlacement(16, LocalityPacked); ok {
		t.Error("packed placement should fail under fragmentation")
	}
	// Rack-level locality also fails (each rack has only 14 free).
	if _, ok := c.FindPlacement(16, LocalityRack); ok {
		t.Error("rack placement should fail: max 14 free per rack")
	}
	// Relaxed succeeds across racks.
	p, ok := c.FindPlacement(16, LocalityRelaxed)
	if !ok {
		t.Fatal("relaxed placement should succeed")
	}
	if !p.CrossRack(c) {
		t.Error("relaxed 16-GPU placement should span racks here")
	}
}

func TestFindPlacementBounds(t *testing.T) {
	c := small()
	if _, ok := c.FindPlacement(0, LocalityPacked); ok {
		t.Error("n=0 should fail")
	}
	if _, ok := c.FindPlacement(37, LocalityRelaxed); ok {
		t.Error("n > capacity should fail")
	}
	if _, ok := c.FindPlacement(36, LocalityRelaxed); !ok {
		t.Error("n == capacity should succeed on empty cluster")
	}
}

func TestColocationTracking(t *testing.T) {
	c := small()
	if err := c.Allocate(1, Placement{Slots: []Slot{{0, 0}, {0, 1}}}); err != nil {
		t.Fatal(err)
	}
	if c.SharesServers(1) {
		t.Error("single job should not be colocated")
	}
	if err := c.Allocate(2, Placement{Slots: []Slot{{0, 2}}}); err != nil {
		t.Fatal(err)
	}
	if !c.SharesServers(1) || !c.SharesServers(2) {
		t.Error("jobs on same server should report colocation")
	}
	if !c.Server(0).Colocated() {
		t.Error("server 0 should be colocated")
	}
	if got := c.Server(0).Jobs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("server jobs = %v", got)
	}
	if got := c.Server(0).JobGPUs(1); got != 2 {
		t.Errorf("JobGPUs(1) = %d, want 2", got)
	}
}

func TestPlacementMetrics(t *testing.T) {
	c := small()
	p := Placement{Slots: []Slot{{0, 0}, {1, 0}, {2, 0}}}
	if got := p.NumServers(); got != 3 {
		t.Errorf("NumServers = %d, want 3", got)
	}
	racks := p.RackIDs(c)
	if len(racks) != 2 {
		t.Errorf("RackIDs = %v, want 2 racks", racks)
	}
	if !p.CrossRack(c) {
		t.Error("placement should be cross-rack")
	}
}

func TestHostResourceHelpers(t *testing.T) {
	if got := CoresPerGPU(SKU8GPU); got != 6 {
		t.Errorf("CoresPerGPU(8-GPU SKU) = %v, want 6", got)
	}
	if got := MemoryPerGPU(SKU8GPU); got != 64 {
		t.Errorf("MemoryPerGPU(8-GPU SKU) = %v, want 64", got)
	}
}

// Property: any sequence of random allocate/release operations preserves the
// GPU accounting invariants.
func TestAllocationInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := stats.NewRNG(seed)
		c := small()
		live := map[JobID]int{} // job -> gpus
		next := JobID(1)
		for op := 0; op < 200; op++ {
			if g.Bool(0.6) {
				n := 1 + g.IntN(16)
				level := Locality(g.IntN(3))
				if p, ok := c.FindPlacement(n, level); ok {
					if len(p.Slots) != n {
						return false
					}
					if err := c.Allocate(next, p); err != nil {
						return false
					}
					live[next] = n
					next++
				}
			} else if len(live) > 0 {
				// Release an arbitrary live job (deterministic pick).
				var pick JobID
				for id := range live {
					if pick == 0 || id < pick {
						pick = id
					}
				}
				if err := c.Release(pick); err != nil {
					return false
				}
				delete(live, pick)
			}
			// Invariant: free + sum(live) == total.
			sum := 0
			for _, n := range live {
				sum += n
			}
			if c.FreeGPUs()+sum != c.TotalGPUs() {
				return false
			}
			// Invariant: per-server free counts match GPU owner states.
			for _, s := range c.Servers() {
				free := 0
				for _, gpu := range s.GPUs {
					if gpu.Owner == 0 {
						free++
					}
				}
				if free != s.FreeGPUs() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
