package cluster

// Rack-epoch negative-result caching for the placement search.
//
// FindPlacement is a pure function of the cluster's free state: the bucket
// walks read only per-server free counts (and GPU ownership for the exact
// device indexes, which changes in lockstep with the counts). Every free-
// state mutation funnels through syncServerIndexes, which bumps a per-rack
// and a cluster-wide monotonic epoch — so equal epochs imply byte-identical
// free state, and a search that failed at some epoch vector must fail again
// whenever those epochs are unchanged. That makes memoizing failures exact
// by construction, not approximate.
//
// Only packed- and rack-level failures are memoized: a relaxed search with
// n <= freeGPUs gathers across every rack and cannot fail, so its only
// failure mode (n > freeGPUs) is already an O(1) early-out.
//
// A memoized failure is revalidated cheaply on retry:
//   - global epoch unchanged -> still infeasible, O(1);
//   - otherwise, only racks whose epoch moved since the memo are re-checked
//     with an exact per-rack feasibility test (O(racks-dirty)); if none
//     became feasible the memo is refreshed to the current epochs and the
//     search short-circuits without walking any rack.
// The per-rack test is exact because a packed/rack search succeeds iff some
// single rack is feasible on its own, and rack feasibility depends only on
// that rack's free state (see rackFeasible).

// failKey identifies one memoizable search.
type failKey struct {
	n     int
	level Locality
}

// failMemo records the epoch vector a (n, level) search last failed
// against; racks is indexed by rack ID.
type failMemo struct {
	global uint64
	racks  []uint64
}

// Epoch returns the cluster-wide free-state epoch: a monotonic counter that
// advances whenever any server's free-GPU count changes. Equal epochs imply
// byte-identical free state.
func (c *Cluster) Epoch() uint64 { return c.epoch }

// SetSearchCache enables or disables the negative-result cache (enabled by
// default). Results are bit-identical either way; disabling exists for the
// differential oracle tests and A/B benchmarks.
func (c *Cluster) SetSearchCache(on bool) {
	c.cacheOn = on
	if !on {
		c.failCache = nil
	}
}

// SearchStats returns the FindPlacement call count and how many of those
// calls were answered by the negative-result cache. Both are deterministic
// functions of the allocate/release/search sequence.
func (c *Cluster) SearchStats() (searches, shortCircuits int) {
	return c.searches, c.shortCircuits
}

// KnownInfeasible reports whether a (n, level) search is guaranteed to fail
// against the current free state without running it: either trivially
// (n > freeGPUs) or by a memoized failure whose epochs still hold. Used by
// the scheduler to skip doomed speculative searches; it does not count as a
// search or a short-circuit.
func (c *Cluster) KnownInfeasible(n int, level Locality) bool {
	if n <= 0 || n > c.freeGPUs {
		return true
	}
	if !c.cacheOn || level == LocalityRelaxed {
		return false
	}
	return c.knownInfeasible(n, level)
}

// CommitSpeculative folds a speculative search's outcome into the cluster's
// books exactly as if Cluster.FindPlacement had run it inline: it counts
// one search and memoizes a failure. The caller must have validated that
// the epoch is unchanged since the speculative search ran.
func (c *Cluster) CommitSpeculative(n int, level Locality, ok bool) {
	c.searches++
	if !ok {
		c.memoizeFailure(n, level)
	}
}

// knownInfeasible is the memo lookup + revalidation. Caller guarantees
// 0 < n <= freeGPUs, cacheOn, and a memoizable level.
func (c *Cluster) knownInfeasible(n int, level Locality) bool {
	m := c.failCache[failKey{n, level}]
	if m == nil {
		return false
	}
	if m.global == c.epoch {
		return true
	}
	// Re-check only racks whose free state moved since the memo. A rack
	// that was infeasible at its recorded epoch and has not changed since
	// is still infeasible; a dirty rack gets the exact feasibility test.
	for i, r := range c.Racks {
		if m.racks[i] == r.epoch {
			continue
		}
		if rackFeasible(r, n, level) {
			return false
		}
		m.racks[i] = r.epoch
	}
	m.global = c.epoch
	return true
}

// memoizeFailure records that (n, level) failed against the current epoch
// vector. Relaxed-level failures are n > freeGPUs early-outs and are not
// memoized.
func (c *Cluster) memoizeFailure(n int, level Locality) {
	if !c.cacheOn || level == LocalityRelaxed {
		return
	}
	k := failKey{n, level}
	m := c.failCache[k]
	if m == nil {
		m = &failMemo{racks: make([]uint64, len(c.Racks))}
		if c.failCache == nil {
			c.failCache = make(map[failKey]*failMemo)
		}
		c.failCache[k] = m
	}
	m.global = c.epoch
	for i, r := range c.Racks {
		m.racks[i] = r.epoch
	}
}

// rackFeasible decides, from this rack's free state alone, whether a
// packed- or rack-level search could succeed using only this rack. This is
// exact, not conservative:
//   - rack level succeeds iff some rack holds n free GPUs in total (the
//     gather walk collects every free GPU in the rack), and any server with
//     n free implies its rack has n free, so the single-server best-fit
//     adds no extra feasible case;
//   - packed level succeeds iff some server fits the gang whole, or some
//     rack can supply n GPUs from at most ceil(n/GPUsPerServer) servers —
//     the countGather walk reproduces the search's own server order.
func rackFeasible(r *Rack, n int, level Locality) bool {
	if r.free < n {
		return false
	}
	if level == LocalityRack {
		return true
	}
	per := r.SKU.GPUsPerServer
	if n <= per {
		for f := n; f <= per; f++ {
			if anyBit(r.buckets[f]) {
				return true // single-server fit
			}
		}
	}
	rem, used := r.countGather(n)
	return rem == 0 && used <= (n+per-1)/per
}

// anyBit reports whether any bit is set.
func anyBit(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return true
		}
	}
	return false
}
