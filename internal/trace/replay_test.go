package trace

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"philly/internal/cluster"
	"philly/internal/core"
	"philly/internal/federation"
	"philly/internal/simulation"
	"philly/internal/stats"
	"philly/internal/workload"
)

// replayConfig is the generative study configuration the replay tests
// reproduce: small and quick, but with real failure/retry structure.
func replayConfig() core.Config {
	cfg := core.SmallConfig()
	cfg.Workload.TotalJobs = 400
	cfg.Workload.Duration = cfg.Workload.Duration / 4
	cfg.Seed = 21
	return cfg
}

// generateSpecs regenerates the exact planned job stream core.NewStudy
// would build for cfg (same stream derivation).
func generateSpecs(t *testing.T, cfg core.Config) []workload.JobSpec {
	t.Helper()
	g := stats.NewRNG(cfg.Seed).Split("workload")
	gen, err := workload.NewGenerator(cfg.Workload, g)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate(g)
}

func replayOptsFor(cfg core.Config) ReplayOptions {
	return ReplayOptions{Seed: cfg.Seed, Failures: cfg.Workload.Failures}
}

// TestSpecsCSVRoundTripExact is the spec schema's contract: write → read
// reproduces every JobSpec bit-exactly, failure plans and training
// structure included.
func TestSpecsCSVRoundTripExact(t *testing.T) {
	cfg := replayConfig()
	specs := generateSpecs(t, cfg)
	var buf bytes.Buffer
	if err := WriteSpecsCSV(&buf, specs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf, replayOptsFor(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, specs) {
		for i := range specs {
			if i < len(got) && !reflect.DeepEqual(got[i], specs[i]) {
				t.Fatalf("first diverging spec %d:\n%+v\nvs\n%+v", specs[i].ID, got[i], specs[i])
			}
		}
		t.Fatalf("round trip lost jobs: %d vs %d", len(got), len(specs))
	}
}

// TestReplayReproducesGeneratorStudy is the tentpole acceptance bar:
// replaying a philly-trace-generated trace (through the CSV round trip)
// produces a study bit-identical to the generator study — every job
// record, every telemetry float, every scheduler counter.
func TestReplayReproducesGeneratorStudy(t *testing.T) {
	cfg := replayConfig()
	st, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}

	specs := generateSpecs(t, cfg)
	var buf bytes.Buffer
	if err := WriteSpecsCSV(&buf, specs); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTraceCSV(&buf, replayOptsFor(cfg))
	if err != nil {
		t.Fatal(err)
	}

	rcfg := replayConfig()
	rcfg.Workload.Replay = loaded
	rst, err := core.NewStudy(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rst.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Config differs by construction (Replay is set); everything the
	// simulation produced must match exactly.
	if !reflect.DeepEqual(want.Jobs, got.Jobs) {
		for i := range want.Jobs {
			if i < len(got.Jobs) && !reflect.DeepEqual(want.Jobs[i], got.Jobs[i]) {
				t.Fatalf("first diverging job %d:\n%+v\nvs\n%+v",
					want.Jobs[i].Spec.ID, want.Jobs[i], got.Jobs[i])
			}
		}
		t.Fatal("job populations differ")
	}
	if !reflect.DeepEqual(want.Telemetry, got.Telemetry) {
		t.Error("telemetry diverged under replay")
	}
	if want.Sched != got.Sched {
		t.Errorf("scheduler stats diverged: %+v vs %+v", want.Sched, got.Sched)
	}
	if want.SimEnd != got.SimEnd {
		t.Errorf("SimEnd diverged: %v vs %v", want.SimEnd, got.SimEnd)
	}
	if !reflect.DeepEqual(want.OccupancySamples, got.OccupancySamples) {
		t.Error("occupancy series diverged under replay")
	}
}

// TestObservedCSVReplayable checks the unified reader's second schema: a
// post-simulation jobs.csv export loads into a spec stream that a study
// accepts.
func TestObservedCSVReplayable(t *testing.T) {
	cfg := replayConfig()
	tr := FromStudy(runStudy(t, cfg))
	var buf bytes.Buffer
	if err := tr.WriteJobsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	specs, err := ReadTraceCSV(&buf, replayOptsFor(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(tr.Jobs) {
		t.Fatalf("reconstructed %d specs from %d records", len(specs), len(tr.Jobs))
	}
	rcfg := replayConfig()
	if err := ApplyReplay(&rcfg, specs); err != nil {
		t.Fatal(err)
	}
	if err := rcfg.Workload.Validate(); err != nil {
		t.Fatalf("reconstructed stream fails study validation: %v", err)
	}
	for i := range specs {
		rec, spec := &tr.Jobs[i], &specs[i]
		if spec.ID != rec.JobID || spec.VC != rec.VC || spec.GPUs != rec.GPUs {
			t.Fatalf("spec %d does not match its record: %+v vs %+v", i, spec, rec)
		}
		if spec.Plan.Outcome.String() != rec.Status {
			t.Fatalf("job %d outcome %v, record %s", spec.ID, spec.Plan.Outcome, rec.Status)
		}
		if rec.Status == "Unsuccessful" && len(spec.Plan.FailedAttempts) != rec.Retries+1 {
			t.Fatalf("job %d reconstructed %d failed attempts, want %d",
				spec.ID, len(spec.Plan.FailedAttempts), rec.Retries+1)
		}
	}
}

func runStudy(t *testing.T, cfg core.Config) *core.StudyResult {
	t.Helper()
	st, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReadTraceCSVRejectsForeignHeaders(t *testing.T) {
	opts := DefaultReplayOptions()
	// Reordered job header: same names, wrong order.
	reordered := append([]string(nil), jobHeader...)
	reordered[0], reordered[1] = reordered[1], reordered[0]
	if _, err := ReadTraceCSV(strings.NewReader(strings.Join(reordered, ",")+"\n"), opts); err == nil {
		t.Error("want error for reordered header")
	}
	if _, err := ReadTraceCSV(strings.NewReader("a,b,c\n1,2,3\n"), opts); err == nil {
		t.Error("want error for unknown header")
	}
	if _, err := ReadTraceCSV(strings.NewReader(""), opts); err == nil {
		t.Error("want error for empty input")
	}
	// Spec header with no rows.
	if _, err := ReadTraceCSV(strings.NewReader(strings.Join(specHeader, ",")+"\n"), opts); err == nil {
		t.Error("want error for a spec csv with no jobs")
	}
	// Malformed spec rows must error, never panic.
	header := strings.Join(specHeader, ",") + "\n"
	bad := []string{
		header + "x,vc1,u,1,0,5,Passed,1,1,1,1,0,0,\n",              // bad id
		header + "1,vc1,u,1,0,5,Sideways,1,1,1,1,0,0,\n",            // bad outcome
		header + "1,vc1,u,1,0,5,Passed,1,1,1,1,0,7,\n",              // bad logs flag
		header + "1,vc1,u,1,0,5,Passed,1,1,1,1,0,0,nope\n",          // bad attempt encoding
		header + "1,vc1,u,1,0,5,Passed,1,1,1,1,0,0,bogus_code@3\n",  // unknown reason
		header + "1,vc1,u,1,0,5,Passed,1,1,1,1,0,0\n",               // short row
	}
	for i, in := range bad {
		if _, err := ReadTraceCSV(strings.NewReader(in), opts); err == nil {
			t.Errorf("malformed spec row case %d accepted", i)
		}
	}
}

func TestSpecsFromRecordsSemantics(t *testing.T) {
	opts := DefaultReplayOptions()
	recs := []JobRecord{
		{JobID: 1, VC: "vc1", User: "u1", GPUs: 2, SubmitMin: 0, Status: "Passed", RunMin: 30, Retries: 2, FailureReason: "gpu_oom"},
		{JobID: 2, VC: "vc1", User: "u2", GPUs: 8, SubmitMin: 5, Status: "Killed", RunMin: 90, Retries: 0},
		{JobID: 3, VC: "vc2", User: "u3", GPUs: 1, SubmitMin: 9, Status: "Unsuccessful", RunMin: 40, Retries: 1, FailureReason: "syntax_error"},
	}
	specs, err := SpecsFromRecords(recs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Passed with 2 retries: two transient failed attempts, each a third of
	// the recorded runtime, carrying the recorded reason.
	if n := len(specs[0].Plan.FailedAttempts); n != 2 {
		t.Fatalf("passed job: %d failed attempts, want 2", n)
	}
	if r := specs[0].Plan.FailedAttempts[0].Reason; r == nil || r.Code != "gpu_oom" {
		t.Fatalf("passed job reason = %v, want cuda_oom", r)
	}
	if rtf := specs[0].Plan.FailedAttempts[0].RTFMinutes; rtf != 10 {
		t.Fatalf("per-attempt RTF = %v, want 10", rtf)
	}
	// Killed: kill fraction set, training plan inflated so the kill point
	// lands at the observed runtime.
	if kf := specs[1].Plan.KillFraction; kf != killedReplayFraction {
		t.Fatalf("killed job KillFraction = %v, want %v", kf, killedReplayFraction)
	}
	planned := specs[1].PlannedRuntimeMinutes() * killedReplayFraction
	if planned < 80 || planned > 100 {
		t.Fatalf("killed job kill point %.1f min, want ~90", planned)
	}
	// Unsuccessful with 1 retry: both attempts failed.
	if n := len(specs[2].Plan.FailedAttempts); n != 2 {
		t.Fatalf("unsuccessful job: %d failed attempts, want 2", n)
	}
	// Determinism: same records + options → identical streams.
	again, err := SpecsFromRecords(recs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, again) {
		t.Fatal("reconstruction is not deterministic")
	}

	// Error cases: duplicate id, bad status, zero GPUs, negative values.
	for i, bad := range [][]JobRecord{
		{{JobID: 1, VC: "v", GPUs: 1, Status: "Passed"}, {JobID: 1, VC: "v", GPUs: 1, Status: "Passed"}},
		{{JobID: 1, VC: "v", GPUs: 1, Status: "Exploded"}},
		{{JobID: 1, VC: "v", GPUs: 0, Status: "Passed"}},
		{{JobID: 1, VC: "v", GPUs: 1, Status: "Passed", SubmitMin: -3}},
		{{JobID: 1, VC: "v", GPUs: 1, Status: "Passed", Retries: -1}},
		{},
	} {
		if _, err := SpecsFromRecords(bad, opts); err == nil {
			t.Errorf("bad record case %d accepted", i)
		}
	}
}

const phillySample = `[
 {"status": "Pass", "vc": "vc-a", "jobid": "application_1", "user": "u1",
  "submitted_time": "2017-10-01 08:00:00",
  "attempts": [{"start_time": "2017-10-01 08:05:00", "end_time": "2017-10-01 09:05:00",
                "detail": [{"ip": "m1", "gpus": ["g0", "g1"]}]}]},
 {"status": "Killed", "vc": "vc-b", "jobid": "application_2", "user": "u2",
  "submitted_time": "2017-10-01 09:30:00",
  "attempts": [{"start_time": "2017-10-01 09:31:00", "end_time": "2017-10-01 11:31:00",
                "detail": [{"ip": "m1", "gpus": ["g0"]}, {"ip": "m2", "gpus": ["g0"]}]}]},
 {"status": "Failed", "vc": "vc-a", "jobid": "application_3", "user": "u1",
  "submitted_time": "2017-10-01 10:00:00",
  "attempts": [{"start_time": "2017-10-01 10:10:00", "end_time": "2017-10-01 10:40:00",
                "detail": [{"ip": "m3", "gpus": ["g0"]}]},
               {"start_time": "2017-10-01 10:45:00", "end_time": "2017-10-01 11:15:00",
                "detail": [{"ip": "m3", "gpus": ["g0"]}]}]},
 {"status": "Running", "vc": "vc-a", "jobid": "application_4", "user": "u1",
  "submitted_time": "2017-10-01 11:00:00", "attempts": []},
 {"status": "Pass", "vc": "vc-a", "jobid": "application_5", "user": "u1",
  "submitted_time": "None", "attempts": []}
]`

func TestReadPhillyJSON(t *testing.T) {
	recs, err := ReadPhillyJSON(strings.NewReader(phillySample))
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 4 (no attempts) and 5 (no submit time) are skipped.
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	if recs[0].SubmitMin != 0 {
		t.Errorf("first submission should rebase to 0, got %v", recs[0].SubmitMin)
	}
	if recs[0].Status != "Passed" || recs[1].Status != "Killed" || recs[2].Status != "Unsuccessful" {
		t.Errorf("status mapping wrong: %s/%s/%s", recs[0].Status, recs[1].Status, recs[2].Status)
	}
	if recs[0].GPUs != 2 || recs[1].GPUs != 2 || recs[2].GPUs != 1 {
		t.Errorf("gpu counts wrong: %d/%d/%d", recs[0].GPUs, recs[1].GPUs, recs[2].GPUs)
	}
	if recs[1].SubmitMin != 90 {
		t.Errorf("second job submit = %v min, want 90", recs[1].SubmitMin)
	}
	if recs[2].Retries != 1 || recs[2].RunMin != 60 {
		t.Errorf("failed job retries=%d run=%v, want 1/60", recs[2].Retries, recs[2].RunMin)
	}
	// The parsed records must reconstruct into replayable specs.
	specs, err := SpecsFromRecords(recs, DefaultReplayOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("reconstructed %d specs", len(specs))
	}

	if _, err := ReadPhillyJSON(strings.NewReader("[]")); err == nil {
		t.Error("want error for empty philly trace")
	}
	if _, err := ReadPhillyJSON(strings.NewReader("{}")); err == nil {
		t.Error("want error for non-array philly trace")
	}
}

func TestTransforms(t *testing.T) {
	cfg := replayConfig()
	specs := generateSpecs(t, cfg)
	before := append([]workload.JobSpec(nil), specs...)

	// Identity returns the input untouched.
	id, err := Transform{}.Apply(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(id, specs) {
		t.Fatal("identity transform changed the stream")
	}

	// Rate-scale 2: submissions land at half the original instant;
	// runtimes unchanged.
	fast, err := Transform{RateScale: 2}.Apply(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		want := simulation.Time(float64(specs[i].SubmitAt)/2 + 0.5)
		if fast[i].SubmitAt != want {
			t.Fatalf("job %d submit %v, want %v", fast[i].ID, fast[i].SubmitAt, want)
		}
		if fast[i].Train != specs[i].Train {
			t.Fatalf("rate-scale touched training plan of job %d", fast[i].ID)
		}
	}

	// Time-compress 2: submissions AND runtimes halve.
	comp, err := Transform{TimeCompress: 2}.Apply(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range comp {
		if comp[i].Train.BatchTime != specs[i].Train.BatchTime/2 {
			t.Fatalf("job %d batch time not compressed", comp[i].ID)
		}
		for a := range comp[i].Plan.FailedAttempts {
			if comp[i].Plan.FailedAttempts[a].RTFMinutes != specs[i].Plan.FailedAttempts[a].RTFMinutes/2 {
				t.Fatalf("job %d attempt %d RTF not compressed", comp[i].ID, a)
			}
		}
	}

	// Mix-shift: all sizes drawn from the given support, deterministically.
	mix, err := Transform{MixShift: map[int]float64{2: 0.5, 16: 0.5}, Seed: 3}.Apply(specs)
	if err != nil {
		t.Fatal(err)
	}
	saw := map[int]int{}
	for i := range mix {
		if mix[i].GPUs != 2 && mix[i].GPUs != 16 {
			t.Fatalf("job %d resampled to %d GPUs, outside the mix", mix[i].ID, mix[i].GPUs)
		}
		saw[mix[i].GPUs]++
	}
	if saw[2] == 0 || saw[16] == 0 {
		t.Fatalf("mix-shift degenerate: %v", saw)
	}
	mix2, err := Transform{MixShift: map[int]float64{2: 0.5, 16: 0.5}, Seed: 3}.Apply(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mix, mix2) {
		t.Fatal("mix-shift draws are not deterministic")
	}

	// The input stream must never be mutated by any transform.
	if !reflect.DeepEqual(specs, before) {
		t.Fatal("a transform mutated its input")
	}

	// Invalid parameters.
	if _, err := (Transform{RateScale: -1}).Apply(specs); err == nil {
		t.Error("want error for negative rate scale")
	}
	if _, err := (Transform{MixShift: map[int]float64{0: 1}}).Apply(specs); err == nil {
		t.Error("want error for non-positive mix size")
	}
	if _, err := (Transform{MixShift: map[int]float64{2: 0}}).Apply(specs); err == nil {
		t.Error("want error for zero-mass mix")
	}
}

func TestApplyReplay(t *testing.T) {
	cfg := replayConfig()
	specs := generateSpecs(t, cfg)
	// Rename one job's VC to something the config lacks.
	specs = append([]workload.JobSpec(nil), specs...)
	specs[0].VC = "foreign-vc"
	specs[0].GPUs = 16

	if err := ApplyReplay(&cfg, specs); err != nil {
		t.Fatal(err)
	}
	if cfg.Workload.TotalJobs != len(specs) {
		t.Errorf("TotalJobs = %d, want %d", cfg.Workload.TotalJobs, len(specs))
	}
	if cfg.Workload.Duration%simulation.Day != 0 || cfg.Workload.Duration <= 0 {
		t.Errorf("Duration %v is not a whole positive day count", cfg.Workload.Duration)
	}
	var maxSubmit simulation.Time
	for i := range specs {
		if specs[i].SubmitAt > maxSubmit {
			maxSubmit = specs[i].SubmitAt
		}
	}
	if cfg.Workload.Duration <= maxSubmit {
		t.Errorf("Duration %v does not cover last submission %v", cfg.Workload.Duration, maxSubmit)
	}
	found := false
	for _, vc := range cfg.Workload.VCs {
		if vc.Name == "foreign-vc" {
			found = true
			if vc.QuotaGPUs < 16 {
				t.Errorf("appended VC quota %d cannot hold its widest job (16)", vc.QuotaGPUs)
			}
		}
	}
	if !found {
		t.Error("foreign VC was not appended to the configuration")
	}
	if err := cfg.Workload.Validate(); err != nil {
		t.Errorf("ApplyReplay produced an invalid workload: %v", err)
	}
	if err := ApplyReplay(&cfg, nil); err == nil {
		t.Error("want error for empty replay stream")
	}
}

// TestFederatedExportSkipsOffloadedShells is the satellite regression: a
// federated study's per-member exports must contain each logical job at
// most once — the donor's offloaded bookkeeping shell is not a trace
// record; the receiving member's injected copy is.
func TestFederatedExportSkipsOffloadedShells(t *testing.T) {
	fcfg := federation.Config{
		Members: []federation.Member{
			{Name: "tight", Config: tightMember(31, 4, 260)},
			{Name: "roomy", Config: tightMember(32, 14, 120)},
		},
		Spillover: federation.Spillover{
			Enabled:          true,
			MinWait:          10 * simulation.Minute,
			Interval:         10 * simulation.Minute,
			MaxMovesPerCheck: 8,
		},
	}
	st, err := federation.NewStudy(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.SpilloverMoves == 0 {
		t.Fatal("no spillover happened; the regression has no teeth")
	}
	for _, m := range res.Members {
		shells := 0
		want := 0
		for i := range m.Result.Jobs {
			j := &m.Result.Jobs[i]
			if j.Offloaded {
				shells++
			}
			if j.Completed && !j.Offloaded {
				want++
			}
		}
		tr := FromStudy(m.Result)
		if len(tr.Jobs) != want {
			t.Fatalf("member %s exported %d jobs, want %d (completed, non-offloaded; %d shells present)",
				m.Name, len(tr.Jobs), want, shells)
		}
		for _, rec := range tr.Jobs {
			for i := range m.Result.Jobs {
				j := &m.Result.Jobs[i]
				if j.Spec.ID == rec.JobID && j.Offloaded {
					t.Fatalf("member %s exported offloaded shell %d", m.Name, rec.JobID)
				}
			}
		}
	}
}

func tightMember(seed uint64, servers8 int, jobs int) core.Config {
	cfg := core.SmallConfig()
	cfg.Seed = seed
	cfg.Cluster = cluster.Config{Racks: []cluster.RackConfig{{Servers: servers8, SKU: cluster.SKU8GPU}}}
	cfg.Workload.TotalJobs = jobs
	cfg.Workload.Duration = 2 * simulation.Day
	return cfg
}

func TestLoadTraceFileDispatch(t *testing.T) {
	cfg := replayConfig()
	specs := generateSpecs(t, cfg)
	opts := replayOptsFor(cfg)
	dir := t.TempDir()

	// Spec CSV.
	csvPath := dir + "/trace.csv"
	writeVia(t, csvPath, func(buf *bytes.Buffer) error { return WriteSpecsCSV(buf, specs) })
	got, err := LoadTraceFile(csvPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, specs) {
		t.Error("csv dispatch lost fidelity")
	}

	// Own JSON export.
	tr := FromStudy(runStudy(t, cfg))
	jsonPath := dir + "/trace.json"
	writeVia(t, jsonPath, func(buf *bytes.Buffer) error { return tr.WriteJSON(buf) })
	got, err = LoadTraceFile(jsonPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr.Jobs) {
		t.Errorf("json dispatch: %d specs from %d records", len(got), len(tr.Jobs))
	}

	// msr-fiddle philly JSON (array form).
	phillyPath := dir + "/philly.json"
	writeVia(t, phillyPath, func(buf *bytes.Buffer) error {
		_, err := buf.WriteString(phillySample)
		return err
	})
	got, err = LoadTraceFile(phillyPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("philly dispatch: %d specs, want 3", len(got))
	}

	if _, err := LoadTraceFile(dir+"/trace.txt", opts); err == nil {
		t.Error("want error for unsupported extension")
	}
	if _, err := LoadTraceFile(dir+"/missing.csv", opts); err == nil {
		t.Error("want error for missing file")
	}
}

func writeVia(t *testing.T, path string, write func(*bytes.Buffer) error) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}
