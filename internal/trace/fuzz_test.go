package trace

import (
	"bytes"
	"testing"
)

// fuzzSpecCSV / fuzzJobCSV are well-formed seeds for both CSV schemas the
// unified reader accepts; the remaining seeds steer the fuzzer toward the
// dispatch and row-validation edges. testdata/fuzz/ carries the same seeds
// as a committed corpus so `go test -fuzz` and plain `go test` both start
// from real trace shapes.
const (
	fuzzSpecCSV = "jobid,vc,user,num_gpus,submitted_time,planned_runtime_min,planned_outcome,epochs,minibatches_per_epoch,batch_time_sec,checkpoint_every_epochs,kill_fraction,logs_convergence,failed_attempts\n" +
		"1,vc-a,u1,2,0.5,100,Passed,10,50,0.12,1,0,1,gpu_oom@10|cuda_failure@5.5\n" +
		"2,vc-b,u2,8,30,90,Killed,12,60,0.05,0,0.9,0,\n" +
		"3,vc-a,u3,1,45,20,Unsuccessful,10,50,0.02,2,0,0,no_signature@4\n"
	fuzzJobCSV = "jobid,vc,user,num_gpus,submitted_time,started_time,finished_time,status,queue_delay,run_time,gpu_time,retries,num_servers,mean_gpu_util,delay_cause,failure_reason\n" +
		"1,vc0,u1,2,0.000,1.000,61.000,Passed,1.000,60.000,120.000,0,1,55.000,none,\n" +
		"2,vc0,u2,4,5.000,9.000,99.000,Failed,4.000,90.000,360.000,1,2,40.000,fair-share,gpu_oom\n"
	fuzzPhillyJSON = `[{"status":"Pass","vc":"vc1","jobid":"app1","user":"u1","submitted_time":"2017-10-01 00:00:00","attempts":[{"start_time":"2017-10-01 00:05:00","end_time":"2017-10-01 01:05:00","detail":[{"ip":"10.0.0.1","gpus":["g0","g1"]}]}]},{"status":"Killed","vc":"vc1","jobid":"app2","user":"u2","submitted_time":"2017-10-01 01:00:00","attempts":[{"start_time":"2017-10-01 01:10:00","end_time":"2017-10-01 02:00:00","detail":[{"ip":"10.0.0.2","gpus":["g0"]}]}]}]`
	fuzzTraceJSON = `{"jobs":[{"jobid":1,"vc":"vc0","user":"u1","num_gpus":2,"submitted_time":0,"started_time":1,"finished_time":61,"status":"Passed","queue_delay":1,"run_time":60,"gpu_time":120,"retries":0,"num_servers":1,"mean_gpu_util":50,"delay_cause":"none"}],"attempts":[]}`
)

// Both fuzz targets share one oracle: any spec stream a reader accepted
// must survive the spec-CSV export unchanged — write it, read it back,
// write it again, and require byte-identical exports. This is the replay
// determinism contract stated as a fixed point: whatever bytes fed the
// reader, the canonical export round-trips exactly.

func FuzzReadTraceCSV(f *testing.F) {
	f.Add([]byte(fuzzSpecCSV))
	f.Add([]byte(fuzzJobCSV))
	f.Add([]byte("foo,bar\n1,2\n"))
	f.Add([]byte(fuzzSpecCSV[:bytes.IndexByte([]byte(fuzzSpecCSV), '\n')+1])) // header, no rows
	f.Add([]byte("jobid,vc,user,num_gpus,submitted_time,planned_runtime_min,planned_outcome,epochs,minibatches_per_epoch,batch_time_sec,checkpoint_every_epochs,kill_fraction,logs_convergence,failed_attempts\n1,vc,u,2,NaN,1,Passed,1,1,bogus,1,0,2,x@y\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		opts := DefaultReplayOptions()
		specs, err := ReadTraceCSV(bytes.NewReader(data), opts)
		if err != nil {
			return // rejected input; only panics and broken accepts are bugs
		}
		if len(specs) == 0 {
			t.Fatal("reader accepted input but returned no specs")
		}
		var w1 bytes.Buffer
		if err := WriteSpecsCSV(&w1, specs); err != nil {
			t.Fatalf("exporting accepted specs failed: %v", err)
		}
		specs2, err := ReadTraceCSV(bytes.NewReader(w1.Bytes()), opts)
		if err != nil {
			t.Fatalf("re-reading our own spec export failed: %v\nexport:\n%s", err, w1.String())
		}
		var w2 bytes.Buffer
		if err := WriteSpecsCSV(&w2, specs2); err != nil {
			t.Fatalf("re-exporting failed: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("spec export is not a fixed point:\nfirst:\n%s\nsecond:\n%s", w1.String(), w2.String())
		}
	})
}

func FuzzReadTraceJSON(f *testing.F) {
	f.Add([]byte(fuzzPhillyJSON))
	f.Add([]byte(fuzzTraceJSON))
	f.Add([]byte("{not json"))
	f.Add([]byte("[]"))
	f.Add([]byte(`{"jobs":[],"attempts":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		opts := DefaultReplayOptions()
		specs, err := readTraceJSON(bytes.NewReader(data), opts)
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatal("reader accepted json but returned no specs")
		}
		// A JSON-loaded stream must satisfy the same export fixed point as a
		// CSV-loaded one: the two frontends feed the identical replay engine.
		var w1 bytes.Buffer
		if err := WriteSpecsCSV(&w1, specs); err != nil {
			t.Fatalf("exporting accepted specs failed: %v", err)
		}
		specs2, err := ReadTraceCSV(bytes.NewReader(w1.Bytes()), opts)
		if err != nil {
			t.Fatalf("re-reading our own spec export failed: %v\nexport:\n%s", err, w1.String())
		}
		var w2 bytes.Buffer
		if err := WriteSpecsCSV(&w2, specs2); err != nil {
			t.Fatalf("re-exporting failed: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("spec export is not a fixed point:\nfirst:\n%s\nsecond:\n%s", w1.String(), w2.String())
		}
	})
}
