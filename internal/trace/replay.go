// Replay: the read-side of the trace pipeline. Three input families feed
// one output — a []workload.JobSpec stream a study can run verbatim:
//
//   - spec CSV: the full-fidelity planned-job table philly-trace generates
//     (every JobSpec field round-trips bit-exactly, so replaying an export
//     reproduces the generator study's job population exactly);
//   - observed CSV/JSON: the post-simulation Philly-traces-style exports
//     this package writes (WriteJobsCSV / WriteJSON), reconstructed into
//     approximate specs;
//   - msr-fiddle Philly JSON: the paper authors' published cluster_job_log
//     format (github.com/msr-fiddle/philly-traces).
//
// What-if transforms (rate-scale, time-compress, mix-shift) apply uniformly
// to any loaded stream. All reconstruction draws come from per-job streams
// derived statelessly from (seed, "replay-train", jobID), so a loaded trace
// is a pure function of (file bytes, options) — replay studies inherit the
// repository's bit-identical determinism for every worker count.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"philly/internal/core"
	"philly/internal/failures"
	"philly/internal/simulation"
	"philly/internal/stats"
	"philly/internal/workload"
)

// specHeader is the full-fidelity planned-trace schema philly-trace writes.
// It extends the original 7-column generate schema (jobid..planned_outcome)
// with the training structure and failure plan, so a generated trace can be
// replayed into a bit-identical study.
var specHeader = []string{
	"jobid", "vc", "user", "num_gpus", "submitted_time",
	"planned_runtime_min", "planned_outcome", "epochs",
	"minibatches_per_epoch", "batch_time_sec", "checkpoint_every_epochs",
	"kill_fraction", "logs_convergence", "failed_attempts",
}

// fmtExact formats a float so that parsing it back yields the identical
// bits — the spec schema's round-trip guarantee rests on it.
func fmtExact(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteSpecsCSV writes planned job specs in the spec schema.
func WriteSpecsCSV(w io.Writer, specs []workload.JobSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(specHeader); err != nil {
		return fmt.Errorf("trace: write spec header: %w", err)
	}
	for i := range specs {
		j := &specs[i]
		conv := "0"
		if j.LogsConvergence {
			conv = "1"
		}
		var fa strings.Builder
		for a, ap := range j.Plan.FailedAttempts {
			if a > 0 {
				fa.WriteByte('|')
			}
			code := CodeOf(ap.Reason)
			fa.WriteString(code)
			fa.WriteByte('@')
			fa.WriteString(fmtExact(ap.RTFMinutes))
		}
		rec := []string{
			strconv.FormatInt(j.ID, 10), j.VC, j.User, strconv.Itoa(j.GPUs),
			fmtExact(j.SubmitAt.Minutes()),
			fmtExact(j.PlannedRuntimeMinutes()),
			j.Plan.Outcome.String(),
			strconv.Itoa(j.Train.Epochs),
			strconv.Itoa(j.Train.MinibatchesPerEpoch),
			fmtExact(j.Train.BatchTime),
			strconv.Itoa(j.Train.CheckpointEveryEpochs),
			fmtExact(j.Plan.KillFraction),
			conv,
			fa.String(),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write spec %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// CodeOf returns a failure reason's code ("" for nil).
func CodeOf(r *failures.Reason) string {
	if r == nil {
		return ""
	}
	return r.Code
}

// ReplayOptions parameterize trace-to-spec reconstruction.
type ReplayOptions struct {
	// Seed keys the per-job reconstruction streams (training structure for
	// observed traces, mix-shift draws). Derivations are stateless per job,
	// so the loaded stream never depends on read order.
	Seed uint64
	// Failures resolves serialized reason codes; it should match the study
	// configuration the specs will run under so reconstructed Reason values
	// equal freshly planned ones.
	Failures failures.PlannerConfig
}

// DefaultReplayOptions returns options matching workload.DefaultConfig.
func DefaultReplayOptions() ReplayOptions {
	return ReplayOptions{Seed: 1, Failures: failures.DefaultPlannerConfig()}
}

// outcomeFromString inverts failures.Outcome.String; it also accepts the
// msr-fiddle status vocabulary ("Pass", "Failed").
func outcomeFromString(s string) (failures.Outcome, error) {
	switch s {
	case "Passed", "Pass":
		return failures.Passed, nil
	case "Killed":
		return failures.Killed, nil
	case "Unsuccessful", "Failed":
		return failures.Unsuccessful, nil
	}
	return 0, fmt.Errorf("unknown outcome %q", s)
}

// ReadTraceCSV is the unified CSV replay reader: it accepts both trace CSV
// schemas — the planned spec table philly-trace generates (reconstructed
// bit-exactly) and the observed job table WriteJobsCSV exports
// (reconstructed approximately) — selecting by header.
func ReadTraceCSV(r io.Reader, opts ReplayOptions) ([]workload.JobSpec, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // row widths validated per schema, with row numbers
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	switch {
	case headerMatches(rows[0], specHeader):
		return parseSpecRows(rows[1:], opts)
	case headerMatches(rows[0], jobHeader):
		recs, err := parseJobRows(rows[1:])
		if err != nil {
			return nil, err
		}
		return SpecsFromRecords(recs, opts)
	}
	return nil, fmt.Errorf("trace: unrecognized csv header %q (want the spec schema %q or the job schema %q)",
		strings.Join(rows[0], ","), strings.Join(specHeader, ","), strings.Join(jobHeader, ","))
}

func headerMatches(row, want []string) bool {
	if len(row) != len(want) {
		return false
	}
	for i := range row {
		if strings.TrimSpace(row[i]) != want[i] {
			return false
		}
	}
	return true
}

// specCols indexes specHeader by name once; parseSpecRow uses it so the
// parser reads columns by name, never by magic position.
var specCols = func() map[string]int {
	m := make(map[string]int, len(specHeader))
	for i, name := range specHeader {
		m[name] = i
	}
	return m
}()

func parseSpecRows(rows [][]string, opts ReplayOptions) ([]workload.JobSpec, error) {
	planner, err := failures.NewPlanner(opts.Failures)
	if err != nil {
		return nil, fmt.Errorf("trace: replay failures config: %w", err)
	}
	specs := make([]workload.JobSpec, 0, len(rows))
	for i, row := range rows {
		spec, err := parseSpecRow(row, planner)
		if err != nil {
			return nil, fmt.Errorf("trace: spec row %d: %w", i+1, err)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("trace: spec csv has a header but no jobs")
	}
	return specs, nil
}

func parseSpecRow(row []string, planner *failures.Planner) (workload.JobSpec, error) {
	var spec workload.JobSpec
	if len(row) != len(specHeader) {
		return spec, fmt.Errorf("have %d columns, want %d", len(row), len(specHeader))
	}
	col := func(name string) string { return row[specCols[name]] }
	var err error
	if spec.ID, err = strconv.ParseInt(col("jobid"), 10, 64); err != nil {
		return spec, fmt.Errorf("jobid: %w", err)
	}
	spec.VC, spec.User = col("vc"), col("user")
	if spec.GPUs, err = strconv.Atoi(col("num_gpus")); err != nil {
		return spec, fmt.Errorf("num_gpus: %w", err)
	}
	submitMin, err := strconv.ParseFloat(col("submitted_time"), 64)
	if err != nil {
		return spec, fmt.Errorf("submitted_time: %w", err)
	}
	spec.SubmitAt = simulation.FromMinutes(submitMin)
	if spec.Plan.Outcome, err = outcomeFromString(col("planned_outcome")); err != nil {
		return spec, fmt.Errorf("planned_outcome: %w", err)
	}
	if spec.Train.Epochs, err = strconv.Atoi(col("epochs")); err != nil {
		return spec, fmt.Errorf("epochs: %w", err)
	}
	if spec.Train.MinibatchesPerEpoch, err = strconv.Atoi(col("minibatches_per_epoch")); err != nil {
		return spec, fmt.Errorf("minibatches_per_epoch: %w", err)
	}
	if spec.Train.BatchTime, err = strconv.ParseFloat(col("batch_time_sec"), 64); err != nil {
		return spec, fmt.Errorf("batch_time_sec: %w", err)
	}
	if spec.Train.CheckpointEveryEpochs, err = strconv.Atoi(col("checkpoint_every_epochs")); err != nil {
		return spec, fmt.Errorf("checkpoint_every_epochs: %w", err)
	}
	if spec.Plan.KillFraction, err = strconv.ParseFloat(col("kill_fraction"), 64); err != nil {
		return spec, fmt.Errorf("kill_fraction: %w", err)
	}
	switch col("logs_convergence") {
	case "1":
		spec.LogsConvergence = true
	case "0":
		spec.LogsConvergence = false
	default:
		return spec, fmt.Errorf("logs_convergence: want 0 or 1, got %q", col("logs_convergence"))
	}
	if fa := col("failed_attempts"); fa != "" {
		for _, part := range strings.Split(fa, "|") {
			code, rtfStr, ok := strings.Cut(part, "@")
			if !ok {
				return spec, fmt.Errorf("failed_attempts: entry %q is not code@rtf", part)
			}
			reason := planner.ReasonByCode(code)
			if reason == nil {
				return spec, fmt.Errorf("failed_attempts: unknown reason code %q", code)
			}
			rtf, err := strconv.ParseFloat(rtfStr, 64)
			if err != nil {
				return spec, fmt.Errorf("failed_attempts: rtf %q: %w", rtfStr, err)
			}
			spec.Plan.FailedAttempts = append(spec.Plan.FailedAttempts,
				failures.AttemptPlan{Reason: reason, RTFMinutes: rtf})
		}
	}
	return spec, nil
}

// killedReplayFraction is the kill point replayed killed jobs use: the
// training plan is inflated by 1/fraction so the kill fires at exactly the
// observed runtime, comfortably before natural completion.
const killedReplayFraction = 0.9

// minReplayRuntimeMin floors reconstructed per-attempt runtimes so traces
// recording zero-length jobs still yield valid training plans.
const minReplayRuntimeMin = 0.05

// SpecsFromRecords reconstructs planned job specs from observed trace
// records (the WriteJobsCSV / WriteJSON job table). The reconstruction is
// necessarily approximate — an observed trace does not record the training
// structure or per-attempt split — and deterministic: runtime is divided
// evenly across the recorded attempts, and the epoch/minibatch shape is
// drawn from a per-job stream keyed (Seed, "replay-train", jobID).
func SpecsFromRecords(recs []JobRecord, opts ReplayOptions) ([]workload.JobSpec, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: no job records to replay")
	}
	planner, err := failures.NewPlanner(opts.Failures)
	if err != nil {
		return nil, fmt.Errorf("trace: replay failures config: %w", err)
	}
	noSig := planner.ReasonByCode(failures.CodeNoSignature)
	var g stats.RNG
	specs := make([]workload.JobSpec, 0, len(recs))
	seen := make(map[int64]bool, len(recs))
	for i := range recs {
		rec := &recs[i]
		outcome, err := outcomeFromString(rec.Status)
		if err != nil {
			return nil, fmt.Errorf("trace: job %d: %w", rec.JobID, err)
		}
		id := rec.JobID
		if id <= 0 || seen[id] {
			return nil, fmt.Errorf("trace: job record %d has invalid or duplicate id %d", i, id)
		}
		seen[id] = true
		gpus := rec.GPUs
		if gpus < 1 {
			return nil, fmt.Errorf("trace: job %d requests %d GPUs", id, gpus)
		}
		if rec.SubmitMin < 0 {
			return nil, fmt.Errorf("trace: job %d submits at %v min", id, rec.SubmitMin)
		}
		retries := rec.Retries
		if retries < 0 {
			return nil, fmt.Errorf("trace: job %d has %d retries", id, retries)
		}
		attempts := retries + 1
		perAttemptMin := rec.RunMin / float64(attempts)
		if perAttemptMin < minReplayRuntimeMin {
			perAttemptMin = minReplayRuntimeMin
		}
		reason := noSig
		if rec.FailureReason != "" {
			if r := planner.ReasonByCode(rec.FailureReason); r != nil {
				reason = r
			}
		}
		plan := failures.JobPlan{Outcome: outcome}
		idealMin := perAttemptMin
		switch outcome {
		case failures.Unsuccessful:
			// All recorded attempts failed.
			for a := 0; a < attempts; a++ {
				plan.FailedAttempts = append(plan.FailedAttempts,
					failures.AttemptPlan{Reason: reason, RTFMinutes: perAttemptMin})
			}
		default:
			// Retries were transient failures; the final attempt ran clean.
			for a := 0; a < retries; a++ {
				plan.FailedAttempts = append(plan.FailedAttempts,
					failures.AttemptPlan{Reason: reason, RTFMinutes: perAttemptMin})
			}
			if outcome == failures.Killed {
				plan.KillFraction = killedReplayFraction
				idealMin = perAttemptMin / killedReplayFraction
			}
		}
		g.Init(stats.DeriveEntitySeed(opts.Seed, "replay-train", uint64(id)))
		specs = append(specs, workload.JobSpec{
			ID:       id,
			VC:       rec.VC,
			User:     rec.User,
			GPUs:     gpus,
			SubmitAt: simulation.FromMinutes(rec.SubmitMin),
			Train:    workload.TrainingPlanFor(idealMin, &g),
			Plan:     plan,
		})
	}
	return specs, nil
}

// phillyJob mirrors one record of the msr-fiddle philly-traces
// cluster_job_log.json format.
type phillyJob struct {
	Status        string `json:"status"`
	VC            string `json:"vc"`
	JobID         string `json:"jobid"`
	User          string `json:"user"`
	SubmittedTime string `json:"submitted_time"`
	Attempts      []struct {
		StartTime string `json:"start_time"`
		EndTime   string `json:"end_time"`
		Detail    []struct {
			IP   string   `json:"ip"`
			GPUs []string `json:"gpus"`
		} `json:"detail"`
	} `json:"attempts"`
}

const phillyTimeLayout = "2006-01-02 15:04:05"

// ReadPhillyJSON parses the paper authors' published trace format — a JSON
// array of job records with wall-clock timestamps and per-attempt placement
// detail — into observed job records with times rebased to minutes since
// the earliest submission. Records without a parseable submission time, a
// recognized status, or any completed attempt with GPUs are skipped (the
// published trace contains jobs still running at collection end).
func ReadPhillyJSON(r io.Reader) ([]JobRecord, error) {
	var jobs []phillyJob
	if err := json.NewDecoder(r).Decode(&jobs); err != nil {
		return nil, fmt.Errorf("trace: decode philly json: %w", err)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("trace: philly trace has no jobs")
	}
	type parsed struct {
		job      *phillyJob
		submit   time.Time
		status   string
		gpus     int
		runMin   float64
		retries  int
		startMin float64
		endMin   float64
	}
	var out []parsed
	var t0 time.Time
	for i := range jobs {
		j := &jobs[i]
		submit, err := time.Parse(phillyTimeLayout, j.SubmittedTime)
		if err != nil {
			continue
		}
		outcome, err := outcomeFromString(j.Status)
		if err != nil {
			continue
		}
		gpus, runSec := 0, 0.0
		completed := 0
		var firstStart, lastEnd time.Time
		for _, a := range j.Attempts {
			start, err1 := time.Parse(phillyTimeLayout, a.StartTime)
			end, err2 := time.Parse(phillyTimeLayout, a.EndTime)
			if err1 != nil || err2 != nil || end.Before(start) {
				continue
			}
			n := 0
			for _, d := range a.Detail {
				n += len(d.GPUs)
			}
			if n == 0 {
				continue
			}
			if n > gpus {
				gpus = n
			}
			if completed == 0 || start.Before(firstStart) {
				firstStart = start
			}
			if end.After(lastEnd) {
				lastEnd = end
			}
			runSec += end.Sub(start).Seconds()
			completed++
		}
		if completed == 0 || gpus == 0 {
			continue
		}
		if t0.IsZero() || submit.Before(t0) {
			t0 = submit
		}
		out = append(out, parsed{
			job: j, submit: submit, status: outcome.String(), gpus: gpus,
			runMin: runSec / 60, retries: completed - 1,
			startMin: firstStart.Sub(submit).Minutes(), endMin: lastEnd.Sub(submit).Minutes(),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: philly trace has no replayable jobs")
	}
	recs := make([]JobRecord, 0, len(out))
	for i := range out {
		p := &out[i]
		submitMin := p.submit.Sub(t0).Minutes()
		recs = append(recs, JobRecord{
			JobID:     int64(i + 1),
			VC:        p.job.VC,
			User:      p.job.User,
			GPUs:      p.gpus,
			SubmitMin: submitMin,
			StartMin:  submitMin + p.startMin,
			EndMin:    submitMin + p.endMin,
			Status:    p.status,
			RunMin:    p.runMin,
			GPUMin:    p.runMin * float64(p.gpus),
			Retries:   p.retries,
		})
	}
	return recs, nil
}

// Transform is a deterministic what-if rewrite of a loaded trace.
type Transform struct {
	// RateScale multiplies the arrival rate: submission instants divide by
	// it, runtimes are unchanged. 1 (or 0) is the identity.
	RateScale float64
	// TimeCompress divides the whole timeline — submission instants AND
	// runtimes — modelling the same workload on proportionally faster
	// hardware. 1 (or 0) is the identity.
	TimeCompress float64
	// MixShift, when non-nil, resamples each job's GPU count from these
	// size weights via a per-job stream keyed (Seed, "mix-shift", jobID).
	MixShift map[int]float64
	// Seed keys the MixShift draws.
	Seed uint64
}

// identity reports whether the transform changes nothing.
func (t Transform) identity() bool {
	return (t.RateScale == 0 || t.RateScale == 1) &&
		(t.TimeCompress == 0 || t.TimeCompress == 1) && t.MixShift == nil
}

// Apply rewrites specs (returning a fresh slice; the input is not mutated).
func (t Transform) Apply(specs []workload.JobSpec) ([]workload.JobSpec, error) {
	if t.RateScale < 0 || t.TimeCompress < 0 {
		return nil, fmt.Errorf("trace: transform factors must be positive, got rate=%v compress=%v",
			t.RateScale, t.TimeCompress)
	}
	if t.identity() {
		return specs, nil
	}
	var sizeVals []int
	var sizeCat *stats.Categorical
	if t.MixShift != nil {
		for size, w := range t.MixShift {
			if size <= 0 || w < 0 {
				return nil, fmt.Errorf("trace: mix-shift weight %d:%v invalid", size, w)
			}
			sizeVals = append(sizeVals, size)
		}
		sort.Ints(sizeVals)
		weights := make([]float64, len(sizeVals))
		for i, s := range sizeVals {
			weights[i] = t.MixShift[s]
		}
		var err error
		sizeCat, err = stats.NewCategorical(weights)
		if err != nil {
			return nil, fmt.Errorf("trace: mix-shift weights: %w", err)
		}
	}
	timeDiv := 1.0
	if t.RateScale > 0 {
		timeDiv *= t.RateScale
	}
	if t.TimeCompress > 0 {
		timeDiv *= t.TimeCompress
	}
	var g stats.RNG
	out := make([]workload.JobSpec, len(specs))
	for i := range specs {
		spec := specs[i] // value copy; slices re-made below when touched
		if timeDiv != 1 {
			spec.SubmitAt = simulation.Time(float64(spec.SubmitAt)/timeDiv + 0.5)
		}
		if t.TimeCompress > 0 && t.TimeCompress != 1 {
			spec.Train.BatchTime /= t.TimeCompress
			if len(spec.Plan.FailedAttempts) > 0 {
				fa := append([]failures.AttemptPlan(nil), spec.Plan.FailedAttempts...)
				for a := range fa {
					fa[a].RTFMinutes /= t.TimeCompress
				}
				spec.Plan.FailedAttempts = fa
			}
		}
		if sizeCat != nil {
			g.Init(stats.DeriveEntitySeed(t.Seed, "mix-shift", uint64(spec.ID)))
			spec.GPUs = sizeVals[sizeCat.Sample(&g)]
		}
		out[i] = spec
	}
	return out, nil
}

// ApplyReplay installs a loaded spec stream into a study configuration:
// Workload.Replay is set, TotalJobs and Duration are derived from the
// stream, and VCs observed in the trace but absent from the configuration
// are appended with a quota sized to the VC's widest job — so a foreign
// trace (whose VC names the base config cannot know) runs without manual
// VC surgery. Any configured temporal pattern is cleared: the stream
// already embeds its temporal structure, so replay is the single temporal
// authority (this is what lets the workload.trace sweep axis cross with
// workload.pattern — on replay scenarios the trace wins). The cluster
// topology, scheduler and calibration knobs are untouched.
func ApplyReplay(cfg *core.Config, specs []workload.JobSpec) error {
	if len(specs) == 0 {
		return fmt.Errorf("trace: cannot replay an empty trace")
	}
	cfg.Workload.Pattern = nil
	var maxSubmit simulation.Time
	widest := map[string]int{}
	for i := range specs {
		if specs[i].SubmitAt > maxSubmit {
			maxSubmit = specs[i].SubmitAt
		}
		if specs[i].GPUs > widest[specs[i].VC] {
			widest[specs[i].VC] = specs[i].GPUs
		}
	}
	known := map[string]bool{}
	for _, vc := range cfg.Workload.VCs {
		known[vc.Name] = true
	}
	var missing []string
	for name := range widest {
		if !known[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		quota := 4 * widest[name]
		if quota < 8 {
			quota = 8
		}
		cfg.Workload.VCs = append(cfg.Workload.VCs,
			workload.VirtualCluster{Name: name, QuotaGPUs: quota, LoadFactor: 1})
	}
	cfg.Workload.Replay = specs
	cfg.Workload.TotalJobs = len(specs)
	// Round the window up to the next whole day past the last submission so
	// HorizonFactor keeps its usual meaning.
	days := maxSubmit/simulation.Day + 1
	cfg.Workload.Duration = days * simulation.Day
	return nil
}

// LoadTraceFile reads a trace file into a replayable spec stream,
// dispatching on content: .csv files go through the unified CSV reader
// (spec or observed schema, by header), .json files are sniffed as either
// this package's Trace export or the msr-fiddle Philly format.
func LoadTraceFile(path string, opts ReplayOptions) ([]workload.JobSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ReadTraceCSV(f, opts)
	case ".json":
		return readTraceJSON(f, opts)
	default:
		return nil, fmt.Errorf("trace: unsupported trace extension %q (want .csv or .json)", ext)
	}
}

// readTraceJSON sniffs the JSON family: a top-level array is the msr-fiddle
// Philly format, a top-level object is this package's Trace export.
func readTraceJSON(r io.Reader, opts ReplayOptions) ([]workload.JobSpec, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: empty json input")
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return nil, err
		}
		switch b {
		case '[':
			recs, err := ReadPhillyJSON(br)
			if err != nil {
				return nil, err
			}
			return SpecsFromRecords(recs, opts)
		case '{':
			t, err := ReadJSON(br)
			if err != nil {
				return nil, err
			}
			if len(t.Jobs) == 0 {
				return nil, fmt.Errorf("trace: json trace has no jobs")
			}
			return SpecsFromRecords(t.Jobs, opts)
		default:
			return nil, fmt.Errorf("trace: unrecognized json trace (want an object export or a philly-traces array)")
		}
	}
}
