// Package trace exports simulated studies in a Philly-traces-like format —
// the paper's authors released their scheduler trace as per-job records with
// submission, placement and status information (https://github.com/
// msr-fiddle/philly-traces); this package writes and reads the analogous
// records for simulated runs, in CSV and JSON.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"philly/internal/core"
)

// JobRecord is one job's trace row. Times are minutes since trace start.
type JobRecord struct {
	JobID     int64   `json:"jobid"`
	VC        string  `json:"vc"`
	User      string  `json:"user"`
	GPUs      int     `json:"num_gpus"`
	SubmitMin float64 `json:"submitted_time"`
	StartMin  float64 `json:"started_time"`
	EndMin    float64 `json:"finished_time"`
	Status    string  `json:"status"`
	// QueueDelayMin is the first-episode queueing delay.
	QueueDelayMin float64 `json:"queue_delay"`
	// RunMin is total time holding GPUs across attempts.
	RunMin float64 `json:"run_time"`
	// GPUMin is RunMin x GPUs (GPU-minutes consumed).
	GPUMin float64 `json:"gpu_time"`
	// Retries is the number of re-executions after failures.
	Retries int `json:"retries"`
	// Servers is the final attempt's server spread.
	Servers int `json:"num_servers"`
	// MeanUtil is mean per-minute GPU utilization.
	MeanUtil float64 `json:"mean_gpu_util"`
	// DelayCause is "none", "fair-share" or "fragmentation".
	DelayCause string `json:"delay_cause"`
	// FailureReason is the log-classified reason of the final failed
	// attempt, if any.
	FailureReason string `json:"failure_reason,omitempty"`
}

// AttemptRecord is one execution attempt.
type AttemptRecord struct {
	JobID      int64   `json:"jobid"`
	Attempt    int     `json:"attempt"`
	StartMin   float64 `json:"start_time"`
	EndMin     float64 `json:"end_time"`
	Servers    int     `json:"num_servers"`
	Colocated  bool    `json:"colocated"`
	CrossRack  bool    `json:"cross_rack"`
	Failed     bool    `json:"failed"`
	Reason     string  `json:"reason,omitempty"`
	RunMinutes float64 `json:"run_minutes"`
}

// Trace is the exported study.
type Trace struct {
	Jobs     []JobRecord     `json:"jobs"`
	Attempts []AttemptRecord `json:"attempts"`
}

// FromStudy converts a study result into trace records. Only completed jobs
// are exported, matching what a real trace collection would contain.
// Offloaded spillover shells are skipped: in a federated study the job also
// appears as a re-ID'd injected copy on the receiving member, and exporting
// both would double-count it (the same shell/copy pair sweep.StreamReducer
// and analysis already deduplicate).
func FromStudy(res *core.StudyResult) *Trace {
	t := &Trace{}
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.Completed || j.Offloaded {
			continue
		}
		rec := JobRecord{
			JobID:         j.Spec.ID,
			VC:            j.Spec.VC,
			User:          j.Spec.User,
			GPUs:          j.Spec.GPUs,
			SubmitMin:     j.Spec.SubmitAt.Minutes(),
			StartMin:      j.FirstStartAt.Minutes(),
			EndMin:        j.EndAt.Minutes(),
			Status:        j.Outcome.String(),
			QueueDelayMin: j.FirstQueueDelay.Minutes(),
			RunMin:        j.RunMinutes,
			GPUMin:        j.GPUMinutes,
			Retries:       j.Retries,
			Servers:       j.LastServers,
			MeanUtil:      j.MeanUtil,
			DelayCause:    j.DelayCause.String(),
		}
		for _, a := range j.Attempts {
			if a.Failed {
				rec.FailureReason = a.ClassifiedReason
			}
			t.Attempts = append(t.Attempts, AttemptRecord{
				JobID:      j.Spec.ID,
				Attempt:    a.Index,
				StartMin:   a.StartAt.Minutes(),
				EndMin:     a.EndAt.Minutes(),
				Servers:    a.Servers,
				Colocated:  a.Colocated,
				CrossRack:  a.CrossRack,
				Failed:     a.Failed,
				Reason:     a.ClassifiedReason,
				RunMinutes: a.RuntimeMinutes,
			})
		}
		t.Jobs = append(t.Jobs, rec)
	}
	return t
}

var jobHeader = []string{
	"jobid", "vc", "user", "num_gpus", "submitted_time", "started_time",
	"finished_time", "status", "queue_delay", "run_time", "gpu_time",
	"retries", "num_servers", "mean_gpu_util", "delay_cause", "failure_reason",
}

// WriteJobsCSV writes the job table.
func (t *Trace) WriteJobsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(jobHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, j := range t.Jobs {
		rec := []string{
			strconv.FormatInt(j.JobID, 10), j.VC, j.User, strconv.Itoa(j.GPUs),
			fmtF(j.SubmitMin), fmtF(j.StartMin), fmtF(j.EndMin), j.Status,
			fmtF(j.QueueDelayMin), fmtF(j.RunMin), fmtF(j.GPUMin),
			strconv.Itoa(j.Retries), strconv.Itoa(j.Servers), fmtF(j.MeanUtil),
			j.DelayCause, j.FailureReason,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write job %d: %w", j.JobID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// ReadJobsCSV parses a job table written by WriteJobsCSV. The header must
// match jobHeader exactly — same names, same order — so a reordered or
// foreign CSV is rejected up front instead of being silently misparsed.
func ReadJobsCSV(r io.Reader) ([]JobRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // row widths checked per row, with row numbers
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if !headerMatches(rows[0], jobHeader) {
		return nil, fmt.Errorf("trace: header %q does not match the job schema %q",
			strings.Join(rows[0], ","), strings.Join(jobHeader, ","))
	}
	return parseJobRows(rows[1:])
}

// jobCols indexes jobHeader by name once; parseJobRow reads columns by
// name, never by magic position.
var jobCols = func() map[string]int {
	m := make(map[string]int, len(jobHeader))
	for i, name := range jobHeader {
		m[name] = i
	}
	return m
}()

func parseJobRows(rows [][]string) ([]JobRecord, error) {
	var out []JobRecord
	for i, row := range rows {
		rec, err := parseJobRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseJobRow(row []string) (JobRecord, error) {
	var rec JobRecord
	if len(row) != len(jobHeader) {
		return rec, fmt.Errorf("have %d columns, want %d", len(row), len(jobHeader))
	}
	col := func(name string) string { return row[jobCols[name]] }
	var err error
	if rec.JobID, err = strconv.ParseInt(col("jobid"), 10, 64); err != nil {
		return rec, fmt.Errorf("jobid: %w", err)
	}
	rec.VC, rec.User = col("vc"), col("user")
	if rec.GPUs, err = strconv.Atoi(col("num_gpus")); err != nil {
		return rec, fmt.Errorf("num_gpus: %w", err)
	}
	floats := []struct {
		name string
		dst  *float64
	}{
		{"submitted_time", &rec.SubmitMin}, {"started_time", &rec.StartMin},
		{"finished_time", &rec.EndMin}, {"queue_delay", &rec.QueueDelayMin},
		{"run_time", &rec.RunMin}, {"gpu_time", &rec.GPUMin},
		{"mean_gpu_util", &rec.MeanUtil},
	}
	for _, f := range floats {
		if *f.dst, err = strconv.ParseFloat(col(f.name), 64); err != nil {
			return rec, fmt.Errorf("%s: %w", f.name, err)
		}
	}
	rec.Status = col("status")
	if rec.Retries, err = strconv.Atoi(col("retries")); err != nil {
		return rec, fmt.Errorf("retries: %w", err)
	}
	if rec.Servers, err = strconv.Atoi(col("num_servers")); err != nil {
		return rec, fmt.Errorf("num_servers: %w", err)
	}
	rec.DelayCause, rec.FailureReason = col("delay_cause"), col("failure_reason")
	return rec, nil
}

// WriteJSON writes the full trace (jobs + attempts) as JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	return &t, nil
}
