package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"philly/internal/core"
)

var (
	once   sync.Once
	result *core.StudyResult
	resErr error
)

func studyResult(t *testing.T) *core.StudyResult {
	t.Helper()
	once.Do(func() {
		cfg := core.SmallConfig()
		cfg.Workload.TotalJobs = 400
		cfg.Workload.Duration = cfg.Workload.Duration / 4
		st, err := core.NewStudy(cfg)
		if err != nil {
			resErr = err
			return
		}
		result, resErr = st.Run()
	})
	if resErr != nil {
		t.Fatal(resErr)
	}
	return result
}

func TestFromStudy(t *testing.T) {
	res := studyResult(t)
	tr := FromStudy(res)
	if len(tr.Jobs) == 0 {
		t.Fatal("no jobs exported")
	}
	completed := 0
	for i := range res.Jobs {
		if res.Jobs[i].Completed {
			completed++
		}
	}
	if len(tr.Jobs) != completed {
		t.Errorf("exported %d jobs, want %d completed", len(tr.Jobs), completed)
	}
	if len(tr.Attempts) < len(tr.Jobs) {
		t.Errorf("attempts (%d) < jobs (%d)", len(tr.Attempts), len(tr.Jobs))
	}
	for _, j := range tr.Jobs {
		if j.Status != "Passed" && j.Status != "Killed" && j.Status != "Unsuccessful" {
			t.Fatalf("job %d bad status %q", j.JobID, j.Status)
		}
		if j.EndMin < j.StartMin || j.StartMin < j.SubmitMin {
			t.Fatalf("job %d time ordering broken", j.JobID)
		}
		if j.Status == "Unsuccessful" && j.FailureReason == "" {
			t.Fatalf("unsuccessful job %d lacks failure reason", j.JobID)
		}
	}
}

func TestJobsCSVRoundTrip(t *testing.T) {
	tr := FromStudy(studyResult(t))
	var buf bytes.Buffer
	if err := tr.WriteJobsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr.Jobs) {
		t.Fatalf("read %d jobs, wrote %d", len(got), len(tr.Jobs))
	}
	for i := range got {
		a, b := got[i], tr.Jobs[i]
		if a.JobID != b.JobID || a.VC != b.VC || a.User != b.User || a.GPUs != b.GPUs ||
			a.Status != b.Status || a.Retries != b.Retries || a.DelayCause != b.DelayCause ||
			a.FailureReason != b.FailureReason {
			t.Fatalf("row %d mismatch:\n%+v\n%+v", i, a, b)
		}
		if diff := a.RunMin - b.RunMin; diff > 0.001 || diff < -0.001 {
			t.Fatalf("row %d RunMin %v vs %v", i, a.RunMin, b.RunMin)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := FromStudy(studyResult(t))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(tr.Jobs) || len(got.Attempts) != len(tr.Attempts) {
		t.Fatalf("round trip lost records: %d/%d jobs, %d/%d attempts",
			len(got.Jobs), len(tr.Jobs), len(got.Attempts), len(tr.Attempts))
	}
	if got.Jobs[0] != tr.Jobs[0] {
		t.Errorf("first job differs: %+v vs %+v", got.Jobs[0], tr.Jobs[0])
	}
}

func TestReadJobsCSVErrors(t *testing.T) {
	if _, err := ReadJobsCSV(strings.NewReader("")); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := ReadJobsCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("want error for wrong header")
	}
	header := strings.Join(jobHeader, ",")
	bad := header + "\nnot-a-number,vc1,u,1,0,0,0,Passed,0,0,0,0,1,0,none,\n"
	if _, err := ReadJobsCSV(strings.NewReader(bad)); err == nil {
		t.Error("want error for bad jobid")
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("want error for invalid json")
	}
}
