package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"philly/internal/core"
)

// Machine-readable sweep output (philly-sweep -o json). The export carries
// everything a CI diff or a plotting hook needs to reproduce the comparison
// table: the per-replica metrics, the per-metric aggregates keyed by column
// name, and each scenario's fully-applied configuration. Metrics that can be
// undefined (a scenario that completed zero jobs has NaN percentiles) encode
// as JSON null and decode back to NaN, since JSON itself has no NaN.

// ExportFormatVersion identifies the JSON layout; consumers should reject
// versions they do not understand.
const ExportFormatVersion = 1

// Export is the serializable form of a Result.
type Export struct {
	FormatVersion int `json:"format_version"`
	Replicas      int `json:"replicas"`
	// AxisNames was added alongside per-axis table columns; it is optional
	// in the format (older exports decode with no axis names and render
	// with the opaque scenario-name column), so the version stays 1.
	AxisNames []string         `json:"axis_names,omitempty"`
	BaseSeed  uint64           `json:"base_seed"`
	Scenarios []ExportScenario `json:"scenarios"`
}

// ExportScenario is one scenario's results.
type ExportScenario struct {
	Index  int      `json:"index"`
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	// Fleet lists a federated scenario's member presets (added with the
	// fleet.members axis; optional in the format, so the version stays 1).
	Fleet    []string             `json:"fleet,omitempty"`
	Config   core.Config          `json:"config"`
	Replicas []ExportReplica      `json:"replicas"`
	Summary  map[string]ExportAgg `json:"summary"`
}

// NFloat is a float64 whose NaN encodes as JSON null.
type NFloat float64

// MarshalJSON encodes NaN as null.
func (f NFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

// UnmarshalJSON decodes null as NaN.
func (f *NFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = NFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = NFloat(v)
	return nil
}

// ExportReplica mirrors ReplicaMetrics with null-safe floats.
type ExportReplica struct {
	Seed            uint64 `json:"seed"`
	Jobs            int    `json:"jobs"`
	Completed       int    `json:"completed"`
	JCTp50          NFloat `json:"jct_p50_min"`
	JCTMean         NFloat `json:"jct_mean_min"`
	DelayP50        NFloat `json:"delay_p50_min"`
	DelayP95        NFloat `json:"delay_p95_min"`
	MeanUtilPct     NFloat `json:"mean_util_pct"`
	Preemptions     int    `json:"preemptions"`
	Migrations      int    `json:"migrations"`
	GPUHours        NFloat `json:"gpu_hours"`
	FailedGPUHours  NFloat `json:"failed_gpu_hours"`
	UnsuccessfulPct NFloat `json:"unsuccessful_pct"`
	// Reliability columns (PR 7); omitted from older exports, which decode
	// as zero — the same value a faults-off run produces — so the format
	// version stays 1.
	LostGPUHours    NFloat `json:"lost_gpu_hours,omitempty"`
	CkptOverheadPct NFloat `json:"ckpt_overhead_pct,omitempty"`
	ETTFHours       NFloat `json:"ettf_hours,omitempty"`
	ETTRHours       NFloat `json:"ettr_hours,omitempty"`
	ImbalancePct    NFloat `json:"imbalance_pct,omitempty"`
	// Placement-search telemetry (PR 9); same omitempty convention — older
	// exports decode as zero, so the format version stays 1.
	PlacementSearches    int `json:"placement_searches,omitempty"`
	CacheShortCircuits   int `json:"cache_short_circuits,omitempty"`
	SpeculativeCommits   int `json:"speculative_commits,omitempty"`
	SpeculativeConflicts int `json:"speculative_conflicts,omitempty"`
}

// ExportAgg mirrors Agg with null-safe floats.
type ExportAgg struct {
	N    int    `json:"n"`
	Mean NFloat `json:"mean"`
	P50  NFloat `json:"p50"`
	P95  NFloat `json:"p95"`
	Min  NFloat `json:"min"`
	Max  NFloat `json:"max"`
	CI95 NFloat `json:"ci95"`
}

func toExportReplica(m ReplicaMetrics) ExportReplica {
	return ExportReplica{
		Seed:            m.Seed,
		Jobs:            m.Jobs,
		Completed:       m.Completed,
		JCTp50:          NFloat(m.JCTp50),
		JCTMean:         NFloat(m.JCTMean),
		DelayP50:        NFloat(m.DelayP50),
		DelayP95:        NFloat(m.DelayP95),
		MeanUtilPct:     NFloat(m.MeanUtilPct),
		Preemptions:     m.Preemptions,
		Migrations:      m.Migrations,
		GPUHours:        NFloat(m.GPUHours),
		FailedGPUHours:  NFloat(m.FailedGPUHours),
		UnsuccessfulPct: NFloat(m.UnsuccessfulPct),
		LostGPUHours:    NFloat(m.LostGPUHours),
		CkptOverheadPct: NFloat(m.CkptOverheadPct),
		ETTFHours:       NFloat(m.ETTFHours),
		ETTRHours:       NFloat(m.ETTRHours),
		ImbalancePct:    NFloat(m.ImbalancePct),

		PlacementSearches:    m.PlacementSearches,
		CacheShortCircuits:   m.CacheShortCircuits,
		SpeculativeCommits:   m.SpeculativeCommits,
		SpeculativeConflicts: m.SpeculativeConflicts,
	}
}

func fromExportReplica(e ExportReplica) ReplicaMetrics {
	return ReplicaMetrics{
		Seed:            e.Seed,
		Jobs:            e.Jobs,
		Completed:       e.Completed,
		JCTp50:          float64(e.JCTp50),
		JCTMean:         float64(e.JCTMean),
		DelayP50:        float64(e.DelayP50),
		DelayP95:        float64(e.DelayP95),
		MeanUtilPct:     float64(e.MeanUtilPct),
		Preemptions:     e.Preemptions,
		Migrations:      e.Migrations,
		GPUHours:        float64(e.GPUHours),
		FailedGPUHours:  float64(e.FailedGPUHours),
		UnsuccessfulPct: float64(e.UnsuccessfulPct),
		LostGPUHours:    float64(e.LostGPUHours),
		CkptOverheadPct: float64(e.CkptOverheadPct),
		ETTFHours:       float64(e.ETTFHours),
		ETTRHours:       float64(e.ETTRHours),
		ImbalancePct:    float64(e.ImbalancePct),

		PlacementSearches:    e.PlacementSearches,
		CacheShortCircuits:   e.CacheShortCircuits,
		SpeculativeCommits:   e.SpeculativeCommits,
		SpeculativeConflicts: e.SpeculativeConflicts,
	}
}

func toExportAgg(a Agg) ExportAgg {
	return ExportAgg{
		N: a.N, Mean: NFloat(a.Mean), P50: NFloat(a.P50), P95: NFloat(a.P95),
		Min: NFloat(a.Min), Max: NFloat(a.Max), CI95: NFloat(a.CI95),
	}
}

func fromExportAgg(e ExportAgg) Agg {
	return Agg{
		N: e.N, Mean: float64(e.Mean), P50: float64(e.P50), P95: float64(e.P95),
		Min: float64(e.Min), Max: float64(e.Max), CI95: float64(e.CI95),
	}
}

// ToExport converts the result to its serializable form.
func (r *Result) ToExport() Export {
	out := Export{
		FormatVersion: ExportFormatVersion,
		Replicas:      r.Replicas,
		AxisNames:     r.AxisNames,
		BaseSeed:      r.BaseSeed,
	}
	defs := Metrics()
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		es := ExportScenario{
			Index:   sc.Scenario.Index,
			Name:    sc.Scenario.Name,
			Labels:  sc.Scenario.Labels,
			Fleet:   sc.Scenario.Fleet,
			Config:  sc.Scenario.Config,
			Summary: make(map[string]ExportAgg, len(defs)),
		}
		for _, m := range sc.Replicas {
			es.Replicas = append(es.Replicas, toExportReplica(m))
		}
		for j, def := range defs {
			if j < len(sc.Summary.Metrics) {
				es.Summary[def.Name] = toExportAgg(sc.Summary.Metrics[j])
			}
		}
		out.Scenarios = append(out.Scenarios, es)
	}
	return out
}

// WriteJSON encodes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.ToExport())
}

// DecodeJSON reads an export stream back into a Result. Scenario Apply
// functions are not part of the export, so the decoded result carries the
// scenario configurations and metrics — everything downstream consumers
// (tables, plots, CI diffs) read — but cannot be re-run as a Matrix.
func DecodeJSON(rd io.Reader) (*Result, error) {
	var e Export
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("sweep: decoding export: %w", err)
	}
	if e.FormatVersion != ExportFormatVersion {
		return nil, fmt.Errorf("sweep: unsupported export format version %d (want %d)", e.FormatVersion, ExportFormatVersion)
	}
	res := &Result{Replicas: e.Replicas, AxisNames: e.AxisNames, BaseSeed: e.BaseSeed}
	defs := Metrics()
	for _, es := range e.Scenarios {
		sc := ScenarioResult{
			Scenario: Scenario{
				Index:  es.Index,
				Name:   es.Name,
				Labels: es.Labels,
				Fleet:  es.Fleet,
				Config: es.Config,
			},
		}
		for _, m := range es.Replicas {
			sc.Replicas = append(sc.Replicas, fromExportReplica(m))
		}
		sc.Summary = Summary{Metrics: make([]Agg, len(defs))}
		for j, def := range defs {
			if a, ok := es.Summary[def.Name]; ok {
				sc.Summary.Metrics[j] = fromExportAgg(a)
			}
		}
		res.Scenarios = append(res.Scenarios, sc)
	}
	return res, nil
}
