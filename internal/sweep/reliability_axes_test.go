package sweep

import (
	"reflect"
	"testing"

	"philly/internal/core"
	"philly/internal/simulation"
	"philly/internal/workload"
)

// TestFailureScaleAxisComposesWithPhaseScale pins the composition contract
// between the failure.scale sweep axis and a workload pattern's per-phase
// FailureScale: both route through workload.ScaleFailures — the axis scales
// the base, the phase scales that scaled base — so they compose
// multiplicatively. Axis scale 0 therefore annihilates the failure process
// even under a phase that quintuples it, and the composed study stays
// bit-identical across sweep worker counts.
func TestFailureScaleAxisComposesWithPhaseScale(t *testing.T) {
	base := tinyConfig()
	base.Workload.Pattern = &workload.Pattern{
		Name: "fail-heavy",
		Phases: []workload.Phase{{
			Name:         "storm",
			Start:        0,
			End:          base.Workload.Duration,
			Rate:         1,
			FailureScale: 5,
		}},
	}
	m := Matrix{Base: base, Axes: []Axis{mustParse(t, "failure.scale=0,2")}}

	run := func(workers int) *Result {
		res, err := m.Run(Options{Replicas: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(1), run(2)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("axis x phase failure scaling diverged between workers=1 and workers=2")
	}

	var zero, two *ScenarioResult
	for i := range r1.Scenarios {
		switch r1.Scenarios[i].Scenario.Labels[0] {
		case "0":
			zero = &r1.Scenarios[i]
		case "2":
			two = &r1.Scenarios[i]
		}
	}
	if zero == nil || two == nil {
		t.Fatalf("scenario labels missing: %+v", r1.Scenarios)
	}
	// 0 x 5 = 0: no unsuccessful jobs, no failed-attempt GPU time.
	for _, rep := range zero.Replicas {
		if rep.UnsuccessfulPct != 0 || rep.FailedGPUHours != 0 {
			t.Fatalf("failure.scale=0 under FailureScale=5 phase still failed: %+v", rep)
		}
	}
	// 2 x 5 = 10 (clamped): the failure process must be very much alive.
	engaged := false
	for _, rep := range two.Replicas {
		if rep.UnsuccessfulPct > 0 && rep.FailedGPUHours > 0 {
			engaged = true
		}
	}
	if !engaged {
		t.Fatal("failure.scale=2 under FailureScale=5 phase produced no failures")
	}
}

// TestReliabilityAxesParse exercises the PR-7 axes' spec grammar and apply
// semantics: failure.domains drives the correlated-outage engine config and
// checkpoint.interval the checkpoint cost model, each with fail-fast
// validation at parse time.
func TestReliabilityAxesParse(t *testing.T) {
	for _, bad := range []string{
		"failure.domains=bogus",
		"failure.domains=server:0",
		"failure.domains=server:-2",
		"checkpoint.interval=0",
		"checkpoint.interval=-5",
		"checkpoint.interval=x",
	} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("axis %q: want parse error", bad)
		}
	}

	ax := mustParse(t, "failure.domains=none,server+rack:2")
	var off, on core.Config
	off, on = tinyConfig(), tinyConfig()
	ax.Values[0].Apply(&off)
	ax.Values[1].Apply(&on)
	if off.Faults.Enabled {
		t.Fatal("failure.domains=none enabled the outage engine")
	}
	if !on.Faults.Enabled || on.Faults.Server.MTBFHours <= 0 || on.Faults.Rack.MTBFHours <= 0 {
		t.Fatalf("failure.domains=server+rack:2 config: %+v", on.Faults)
	}
	if on.Faults.Cluster.MTBFHours != 0 {
		t.Fatalf("cluster tier enabled by a server+rack spec: %+v", on.Faults.Cluster)
	}
	ax = mustParse(t, "checkpoint.interval=off,30")
	var ckOff, ck30 core.Config
	ckOff, ck30 = tinyConfig(), tinyConfig()
	ax.Values[0].Apply(&ckOff)
	ax.Values[1].Apply(&ck30)
	if ckOff.Checkpoint.Enabled {
		t.Fatal("checkpoint.interval=off enabled the cost model")
	}
	if !ck30.Checkpoint.Enabled || ck30.Checkpoint.Interval != 30*simulation.Minute {
		t.Fatalf("checkpoint.interval=30 config: %+v", ck30.Checkpoint)
	}
	if err := ck30.Validate(); err != nil {
		t.Fatalf("checkpoint.interval=30 config invalid: %v", err)
	}
}
