package sweep

import (
	"strings"
	"testing"

	"philly/internal/core"
)

// TestScenariosRejectsDuplicateAxes: a duplicated axis name would silently
// let the later axis win every cell; it must be an error, not a quiet
// mis-expansion.
func TestScenariosRejectsDuplicateAxes(t *testing.T) {
	ax1 := mustParse(t, "sched.policy=philly,fifo")
	ax2 := mustParse(t, "sched.policy=srtf")
	m := Matrix{Base: tinyConfig(), Axes: []Axis{ax1, ax2}}
	if _, err := m.Scenarios(); err == nil || !strings.Contains(err.Error(), "duplicate axis") {
		t.Fatalf("duplicate axis expanded without error (err=%v)", err)
	}
	// The runner path must surface the same error before any simulation.
	if _, err := m.Run(Options{Replicas: 1, Workers: 1}); err == nil {
		t.Fatal("Run accepted a duplicate axis")
	}
}

// TestScenariosRejectsEmptyAxes: empty names and empty value lists zero or
// corrupt the cross-product and must error.
func TestScenariosRejectsEmptyAxes(t *testing.T) {
	cases := []struct {
		name string
		axes []Axis
	}{
		{"empty name", []Axis{{Name: "", Values: []Value{{Label: "x", Apply: func(*core.Config) {}}}}}},
		{"no values", []Axis{{Name: "sched.policy"}}},
	}
	for _, tc := range cases {
		m := Matrix{Base: tinyConfig(), Axes: tc.axes}
		if _, err := m.Scenarios(); err == nil {
			t.Errorf("%s: expanded without error", tc.name)
		}
	}
}

// TestParseAxisRejectsMalformedSpecs walks the malformed-input space of
// the axis parser: bad shapes, unknown names, out-of-domain values, and
// value lists that collapse to nothing. Every case must return an error —
// never panic, never succeed.
func TestParseAxisRejectsMalformedSpecs(t *testing.T) {
	specs := []string{
		"",                       // no name
		"=on",                    // empty name
		"sched.policy",           // no values
		"no.such.axis=1",         // unknown axis
		"sched.policy=slurm",     // unknown policy
		"sched.policy=,",         // values collapse to nothing
		"sched.policy= , ",       // whitespace-only values
		"defrag=maybe",           // not on/off
		"adaptive-retry=2",       // not on/off
		"checkpoint.retention=x", // not a float
		"sched.backoff-min=abc",  // not a float
		"locality.relax=4",       // missing :any part
		"locality.relax=4:x",     // non-integer component
		"locality.relax=-1:8",    // negative threshold
		"jobs=0",                 // non-positive
		"jobs=many",              // non-integer
		"failure.scale=-1",       // negative
		"failure.scale=x",        // non-numeric
		"telemetry.cadence=0",    // non-positive
		"telemetry.cadence=1e-9", // rounds to zero seconds
		"cluster.scale=0",        // non-positive
		"cluster.scale=big",      // non-numeric
	}
	for _, spec := range specs {
		if _, err := ParseAxis(spec); err == nil {
			t.Errorf("ParseAxis(%q) succeeded; want error", spec)
		}
	}
}

// TestParseMixRejectsMalformedWeights covers workload.mix's size:weight
// list syntax: every malformed entry must produce an error with the
// offending value, never a panic or a silently empty distribution.
func TestParseMixRejectsMalformedWeights(t *testing.T) {
	specs := []string{
		"workload.mix=nonsense",  // not a preset, no ':'
		"workload.mix=1:abc",     // non-numeric weight
		"workload.mix=x:0.5",     // non-numeric size
		"workload.mix=:0.5",      // empty size
		"workload.mix=1:",        // empty weight
		"workload.mix=0:1",       // zero size
		"workload.mix=-1:2",      // negative size
		"workload.mix=1:-3",      // negative weight
		"workload.mix=1:0.5;bad", // malformed second entry
		"workload.mix=;",         // nothing but separators
		"workload.mix=1:0.5:2",   // too many colons in one entry
	}
	for _, spec := range specs {
		if _, err := ParseAxis(spec); err == nil {
			t.Errorf("ParseAxis(%q) succeeded; want error", spec)
		}
	}
	// The valid shapes stay valid.
	for _, spec := range []string{
		"workload.mix=default",
		"workload.mix=small,large",
		"workload.mix=1:0.7;8:0.3",
		"workload.mix= 1 : 0.7 ; 8 : 0.3 ",
	} {
		if _, err := ParseAxis(spec); err != nil {
			t.Errorf("ParseAxis(%q) = %v; want success", spec, err)
		}
	}
}

// TestFleetAxisParsing covers the fleet.members axis: preset validation at
// parse time, the one-fleet-axis rule, and expansion tagging.
func TestFleetAxisParsing(t *testing.T) {
	ax, err := ParseAxis("fleet.members=philly-small,philly-small+helios-like")
	if err != nil {
		t.Fatal(err)
	}
	if len(ax.Values) != 2 || ax.Values[0].Fleet == nil || len(ax.Values[1].Fleet) != 2 {
		t.Fatalf("fleet axis parsed wrong: %+v", ax.Values)
	}
	for _, spec := range []string{
		"fleet.members=",                   // no values
		"fleet.members=no-such-preset",     // unknown preset
		"fleet.members=philly-small+bogus", // unknown member in a list
		"fleet.members=+",                  // empty member list
	} {
		if _, err := ParseAxis(spec); err == nil {
			t.Errorf("ParseAxis(%q) succeeded; want error", spec)
		}
	}
	// Two axes carrying fleet members cannot coexist.
	other := Axis{Name: "other.fleet", Values: []Value{{Label: "x", Fleet: []string{"philly-small"}}}}
	m := Matrix{Base: tinyConfig(), Axes: []Axis{ax, other}}
	if _, err := m.Scenarios(); err == nil {
		t.Fatal("two fleet axes expanded without error")
	}
	if !contains(KnownAxes(), FleetAxisName) {
		t.Fatal("KnownAxes does not list fleet.members")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
