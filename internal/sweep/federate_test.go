package sweep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"philly/internal/analysis"
	"philly/internal/core"
	"philly/internal/federation"
)

// fleetMatrix is a fast federated sweep: a policy axis crossed with a
// fleet axis, with the jobs axis shrinking every member's trace so one
// cell runs in tens of milliseconds.
func fleetMatrix(t *testing.T) Matrix {
	t.Helper()
	return Matrix{
		Base: tinyConfig(),
		Axes: []Axis{
			mustParse(t, "sched.policy=philly,fifo"),
			mustParse(t, "jobs=200"),
			mustParse(t, "fleet.members=philly-small+helios-like"),
		},
	}
}

// TestFederatedSweep runs a policy × fleet matrix end to end and checks
// the member-row expansion: one row per member plus a fleet-wide row per
// scenario, a trailing synthetic "member" axis, per-member configs carried
// on the rows, and exact cross-row accounting for completed jobs.
func TestFederatedSweep(t *testing.T) {
	m := fleetMatrix(t)
	res, err := m.Run(Options{Replicas: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantAxes := []string{"sched.policy", "jobs", "fleet.members", "member"}
	if !reflect.DeepEqual(res.AxisNames, wantAxes) {
		t.Fatalf("AxisNames = %v, want %v", res.AxisNames, wantAxes)
	}
	// 2 policies × 1 jobs × 1 fleet value, each expanded into 2 members +
	// the fleet row.
	if len(res.Scenarios) != 2*3 {
		t.Fatalf("got %d rows, want 6", len(res.Scenarios))
	}
	for i := 0; i < len(res.Scenarios); i += 3 {
		rows := res.Scenarios[i : i+3]
		if got := rows[0].Scenario.Labels[3]; got != "philly-small" {
			t.Fatalf("row %d member label = %q", i, got)
		}
		if got := rows[1].Scenario.Labels[3]; got != "helios-like" {
			t.Fatalf("row %d member label = %q", i+1, got)
		}
		if got := rows[2].Scenario.Labels[3]; got != fleetMemberLabel {
			t.Fatalf("row %d member label = %q", i+2, got)
		}
		// The jobs=200 apply must have reached every member's config.
		for r := 0; r < 2; r++ {
			if rows[r].Scenario.Config.Workload.TotalJobs != 200 {
				t.Fatalf("member row config kept %d jobs, want 200",
					rows[r].Scenario.Config.Workload.TotalJobs)
			}
		}
		// Completed jobs are never offloaded shells, so the fleet row's
		// count must equal the member sum exactly.
		wantCompleted := rows[0].Replicas[0].Completed + rows[1].Replicas[0].Completed
		if got := rows[2].Replicas[0].Completed; got != wantCompleted {
			t.Fatalf("fleet completed = %d, want member sum %d", got, wantCompleted)
		}
		if rows[2].Replicas[0].Jobs == 0 || rows[2].Replicas[0].GPUHours <= 0 {
			t.Fatal("fleet row carries no load")
		}
	}
	table := res.RenderTable()
	if !strings.Contains(table, "member") || !strings.Contains(table, fleetMemberLabel) {
		t.Fatalf("rendered table lacks the member column:\n%s", table)
	}
}

// TestFederatedSweepDeterminism: the federated path inherits the harness
// guarantee — byte-identical output across worker counts.
func TestFederatedSweepDeterminism(t *testing.T) {
	m := fleetMatrix(t)
	m.Axes = m.Axes[1:] // jobs + fleet only: 3 rows, fast enough to run twice
	r1, err := m.Run(Options{Replicas: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := m.Run(Options{Replicas: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("federated sweep diverged between workers=1 and workers=4")
	}
}

// TestFederatedExportRoundTrip: the JSON export carries the fleet member
// lists and member rows, and decodes back to the same table and plots.
func TestFederatedExportRoundTrip(t *testing.T) {
	m := fleetMatrix(t)
	m.Axes = m.Axes[1:]
	res, err := m.Run(Options{Replicas: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"fleet"`) {
		t.Fatal("export lacks the fleet member list")
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.RenderTable() != res.RenderTable() {
		t.Fatal("decoded table differs from the original")
	}
	if !reflect.DeepEqual(back.Scenarios[0].Scenario.Fleet, res.Scenarios[0].Scenario.Fleet) {
		t.Fatal("fleet member list lost in the round trip")
	}
	var csv1, csv2 bytes.Buffer
	if err := res.WritePlotCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := back.WritePlotCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if csv1.String() != csv2.String() {
		t.Fatal("plot CSV differs after the round trip")
	}
	if !strings.Contains(csv1.String(), "member") {
		t.Fatal("plot CSV lacks the member column")
	}
}

// TestFleetReduceAgreesWithAnalysis pins the two fleet-wide folds — the
// sweep's ReplicaMetrics fold and internal/analysis.ComputeFleet's
// combined row — against each other on the same federated result: they
// serve different metric sets but must agree on every shared quantity, or
// the sweep table and the philly-repro fleet table would silently diverge
// for the same run.
func TestFleetReduceAgreesWithAnalysis(t *testing.T) {
	fcfg, err := federation.NewConfig(17, "philly-small", "helios-like")
	if err != nil {
		t.Fatal(err)
	}
	for i := range fcfg.Members {
		fcfg.Members[i].Config.Workload.TotalJobs = 250
	}
	res, err := federation.Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	m := fleetReduce(17, res)
	members := make([]analysis.FleetMember, 0, len(res.Members))
	for _, mem := range res.Members {
		members = append(members, analysis.FleetMember{Name: mem.Name, Res: mem.Result})
	}
	rows := analysis.ComputeFleet(members).Rows
	fleet := rows[len(rows)-1]
	if m.Jobs != fleet.Jobs || m.Completed != fleet.Completed {
		t.Fatalf("job counts diverged: sweep %d/%d vs analysis %d/%d",
			m.Jobs, m.Completed, fleet.Jobs, fleet.Completed)
	}
	if m.GPUHours != fleet.GPUHours || m.FailedGPUHours != fleet.FailedGPUHours {
		t.Fatalf("GPU-hour folds diverged: sweep %v/%v vs analysis %v/%v",
			m.GPUHours, m.FailedGPUHours, fleet.GPUHours, fleet.FailedGPUHours)
	}
	if m.DelayP50 != fleet.DelayP50 || m.DelayP95 != fleet.DelayP95 {
		t.Fatalf("delay percentiles diverged: sweep %v/%v vs analysis %v/%v",
			m.DelayP50, m.DelayP95, fleet.DelayP50, fleet.DelayP95)
	}
	if m.MeanUtilPct != fleet.UtilMean {
		t.Fatalf("utilization fold diverged: sweep %v vs analysis %v", m.MeanUtilPct, fleet.UtilMean)
	}
	if m.UnsuccessfulPct != fleet.UnsuccessfulPct {
		t.Fatalf("unsuccessful%% diverged: sweep %v vs analysis %v", m.UnsuccessfulPct, fleet.UnsuccessfulPct)
	}
}

// TestFederatedStreamingMatchesBatch pins the streaming federated
// reduction (per-member StreamReducers + fleetFinishStream, the path
// runFederatedCell takes) against the batch fold over fully retained
// results: every member row and the fleet row must be bit-identical, and
// the streaming run must actually have released completed jobs' attempt
// records.
func TestFederatedStreamingMatchesBatch(t *testing.T) {
	mkCfg := func() federation.Config {
		fcfg, err := federation.NewConfig(23, "philly-small", "helios-like")
		if err != nil {
			t.Fatal(err)
		}
		for i := range fcfg.Members {
			fcfg.Members[i].Config.Workload.TotalJobs = 250
		}
		return fcfg
	}

	batchRes, err := federation.Run(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]ReplicaMetrics, 0, len(batchRes.Members)+1)
	for _, m := range batchRes.Members {
		batch = append(batch, Reduce(m.Result))
	}
	batch = append(batch, fleetReduce(23, batchRes))

	st, err := federation.NewStudy(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	reds := make([]*StreamReducer, st.NumMembers())
	for i := range reds {
		reds[i] = NewStreamReducer(st.MemberNumJobs(i))
	}
	st.StreamMemberJobs(func(mi, i int, r *core.JobResult) { reds[mi].ObserveJob(i, r) })
	streamRes, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]ReplicaMetrics, 0, len(streamRes.Members)+1)
	for mi, m := range streamRes.Members {
		stream = append(stream, reds[mi].Finish(m.Result))
	}
	stream = append(stream, fleetFinishStream(23, reds, streamRes))

	if !reflect.DeepEqual(batch, stream) {
		t.Fatalf("streamed federated cell diverged from batch fold:\nbatch:  %+v\nstream: %+v", batch, stream)
	}

	released, completed := 0, 0
	for _, m := range streamRes.Members {
		for i := range m.Result.Jobs {
			j := &m.Result.Jobs[i]
			if j.Completed && !j.Offloaded {
				completed++
				if j.Attempts == nil {
					released++
				}
			}
		}
	}
	if completed == 0 || released != completed {
		t.Fatalf("streaming did not release attempt records: %d/%d released", released, completed)
	}
}
