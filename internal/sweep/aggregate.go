package sweep

import (
	"fmt"
	"math"
	"strings"

	"philly/internal/analysis"
	"philly/internal/stats"
)

// Agg summarizes one metric across a scenario's replicas.
type Agg struct {
	// N is the replica count.
	N int
	// Mean, P50 and P95 summarize the replica values.
	Mean, P50, P95 float64
	// Min and Max bound the replica values.
	Min, Max float64
	// CI95 is the half-width of the 95% confidence interval of the mean,
	// t(0.975, n-1) · s/√n; 0 for a single replica. The Student-t critical
	// value matters at the harness's typical replica counts: at n=4 it is
	// 3.18, not the asymptotic 1.96.
	CI95 float64
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30 degrees
// of freedom; larger samples fall back to the normal approximation.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCrit(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.96
}

// aggregate folds one metric's replica values.
func aggregate(values []float64) Agg {
	a := Agg{
		N:    len(values),
		Mean: stats.Mean(values),
		P50:  stats.Percentile(values, 50),
		P95:  stats.Percentile(values, 95),
		Min:  math.Inf(1),
		Max:  math.Inf(-1),
	}
	for _, v := range values {
		a.Min = math.Min(a.Min, v)
		a.Max = math.Max(a.Max, v)
	}
	if len(values) > 1 {
		var ss float64
		for _, v := range values {
			d := v - a.Mean
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(len(values)-1))
		a.CI95 = tCrit(len(values)-1) * sd / math.Sqrt(float64(len(values)))
	}
	return a
}

// Summary holds one Agg per default metric, in Metrics() order.
type Summary struct {
	// Metrics is indexed like Metrics(); ByName finds a column by header.
	Metrics []Agg
}

// Summarize folds a scenario's replicas into per-metric aggregates.
func Summarize(replicas []ReplicaMetrics) Summary {
	defs := Metrics()
	s := Summary{Metrics: make([]Agg, len(defs))}
	values := make([]float64, len(replicas))
	for i, def := range defs {
		for j := range replicas {
			values[j] = def.Get(replicas[j])
		}
		s.Metrics[i] = aggregate(values)
	}
	return s
}

// ByName returns the aggregate for a metric column header, or false.
func (s Summary) ByName(name string) (Agg, bool) {
	for i, def := range Metrics() {
		if def.Name == name && i < len(s.Metrics) {
			return s.Metrics[i], true
		}
	}
	return Agg{}, false
}

// fmtAgg renders "mean±ci" when replicated, else just the value.
func fmtAgg(a Agg) string {
	if math.IsNaN(a.Mean) {
		return "-"
	}
	if a.N > 1 {
		return fmt.Sprintf("%.1f±%.1f", a.Mean, a.CI95)
	}
	return fmt.Sprintf("%.1f", a.Mean)
}

// RenderTable renders the cross-scenario comparison: one column per axis
// (falling back to a single "scenario" column when the matrix has no axes
// or the axis names are unknown), one "mean±95%CI" column per metric, using
// the shared analysis renderer. Structured axis values like
// locality.relax's "4:8" are component-aligned (see AlignLabels) instead of
// rendering as ragged opaque strings.
func (r *Result) RenderTable() string {
	defs := Metrics()
	axes := r.axisColumns()
	var header []string
	if axes == nil {
		header = []string{"scenario"}
	} else {
		header = append(header, r.AxisNames...)
	}
	header = append(header, "replicas")
	for _, d := range defs {
		header = append(header, d.Name)
	}
	t := &analysis.Table{Header: header}
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		var row []string
		if axes == nil {
			row = []string{sc.Scenario.Name}
		} else {
			for _, col := range axes {
				row = append(row, col[i])
			}
		}
		row = append(row, fmt.Sprintf("%d", len(sc.Replicas)))
		for j := range defs {
			row = append(row, fmtAgg(sc.Summary.Metrics[j]))
		}
		t.Add(row...)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep: %d scenario(s) × %d replica(s), base seed %d\n",
		len(r.Scenarios), r.Replicas, r.BaseSeed)
	b.WriteString(t.String())
	return b.String()
}

// axisColumns transposes scenario labels into per-axis columns with
// structured values aligned, or nil when the result has no usable axis
// labels (no axes, or scenarios predating label capture).
func (r *Result) axisColumns() [][]string {
	if len(r.AxisNames) == 0 {
		return nil
	}
	cols := make([][]string, len(r.AxisNames))
	for a := range cols {
		col := make([]string, len(r.Scenarios))
		for i := range r.Scenarios {
			labels := r.Scenarios[i].Scenario.Labels
			if a >= len(labels) {
				return nil // ragged labels: fall back to opaque names
			}
			col[i] = labels[a]
		}
		cols[a] = AlignLabels(col)
	}
	return cols
}

// AlignLabels pretty-prints one axis's values for a table column. Values
// with a shared "a:b[:c...]" structure — like locality.relax's
// "rackAfter:anyAfter" thresholds — get each component right-aligned to the
// component's column width ("4:8" and "16:32" render as " 4: 8" and
// "16:32"), so structured labels read as aligned tuples instead of opaque
// strings. Anything without a shared structure is returned unchanged.
func AlignLabels(labels []string) []string {
	if len(labels) == 0 {
		return labels
	}
	parts := strings.Count(labels[0], ":")
	if parts == 0 {
		return labels
	}
	split := make([][]string, len(labels))
	for i, l := range labels {
		if strings.Count(l, ":") != parts {
			return labels
		}
		split[i] = strings.Split(l, ":")
	}
	widths := make([]int, parts+1)
	for _, sp := range split {
		for j, s := range sp {
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	out := make([]string, len(labels))
	for i, sp := range split {
		var b strings.Builder
		for j, s := range sp {
			if j > 0 {
				b.WriteByte(':')
			}
			fmt.Fprintf(&b, "%*s", widths[j], s)
		}
		out[i] = b.String()
	}
	return out
}
