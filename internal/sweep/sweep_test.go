package sweep

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"philly/internal/core"
	"philly/internal/scheduler"
	"philly/internal/simulation"
)

// tinyConfig is a fast base for runner tests: a few hundred jobs over two
// simulated days keeps one run in the tens of milliseconds.
func tinyConfig() core.Config {
	cfg := core.SmallConfig()
	cfg.Workload.TotalJobs = 200
	cfg.Workload.Duration = cfg.Workload.Duration / 4
	return cfg
}

func TestScenariosCrossProduct(t *testing.T) {
	boolAxis := func(name string, set func(*core.Config, bool)) Axis {
		return Axis{Name: name, Values: []Value{
			{Label: "off", Apply: func(c *core.Config) { set(c, false) }},
			{Label: "on", Apply: func(c *core.Config) { set(c, true) }},
		}}
	}
	cases := []struct {
		name string
		axes []Axis
		want int
	}{
		{"no axes", nil, 1},
		{"single axis", []Axis{boolAxis("defrag", func(c *core.Config, v bool) { c.Defrag.Enabled = v })}, 2},
		{"two axes", []Axis{
			boolAxis("defrag", func(c *core.Config, v bool) { c.Defrag.Enabled = v }),
			boolAxis("adaptive-retry", func(c *core.Config, v bool) { c.AdaptiveRetry = v }),
		}, 4},
		{"three axes 3x2x2", []Axis{
			{Name: "jobs", Values: []Value{
				{Label: "100", Apply: func(c *core.Config) { c.Workload.TotalJobs = 100 }},
				{Label: "200", Apply: func(c *core.Config) { c.Workload.TotalJobs = 200 }},
				{Label: "300", Apply: func(c *core.Config) { c.Workload.TotalJobs = 300 }},
			}},
			boolAxis("defrag", func(c *core.Config, v bool) { c.Defrag.Enabled = v }),
			boolAxis("adaptive-retry", func(c *core.Config, v bool) { c.AdaptiveRetry = v }),
		}, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Matrix{Base: tinyConfig(), Axes: tc.axes}
			scs, err := m.Scenarios()
			if err != nil {
				t.Fatal(err)
			}
			if len(scs) != tc.want {
				t.Fatalf("got %d scenarios, want %d", len(scs), tc.want)
			}
			seen := map[string]bool{}
			for i, sc := range scs {
				if sc.Index != i {
					t.Errorf("scenario %d has Index %d", i, sc.Index)
				}
				if seen[sc.Name] {
					t.Errorf("duplicate scenario name %q", sc.Name)
				}
				seen[sc.Name] = true
			}
		})
	}
}

func TestScenariosEmptyAxisErrors(t *testing.T) {
	m := Matrix{Base: tinyConfig(), Axes: []Axis{{Name: "empty"}}}
	if _, err := m.Scenarios(); err == nil {
		t.Fatal("want error for axis with no values")
	}
	m = Matrix{Base: tinyConfig(), Axes: []Axis{{Values: []Value{{Label: "x", Apply: func(*core.Config) {}}}}}}
	if _, err := m.Scenarios(); err == nil {
		t.Fatal("want error for axis with empty name")
	}
}

// Scenario configs must not alias: mutating one scenario's rack slice must
// not leak into its siblings.
func TestScenariosDoNotAlias(t *testing.T) {
	ax, err := ParseAxis("cluster.scale=0.5,1,2")
	if err != nil {
		t.Fatal(err)
	}
	base := tinyConfig()
	scs, err := Matrix{Base: base, Axes: []Axis{ax}}.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	orig := base.Cluster.Racks[0].Servers
	for i, factor := range []float64{0.5, 1, 2} {
		want := int(float64(orig)*factor + 0.5)
		if got := scs[i].Config.Cluster.Racks[0].Servers; got != want {
			t.Fatalf("scenario %q rack0 servers = %d, want %d (axis values aliased?)",
				scs[i].Name, got, want)
		}
	}
	if base.Cluster.Racks[0].Servers != orig {
		t.Fatal("base config mutated by expansion")
	}
}

func TestParseAxis(t *testing.T) {
	cases := []struct {
		spec    string
		wantN   int
		wantErr bool
	}{
		{"sched.policy=fifo,srtf,tiresias", 3, false},
		{"sched.policy=bogus", 0, true},
		{"defrag=on,off", 2, false},
		{"defrag=maybe", 0, true},
		{"adaptive-retry=on", 1, false},
		{"checkpoint.retention=0.5,0.9", 2, false},
		{"checkpoint.retention=high", 0, true},
		{"locality.relax=0:0,4:8", 2, false},
		{"locality.relax=44", 0, true},
		{"jobs=100,200", 2, false},
		{"jobs=-5", 0, true},
		{"cluster.scale=0.5,2", 2, false},
		{"workload.mix=default,small,large", 3, false},
		{"workload.mix=1:0.7;8:0.3", 1, false},
		{"workload.mix=tiny", 0, true},
		{"workload.mix=1:-0.5", 0, true},
		{"failure.scale=0,1,2.5", 3, false},
		{"failure.scale=-1", 0, true},
		{"telemetry.cadence=1,5", 2, false},
		{"telemetry.cadence=0", 0, true},
		{"no-such-knob=1", 0, true},
		{"missing-equals", 0, true},
		{"jobs=", 0, true},
	}
	for _, tc := range cases {
		ax, err := ParseAxis(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseAxis(%q): want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAxis(%q): %v", tc.spec, err)
			continue
		}
		if len(ax.Values) != tc.wantN {
			t.Errorf("ParseAxis(%q): %d values, want %d", tc.spec, len(ax.Values), tc.wantN)
		}
	}
}

func TestParseAxisAppliesKnob(t *testing.T) {
	ax, err := ParseAxis("sched.policy=fifo")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	ax.Values[0].Apply(&cfg)
	if cfg.Scheduler.Policy != scheduler.PolicyFIFO {
		t.Fatalf("policy = %v, want fifo", cfg.Scheduler.Policy)
	}
}

// TestWorkloadAxes pins the semantics of the PR-4 axes: the mix replaces
// the size distribution (with per-scenario map isolation), failure.scale
// multiplies-and-clamps the outcome probabilities, and telemetry.cadence
// sets the sampling period — every applied config must still validate.
func TestWorkloadAxes(t *testing.T) {
	base := tinyConfig()

	ax := mustParse(t, "workload.mix=large,1:0.7;8:0.3")
	var cfgA, cfgB core.Config
	cfgA, cfgB = base, base
	ax.Values[0].Apply(&cfgA)
	ax.Values[1].Apply(&cfgB)
	if cfgA.Workload.SizeWeights[8] != 0.25 {
		t.Fatalf("large preset weight for 8 GPUs = %v, want 0.25", cfgA.Workload.SizeWeights[8])
	}
	if len(cfgB.Workload.SizeWeights) != 2 || cfgB.Workload.SizeWeights[1] != 0.7 || cfgB.Workload.SizeWeights[8] != 0.3 {
		t.Fatalf("explicit mix = %v, want map[1:0.7 8:0.3]", cfgB.Workload.SizeWeights)
	}
	// Two applications of the same value must not share the map.
	var cfgC core.Config = base
	ax.Values[0].Apply(&cfgC)
	cfgC.Workload.SizeWeights[8] = 99
	if cfgA.Workload.SizeWeights[8] == 99 {
		t.Fatal("workload.mix applications alias one map across scenarios")
	}
	if err := cfgA.Validate(); err != nil {
		t.Fatalf("mix-applied config invalid: %v", err)
	}

	ax = mustParse(t, "failure.scale=2")
	cfg := base
	before := cfg.Workload.Failures
	ax.Values[0].Apply(&cfg)
	after := cfg.Workload.Failures
	for b := range after.UnsuccessfulProb {
		want := before.UnsuccessfulProb[b] * 2
		if max := 1 - before.KilledProb[b]; want > max {
			want = max
		}
		if after.UnsuccessfulProb[b] != want {
			t.Fatalf("bucket %d unsuccessful = %v, want %v", b, after.UnsuccessfulProb[b], want)
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("failure.scale=2 config invalid: %v", err)
	}
	// An extreme multiplier must clamp into validity, not explode.
	cfg = base
	mustParse(t, "failure.scale=100").Values[0].Apply(&cfg)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("failure.scale=100 config invalid after clamping: %v", err)
	}

	cfg = base
	mustParse(t, "telemetry.cadence=5").Values[0].Apply(&cfg)
	if cfg.TelemetryInterval != 5*simulation.Minute {
		t.Fatalf("TelemetryInterval = %v, want 5 minutes", cfg.TelemetryInterval)
	}
}

func TestDeriveSeedStability(t *testing.T) {
	// Golden values: the derivation is part of the output contract — a
	// change here silently invalidates every recorded sweep.
	golden := []struct {
		base     uint64
		scenario int
		replica  int
		want     uint64
	}{
		{1, 0, 0, 0xcd63fe028821e419},
		{1, 0, 1, 0x94aa8cf12516fe88},
		{1, 1, 0, 0x3d8cb3d8e912971d},
		{42, 3, 7, 0xc1bc76a2540cd72},
	}
	for _, g := range golden {
		if got := DeriveSeed(g.base, g.scenario, g.replica); got != g.want {
			t.Fatalf("DeriveSeed(%d,%d,%d) unstable: %d vs %d", g.base, g.scenario, g.replica, got, g.want)
		}
	}
	// Distinctness across a realistic grid, plus sensitivity to each input.
	seen := map[uint64][3]int{}
	for base := uint64(1); base <= 3; base++ {
		for s := 0; s < 16; s++ {
			for r := 0; r < 16; r++ {
				seed := DeriveSeed(base, s, r)
				if prev, dup := seen[seed]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and (%d,%d,%d) -> %d",
						base, s, r, prev[0], prev[1], prev[2], seed)
				}
				seen[seed] = [3]int{int(base), s, r}
			}
		}
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Fatal("scenario and replica indices are interchangeable")
	}
}

func TestRunErrorPropagation(t *testing.T) {
	bad := tinyConfig()
	m := Matrix{Base: bad, Axes: []Axis{{
		Name: "retention",
		Values: []Value{
			{Label: "ok", Apply: func(c *core.Config) { c.CheckpointRetention = 0.9 }},
			{Label: "bad", Apply: func(c *core.Config) { c.CheckpointRetention = 7 }},
		},
	}}}
	done := make(chan struct{})
	var err error
	go func() {
		_, err = m.Run(Options{Replicas: 2, Workers: 4})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("pool hung on invalid scenario")
	}
	if err == nil {
		t.Fatal("want validation error surfaced from sweep")
	}
	if !strings.Contains(err.Error(), "retention=bad") {
		t.Fatalf("error does not name the offending scenario: %v", err)
	}
}

func TestAggregateHandComputed(t *testing.T) {
	a := aggregate([]float64{2, 4, 6, 8})
	if a.N != 4 {
		t.Fatalf("N = %d", a.N)
	}
	if a.Mean != 5 {
		t.Fatalf("mean = %v, want 5", a.Mean)
	}
	if a.P50 != 5 { // linear interpolation between 4 and 6
		t.Fatalf("p50 = %v, want 5", a.P50)
	}
	if a.Min != 2 || a.Max != 8 {
		t.Fatalf("min/max = %v/%v", a.Min, a.Max)
	}
	// Sample sd of {2,4,6,8} is sqrt(20/3); CI95 = t(0.975, df=3)*sd/2
	// with the Student-t critical value 3.182 for 3 degrees of freedom.
	wantCI := 3.182 * math.Sqrt(20.0/3.0) / 2
	if math.Abs(a.CI95-wantCI) > 1e-12 {
		t.Fatalf("ci95 = %v, want %v", a.CI95, wantCI)
	}
	// p95 of 4 points at ranks 0,1,2,3: rank 2.85 -> 6*(0.15)+8*(0.85).
	wantP95 := 6*0.15 + 8*0.85
	if math.Abs(a.P95-wantP95) > 1e-12 {
		t.Fatalf("p95 = %v, want %v", a.P95, wantP95)
	}

	single := aggregate([]float64{3})
	if single.CI95 != 0 || single.Mean != 3 || single.Min != 3 || single.Max != 3 {
		t.Fatalf("single-replica aggregate wrong: %+v", single)
	}
}

func TestSummarizeUsesMetricDefs(t *testing.T) {
	reps := []ReplicaMetrics{
		{JCTp50: 10, MeanUtilPct: 50, Preemptions: 3},
		{JCTp50: 20, MeanUtilPct: 60, Preemptions: 5},
	}
	s := Summarize(reps)
	if len(s.Metrics) != len(Metrics()) {
		t.Fatalf("summary has %d metrics, want %d", len(s.Metrics), len(Metrics()))
	}
	jct, ok := s.ByName("JCT p50 (min)")
	if !ok || jct.Mean != 15 {
		t.Fatalf("JCT p50 aggregate = %+v, ok=%v, want mean 15", jct, ok)
	}
	pre, ok := s.ByName("preempts")
	if !ok || pre.Mean != 4 {
		t.Fatalf("preempts aggregate = %+v, ok=%v, want mean 4", pre, ok)
	}
	if _, ok := s.ByName("no such metric"); ok {
		t.Fatal("ByName matched a bogus metric name")
	}
}

// TestWorkerCountInvariance is the harness's core guarantee (and an ISSUE
// acceptance criterion): a 2-axis × 2-value matrix with 4 replicas must
// produce byte-identical aggregated output with 1 worker and with 8.
func TestWorkerCountInvariance(t *testing.T) {
	base := tinyConfig()
	axes := []Axis{
		mustParse(t, "sched.policy=philly,fifo"),
		mustParse(t, "defrag=on,off"),
	}
	run := func(workers int) *Result {
		res, err := Matrix{Base: base, Axes: axes}.Run(Options{Replicas: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r8 := run(1), run(8)
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("sweep results differ between workers=1 and workers=8")
	}
	if r1.RenderTable() != r8.RenderTable() {
		t.Fatal("rendered tables differ between workers=1 and workers=8")
	}
	// Different base seeds must actually change the numbers.
	other, err := Matrix{Base: base, Axes: axes}.Run(Options{Replicas: 4, Workers: 8, BaseSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Scenarios[0].Replicas, other.Scenarios[0].Replicas) {
		t.Fatal("changing the base seed left replica metrics identical")
	}
}

func TestProgressCallback(t *testing.T) {
	var (
		mu    sync.Mutex
		calls int
		last  int
	)
	m := Matrix{Base: tinyConfig()}
	res, err := m.Run(Options{Replicas: 3, Workers: 2, Progress: func(done, total int) {
		if total != 3 {
			t.Errorf("total = %d, want 3", total)
		}
		mu.Lock()
		calls++
		if done > last {
			last = done
		}
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 1 || len(res.Scenarios[0].Replicas) != 3 {
		t.Fatalf("unexpected shape: %d scenarios", len(res.Scenarios))
	}
	if calls != 3 || last != 3 {
		t.Fatalf("progress calls = %d (last %d), want 3", calls, last)
	}
}

func mustParse(t *testing.T, spec string) Axis {
	t.Helper()
	ax, err := ParseAxis(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ax
}

// TestAlignLabels pins the structured-label prettifier: shared "a:b"
// structures component-align, everything else passes through untouched.
func TestAlignLabels(t *testing.T) {
	got := AlignLabels([]string{"4:8", "16:32", "0:0"})
	want := []string{" 4: 8", "16:32", " 0: 0"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AlignLabels = %q, want %q", got, want)
	}
	// Mixed structure: unchanged.
	mixed := []string{"4:8", "fifo"}
	if got := AlignLabels(mixed); !reflect.DeepEqual(got, mixed) {
		t.Fatalf("mixed labels mutated: %q", got)
	}
	// No structure: unchanged.
	plain := []string{"philly", "fifo"}
	if got := AlignLabels(plain); !reflect.DeepEqual(got, plain) {
		t.Fatalf("plain labels mutated: %q", got)
	}
}

// TestRenderTableAxisColumns checks the comparison table renders one column
// per axis with aligned structured values instead of one opaque scenario
// string.
func TestRenderTableAxisColumns(t *testing.T) {
	base := tinyConfig()
	axes := []Axis{
		mustParse(t, "locality.relax=4:8,16:32"),
		mustParse(t, "sched.policy=philly,fifo"),
	}
	res, err := Matrix{Base: base, Axes: axes}.Run(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	table := res.RenderTable()
	for _, want := range []string{"locality.relax", "sched.policy", " 4: 8", "16:32"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	if strings.Contains(table, "locality.relax=") {
		t.Fatalf("table still renders opaque scenario names:\n%s", table)
	}
	// The no-axes fallback keeps the single scenario column.
	plain, err := Matrix{Base: base}.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain.RenderTable(), "scenario") {
		t.Fatalf("no-axis table lost the scenario column:\n%s", plain.RenderTable())
	}
}
